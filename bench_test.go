// Benchmarks regenerating the measurable side of every table and figure
// of the paper (see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded results). Table 2's routing-time ordering — the new design's
// distributed O(log^2 n) setting versus centralized baselines — shows up
// here as wall-clock per-assignment routing costs; the gate-delay units
// of the paper are measured separately by the cycle-accurate model in
// internal/gates (BenchmarkFig12 and the harness sweeps).
package brsmn_test

import (
	"fmt"
	"math/rand"
	"testing"

	"brsmn"
	"brsmn/internal/benes"
	"brsmn/internal/bitonic"
	"brsmn/internal/circuit"
	"brsmn/internal/copynet"
	"brsmn/internal/core"
	"brsmn/internal/diagnosis"
	"brsmn/internal/gates"
	"brsmn/internal/gcn"
	"brsmn/internal/hdrstream"
	"brsmn/internal/mcast"
	"brsmn/internal/paths"
	"brsmn/internal/rbn"
	"brsmn/internal/tag"
	"brsmn/internal/workload"
	"brsmn/internal/xbar"
)

var benchSizes = []int{64, 256, 1024}

// benchAssignments pre-draws a pool of random assignments so the
// generators stay out of the measured loop.
func benchAssignments(n int) []mcast.Assignment {
	rng := rand.New(rand.NewSource(7))
	out := make([]mcast.Assignment, 16)
	for i := range out {
		out[i] = workload.Random(rng, n, 0.8, 0.5)
	}
	return out
}

// BenchmarkTable1Encoding measures the tag encode/decode pair of
// Table 1.
func BenchmarkTable1Encoding(b *testing.B) {
	b.ReportAllocs()
	vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps, tag.Eps0, tag.Eps1}
	for i := 0; i < b.N; i++ {
		v := vals[i%len(vals)]
		bits := tag.Encode(v)
		if _, err := tag.Decode(bits, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2BRSMN routes random multicast assignments through the
// unrolled network — the "new design" row of Table 2.
func BenchmarkTable2BRSMN(b *testing.B) {
	b.ReportAllocs()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			nw, err := brsmn.New(n)
			if err != nil {
				b.Fatal(err)
			}
			as := benchAssignments(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Route(as[i%len(as)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Feedback routes the same traffic through the feedback
// implementation — the "feedback version" row of Table 2 (Fig. 13).
func BenchmarkTable2Feedback(b *testing.B) {
	b.ReportAllocs()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			nw, err := brsmn.NewFeedback(n)
			if err != nil {
				b.Fatal(err)
			}
			as := benchAssignments(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Route(as[i%len(as)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2CopyNet routes the same traffic through the centralized
// copy-network + Benes baseline (stand-in for the prior recursively
// decomposed designs; see DESIGN.md substitutions).
func BenchmarkTable2CopyNet(b *testing.B) {
	b.ReportAllocs()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			nw, err := copynet.New(n)
			if err != nil {
				b.Fatal(err)
			}
			as := benchAssignments(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Route(as[i%len(as)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Crossbar routes through the O(n^2) crossbar oracle.
func BenchmarkTable2Crossbar(b *testing.B) {
	b.ReportAllocs()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			xb, err := xbar.New(n)
			if err != nil {
				b.Fatal(err)
			}
			as := benchAssignments(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := xb.Route(as[i%len(as)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3BitSort measures the Table 3 distributed bit-sorting
// algorithm (plan computation only).
func BenchmarkTable3BitSort(b *testing.B) {
	b.ReportAllocs()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(8))
			gamma := make([]bool, n)
			for i := range gamma {
				gamma[i] = rng.Intn(2) == 1
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rbn.BitSortPlan(n, gamma, i%n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4Scatter measures the Table 4/5 distributed scatter
// algorithm.
func BenchmarkTable4Scatter(b *testing.B) {
	b.ReportAllocs()
	vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps}
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(9))
			tags := make([]tag.Value, n)
			for i := range tags {
				tags[i] = vals[rng.Intn(4)]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rbn.ScatterPlan(n, tags, i%n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable6EpsDivide measures the Table 6 ε-dividing algorithm.
func BenchmarkTable6EpsDivide(b *testing.B) {
	b.ReportAllocs()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(10))
			tags := make([]tag.Value, n)
			perm := rng.Perm(n)
			for i := 0; i < n/2; i++ {
				tags[perm[i]] = tag.V0
			}
			for i := n / 2; i < 3*n/4; i++ {
				tags[perm[i]] = tag.V1
			}
			for _, i := range perm[3*n/4:] {
				tags[i] = tag.Eps
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rbn.EpsDivide(tags); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2Example routes the paper's running 8x8 example.
func BenchmarkFig2Example(b *testing.B) {
	b.ReportAllocs()
	nw, err := brsmn.New(8)
	if err != nil {
		b.Fatal(err)
	}
	a := brsmn.Fig2Assignment()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Route(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9TagSequence measures routing-tag sequence encoding
// (Figs. 9 and 11 wire format).
func BenchmarkFig9TagSequence(b *testing.B) {
	b.ReportAllocs()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(11))
			dests := rng.Perm(n)[:n/4]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mcast.SequenceFromDests(n, dests); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10SequenceSplit measures the alternating split of Fig. 10.
func BenchmarkFig10SequenceSplit(b *testing.B) {
	b.ReportAllocs()
	seq, err := mcast.SequenceFromDests(1024, []int{1, 17, 333, 512, 800})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		mcast.SplitSequence(seq[1:])
	}
}

// BenchmarkFig12ForwardSweep measures the cycle-accurate pipelined adder
// tree simulation behind the routing-time column.
func BenchmarkFig12ForwardSweep(b *testing.B) {
	b.ReportAllocs()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			leaves := make([]int, n)
			for i := range leaves {
				leaves[i] = i % 2
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := gates.ForwardSweep(leaves); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngine compares the sequential and parallel switch-setting
// engines on one large scatter plan — the distributed algorithm's
// software parallelism ablation.
func BenchmarkEngine(b *testing.B) {
	b.ReportAllocs()
	n := 4096
	vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps}
	rng := rand.New(rand.NewSource(12))
	tags := make([]tag.Value, n)
	for i := range tags {
		tags[i] = vals[rng.Intn(4)]
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rbn.Sequential.ScatterPlan(n, tags, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		eng := rbn.ParallelEngine()
		for i := 0; i < b.N; i++ {
			if _, err := eng.ScatterPlan(n, tags, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCentralizedSetting compares computing switch settings
// for a full permutation with the paper's distributed algorithm
// (permutation network, quasisort passes) against the centralized Benes
// looping algorithm — the design choice Table 2's routing-time column is
// about.
func BenchmarkAblationCentralizedSetting(b *testing.B) {
	b.ReportAllocs()
	for _, n := range benchSizes {
		rng := rand.New(rand.NewSource(13))
		perm := rng.Perm(n)
		b.Run(fmt.Sprintf("distributed/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := brsmn.RoutePermutation(perm); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("centralized-benes/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := benes.RoutePermutation(perm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScatterless compares full-BRSMN routing of a
// permutation against the scatter-less unicast specialization — the cost
// ablation of the permutation network (half the hardware, same result on
// unicast traffic).
func BenchmarkAblationScatterless(b *testing.B) {
	b.ReportAllocs()
	n := 256
	rng := rand.New(rand.NewSource(14))
	perm := rng.Perm(n)
	a, err := brsmn.PermutationAssignment(perm)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := brsmn.New(n)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full-brsmn", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nw.Route(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("permnet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := brsmn.RoutePermutation(perm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig13Passes measures the per-pass overhead of the feedback
// implementation on the maximum-split workload.
func BenchmarkFig13Passes(b *testing.B) {
	b.ReportAllocs()
	n := 256
	a, err := brsmn.MaxSplitAssignment(n, 16)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := brsmn.NewFeedback(n)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := nw.Route(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutingDelayModel evaluates the gate-delay model itself.
func BenchmarkRoutingDelayModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := brsmn.RoutingDelay(1024); d <= 0 {
			b.Fatal("nonpositive delay")
		}
	}
}

// BenchmarkAblationQuasisortVsBitonic compares the paper's quasisorting
// approach (ε-divide + bit-sort on an RBN: (n/2)·log n switches, log n
// depth, but a setting computation) against a Batcher bitonic sorter
// (no setting computation, Θ(n log² n) comparators at Θ(log² n) depth) —
// the design choice behind using RBNs for every component.
func BenchmarkAblationQuasisortVsBitonic(b *testing.B) {
	b.ReportAllocs()
	for _, n := range benchSizes {
		rng := rand.New(rand.NewSource(15))
		tags := make([]tag.Value, n)
		perm := rng.Perm(n)
		for i := 0; i < n/3; i++ {
			tags[perm[i]] = tag.V0
		}
		for i := n / 3; i < 2*n/3; i++ {
			tags[perm[i]] = tag.V1
		}
		for _, i := range perm[2*n/3:] {
			tags[i] = tag.Eps
		}
		b.Run(fmt.Sprintf("rbn/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := rbn.QuasisortRoute(n, tags); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("bitonic/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			bit := func(v tag.Value) int {
				switch v {
				case tag.V0:
					return 0
				case tag.V1:
					return 1
				}
				return -1
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := bitonic.Quasisort(tags, bit); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelinedThroughput measures the pipelined fabric simulator:
// a batch of assignments streamed one column apart (Section 7's
// pipelined operation).
func BenchmarkPipelinedThroughput(b *testing.B) {
	b.ReportAllocs()
	n := 64
	rng := rand.New(rand.NewSource(16))
	as := make([]mcast.Assignment, 8)
	for i := range as {
		as[i] = workload.Random(rng, n, 0.8, 0.5)
	}
	pub := make([]brsmn.Assignment, len(as))
	for i := range as {
		pub[i] = as[i]
	}
	for i := 0; i < b.N; i++ {
		if _, err := brsmn.RoutePipelined(pub, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleAndRoute measures the admission-control extension on
// a conflicted batch.
func BenchmarkScheduleAndRoute(b *testing.B) {
	b.ReportAllocs()
	n := 64
	rng := rand.New(rand.NewSource(17))
	reqs := make([]brsmn.Request, n)
	for i := range reqs {
		k := 1 + rng.Intn(n/4)
		reqs[i] = brsmn.Request{Source: rng.Intn(n), Dests: rng.Perm(n)[:k]}
	}
	for i := 0; i < b.N; i++ {
		if _, err := brsmn.ScheduleAndRoute(n, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2GCN routes the same traffic through the implemented
// Nassimi–Sahni-style generalized connection network.
func BenchmarkTable2GCN(b *testing.B) {
	b.ReportAllocs()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			nw, err := gcn.New(n)
			if err != nil {
				b.Fatal(err)
			}
			as := benchAssignments(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Route(as[i%len(as)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRouteBatchWorkers measures the concurrent stream controller
// at several worker counts.
func BenchmarkRouteBatchWorkers(b *testing.B) {
	b.ReportAllocs()
	n := 128
	rng := rand.New(rand.NewSource(18))
	as := make([]brsmn.Assignment, 8)
	for i := range as {
		as[i] = brsmn.RandomAssignment(rng, n, 0.8, 0.5)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := brsmn.RouteBatch(n, as, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupChurn measures incremental membership updates against
// full tree rebuilds.
func BenchmarkGroupChurn(b *testing.B) {
	b.ReportAllocs()
	n := 1024
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		g, err := brsmn.NewGroup(n, 0)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			d := i % (n - 1)
			if g.Contains(d) {
				if err := g.Leave(d); err != nil {
					b.Fatal(err)
				}
			} else {
				if err := g.Join(d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		members := map[int]bool{}
		for i := 0; i < b.N; i++ {
			d := i % (n - 1)
			if members[d] {
				delete(members, d)
			} else {
				members[d] = true
			}
			dests := make([]int, 0, len(members))
			for m := range members {
				dests = append(dests, m)
			}
			if _, err := mcast.SequenceFromDests(n, dests); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEdgeDisjointVerify measures the paths extraction/verification
// layer.
func BenchmarkEdgeDisjointVerify(b *testing.B) {
	b.ReportAllocs()
	n := 128
	rng := rand.New(rand.NewSource(19))
	a := workload.Random(rng, n, 0.8, 0.5)
	res, err := core.Route(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paths.VerifyAll(a, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeaderStreaming measures the flit-level header simulation.
func BenchmarkHeaderStreaming(b *testing.B) {
	b.ReportAllocs()
	n := 256
	dests := make([]int, n)
	for i := range dests {
		dests[i] = i
	}
	for i := 0; i < b.N; i++ {
		if _, err := hdrstream.Simulate(n, dests, i%n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiagnosis measures stuck-fault localization.
func BenchmarkDiagnosis(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := diagnosis.Diagnose(16, diagnosis.Fault{Col: 5, Switch: 3, Stuck: 1}, 6, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTLScatter measures the serial-unit (circuit) scatter against
// the algorithmic one — the cost of the RTL fidelity.
func BenchmarkRTLScatter(b *testing.B) {
	b.ReportAllocs()
	n := 256
	vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps}
	rng := rand.New(rand.NewSource(20))
	tags := make([]tag.Value, n)
	for i := range tags {
		tags[i] = vals[rng.Intn(4)]
	}
	b.Run("algorithmic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rbn.ScatterPlan(n, tags, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rtl", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := circuit.ScatterPlan(n, tags, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkZipfTraffic routes heavy-tailed fanout traffic — the fanout
// profile of real multicast workloads.
func BenchmarkZipfTraffic(b *testing.B) {
	b.ReportAllocs()
	n := 256
	rng := rand.New(rand.NewSource(21))
	as := make([]brsmn.Assignment, 16)
	for i := range as {
		as[i] = brsmn.ZipfAssignment(rng, n, 1.3, 0.9)
	}
	nw, err := brsmn.New(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Route(as[i%len(as)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteReuse isolates the planning pipeline's allocation
// regimes: a cold network construction per routing, the concurrency-safe
// Network.Route (pooled planner + one detaching clone per call), a
// reused Planner (steady-state zero-allocation routing; results alias
// planner storage), and the reused planner with the parallel sub-network
// recursion enabled.
func BenchmarkRouteReuse(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		as := benchAssignments(n)
		b.Run(fmt.Sprintf("cold/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nw, err := brsmn.New(n)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := nw.Route(as[i%len(as)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("network/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			nw, err := brsmn.New(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Route(as[i%len(as)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The "network" regime with observability on: engine occupancy
		// accounting plus the planner pool's always-on counters — the
		// configuration brsmnd runs with -metrics (its default). The
		// acceptance budget is within 5 allocs/op and 5% wall-clock of
		// the plain network regime.
		b.Run(fmt.Sprintf("network-obs/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			nw, err := core.New(n, rbn.Engine{Workers: 1, Occ: &rbn.Occupancy{}})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Route(as[i%len(as)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("planner/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			p, err := brsmn.NewPlanner(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Route(as[i%len(as)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("planner-parallel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			p, err := brsmn.NewPlanner(n, brsmn.WithParallelSetting(4))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Route(as[i%len(as)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
