package brsmn

import (
	"fmt"
	"math/rand"

	"brsmn/internal/core"
	"brsmn/internal/feedback"
	"brsmn/internal/mcast"
	"brsmn/internal/permnet"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
	"brsmn/internal/xbar"
)

// Assignment is a multicast assignment: Dests[i] is the destination set
// of input i. Destination sets must be pairwise disjoint.
type Assignment = mcast.Assignment

// Result is a routed multicast assignment: per-output Deliveries plus
// every switch plan chosen along the way.
type Result = core.Result

// Delivery is what one output receives: the source input (-1 if idle)
// and its payload.
type Delivery = core.Delivery

// FeedbackResult is a routed assignment on the feedback network,
// including the per-pass reconfigurations of its single reverse banyan
// network.
type FeedbackResult = feedback.Result

// NewAssignment builds and validates a multicast assignment for an n x n
// network; dests[i] lists the outputs input i multicasts to (nil for an
// idle input).
func NewAssignment(n int, dests [][]int) (Assignment, error) {
	return mcast.New(n, dests)
}

// PermutationAssignment builds a (partial) permutation assignment:
// perm[i] is input i's destination, or negative for idle.
func PermutationAssignment(perm []int) (Assignment, error) {
	return mcast.Permutation(perm)
}

// BroadcastAssignment builds the assignment in which input src
// multicasts to every output.
func BroadcastAssignment(n, src int) (Assignment, error) {
	return mcast.Broadcast(n, src)
}

// config carries construction options.
type config struct {
	engine rbn.Engine
}

// Option configures network construction.
type Option func(*config)

// WithParallelSetting runs the distributed switch-setting sweeps with the
// given number of worker goroutines (the tree nodes of each level are
// independent, mirroring the hardware's parallelism). workers <= 1 is
// sequential.
func WithParallelSetting(workers int) Option {
	return func(c *config) { c.engine = rbn.Engine{Workers: workers} }
}

func buildConfig(opts []Option) config {
	c := config{engine: rbn.Sequential}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Network is an n x n BRSMN — the unrolled network of the paper's main
// construction.
type Network struct {
	inner *core.Network
}

// New returns an n x n BRSMN (n a power of two >= 2).
func New(n int, opts ...Option) (*Network, error) {
	c := buildConfig(opts)
	inner, err := core.New(n, c.engine)
	if err != nil {
		return nil, err
	}
	return &Network{inner: inner}, nil
}

// N returns the network size.
func (nw *Network) N() int { return nw.inner.N() }

// Route realizes a multicast assignment: it computes every switch
// setting with the paper's self-routing algorithms, simulates the
// configured fabric, verifies the deliveries and returns them.
func (nw *Network) Route(a Assignment) (*Result, error) { return nw.inner.Route(a) }

// RouteWithPayloads is Route with a payload per input; every destination
// of a multicast receives its source's payload.
func (nw *Network) RouteWithPayloads(a Assignment, payloads []any) (*Result, error) {
	return nw.inner.RouteWithPayloads(a, payloads)
}

// Planner is a reusable routing pipeline: all scratch state a routing
// needs — per-level cell buffers, tag-sequence arenas, and the RBN plan
// storage for every sub-BSN — is allocated once at construction and
// recycled across calls, so steady-state Route allocates (almost)
// nothing.
//
// The trade for zero allocation is result lifetime: a Result returned
// by a Planner aliases the planner's internal storage and is valid only
// until the next Route/RouteWithPayloads call on the same planner. Call
// Result.Clone to detach a result you need to keep. A Planner is NOT
// safe for concurrent use; give each goroutine its own, or use Network
// (whose internal planner pool makes Route concurrency-safe at the cost
// of one detaching clone per call).
type Planner struct {
	inner *core.Planner
}

// NewPlanner returns a reusable planner for an n x n BRSMN. Options are
// the same as New; WithParallelSetting additionally parallelizes the
// planner's sub-network recursion across the independent halves.
func NewPlanner(n int, opts ...Option) (*Planner, error) {
	c := buildConfig(opts)
	inner, err := core.NewPlanner(n, c.engine)
	if err != nil {
		return nil, err
	}
	return &Planner{inner: inner}, nil
}

// N returns the planner's network size.
func (p *Planner) N() int { return p.inner.N() }

// Route routes a multicast assignment reusing the planner's scratch
// state. The Result aliases planner storage — see the Planner doc.
func (p *Planner) Route(a Assignment) (*Result, error) { return p.inner.Route(a) }

// RouteWithPayloads is Route with a payload per input.
func (p *Planner) RouteWithPayloads(a Assignment, payloads []any) (*Result, error) {
	return p.inner.RouteWithPayloads(a, payloads)
}

// FeedbackNetwork is the feedback implementation of the BRSMN
// (Section 7.3 of the paper): one reverse banyan network reused for
// 2 log2(n) - 1 passes, for O(n log n) hardware cost.
type FeedbackNetwork struct {
	inner *feedback.Network
}

// NewFeedback returns an n x n feedback BRSMN.
func NewFeedback(n int, opts ...Option) (*FeedbackNetwork, error) {
	c := buildConfig(opts)
	inner, err := feedback.New(n, c.engine)
	if err != nil {
		return nil, err
	}
	return &FeedbackNetwork{inner: inner}, nil
}

// N returns the network size.
func (nw *FeedbackNetwork) N() int { return nw.inner.N() }

// Route realizes a multicast assignment through the feedback network.
func (nw *FeedbackNetwork) Route(a Assignment) (*FeedbackResult, error) {
	return nw.inner.Route(a)
}

// RouteWithPayloads is Route with a payload per input.
func (nw *FeedbackNetwork) RouteWithPayloads(a Assignment, payloads []any) (*FeedbackResult, error) {
	return nw.inner.RouteWithPayloads(a, payloads)
}

// HardwareSwitches returns the 2x2-switch count of the feedback
// implementation: (n/2) log2 n, a log n factor below the unrolled
// network.
func (nw *FeedbackNetwork) HardwareSwitches() int { return nw.inner.HardwareSwitches() }

// RoutePermutation routes a (partial) permutation through the unicast
// specialization of the network (quasisorting passes only — the Cheng &
// Chen self-routing permutation network the paper builds on). It returns
// out[d] = source input for each destination d, or -1.
func RoutePermutation(perm []int, opts ...Option) ([]int, error) {
	c := buildConfig(opts)
	res, err := permnet.Route(perm, c.engine)
	if err != nil {
		return nil, err
	}
	return res.OutSource, nil
}

// Oracle routes an assignment through an n x n crossbar — the trivial
// reference implementation — returning the source feeding each output.
func Oracle(a Assignment) ([]int, error) {
	xb, err := xbar.New(a.N)
	if err != nil {
		return nil, err
	}
	return xb.Route(a)
}

// RandomAssignment draws a random multicast assignment: a `load`
// fraction of outputs receive traffic from about `activeFrac`·n inputs.
func RandomAssignment(rng *rand.Rand, n int, load, activeFrac float64) Assignment {
	return workload.Random(rng, n, load, activeFrac)
}

// RandomPermutation draws a full random permutation assignment.
func RandomPermutation(rng *rand.Rand, n int) Assignment {
	return workload.Permutation(rng, n)
}

// MaxSplitAssignment builds the adversarial maximum-split workload:
// `groups` inputs each multicasting to a maximally spread destination
// comb. groups must be a power of two dividing n.
func MaxSplitAssignment(n, groups int) (Assignment, error) {
	return workload.MaxSplit(n, groups)
}

// HotSpotAssignment builds a workload with one hot input of the given
// fanout plus background unicasts at the given load.
func HotSpotAssignment(rng *rand.Rand, n, hot int, load float64) Assignment {
	return workload.HotSpot(rng, n, hot, load)
}

// Fig2Assignment returns the 8 x 8 example of the paper's Fig. 2:
// {{0,1}, ∅, {3,4,7}, {2}, ∅, ∅, ∅, {5,6}}.
func Fig2Assignment() Assignment { return workload.PaperFig2() }

// Verify checks a Result against an Assignment output by output. Route
// already performs this check; Verify is exposed for users consuming
// results across trust boundaries.
func Verify(a Assignment, res *Result) error { return core.Verify(a, res) }

// mustNetwork panics on construction errors for internal one-shot paths.
func mustNetwork(n int) *Network {
	nw, err := New(n)
	if err != nil {
		panic(fmt.Sprintf("brsmn: %v", err))
	}
	return nw
}

// Route is a one-shot convenience: construct a network of the
// assignment's size and route it.
func Route(a Assignment) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return mustNetwork(a.N).Route(a)
}

// ZipfAssignment draws a multicast assignment whose fanouts follow a
// Zipf-like heavy tail with exponent s (> 1): the fanout profile of real
// multicast traffic.
func ZipfAssignment(rng *rand.Rand, n int, s, load float64) Assignment {
	return workload.ZipfFanout(rng, n, s, load)
}

// BurstyBatch draws a sequence of assignments alternating high-load and
// low-load phases of the given length — on/off traffic for stressing
// schedulers and pipelines.
func BurstyBatch(rng *rand.Rand, n, count int, onLoad, offLoad float64, phase int) []Assignment {
	raw := workload.Bursty(rng, n, count, onLoad, offLoad, phase)
	out := make([]Assignment, len(raw))
	for i := range raw {
		out[i] = raw[i]
	}
	return out
}
