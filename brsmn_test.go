package brsmn

import (
	"math/rand"
	"testing"
)

// TestQuickstart exercises the documented entry points end to end.
func TestQuickstart(t *testing.T) {
	a, err := NewAssignment(8, [][]int{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 3, 2, 2, 7, 7, 2}
	for out, src := range want {
		if res.Deliveries[out].Source != src {
			t.Errorf("output %d: source %d, want %d", out, res.Deliveries[out].Source, src)
		}
	}
	if err := Verify(a, res); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// TestRouteAgainstOracle fuzzes the public surface against the crossbar
// oracle across sizes, engines and the feedback variant.
func TestRouteAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, n := range []int{2, 8, 64} {
		plain, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		par, err := New(n, WithParallelSetting(4))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := NewFeedback(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			a := RandomAssignment(rng, n, rng.Float64(), rng.Float64())
			want, err := Oracle(a)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := plain.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := par.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			r3, err := fb.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			for out := range want {
				if r1.Deliveries[out].Source != want[out] ||
					r2.Deliveries[out].Source != want[out] ||
					r3.Deliveries[out].Source != want[out] {
					t.Fatalf("n=%d output %d mismatch vs oracle", n, out)
				}
			}
		}
	}
}

// TestPermutationHelpers checks the unicast surface.
func TestPermutationHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	perm := rng.Perm(32)
	out, err := RoutePermutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range perm {
		if out[d] != i {
			t.Fatalf("output %d got %d, want %d", d, out[d], i)
		}
	}
	a, err := PermutationAssignment([]int{1, -1, 3, -1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fanout() != 2 {
		t.Error("PermutationAssignment fanout wrong")
	}
	if _, err := RoutePermutation([]int{0, 0}); err == nil {
		t.Error("RoutePermutation accepted duplicate destination")
	}
}

// TestBroadcastAndWorkloads checks the workload constructors.
func TestBroadcastAndWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	b, err := BroadcastAssignment(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(b)
	if err != nil {
		t.Fatal(err)
	}
	for out, d := range res.Deliveries {
		if d.Source != 3 {
			t.Fatalf("broadcast output %d from %d", out, d.Source)
		}
	}
	ms, err := MaxSplitAssignment(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Route(ms); err != nil {
		t.Fatal(err)
	}
	hs := HotSpotAssignment(rng, 16, 8, 0.5)
	if _, err := Route(hs); err != nil {
		t.Fatal(err)
	}
	rp := RandomPermutation(rng, 16)
	if !rp.IsPermutation() {
		t.Error("RandomPermutation not a permutation")
	}
	if Fig2Assignment().String() != "{{0,1}, ∅, {3,4,7}, {2}, ∅, ∅, ∅, {5,6}}" {
		t.Error("Fig2Assignment wrong")
	}
}

// TestTagSequenceSurface checks the wire-format helpers round-trip.
func TestTagSequenceSurface(t *testing.T) {
	s, err := TagSequence(8, []int{3, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if s != "α1αε011" {
		t.Errorf("TagSequence = %q", s)
	}
	dests, err := ParseTagSequence(8, "a1ae011")
	if err != nil {
		t.Fatal(err)
	}
	if len(dests) != 3 || dests[0] != 3 || dests[1] != 4 || dests[2] != 7 {
		t.Errorf("ParseTagSequence = %v", dests)
	}
	if _, err := TagSequence(8, []int{9}); err == nil {
		t.Error("TagSequence accepted out-of-range destination")
	}
	if _, err := ParseTagSequence(8, "zzz"); err == nil {
		t.Error("ParseTagSequence accepted garbage")
	}
}

// TestCostSurface checks the Table 2 accessors.
func TestCostSurface(t *testing.T) {
	rows := CostTable2(256)
	if len(rows) != 4 {
		t.Fatalf("CostTable2 returned %d rows", len(rows))
	}
	if NetworkCost(256).Switches <= FeedbackCost(256).Switches {
		t.Error("unrolled network not costlier than feedback")
	}
	if RoutingDelay(256) <= 0 || FeedbackRoutingDelay(256) < RoutingDelay(256) {
		t.Error("routing delays inconsistent")
	}
	fb, _ := NewFeedback(256)
	if fb.HardwareSwitches() != FeedbackCost(256).Switches {
		t.Error("feedback hardware accessors disagree")
	}
}

// TestConstructionErrors checks the public validation surface.
func TestConstructionErrors(t *testing.T) {
	if _, err := New(5); err == nil {
		t.Error("New(5) succeeded")
	}
	if _, err := NewFeedback(0); err == nil {
		t.Error("NewFeedback(0) succeeded")
	}
	if _, err := NewAssignment(4, [][]int{{0}, {0}}); err == nil {
		t.Error("NewAssignment accepted overlap")
	}
	bad := Assignment{N: 4, Dests: [][]int{{0}, {0}, nil, nil}}
	if _, err := Route(bad); err == nil {
		t.Error("Route accepted invalid assignment")
	}
	nw, _ := New(4)
	if nw.N() != 4 {
		t.Error("N wrong")
	}
	fb, _ := NewFeedback(4)
	if fb.N() != 4 {
		t.Error("feedback N wrong")
	}
}

// TestPayloadsEndToEnd checks payload fanout on both variants.
func TestPayloadsEndToEnd(t *testing.T) {
	n := 8
	a := Fig2Assignment()
	payloads := make([]any, n)
	for i := range payloads {
		payloads[i] = i * 100
	}
	nw, _ := New(n)
	res, err := nw.RouteWithPayloads(a, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deliveries[4].Payload != 200 {
		t.Errorf("output 4 payload = %v, want 200", res.Deliveries[4].Payload)
	}
	fb, _ := NewFeedback(n)
	fres, err := fb.RouteWithPayloads(a, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Deliveries[6].Payload != 700 {
		t.Errorf("feedback output 6 payload = %v, want 700", fres.Deliveries[6].Payload)
	}
}
