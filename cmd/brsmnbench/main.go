// Command brsmnbench regenerates the paper's tables and the scaling
// experiments recorded in EXPERIMENTS.md.
//
// Usage:
//
//	brsmnbench -exp table1
//	brsmnbench -exp table2 -n 1024
//	brsmnbench -exp orders -sizes 16,64,256,1024,4096
//	brsmnbench -exp fig2
//	brsmnbench -exp delay -sizes 8,32,128,512,2048
//	brsmnbench -exp wallclock -n 256 -trials 20
//	brsmnbench -exp splits -n 64
//	brsmnbench -exp all
//
// The wallclock, pipeline and route experiments also emit machine-
// readable JSON for benchmark tracking (the BENCH_route.json artifact):
//
//	brsmnbench -exp route -n 1024 -trials 20 -format json > BENCH_route.json
//
// The recovery experiment measures control-plane restart cost (WAL
// replay vs snapshot restore) and backs the BENCH_recovery.json
// artifact:
//
//	brsmnbench -exp recovery -n 256 -groups 64 -trials 5 -format json > BENCH_recovery.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"brsmn/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1, table2, orders, fit, fig2, delay, wallclock, splits, pipeline, util, admission, saturation, route, recovery, all")
		n       = flag.Int("n", 256, "network size for single-size experiments")
		sizes   = flag.String("sizes", "16,64,256,1024,4096", "comma-separated sizes for sweeps")
		trials  = flag.Int("trials", 10, "assignments per wall-clock measurement")
		seed    = flag.Int64("seed", 1, "random seed")
		format  = flag.String("format", "text", "output format: text or json (json: wallclock, pipeline, route, recovery)")
		workers = flag.Int("workers", 4, "worker count for the route experiment's parallel regime")
		groups  = flag.Int("groups", 64, "group population for the recovery experiment")
	)
	flag.Parse()
	szs, err := parseSizes(*sizes)
	if err == nil {
		switch *format {
		case "text":
			err = run(os.Stdout, *exp, *n, szs, *trials, *seed, *groups)
		case "json":
			err = runJSON(os.Stdout, *exp, *n, *trials, *seed, *workers, *groups)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "brsmnbench:", err)
		os.Exit(1)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// runJSON handles the experiments with a machine-readable form. The
// text-only experiments reject -format json instead of silently
// falling back.
func runJSON(w io.Writer, exp string, n, trials int, seed int64, workers, groups int) error {
	var (
		rep any
		err error
	)
	switch exp {
	case "route":
		rep, err = harness.RouteBench(n, trials, seed, workers)
	case "wallclock":
		rep, err = harness.WallClockJSON(n, trials, seed)
	case "pipeline":
		rep, err = harness.PipelineJSON(n, 8, seed)
	case "recovery":
		rep, err = harness.RecoveryBench(n, groups, trials, seed)
	default:
		return fmt.Errorf("experiment %q has no json output (json: wallclock, pipeline, route, recovery)", exp)
	}
	if err != nil {
		return err
	}
	out, err := harness.MarshalReport(rep)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, out)
	return err
}

func run(w io.Writer, exp string, n int, sizes []int, trials int, seed int64, groups int) error {
	section := func(body string, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(w, body)
		return nil
	}
	switch exp {
	case "table1":
		return section(harness.Table1(), nil)
	case "table2":
		return section(harness.Table2Concrete(n), nil)
	case "orders":
		return section(harness.Table2Normalized(sizes), nil)
	case "fig2":
		out, err := harness.Fig2()
		return section(out, err)
	case "delay":
		return section(harness.RoutingDelaySweep(sizes), nil)
	case "wallclock":
		out, err := harness.WallClock(n, trials, seed)
		return section(out, err)
	case "splits":
		out, err := harness.SplitStress(n)
		return section(out, err)
	case "pipeline":
		out, err := harness.PipelineExperiment(n, 8, seed)
		return section(out, err)
	case "fit":
		out, err := harness.FitExperiment(sizes)
		return section(out, err)
	case "util":
		out, err := harness.UtilizationExperiment(n, seed)
		return section(out, err)
	case "admission":
		out, err := harness.AdmissionExperiment(n, seed)
		return section(out, err)
	case "saturation":
		out, err := harness.SaturationExperiment(n, 100, seed)
		return section(out, err)
	case "ktradeoff":
		return section(harness.KTradeoffExperiment(n), nil)
	case "route":
		rep, err := harness.RouteBench(n, trials, seed, 4)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Routing hot-path regimes, n = %d, %d trials (GOMAXPROCS=%d)\n", rep.N, rep.Trials, rep.GoMaxProcs)
		for _, m := range rep.Regimes {
			fmt.Fprintf(w, "  %-18s %12d ns/op %12d B/op %8d allocs/op\n", m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
		}
		return nil
	case "recovery":
		rep, err := harness.RecoveryBench(n, groups, trials, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Control-plane recovery, n = %d, %d groups, %d trials\n", rep.N, rep.Groups, rep.Trials)
		for _, m := range rep.Scenarios {
			fmt.Fprintf(w, "  %-18s %12d ns/boot  %4d groups %6d replayed records %4d warm plans (snapshot: %v)\n",
				m.Name, m.NsPerOp, m.Groups, m.Records, m.Plans, m.SnapshotLoaded)
		}
		return nil
	case "all":
		for _, e := range []string{"table1", "table2", "orders", "fit", "fig2", "delay", "splits", "pipeline", "util", "admission", "saturation", "ktradeoff", "wallclock", "recovery"} {
			if err := run(w, e, n, sizes, trials, seed, groups); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
