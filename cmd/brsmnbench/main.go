// Command brsmnbench regenerates the paper's tables and the scaling
// experiments recorded in EXPERIMENTS.md.
//
// Usage:
//
//	brsmnbench -exp table1
//	brsmnbench -exp table2 -n 1024
//	brsmnbench -exp orders -sizes 16,64,256,1024,4096
//	brsmnbench -exp fig2
//	brsmnbench -exp delay -sizes 8,32,128,512,2048
//	brsmnbench -exp wallclock -n 256 -trials 20
//	brsmnbench -exp splits -n 64
//	brsmnbench -exp all
//
// The wallclock, pipeline and route experiments also emit machine-
// readable JSON for benchmark tracking (the BENCH_route.json artifact):
//
//	brsmnbench -exp route -n 1024 -trials 20 -format json > BENCH_route.json
//
// The recovery experiment measures control-plane restart cost (WAL
// replay vs snapshot restore) and backs the BENCH_recovery.json
// artifact:
//
//	brsmnbench -exp recovery -n 256 -groups 64 -trials 5 -format json > BENCH_recovery.json
//
// The tiers experiment routes the selector's workload classes through
// every planner backend and backs the BENCH_tiers.json artifact:
//
//	brsmnbench -exp tiers -n 1024 -trials 20 -format json > BENCH_tiers.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"brsmn/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, table2, orders, fit, fig2, delay, wallclock, splits, pipeline, util, admission, saturation, route, recovery, tiers, all")
		n        = flag.Int("n", 256, "network size for single-size experiments")
		sizes    = flag.String("sizes", "16,64,256,1024,4096", "comma-separated sizes for sweeps")
		trials   = flag.Int("trials", 10, "assignments per wall-clock measurement")
		seed     = flag.Int64("seed", 1, "random seed")
		format   = flag.String("format", "text", "output format: text or json (json: wallclock, pipeline, route, recovery)")
		workers  = flag.Int("workers", 4, "worker count for the route experiment's parallel regime")
		groups   = flag.Int("groups", 64, "group population for the recovery experiment")
		baseline = flag.String("baseline", "", "route experiment: committed BENCH_route.json to compare against; exits nonzero if the warm planner regime regresses more than 20%")
	)
	flag.Parse()
	szs, err := parseSizes(*sizes)
	if err == nil {
		switch *format {
		case "text":
			err = run(os.Stdout, *exp, *n, szs, *trials, *seed, *groups, *baseline)
		case "json":
			err = runJSON(os.Stdout, *exp, *n, *trials, *seed, *workers, *groups, *baseline)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "brsmnbench:", err)
		os.Exit(1)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// runJSON handles the experiments with a machine-readable form. The
// text-only experiments reject -format json instead of silently
// falling back.
func runJSON(w io.Writer, exp string, n, trials int, seed int64, workers, groups int, baseline string) error {
	var (
		rep      any
		err      error
		routeRep *harness.RouteBenchReport
	)
	switch exp {
	case "route":
		routeRep, err = harness.RouteBench(n, trials, seed, workers)
		rep = routeRep
	case "wallclock":
		rep, err = harness.WallClockJSON(n, trials, seed)
	case "pipeline":
		rep, err = harness.PipelineJSON(n, 8, seed)
	case "recovery":
		rep, err = harness.RecoveryBench(n, groups, trials, seed)
	case "tiers":
		rep, err = harness.TiersBench(n, trials, seed)
	default:
		return fmt.Errorf("experiment %q has no json output (json: wallclock, pipeline, route, recovery, tiers)", exp)
	}
	if err != nil {
		return err
	}
	out, err := harness.MarshalReport(rep)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, out); err != nil {
		return err
	}
	// The report is on stdout either way; a regression only changes the
	// exit status, so CI keeps the artifact alongside the failure.
	if routeRep != nil && baseline != "" {
		return checkBaseline(routeRep, baseline)
	}
	return nil
}

// checkBaseline compares the warm single-threaded planner regime — the
// steady-state replan cost everything downstream budgets around —
// against a committed BENCH_route.json, failing on a >20% nsPerOp
// regression. The baseline must describe the same network size; silently
// comparing different n would make the guard meaningless.
func checkBaseline(rep *harness.RouteBenchReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base harness.RouteBenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.N != rep.N {
		return fmt.Errorf("baseline %s is for n=%d but the benchmark ran n=%d", path, base.N, rep.N)
	}
	find := func(r *harness.RouteBenchReport) *harness.Measurement {
		for i := range r.Regimes {
			if r.Regimes[i].Name == "planner" {
				return &r.Regimes[i]
			}
		}
		return nil
	}
	got, want := find(rep), find(&base)
	if want == nil {
		return fmt.Errorf("baseline %s has no planner regime", path)
	}
	if got == nil {
		return fmt.Errorf("benchmark produced no planner regime")
	}
	ratio := float64(got.NsPerOp) / float64(want.NsPerOp)
	fmt.Fprintf(os.Stderr, "brsmnbench: planner %d ns/op vs baseline %d ns/op (%.2fx)\n",
		got.NsPerOp, want.NsPerOp, ratio)
	if ratio > 1.2 {
		return fmt.Errorf("planner regime regressed to %.2fx of baseline %s (limit 1.20x)", ratio, path)
	}
	return nil
}

func run(w io.Writer, exp string, n int, sizes []int, trials int, seed int64, groups int, baseline string) error {
	section := func(body string, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(w, body)
		return nil
	}
	switch exp {
	case "table1":
		return section(harness.Table1(), nil)
	case "table2":
		return section(harness.Table2Concrete(n), nil)
	case "orders":
		return section(harness.Table2Normalized(sizes), nil)
	case "fig2":
		out, err := harness.Fig2()
		return section(out, err)
	case "delay":
		return section(harness.RoutingDelaySweep(sizes), nil)
	case "wallclock":
		out, err := harness.WallClock(n, trials, seed)
		return section(out, err)
	case "splits":
		out, err := harness.SplitStress(n)
		return section(out, err)
	case "pipeline":
		out, err := harness.PipelineExperiment(n, 8, seed)
		return section(out, err)
	case "fit":
		out, err := harness.FitExperiment(sizes)
		return section(out, err)
	case "util":
		out, err := harness.UtilizationExperiment(n, seed)
		return section(out, err)
	case "admission":
		out, err := harness.AdmissionExperiment(n, seed)
		return section(out, err)
	case "saturation":
		out, err := harness.SaturationExperiment(n, 100, seed)
		return section(out, err)
	case "ktradeoff":
		return section(harness.KTradeoffExperiment(n), nil)
	case "tiers":
		rep, err := harness.TiersBench(n, trials, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Planner backend tiers, n = %d, %d trials (GOMAXPROCS=%d)\n", rep.N, rep.Trials, rep.GoMaxProcs)
		for _, m := range rep.Tiers {
			fmt.Fprintf(w, "  %-16s %-10s size %5d %12d ns/op %4d passes %5d cols %8d switches %8d allocs/op\n",
				m.Workload, m.Backend, m.GroupSize, m.NsPerOp, m.Passes, m.Depth, m.Switches, m.AllocsPerOp)
		}
		return nil
	case "route":
		rep, err := harness.RouteBench(n, trials, seed, 4)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Routing hot-path regimes, n = %d, %d trials (GOMAXPROCS=%d)\n", rep.N, rep.Trials, rep.GoMaxProcs)
		for _, m := range rep.Regimes {
			fmt.Fprintf(w, "  %-18s %12d ns/op %12d B/op %8d allocs/op\n", m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
		}
		if baseline != "" {
			return checkBaseline(rep, baseline)
		}
		return nil
	case "recovery":
		rep, err := harness.RecoveryBench(n, groups, trials, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Control-plane recovery, n = %d, %d groups, %d trials\n", rep.N, rep.Groups, rep.Trials)
		for _, m := range rep.Scenarios {
			fmt.Fprintf(w, "  %-18s %12d ns/boot  %4d groups %6d replayed records %4d warm plans (snapshot: %v)\n",
				m.Name, m.NsPerOp, m.Groups, m.Records, m.Plans, m.SnapshotLoaded)
		}
		return nil
	case "all":
		for _, e := range []string{"table1", "table2", "orders", "fit", "fig2", "delay", "splits", "pipeline", "util", "admission", "saturation", "ktradeoff", "wallclock", "recovery"} {
			if err := run(w, e, n, sizes, trials, seed, groups, ""); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
