// Command brsmnbench regenerates the paper's tables and the scaling
// experiments recorded in EXPERIMENTS.md.
//
// Usage:
//
//	brsmnbench -exp table1
//	brsmnbench -exp table2 -n 1024
//	brsmnbench -exp orders -sizes 16,64,256,1024,4096
//	brsmnbench -exp fig2
//	brsmnbench -exp delay -sizes 8,32,128,512,2048
//	brsmnbench -exp wallclock -n 256 -trials 20
//	brsmnbench -exp splits -n 64
//	brsmnbench -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"brsmn/internal/harness"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table1, table2, orders, fit, fig2, delay, wallclock, splits, pipeline, util, admission, saturation, all")
		n      = flag.Int("n", 256, "network size for single-size experiments")
		sizes  = flag.String("sizes", "16,64,256,1024,4096", "comma-separated sizes for sweeps")
		trials = flag.Int("trials", 10, "assignments per wall-clock measurement")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	szs, err := parseSizes(*sizes)
	if err == nil {
		err = run(os.Stdout, *exp, *n, szs, *trials, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "brsmnbench:", err)
		os.Exit(1)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(w io.Writer, exp string, n int, sizes []int, trials int, seed int64) error {
	section := func(body string, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(w, body)
		return nil
	}
	switch exp {
	case "table1":
		return section(harness.Table1(), nil)
	case "table2":
		return section(harness.Table2Concrete(n), nil)
	case "orders":
		return section(harness.Table2Normalized(sizes), nil)
	case "fig2":
		out, err := harness.Fig2()
		return section(out, err)
	case "delay":
		return section(harness.RoutingDelaySweep(sizes), nil)
	case "wallclock":
		out, err := harness.WallClock(n, trials, seed)
		return section(out, err)
	case "splits":
		out, err := harness.SplitStress(n)
		return section(out, err)
	case "pipeline":
		out, err := harness.PipelineExperiment(n, 8, seed)
		return section(out, err)
	case "fit":
		out, err := harness.FitExperiment(sizes)
		return section(out, err)
	case "util":
		out, err := harness.UtilizationExperiment(n, seed)
		return section(out, err)
	case "admission":
		out, err := harness.AdmissionExperiment(n, seed)
		return section(out, err)
	case "saturation":
		out, err := harness.SaturationExperiment(n, 100, seed)
		return section(out, err)
	case "ktradeoff":
		return section(harness.KTradeoffExperiment(n), nil)
	case "all":
		for _, e := range []string{"table1", "table2", "orders", "fit", "fig2", "delay", "splits", "pipeline", "util", "admission", "saturation", "ktradeoff", "wallclock"} {
			if err := run(w, e, n, sizes, trials, seed); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
