package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"brsmn/internal/harness"
)

// TestParseSizes covers the sweep-size parser.
func TestParseSizes(t *testing.T) {
	got, err := parseSizes("8, 16,32")
	if err != nil || len(got) != 3 || got[0] != 8 || got[2] != 32 {
		t.Fatalf("parseSizes = %v, %v", got, err)
	}
	if _, err := parseSizes("8,x"); err == nil {
		t.Error("parseSizes accepted garbage")
	}
}

// TestRunEachExperiment smoke-runs every experiment at small sizes.
func TestRunEachExperiment(t *testing.T) {
	sizes := []int{8, 16}
	for _, exp := range []string{"table1", "table2", "orders", "fit", "fig2", "delay", "splits", "pipeline", "util", "admission"} {
		var b strings.Builder
		if err := run(&b, exp, 16, sizes, 2, 1, 4, ""); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if b.Len() == 0 {
			t.Errorf("%s produced no output", exp)
		}
	}
	var b strings.Builder
	if err := run(&b, "wallclock", 16, sizes, 1, 1, 4, ""); err != nil {
		t.Fatalf("wallclock: %v", err)
	}
	if err := run(&b, "nonsense", 16, sizes, 1, 1, 4, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunAll chains every experiment.
func TestRunAll(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", 16, []int{8, 16}, 1, 1, 4, ""); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Table 2", "Pipelined operation", "Maximum-split", "Control-plane recovery"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("all: missing %q", want)
		}
	}
}

// TestRouteJSONRegimes checks the BENCH_route.json shape: all six
// regimes present, in order, with positive timings.
func TestRouteJSONRegimes(t *testing.T) {
	var b strings.Builder
	if err := runJSON(&b, "route", 16, 2, 1, 4, 4, ""); err != nil {
		t.Fatal(err)
	}
	var rep harness.RouteBenchReport
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, b.String())
	}
	want := []string{"cold", "network", "planner", "planner-parallel", "scalar", "delta-churn"}
	if len(rep.Regimes) != len(want) {
		t.Fatalf("%d regimes, want %d", len(rep.Regimes), len(want))
	}
	for i, m := range rep.Regimes {
		if m.Name != want[i] {
			t.Errorf("regime %d = %q, want %q", i, m.Name, want[i])
		}
		if m.NsPerOp <= 0 {
			t.Errorf("regime %q: non-positive timing %d", m.Name, m.NsPerOp)
		}
	}
}

// TestCheckBaseline covers the CI regression gate: matched runs pass,
// a >20% planner regression fails, and a size-mismatched baseline is
// rejected outright.
func TestCheckBaseline(t *testing.T) {
	rep, err := harness.RouteBench(16, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, base harness.RouteBenchReport) string {
		blob, err := harness.MarshalReport(&base)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(p, []byte(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := checkBaseline(rep, write("same.json", *rep)); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
	fast := *rep
	fast.Regimes = append([]harness.Measurement(nil), rep.Regimes...)
	for i := range fast.Regimes {
		if fast.Regimes[i].Name == "planner" {
			fast.Regimes[i].NsPerOp /= 2
		}
	}
	if err := checkBaseline(rep, write("fast.json", fast)); err == nil {
		t.Error("2x planner regression passed the gate")
	}
	wrongN := *rep
	wrongN.N = 32
	if err := checkBaseline(rep, write("wrongn.json", wrongN)); err == nil {
		t.Error("size-mismatched baseline accepted")
	}
	if err := checkBaseline(rep, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline file accepted")
	}
}

// TestRecoveryJSON checks the BENCH_recovery.json shape: both boot
// scenarios, full group recovery, and a loaded snapshot on the
// graceful path.
func TestRecoveryJSON(t *testing.T) {
	var b strings.Builder
	if err := runJSON(&b, "recovery", 16, 2, 1, 4, 4, ""); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Experiment string `json:"experiment"`
		Groups     int    `json:"groups"`
		Scenarios  []struct {
			Name            string `json:"name"`
			NsPerOp         int64  `json:"nsPerOp"`
			Groups          int    `json:"groups"`
			ReplayedRecords int    `json:"replayedRecords"`
			Plans           int    `json:"plans"`
			SnapshotLoaded  bool   `json:"snapshotLoaded"`
		} `json:"scenarios"`
	}
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, b.String())
	}
	if rep.Experiment != "recovery" || len(rep.Scenarios) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	replay, snap := rep.Scenarios[0], rep.Scenarios[1]
	if replay.Name != "log-replay" || replay.Groups != 4 || replay.ReplayedRecords == 0 || replay.SnapshotLoaded {
		t.Fatalf("log-replay = %+v", replay)
	}
	if snap.Name != "snapshot-restore" || snap.Groups != 4 || !snap.SnapshotLoaded ||
		snap.ReplayedRecords != 0 || snap.Plans != 4 {
		t.Fatalf("snapshot-restore = %+v", snap)
	}
	if replay.NsPerOp <= 0 || snap.NsPerOp <= 0 {
		t.Fatalf("non-positive timings: %d, %d", replay.NsPerOp, snap.NsPerOp)
	}
}
