package main

import (
	"strings"
	"testing"
)

// TestParseSizes covers the sweep-size parser.
func TestParseSizes(t *testing.T) {
	got, err := parseSizes("8, 16,32")
	if err != nil || len(got) != 3 || got[0] != 8 || got[2] != 32 {
		t.Fatalf("parseSizes = %v, %v", got, err)
	}
	if _, err := parseSizes("8,x"); err == nil {
		t.Error("parseSizes accepted garbage")
	}
}

// TestRunEachExperiment smoke-runs every experiment at small sizes.
func TestRunEachExperiment(t *testing.T) {
	sizes := []int{8, 16}
	for _, exp := range []string{"table1", "table2", "orders", "fit", "fig2", "delay", "splits", "pipeline", "util", "admission"} {
		var b strings.Builder
		if err := run(&b, exp, 16, sizes, 2, 1); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if b.Len() == 0 {
			t.Errorf("%s produced no output", exp)
		}
	}
	var b strings.Builder
	if err := run(&b, "wallclock", 16, sizes, 1, 1); err != nil {
		t.Fatalf("wallclock: %v", err)
	}
	if err := run(&b, "nonsense", 16, sizes, 1, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunAll chains every experiment.
func TestRunAll(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", 16, []int{8, 16}, 1, 1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Table 2", "Pipelined operation", "Maximum-split"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("all: missing %q", want)
		}
	}
}
