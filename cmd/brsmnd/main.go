// Command brsmnd serves the multicast network over JSON/HTTP: stateless
// routing, batch scheduling, cost queries and tag-sequence encoding,
// plus stateful long-lived multicast groups with epoch-based rerouting
// and a plan cache, partitioned across -shards independent planner
// shards with batched admission. See packages brsmn/internal/api,
// brsmn/internal/groupd and brsmn/internal/shard for the endpoint and
// subsystem contracts.
//
// With -data-dir the daemon is durable: every group mutation is
// written to a per-shard crash-safe WAL before it is acknowledged,
// snapshots bound replay, and a restart recovers all groups (warm plan
// cache included) before serving.
//
// With -node-id and -peers the daemon is one member of a cluster: a
// consistent-hash node ring places each group on one node, any node
// forwards requests it does not own, and POST /v1/cluster/drain moves a
// node's groups (warm plans included) to the rest of the ring. See
// package brsmn/internal/cluster and README "Cluster mode".
//
// Usage:
//
//	brsmnd -addr :8642 -n 1024 -workers 4 -shards 4 -epoch 250ms -epoch-threshold 64 -cache 4096
//	brsmnd -addr :8642 -n 1024 -shards 4 -data-dir /var/lib/brsmnd -snapshot-every 1m -fsync-batch 8
//	brsmnd -addr :8701 -node-id a -peers 'a=http://127.0.0.1:8701,b=http://127.0.0.1:8702,c=http://127.0.0.1:8703'
//
//	curl -s localhost:8642/healthz
//	curl -s -X POST localhost:8642/v1/groups -d '{"id":"conf","source":2,"members":[3,4,7]}'
//	curl -s -X POST localhost:8642/v1/groups/conf/join -d '{"dest":9}'
//	curl -s localhost:8642/v1/epoch
//	curl -s localhost:8642/v1/shards
//	curl -s localhost:8642/metrics
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the per-shard
// epoch loops (and the faultd probers they drive) stop first, then
// in-flight requests drain through http.Server.Shutdown — background
// work never races a closing listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"path/filepath"

	"brsmn/internal/api"
	"brsmn/internal/backend"
	"brsmn/internal/cluster"
	"brsmn/internal/faultd"
	"brsmn/internal/groupd"
	"brsmn/internal/obs"
	"brsmn/internal/rbn"
	"brsmn/internal/shard"
	"brsmn/internal/store"
)

// config is the parsed flag set.
type config struct {
	addr           string
	workers        int
	n              int
	epochPeriod    time.Duration
	epochThreshold int
	cacheSize      int
	shards         int
	registryShards int
	batchMax       int
	queueDepth     int
	ticketCap      int
	ticketTTL      time.Duration
	shutdownGrace  time.Duration
	probeEvery     int64
	probeCount     int
	faultInject    string
	faultSeed      int64
	pprofAddr      string
	metrics        bool
	traceSample    int
	dataDir        string
	snapshotEvery  time.Duration
	fsyncBatch     int
	backendTier    string
	tierAuto       bool
	nodeID         string
	peers          string
	clusterPoll    time.Duration
	forwardTimeout time.Duration
	forwardRetries int
	maxHops        int
}

// parsePeers parses the -peers value: comma-separated id=baseURL pairs.
func parsePeers(spec string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("brsmnd: -peers entry %q: want id=http://host:port", pair)
		}
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			return nil, fmt.Errorf("brsmnd: -peers entry %q: URL must start with http:// or https://", pair)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("brsmnd: -peers: duplicate node ID %q", id)
		}
		peers[id] = url
	}
	if len(peers) == 0 {
		return nil, errors.New("brsmnd: -peers: no entries")
	}
	return peers, nil
}

// parseFlags parses args (without the program name) into a config.
func parseFlags(args []string) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("brsmnd", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", ":8642", "listen address")
	fs.IntVar(&cfg.workers, "workers", 1, "switch-setting worker goroutines per shard")
	fs.IntVar(&cfg.n, "n", 1024, "network size for long-lived groups (power of two)")
	fs.DurationVar(&cfg.epochPeriod, "epoch", 250*time.Millisecond, "epoch reroute period (0 disables the timer)")
	fs.IntVar(&cfg.epochThreshold, "epoch-threshold", 64, "pending membership changes that force an early epoch (0 disables)")
	fs.IntVar(&cfg.cacheSize, "cache", 4096, "plan cache capacity in entries, per shard")
	fs.IntVar(&cfg.shards, "shards", 1, "serving shards: independent planner fabrics groups are partitioned across")
	fs.IntVar(&cfg.registryShards, "registry-shards", 16, "group registry lock shards within each serving shard")
	fs.IntVar(&cfg.batchMax, "batch-max", 32, "max admissions drained per shard worker batch")
	fs.IntVar(&cfg.queueDepth, "queue-depth", 256, "per-shard admission queue depth (full queue sheds with 429)")
	fs.IntVar(&cfg.ticketCap, "ticket-cap", 65536, "async-admission tickets tracked at once (open + completed awaiting pickup)")
	fs.DurationVar(&cfg.ticketTTL, "ticket-ttl", 2*time.Minute, "how long a completed async ticket stays pollable")
	fs.DurationVar(&cfg.shutdownGrace, "grace", 5*time.Second, "graceful shutdown timeout")
	fs.Int64Var(&cfg.probeEvery, "probe-every", 0, "run a fault-probe round every this many epochs (0 disables periodic probing)")
	fs.IntVar(&cfg.probeCount, "probe-count", 4, "self-test assignments per probe round")
	fs.StringVar(&cfg.faultInject, "fault-inject", "", "arm faults at startup on every shard, e.g. stuck:3:1:cross,dead:5:7,flaky:2:0:parallel:0.25")
	fs.Int64Var(&cfg.faultSeed, "fault-seed", 1, "seed for intermittent fault excitation")
	fs.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty disables; keep it off public interfaces)")
	fs.BoolVar(&cfg.metrics, "metrics", true, "serve Prometheus metrics on /metrics")
	fs.IntVar(&cfg.traceSample, "trace-sample", 0, "record a planning trace for every k-th replan per group, served on /v1/trace/{group} (0 disables)")
	fs.StringVar(&cfg.dataDir, "data-dir", "", "durable state directory: per-shard WAL + snapshots, recovered on boot (empty disables durability)")
	fs.DurationVar(&cfg.snapshotEvery, "snapshot-every", time.Minute, "periodic snapshot (and WAL truncation) interval per shard; 0 snapshots only on shutdown and on POST /v1/admin/snapshot")
	fs.IntVar(&cfg.fsyncBatch, "fsync-batch", 8, "WAL appends per fsync; 1 syncs every mutation before it is acknowledged")
	fs.StringVar(&cfg.backendTier, "backend", "", `default planner backend for new groups: "auto", "brsmn", "feedback", or "permnet" (empty keeps brsmn, or auto-selection with -tier-auto)`)
	fs.BoolVar(&cfg.tierAuto, "tier-auto", false, "auto-select each group's planner backend from its observed workload (size, churn, cache-hit profile)")
	fs.StringVar(&cfg.nodeID, "node-id", "", "this node's ID in a multi-node cluster (requires -peers; empty keeps single-node mode)")
	fs.StringVar(&cfg.peers, "peers", "", "cluster membership as comma-separated id=http://host:port pairs, this node included")
	fs.DurationVar(&cfg.clusterPoll, "cluster-poll", 500*time.Millisecond, "membership poll cadence in cluster mode")
	fs.DurationVar(&cfg.forwardTimeout, "forward-timeout", 5*time.Second, "per-attempt timeout when proxying a request to its owning node")
	fs.IntVar(&cfg.forwardRetries, "forward-retries", 2, "extra attempts for a proxied request that fails at the transport level")
	fs.IntVar(&cfg.maxHops, "max-hops", 2, "forwarding hop cap; a request at the cap is served locally")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() != 0 {
		return config{}, fmt.Errorf("brsmnd: unexpected arguments %v", fs.Args())
	}
	if cfg.shards < 1 {
		return config{}, fmt.Errorf("brsmnd: -shards must be at least 1, got %d", cfg.shards)
	}
	if _, err := backend.ParseTier(cfg.backendTier); err != nil {
		return config{}, fmt.Errorf(`brsmnd: -backend %q: want "auto", "brsmn", "feedback", or "permnet"`, cfg.backendTier)
	}
	if (cfg.nodeID == "") != (cfg.peers == "") {
		return config{}, errors.New("brsmnd: -node-id and -peers must be set together")
	}
	if cfg.nodeID != "" {
		peers, err := parsePeers(cfg.peers)
		if err != nil {
			return config{}, err
		}
		if _, ok := peers[cfg.nodeID]; !ok {
			return config{}, fmt.Errorf("brsmnd: -node-id %q not present in -peers", cfg.nodeID)
		}
	}
	return cfg, nil
}

// daemon bundles the subsystems behind the HTTP handler that must stop
// before the listener closes. Close is idempotent and ordered: the
// cluster node first (its membership loop and migration client must not
// poll or push into a tearing-down serving layer), then the shard set
// (epoch loops, admission queues, WAL flush).
type daemon struct {
	set  *shard.Set
	node *cluster.Node // nil outside cluster mode
}

func (d *daemon) Close() error {
	if d.node != nil {
		if err := d.node.Close(); err != nil {
			d.set.Close()
			return err
		}
	}
	return d.set.Close()
}

// newHandler builds the live HTTP handler plus the daemon behind it
// (which the caller must Close).
func newHandler(cfg config) (http.Handler, *daemon, error) {
	eng := rbn.Engine{Workers: cfg.workers}
	defaultTier, err := backend.ParseTier(cfg.backendTier)
	if err != nil {
		return nil, nil, err // parseFlags validated; unreachable from main
	}
	var reg *obs.Registry
	var tracer *obs.TraceRecorder
	if cfg.metrics {
		reg = obs.NewRegistry()
		if cfg.nodeID != "" {
			// Every series this process exports carries its node identity,
			// mirroring the per-shard shard="k" labels: one aggregator can
			// scrape N nodes without series colliding.
			reg.SetCommonLabel(fmt.Sprintf("node=%q", cfg.nodeID))
		}
		eng.Occ = &rbn.Occupancy{}
		occ := eng.Occ
		reg.GaugeFunc("brsmn_engine_workers", "Configured switch-setting worker goroutines.",
			func() float64 { return float64(cfg.workers) })
		reg.GaugeFunc(`brsmn_engine_occupancy{kind="busy"}`,
			"Switch-setting workers: currently running and observed peak.",
			func() float64 { return float64(occ.Busy()) })
		reg.GaugeFunc(`brsmn_engine_occupancy{kind="peak"}`,
			"Switch-setting workers: currently running and observed peak.",
			func() float64 { return float64(occ.Peak()) })
		reg.GaugeFunc("brsmn_goroutines", "Live goroutines in the daemon process.",
			func() float64 { return float64(runtime.NumGoroutine()) })
	}
	if cfg.traceSample > 0 {
		tracer = obs.NewTraceRecorder(cfg.traceSample)
	}

	// One fault monitor (own fabric, own injector stream) per serving
	// shard. Startup faults arm on every shard so detection behaves the
	// same at any -shards.
	var armed []faultd.Fault
	if cfg.faultInject != "" {
		var err error
		if armed, err = faultd.ParseSpec(cfg.faultInject); err != nil {
			return nil, nil, err
		}
	}
	monitors := make([]*faultd.Monitor, cfg.shards)
	for i := range monitors {
		inj := faultd.NewInjector(cfg.faultSeed + int64(i))
		fm, err := faultd.NewMonitor(faultd.Config{
			N:            cfg.n,
			Engine:       eng,
			ProbeCount:   cfg.probeCount,
			ProbeEvery:   cfg.probeEvery,
			MetricsLabel: fmt.Sprintf(`shard="%d"`, i),
		}, inj)
		if err != nil {
			return nil, nil, err
		}
		for _, f := range armed {
			if err := f.Validate(fm.N(), fm.Depth()); err != nil {
				return nil, nil, err
			}
			inj.Add(f)
		}
		// Register before the shard set starts its epoch loops: AfterEpoch
		// probing reads the monitor's instruments from those goroutines.
		if reg != nil {
			fm.RegisterMetrics(reg)
		}
		monitors[i] = fm
	}

	// Durability: one store (WAL + snapshot stream) per serving shard
	// under -data-dir. The snapshots carry the armed fault specs, so
	// believed faults survive a restart alongside the groups.
	var newStore func(int) (store.Store, error)
	var faultSpecs func(int) []string
	if cfg.dataDir != "" {
		newStore = func(i int) (store.Store, error) {
			return store.OpenFile(filepath.Join(cfg.dataDir, fmt.Sprintf("shard-%d", i)), store.FileConfig{
				FsyncBatch: cfg.fsyncBatch,
				Metrics:    store.RegisterMetrics(reg, fmt.Sprintf(`shard="%d"`, i)),
			})
		}
		faultSpecs = func(i int) []string {
			fs := monitors[i].Injector().List()
			specs := make([]string, len(fs))
			for k, f := range fs {
				specs[k] = f.String()
			}
			return specs
		}
	}

	set, err := shard.New(shard.Config{
		Shards:     cfg.shards,
		QueueDepth: cfg.queueDepth,
		BatchMax:   cfg.batchMax,
		TicketCap:  cfg.ticketCap,
		TicketTTL:  cfg.ticketTTL,
		TicketNode: cfg.nodeID,
		Group: groupd.Config{
			N:              cfg.n,
			Engine:         eng,
			Shards:         cfg.registryShards,
			CacheSize:      cfg.cacheSize,
			EpochPeriod:    cfg.epochPeriod,
			EpochThreshold: cfg.epochThreshold,
			Workers:        cfg.workers,
			Tracer:         tracer,
			DefaultBackend: defaultTier,
			TierAuto:       cfg.tierAuto,
		},
		NewPolicy:     func(i int) groupd.FaultPolicy { return monitors[i] },
		OnQuarantine:  func(i int) { log.Printf("brsmnd: shard %d reported unhealthy, quarantined and rebalanced", i) },
		Metrics:       reg,
		NewStore:      newStore,
		SnapshotEvery: cfg.snapshotEvery,
		FaultSpecs:    faultSpecs,
	})
	if err != nil {
		return nil, nil, err
	}
	if cfg.dataDir != "" {
		for i := 0; i < set.Shards(); i++ {
			gm, err := set.Manager(i)
			if err != nil {
				set.Close()
				return nil, nil, err
			}
			inj := monitors[i].Injector()
			// Re-arm the faults that were believed when the recovered
			// state was persisted, skipping ones the -fault-inject flag
			// already armed.
			already := make(map[string]bool)
			for _, f := range inj.List() {
				already[f.String()] = true
			}
			for _, spec := range gm.RecoveredFaults() {
				if already[spec] {
					continue
				}
				fs, err := faultd.ParseSpec(spec)
				if err != nil {
					log.Printf("brsmnd: shard %d: dropping recovered fault %q: %v", i, spec, err)
					continue
				}
				for _, f := range fs {
					if err := f.Validate(monitors[i].N(), monitors[i].Depth()); err != nil {
						log.Printf("brsmnd: shard %d: dropping recovered fault %q: %v", i, spec, err)
						continue
					}
					inj.Add(f)
					already[f.String()] = true
				}
			}
			// Journal runtime fault mutations (POST/DELETE /v1/faults)
			// into this shard's WAL. Installed after re-arm so recovery
			// itself is not re-journaled.
			inj.SetJournal(
				func(f faultd.Fault) { gm.JournalFault(f.String()) },
				gm.JournalFaultClear,
			)
			if rs := gm.Recovery(); rs.SnapshotLoaded || rs.Records > 0 || rs.Groups > 0 {
				log.Printf("brsmnd: shard %d recovered %d groups, %d warm plans, %d log records (snapshot=%v) in %v",
					i, rs.Groups, rs.Plans, rs.Records, rs.SnapshotLoaded, rs.Duration)
			}
		}
	}
	opts := []api.Option{api.WithShards(set, monitors)}
	if cfg.dataDir != "" {
		opts = append(opts, api.WithSnapshots(set))
	}
	if reg != nil {
		opts = append(opts, api.WithMetrics(reg))
	}
	if tracer != nil {
		opts = append(opts, api.WithTracer(tracer))
	}
	d := &daemon{set: set}
	if cfg.nodeID != "" {
		// Readiness: in cluster mode a node is ready once its first
		// membership poll completes and while it is not draining. The
		// closure is installed before the node exists; d.node is written
		// once below, before any request can reach the handler.
		opts = append(opts, api.WithReadiness(func() error {
			if d.node == nil {
				return nil
			}
			return d.node.Ready()
		}))
	}
	apiHandler := api.NewServer(eng, set, nil, opts...)
	if cfg.nodeID == "" {
		return apiHandler, d, nil
	}
	peers, err := parsePeers(cfg.peers)
	if err != nil {
		set.Close()
		return nil, nil, err
	}
	node, err := cluster.New(cluster.Config{
		Self:           cfg.nodeID,
		Peers:          peers,
		Local:          set,
		Handler:        apiHandler,
		PollEvery:      cfg.clusterPoll,
		ForwardTimeout: cfg.forwardTimeout,
		ForwardRetries: cfg.forwardRetries,
		MaxHops:        cfg.maxHops,
		Metrics:        reg,
		Logf:           log.Printf,
	})
	if err != nil {
		set.Close()
		return nil, nil, err
	}
	d.node = node
	return node, d, nil
}

// run serves until ctx is cancelled (the signal path) or the listener
// fails, then drains in-flight requests and the epoch loops.
func run(ctx context.Context, out io.Writer, cfg config) error {
	handler, d, err := newHandler(cfg)
	if err != nil {
		return err
	}
	defer d.Close()
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	// The profiling endpoints live on their own mux and listener so the
	// serving address never exposes them; see README "Profiling".
	if cfg.pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: cfg.pprofAddr, Handler: pmux, ReadHeaderTimeout: 5 * time.Second}
		defer psrv.Close()
		go func() {
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("brsmnd: pprof listener: %v", err)
			}
		}()
		fmt.Fprintf(out, "brsmnd: pprof on %s/debug/pprof/\n", cfg.pprofAddr)
	}
	fmt.Fprintf(out, "brsmnd: serving a %d-port BRSMN on %s (%d shards, epoch %v, threshold %d, cache %d)\n",
		cfg.n, cfg.addr, cfg.shards, cfg.epochPeriod, cfg.epochThreshold, cfg.cacheSize)
	if cfg.nodeID != "" {
		fmt.Fprintf(out, "brsmnd: cluster node %s (%s)\n", cfg.nodeID, cfg.peers)
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(out, "brsmnd: signal received, draining")
		// Shutdown ordering: the cluster node first (membership polls and
		// migration pushes stop), then the admission queues and epoch
		// tickers (and the faultd probers they drive via AfterEpoch), and
		// only then the listener: background replans and forwarded
		// requests must not keep running into a server that is tearing
		// down. With -data-dir, Close also flushes and fsyncs the WALs and
		// writes the final per-shard snapshots, after the epoch loops have
		// stopped and before the process exits.
		if err := d.Close(); err != nil {
			return err
		}
		if cfg.dataDir != "" {
			fmt.Fprintln(out, "brsmnd: state snapshotted to disk")
		}
		sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("brsmnd: shutdown: %w", err)
		}
		fmt.Fprintln(out, "brsmnd: bye")
		return nil
	}
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, cfg); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
