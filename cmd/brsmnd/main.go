// Command brsmnd serves the multicast network over JSON/HTTP: routing,
// batch scheduling, cost queries and tag-sequence encoding. See package
// brsmn/internal/api for the endpoint contract.
//
// Usage:
//
//	brsmnd -addr :8642 -workers 4
//
//	curl -s localhost:8642/cost?n=256
//	curl -s -X POST localhost:8642/route -d '{"n":8,"dests":[[0,1],null,[3,4,7],[2],null,null,null,[5,6]]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"brsmn/internal/api"
	"brsmn/internal/rbn"
)

func main() {
	var (
		addr    = flag.String("addr", ":8642", "listen address")
		workers = flag.Int("workers", 1, "switch-setting worker goroutines")
	)
	flag.Parse()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewServer(rbn.Engine{Workers: *workers}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("brsmnd: serving the BRSMN on %s\n", *addr)
	log.Fatal(srv.ListenAndServe())
}
