package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8642" || cfg.n != 1024 || cfg.workers != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.epochPeriod != 250*time.Millisecond || cfg.epochThreshold != 64 || cfg.cacheSize != 4096 {
		t.Fatalf("epoch defaults = %+v", cfg)
	}
	if cfg.probeEvery != 0 || cfg.probeCount != 4 || cfg.faultInject != "" || cfg.faultSeed != 1 {
		t.Fatalf("fault defaults = %+v", cfg)
	}
	if !cfg.metrics || cfg.traceSample != 0 {
		t.Fatalf("observability defaults = %+v", cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", ":9000", "-n", "64", "-workers", "3",
		"-epoch", "1s", "-epoch-threshold", "8", "-cache", "16", "-shards", "4",
		"-probe-every", "2", "-probe-count", "6", "-fault-inject", "dead:0:1", "-fault-seed", "99",
		"-metrics=false", "-trace-sample", "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":9000" || cfg.n != 64 || cfg.workers != 3 ||
		cfg.epochPeriod != time.Second || cfg.epochThreshold != 8 ||
		cfg.cacheSize != 16 || cfg.shards != 4 {
		t.Fatalf("overrides = %+v", cfg)
	}
	if cfg.probeEvery != 2 || cfg.probeCount != 6 || cfg.faultInject != "dead:0:1" || cfg.faultSeed != 99 {
		t.Fatalf("fault overrides = %+v", cfg)
	}
	if cfg.metrics || cfg.traceSample != 7 {
		t.Fatalf("observability overrides = %+v", cfg)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	// An invalid network size surfaces at handler construction.
	cfg, err := parseFlags([]string{"-n", "12"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := newHandler(cfg); err == nil {
		t.Fatal("n = 12 accepted by newHandler")
	}
	// A malformed or out-of-range fault spec also surfaces there.
	cfg, err = parseFlags([]string{"-n", "8", "-fault-inject", "stuck:3"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := newHandler(cfg); err == nil {
		t.Fatal("malformed -fault-inject accepted by newHandler")
	}
	cfg, err = parseFlags([]string{"-n", "8", "-fault-inject", "dead:999:0"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := newHandler(cfg); err == nil {
		t.Fatal("out-of-range -fault-inject accepted by newHandler")
	}
}

// TestHandlerRoundTrip drives the real daemon handler over httptest:
// stateless /route plus the stateful group lifecycle, with periodic
// probing armed so the epoch also exercises the fault monitor hook.
func TestHandlerRoundTrip(t *testing.T) {
	cfg, err := parseFlags([]string{"-n", "8", "-epoch", "0", "-epoch-threshold", "0", "-probe-every", "1"})
	if err != nil {
		t.Fatal(err)
	}
	handler, gm, err := newHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer gm.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// Stateless route: the paper's Fig. 2 example.
	resp, err := http.Post(ts.URL+"/route", "application/json",
		strings.NewReader(`{"n":8,"dests":[[0,1],null,[3,4,7],[2],null,null,null,[5,6]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var route struct {
		Deliveries []int `json:"deliveries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&route); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || route.Deliveries[7] != 2 {
		t.Fatalf("route = %d, deliveries %v", resp.StatusCode, route.Deliveries)
	}

	// Stateful: create a group, join, run an epoch, check health.
	resp, err = http.Post(ts.URL+"/groups", "application/json",
		strings.NewReader(`{"id":"g","source":1,"members":[2,5]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/groups/g/join", "application/json", strings.NewReader(`{"dest":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/epoch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Epoch  int64 `json:"epoch"`
		Groups int   `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Epoch != 1 || rep.Groups != 1 {
		t.Fatalf("epoch report = %+v", rep)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
		Groups int    `json:"groups"`
		Epoch  int64  `json:"epoch"`
		Faults *struct {
			ProbeRounds uint64 `json:"probeRounds"`
			Detected    bool   `json:"detected"`
		} `json:"faults"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Groups != 1 || h.Epoch != 1 {
		t.Fatalf("healthz = %+v", h)
	}
	// -probe-every 1 means the epoch above ran one probe round on the
	// clean fabric.
	if h.Faults == nil || h.Faults.ProbeRounds != 1 || h.Faults.Detected {
		t.Fatalf("healthz faults = %+v", h.Faults)
	}
}

// TestRunGracefulShutdown boots the real server on an ephemeral port,
// serves a request, then cancels the context and expects a clean drain.
func TestRunGracefulShutdown(t *testing.T) {
	// Find a free port; the tiny window between Close and ListenAndServe
	// is acceptable in a test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cfg, err := parseFlags([]string{"-addr", addr, "-n", "8", "-epoch", "5ms"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out strings.Builder
	done := make(chan error, 1)
	go func() { done <- run(ctx, &out, cfg) }()

	// Wait for the server to come up, then hit it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
	if !strings.Contains(out.String(), "draining") || !strings.Contains(out.String(), "bye") {
		t.Fatalf("shutdown log missing: %q", out.String())
	}
}
