package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8642" || cfg.n != 1024 || cfg.workers != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.epochPeriod != 250*time.Millisecond || cfg.epochThreshold != 64 || cfg.cacheSize != 4096 {
		t.Fatalf("epoch defaults = %+v", cfg)
	}
	if cfg.shards != 1 || cfg.registryShards != 16 || cfg.batchMax != 32 || cfg.queueDepth != 256 {
		t.Fatalf("shard defaults = %+v", cfg)
	}
	if cfg.probeEvery != 0 || cfg.probeCount != 4 || cfg.faultInject != "" || cfg.faultSeed != 1 {
		t.Fatalf("fault defaults = %+v", cfg)
	}
	if !cfg.metrics || cfg.traceSample != 0 {
		t.Fatalf("observability defaults = %+v", cfg)
	}
	if cfg.dataDir != "" || cfg.snapshotEvery != time.Minute || cfg.fsyncBatch != 8 {
		t.Fatalf("durability defaults = %+v", cfg)
	}
	if cfg.nodeID != "" || cfg.peers != "" || cfg.clusterPoll != 500*time.Millisecond ||
		cfg.forwardTimeout != 5*time.Second || cfg.forwardRetries != 2 || cfg.maxHops != 2 {
		t.Fatalf("cluster defaults = %+v", cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", ":9000", "-n", "64", "-workers", "3",
		"-epoch", "1s", "-epoch-threshold", "8", "-cache", "16",
		"-shards", "4", "-registry-shards", "8", "-batch-max", "16", "-queue-depth", "64",
		"-probe-every", "2", "-probe-count", "6", "-fault-inject", "dead:0:1", "-fault-seed", "99",
		"-metrics=false", "-trace-sample", "7",
		"-data-dir", "/tmp/brsmnd-x", "-snapshot-every", "30s", "-fsync-batch", "1",
		"-node-id", "a", "-peers", "a=http://127.0.0.1:1,b=http://127.0.0.1:2",
		"-cluster-poll", "100ms", "-forward-timeout", "2s", "-forward-retries", "1", "-max-hops", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":9000" || cfg.n != 64 || cfg.workers != 3 ||
		cfg.epochPeriod != time.Second || cfg.epochThreshold != 8 || cfg.cacheSize != 16 {
		t.Fatalf("overrides = %+v", cfg)
	}
	if cfg.shards != 4 || cfg.registryShards != 8 || cfg.batchMax != 16 || cfg.queueDepth != 64 {
		t.Fatalf("shard overrides = %+v", cfg)
	}
	if cfg.probeEvery != 2 || cfg.probeCount != 6 || cfg.faultInject != "dead:0:1" || cfg.faultSeed != 99 {
		t.Fatalf("fault overrides = %+v", cfg)
	}
	if cfg.metrics || cfg.traceSample != 7 {
		t.Fatalf("observability overrides = %+v", cfg)
	}
	if cfg.dataDir != "/tmp/brsmnd-x" || cfg.snapshotEvery != 30*time.Second || cfg.fsyncBatch != 1 {
		t.Fatalf("durability overrides = %+v", cfg)
	}
	if cfg.nodeID != "a" || cfg.peers != "a=http://127.0.0.1:1,b=http://127.0.0.1:2" ||
		cfg.clusterPoll != 100*time.Millisecond || cfg.forwardTimeout != 2*time.Second ||
		cfg.forwardRetries != 1 || cfg.maxHops != 3 {
		t.Fatalf("cluster overrides = %+v", cfg)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	if _, err := parseFlags([]string{"-shards", "0"}); err == nil {
		t.Fatal("-shards 0 accepted")
	}
	// Cluster flags come as a pair and must be self-consistent.
	if _, err := parseFlags([]string{"-node-id", "a"}); err == nil {
		t.Fatal("-node-id without -peers accepted")
	}
	if _, err := parseFlags([]string{"-peers", "a=http://127.0.0.1:1"}); err == nil {
		t.Fatal("-peers without -node-id accepted")
	}
	if _, err := parseFlags([]string{"-node-id", "c", "-peers", "a=http://127.0.0.1:1,b=http://127.0.0.1:2"}); err == nil {
		t.Fatal("-node-id missing from -peers accepted")
	}
	if _, err := parseFlags([]string{"-node-id", "a", "-peers", "a=127.0.0.1:1"}); err == nil {
		t.Fatal("-peers URL without scheme accepted")
	}
	if _, err := parseFlags([]string{"-node-id", "a", "-peers", "a=http://x,a=http://y"}); err == nil {
		t.Fatal("duplicate -peers node ID accepted")
	}
	// An invalid network size surfaces at handler construction.
	cfg, err := parseFlags([]string{"-n", "12"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := newHandler(cfg); err == nil {
		t.Fatal("n = 12 accepted by newHandler")
	}
	// A malformed or out-of-range fault spec also surfaces there.
	cfg, err = parseFlags([]string{"-n", "8", "-fault-inject", "stuck:3"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := newHandler(cfg); err == nil {
		t.Fatal("malformed -fault-inject accepted by newHandler")
	}
	cfg, err = parseFlags([]string{"-n", "8", "-fault-inject", "dead:999:0"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := newHandler(cfg); err == nil {
		t.Fatal("out-of-range -fault-inject accepted by newHandler")
	}
}

// envelope is the /v1 response shape the daemon tests unwrap.
type envelope struct {
	Data  json.RawMessage `json:"data"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// unwrap decodes resp's envelope data into out (when non-nil) and
// returns the status code.
func unwrap(t *testing.T, resp *http.Response, out any) int {
	t.Helper()
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("%s: not an envelope: %v", resp.Request.URL.Path, err)
	}
	if out != nil && len(env.Data) > 0 && string(env.Data) != "null" {
		if err := json.Unmarshal(env.Data, out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestHandlerRoundTrip drives the real daemon handler over httptest:
// stateless /v1/route plus the stateful group lifecycle, with periodic
// probing armed so the epoch also exercises the fault monitor hook.
func TestHandlerRoundTrip(t *testing.T) {
	cfg, err := parseFlags([]string{"-n", "8", "-epoch", "0", "-epoch-threshold", "0", "-probe-every", "1"})
	if err != nil {
		t.Fatal(err)
	}
	handler, set, err := newHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// Stateless route: the paper's Fig. 2 example.
	resp, err := http.Post(ts.URL+"/v1/route", "application/json",
		strings.NewReader(`{"n":8,"dests":[[0,1],null,[3,4,7],[2],null,null,null,[5,6]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var route struct {
		Deliveries []int `json:"deliveries"`
	}
	if code := unwrap(t, resp, &route); code != http.StatusOK || route.Deliveries[7] != 2 {
		t.Fatalf("route = %d, deliveries %v", code, route.Deliveries)
	}

	// Stateful: create a group, join, run an epoch, check health.
	resp, err = http.Post(ts.URL+"/v1/groups", "application/json",
		strings.NewReader(`{"id":"g","source":1,"members":[2,5]}`))
	if err != nil {
		t.Fatal(err)
	}
	if code := unwrap(t, resp, nil); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	resp, err = http.Post(ts.URL+"/v1/groups/g/join", "application/json", strings.NewReader(`{"dest":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if code := unwrap(t, resp, nil); code != http.StatusOK {
		t.Fatalf("join = %d", code)
	}
	resp, err = http.Post(ts.URL+"/v1/epoch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Epoch  int64 `json:"epoch"`
		Groups int   `json:"groups"`
	}
	if code := unwrap(t, resp, &rep); code != http.StatusOK || rep.Epoch != 1 || rep.Groups != 1 {
		t.Fatalf("epoch = %d, report = %+v", code, rep)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
		Groups int    `json:"groups"`
		Epoch  int64  `json:"epoch"`
		Faults *struct {
			ProbeRounds uint64 `json:"probeRounds"`
			Detected    bool   `json:"detected"`
		} `json:"faults"`
		Shards *struct {
			Shards int `json:"shards"`
			Live   int `json:"live"`
		} `json:"shards"`
	}
	if code := unwrap(t, resp, &h); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if h.Status != "ok" || h.Groups != 1 || h.Epoch != 1 {
		t.Fatalf("healthz = %+v", h)
	}
	// -probe-every 1 means the epoch above ran one probe round on the
	// clean fabric.
	if h.Faults == nil || h.Faults.ProbeRounds != 1 || h.Faults.Detected {
		t.Fatalf("healthz faults = %+v", h.Faults)
	}
	if h.Shards == nil || h.Shards.Shards != 1 || h.Shards.Live != 1 {
		t.Fatalf("healthz shards = %+v", h.Shards)
	}

	// The legacy paths still work end to end: 308 replays the POST body
	// against the /v1 successor.
	resp, err = http.Post(ts.URL+"/groups/g/leave", "application/json", strings.NewReader(`{"dest":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if code := unwrap(t, resp, nil); code != http.StatusOK {
		t.Fatalf("legacy leave = %d", code)
	}
}

// TestHandlerSharded boots a 3-shard daemon handler and checks groups
// land across shards and the shard surface reports them.
func TestHandlerSharded(t *testing.T) {
	cfg, err := parseFlags([]string{"-n", "16", "-shards", "3", "-epoch", "0", "-epoch-threshold", "0"})
	if err != nil {
		t.Fatal(err)
	}
	handler, set, err := newHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()

	for i := 0; i < 12; i++ {
		resp, err := http.Post(ts.URL+"/v1/groups", "application/json",
			strings.NewReader(`{"source":`+string(rune('0'+i%8))+`,"members":[8]}`))
		if err != nil {
			t.Fatal(err)
		}
		if code := unwrap(t, resp, nil); code != http.StatusCreated {
			t.Fatalf("create %d = %d", i, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Shards   int `json:"shards"`
		Live     int `json:"live"`
		Groups   int `json:"groups"`
		PerShard []struct {
			Groups   int    `json:"groups"`
			Admitted uint64 `json:"admitted"`
		} `json:"perShard"`
	}
	if code := unwrap(t, resp, &stats); code != http.StatusOK {
		t.Fatalf("shards = %d", code)
	}
	if stats.Shards != 3 || stats.Live != 3 || stats.Groups != 12 {
		t.Fatalf("shard stats = %+v", stats)
	}
	var admitted uint64
	for _, ps := range stats.PerShard {
		admitted += ps.Admitted
	}
	if admitted != 12 {
		t.Fatalf("admitted across shards = %d, want 12", admitted)
	}
}

// TestRunGracefulShutdown boots the real server on an ephemeral port,
// serves a request, then cancels the context and expects a clean drain.
func TestRunGracefulShutdown(t *testing.T) {
	// Find a free port; the tiny window between Close and ListenAndServe
	// is acceptable in a test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cfg, err := parseFlags([]string{"-addr", addr, "-n", "8", "-epoch", "5ms"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out strings.Builder
	done := make(chan error, 1)
	go func() { done <- run(ctx, &out, cfg) }()

	// Wait for the server to come up, then hit it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
	if !strings.Contains(out.String(), "draining") || !strings.Contains(out.String(), "bye") {
		t.Fatalf("shutdown log missing: %q", out.String())
	}
}
