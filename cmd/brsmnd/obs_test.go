package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHandlerMetricsAndTrace drives the default (-metrics on) handler
// and checks the scrape and trace surfaces end to end. All planner and
// faultd series carry the shard label.
func TestHandlerMetricsAndTrace(t *testing.T) {
	cfg, err := parseFlags([]string{"-n", "8", "-epoch", "0", "-epoch-threshold", "0", "-trace-sample", "1", "-probe-every", "1"})
	if err != nil {
		t.Fatal(err)
	}
	handler, set, err := newHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()

	post := func(path, body string, want int) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	post("/v1/groups", `{"id":"g","source":1,"members":[2,5]}`, http.StatusCreated)
	post("/v1/epoch", "", http.StatusOK)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	text := string(raw)
	for _, series := range []string{
		"brsmn_epoch_duration_seconds",
		"brsmn_plan_cache_ops_total",
		"brsmn_planner_pool_ops_total",
		`brsmn_faultd_probe_rounds_total{shard="0"} 1`,
		"brsmn_engine_occupancy",
		"brsmn_goroutines",
		"brsmn_http_requests_total",
		`brsmn_shard_admitted_total{shard="0"} 1`,
		`brsmn_shard_queue_capacity{shard="0"} 256`,
		"brsmn_shards 1",
		"brsmn_shards_live 1",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/trace/g")
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Data *struct {
			Group string `json:"group"`
			Trace *struct {
				N       int   `json:"n"`
				TotalNs int64 `json:"totalNs"`
			} `json:"trace"`
		} `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || env.Data == nil || env.Data.Group != "g" ||
		env.Data.Trace == nil || env.Data.Trace.N != 8 {
		t.Fatalf("/v1/trace/g = %d, %+v", resp.StatusCode, env.Data)
	}
}

// TestHandlerMetricsDisabled checks -metrics=false removes the scrape
// surface (503, the disabled convention) without breaking serving.
func TestHandlerMetricsDisabled(t *testing.T) {
	cfg, err := parseFlags([]string{"-n", "8", "-epoch", "0", "-metrics=false"})
	if err != nil {
		t.Fatal(err)
	}
	handler, set, err := newHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/metrics with -metrics=false = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
}

// daemonGoroutines scans all goroutine stacks for daemon-owned work:
// the epoch loops, shard admission workers, fault probing, the cluster
// membership loop and its rebalance sweeps, the run loop itself, or the
// serving listener. After a clean shutdown none may remain.
func daemonGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var leaked []string
	for _, s := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(s, "brsmn/internal/groupd.(*Manager).loop") ||
			strings.Contains(s, "brsmn/internal/shard.(*Shard).worker") ||
			strings.Contains(s, "brsmn/internal/shard.(*Set).snapshotLoop") ||
			strings.Contains(s, "brsmn/internal/faultd.(*Monitor).RunProbes") ||
			strings.Contains(s, "brsmn/internal/cluster.(*Node).loop") ||
			strings.Contains(s, "brsmn/internal/cluster.(*Node).sweep") ||
			strings.Contains(s, "brsmn/internal/cluster.(*Node).pollRound") ||
			strings.Contains(s, "brsmn/cmd/brsmnd.run(") ||
			strings.Contains(s, "net/http.(*Server).Serve") {
			leaked = append(leaked, s)
		}
	}
	return leaked
}

// TestRunShutdownUnderLoad cancels a sharded daemon while client
// goroutines hammer epoch and membership endpoints, then asserts no
// daemon goroutine outlives run — the regression for the
// shutdown-ordering bug where the epoch ticker and fault prober kept
// replanning against a closing server.
func TestRunShutdownUnderLoad(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	// A fast epoch timer plus periodic probing keeps background work
	// in flight at cancel time, on two shards, with a durable data dir
	// and a fast snapshot loop so WAL appends and snapshot writes race
	// the drain too.
	dir := t.TempDir()
	cfg, err := parseFlags([]string{"-addr", addr, "-n", "16", "-shards", "2", "-epoch", "1ms", "-probe-every", "1", "-trace-sample", "1",
		"-data-dir", dir, "-snapshot-every", "10ms", "-fsync-batch", "1"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out strings.Builder
	done := make(chan error, 1)
	go func() { done <- run(ctx, &out, cfg) }()

	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/groups", "application/json",
		strings.NewReader(`{"id":"g","source":1,"members":[2,5]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stop := make(chan struct{})
	var clients sync.WaitGroup
	for i := 0; i < 4; i++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once the listener closes.
				if resp, err := http.Post(base+"/v1/epoch", "application/json", nil); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if resp, err := http.Get(base + "/metrics"); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond) // let load and epochs overlap
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancel under load")
	}
	close(stop)
	clients.Wait()

	// Daemon goroutines may need a beat to unwind after run returns.
	deadline = time.Now().Add(5 * time.Second)
	for {
		leaked := daemonGoroutines()
		if len(leaked) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d daemon goroutines survived shutdown:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The WAL flushed and the final snapshot landed after the epoch
	// ticker and prober stopped, before run returned.
	if !strings.Contains(out.String(), "state snapshotted to disk") {
		t.Fatalf("shutdown log missing snapshot line: %q", out.String())
	}
	for i := 0; i < 2; i++ {
		snap := filepath.Join(dir, fmt.Sprintf("shard-%d", i), "snapshot.brss")
		if _, err := os.Stat(snap); err != nil {
			t.Errorf("final snapshot for shard %d missing: %v", i, err)
		}
	}
}
