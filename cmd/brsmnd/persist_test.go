package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRestartRecovery boots the daemon handler against a data dir,
// builds state over the /v1 API, shuts down cleanly, and boots a
// second handler on the same dir: every group, the warm plan cache,
// the armed fault set, and the epoch counter must survive.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	flags := []string{"-n", "16", "-shards", "2", "-epoch", "0", "-epoch-threshold", "0",
		"-data-dir", dir, "-fsync-batch", "1"}

	cfg, err := parseFlags(flags)
	if err != nil {
		t.Fatal(err)
	}
	handler, set, err := newHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)

	post := func(ts *httptest.Server, path, body string, out any) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return unwrap(t, resp, out)
	}
	get := func(ts *httptest.Server, path string, out any) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return unwrap(t, resp, out)
	}

	// Named groups, an auto-ID group, a join, and a delete — the full
	// record vocabulary lands in the WAL.
	if code := post(ts, "/v1/groups", `{"id":"conf","source":2,"members":[3,4]}`, nil); code != http.StatusCreated {
		t.Fatalf("create conf = %d", code)
	}
	if code := post(ts, "/v1/groups", `{"id":"beam","source":5,"members":[1,7]}`, nil); code != http.StatusCreated {
		t.Fatalf("create beam = %d", code)
	}
	if code := post(ts, "/v1/groups", `{"id":"gone","source":0,"members":[9]}`, nil); code != http.StatusCreated {
		t.Fatalf("create gone = %d", code)
	}
	var auto struct {
		ID string `json:"id"`
	}
	if code := post(ts, "/v1/groups", `{"source":6,"members":[10,11]}`, &auto); code != http.StatusCreated || auto.ID == "" {
		t.Fatalf("auto create = %d, id %q", code, auto.ID)
	}
	if code := post(ts, "/v1/groups/conf/join", `{"dest":7}`, nil); code != http.StatusOK {
		t.Fatalf("join = %d", code)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/groups/gone", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if code := unwrap(t, resp, nil); code != http.StatusOK {
		t.Fatalf("delete = %d", code)
	}

	// Warm conf's plan so the snapshot carries it.
	var plan1 struct {
		Gen  uint64 `json:"gen"`
		Plan string `json:"plan"`
	}
	if code := get(ts, "/v1/groups/conf/plan", &plan1); code != http.StatusOK || plan1.Plan == "" {
		t.Fatalf("plan = %d, %+v", code, plan1)
	}

	// Arm a runtime fault on shard 0 and run one epoch; both are
	// journaled.
	if code := post(ts, "/v1/faults", `{"spec":"dead:0:1"}`, nil); code != http.StatusOK {
		t.Fatalf("inject = %d", code)
	}
	var ep struct {
		Epoch int64 `json:"epoch"`
	}
	if code := post(ts, "/v1/epoch", "", &ep); code != http.StatusOK || ep.Epoch != 1 {
		t.Fatalf("epoch = %d, %+v", code, ep)
	}

	// The admin surface snapshots on demand over the real daemon wiring.
	var snap struct {
		Snapshots []struct {
			Shard int `json:"shard"`
			Bytes int `json:"bytes"`
		} `json:"snapshots"`
	}
	if code := post(ts, "/v1/admin/snapshot", "", &snap); code != http.StatusOK || len(snap.Snapshots) != 2 {
		t.Fatalf("admin snapshot = %d, %+v", code, snap)
	}

	ts.Close()
	if err := set.Close(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	// Second life.
	cfg, err = parseFlags(flags)
	if err != nil {
		t.Fatal(err)
	}
	handler, set2, err := newHandler(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer set2.Close()
	ts2 := httptest.NewServer(handler)
	defer ts2.Close()

	var list struct {
		Count int `json:"count"`
	}
	if code := get(ts2, "/v1/groups", &list); code != http.StatusOK || list.Count != 3 {
		t.Fatalf("recovered groups = %d, %+v (want 3)", code, list)
	}
	var g struct {
		Source  int    `json:"source"`
		Gen     uint64 `json:"gen"`
		Members []int  `json:"members"`
	}
	if code := get(ts2, "/v1/groups/conf", &g); code != http.StatusOK ||
		g.Source != 2 || len(g.Members) != 3 {
		t.Fatalf("conf after restart = %d, %+v", code, g)
	}
	if code := get(ts2, "/v1/groups/"+auto.ID, nil); code != http.StatusOK {
		t.Fatalf("auto group after restart = %d", code)
	}
	if code := get(ts2, "/v1/groups/gone", nil); code != http.StatusNotFound {
		t.Fatalf("deleted group after restart = %d, want 404", code)
	}

	// The very first plan request is a warm cache hit with the same
	// column program.
	var plan2 struct {
		Gen    uint64 `json:"gen"`
		Cached bool   `json:"cached"`
		Plan   string `json:"plan"`
	}
	if code := get(ts2, "/v1/groups/conf/plan", &plan2); code != http.StatusOK {
		t.Fatalf("plan after restart = %d", code)
	}
	if !plan2.Cached || plan2.Plan != plan1.Plan || plan2.Gen != plan1.Gen {
		t.Fatalf("plan after restart = %+v, want warm hit matching %+v", plan2, plan1)
	}

	// The runtime fault came back armed on shard 0.
	var faults struct {
		Faults []struct {
			Kind string `json:"kind"`
		} `json:"faults"`
	}
	if code := get(ts2, "/v1/faults", &faults); code != http.StatusOK || len(faults.Faults) != 1 {
		t.Fatalf("faults after restart = %d, %+v", code, faults)
	}

	// The epoch counter resumes past the durable boundary.
	if code := post(ts2, "/v1/epoch", "", &ep); code != http.StatusOK || ep.Epoch != 2 {
		t.Fatalf("epoch after restart = %d, %+v (want 2)", code, ep)
	}

	// Auto-ID allocation does not collide with the recovered namespace.
	var auto2 struct {
		ID string `json:"id"`
	}
	if code := post(ts2, "/v1/groups", `{"source":12,"members":[13]}`, &auto2); code != http.StatusCreated {
		t.Fatalf("auto create after restart = %d", code)
	}
	if auto2.ID == auto.ID {
		t.Fatalf("auto ID %q reused after restart", auto2.ID)
	}

	// Recovery and durability series are on the scrape surface.
	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"brsmn_wal_appends_total",
		"brsmn_snapshot_size_bytes",
		"brsmn_recovery_groups",
		"brsmn_recovery_snapshot_loaded",
	} {
		if !strings.Contains(string(raw), series) {
			t.Errorf("/metrics missing %q after restart", series)
		}
	}
}
