// Command brsmndiag prints structural diagrams of the networks: the
// recursive component inventory of an n x n BRSMN (Fig. 1), a reverse
// banyan switch plan (Fig. 5), and the tag trace of a scatter or
// quasisort pass (Fig. 4b).
//
// Usage:
//
//	brsmndiag -n 16                  # component inventory + cost row
//	brsmndiag -n 8 -scatter "0,a,e,1,e,a,e,e"
//	brsmndiag -n 8 -sort "1,0,1,1,0,0,1,0" -s 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"brsmn/internal/cost"
	"brsmn/internal/diagram"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/tag"
)

func main() {
	var (
		n       = flag.Int("n", 16, "network size (power of two)")
		scatter = flag.String("scatter", "", "comma-separated tags (0,1,a,e) to scatter-route")
		sortIn  = flag.String("sort", "", "comma-separated bits to bit-sort")
		start   = flag.Int("s", 0, "starting position for the compact output run")
	)
	flag.Parse()
	if err := run(os.Stdout, *n, *scatter, *sortIn, *start); err != nil {
		fmt.Fprintln(os.Stderr, "brsmndiag:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, n int, scatter, sortIn string, start int) error {
	switch {
	case scatter != "":
		tags, err := parseTags(scatter)
		if err != nil {
			return err
		}
		p, err := rbn.ScatterPlan(len(tags), tags, start)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Scatter network plan (Fig. 4b, first subnetwork):")
		fmt.Fprint(w, diagram.RenderPlan(p))
		trace, err := diagram.RenderTagTrace(p, tags)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\nTag trace (input -> each stage):")
		fmt.Fprint(w, trace)
		return nil
	case sortIn != "":
		var gamma []bool
		for _, f := range strings.Split(sortIn, ",") {
			switch strings.TrimSpace(f) {
			case "0":
				gamma = append(gamma, false)
			case "1":
				gamma = append(gamma, true)
			default:
				return fmt.Errorf("bad bit %q", f)
			}
		}
		p, out, err := rbn.BitSortRoute(len(gamma), gamma, start)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Bit-sorting network plan (Theorem 1):")
		fmt.Fprint(w, diagram.RenderPlan(p))
		fmt.Fprint(w, "output: ")
		for _, g := range out {
			if g {
				fmt.Fprint(w, "1")
			} else {
				fmt.Fprint(w, "0")
			}
		}
		fmt.Fprintln(w)
		return nil
	default:
		return inventory(w, n)
	}
}

// inventory prints the Fig. 1 recursive structure with per-level counts.
func inventory(w io.Writer, n int) error {
	if !shuffle.IsPow2(n) || n < 2 {
		return fmt.Errorf("size %d is not a power of two >= 2", n)
	}
	fmt.Fprintf(w, "%d x %d BRSMN component inventory (Fig. 1):\n", n, n)
	level := 1
	for size := n; size > 2; size /= 2 {
		count := n / size
		fmt.Fprintf(w, "  level %d: %3d BSN(s) of size %4d  = %3d scatter RBN(s) + %3d quasisort RBN(s), %5d switches\n",
			level, count, size, count, count, count*2*(size/2)*shuffle.Log2(size))
		level++
	}
	fmt.Fprintf(w, "  final:   %3d 2x2 delivery switches\n", n/2)
	r := cost.BRSMN(n)
	fmt.Fprintf(w, "\ntotals: %d switches, %d gates, depth %d columns, routing time %d gate delays\n",
		r.Switches, r.Gates, r.Depth, r.RoutingTime)
	f := cost.Feedback(n)
	fmt.Fprintf(w, "feedback version: %d switches (%.1fx fewer), routing time %d gate delays\n",
		f.Switches, float64(r.Switches)/float64(f.Switches), f.RoutingTime)
	return nil
}

func parseTags(s string) ([]tag.Value, error) {
	var tags []tag.Value
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "0":
			tags = append(tags, tag.V0)
		case "1":
			tags = append(tags, tag.V1)
		case "a", "α":
			tags = append(tags, tag.Alpha)
		case "e", "ε":
			tags = append(tags, tag.Eps)
		default:
			return nil, fmt.Errorf("bad tag %q", f)
		}
	}
	return tags, nil
}
