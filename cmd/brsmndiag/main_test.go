package main

import (
	"strings"
	"testing"
)

// TestInventory checks the Fig. 1 inventory output.
func TestInventory(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 16, "", "", 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"level 1:   1 BSN(s) of size   16", "final:     8 2x2 delivery switches", "feedback version: 32 switches"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := run(&b, 6, "", "", 0); err == nil {
		t.Error("accepted non-power-of-two size")
	}
}

// TestScatterDiagram checks the scatter trace path.
func TestScatterDiagram(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 8, "0,a,e,1,e,a,e,e", "", 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Scatter network plan") || !strings.Contains(out, "Tag trace") {
		t.Errorf("scatter diagram malformed:\n%s", out)
	}
	if err := run(&b, 8, "0,q", "", 0); err == nil {
		t.Error("accepted bad tag")
	}
}

// TestSortDiagram checks the bit-sort path.
func TestSortDiagram(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 8, "", "1,0,1,1,0,0,1,0", 4); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Bit-sorting network plan") || !strings.Contains(out, "output: 00001111") {
		t.Errorf("sort diagram malformed:\n%s", out)
	}
	if err := run(&b, 8, "", "1,2", 0); err == nil {
		t.Error("accepted bad bit")
	}
}
