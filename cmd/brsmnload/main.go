// Command brsmnload replays multicast-group workloads against a brsmnd
// cluster (or a single node) and emits an SLO report. Group sizes are
// Zipf-distributed — a few big fan-outs, a long tail of small ones, the
// shape both scenario families exhibit in practice — and churn follows
// a scenario trace:
//
//	videoconf  many small groups, heavy join/leave churn, a replan
//	           after most membership changes
//	pubsub     fewer, larger groups, sparse churn, read-dominated
//	           (plan fetches are most of the traffic)
//
// Requests spread across every -targets node round-robin per worker, so
// in cluster mode a known fraction lands on non-owners and exercises
// the forwarding tier; the X-Brsmn-Forwarded response header classifies
// each sample, which is how the report separates forwarded from local
// latency and prices the extra hop.
//
// Usage:
//
//	brsmnload -targets http://127.0.0.1:8701,http://127.0.0.1:8702 \
//	  -scenario videoconf -groups 20000 -duration 30s -workers 16 \
//	  -out BENCH_cluster.json
//
// The report (see Report) carries routes/sec, p50/p95/p99 latency, the
// shed rate (429s under admission backpressure), the forwarding rate
// and overhead, and the cluster-wide group count before and after the
// run — the zero-loss check a drain rehearsal scripts against.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"
)

// config is the parsed flag set.
type config struct {
	targets    []string
	scenario   string
	groups     int
	n          int
	workers    int
	duration   time.Duration
	zipfS      float64
	zipfV      float64
	maxSize    int
	seed       int64
	out        string
	timeout    time.Duration
	async      float64
	backendMix bool
}

// parseFlags parses args (without the program name) into a config.
func parseFlags(args []string) (config, error) {
	var cfg config
	var targets string
	fs := flag.NewFlagSet("brsmnload", flag.ContinueOnError)
	fs.StringVar(&targets, "targets", "http://127.0.0.1:8642", "comma-separated brsmnd base URLs to spread load across")
	fs.StringVar(&cfg.scenario, "scenario", "videoconf", "churn trace: videoconf or pubsub")
	fs.IntVar(&cfg.groups, "groups", 10000, "groups to create before the timed run")
	fs.IntVar(&cfg.n, "n", 1024, "network size the targets were started with (member ports are drawn below it)")
	fs.IntVar(&cfg.workers, "workers", 16, "concurrent client workers")
	fs.DurationVar(&cfg.duration, "duration", 30*time.Second, "timed-run length")
	fs.Float64Var(&cfg.zipfS, "zipf-s", 1.3, "Zipf exponent for group sizes (must be > 1)")
	fs.Float64Var(&cfg.zipfV, "zipf-v", 2, "Zipf offset for group sizes (must be >= 1)")
	fs.IntVar(&cfg.maxSize, "max-size", 0, "largest group size (0 means n/2)")
	fs.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed (same seed, same trace)")
	fs.StringVar(&cfg.out, "out", "BENCH_cluster.json", "report path (- writes to stdout)")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request timeout")
	fs.Float64Var(&cfg.async, "async", 0, "fraction of churn ops submitted as tickets and long-polled to completion (0..1)")
	fs.BoolVar(&cfg.backendMix, "backend-mix", false, "sample the planner backend serving every plan fetch (pair with targets running -tier-auto) and report per-tier latency percentiles")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() != 0 {
		return config{}, fmt.Errorf("brsmnload: unexpected arguments %v", fs.Args())
	}
	for _, t := range strings.Split(targets, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if !strings.HasPrefix(t, "http://") && !strings.HasPrefix(t, "https://") {
			return config{}, fmt.Errorf("brsmnload: target %q must start with http:// or https://", t)
		}
		cfg.targets = append(cfg.targets, strings.TrimRight(t, "/"))
	}
	if len(cfg.targets) == 0 {
		return config{}, errors.New("brsmnload: no targets")
	}
	if cfg.scenario != "videoconf" && cfg.scenario != "pubsub" {
		return config{}, fmt.Errorf("brsmnload: unknown scenario %q (want videoconf or pubsub)", cfg.scenario)
	}
	if cfg.groups < 1 {
		return config{}, fmt.Errorf("brsmnload: -groups must be at least 1, got %d", cfg.groups)
	}
	if cfg.workers < 1 {
		return config{}, fmt.Errorf("brsmnload: -workers must be at least 1, got %d", cfg.workers)
	}
	if cfg.zipfS <= 1 || cfg.zipfV < 1 {
		return config{}, errors.New("brsmnload: -zipf-s must be > 1 and -zipf-v >= 1")
	}
	if cfg.async < 0 || cfg.async > 1 {
		return config{}, fmt.Errorf("brsmnload: -async must be in [0,1], got %g", cfg.async)
	}
	if cfg.n < 4 {
		return config{}, fmt.Errorf("brsmnload: -n must be at least 4, got %d", cfg.n)
	}
	if cfg.maxSize <= 0 {
		cfg.maxSize = cfg.n / 2
	}
	if cfg.maxSize >= cfg.n {
		cfg.maxSize = cfg.n - 1
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
	rep, err := runLoad(cfg, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if cfg.out == "-" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(cfg.out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brsmnload: %s: %.0f routes/sec, p99 %.2fms, shed %.4f, forwarded %.2f%% (report: %s)\n",
		cfg.scenario, rep.RoutesPerSec, rep.LatencyMs.P99, rep.ShedRate, 100*rep.ForwardRate, cfg.out)
	if rep.AsyncOps > 0 {
		fmt.Printf("brsmnload: async: %d tickets, submit p99 %.2fms, complete p99 %.2fms\n",
			rep.AsyncOps, rep.AsyncSubmitLatencyMs.P99, rep.AsyncCompleteLatencyMs.P99)
	}
	for _, tier := range []string{"brsmn", "feedback", "permnet"} {
		if p, ok := rep.PlanLatencyByBackendMs[tier]; ok {
			fmt.Printf("brsmnload: backend %-8s %6d plans, p50 %.2fms, p99 %.2fms\n",
				tier, p.Count, p.P50, p.P99)
		}
	}
}
