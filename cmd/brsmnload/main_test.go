package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.targets) != 1 || cfg.targets[0] != "http://127.0.0.1:8642" {
		t.Fatalf("default targets = %v", cfg.targets)
	}
	if cfg.scenario != "videoconf" || cfg.groups != 10000 || cfg.n != 1024 || cfg.workers != 16 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.duration != 30*time.Second || cfg.zipfS != 1.3 || cfg.zipfV != 2 || cfg.seed != 1 {
		t.Fatalf("workload defaults = %+v", cfg)
	}
	if cfg.maxSize != 512 { // n/2
		t.Fatalf("maxSize default = %d", cfg.maxSize)
	}
	if cfg.out != "BENCH_cluster.json" {
		t.Fatalf("out default = %q", cfg.out)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nope"},
		{"stray"},
		{"-targets", ""},
		{"-targets", "127.0.0.1:8642"}, // no scheme
		{"-scenario", "webinar"},
		{"-groups", "0"},
		{"-workers", "0"},
		{"-zipf-s", "1"},
		{"-n", "2"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

func TestParseFlagsTargets(t *testing.T) {
	cfg, err := parseFlags([]string{"-targets", " http://a:1/, http://b:2 ,"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.targets) != 2 || cfg.targets[0] != "http://a:1" || cfg.targets[1] != "http://b:2" {
		t.Fatalf("targets = %v", cfg.targets)
	}
}

// TestPickOpMix checks the scenario traces have their intended shape:
// videoconf is churn-heavy, pubsub is read-dominated.
func TestPickOpMix(t *testing.T) {
	count := func(scenario string) map[string]int {
		r := rand.New(rand.NewSource(42))
		c := map[string]int{}
		for i := 0; i < 10000; i++ {
			c[pickOp(scenario, r)]++
		}
		return c
	}
	vc := count("videoconf")
	if churn := vc[opJoin] + vc[opLeave]; churn < 5000 {
		t.Fatalf("videoconf churn fraction too low: %v", vc)
	}
	ps := count("pubsub")
	if ps[opPlan] < 7000 {
		t.Fatalf("pubsub plan fraction too low: %v", ps)
	}
	for _, c := range []map[string]int{vc, ps} {
		for _, op := range []string{opPlan, opJoin, opLeave, opGet} {
			if c[op] == 0 {
				t.Fatalf("op %s never drawn: %v", op, c)
			}
		}
	}
}

// TestGroupSizes checks the Zipf population is bounded, positive, and
// heavy-tailed (most groups small, a few large).
func TestGroupSizes(t *testing.T) {
	cfg := config{groups: 5000, n: 1024, maxSize: 512, zipfS: 1.3, zipfV: 2}
	sizes := groupSizes(cfg, rand.New(rand.NewSource(7)))
	small, huge, max := 0, 0, 0
	for _, s := range sizes {
		if s < 1 || s > cfg.maxSize {
			t.Fatalf("size %d out of [1,%d]", s, cfg.maxSize)
		}
		if s <= 4 {
			small++
		}
		if s > cfg.maxSize/2 {
			huge++
		}
		if s > max {
			max = s
		}
	}
	// Heavy tail: small groups dominate, near-max groups are rare but
	// the distribution still reaches well past the head.
	if small < len(sizes)/4 {
		t.Fatalf("Zipf head too light: only %d/%d groups are small", small, len(sizes))
	}
	if huge > len(sizes)/10 {
		t.Fatalf("Zipf tail inverted: %d/%d groups are near-max", huge, len(sizes))
	}
	if max < 8 {
		t.Fatalf("no large groups drawn (max %d)", max)
	}
}

func TestPercentiles(t *testing.T) {
	if p := percentiles(nil); p.Count != 0 || p.P99 != 0 {
		t.Fatalf("empty percentiles = %+v", p)
	}
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(i + 1) // 1..100
	}
	p := percentiles(ms)
	if p.Count != 100 || p.P50 != 50 || p.P95 != 95 || p.P99 != 99 || p.Max != 100 {
		t.Fatalf("percentiles = %+v", p)
	}
}

// TestRunLoadEndToEnd drives the full harness against a stub node that
// mimics the daemon's API shapes — including forwarding markers on a
// deterministic subset and 429 sheds — and checks the report
// classifies everything.
func TestRunLoadEndToEnd(t *testing.T) {
	var reqs atomic.Int64
	created := map[string]bool{}
	mux := http.NewServeMux()
	stamp := func(w http.ResponseWriter, shed bool) bool {
		// Every 5th request pretends to have been proxied; every 50th
		// sheddable one is shed, exercising both report branches.
		k := reqs.Add(1)
		w.Header().Set("X-Brsmn-Node", "stub")
		if k%5 == 0 {
			w.Header().Set("X-Brsmn-Forwarded", "stub>other")
		}
		if shed && k%50 == 0 {
			w.WriteHeader(http.StatusTooManyRequests)
			return false
		}
		return true
	}
	mux.HandleFunc("POST /v1/groups", func(w http.ResponseWriter, r *http.Request) {
		stamp(w, false)
		var req struct {
			ID string `json:"id"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		created[req.ID] = true
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]any{"data": map[string]any{"id": req.ID}})
	})
	mux.HandleFunc("/v1/groups/", func(w http.ResponseWriter, r *http.Request) {
		if !stamp(w, true) {
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"data": map[string]any{}})
	})
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"data": map[string]any{"groups": len(created)}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg, err := parseFlags([]string{
		"-targets", ts.URL, "-groups", "50", "-n", "16", "-workers", "4",
		"-duration", "150ms", "-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runLoad(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 50 {
		t.Fatalf("population created %d groups, want 50", len(created))
	}
	if rep.Ops == 0 || rep.OpsPerSec == 0 {
		t.Fatalf("no ops recorded: %+v", rep)
	}
	if rep.Routes == 0 || rep.RoutesPerSec == 0 {
		t.Fatalf("no plan fetches recorded: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors against local stub", rep.Errors)
	}
	if rep.Forwarded == 0 || rep.ForwardRate <= 0 || rep.ForwardedLatencyMs.Count == 0 {
		t.Fatalf("forwarded samples not classified: %+v", rep)
	}
	if rep.Shed == 0 || rep.ShedRate <= 0 {
		t.Fatalf("shed samples not classified: %+v", rep)
	}
	if rep.LatencyMs.Count == 0 || rep.LatencyMs.P99 < rep.LatencyMs.P50 ||
		rep.LatencyMs.Max < rep.LatencyMs.P99 {
		t.Fatalf("latency summary inconsistent: %+v", rep.LatencyMs)
	}
	if rep.ForwardOverheadP50 <= 0 {
		t.Fatalf("forward overhead missing: %+v", rep)
	}
	if rep.ClusterGroupsAfter != 50 {
		t.Fatalf("cluster group count = %d, want 50", rep.ClusterGroupsAfter)
	}
	// The report must round-trip as JSON (it is the CI artifact).
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"routesPerSec", "shedRate", "forwardOverheadP50", "latencyMs", "clusterGroupsAfter"} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("report JSON missing %q: %s", key, raw)
		}
	}
}
