package main

// The workload engine: build the group population, run the timed churn
// phase, aggregate per-op samples into the SLO report.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Op kinds sampled by the run phase.
const (
	opPlan  = "plan"
	opJoin  = "join"
	opLeave = "leave"
	opGet   = "get"
)

// scenarioMix returns the cumulative op-mix thresholds for one draw in
// [0,1): plan, join, leave, get in that order.
func scenarioMix(scenario string) [3]float64 {
	switch scenario {
	case "pubsub":
		// Read-dominated: 75% plan, 10% join, 5% leave, 10% get.
		return [3]float64{0.75, 0.85, 0.90}
	default: // videoconf
		// Churn-heavy: 35% plan, 30% join, 30% leave, 5% get.
		return [3]float64{0.35, 0.65, 0.95}
	}
}

// pickOp draws one op kind from the scenario mix.
func pickOp(scenario string, r *rand.Rand) string {
	mix := scenarioMix(scenario)
	switch f := r.Float64(); {
	case f < mix[0]:
		return opPlan
	case f < mix[1]:
		return opJoin
	case f < mix[2]:
		return opLeave
	default:
		return opGet
	}
}

// groupSizes draws the Zipf-distributed member counts for the
// population. Sizes are at least 1 (the source always exists besides
// the members) and capped at maxSize.
func groupSizes(cfg config, r *rand.Rand) []int {
	z := rand.NewZipf(r, cfg.zipfS, cfg.zipfV, uint64(cfg.maxSize-1))
	sizes := make([]int, cfg.groups)
	for i := range sizes {
		sizes[i] = int(z.Uint64()) + 1
	}
	return sizes
}

// sample is one completed request. For async samples ms spans submit
// through ticket completion (observed via ?wait long-polls) and
// submitMs is just the 202 round-trip.
type sample struct {
	op        string
	ms        float64
	status    int
	forwarded bool
	err       bool
	async     bool
	submitMs  float64
	// backend is the planner tier that served a plan fetch, sampled from
	// the plan envelope's backend field in -backend-mix mode.
	backend string
}

// Percentiles summarizes a latency population in milliseconds.
type Percentiles struct {
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

// percentiles computes the summary; ms is sorted in place.
func percentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return Percentiles{
		P50:   at(0.50),
		P95:   at(0.95),
		P99:   at(0.99),
		Max:   ms[len(ms)-1],
		Count: len(ms),
	}
}

// Report is the BENCH_cluster.json shape.
type Report struct {
	Scenario        string   `json:"scenario"`
	Targets         []string `json:"targets"`
	Groups          int      `json:"groups"`
	N               int      `json:"n"`
	Workers         int      `json:"workers"`
	Seed            int64    `json:"seed"`
	DurationSeconds float64  `json:"durationSeconds"`

	Ops          int     `json:"ops"`
	OpsPerSec    float64 `json:"opsPerSec"`
	Routes       int     `json:"routes"`
	RoutesPerSec float64 `json:"routesPerSec"`

	Shed     int     `json:"shed"`
	ShedRate float64 `json:"shedRate"`
	Errors   int     `json:"errors"`

	Forwarded   int     `json:"forwarded"`
	ForwardRate float64 `json:"forwardRate"`
	// ForwardOverheadP50 prices the extra hop: forwarded p50 over local
	// p50 (0 when either population is empty).
	ForwardOverheadP50 float64 `json:"forwardOverheadP50"`

	LatencyMs          Percentiles `json:"latencyMs"`
	LocalLatencyMs     Percentiles `json:"localLatencyMs"`
	ForwardedLatencyMs Percentiles `json:"forwardedLatencyMs"`
	PlanLatencyMs      Percentiles `json:"planLatencyMs"`

	// PlanLatencyByBackendMs splits the plan-fetch population by the
	// planner tier that served it (-backend-mix; empty otherwise). With
	// auto-tiering on the targets, the Zipf population spreads across
	// tiers: tiny tail groups on permnet, large stable heads on
	// feedback, the churny middle on brsmn.
	PlanLatencyByBackendMs map[string]Percentiles `json:"planLatencyByBackendMs,omitempty"`

	// Async* summarize the ticketed fraction of the run (-async):
	// submit is the POST /v1/tickets 202 round-trip, complete spans
	// submit through the ticket reporting done.
	AsyncFraction          float64     `json:"asyncFraction"`
	AsyncOps               int         `json:"asyncOps"`
	AsyncSubmitLatencyMs   Percentiles `json:"asyncSubmitLatencyMs"`
	AsyncCompleteLatencyMs Percentiles `json:"asyncCompleteLatencyMs"`

	// ClusterGroups* are the /v1/cluster group totals around the run;
	// equal values across a drain mean zero groups were lost. Zero when
	// the targets are not in cluster mode.
	ClusterGroupsBefore int64   `json:"clusterGroupsBefore"`
	ClusterGroupsAfter  int64   `json:"clusterGroupsAfter"`
	SetupSeconds        float64 `json:"setupSeconds"`
}

// loader is the shared run state.
type loader struct {
	cfg    config
	client *http.Client
	ids    []string
	logf   func(format string, args ...any)
}

// runLoad executes the full benchmark: populate, churn, report.
func runLoad(cfg config, logf func(format string, args ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	l := &loader{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.timeout},
		logf:   logf,
	}
	rep := &Report{
		Scenario: cfg.scenario,
		Targets:  cfg.targets,
		Groups:   cfg.groups,
		N:        cfg.n,
		Workers:  cfg.workers,
		Seed:     cfg.seed,
	}
	rep.ClusterGroupsBefore = l.clusterGroups()

	setupStart := time.Now()
	if err := l.populate(); err != nil {
		return nil, err
	}
	rep.SetupSeconds = time.Since(setupStart).Seconds()
	logf("brsmnload: created %d groups in %.1fs", cfg.groups, rep.SetupSeconds)

	samples := l.churn()
	rep.ClusterGroupsAfter = l.clusterGroups()

	rep.DurationSeconds = cfg.duration.Seconds()
	rep.AsyncFraction = cfg.async
	var all, local, fwd, plan, asub, adone []float64
	byBackend := make(map[string][]float64)
	for _, s := range samples {
		if s.err {
			rep.Errors++
			continue
		}
		rep.Ops++
		if s.status == http.StatusTooManyRequests {
			rep.Shed++
			continue
		}
		if s.async {
			// Ticketed ops are summarized separately: their end-to-end
			// time includes the poll loop's round-trips, so folding them
			// into the sync pools would skew those percentiles.
			rep.AsyncOps++
			asub = append(asub, s.submitMs)
			adone = append(adone, s.ms)
			if s.op == opPlan {
				rep.Routes++
			}
			continue
		}
		all = append(all, s.ms)
		if s.forwarded {
			rep.Forwarded++
			fwd = append(fwd, s.ms)
		} else {
			local = append(local, s.ms)
		}
		if s.op == opPlan {
			rep.Routes++
			plan = append(plan, s.ms)
			if s.backend != "" {
				byBackend[s.backend] = append(byBackend[s.backend], s.ms)
			}
		}
	}
	if rep.Ops > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Ops)
		rep.ForwardRate = float64(rep.Forwarded) / float64(rep.Ops)
	}
	if rep.DurationSeconds > 0 {
		rep.OpsPerSec = float64(rep.Ops) / rep.DurationSeconds
		rep.RoutesPerSec = float64(rep.Routes) / rep.DurationSeconds
	}
	rep.LatencyMs = percentiles(all)
	rep.LocalLatencyMs = percentiles(local)
	rep.ForwardedLatencyMs = percentiles(fwd)
	rep.PlanLatencyMs = percentiles(plan)
	rep.AsyncSubmitLatencyMs = percentiles(asub)
	rep.AsyncCompleteLatencyMs = percentiles(adone)
	if len(byBackend) > 0 {
		rep.PlanLatencyByBackendMs = make(map[string]Percentiles, len(byBackend))
		for tier, ms := range byBackend {
			rep.PlanLatencyByBackendMs[tier] = percentiles(ms)
		}
	}
	if rep.LocalLatencyMs.P50 > 0 && rep.ForwardedLatencyMs.Count > 0 {
		rep.ForwardOverheadP50 = rep.ForwardedLatencyMs.P50 / rep.LocalLatencyMs.P50
	}
	return rep, nil
}

// target picks the node a request goes to: round-robin by index so load
// (and therefore forwarding) spreads evenly regardless of ownership.
func (l *loader) target(i int) string { return l.cfg.targets[i%len(l.cfg.targets)] }

// populate creates the Zipf-sized group population across all targets.
func (l *loader) populate() error {
	root := rand.New(rand.NewSource(l.cfg.seed))
	sizes := groupSizes(l.cfg, root)
	l.ids = make([]string, l.cfg.groups)
	memberSeed := root.Int63()

	errc := make(chan error, l.cfg.workers)
	var wg sync.WaitGroup
	for w := 0; w < l.cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(memberSeed + int64(w)))
			for i := w; i < l.cfg.groups; i += l.cfg.workers {
				id := fmt.Sprintf("load-g%06d", i)
				l.ids[i] = id
				// Members must be distinct output ports — the registry
				// rejects a create with duplicates, exactly like a double
				// join.
				members := r.Perm(l.cfg.n)[:sizes[i]]
				body, _ := json.Marshal(map[string]any{
					"id": id, "source": r.Intn(l.cfg.n), "members": members,
				})
				status, _, err := l.do(http.MethodPost, l.target(i), "/v1/groups", body)
				if err != nil {
					errc <- fmt.Errorf("creating %s: %w", id, err)
					return
				}
				// 409 means a previous run left the group behind; the churn
				// phase treats it the same.
				if status != http.StatusCreated && status != http.StatusConflict &&
					status != http.StatusTooManyRequests {
					errc <- fmt.Errorf("creating %s: HTTP %d", id, status)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// churn runs the timed phase: every worker loops scenario ops against
// Zipf-popular groups until the clock runs out.
func (l *loader) churn() []sample {
	deadline := time.Now().Add(l.cfg.duration)
	out := make([][]sample, l.cfg.workers)
	var wg sync.WaitGroup
	for w := 0; w < l.cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(l.cfg.seed + 7919*int64(w+1)))
			// Popularity is Zipf too: hot groups get most of the traffic.
			pop := rand.NewZipf(r, l.cfg.zipfS, l.cfg.zipfV, uint64(len(l.ids)-1))
			var samples []sample
			for i := 0; time.Now().Before(deadline); i++ {
				id := l.ids[int(pop.Uint64())]
				samples = append(samples, l.oneOp(r, id, l.target(w+i)))
			}
			out[w] = samples
		}(w)
	}
	wg.Wait()
	var all []sample
	for _, s := range out {
		all = append(all, s...)
	}
	return all
}

// oneOp executes a single scenario op and samples it.
func (l *loader) oneOp(r *rand.Rand, id, base string) sample {
	op := pickOp(l.cfg.scenario, r)
	// A -async fraction of the admission ops goes through the ticket
	// surface instead (get has no async form — it is a plain read).
	if op != opGet && l.cfg.async > 0 && r.Float64() < l.cfg.async {
		return l.asyncOp(r, op, id, base)
	}
	var method, path string
	var body []byte
	switch op {
	case opPlan:
		if l.cfg.backendMix {
			return l.planOpSampled(id, base)
		}
		method, path = http.MethodGet, "/v1/groups/"+id+"/plan"
	case opJoin:
		method, path = http.MethodPost, "/v1/groups/"+id+"/join"
		body, _ = json.Marshal(map[string]int{"dest": r.Intn(l.cfg.n)})
	case opLeave:
		method, path = http.MethodPost, "/v1/groups/"+id+"/leave"
		body, _ = json.Marshal(map[string]int{"dest": r.Intn(l.cfg.n)})
	default:
		method, path = http.MethodGet, "/v1/groups/"+id
	}
	start := time.Now()
	status, forwarded, err := l.do(method, base, path, body)
	return sample{
		op:        op,
		ms:        float64(time.Since(start).Microseconds()) / 1000,
		status:    status,
		forwarded: forwarded,
		err:       err != nil,
	}
}

// planOpSampled is the -backend-mix plan fetch: it reads the envelope
// to record which planner tier served the plan, at the cost of parsing
// the body on the client.
func (l *loader) planOpSampled(id, base string) sample {
	start := time.Now()
	status, forwarded, raw, err := l.doRead(http.MethodGet, base, "/v1/groups/"+id+"/plan", nil)
	s := sample{
		op:        opPlan,
		ms:        float64(time.Since(start).Microseconds()) / 1000,
		status:    status,
		forwarded: forwarded,
		err:       err != nil,
	}
	if err == nil && status == http.StatusOK {
		var env struct {
			Data struct {
				Backend string `json:"backend"`
			} `json:"data"`
		}
		if json.Unmarshal(raw, &env) == nil && env.Data.Backend != "" {
			s.backend = env.Data.Backend
		}
	}
	return s
}

// asyncOp submits op as a ticket (POST /v1/tickets), then long-polls
// GET /v1/tickets/{id}?wait= until the ticket reports done. Both the
// 202 round-trip and the end-to-end completion land in the sample.
func (l *loader) asyncOp(r *rand.Rand, op, id, base string) sample {
	payload := map[string]any{"op": op, "group": id}
	if op == opJoin || op == opLeave {
		payload["dest"] = r.Intn(l.cfg.n)
	}
	body, _ := json.Marshal(payload)
	start := time.Now()
	status, forwarded, raw, err := l.doRead(http.MethodPost, base, "/v1/tickets", body)
	s := sample{
		op:        op,
		ms:        float64(time.Since(start).Microseconds()) / 1000,
		status:    status,
		forwarded: forwarded,
		err:       err != nil,
		async:     true,
	}
	s.submitMs = s.ms
	if err != nil || status != http.StatusAccepted {
		return s
	}
	var env struct {
		Data struct {
			Ticket struct {
				ID    string `json:"id"`
				State string `json:"state"`
			} `json:"ticket"`
		} `json:"data"`
	}
	if json.Unmarshal(raw, &env) != nil || env.Data.Ticket.ID == "" {
		s.err = true
		return s
	}
	path := "/v1/tickets/" + env.Data.Ticket.ID + "?wait=5s"
	for state := env.Data.Ticket.State; state != "done"; {
		st, _, raw, err := l.doRead(http.MethodGet, base, path, nil)
		if err != nil || st != http.StatusOK {
			s.err = true
			break
		}
		var poll struct {
			Data struct {
				State string `json:"state"`
			} `json:"data"`
		}
		if json.Unmarshal(raw, &poll) != nil || poll.Data.State == "" {
			s.err = true
			break
		}
		state = poll.Data.State
	}
	s.ms = float64(time.Since(start).Microseconds()) / 1000
	return s
}

// do issues one request, draining the body so connections are reused.
// The boolean reports whether the serving node forwarded it.
func (l *loader) do(method, base, path string, body []byte) (int, bool, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		return 0, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return 0, false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Brsmn-Forwarded") != "", nil
}

// doRead is do but returns the response body, for callers that parse
// the envelope (the async ticket path).
func (l *loader) doRead(method, base, path string, body []byte) (int, bool, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		return 0, false, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return 0, false, nil, err
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Brsmn-Forwarded") != "", raw, err
}

// clusterGroups sums group counts across the cluster via the first
// target's membership view; 0 when the target is not in cluster mode.
func (l *loader) clusterGroups() int64 {
	resp, err := l.client.Get(l.cfg.targets[0] + "/v1/cluster")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0
	}
	var env struct {
		Data struct {
			Groups int64 `json:"groups"`
		} `json:"data"`
	}
	if json.NewDecoder(resp.Body).Decode(&env) != nil {
		return 0
	}
	return env.Data.Groups
}
