// Command brsmnroute routes a multicast assignment through the BRSMN and
// prints the resulting configuration and deliveries.
//
// Usage:
//
//	brsmnroute -fig2                         # the paper's 8x8 example (Fig. 2)
//	brsmnroute -n 8 -assign "0,1;;3,4,7;2;;;;5,6"
//	brsmnroute -n 64 -random -load 0.8 -seed 42
//	brsmnroute -n 16 -broadcast 3 -feedback
//
// The -assign syntax lists one destination set per input, ';'-separated,
// each set a ','-separated list of outputs (empty for idle inputs).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"brsmn/internal/core"
	"brsmn/internal/diagram"
	"brsmn/internal/feedback"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/svg"
	"brsmn/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 8, "network size (power of two)")
		fig2    = flag.Bool("fig2", false, "route the paper's Fig. 2 example")
		assign  = flag.String("assign", "", "assignment: per-input destination sets, e.g. \"0,1;;3,4,7;2;;;;5,6\"")
		random  = flag.Bool("random", false, "route a random assignment")
		load    = flag.Float64("load", 0.8, "output load for -random")
		seed    = flag.Int64("seed", 1, "random seed")
		bcast   = flag.Int("broadcast", -1, "route a full broadcast from this input")
		fb      = flag.Bool("feedback", false, "use the feedback implementation (Fig. 13)")
		seqs    = flag.Bool("sequences", true, "print routing-tag sequences")
		workers = flag.Int("workers", 1, "switch-setting worker goroutines")
		verbose = flag.Bool("v", false, "print per-level switch plans")
		svgOut  = flag.String("svg", "", "also write an SVG figure of the routing to this file")
		trees   = flag.Bool("trees", false, "print each multicast's routing-tag tree (Fig. 9)")
	)
	flag.Parse()
	if err := run(os.Stdout, *n, *fig2, *assign, *random, *load, *seed, *bcast, *fb, *seqs, *workers, *verbose, *svgOut, *trees); err != nil {
		fmt.Fprintln(os.Stderr, "brsmnroute:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, n int, fig2 bool, assign string, random bool, load float64, seed int64, bcast int, fb, seqs bool, workers int, verbose bool, svgOut string, trees bool) error {
	var a mcast.Assignment
	var err error
	switch {
	case fig2:
		a = workload.PaperFig2()
	case assign != "":
		a, err = parseAssignment(n, assign)
		if err != nil {
			return err
		}
	case bcast >= 0:
		a, err = mcast.Broadcast(n, bcast)
		if err != nil {
			return err
		}
	case random:
		a = workload.Random(rand.New(rand.NewSource(seed)), n, load, 0.5)
	default:
		return fmt.Errorf("choose one of -fig2, -assign, -broadcast or -random")
	}

	if seqs {
		s, err := diagram.RenderSequences(a)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Routing-tag sequences (Section 7.1):")
		fmt.Fprint(w, s)
		fmt.Fprintln(w)
	}

	if trees {
		for i, ds := range a.Dests {
			if len(ds) == 0 {
				continue
			}
			tree, err := mcast.BuildTagTree(a.N, ds)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "input %d tag tree (Fig. 9):\n%s\n", i, diagram.RenderTagTree(tree))
		}
	}

	eng := rbn.Engine{Workers: workers}
	if fb {
		nw, err := feedback.New(a.N, eng)
		if err != nil {
			return err
		}
		res, err := nw.Route(a)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Feedback BRSMN: %d passes over one %d x %d RBN (%d switches)\n",
			res.NumPasses(), a.N, a.N, nw.HardwareSwitches())
		for out, d := range res.Deliveries {
			if d.Source < 0 {
				fmt.Fprintf(w, "output %d: (idle)\n", out)
			} else {
				fmt.Fprintf(w, "output %d: from input %d\n", out, d.Source)
			}
		}
		if verbose {
			for k, p := range res.Passes {
				fmt.Fprintf(w, "\npass %d:\n%s", k+1, diagram.RenderPlan(p))
			}
		}
		return nil
	}

	nw, err := core.New(a.N, eng)
	if err != nil {
		return err
	}
	res, err := nw.Route(a)
	if err != nil {
		return err
	}
	fmt.Fprint(w, diagram.RenderRoute(a, res))
	if svgOut != "" {
		doc, err := svg.Render(a, res)
		if err != nil {
			return err
		}
		if err := os.WriteFile(svgOut, []byte(doc), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote SVG figure to %s\n", svgOut)
	}
	if verbose {
		for _, lp := range res.Plans {
			fmt.Fprintf(w, "\nlevel %d BSN at outputs [%d,%d): scatter plan\n%s\nquasisort plan\n%s",
				lp.Level, lp.Base, lp.Base+lp.Size,
				diagram.RenderPlan(lp.Scatter), diagram.RenderPlan(lp.Quasi))
		}
	}
	return nil
}

// parseAssignment parses the ';'-separated destination-set syntax.
func parseAssignment(n int, s string) (mcast.Assignment, error) {
	parts := strings.Split(s, ";")
	if len(parts) > n {
		return mcast.Assignment{}, fmt.Errorf("%d destination sets for %d inputs", len(parts), n)
	}
	dests := make([][]int, n)
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		for _, f := range strings.Split(p, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return mcast.Assignment{}, fmt.Errorf("input %d: bad destination %q", i, f)
			}
			dests[i] = append(dests[i], d)
		}
	}
	return mcast.New(n, dests)
}
