package main

import (
	"strings"
	"testing"
)

// TestRunFig2 drives the command body on the paper's example.
func TestRunFig2(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 8, true, "", false, 0, 1, -1, false, true, 1, false, "", false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"α1αε011", "output 7: from input 2", "final column"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

// TestRunAssignSyntax checks the -assign parser end to end.
func TestRunAssignSyntax(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 8, false, "0,1;;3,4,7;2;;;;5,6", false, 0, 1, -1, false, false, 1, true, "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "output 4: from input 2") {
		t.Errorf("assign route wrong:\n%s", b.String())
	}
	// Verbose mode renders plans.
	if !strings.Contains(b.String(), "scatter plan") {
		t.Errorf("verbose plans missing:\n%s", b.String())
	}
}

// TestRunFeedbackAndBroadcast covers the feedback path.
func TestRunFeedbackAndBroadcast(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 8, false, "", false, 0, 1, 3, true, false, 1, true, "", false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Feedback BRSMN: 5 passes") {
		t.Errorf("feedback header missing:\n%s", out)
	}
	if !strings.Contains(out, "pass 5:") {
		t.Errorf("verbose passes missing:\n%s", out)
	}
	for o := 0; o < 8; o++ {
		if !strings.Contains(out, "from input 3") {
			t.Errorf("broadcast delivery missing:\n%s", out)
			break
		}
	}
}

// TestRunTrees covers the Fig. 9 tree rendering flag.
func TestRunTrees(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 8, true, "", false, 0, 1, -1, false, false, 1, false, "", true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tag tree (Fig. 9)") || !strings.Contains(b.String(), "L1") {
		t.Errorf("tree rendering missing:\n%s", b.String())
	}
}

// TestRunRandom covers the random generator path and engine option.
func TestRunRandom(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 16, false, "", true, 0.8, 7, -1, false, false, 4, false, "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "assignment:") {
		t.Errorf("random route output wrong:\n%s", b.String())
	}
}

// TestRunErrors covers the argument guards.
func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 8, false, "", false, 0, 1, -1, false, false, 1, false, "", false); err == nil {
		t.Error("no mode selected: want error")
	}
	if err := run(&b, 8, false, "0;1;2;3;4;5;6;7;8", false, 0, 1, -1, false, false, 1, false, "", false); err == nil {
		t.Error("too many sets: want error")
	}
	if err := run(&b, 8, false, "x", false, 0, 1, -1, false, false, 1, false, "", false); err == nil {
		t.Error("bad destination: want error")
	}
	if err := run(&b, 8, false, "0;0", false, 0, 1, -1, false, false, 1, false, "", false); err == nil {
		t.Error("overlap: want error")
	}
	if err := run(&b, 8, false, "", false, 0, 1, 99, false, false, 1, false, "", false); err == nil {
		t.Error("broadcast source out of range: want error")
	}
}
