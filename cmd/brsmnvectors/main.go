// Command brsmnvectors generates and checks conformance test vectors:
// machine-readable (assignment, tag sequences, deliveries, switch-plan
// bytes) records that pin the network's behavior for other
// implementations to conform to.
//
// Usage:
//
//	brsmnvectors -gen -sizes 4,8,16,64 -count 8 -seed 1 -o conformance.json
//	brsmnvectors -check conformance.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"brsmn/internal/vectors"
)

func main() {
	var (
		gen   = flag.Bool("gen", false, "generate vectors")
		check = flag.String("check", "", "check a vectors file")
		sizes = flag.String("sizes", "4,8,16,64", "sizes to generate for")
		count = flag.Int("count", 8, "vectors per size")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("o", "conformance.json", "output path for -gen")
	)
	flag.Parse()
	if err := run(*gen, *check, *sizes, *count, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "brsmnvectors:", err)
		os.Exit(1)
	}
}

func run(gen bool, check, sizes string, count int, seed int64, out string) error {
	switch {
	case gen:
		var szs []int
		for _, f := range strings.Split(sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("bad size %q", f)
			}
			szs = append(szs, v)
		}
		file, err := vectors.Generate(szs, count, seed)
		if err != nil {
			return err
		}
		raw, err := vectors.Marshal(file)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d vectors to %s\n", len(file.Vectors), out)
		return nil
	case check != "":
		raw, err := os.ReadFile(check)
		if err != nil {
			return err
		}
		file, err := vectors.Unmarshal(raw)
		if err != nil {
			return err
		}
		n, err := vectors.Check(file)
		if err != nil {
			return err
		}
		fmt.Printf("%d vectors conform\n", n)
		return nil
	default:
		return fmt.Errorf("choose -gen or -check")
	}
}
