package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGenThenCheck drives the command body end to end through a temp
// file.
func TestGenThenCheck(t *testing.T) {
	out := filepath.Join(t.TempDir(), "v.json")
	if err := run(true, "", "4,8", 4, 1, out); err != nil {
		t.Fatal(err)
	}
	if err := run(false, out, "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	// Corrupt and recheck.
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(false, out, "", 0, 0, ""); err == nil {
		t.Log("corruption happened to stay valid JSON and conform; acceptable but unlikely")
	}
	if err := run(false, "", "", 0, 0, ""); err == nil {
		t.Error("no mode accepted")
	}
	if err := run(true, "", "4,x", 1, 1, out); err == nil {
		t.Error("bad sizes accepted")
	}
	if err := run(false, "/nonexistent/file", "", 0, 0, ""); err == nil {
		t.Error("missing file accepted")
	}
}
