package brsmn_test

import (
	"math/rand"
	"testing"

	"brsmn"
	"brsmn/internal/bsn"
	"brsmn/internal/copynet"
	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/feedback"
	"brsmn/internal/gcn"
	"brsmn/internal/plancodec"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
	"brsmn/internal/xbar"
)

// TestDifferentialAllNetworks is the repository-wide differential fuzz
// test: for hundreds of random assignments across sizes, five
// independent implementations must agree output for output —
//
//  1. the crossbar oracle (definitionally correct),
//  2. the unrolled BRSMN (recursive router),
//  3. the flattened-fabric replay of the BRSMN's own plans, round-
//     tripped through the binary plan codec,
//  4. the feedback BRSMN,
//  5. the copy-network + Benes baseline,
//  6. the Nassimi–Sahni-style generalized connection network.
func TestDifferentialAllNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(190))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for _, n := range []int{4, 8, 16, 64} {
		un, err := core.New(n, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := feedback.New(n, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		cn, err := copynet.New(n)
		if err != nil {
			t.Fatal(err)
		}
		xb, err := xbar.New(n)
		if err != nil {
			t.Fatal(err)
		}
		gc, err := gcn.New(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < trials; trial++ {
			a := workload.Random(rng, n, rng.Float64(), rng.Float64())
			want, err := xb.Route(a)
			if err != nil {
				t.Fatal(err)
			}

			res, err := un.Route(a)
			if err != nil {
				t.Fatalf("n=%d %v: unrolled: %v", n, a, err)
			}
			cols, err := fabric.Flatten(res)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := plancodec.Encode(n, cols)
			if err != nil {
				t.Fatal(err)
			}
			_, cols2, err := plancodec.Decode(blob)
			if err != nil {
				t.Fatal(err)
			}
			cells, err := bsn.CellsForAssignment(a)
			if err != nil {
				t.Fatal(err)
			}
			replay, err := fabric.Run(cols2, cells)
			if err != nil {
				t.Fatal(err)
			}
			fres, err := fb.Route(a)
			if err != nil {
				t.Fatalf("n=%d %v: feedback: %v", n, a, err)
			}
			cres, err := cn.Route(a)
			if err != nil {
				t.Fatalf("n=%d %v: copynet: %v", n, a, err)
			}
			gres, err := gc.Route(a)
			if err != nil {
				t.Fatalf("n=%d %v: gcn: %v", n, a, err)
			}

			for out := 0; out < n; out++ {
				rp := -1
				if !replay[out].IsIdle() {
					rp = replay[out].Source
				}
				if res.Deliveries[out].Source != want[out] ||
					rp != want[out] ||
					fres.Deliveries[out].Source != want[out] ||
					cres.OutSource[out] != want[out] ||
					gres.OutSource[out] != want[out] {
					t.Fatalf("n=%d %v: output %d diverged: oracle %d, unrolled %d, replay %d, feedback %d, copynet %d",
						n, a, out, want[out], res.Deliveries[out].Source, rp,
						fres.Deliveries[out].Source, cres.OutSource[out])
				}
			}
		}
	}
}

// TestDifferentialPermutations repeats the differential check on unicast
// traffic, adding the permutation-network specialization and the public
// helper to the set.
func TestDifferentialPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	for _, n := range []int{8, 32, 128} {
		for trial := 0; trial < 20; trial++ {
			perm := rng.Perm(n)
			for i := range perm {
				if rng.Intn(4) == 0 {
					perm[i] = -1
				}
			}
			a, err := brsmn.PermutationAssignment(perm)
			if err != nil {
				t.Fatal(err)
			}
			res, err := brsmn.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			out, err := brsmn.RoutePermutation(perm)
			if err != nil {
				t.Fatal(err)
			}
			for i, d := range perm {
				if d < 0 {
					continue
				}
				if res.Deliveries[d].Source != i || out[d] != i {
					t.Fatalf("n=%d: destination %d: brsmn %d, permnet %d, want %d",
						n, d, res.Deliveries[d].Source, out[d], i)
				}
			}
		}
	}
}
