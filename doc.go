// Package brsmn is a library implementation of the self-routing multicast
// network of Yuanyuan Yang and Jianchao Wang, "A New Self-Routing
// Multicast Network" (IPPS 1998; IEEE TPDS 10(12), 1999): the binary
// radix sorting multicast network (BRSMN).
//
// A BRSMN is an n x n switching network (n a power of two) that realizes
// every multicast assignment — any mapping of inputs to pairwise-disjoint
// destination sets — without blocking, over edge-disjoint trees, and sets
// all of its own switches from routing tags carried by the messages
// themselves. All functional components are recursively constructed
// reverse banyan networks; the network costs O(n log^2 n) gates with
// O(log^2 n) depth and O(log^2 n) routing time, and the feedback variant
// reuses a single reverse banyan network to cut cost to O(n log n).
//
// # Quick start
//
//	a, err := brsmn.NewAssignment(8, [][]int{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}})
//	if err != nil { ... }
//	nw, err := brsmn.New(8)
//	if err != nil { ... }
//	res, err := nw.Route(a)
//	if err != nil { ... }
//	for out, d := range res.Deliveries {
//		fmt.Println(out, "<-", d.Source) // -1 when the output is idle
//	}
//
// Route both computes every switch setting with the paper's distributed
// self-routing algorithms and simulates the configured fabric; it returns
// an error rather than ever reporting a misdelivery.
//
// The package also exposes the feedback implementation (NewFeedback), the
// unicast permutation specialization (RoutePermutation), the routing-tag
// wire format (TagSequence and friends), workload generators for
// benchmarks, and the cost/routing-time models behind the paper's
// Table 2 (CostTable2, RoutingDelay).
package brsmn
