// Barrier synchronization: the paper's multiprocessor motivation. A
// 32-processor machine synchronizes over the multicast network in two
// phases per barrier episode: a gather phase in which every processor
// unicasts an "arrived" token to the coordinator's ports (a partial
// permutation), and a release phase in which the coordinator multicasts
// the release token to all processors in one pass — the hardware
// multicast the paper argues for, instead of log n software forwarding
// rounds.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"brsmn"
)

const (
	n           = 32
	coordinator = 0
)

func main() {
	rng := rand.New(rand.NewSource(7))
	nw, err := brsmn.New(n)
	if err != nil {
		log.Fatal(err)
	}

	for episode := 1; episode <= 3; episode++ {
		fmt.Printf("--- barrier episode %d ---\n", episode)

		// Gather: processors arrive in random order; each round routes
		// the newly arrived processors' tokens to distinct coordinator
		// ports. A k-wide gather round is a partial permutation.
		arrivalOrder := rng.Perm(n)
		arrived := 0
		round := 0
		for arrived < n {
			k := 1 + rng.Intn(8) // up to 8 arrivals per routing round
			if arrived+k > n {
				k = n - arrived
			}
			dests := make([][]int, n)
			payloads := make([]any, n)
			for j := 0; j < k; j++ {
				p := arrivalOrder[arrived+j]
				// Token lands on port j this round; the coordinator
				// drains its ports between rounds.
				dests[p] = []int{j}
				payloads[p] = fmt.Sprintf("arrived(p%d)", p)
			}
			a, err := brsmn.NewAssignment(n, dests)
			if err != nil {
				log.Fatal(err)
			}
			res, err := nw.RouteWithPayloads(a, payloads)
			if err != nil {
				log.Fatal(err)
			}
			got := 0
			for _, d := range res.Deliveries {
				if d.Source >= 0 {
					got++
				}
			}
			if got != k {
				log.Fatalf("round %d: %d tokens arrived, want %d", round, got, k)
			}
			arrived += k
			round++
		}
		fmt.Printf("gather: %d processors checked in over %d routing rounds\n", n, round)

		// Release: one multicast pass from the coordinator to everyone.
		release, err := brsmn.BroadcastAssignment(n, coordinator)
		if err != nil {
			log.Fatal(err)
		}
		payloads := make([]any, n)
		payloads[coordinator] = fmt.Sprintf("release(epoch=%d)", episode)
		res, err := nw.RouteWithPayloads(release, payloads)
		if err != nil {
			log.Fatal(err)
		}
		for out, d := range res.Deliveries {
			if d.Source != coordinator || d.Payload != payloads[coordinator] {
				log.Fatalf("processor %d missed the release token", out)
			}
		}
		fmt.Printf("release: %q delivered to all %d processors in one network pass\n\n",
			payloads[coordinator], n)
	}
	fmt.Println("3 barrier episodes completed")
}
