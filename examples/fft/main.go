// FFT data exchange: the paper's parallel-algorithm motivation. A
// 16-point radix-2 decimation-in-time FFT runs on 16 processing
// elements, one sample each; every stage's butterfly partner exchange
// and the initial bit-reversal reordering are routed through the
// self-routing network as permutation assignments. The example checks
// the transform against a direct DFT, so the network's deliveries are
// verified by the numerics themselves.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"brsmn"
)

const n = 16

// routeComplex moves one complex value per active input through the
// network according to a permutation.
func routeComplex(nw *brsmn.Network, perm []int, vals []complex128) ([]complex128, error) {
	a, err := brsmn.PermutationAssignment(perm)
	if err != nil {
		return nil, err
	}
	payloads := make([]any, n)
	for i, d := range perm {
		if d >= 0 {
			payloads[i] = vals[i]
		}
	}
	res, err := nw.RouteWithPayloads(a, payloads)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, n)
	for p, d := range res.Deliveries {
		if d.Source >= 0 {
			out[p] = d.Payload.(complex128)
		}
	}
	return out, nil
}

func bitrev(x, bits int) int {
	r := 0
	for b := 0; b < bits; b++ {
		r = r<<1 | x&1
		x >>= 1
	}
	return r
}

func main() {
	nw, err := brsmn.New(n)
	if err != nil {
		log.Fatal(err)
	}

	// Input signal: a two-tone waveform.
	x := make([]complex128, n)
	for i := range x {
		t := float64(i) / n
		x[i] = complex(math.Sin(2*math.Pi*3*t)+0.5*math.Cos(2*math.Pi*5*t), 0)
	}

	// Stage 0: bit-reversal reordering, one permutation pass.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = bitrev(i, 4)
	}
	work, err := routeComplex(nw, perm, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bit-reversal reordering routed in one network pass")

	// log2(n) butterfly stages. At stage s (half = 2^s), PE i exchanges
	// with partner i ^ half: each PE sends its value to its partner and
	// keeps its own — the exchange is routed as the pairing permutation,
	// after which every PE holds both operands and computes its output.
	for half := 1; half < n; half *= 2 {
		exch := make([]int, n)
		for i := range exch {
			exch[i] = i ^ half
		}
		partner, err := routeComplex(nw, exch, work)
		if err != nil {
			log.Fatal(err)
		}
		next := make([]complex128, n)
		for i := range next {
			// Twiddle factor for the butterfly this PE participates in.
			k := i % half
			w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(2*half)))
			if i&half == 0 {
				next[i] = work[i] + w*partner[i]
			} else {
				// partner[i] here is the upper element a; this PE holds b.
				next[i] = partner[i] - w*work[i]
			}
		}
		work = next
		fmt.Printf("butterfly stage (half=%2d) exchanged via permutation routing\n", half)
	}

	// Verify against a direct DFT.
	maxErr := 0.0
	for k := 0; k < n; k++ {
		var want complex128
		for t := 0; t < n; t++ {
			want += x[t] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*t)/n))
		}
		if e := cmplx.Abs(work[k] - want); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("\nmax |FFT - direct DFT| = %.2e\n", maxErr)
	if maxErr > 1e-9 {
		log.Fatal("FFT routed through the network diverged from the direct DFT")
	}
	fmt.Println("spectrum magnitudes:")
	for k := 0; k < n; k++ {
		fmt.Printf("  bin %2d: %6.3f\n", k, cmplx.Abs(work[k]))
	}
}
