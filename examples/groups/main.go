// Dynamic multicast groups: long-lived groups whose membership churns —
// viewers joining and leaving a live stream. Each Join/Leave updates
// only the O(log n) routing-tag tree nodes on the member's address path,
// and the group's current tag sequence is immediately routable; the
// example routes a frame after every membership epoch and audits that
// exactly the current members received it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"brsmn"
)

func main() {
	const n = 64
	rng := rand.New(rand.NewSource(11))
	nw, err := brsmn.New(n)
	if err != nil {
		log.Fatal(err)
	}

	// Two live streams from ports 0 and 1; everyone else is a viewer
	// who may watch at most one stream at a time.
	streams := []*brsmn.Group{}
	for _, src := range []int{0, 1} {
		g, err := brsmn.NewGroup(n, src)
		if err != nil {
			log.Fatal(err)
		}
		streams = append(streams, g)
	}
	watching := make([]int, n) // viewer port -> stream index, -1 none
	for i := range watching {
		watching[i] = -1
	}

	for epoch := 1; epoch <= 5; epoch++ {
		joins, leaves := 0, 0
		for viewer := 2; viewer < n; viewer++ {
			switch {
			case watching[viewer] == -1 && rng.Float64() < 0.30:
				s := rng.Intn(len(streams))
				if err := streams[s].Join(viewer); err != nil {
					log.Fatal(err)
				}
				watching[viewer] = s
				joins++
			case watching[viewer] != -1 && rng.Float64() < 0.15:
				if err := streams[watching[viewer]].Leave(viewer); err != nil {
					log.Fatal(err)
				}
				watching[viewer] = -1
				leaves++
			}
		}

		a, err := brsmn.AssignmentFromGroups(n, streams)
		if err != nil {
			log.Fatal(err)
		}
		payloads := make([]any, n)
		for s, g := range streams {
			payloads[g.Source()] = fmt.Sprintf("frame[stream%d/e%d]", s, epoch)
		}
		res, err := nw.RouteWithPayloads(a, payloads)
		if err != nil {
			log.Fatal(err)
		}

		// Audit: every current member of each stream got this epoch's
		// frame; nobody else got anything.
		for viewer := 2; viewer < n; viewer++ {
			d := res.Deliveries[viewer]
			switch {
			case watching[viewer] == -1:
				if d.Source >= 0 {
					log.Fatalf("epoch %d: idle viewer %d received from %d", epoch, viewer, d.Source)
				}
			default:
				want := streams[watching[viewer]].Source()
				if d.Source != want {
					log.Fatalf("epoch %d: viewer %d received from %d, watches stream at %d",
						epoch, viewer, d.Source, want)
				}
			}
		}
		fmt.Printf("epoch %d: +%d joins, -%d leaves; audiences %d and %d; sequences %q / %q\n",
			epoch, joins, leaves,
			len(streams[0].Members()), len(streams[1].Members()),
			trunc(streams[0].Sequence()), trunc(streams[1].Sequence()))
	}
	fmt.Println("\nall epochs consistent: members-only delivery after every churn")
}

func trunc(s string) string {
	r := []rune(s)
	if len(r) > 24 {
		return string(r[:24]) + "…"
	}
	return s
}
