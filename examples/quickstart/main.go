// Quickstart: route one multicast assignment — the paper's own Fig. 2
// example — through an 8 x 8 self-routing BRSMN and print what every
// output receives, plus the routing-tag sequences that did the work.
package main

import (
	"fmt"
	"log"

	"brsmn"
)

func main() {
	// Input 0 multicasts to outputs {0,1}; input 2 to {3,4,7}; input 3
	// to {2}; input 7 to {5,6}; the rest are idle.
	a, err := brsmn.NewAssignment(8, [][]int{
		{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6},
	})
	if err != nil {
		log.Fatal(err)
	}

	nw, err := brsmn.New(8)
	if err != nil {
		log.Fatal(err)
	}

	// Each active input needs only its routing-tag sequence — the
	// network sets all of its own switches from these tags.
	for i, dests := range a.Dests {
		if len(dests) == 0 {
			continue
		}
		seq, err := brsmn.TagSequence(a.N, dests)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("input %d -> %v  tag sequence %s\n", i, dests, seq)
	}

	res, err := nw.Route(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for out, d := range res.Deliveries {
		if d.Source < 0 {
			fmt.Printf("output %d: idle\n", out)
		} else {
			fmt.Printf("output %d: connected to input %d\n", out, d.Source)
		}
	}

	// The same assignment through the O(n log n)-cost feedback variant.
	fb, err := brsmn.NewFeedback(8)
	if err != nil {
		log.Fatal(err)
	}
	fres, err := fb.Route(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfeedback variant: same deliveries in %d passes over one %d-switch RBN\n",
		fres.NumPasses(), fb.HardwareSwitches())
}
