// Replicated database update propagation: the paper's distributed-
// database motivation. A 32-node cluster stores several tables, each
// with a primary and a replica set. Committed writes are propagated by
// multicasting the write record from each primary to its replicas; all
// primaries propagate concurrently through one network pass per commit
// batch, because their replica sets are disjoint per batch.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"

	"brsmn"
)

type table struct {
	name     string
	primary  int
	replicas []int
	version  int
}

func main() {
	const n = 32
	rng := rand.New(rand.NewSource(99))

	// Disjoint placement: carve the cluster into replica groups.
	nodes := rng.Perm(n)
	tables := []*table{
		{name: "users", primary: nodes[0], replicas: nodes[1:4]},
		{name: "orders", primary: nodes[4], replicas: nodes[5:10]},
		{name: "items", primary: nodes[10], replicas: nodes[11:13]},
		{name: "logs", primary: nodes[13], replicas: nodes[14:22]},
	}

	nw, err := brsmn.New(n)
	if err != nil {
		log.Fatal(err)
	}

	// replicaState[node][table] = last applied version.
	replicaState := make([]map[string]int, n)
	for i := range replicaState {
		replicaState[i] = map[string]int{}
	}

	for batch := 1; batch <= 4; batch++ {
		// A random subset of tables commits a write this batch.
		dests := make([][]int, n)
		payloads := make([]any, n)
		committed := 0
		for _, tb := range tables {
			if rng.Intn(2) == 0 && batch != 1 { // batch 1: everyone writes
				continue
			}
			tb.version++
			dests[tb.primary] = append([]int(nil), tb.replicas...)
			payloads[tb.primary] = fmt.Sprintf("%s@v%d", tb.name, tb.version)
			committed++
		}
		if committed == 0 {
			continue
		}
		a, err := brsmn.NewAssignment(n, dests)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nw.RouteWithPayloads(a, payloads)
		if err != nil {
			log.Fatal(err)
		}

		// Replicas apply what they received.
		applied := 0
		for node, d := range res.Deliveries {
			if d.Source < 0 {
				continue
			}
			rec, ok := d.Payload.(string)
			if !ok {
				log.Fatalf("node %d got malformed record %v", node, d.Payload)
			}
			at := strings.IndexByte(rec, '@')
			v, err := strconv.Atoi(rec[at+2:])
			if at < 0 || err != nil {
				log.Fatalf("node %d got malformed record %q", node, rec)
			}
			replicaState[node][rec[:at]] = v
			applied++
		}
		fmt.Printf("batch %d: %d tables committed, %d replica applications in one network pass\n",
			batch, committed, applied)
	}

	// Audit: every replica of every table is at the primary's version.
	fmt.Println("\nconsistency audit:")
	for _, tb := range tables {
		lag := 0
		for _, r := range tb.replicas {
			if replicaState[r][tb.name] != tb.version {
				lag++
			}
		}
		fmt.Printf("  %-7s v%d on primary node %2d, %d replicas, %d lagging\n",
			tb.name, tb.version, tb.primary, len(tb.replicas), lag)
		if lag > 0 {
			log.Fatalf("table %s has lagging replicas", tb.name)
		}
	}
	fmt.Println("all replica sets consistent")
}
