// Switch-fabric emulation: the BRSMN as the fabric of an input-queued
// multicast packet switch. Packets with arbitrary (overlapping) fanout
// sets arrive at the input ports over a sequence of timeslots; each slot
// the scheduler admits a conflict-free batch (disjoint destination sets,
// one head-of-line packet per input), the self-routing fabric delivers it
// in one pass, and the rest wait. The run reports throughput, mean packet
// delay and fabric splits — the system context the paper's introduction
// motivates (packet switching with hardware multicast).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"brsmn"
)

const (
	n     = 32
	slots = 200
	load  = 0.35 // packet arrival probability per input per slot
)

type packet struct {
	id      int
	source  int
	dests   []int
	arrived int
}

func main() {
	rng := rand.New(rand.NewSource(4242))
	nw, err := brsmn.New(n)
	if err != nil {
		log.Fatal(err)
	}

	queues := make([][]*packet, n) // per-input FIFO
	nextID := 0
	var delivered []*packet
	totalCopies := 0
	departures := map[int]int{} // packet id -> departure slot

	for slot := 0; slot < slots; slot++ {
		// Arrivals: geometric fanout, uniform destinations.
		for in := 0; in < n; in++ {
			if rng.Float64() >= load {
				continue
			}
			fan := 1
			for fan < n && rng.Float64() < 0.45 {
				fan++
			}
			p := &packet{id: nextID, source: in, dests: rng.Perm(n)[:fan], arrived: slot}
			nextID++
			queues[in] = append(queues[in], p)
		}

		// Head-of-line packets compete; greedy admission picks a
		// conflict-free batch (no output may receive two packets).
		outUsed := make([]bool, n)
		dests := make([][]int, n)
		var admitted []*packet
		for in := 0; in < n; in++ {
			if len(queues[in]) == 0 {
				continue
			}
			p := queues[in][0]
			ok := true
			for _, d := range p.dests {
				if outUsed[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, d := range p.dests {
				outUsed[d] = true
			}
			dests[in] = p.dests
			admitted = append(admitted, p)
		}
		if len(admitted) == 0 {
			continue
		}
		a, err := brsmn.NewAssignment(n, dests)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nw.Route(a)
		if err != nil {
			log.Fatal(err)
		}
		// Confirm every admitted packet's copies landed.
		got := map[int]int{}
		for _, d := range res.Deliveries {
			if d.Source >= 0 {
				got[d.Source]++
			}
		}
		for _, p := range admitted {
			if got[p.source] != len(p.dests) {
				log.Fatalf("slot %d: packet %d delivered %d of %d copies",
					slot, p.id, got[p.source], len(p.dests))
			}
			queues[p.source] = queues[p.source][1:]
			departures[p.id] = slot
			delivered = append(delivered, p)
			totalCopies += len(p.dests)
		}
	}

	backlog := 0
	for _, q := range queues {
		backlog += len(q)
	}
	sumDelay := 0
	for _, p := range delivered {
		sumDelay += departures[p.id] - p.arrived
	}
	fmt.Printf("slots: %d, offered load %.2f pkts/input/slot\n", slots, load)
	fmt.Printf("packets delivered: %d (%d copies), backlog %d\n", len(delivered), totalCopies, backlog)
	fmt.Printf("fabric copy throughput: %.2f copies/slot (capacity %d)\n",
		float64(totalCopies)/float64(slots), n)
	if len(delivered) > 0 {
		fmt.Printf("mean packet delay: %.2f slots\n", float64(sumDelay)/float64(len(delivered)))
	}
	if len(delivered) == 0 || totalCopies == 0 {
		log.Fatal("switch delivered nothing; emulation broken")
	}
	fmt.Println("\nall admitted packets delivered exactly once per destination")
}
