// Videoconference: the paper's telecommunication motivation. A 64-port
// switch hosts several simultaneous conference calls; in every round the
// active speaker of each call multicasts a video frame to all other
// participants. Speakers rotate, so the multicast assignment changes
// every round and the self-routing network reconfigures itself from the
// frames' tag sequences alone.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"brsmn"
)

// conference is a call: a set of switch ports, one of which speaks each
// round.
type conference struct {
	name  string
	ports []int
}

func main() {
	const n = 64
	rng := rand.New(rand.NewSource(2026))

	// Carve disjoint port groups for four calls of different sizes.
	perm := rng.Perm(n)
	calls := []conference{
		{name: "standup", ports: perm[0:5]},
		{name: "lecture", ports: perm[5:37]},
		{name: "1:1", ports: perm[37:39]},
		{name: "panel", ports: perm[39:47]},
	}

	nw, err := brsmn.New(n)
	if err != nil {
		log.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		fmt.Printf("--- round %d ---\n", round)
		dests := make([][]int, n)
		payloads := make([]any, n)
		speakers := make(map[int]string)
		for _, c := range calls {
			speaker := c.ports[round%len(c.ports)]
			// The speaker multicasts to every other participant.
			for _, p := range c.ports {
				if p != speaker {
					dests[speaker] = append(dests[speaker], p)
				}
			}
			payloads[speaker] = fmt.Sprintf("frame[%s/r%d]", c.name, round)
			speakers[speaker] = c.name
		}
		a, err := brsmn.NewAssignment(n, dests)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nw.RouteWithPayloads(a, payloads)
		if err != nil {
			log.Fatal(err)
		}

		// Check and report: every participant of every call received
		// exactly its call's frame.
		received := map[string]int{}
		for out, d := range res.Deliveries {
			if d.Source < 0 {
				continue
			}
			received[d.Payload.(string)]++
			_ = out
		}
		for _, c := range calls {
			speaker := c.ports[round%len(c.ports)]
			frame := payloads[speaker].(string)
			want := len(c.ports) - 1
			fmt.Printf("%-8s speaker port %2d -> %2d listeners, delivered %2d copies of %s\n",
				c.name, speaker, want, received[frame], frame)
			if received[frame] != want {
				log.Fatalf("call %s lost frames", c.name)
			}
		}
	}
	fmt.Println("\nall frames delivered over edge-disjoint multicast trees")
}
