package brsmn

import (
	"context"

	"brsmn/internal/controller"
	"brsmn/internal/netsim"
	"brsmn/internal/sched"
)

// Request is one multicast demand for the batch scheduler: a source
// input and a destination set. Unlike assignments, requests in a batch
// may overlap — the scheduler serializes conflicting requests into
// successive rounds.
type Request = sched.Request

// BatchResult is a scheduled and routed request batch: the conflict-free
// rounds (each a valid assignment routed in one network pass) and the
// round each original request was placed in.
type BatchResult = sched.Result

// ScheduleRequests partitions overlapping requests into conflict-free
// rounds (greedy first-fit, largest fanout first). Each round is a valid
// multicast assignment for one network pass; the number of rounds is at
// least the batch's conflict degree (see ConflictDegree).
func ScheduleRequests(n int, reqs []Request) ([][]Request, error) {
	return sched.Schedule(n, reqs)
}

// ConflictDegree returns the largest number of requests in the batch
// sharing one output or one source — the lower bound on rounds any
// schedule needs.
func ConflictDegree(n int, reqs []Request) int {
	return sched.ConflictDegree(n, reqs)
}

// ScheduleAndRoute schedules a request batch and routes every round
// through an n x n BRSMN, verifying each round's deliveries.
func ScheduleAndRoute(n int, reqs []Request, opts ...Option) (*BatchResult, error) {
	c := buildConfig(opts)
	return sched.RouteAll(n, reqs, c.engine)
}

// PipelineReport describes a pipelined run: per-wave deliveries, the
// makespan in switch-column cycles, and the speedup over running each
// assignment through the fabric alone.
type PipelineReport = netsim.Report

// RoutePipelined streams a batch of same-size assignments through one
// BRSMN fabric with a new wave injected every `gap` cycles (gap >= 1) —
// the pipelined operation of the paper's Section 7. After the pipeline
// fills, one complete multicast assignment is delivered every gap
// cycles; the report records the achieved makespan and column
// parallelism, and every wave's deliveries are verified.
func RoutePipelined(assignments []Assignment, gap int, opts ...Option) (*PipelineReport, error) {
	c := buildConfig(opts)
	return netsim.Pipeline(assignments, gap, c.engine)
}

// StreamResult is one routed assignment from a concurrent stream, tagged
// with its submission index; exactly one of Res/Err is set.
type StreamResult = controller.StreamResult

// RouteStream routes a stream of same-size assignments concurrently: a
// pool of `workers` goroutines overlaps plan computation and fabric
// simulation across assignments, and results are delivered on the
// returned channel in submission order. The stream ends when `in` closes
// or ctx is cancelled; per-assignment failures arrive as in-band errors
// without stopping the stream.
func RouteStream(ctx context.Context, n int, in <-chan Assignment, workers int, opts ...Option) (<-chan StreamResult, error) {
	c := buildConfig(opts)
	return controller.RouteStream(ctx, n, in, workers, c.engine)
}

// RouteBatch routes a slice of assignments with the given concurrency
// and returns the ordered results.
func RouteBatch(n int, assignments []Assignment, workers int, opts ...Option) ([]StreamResult, error) {
	c := buildConfig(opts)
	return controller.RouteAll(n, assignments, workers, c.engine)
}
