package brsmn

import (
	"math/rand"
	"testing"
)

// TestScheduleAndRoute exercises the batch scheduler surface end to end:
// conflicting requests serialize, and every request is delivered in its
// round.
func TestScheduleAndRoute(t *testing.T) {
	n := 16
	reqs := []Request{
		{Source: 0, Dests: []int{1, 2, 3}},
		{Source: 4, Dests: []int{2, 5}},   // conflicts with request 0 on output 2
		{Source: 0, Dests: []int{8}},      // conflicts with request 0 on source 0
		{Source: 9, Dests: []int{10, 11}}, // conflict-free
	}
	if deg := ConflictDegree(n, reqs); deg != 2 {
		t.Fatalf("ConflictDegree = %d, want 2", deg)
	}
	rounds, err := ScheduleRequests(n, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 2 {
		t.Fatalf("%d rounds, want 2", len(rounds))
	}
	res, err := ScheduleAndRoute(n, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range reqs {
		round := res.RoundOf[k]
		for _, d := range r.Dests {
			if got := res.Routed[round].Deliveries[d].Source; got != r.Source {
				t.Errorf("request %d: output %d got %d, want %d", k, d, got, r.Source)
			}
		}
	}
}

// TestRoutePipelined exercises the pipelined surface: correct
// deliveries, expected makespan and super-unit speedup.
func TestRoutePipelined(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	n := 16
	as := make([]Assignment, 6)
	for i := range as {
		as[i] = RandomAssignment(rng, n, 0.7, 0.5)
	}
	rep, err := RoutePipelined(as, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Waves != 6 || rep.Speedup() <= 1 {
		t.Errorf("report: waves %d speedup %.2f", rep.Waves, rep.Speedup())
	}
	for w, a := range as {
		owner := a.OutputOwner()
		for out := range owner {
			if rep.Deliveries[w][out] != owner[out] {
				t.Errorf("wave %d output %d mismatch", w, out)
			}
		}
	}
	if _, err := RoutePipelined(nil, 1); err == nil {
		t.Error("RoutePipelined accepted empty batch")
	}
	if _, err := RoutePipelined(as, 0); err == nil {
		t.Error("RoutePipelined accepted zero gap")
	}
}

// TestRouteBatchSurface checks the concurrent batch surface.
func TestRouteBatchSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	n := 16
	as := make([]Assignment, 10)
	for i := range as {
		as[i] = RandomAssignment(rng, n, 0.6, 0.5)
	}
	results, err := RouteBatch(n, as, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Index != i || r.Err != nil {
			t.Fatalf("slot %d: index %d err %v", i, r.Index, r.Err)
		}
		if err := Verify(as[i], r.Res); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	if _, err := RouteBatch(7, as, 1); err == nil {
		t.Error("RouteBatch accepted bad size")
	}
}
