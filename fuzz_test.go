package brsmn_test

import (
	"testing"

	"brsmn"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/seq"
	"brsmn/internal/tag"
	"brsmn/internal/xbar"
)

// FuzzRouteOwnerMap fuzzes full-network routing: any byte string decodes
// to a valid 16-port multicast assignment (an output -> owner map), which
// must route and agree with the crossbar oracle. Run deeper with
//
//	go test -fuzz=FuzzRouteOwnerMap -fuzztime=30s .
func FuzzRouteOwnerMap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{255, 255, 7})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 16
		dests := make([][]int, n)
		for out := 0; out < n && out < len(raw); out++ {
			in := int(raw[out]) % (n + 1)
			if in == n {
				continue
			}
			dests[in] = append(dests[in], out)
		}
		a, err := brsmn.NewAssignment(n, dests)
		if err != nil {
			t.Fatalf("generated assignment invalid: %v", err)
		}
		res, err := brsmn.Route(a)
		if err != nil {
			t.Fatalf("Route(%v): %v", a, err)
		}
		xb, err := xbar.New(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := xb.Route(a)
		if err != nil {
			t.Fatal(err)
		}
		for out := range want {
			if res.Deliveries[out].Source != want[out] {
				t.Fatalf("%v: output %d = %d, oracle %d", a, out, res.Deliveries[out].Source, want[out])
			}
		}
	})
}

// FuzzTagSequence fuzzes the wire format: any destination bitmask
// round-trips through Sequence/ParseSequence and Dests.
func FuzzTagSequence(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	f.Add(uint32(0b10110))
	f.Fuzz(func(t *testing.T, mask uint32) {
		const n = 32
		var dests []int
		for d := 0; d < n; d++ {
			if mask>>d&1 == 1 {
				dests = append(dests, d)
			}
		}
		tree, err := mcast.BuildTagTree(n, dests)
		if err != nil {
			t.Fatal(err)
		}
		s := tree.Sequence()
		back, err := mcast.ParseSequence(n, s)
		if err != nil {
			t.Fatalf("ParseSequence(%s): %v", mcast.FormatSequence(s), err)
		}
		got := back.Dests()
		if len(got) != len(dests) {
			t.Fatalf("round trip lost destinations: %v vs %v", got, dests)
		}
		for i := range got {
			if got[i] != dests[i] {
				t.Fatalf("round trip mismatch at %d: %v vs %v", i, got, dests)
			}
		}
	})
}

// FuzzScatter fuzzes Theorem 3: any 2-bit-per-input tag vector scatters
// to a compact dominating run with the minority type eliminated.
func FuzzScatter(f *testing.F) {
	f.Add(uint32(0), uint8(0))
	f.Add(uint32(0xAAAAAAAA), uint8(3))
	f.Add(uint32(0xDEADBEEF), uint8(9))
	f.Fuzz(func(t *testing.T, packed uint32, sRaw uint8) {
		const n = 16
		vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps}
		tags := make([]tag.Value, n)
		for i := range tags {
			tags[i] = vals[packed>>(2*i)&3]
		}
		s := int(sRaw) % n
		_, out, err := rbn.ScatterRoute(n, tags, s)
		if err != nil {
			t.Fatalf("ScatterRoute(%v, %d): %v", tags, s, err)
		}
		in := tag.Count(tags)
		oc := tag.Count(out)
		pairs := min(in.NAlpha, in.NEps)
		if oc.NAlpha != in.NAlpha-pairs || oc.NEps != in.NEps-pairs {
			t.Fatalf("minority not eliminated: in %+v out %+v", in, oc)
		}
		dom, l := tag.Eps, in.NEps-in.NAlpha
		if in.NAlpha > in.NEps {
			dom, l = tag.Alpha, in.NAlpha-in.NEps
		}
		classed := make([]tag.Value, n)
		for i, v := range out {
			if v.IsChi() {
				classed[i] = tag.V0
			} else {
				classed[i] = v
			}
		}
		if !seq.IsCompact(classed, s, l, tag.V0, dom) {
			t.Fatalf("output %v not C_{%d,%d;χ,%v}", out, s, l, dom)
		}
	})
}
