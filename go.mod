module brsmn

go 1.22
