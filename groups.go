package brsmn

import (
	"fmt"

	"brsmn/internal/mcast"
	"brsmn/internal/shuffle"
	"brsmn/internal/tag"
)

// Group is a long-lived dynamic multicast group: a source port plus a
// membership set maintained incrementally — Join and Leave update only
// the O(log n) routing-tag tree nodes on the member's address path, so a
// conference call or replica set adjusts its routing state without
// rebuilding it.
type Group struct {
	n      int
	source int
	size   int
	tree   mcast.TagTree
	seqBuf []tag.Value // retained across Sequence calls
}

// NewGroup creates an empty group rooted at the given source port of an
// n-port network.
func NewGroup(n, source int) (*Group, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("brsmn: network size %d is not a power of two >= 2", n)
	}
	if source < 0 || source >= n {
		return nil, fmt.Errorf("brsmn: source %d out of range [0,%d)", source, n)
	}
	tree, err := mcast.BuildTagTree(n, nil)
	if err != nil {
		return nil, err
	}
	return &Group{n: n, source: source, tree: tree}, nil
}

// Source returns the group's sending port.
func (g *Group) Source() int { return g.source }

// Join admits output port d to the group.
func (g *Group) Join(d int) error {
	if err := g.tree.Add(d); err != nil {
		return err
	}
	g.size++
	return nil
}

// Leave removes output port d from the group.
func (g *Group) Leave(d int) error {
	if err := g.tree.Remove(d); err != nil {
		return err
	}
	g.size--
	return nil
}

// Contains reports membership.
func (g *Group) Contains(d int) bool { return g.tree.Contains(d) }

// Len returns the membership count, maintained incrementally — unlike
// Members it costs O(1) and allocates nothing.
func (g *Group) Len() int { return g.size }

// Members returns the current membership, sorted.
func (g *Group) Members() []int { return g.tree.Dests() }

// Sequence returns the group's current routing-tag sequence in the
// paper's notation — what the source attaches to each message. The tag
// buffer is retained on the group and reused, so repeated calls on a
// long-lived group allocate only the formatted string.
func (g *Group) Sequence() string {
	g.seqBuf = g.tree.AppendSequence(g.seqBuf[:0])
	return mcast.FormatSequence(g.seqBuf)
}

// AssignmentFromGroups builds a routable assignment from the groups'
// current memberships. Groups must have distinct sources and disjoint
// memberships; empty groups are skipped.
func AssignmentFromGroups(n int, groups []*Group) (Assignment, error) {
	dests := make([][]int, n)
	for _, g := range groups {
		if g.n != n {
			return Assignment{}, fmt.Errorf("brsmn: group of size %d on an %d-port network", g.n, n)
		}
		members := g.Members()
		if len(members) == 0 {
			continue
		}
		if dests[g.source] != nil {
			return Assignment{}, fmt.Errorf("brsmn: two groups share source %d", g.source)
		}
		dests[g.source] = members
	}
	return NewAssignment(n, dests)
}
