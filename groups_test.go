package brsmn

import (
	"reflect"
	"testing"
)

// TestGroupLifecycle drives join/leave and routes the groups' traffic.
func TestGroupLifecycle(t *testing.T) {
	n := 16
	g1, err := NewGroup(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGroup(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{2, 5, 11} {
		if err := g1.Join(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range []int{3, 8} {
		if err := g2.Join(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := g1.Leave(5); err != nil {
		t.Fatal(err)
	}
	if got := g1.Members(); !reflect.DeepEqual(got, []int{2, 11}) {
		t.Fatalf("g1 members %v", got)
	}
	if !g2.Contains(8) || g2.Contains(5) || g1.Source() != 0 {
		t.Error("membership accessors wrong")
	}
	if g1.Sequence() == "" {
		t.Error("empty sequence")
	}
	a, err := AssignmentFromGroups(n, []*Group{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range g1.Members() {
		if res.Deliveries[d].Source != 0 {
			t.Errorf("output %d got %d", d, res.Deliveries[d].Source)
		}
	}
	for _, d := range g2.Members() {
		if res.Deliveries[d].Source != 7 {
			t.Errorf("output %d got %d", d, res.Deliveries[d].Source)
		}
	}
}

// TestGroupErrors covers the guards.
func TestGroupErrors(t *testing.T) {
	if _, err := NewGroup(6, 0); err == nil {
		t.Error("NewGroup accepted bad size")
	}
	if _, err := NewGroup(8, 8); err == nil {
		t.Error("NewGroup accepted bad source")
	}
	g, _ := NewGroup(8, 1)
	if err := g.Join(1); err != nil {
		t.Error("a group may multicast to its own source port")
	}
	if err := g.Join(1); err == nil {
		t.Error("double join accepted")
	}
	if err := g.Leave(5); err == nil {
		t.Error("leave of non-member accepted")
	}
	g2, _ := NewGroup(8, 1)
	_ = g2.Join(3)
	if _, err := AssignmentFromGroups(8, []*Group{g, g2}); err == nil {
		t.Error("duplicate sources accepted")
	}
	g16, _ := NewGroup(16, 0)
	_ = g16.Join(1)
	if _, err := AssignmentFromGroups(8, []*Group{g16}); err == nil {
		t.Error("size mismatch accepted")
	}
	// Empty groups are skipped.
	empty, _ := NewGroup(8, 2)
	a, err := AssignmentFromGroups(8, []*Group{empty})
	if err != nil || a.Fanout() != 0 {
		t.Error("empty group handling wrong")
	}
}

// TestPaddedNetwork routes on a non-power-of-two port count.
func TestPaddedNetwork(t *testing.T) {
	p, err := NewPadded(11)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ports() != 11 || p.FabricSize() != 16 {
		t.Fatalf("ports %d fabric %d", p.Ports(), p.FabricSize())
	}
	deliveries, err := p.Route([][]int{{1, 2, 10}, nil, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 11 {
		t.Fatalf("%d deliveries", len(deliveries))
	}
	for _, d := range []int{1, 2, 10} {
		if deliveries[d].Source != 0 {
			t.Errorf("output %d got %d", d, deliveries[d].Source)
		}
	}
	if deliveries[0].Source != 2 {
		t.Errorf("output 0 got %d", deliveries[0].Source)
	}
	if _, err := p.Route([][]int{{11}}); err == nil {
		t.Error("destination beyond usable ports accepted")
	}
	if _, err := p.Route(make([][]int, 12)); err == nil {
		t.Error("too many inputs accepted")
	}
	if _, err := NewPadded(1); err == nil {
		t.Error("NewPadded(1) accepted")
	}
	// Exact powers of two pass through unpadded.
	q, err := NewPadded(16)
	if err != nil || q.FabricSize() != 16 {
		t.Error("power-of-two padding wrong")
	}
}
