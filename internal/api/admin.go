package api

// Durability admin surface:
//
//	POST /v1/admin/snapshot  -> {"snapshots":[{"shard","lsn","groups","plans","bytes","durationNs"},…]}
//
// Forces an immediate snapshot — and the log truncation that follows it
// — on every durable shard, so an operator can bound recovery time
// before a planned restart. Answers 503 when the daemon runs without a
// durable store (-data-dir unset).

import (
	"errors"
	"net/http"

	"brsmn/internal/groupd"
	"brsmn/internal/shard"
	"brsmn/internal/store"
)

// Snapshotter is the durability control contract: *groupd.Manager (one
// stream) and *shard.Set (one stream per shard) both implement it.
type Snapshotter interface {
	SnapshotAll() ([]store.SnapshotInfo, error)
}

var (
	_ Snapshotter = (*groupd.Manager)(nil)
	_ Snapshotter = (*shard.Set)(nil)
)

// WithSnapshots enables POST /v1/admin/snapshot against snap.
func WithSnapshots(snap Snapshotter) Option {
	return func(s *Server) { s.snap = snap }
}

// SnapshotResponse is the POST /v1/admin/snapshot reply.
type SnapshotResponse struct {
	Snapshots []store.SnapshotInfo `json:"snapshots"`
}

func (s *Server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snap == nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "api: durable store not enabled")
		return
	}
	infos, err := s.snap.SnapshotAll()
	if err != nil {
		if errors.Is(err, groupd.ErrNoStore) {
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "api: durable store not enabled")
			return
		}
		groupErr(w, err)
		return
	}
	writeData(w, http.StatusOK, SnapshotResponse{Snapshots: infos})
}
