package api

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"brsmn/internal/groupd"
	"brsmn/internal/rbn"
	"brsmn/internal/store"
)

func TestAdminSnapshotEndpoint(t *testing.T) {
	st := store.NewMem()
	gm, err := groupd.NewManager(groupd.Config{N: 16, Engine: rbn.Sequential, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gm.Close() })
	ts := httptest.NewServer(NewServer(rbn.Sequential, gm, nil, WithSnapshots(gm)))
	t.Cleanup(ts.Close)

	if code := doJSON(t, "POST", ts.URL+"/v1/groups",
		CreateGroupRequest{ID: "conf", Source: 2, Members: []int{3, 4}}, nil); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	var resp SnapshotResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/admin/snapshot", nil, &resp); code != http.StatusOK {
		t.Fatalf("snapshot = %d", code)
	}
	if len(resp.Snapshots) != 1 {
		t.Fatalf("snapshots = %+v", resp.Snapshots)
	}
	if s := resp.Snapshots[0]; s.Groups != 1 || s.Bytes <= 0 {
		t.Fatalf("snapshot info = %+v", s)
	}
	if !st.HasSnapshot() {
		t.Fatal("store has no snapshot after admin snapshot")
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/admin/snapshot", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET snapshot = %d, want 405", code)
	}
}

func TestAdminSnapshotUnavailable(t *testing.T) {
	// No WithSnapshots option: the endpoint answers 503.
	ts := newGroupServer(t)
	if code := doJSON(t, "POST", ts.URL+"/v1/admin/snapshot", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("snapshot without store = %d, want 503", code)
	}
}
