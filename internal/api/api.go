// Package api exposes the multicast network as a JSON-over-HTTP service
// — the integration surface for systems that want to drive a (simulated
// or future hardware) BRSMN switch remotely. Endpoints:
//
//	POST /route     {"n":8,"dests":[[0,1],null,[3,4,7],[2],null,null,null,[5,6]]}
//	                -> {"deliveries":[0,0,3,2,2,7,7,2], "splits":…, "depth":…}
//	POST /schedule  {"n":16,"requests":[{"source":0,"dests":[1,2]},…]}
//	                -> {"rounds":[[…round-0 deliveries…],…],"roundOf":[0,1,…]}
//	GET  /cost?n=256
//	                -> the Table 2 rows at that size
//	GET  /sequence?n=8&dests=3,4,7
//	                -> {"sequence":"α1αε011"}
//
// The core routing handlers are stateless; a Server constructed with a
// groupd.Manager additionally serves the stateful group endpoints of
// groups.go (long-lived sessions, epochs, cached plans). A Server is
// safe for concurrent use either way.
package api

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"brsmn/internal/core"
	"brsmn/internal/cost"
	"brsmn/internal/fabric"
	"brsmn/internal/faultd"
	"brsmn/internal/groupd"
	"brsmn/internal/mcast"
	"brsmn/internal/netsim"
	"brsmn/internal/plancodec"
	"brsmn/internal/rbn"
	"brsmn/internal/sched"
	"brsmn/internal/shuffle"
)

// Server handles the HTTP API. Construct with NewServer.
type Server struct {
	eng rbn.Engine
	gm  *groupd.Manager
	fm  *faultd.Monitor
	mux *http.ServeMux
}

// NewServer returns a handler-ready server using the given engine for
// switch setting. gm may be nil, which disables the stateful group
// endpoints (they answer 503) while /healthz and the stateless handlers
// keep working; fm may likewise be nil, which disables the
// fault-management endpoints of faults.go.
func NewServer(eng rbn.Engine, gm *groupd.Manager, fm *faultd.Monitor) *Server {
	s := &Server{eng: eng, gm: gm, fm: fm, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /route", s.handleRoute)
	s.mux.HandleFunc("POST /schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /plan", s.handlePlan)
	s.mux.HandleFunc("POST /pipeline", s.handlePipeline)
	s.mux.HandleFunc("GET /cost", s.handleCost)
	s.mux.HandleFunc("GET /sequence", s.handleSequence)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /groups", s.withGroups(s.handleGroupCreate))
	s.mux.HandleFunc("GET /groups", s.withGroups(s.handleGroupList))
	s.mux.HandleFunc("GET /groups/{id}", s.withGroups(s.handleGroupGet))
	s.mux.HandleFunc("POST /groups/{id}/join", s.withGroups(s.handleGroupJoin))
	s.mux.HandleFunc("POST /groups/{id}/leave", s.withGroups(s.handleGroupLeave))
	s.mux.HandleFunc("DELETE /groups/{id}", s.withGroups(s.handleGroupDelete))
	s.mux.HandleFunc("GET /groups/{id}/plan", s.withGroups(s.handleGroupPlan))
	s.mux.HandleFunc("GET /epoch", s.withGroups(s.handleEpochGet))
	s.mux.HandleFunc("POST /epoch", s.withGroups(s.handleEpochRun))
	s.mux.HandleFunc("GET /faults", s.withFaults(s.handleFaultsGet))
	s.mux.HandleFunc("POST /faults", s.withFaults(s.handleFaultsPost))
	s.mux.HandleFunc("DELETE /faults", s.withFaults(s.handleFaultsDelete))
	s.mux.HandleFunc("GET /faults/report", s.withFaults(s.handleFaultsReport))
	s.mux.HandleFunc("POST /probe", s.withFaults(s.handleProbe))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// RouteRequest is the /route payload.
type RouteRequest struct {
	N     int     `json:"n"`
	Dests [][]int `json:"dests"`
}

// RouteResponse is the /route reply.
type RouteResponse struct {
	// Deliveries[out] is the source delivered at that output, -1 idle.
	Deliveries []int `json:"deliveries"`
	// Splits is the number of broadcast switches the routing used.
	Splits int `json:"splits"`
	// Depth is the column depth of the traversed network.
	Depth int `json:"depth"`
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req RouteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON: %w", err))
		return
	}
	a, err := mcast.New(req.N, req.Dests)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	nw, err := core.New(a.N, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	res, err := nw.Route(a)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := RouteResponse{
		Deliveries: make([]int, a.N),
		Depth:      cost.BRSMNDepth(a.N),
	}
	for out, d := range res.Deliveries {
		resp.Deliveries[out] = d.Source
	}
	for _, lp := range res.Plans {
		c := lp.Scatter.CountSettings()
		resp.Splits += c[2] + c[3]
	}
	for _, f := range res.Final {
		if f.IsBroadcast() {
			resp.Splits++
		}
	}
	writeJSON(w, resp)
}

// ScheduleRequest is the /schedule payload.
type ScheduleRequest struct {
	N        int             `json:"n"`
	Requests []sched.Request `json:"requests"`
}

// ScheduleResponse is the /schedule reply.
type ScheduleResponse struct {
	// Rounds[i][out] is round i's delivery vector.
	Rounds [][]int `json:"rounds"`
	// RoundOf[k] is the round request k was placed in.
	RoundOf []int `json:"roundOf"`
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON: %w", err))
		return
	}
	if !shuffle.IsPow2(req.N) || req.N < 2 {
		httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("api: n = %d is not a power of two >= 2", req.N))
		return
	}
	res, err := sched.RouteAll(req.N, req.Requests, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := ScheduleResponse{RoundOf: res.RoundOf}
	for _, rr := range res.Routed {
		vec := make([]int, req.N)
		for out, d := range rr.Deliveries {
			vec[out] = d.Source
		}
		resp.Rounds = append(resp.Rounds, vec)
	}
	writeJSON(w, resp)
}

// CostResponse is the /cost reply: the Table 2 rows.
type CostResponse struct {
	N    int        `json:"n"`
	Rows []cost.Row `json:"rows"`
}

func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil || !shuffle.IsPow2(n) || n < 2 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: n must be a power of two >= 2"))
		return
	}
	writeJSON(w, CostResponse{N: n, Rows: cost.Table2(n)})
}

// SequenceResponse is the /sequence reply.
type SequenceResponse struct {
	Sequence string `json:"sequence"`
}

func (s *Server) handleSequence(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad n"))
		return
	}
	var dests []int
	raw := r.URL.Query().Get("dests")
	if raw != "" {
		for _, f := range strings.Split(raw, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad destination %q", f))
				return
			}
			dests = append(dests, d)
		}
	}
	seq, err := mcast.SequenceFromDests(n, dests)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, SequenceResponse{Sequence: mcast.FormatSequence(seq)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing else to do but note it.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// PlanResponse is the /plan reply: the routed assignment's deliveries
// plus the flattened switch-column program in the plancodec binary
// format, base64-encoded — what a hardware configuration flow consumes.
type PlanResponse struct {
	Deliveries []int  `json:"deliveries"`
	Columns    int    `json:"columns"`
	Plan       string `json:"plan"` // base64(plancodec)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req RouteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON: %w", err))
		return
	}
	a, err := mcast.New(req.N, req.Dests)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	nw, err := core.New(a.N, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	res, err := nw.Route(a)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	blob, err := plancodec.Encode(a.N, cols)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := PlanResponse{
		Deliveries: make([]int, a.N),
		Columns:    len(cols),
		Plan:       base64.StdEncoding.EncodeToString(blob),
	}
	for out, d := range res.Deliveries {
		resp.Deliveries[out] = d.Source
	}
	writeJSON(w, resp)
}

// PipelineRequest is the /pipeline payload: a batch of same-size
// assignments plus the injection gap.
type PipelineRequest struct {
	N     int       `json:"n"`
	Gap   int       `json:"gap"`
	Batch [][][]int `json:"batch"` // Batch[k] = assignment k's dests
}

// PipelineResponse is the /pipeline reply.
type PipelineResponse struct {
	Depth          int     `json:"depth"`
	Makespan       int     `json:"makespan"`
	Sequential     int     `json:"sequential"`
	Speedup        float64 `json:"speedup"`
	MaxColumnsBusy int     `json:"maxColumnsBusy"`
	Deliveries     [][]int `json:"deliveries"`
}

func (s *Server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	var req PipelineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON: %w", err))
		return
	}
	as := make([]mcast.Assignment, len(req.Batch))
	for k, dests := range req.Batch {
		a, err := mcast.New(req.N, dests)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("api: assignment %d: %w", k, err))
			return
		}
		as[k] = a
	}
	rep, err := netsim.Pipeline(as, req.Gap, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, PipelineResponse{
		Depth:          rep.Depth,
		Makespan:       rep.Makespan,
		Sequential:     rep.SequentialMakespan,
		Speedup:        rep.Speedup(),
		MaxColumnsBusy: rep.MaxColumnsBusy,
		Deliveries:     rep.Deliveries,
	})
}
