// Package api exposes the multicast network as a JSON-over-HTTP service
// — the integration surface for systems that want to drive a (simulated
// or future hardware) BRSMN switch remotely. Endpoints:
//
//	POST /route     {"n":8,"dests":[[0,1],null,[3,4,7],[2],null,null,null,[5,6]]}
//	                -> {"deliveries":[0,0,3,2,2,7,7,2], "splits":…, "depth":…}
//	POST /schedule  {"n":16,"requests":[{"source":0,"dests":[1,2]},…]}
//	                -> {"rounds":[[…round-0 deliveries…],…],"roundOf":[0,1,…]}
//	GET  /cost?n=256
//	                -> the Table 2 rows at that size
//	GET  /sequence?n=8&dests=3,4,7
//	                -> {"sequence":"α1αε011"}
//
// The core routing handlers are stateless; a Server constructed with a
// groupd.Manager additionally serves the stateful group endpoints of
// groups.go (long-lived sessions, epochs, cached plans). A Server is
// safe for concurrent use either way.
package api

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"brsmn/internal/core"
	"brsmn/internal/cost"
	"brsmn/internal/fabric"
	"brsmn/internal/faultd"
	"brsmn/internal/groupd"
	"brsmn/internal/mcast"
	"brsmn/internal/netsim"
	"brsmn/internal/obs"
	"brsmn/internal/plancodec"
	"brsmn/internal/rbn"
	"brsmn/internal/sched"
	"brsmn/internal/shuffle"
)

// Server handles the HTTP API. Construct with NewServer.
type Server struct {
	eng    rbn.Engine
	gm     *groupd.Manager
	fm     *faultd.Monitor
	reg    *obs.Registry
	tracer *obs.TraceRecorder
	mux    *http.ServeMux
}

// NewServer returns a handler-ready server using the given engine for
// switch setting. gm may be nil, which disables the stateful group
// endpoints (they answer 503) while /healthz and the stateless handlers
// keep working; fm may likewise be nil, which disables the
// fault-management endpoints of faults.go. Options wire the optional
// observability surfaces of obs.go.
func NewServer(eng rbn.Engine, gm *groupd.Manager, fm *faultd.Monitor, opts ...Option) *Server {
	s := &Server{eng: eng, gm: gm, fm: fm, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.route("POST /route", "route", s.handleRoute)
	s.route("POST /schedule", "schedule", s.handleSchedule)
	s.route("POST /plan", "plan", s.handlePlan)
	s.route("POST /pipeline", "pipeline", s.handlePipeline)
	s.route("GET /cost", "cost", s.handleCost)
	s.route("GET /sequence", "sequence", s.handleSequence)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("POST /groups", "group_create", s.withGroups(s.handleGroupCreate))
	s.route("GET /groups", "group_list", s.withGroups(s.handleGroupList))
	s.route("GET /groups/{id}", "group_get", s.withGroups(s.handleGroupGet))
	s.route("POST /groups/{id}/join", "group_join", s.withGroups(s.handleGroupJoin))
	s.route("POST /groups/{id}/leave", "group_leave", s.withGroups(s.handleGroupLeave))
	s.route("DELETE /groups/{id}", "group_delete", s.withGroups(s.handleGroupDelete))
	s.route("GET /groups/{id}/plan", "group_plan", s.withGroups(s.handleGroupPlan))
	s.route("GET /epoch", "epoch", s.withGroups(s.handleEpochGet))
	s.route("POST /epoch", "epoch", s.withGroups(s.handleEpochRun))
	s.route("GET /faults", "faults", s.withFaults(s.handleFaultsGet))
	s.route("POST /faults", "faults", s.withFaults(s.handleFaultsPost))
	s.route("DELETE /faults", "faults", s.withFaults(s.handleFaultsDelete))
	s.route("GET /faults/report", "faults_report", s.withFaults(s.handleFaultsReport))
	s.route("POST /probe", "probe", s.withFaults(s.handleProbe))
	s.route("GET /metrics", "metrics", s.handleMetrics)
	s.route("GET /trace/{group}", "trace", s.handleTrace)

	// Method-less fallbacks: a request for a registered path with an
	// unregistered method lands here instead of ServeMux's plain-text
	// auto-405, so the reply is JSON with an Allow header. The root
	// fallback likewise turns the default plain-text 404 into JSON.
	s.notAllowed("/route", "POST")
	s.notAllowed("/schedule", "POST")
	s.notAllowed("/plan", "POST")
	s.notAllowed("/pipeline", "POST")
	s.notAllowed("/cost", "GET")
	s.notAllowed("/sequence", "GET")
	s.notAllowed("/healthz", "GET")
	s.notAllowed("/groups", "GET, POST")
	s.notAllowed("/groups/{id}", "GET, DELETE")
	s.notAllowed("/groups/{id}/join", "POST")
	s.notAllowed("/groups/{id}/leave", "POST")
	s.notAllowed("/groups/{id}/plan", "GET")
	s.notAllowed("/epoch", "GET, POST")
	s.notAllowed("/faults", "GET, POST, DELETE")
	s.notAllowed("/faults/report", "GET")
	s.notAllowed("/probe", "POST")
	s.notAllowed("/metrics", "GET")
	s.notAllowed("/trace/{group}", "GET")
	s.mux.HandleFunc("/", s.instrument("not_found", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, fmt.Errorf("api: no such endpoint %s", r.URL.Path))
	}))
	return s
}

// route registers an instrumented handler.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(name, h))
}

// notAllowed registers the method-less fallback for a path. Go's
// ServeMux prefers method-specific patterns, so this only fires for
// methods no handler claims.
func (s *Server) notAllowed(path, allow string) {
	s.mux.HandleFunc(path, s.instrument("method_not_allowed", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		httpError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("api: method %s not allowed on %s; allowed: %s", r.Method, r.URL.Path, allow))
	}))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// RouteRequest is the /route payload.
type RouteRequest struct {
	N     int     `json:"n"`
	Dests [][]int `json:"dests"`
}

// RouteResponse is the /route reply.
type RouteResponse struct {
	// Deliveries[out] is the source delivered at that output, -1 idle.
	Deliveries []int `json:"deliveries"`
	// Splits is the number of broadcast switches the routing used.
	Splits int `json:"splits"`
	// Depth is the column depth of the traversed network.
	Depth int `json:"depth"`
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req RouteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON: %w", err))
		return
	}
	a, err := mcast.New(req.N, req.Dests)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	nw, err := core.New(a.N, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	res, err := nw.Route(a)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := RouteResponse{
		Deliveries: make([]int, a.N),
		Depth:      cost.BRSMNDepth(a.N),
	}
	for out, d := range res.Deliveries {
		resp.Deliveries[out] = d.Source
	}
	for _, lp := range res.Plans {
		c := lp.Scatter.CountSettings()
		resp.Splits += c[2] + c[3]
	}
	for _, f := range res.Final {
		if f.IsBroadcast() {
			resp.Splits++
		}
	}
	writeJSON(w, resp)
}

// ScheduleRequest is the /schedule payload.
type ScheduleRequest struct {
	N        int             `json:"n"`
	Requests []sched.Request `json:"requests"`
}

// ScheduleResponse is the /schedule reply.
type ScheduleResponse struct {
	// Rounds[i][out] is round i's delivery vector.
	Rounds [][]int `json:"rounds"`
	// RoundOf[k] is the round request k was placed in.
	RoundOf []int `json:"roundOf"`
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON: %w", err))
		return
	}
	if !shuffle.IsPow2(req.N) || req.N < 2 {
		httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("api: n = %d is not a power of two >= 2", req.N))
		return
	}
	res, err := sched.RouteAll(req.N, req.Requests, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := ScheduleResponse{RoundOf: res.RoundOf}
	for _, rr := range res.Routed {
		vec := make([]int, req.N)
		for out, d := range rr.Deliveries {
			vec[out] = d.Source
		}
		resp.Rounds = append(resp.Rounds, vec)
	}
	writeJSON(w, resp)
}

// CostResponse is the /cost reply: the Table 2 rows.
type CostResponse struct {
	N    int        `json:"n"`
	Rows []cost.Row `json:"rows"`
}

func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil || !shuffle.IsPow2(n) || n < 2 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: n must be a power of two >= 2"))
		return
	}
	writeJSON(w, CostResponse{N: n, Rows: cost.Table2(n)})
}

// SequenceResponse is the /sequence reply.
type SequenceResponse struct {
	Sequence string `json:"sequence"`
}

func (s *Server) handleSequence(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad n"))
		return
	}
	var dests []int
	raw := r.URL.Query().Get("dests")
	if raw != "" {
		for _, f := range strings.Split(raw, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad destination %q", f))
				return
			}
			dests = append(dests, d)
		}
	}
	seq, err := mcast.SequenceFromDests(n, dests)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, SequenceResponse{Sequence: mcast.FormatSequence(seq)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing else to do but note it.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// PlanResponse is the /plan reply: the routed assignment's deliveries
// plus the flattened switch-column program in the plancodec binary
// format, base64-encoded — what a hardware configuration flow consumes.
type PlanResponse struct {
	Deliveries []int  `json:"deliveries"`
	Columns    int    `json:"columns"`
	Plan       string `json:"plan"` // base64(plancodec)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req RouteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON: %w", err))
		return
	}
	a, err := mcast.New(req.N, req.Dests)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	nw, err := core.New(a.N, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	res, err := nw.Route(a)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	blob, err := plancodec.Encode(a.N, cols)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := PlanResponse{
		Deliveries: make([]int, a.N),
		Columns:    len(cols),
		Plan:       base64.StdEncoding.EncodeToString(blob),
	}
	for out, d := range res.Deliveries {
		resp.Deliveries[out] = d.Source
	}
	writeJSON(w, resp)
}

// PipelineRequest is the /pipeline payload: a batch of same-size
// assignments plus the injection gap.
type PipelineRequest struct {
	N     int       `json:"n"`
	Gap   int       `json:"gap"`
	Batch [][][]int `json:"batch"` // Batch[k] = assignment k's dests
}

// PipelineResponse is the /pipeline reply.
type PipelineResponse struct {
	Depth          int     `json:"depth"`
	Makespan       int     `json:"makespan"`
	Sequential     int     `json:"sequential"`
	Speedup        float64 `json:"speedup"`
	MaxColumnsBusy int     `json:"maxColumnsBusy"`
	Deliveries     [][]int `json:"deliveries"`
}

func (s *Server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	var req PipelineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON: %w", err))
		return
	}
	as := make([]mcast.Assignment, len(req.Batch))
	for k, dests := range req.Batch {
		a, err := mcast.New(req.N, dests)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("api: assignment %d: %w", k, err))
			return
		}
		as[k] = a
	}
	rep, err := netsim.Pipeline(as, req.Gap, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, PipelineResponse{
		Depth:          rep.Depth,
		Makespan:       rep.Makespan,
		Sequential:     rep.SequentialMakespan,
		Speedup:        rep.Speedup(),
		MaxColumnsBusy: rep.MaxColumnsBusy,
		Deliveries:     rep.Deliveries,
	})
}
