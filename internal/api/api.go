// Package api exposes the multicast network as a versioned JSON-over-HTTP
// service — the integration surface for systems that want to drive a
// (simulated or future hardware) BRSMN switch remotely. All endpoints
// live under /v1 and reply with the uniform envelope of envelope.go
// ({"data": ..., "error": ...}); the stateless core:
//
//	POST /v1/route     {"n":8,"dests":[[0,1],null,[3,4,7],[2],null,null,null,[5,6]]}
//	                   -> {"data":{"deliveries":[…],"splits":…,"depth":…},"error":null}
//	POST /v1/schedule  {"n":16,"requests":[{"source":0,"dests":[1,2]},…]}
//	POST /v1/plan      route + flattened plancodec column program
//	POST /v1/pipeline  batch pipelining simulation
//	GET  /v1/cost?n=256
//	GET  /v1/sequence?n=8&dests=3,4,7
//
// With a sharded backend (WithShards), the group endpoints additionally
// accept ?async=1 for ticketed admission, served by the /v1/tickets
// surface of tickets.go (202 + ticket ID, long-poll, SSE).
//
// A Server constructed with a Groups backend (a *groupd.Manager, or the
// sharded *shard.Set) additionally serves the stateful group endpoints
// of groups.go; a *faultd.Monitor enables the fault endpoints of
// faults.go; WithShards enables the shard introspection and rebalance
// endpoints of shards.go.
//
// The pre-/v1 paths remain as deprecated aliases: they answer 301 (GET,
// HEAD) or 308 (everything else) to the /v1 successor, carrying
// `Deprecation: true` and a `Link: …; rel="successor-version"` header.
// GET /healthz and GET /metrics are additionally served directly at
// their legacy paths — load balancers and Prometheus scrapers don't
// chase redirects. A Server is safe for concurrent use.
package api

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"brsmn/internal/backend"
	"brsmn/internal/core"
	"brsmn/internal/cost"
	"brsmn/internal/fabric"
	"brsmn/internal/faultd"
	"brsmn/internal/mcast"
	"brsmn/internal/netsim"
	"brsmn/internal/obs"
	"brsmn/internal/plancodec"
	"brsmn/internal/rbn"
	"brsmn/internal/sched"
	"brsmn/internal/shard"
	"brsmn/internal/shuffle"
)

// Server handles the HTTP API. Construct with NewServer.
type Server struct {
	eng      rbn.Engine
	groups   Groups
	fm       *faultd.Monitor
	set      *shard.Set
	snap     Snapshotter
	monitors []*faultd.Monitor
	reg      *obs.Registry
	tracer   *obs.TraceRecorder
	ready    ReadyCheck
	mux      *http.ServeMux
}

// NewServer returns a handler-ready server using the given engine for
// switch setting. g may be nil, which disables the stateful group
// endpoints (they answer 503) while /v1/healthz and the stateless
// handlers keep working; fm may likewise be nil, which disables the
// fault-management endpoints of faults.go. Options wire the optional
// observability surfaces of obs.go and the sharded serving layer of
// shards.go.
func NewServer(eng rbn.Engine, g Groups, fm *faultd.Monitor, opts ...Option) *Server {
	s := &Server{eng: eng, groups: g, fm: fm, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.route("POST /v1/route", "route", s.handleRoute)
	s.route("POST /v1/schedule", "schedule", s.handleSchedule)
	s.route("POST /v1/plan", "plan", s.handlePlan)
	s.route("POST /v1/pipeline", "pipeline", s.handlePipeline)
	s.route("GET /v1/cost", "cost", s.handleCost)
	s.route("GET /v1/sequence", "sequence", s.handleSequence)
	s.route("GET /v1/healthz", "healthz", s.handleHealthz)
	s.route("GET /v1/readyz", "readyz", s.handleReadyz)
	s.route("POST /v1/groups", "group_create", s.withGroups(s.handleGroupCreate))
	s.route("GET /v1/groups", "group_list", s.withGroups(s.handleGroupList))
	s.route("GET /v1/groups/{id}", "group_get", s.withGroups(s.handleGroupGet))
	s.route("POST /v1/groups/{id}/join", "group_join", s.withGroups(s.handleGroupJoin))
	s.route("POST /v1/groups/{id}/leave", "group_leave", s.withGroups(s.handleGroupLeave))
	s.route("POST /v1/groups/{id}/backend", "group_backend", s.withGroups(s.handleGroupSetBackend))
	s.route("DELETE /v1/groups/{id}", "group_delete", s.withGroups(s.handleGroupDelete))
	s.route("GET /v1/groups/{id}/plan", "group_plan", s.withGroups(s.handleGroupPlan))
	s.route("GET /v1/backends", "backends", s.withGroups(s.handleBackends))
	s.route("POST /v1/tickets", "ticket_submit", s.withTickets(s.handleTicketSubmit))
	s.route("GET /v1/tickets", "ticket_stats", s.withTickets(s.handleTicketStats))
	s.route("GET /v1/tickets/{id}", "ticket_get", s.withTickets(s.handleTicketGet))
	s.route("GET /v1/tickets/{id}/events", "ticket_events", s.withTickets(s.handleTicketEvents))
	s.route("GET /v1/epoch", "epoch", s.withGroups(s.handleEpochGet))
	s.route("POST /v1/epoch", "epoch", s.withGroups(s.handleEpochRun))
	s.route("GET /v1/faults", "faults", s.withFaults(s.handleFaultsGet))
	s.route("POST /v1/faults", "faults", s.withFaults(s.handleFaultsPost))
	s.route("DELETE /v1/faults", "faults", s.withFaults(s.handleFaultsDelete))
	s.route("GET /v1/faults/report", "faults_report", s.withFaults(s.handleFaultsReport))
	s.route("POST /v1/probe", "probe", s.withFaults(s.handleProbe))
	s.route("POST /v1/admin/snapshot", "admin_snapshot", s.handleAdminSnapshot)
	s.route("GET /v1/shards", "shards", s.withShards(s.handleShards))
	s.route("POST /v1/shards/{id}/quarantine", "shard_quarantine", s.withShards(s.handleShardQuarantine))
	s.route("POST /v1/shards/{id}/reinstate", "shard_reinstate", s.withShards(s.handleShardReinstate))
	s.route("GET /v1/metrics", "metrics", s.handleMetrics)
	s.route("GET /v1/trace/{group}", "trace", s.handleTrace)

	// Load balancers and Prometheus scrapers don't chase redirects:
	// serve the probe and exposition paths directly at their unversioned
	// addresses too.
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /readyz", "readyz", s.handleReadyz)
	s.route("GET /metrics", "metrics", s.handleMetrics)

	// Method-less fallbacks: a request for a registered path with an
	// unregistered method lands here instead of ServeMux's plain-text
	// auto-405, so the reply is the envelope with an Allow header.
	s.notAllowed("/v1/route", "POST")
	s.notAllowed("/v1/schedule", "POST")
	s.notAllowed("/v1/plan", "POST")
	s.notAllowed("/v1/pipeline", "POST")
	s.notAllowed("/v1/cost", "GET")
	s.notAllowed("/v1/sequence", "GET")
	s.notAllowed("/v1/healthz", "GET")
	s.notAllowed("/v1/readyz", "GET")
	s.notAllowed("/v1/groups", "GET, POST")
	s.notAllowed("/v1/groups/{id}", "GET, DELETE")
	s.notAllowed("/v1/groups/{id}/join", "POST")
	s.notAllowed("/v1/groups/{id}/leave", "POST")
	s.notAllowed("/v1/groups/{id}/backend", "POST")
	s.notAllowed("/v1/groups/{id}/plan", "GET")
	s.notAllowed("/v1/backends", "GET")
	s.notAllowed("/v1/tickets", "GET, POST")
	s.notAllowed("/v1/tickets/{id}", "GET")
	s.notAllowed("/v1/tickets/{id}/events", "GET")
	s.notAllowed("/v1/epoch", "GET, POST")
	s.notAllowed("/v1/faults", "GET, POST, DELETE")
	s.notAllowed("/v1/faults/report", "GET")
	s.notAllowed("/v1/probe", "POST")
	s.notAllowed("/v1/admin/snapshot", "POST")
	s.notAllowed("/v1/shards", "GET")
	s.notAllowed("/v1/shards/{id}/quarantine", "POST")
	s.notAllowed("/v1/shards/{id}/reinstate", "POST")
	s.notAllowed("/v1/metrics", "GET")
	s.notAllowed("/v1/trace/{group}", "GET")
	s.notAllowed("/healthz", "GET")
	s.notAllowed("/readyz", "GET")
	s.notAllowed("/metrics", "GET")

	s.registerLegacy()

	// The catch-all 404 goes through the same envelope writer as every
	// other error — no plain-text leaks.
	s.mux.HandleFunc("/", s.instrument("not_found", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("api: no such endpoint %s", r.URL.Path))
	}))
	return s
}

// route registers an instrumented handler.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(name, h))
}

// notAllowed registers the method-less fallback for a path. Go's
// ServeMux prefers method-specific patterns, so this only fires for
// methods no handler claims.
func (s *Server) notAllowed(path, allow string) {
	s.mux.HandleFunc(path, s.instrument("method_not_allowed", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("api: method %s not allowed on %s; allowed: %s", r.Method, r.URL.Path, allow))
	}))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// RouteRequest is the /v1/route payload.
type RouteRequest struct {
	N     int     `json:"n"`
	Dests [][]int `json:"dests"`
}

func (r *RouteRequest) validate() (fields []FieldError) {
	if r.N < 2 || !shuffle.IsPow2(r.N) {
		fields = append(fields, FieldError{Field: "n", Reason: "required: a power of two >= 2"})
	}
	if len(r.Dests) == 0 {
		fields = append(fields, FieldError{Field: "dests", Reason: "required: one destination list per source"})
	}
	return fields
}

// RouteResponse is the /v1/route reply.
type RouteResponse struct {
	// Deliveries[out] is the source delivered at that output, -1 idle.
	Deliveries []int `json:"deliveries"`
	// Splits is the number of broadcast switches the routing used.
	Splits int `json:"splits"`
	// Depth is the column depth of the traversed network.
	Depth int `json:"depth"`
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req RouteRequest
	if !decode(w, r, &req) {
		return
	}
	a, err := mcast.New(req.N, req.Dests)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	nw, err := core.New(a.N, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	res, err := nw.Route(a)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := RouteResponse{
		Deliveries: make([]int, a.N),
		Depth:      cost.BRSMNDepth(a.N),
	}
	for out, d := range res.Deliveries {
		resp.Deliveries[out] = d.Source
	}
	for _, lp := range res.Plans {
		c := lp.Scatter.CountSettings()
		resp.Splits += c[2] + c[3]
	}
	for _, f := range res.Final {
		if f.IsBroadcast() {
			resp.Splits++
		}
	}
	writeData(w, http.StatusOK, resp)
}

// ScheduleRequest is the /v1/schedule payload.
type ScheduleRequest struct {
	N        int             `json:"n"`
	Requests []sched.Request `json:"requests"`
}

func (r *ScheduleRequest) validate() (fields []FieldError) {
	if r.N < 2 || !shuffle.IsPow2(r.N) {
		fields = append(fields, FieldError{Field: "n", Reason: "required: a power of two >= 2"})
	}
	return fields
}

// ScheduleResponse is the /v1/schedule reply.
type ScheduleResponse struct {
	// Rounds[i][out] is round i's delivery vector.
	Rounds [][]int `json:"rounds"`
	// RoundOf[k] is the round request k was placed in.
	RoundOf []int `json:"roundOf"`
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if !decode(w, r, &req) {
		return
	}
	res, err := sched.RouteAll(req.N, req.Requests, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := ScheduleResponse{RoundOf: res.RoundOf}
	for _, rr := range res.Routed {
		vec := make([]int, req.N)
		for out, d := range rr.Deliveries {
			vec[out] = d.Source
		}
		resp.Rounds = append(resp.Rounds, vec)
	}
	writeData(w, http.StatusOK, resp)
}

// CostResponse is the /v1/cost reply: the Table 2 rows.
type CostResponse struct {
	N    int        `json:"n"`
	Rows []cost.Row `json:"rows"`
}

func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil || !shuffle.IsPow2(n) || n < 2 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid request",
			FieldError{Field: "n", Reason: "required: a power of two >= 2"})
		return
	}
	writeData(w, http.StatusOK, CostResponse{N: n, Rows: cost.Table2(n)})
}

// SequenceResponse is the /v1/sequence reply.
type SequenceResponse struct {
	Sequence string `json:"sequence"`
}

func (s *Server) handleSequence(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid request",
			FieldError{Field: "n", Reason: "required: an integer network size"})
		return
	}
	var dests []int
	raw := r.URL.Query().Get("dests")
	if raw != "" {
		for _, f := range strings.Split(raw, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid request",
					FieldError{Field: "dests", Reason: fmt.Sprintf("bad destination %q", f)})
				return
			}
			dests = append(dests, d)
		}
	}
	seq, err := mcast.SequenceFromDests(n, dests)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeData(w, http.StatusOK, SequenceResponse{Sequence: mcast.FormatSequence(seq)})
}

// PlanResponse is the /v1/plan reply: the routed assignment's deliveries
// plus the flattened switch-column program in the plancodec binary
// format, base64-encoded — what a hardware configuration flow consumes.
// The backend/passes/cost fields mirror the group-plan envelope; the
// stateless endpoint always plans on the full BRSMN, and clients that
// ignore unknown fields decode the pre-tiering shape unchanged.
type PlanResponse struct {
	Deliveries []int     `json:"deliveries"`
	Columns    int       `json:"columns"`
	Plan       string    `json:"plan"` // base64(plancodec)
	Backend    string    `json:"backend,omitempty"`
	Passes     int       `json:"passes,omitempty"`
	Cost       *cost.Row `json:"cost,omitempty"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req RouteRequest
	if !decode(w, r, &req) {
		return
	}
	a, err := mcast.New(req.N, req.Dests)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	nw, err := core.New(a.N, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	res, err := nw.Route(a)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	blob, err := plancodec.Encode(a.N, cols)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	row := cost.BRSMN(a.N)
	resp := PlanResponse{
		Deliveries: make([]int, a.N),
		Columns:    len(cols),
		Plan:       base64.StdEncoding.EncodeToString(blob),
		Backend:    backend.TierBRSMN.String(),
		Passes:     1,
		Cost:       &row,
	}
	for out, d := range res.Deliveries {
		resp.Deliveries[out] = d.Source
	}
	writeData(w, http.StatusOK, resp)
}

// PipelineRequest is the /v1/pipeline payload: a batch of same-size
// assignments plus the injection gap.
type PipelineRequest struct {
	N     int       `json:"n"`
	Gap   int       `json:"gap"`
	Batch [][][]int `json:"batch"` // Batch[k] = assignment k's dests
}

func (r *PipelineRequest) validate() (fields []FieldError) {
	if r.N < 2 || !shuffle.IsPow2(r.N) {
		fields = append(fields, FieldError{Field: "n", Reason: "required: a power of two >= 2"})
	}
	if r.Gap < 0 {
		fields = append(fields, FieldError{Field: "gap", Reason: "must be non-negative"})
	}
	if len(r.Batch) == 0 {
		fields = append(fields, FieldError{Field: "batch", Reason: "required: at least one assignment"})
	}
	return fields
}

// PipelineResponse is the /v1/pipeline reply.
type PipelineResponse struct {
	Depth          int     `json:"depth"`
	Makespan       int     `json:"makespan"`
	Sequential     int     `json:"sequential"`
	Speedup        float64 `json:"speedup"`
	MaxColumnsBusy int     `json:"maxColumnsBusy"`
	Deliveries     [][]int `json:"deliveries"`
}

func (s *Server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	var req PipelineRequest
	if !decode(w, r, &req) {
		return
	}
	as := make([]mcast.Assignment, len(req.Batch))
	for k, dests := range req.Batch {
		a, err := mcast.New(req.N, dests)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("api: assignment %d: %w", k, err))
			return
		}
		as[k] = a
	}
	rep, err := netsim.Pipeline(as, req.Gap, s.eng)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeData(w, http.StatusOK, PipelineResponse{
		Depth:          rep.Depth,
		Makespan:       rep.Makespan,
		Sequential:     rep.SequentialMakespan,
		Speedup:        rep.Speedup(),
		MaxColumnsBusy: rep.MaxColumnsBusy,
		Deliveries:     rep.Deliveries,
	})
}
