package api

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"brsmn/internal/bsn"
	"brsmn/internal/fabric"
	"brsmn/internal/plancodec"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(rbn.Sequential, nil, nil))
	t.Cleanup(ts.Close)
	return ts
}

// rawEnvelope decodes any /v1 reply without committing to a data type.
type rawEnvelope struct {
	Data  json.RawMessage `json:"data"`
	Error *ErrorBody      `json:"error"`
}

// readEnvelope decodes resp's envelope, unmarshals data into out when
// non-nil, and returns the error half (nil on success replies).
func readEnvelope(t *testing.T, resp *http.Response, out any) *ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env rawEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("%s: body is not an envelope: %v\n%s", resp.Request.URL.Path, err, raw)
	}
	if out != nil && len(env.Data) > 0 && string(env.Data) != "null" {
		if err := json.Unmarshal(env.Data, out); err != nil {
			t.Fatalf("%s: data does not decode: %v", resp.Request.URL.Path, err)
		}
	}
	return env.Error
}

// doJSON performs method/url with an optional JSON body and decodes the
// envelope's data into out. It returns the status code.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var req *http.Request
	var err error
	if body != nil {
		raw, merr := json.Marshal(body)
		if merr != nil {
			t.Fatal(merr)
		}
		req, err = http.NewRequest(method, url, bytes.NewReader(raw))
	} else {
		req, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readEnvelope(t, resp, out)
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	return doJSON(t, "POST", url, body, out)
}

// TestRouteEndpoint routes the Fig. 2 example over HTTP.
func TestRouteEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out RouteResponse
	code := postJSON(t, ts.URL+"/v1/route", RouteRequest{
		N:     8,
		Dests: [][]int{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want := []int{0, 0, 3, 2, 2, 7, 7, 2}
	for i := range want {
		if out.Deliveries[i] != want[i] {
			t.Errorf("output %d: %d, want %d", i, out.Deliveries[i], want[i])
		}
	}
	if out.Splits != 4 { // fanout 8 from 4 sources -> 4 splits
		t.Errorf("splits = %d, want 4", out.Splits)
	}
}

// TestRouteEndpointErrors covers the failure statuses: structural junk
// is a uniform 400, semantically unroutable input is 422.
func TestRouteEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	if code := postJSON(t, ts.URL+"/v1/route", RouteRequest{N: 7, Dests: [][]int{{0}}}, nil); code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/route", RouteRequest{N: 4, Dests: [][]int{{0}, {0}}}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("overlap: status %d, want 422", code)
	}
	resp, err := http.Post(ts.URL+"/v1/route", "application/json", bytes.NewReader([]byte("{nonsense")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", resp.StatusCode)
	}
}

// TestScheduleEndpoint schedules a conflicted batch over HTTP.
func TestScheduleEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out ScheduleResponse
	code := postJSON(t, ts.URL+"/v1/schedule", map[string]any{
		"n": 8,
		"requests": []map[string]any{
			{"source": 0, "dests": []int{1, 2}},
			{"source": 3, "dests": []int{2, 4}},
		},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2 (output 2 conflicts)", len(out.Rounds))
	}
	r0 := out.RoundOf[0]
	if out.Rounds[r0][1] != 0 || out.Rounds[r0][2] != 0 {
		t.Errorf("request 0 not delivered in its round: %v", out.Rounds[r0])
	}
	r1 := out.RoundOf[1]
	if out.Rounds[r1][2] != 3 || out.Rounds[r1][4] != 3 {
		t.Errorf("request 1 not delivered in its round: %v", out.Rounds[r1])
	}
	if code := postJSON(t, ts.URL+"/v1/schedule", map[string]any{"n": 5}, nil); code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", code)
	}
}

// TestCostEndpoint fetches Table 2 rows.
func TestCostEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out CostResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/cost?n=64", nil, &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.N != 64 || len(out.Rows) != 4 {
		t.Fatalf("cost response %+v", out)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/cost?n=63", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", code)
	}
}

// TestSequenceEndpoint fetches the Fig. 9 golden sequence.
func TestSequenceEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out SequenceResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/sequence?n=8&dests=3,4,7", nil, &out); code != http.StatusOK {
		t.Fatalf("sequence status %d", code)
	}
	if out.Sequence != "α1αε011" {
		t.Errorf("sequence = %q", out.Sequence)
	}
	for _, bad := range []string{"/v1/sequence?n=8&dests=9", "/v1/sequence?n=x", "/v1/sequence?n=8&dests=a"} {
		if code := doJSON(t, "GET", ts.URL+bad, nil, nil); code == http.StatusOK {
			t.Errorf("%s: unexpectedly OK", bad)
		}
	}
}

// TestPlanEndpoint fetches a switch-column program and replays it
// locally.
func TestPlanEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out PlanResponse
	code := postJSON(t, ts.URL+"/v1/plan", RouteRequest{
		N:     8,
		Dests: [][]int{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	blob, err := base64.StdEncoding.DecodeString(out.Plan)
	if err != nil {
		t.Fatal(err)
	}
	n, cols, err := plancodec.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || len(cols) != out.Columns {
		t.Fatalf("decoded n=%d cols=%d, response says %d", n, len(cols), out.Columns)
	}
	a := workload.PaperFig2()
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	final, err := fabric.Run(cols, cells)
	if err != nil {
		t.Fatal(err)
	}
	for p, c := range final {
		want := out.Deliveries[p]
		got := -1
		if !c.IsIdle() {
			got = c.Source
		}
		if got != want {
			t.Fatalf("replay output %d = %d, response says %d", p, got, want)
		}
	}
	if code := postJSON(t, ts.URL+"/v1/plan", RouteRequest{N: 5}, nil); code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", code)
	}
}

// TestPipelineEndpoint streams a small batch over HTTP.
func TestPipelineEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out PipelineResponse
	code := postJSON(t, ts.URL+"/v1/pipeline", PipelineRequest{
		N:   8,
		Gap: 1,
		Batch: [][][]int{
			{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}},
			{{7}, {6}, nil, nil, nil, nil, nil, nil},
		},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Speedup <= 1 || len(out.Deliveries) != 2 {
		t.Fatalf("response %+v", out)
	}
	if out.Deliveries[0][7] != 2 || out.Deliveries[1][7] != 0 {
		t.Errorf("deliveries wrong: %v", out.Deliveries)
	}
	if code := postJSON(t, ts.URL+"/v1/pipeline", PipelineRequest{N: 8, Gap: 0}, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/pipeline", PipelineRequest{N: 8, Gap: 1, Batch: [][][]int{{{0}, {0}}}}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("bad assignment: status %d, want 422", code)
	}
}
