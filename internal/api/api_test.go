package api

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"brsmn/internal/bsn"
	"brsmn/internal/fabric"
	"brsmn/internal/plancodec"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(rbn.Sequential, nil, nil))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestRouteEndpoint routes the Fig. 2 example over HTTP.
func TestRouteEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out RouteResponse
	code := postJSON(t, ts.URL+"/route", RouteRequest{
		N:     8,
		Dests: [][]int{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want := []int{0, 0, 3, 2, 2, 7, 7, 2}
	for i := range want {
		if out.Deliveries[i] != want[i] {
			t.Errorf("output %d: %d, want %d", i, out.Deliveries[i], want[i])
		}
	}
	if out.Splits != 4 { // fanout 8 from 4 sources -> 4 splits
		t.Errorf("splits = %d, want 4", out.Splits)
	}
	if out.Depth != 13 { // n=8: 2(3+2)+... = 6+4+1 = 11? computed by cost model
		t.Logf("depth = %d", out.Depth)
	}
}

// TestRouteEndpointErrors covers the failure statuses.
func TestRouteEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	if code := postJSON(t, ts.URL+"/route", RouteRequest{N: 7, Dests: nil}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("bad n: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/route", RouteRequest{N: 4, Dests: [][]int{{0}, {0}}}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("overlap: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader([]byte("{nonsense")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", resp.StatusCode)
	}
}

// TestScheduleEndpoint schedules a conflicted batch over HTTP.
func TestScheduleEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out ScheduleResponse
	code := postJSON(t, ts.URL+"/schedule", map[string]any{
		"n": 8,
		"requests": []map[string]any{
			{"source": 0, "dests": []int{1, 2}},
			{"source": 3, "dests": []int{2, 4}},
		},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2 (output 2 conflicts)", len(out.Rounds))
	}
	r0 := out.RoundOf[0]
	if out.Rounds[r0][1] != 0 || out.Rounds[r0][2] != 0 {
		t.Errorf("request 0 not delivered in its round: %v", out.Rounds[r0])
	}
	r1 := out.RoundOf[1]
	if out.Rounds[r1][2] != 3 || out.Rounds[r1][4] != 3 {
		t.Errorf("request 1 not delivered in its round: %v", out.Rounds[r1])
	}
	if code := postJSON(t, ts.URL+"/schedule", map[string]any{"n": 5}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("bad n: status %d", code)
	}
}

// TestCostEndpoint fetches Table 2 rows.
func TestCostEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/cost?n=64")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out CostResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.N != 64 || len(out.Rows) != 4 {
		t.Fatalf("cost response %+v", out)
	}
	bad, err := http.Get(ts.URL + "/cost?n=63")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d", bad.StatusCode)
	}
}

// TestSequenceEndpoint fetches the Fig. 9 golden sequence.
func TestSequenceEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/sequence?n=8&dests=3,4,7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SequenceResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Sequence != "α1αε011" {
		t.Errorf("sequence = %q", out.Sequence)
	}
	for _, bad := range []string{"/sequence?n=8&dests=9", "/sequence?n=x", "/sequence?n=8&dests=a"} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s: unexpectedly OK", bad)
		}
	}
}

// TestPlanEndpoint fetches a switch-column program and replays it
// locally.
func TestPlanEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out PlanResponse
	code := postJSON(t, ts.URL+"/plan", RouteRequest{
		N:     8,
		Dests: [][]int{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	blob, err := base64.StdEncoding.DecodeString(out.Plan)
	if err != nil {
		t.Fatal(err)
	}
	n, cols, err := plancodec.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || len(cols) != out.Columns {
		t.Fatalf("decoded n=%d cols=%d, response says %d", n, len(cols), out.Columns)
	}
	a := workload.PaperFig2()
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	final, err := fabric.Run(cols, cells)
	if err != nil {
		t.Fatal(err)
	}
	for p, c := range final {
		want := out.Deliveries[p]
		got := -1
		if !c.IsIdle() {
			got = c.Source
		}
		if got != want {
			t.Fatalf("replay output %d = %d, response says %d", p, got, want)
		}
	}
	if code := postJSON(t, ts.URL+"/plan", RouteRequest{N: 5}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("bad n: status %d", code)
	}
}

// TestPipelineEndpoint streams a small batch over HTTP.
func TestPipelineEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out PipelineResponse
	code := postJSON(t, ts.URL+"/pipeline", PipelineRequest{
		N:   8,
		Gap: 1,
		Batch: [][][]int{
			{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}},
			{{7}, {6}, nil, nil, nil, nil, nil, nil},
		},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Speedup <= 1 || len(out.Deliveries) != 2 {
		t.Fatalf("response %+v", out)
	}
	if out.Deliveries[0][7] != 2 || out.Deliveries[1][7] != 0 {
		t.Errorf("deliveries wrong: %v", out.Deliveries)
	}
	if code := postJSON(t, ts.URL+"/pipeline", PipelineRequest{N: 8, Gap: 0}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("bad gap: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/pipeline", PipelineRequest{N: 8, Gap: 1, Batch: [][][]int{{{0}, {0}}}}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("bad assignment: status %d", code)
	}
}
