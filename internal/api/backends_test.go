package api

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"brsmn/internal/groupd"
	"brsmn/internal/rbn"
)

// TestBackendsEndpoint checks the backend catalogue: every tier with
// its patch capability and cost row, plus the effective selector
// thresholds.
func TestBackendsEndpoint(t *testing.T) {
	ts := newGroupServer(t)

	var got BackendsResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/backends", nil, &got); code != http.StatusOK {
		t.Fatalf("GET /v1/backends = %d", code)
	}
	if got.N != 16 {
		t.Errorf("n = %d, want 16", got.N)
	}
	if len(got.Backends) != 3 {
		t.Fatalf("got %d backends, want 3", len(got.Backends))
	}
	byName := map[string]BackendInfo{}
	for _, b := range got.Backends {
		byName[b.Name] = b
		if b.Cost.Switches <= 0 || b.Cost.Depth <= 0 {
			t.Errorf("backend %s cost row empty: %+v", b.Name, b.Cost)
		}
	}
	if !byName["brsmn"].Patch {
		t.Error("brsmn not reported patch-capable")
	}
	if byName["feedback"].Patch || byName["permnet"].Patch {
		t.Error("feedback/permnet reported patch-capable")
	}
	if got.Selector.Hysteresis <= 0 {
		t.Errorf("selector thresholds not populated: %+v", got.Selector)
	}

	// Without a group manager the endpoint degrades like the rest of the
	// group surface: 503.
	bare := httptest.NewServer(NewServer(rbn.Sequential, nil, nil))
	defer bare.Close()
	if code := doJSON(t, "GET", bare.URL+"/v1/backends", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("GET /v1/backends without groups = %d, want 503", code)
	}
}

// TestGroupBackendHTTP drives the repin endpoint and the backend field
// on create, including validation failures.
func TestGroupBackendHTTP(t *testing.T) {
	ts := newGroupServer(t)

	var info groupd.GroupInfo
	code := doJSON(t, "POST", ts.URL+"/v1/groups",
		CreateGroupRequest{ID: "conf", Source: 2, Members: []int{3, 4, 7}, Backend: "feedback"}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if info.Backend != "feedback" || info.BackendPref != "feedback" {
		t.Fatalf("created on %s/%s, want feedback/feedback", info.Backend, info.BackendPref)
	}

	var plan GroupPlanResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/groups/conf/plan", nil, &plan); code != http.StatusOK {
		t.Fatalf("plan = %d", code)
	}
	if plan.Backend != "feedback" {
		t.Errorf("plan backend %q, want feedback", plan.Backend)
	}
	if plan.Passes < 1 {
		t.Errorf("plan passes %d", plan.Passes)
	}
	if plan.Cost == nil || plan.Cost.Switches <= 0 {
		t.Errorf("plan cost missing: %+v", plan.Cost)
	}

	// Repin to brsmn and observe the plan envelope follow.
	if code := doJSON(t, "POST", ts.URL+"/v1/groups/conf/backend",
		SetBackendRequest{Backend: "brsmn"}, &info); code != http.StatusOK {
		t.Fatalf("repin = %d", code)
	}
	if info.Backend != "brsmn" {
		t.Errorf("after repin backend %q", info.Backend)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/groups/conf/plan", nil, &plan); code != http.StatusOK {
		t.Fatal("plan after repin failed")
	}
	if plan.Backend != "brsmn" || plan.Passes != 1 {
		t.Errorf("plan after repin: backend %q passes %d, want brsmn/1", plan.Backend, plan.Passes)
	}

	// Validation: unknown tier is a field error on both surfaces.
	if code := doJSON(t, "POST", ts.URL+"/v1/groups",
		CreateGroupRequest{ID: "bad", Source: 0, Backend: "quantum"}, nil); code != http.StatusBadRequest {
		t.Errorf("create with bad backend = %d, want 400", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/groups/conf/backend",
		SetBackendRequest{Backend: "quantum"}, nil); code != http.StatusBadRequest {
		t.Errorf("repin with bad backend = %d, want 400", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/groups/nope/backend",
		SetBackendRequest{Backend: "brsmn"}, nil); code != http.StatusNotFound {
		t.Errorf("repin on missing group = %d, want 404", code)
	}
}
