package api

// Shared request decoding and validation. Every /v1 handler with a body
// funnels through decode, so malformed JSON and invalid fields produce
// the same 400 envelope: code "bad_request" with per-field
// {field, reason} entries — never an ad-hoc string.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// validator is the request-side contract: structural checks that gate a
// handler before any engine work, reported per field.
type validator interface {
	validate() []FieldError
}

// decode unmarshals r's body into dst and runs its validation. On
// failure it writes the uniform 400 envelope and returns false. An
// empty body decodes as the zero value, so validate decides which
// fields are required.
func decode(w http.ResponseWriter, r *http.Request, dst validator) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "request body is not valid JSON",
			FieldError{Field: "body", Reason: err.Error()})
		return false
	}
	if fields := dst.validate(); len(fields) > 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid request", fields...)
		return false
	}
	return true
}

// queryInt parses an optional non-negative integer query parameter,
// collecting a FieldError on failure.
func queryInt(q url.Values, name string, def int, fields *[]FieldError) int {
	raw := q.Get(name)
	if raw == "" {
		return def
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		*fields = append(*fields, FieldError{Field: name, Reason: "must be a non-negative integer"})
		return def
	}
	return v
}
