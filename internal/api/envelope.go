package api

// The /v1 response envelope. Every JSON endpoint replies
//
//	{"data": <payload>, "error": null}        on success
//	{"data": null, "error": {"code", "message", "fields"}} on failure
//
// so clients branch on one shape. Error codes are machine-readable and
// stable; messages are for humans and may change.

import (
	"encoding/json"
	"net/http"
)

// Envelope is the uniform /v1 response shape. Both keys are always
// present (Data is JSON null on errors, Error null on success).
type Envelope struct {
	Data  any        `json:"data"`
	Error *ErrorBody `json:"error"`
}

// ErrorBody is the envelope's error half.
type ErrorBody struct {
	// Code is one of the Code* constants — the machine-readable branch
	// key.
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Fields pinpoints request-validation failures per field.
	Fields []FieldError `json:"fields,omitempty"`
}

// FieldError names one invalid request field — the uniform 400 shape
// shared by every /v1 handler.
type FieldError struct {
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

// Stable machine-readable error codes.
const (
	CodeBadRequest       = "bad_request"        // 400: malformed body or parameters
	CodeInvalidArgument  = "invalid_argument"   // 422: well-formed but semantically unroutable
	CodeNotFound         = "not_found"          // 404
	CodeMethodNotAllowed = "method_not_allowed" // 405
	CodeConflict         = "conflict"           // 409
	CodeOverloaded       = "overloaded"         // 429: admission queue shed the request
	CodeCanceled         = "canceled"           // 499: client went away mid-admission
	CodeUnavailable      = "unavailable"        // 503: subsystem disabled or shutting down
	CodeInternal         = "internal"           // 500
)

// StatusClientClosedRequest is nginx's 499 — the client's context ended
// while the operation was queued, so no result was delivered.
const StatusClientClosedRequest = 499

// codeForStatus maps an HTTP status onto its default error code.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusConflict:
		return CodeConflict
	case http.StatusUnprocessableEntity:
		return CodeInvalidArgument
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case StatusClientClosedRequest:
		return CodeCanceled
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// WriteData writes a success envelope — exported for the cluster tier
// (internal/cluster), whose membership/drain endpoints live in front of
// this mux but must answer in the same shape.
func WriteData(w http.ResponseWriter, status int, v any) { writeData(w, status, v) }

// WriteError writes an error envelope with an explicit code; the
// exported counterpart of writeError for the cluster tier.
func WriteError(w http.ResponseWriter, status int, code, message string, fields ...FieldError) {
	writeError(w, status, code, message, fields...)
}

// writeData writes a success envelope.
func writeData(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(Envelope{Data: v}); err != nil {
		// Headers are gone; nothing else to do but note it.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError writes an error envelope with an explicit code.
func writeError(w http.ResponseWriter, status int, code, message string, fields ...FieldError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(Envelope{Error: &ErrorBody{Code: code, Message: message, Fields: fields}})
}

// httpError writes an error envelope deriving the code from the status
// — the migration shim for handlers that only have an error value.
func httpError(w http.ResponseWriter, status int, err error) {
	writeError(w, status, codeForStatus(status), err.Error())
}
