package api

// Fault-management endpoints, backed by the faultd.Monitor when the
// server is constructed with one:
//
//	GET    /faults         -> {"faults":[…]} — the armed fault set
//	POST   /faults         {"spec":"stuck:3:1:cross"} or {"faults":[…]} -> the updated set
//	DELETE /faults         -> {"cleared":k}
//	GET    /faults/report  -> full fault-management state (stats, candidates, quarantine)
//	POST   /probe          -> run a probe round now, return its report
//
// Without a monitor these endpoints answer 503, mirroring the group
// endpoints without a manager.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"brsmn/internal/faultd"
)

func (s *Server) withFaults(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.fm == nil {
			httpError(w, http.StatusServiceUnavailable, errors.New("api: fault monitor not enabled"))
			return
		}
		h(w, r)
	}
}

// FaultsResponse is the GET /faults (and POST /faults) reply.
type FaultsResponse struct {
	Faults []faultd.Fault `json:"faults"`
}

func (s *Server) handleFaultsGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, FaultsResponse{Faults: s.fm.Injector().List()})
}

// InjectFaultsRequest is the POST /faults payload: structured faults,
// the flag-style spec string, or both.
type InjectFaultsRequest struct {
	Faults []faultd.Fault `json:"faults"`
	Spec   string         `json:"spec"`
}

func (s *Server) handleFaultsPost(w http.ResponseWriter, r *http.Request) {
	var req InjectFaultsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON: %w", err))
		return
	}
	faults := req.Faults
	if req.Spec != "" {
		parsed, err := faultd.ParseSpec(req.Spec)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		faults = append(faults, parsed...)
	}
	if len(faults) == 0 {
		httpError(w, http.StatusUnprocessableEntity, errors.New("api: no faults in request"))
		return
	}
	for _, f := range faults {
		if err := f.Validate(s.fm.N(), s.fm.Depth()); err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	inj := s.fm.Injector()
	for _, f := range faults {
		inj.Add(f)
	}
	writeJSON(w, FaultsResponse{Faults: inj.List()})
}

func (s *Server) handleFaultsDelete(w http.ResponseWriter, r *http.Request) {
	inj := s.fm.Injector()
	k := len(inj.List())
	inj.Clear()
	writeJSON(w, map[string]int{"cleared": k})
}

func (s *Server) handleFaultsReport(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.fm.Report())
}

func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	rep, err := s.fm.RunProbes()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, rep)
}
