package api

// Fault-management endpoints, backed by one faultd.Monitor per serving
// shard (or a single monitor when unsharded):
//
//	GET    /v1/faults          -> the armed fault set
//	POST   /v1/faults          {"spec":"stuck:3:1:cross"} or {"faults":[…]} -> the updated set
//	DELETE /v1/faults          -> {"cleared":k}
//	GET    /v1/faults/report   -> full fault-management state (stats, candidates, quarantine)
//	POST   /v1/probe           -> run a probe round now, return its report
//
// When the server fronts several monitors (WithShards), the ?shard=k
// query parameter selects the fabric; it defaults to shard 0. Without
// any monitor these endpoints answer 503, mirroring the group endpoints
// without a backend.

import (
	"fmt"
	"net/http"

	"brsmn/internal/faultd"
)

func (s *Server) withFaults(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.defaultMonitor() == nil {
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "api: fault monitor not enabled")
			return
		}
		h(w, r)
	}
}

// defaultMonitor is the monitor fault requests address without an
// explicit ?shard: the single unsharded monitor, or shard 0's.
func (s *Server) defaultMonitor() *faultd.Monitor {
	if s.fm != nil {
		return s.fm
	}
	if len(s.monitors) > 0 {
		return s.monitors[0]
	}
	return nil
}

// monitorFor resolves the ?shard=k selector. With a single monitor any
// explicit non-zero selector is rejected, so clients can't silently
// address a fabric that isn't there.
func (s *Server) monitorFor(w http.ResponseWriter, r *http.Request) *faultd.Monitor {
	q := r.URL.Query()
	var fields []FieldError
	k := queryInt(q, "shard", 0, &fields)
	if len(fields) > 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid request", fields...)
		return nil
	}
	if len(s.monitors) > 0 {
		if k >= len(s.monitors) {
			writeError(w, http.StatusNotFound, CodeNotFound,
				fmt.Sprintf("api: no shard %d (have %d)", k, len(s.monitors)))
			return nil
		}
		return s.monitors[k]
	}
	if k != 0 {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("api: no shard %d on an unsharded server", k))
		return nil
	}
	return s.fm
}

// FaultsResponse is the GET /v1/faults (and POST /v1/faults) reply.
type FaultsResponse struct {
	Faults []faultd.Fault `json:"faults"`
}

func (s *Server) handleFaultsGet(w http.ResponseWriter, r *http.Request) {
	fm := s.monitorFor(w, r)
	if fm == nil {
		return
	}
	writeData(w, http.StatusOK, FaultsResponse{Faults: fm.Injector().List()})
}

// InjectFaultsRequest is the POST /v1/faults payload: structured faults,
// the flag-style spec string, or both.
type InjectFaultsRequest struct {
	Faults []faultd.Fault `json:"faults"`
	Spec   string         `json:"spec"`
}

func (r *InjectFaultsRequest) validate() (fields []FieldError) {
	if len(r.Faults) == 0 && r.Spec == "" {
		fields = append(fields, FieldError{Field: "faults", Reason: "required: faults or spec"})
	}
	return fields
}

func (s *Server) handleFaultsPost(w http.ResponseWriter, r *http.Request) {
	fm := s.monitorFor(w, r)
	if fm == nil {
		return
	}
	var req InjectFaultsRequest
	if !decode(w, r, &req) {
		return
	}
	faults := req.Faults
	if req.Spec != "" {
		parsed, err := faultd.ParseSpec(req.Spec)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		faults = append(faults, parsed...)
	}
	for _, f := range faults {
		if err := f.Validate(fm.N(), fm.Depth()); err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	inj := fm.Injector()
	for _, f := range faults {
		inj.Add(f)
	}
	writeData(w, http.StatusOK, FaultsResponse{Faults: inj.List()})
}

func (s *Server) handleFaultsDelete(w http.ResponseWriter, r *http.Request) {
	fm := s.monitorFor(w, r)
	if fm == nil {
		return
	}
	inj := fm.Injector()
	k := len(inj.List())
	inj.Clear()
	writeData(w, http.StatusOK, map[string]int{"cleared": k})
}

func (s *Server) handleFaultsReport(w http.ResponseWriter, r *http.Request) {
	fm := s.monitorFor(w, r)
	if fm == nil {
		return
	}
	writeData(w, http.StatusOK, fm.Report())
}

func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	fm := s.monitorFor(w, r)
	if fm == nil {
		return
	}
	rep, err := fm.RunProbes()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeData(w, http.StatusOK, rep)
}
