package api

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"brsmn/internal/faultd"
	"brsmn/internal/groupd"
	"brsmn/internal/rbn"
	"brsmn/internal/swbox"
)

// newFaultServer spins up a server with a 16-port group manager and a
// fault monitor wired in as its policy, manual-epoch mode.
func newFaultServer(t *testing.T) (*httptest.Server, *faultd.Monitor) {
	t.Helper()
	inj := faultd.NewInjector(1)
	fm, err := faultd.NewMonitor(faultd.Config{N: 16, Engine: rbn.Sequential, ProbeCount: 4}, inj)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := groupd.NewManager(groupd.Config{N: 16, Engine: rbn.Sequential, Policy: fm})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gm.Close() })
	ts := httptest.NewServer(NewServer(rbn.Sequential, gm, fm))
	t.Cleanup(ts.Close)
	return ts, fm
}

// TestFaultLifecycleHTTP arms a fault over the wire, probes, and reads
// the detection back out of the report and health endpoints.
func TestFaultLifecycleHTTP(t *testing.T) {
	ts, _ := newFaultServer(t)

	var fl FaultsResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/faults", nil, &fl); code != http.StatusOK || len(fl.Faults) != 0 {
		t.Fatalf("fresh fault list: code %d, %+v", code, fl)
	}

	var probe faultd.ProbeReport
	if code := doJSON(t, "POST", ts.URL+"/v1/probe", nil, &probe); code != http.StatusOK {
		t.Fatalf("probe = %d", code)
	}
	if probe.Detected || probe.Probes != 4 {
		t.Fatalf("clean probe round: %+v", probe)
	}

	// One of the two unicast stuck values must disagree with some
	// probe's plan at this switch.
	detected := false
	for _, spec := range []string{"stuck:3:2:parallel", "stuck:3:2:cross"} {
		if code := doJSON(t, "DELETE", ts.URL+"/v1/faults", nil, nil); code != http.StatusOK {
			t.Fatalf("clear = %d", code)
		}
		if code := doJSON(t, "POST", ts.URL+"/v1/faults", InjectFaultsRequest{Spec: spec}, &fl); code != http.StatusOK {
			t.Fatalf("inject %q = %d", spec, code)
		}
		if len(fl.Faults) != 1 || fl.Faults[0].Col != 3 || fl.Faults[0].Switch != 2 {
			t.Fatalf("armed set after %q: %+v", spec, fl.Faults)
		}
		if code := doJSON(t, "POST", ts.URL+"/v1/probe", nil, &probe); code != http.StatusOK {
			t.Fatalf("probe = %d", code)
		}
		if probe.Detected {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("no stuck value of (col 3, switch 2) was detected over the wire")
	}

	var rep faultd.Report
	if code := doJSON(t, "GET", ts.URL+"/v1/faults/report", nil, &rep); code != http.StatusOK {
		t.Fatal("report not served")
	}
	if !rep.Stats.Detected || len(rep.Candidates) == 0 || len(rep.Faults) != 1 {
		t.Fatalf("report after detection: %+v", rep)
	}

	var health HealthResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/healthz", nil, &health); code != http.StatusOK {
		t.Fatal("healthz not served")
	}
	if health.Faults == nil || !health.Faults.Detected || health.Faults.ProbeRounds == 0 {
		t.Fatalf("healthz fault stats: %+v", health.Faults)
	}
}

func TestFaultEndpointsValidate(t *testing.T) {
	ts, fm := newFaultServer(t)
	// Empty request: structurally invalid, uniform 400.
	if code := doJSON(t, "POST", ts.URL+"/v1/faults", InjectFaultsRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty inject = %d, want 400", code)
	}
	// Well-formed but semantically impossible faults: 422.
	for _, req := range []InjectFaultsRequest{
		{Spec: "stuck:999:0:cross"}, // column out of range
		{Faults: []faultd.Fault{{Kind: faultd.StuckAt, Col: 0, Switch: 99, Stuck: swbox.Cross}}},
	} {
		if code := doJSON(t, "POST", ts.URL+"/v1/faults", req, nil); code != http.StatusUnprocessableEntity {
			t.Fatalf("inject %+v = %d, want 422", req, code)
		}
	}
	if fm.Injector().Active() {
		t.Fatal("rejected requests armed faults")
	}
	// The ?shard selector on an unsharded server: 0 is the monitor,
	// anything else does not exist.
	if code := doJSON(t, "GET", ts.URL+"/v1/faults?shard=0", nil, nil); code != http.StatusOK {
		t.Fatalf("shard=0 = %d, want 200", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/faults?shard=1", nil, nil); code != http.StatusNotFound {
		t.Fatalf("shard=1 = %d, want 404", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/faults?shard=zebra", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("shard=zebra = %d, want 400", code)
	}
}

func TestFaultEndpointsDisabledWithoutMonitor(t *testing.T) {
	ts := httptest.NewServer(NewServer(rbn.Sequential, nil, nil))
	t.Cleanup(ts.Close)
	for _, ep := range []struct{ method, path string }{
		{"GET", "/v1/faults"}, {"POST", "/v1/faults"}, {"DELETE", "/v1/faults"},
		{"GET", "/v1/faults/report"}, {"POST", "/v1/probe"},
	} {
		if code := doJSON(t, ep.method, ts.URL+ep.path, nil, nil); code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s = %d, want 503", ep.method, ep.path, code)
		}
	}
}
