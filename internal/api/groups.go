package api

// Stateful group endpoints, backed by the groupd.Manager when the server
// is constructed with one:
//
//	POST   /groups              {"id":"conf","source":2,"members":[3,4,7]} -> group state
//	GET    /groups              -> {"count":…,"groups":[…]}
//	GET    /groups/{id}         -> {"id","source","gen","size","members","sequence"}
//	POST   /groups/{id}/join    {"dest":9}  -> {"id","gen","size"}
//	POST   /groups/{id}/leave   {"dest":9}  -> {"id","gen","size"}
//	DELETE /groups/{id}         -> {"deleted":"conf"}
//	GET    /groups/{id}/plan    -> the cached/recomputed column program
//	GET    /epoch               -> the last epoch report
//	POST   /epoch               -> run an epoch now, return its report
//	GET    /healthz             -> liveness + registered group count
//
// Without a manager the group endpoints answer 503; /healthz always
// answers 200 so a stateless deployment stays load-balancer-ready.

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"brsmn/internal/faultd"
	"brsmn/internal/groupd"
)

func (s *Server) withGroups(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.gm == nil {
			httpError(w, http.StatusServiceUnavailable, errors.New("api: group manager not enabled"))
			return
		}
		h(w, r)
	}
}

// groupErr maps groupd sentinel errors onto HTTP statuses.
func groupErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, groupd.ErrNotFound):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, groupd.ErrExists):
		httpError(w, http.StatusConflict, err)
	case errors.Is(err, groupd.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
	default:
		httpError(w, http.StatusUnprocessableEntity, err)
	}
}

// CreateGroupRequest is the POST /groups payload.
type CreateGroupRequest struct {
	// ID is optional; empty auto-assigns one.
	ID      string `json:"id"`
	Source  int    `json:"source"`
	Members []int  `json:"members"`
}

func (s *Server) handleGroupCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateGroupRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON: %w", err))
		return
	}
	info, err := s.gm.Create(req.ID, req.Source, req.Members)
	if err != nil {
		groupErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(info)
}

// GroupListResponse is the GET /groups reply.
type GroupListResponse struct {
	Count  int                `json:"count"`
	Groups []groupd.GroupInfo `json:"groups"`
}

func (s *Server) handleGroupList(w http.ResponseWriter, r *http.Request) {
	list := s.gm.List()
	writeJSON(w, GroupListResponse{Count: len(list), Groups: list})
}

func (s *Server) handleGroupGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.gm.Get(r.PathValue("id"))
	if err != nil {
		groupErr(w, err)
		return
	}
	writeJSON(w, info)
}

// MembershipRequest is the join/leave payload.
type MembershipRequest struct {
	Dest int `json:"dest"`
}

func (s *Server) handleGroupJoin(w http.ResponseWriter, r *http.Request) {
	s.handleMembership(w, r, s.gm.Join)
}

func (s *Server) handleGroupLeave(w http.ResponseWriter, r *http.Request) {
	s.handleMembership(w, r, s.gm.Leave)
}

func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request, op func(string, int) (groupd.Update, error)) {
	var req MembershipRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON: %w", err))
		return
	}
	u, err := op(r.PathValue("id"), req.Dest)
	if err != nil {
		groupErr(w, err)
		return
	}
	writeJSON(w, u)
}

func (s *Server) handleGroupDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.gm.Delete(id); err != nil {
		groupErr(w, err)
		return
	}
	writeJSON(w, map[string]string{"deleted": id})
}

// GroupPlanResponse is the GET /groups/{id}/plan reply.
type GroupPlanResponse struct {
	ID      string `json:"id"`
	Gen     uint64 `json:"gen"`
	Cached  bool   `json:"cached"`
	Columns int    `json:"columns"`
	Plan    string `json:"plan"` // base64(plancodec)
}

func (s *Server) handleGroupPlan(w http.ResponseWriter, r *http.Request) {
	p, err := s.gm.Plan(r.PathValue("id"))
	if err != nil {
		groupErr(w, err)
		return
	}
	writeJSON(w, GroupPlanResponse{
		ID:      p.ID,
		Gen:     p.Gen,
		Cached:  p.Cached,
		Columns: p.Columns,
		Plan:    base64.StdEncoding.EncodeToString(p.Blob),
	})
}

func (s *Server) handleEpochGet(w http.ResponseWriter, r *http.Request) {
	rep := s.gm.LastEpoch()
	if rep == nil {
		rep = &groupd.EpochReport{}
	}
	writeJSON(w, rep)
}

func (s *Server) handleEpochRun(w http.ResponseWriter, r *http.Request) {
	rep, err := s.gm.RunEpoch()
	if err != nil {
		groupErr(w, err)
		return
	}
	writeJSON(w, rep)
}

// HealthResponse is the GET /healthz reply.
type HealthResponse struct {
	Status  string `json:"status"`
	Groups  int    `json:"groups"`
	Epoch   int64  `json:"epoch"`
	Pending int64  `json:"pending"`
	// Faults carries the fault-management counters when the monitor is
	// enabled.
	Faults *faultd.Stats `json:"faults,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok"}
	if s.gm != nil {
		resp.Groups = s.gm.Count()
		resp.Epoch = s.gm.Epoch()
		resp.Pending = s.gm.Pending()
	}
	if s.fm != nil {
		st := s.fm.Stats()
		resp.Faults = &st
	}
	writeJSON(w, resp)
}
