package api

// Stateful group endpoints, backed by any Groups implementation — a
// single *groupd.Manager, or the sharded *shard.Set:
//
//	POST   /v1/groups              {"id":"conf","source":2,"members":[3,4,7],"backend":"auto"} -> group state
//	GET    /v1/groups              -> {"count","offset","groups"} (paginated, Link headers)
//	GET    /v1/groups/{id}         -> {"id","source","gen","size","members","sequence","backend","backendPref"}
//	POST   /v1/groups/{id}/join    {"dest":9}  -> {"id","gen","size"}
//	POST   /v1/groups/{id}/leave   {"dest":9}  -> {"id","gen","size"}
//	POST   /v1/groups/{id}/backend {"backend":"feedback"} -> group state
//	DELETE /v1/groups/{id}         -> {"deleted":"conf"}
//	GET    /v1/groups/{id}/plan    -> the cached/recomputed column program
//	GET    /v1/backends            -> the planner tiers: capabilities, cost rows, selector policy
//	GET    /v1/epoch               -> the last epoch report
//	POST   /v1/epoch               -> run an epoch now, return its report
//	GET    /v1/healthz             -> liveness + group/shard/fault summary
//
// Without a backend the group endpoints answer 503; /v1/healthz always
// answers 200 so a stateless deployment stays load-balancer-ready.

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"

	"brsmn/internal/backend"
	"brsmn/internal/cost"
	"brsmn/internal/faultd"
	"brsmn/internal/groupd"
	"brsmn/internal/shard"
)

// Groups is the group-serving backend contract: the intersection of
// *groupd.Manager (one fabric) and *shard.Set (K fabrics behind batched
// admission) the HTTP layer needs. Both satisfy it.
type Groups interface {
	N() int
	Create(id string, source int, members []int) (groupd.GroupInfo, error)
	CreateWithBackend(id string, source int, members []int, pref backend.Tier) (groupd.GroupInfo, error)
	SetBackend(id string, pref backend.Tier) (groupd.GroupInfo, error)
	Backends() map[backend.Tier]backend.Backend
	SelectorConfig() backend.SelectorConfig
	Join(id string, d int) (groupd.Update, error)
	Leave(id string, d int) (groupd.Update, error)
	Delete(id string) error
	Get(id string) (groupd.GroupInfo, error)
	List() []groupd.GroupInfo
	Count() int
	Plan(id string) (groupd.PlanInfo, error)
	Epoch() int64
	Pending() int64
	CacheStats() groupd.CacheStats
	RunEpoch() (*groupd.EpochReport, error)
	LastEpoch() *groupd.EpochReport
}

var (
	_ Groups = (*groupd.Manager)(nil)
	_ Groups = (*shard.Set)(nil)
)

// ctxGroups is the cancellation-aware facet of a Groups backend
// (implemented by *shard.Set): mutations and plans honor the request
// context, so a disconnected client frees its admission slot instead of
// pinning the handler for the full queue+batch latency. Backends
// without it (the single-fabric manager, which admits inline) fall back
// to the plain calls.
type ctxGroups interface {
	CreateContext(ctx context.Context, id string, source int, members []int) (groupd.GroupInfo, error)
	CreateWithBackendContext(ctx context.Context, id string, source int, members []int, pref backend.Tier) (groupd.GroupInfo, error)
	SetBackendContext(ctx context.Context, id string, pref backend.Tier) (groupd.GroupInfo, error)
	JoinContext(ctx context.Context, id string, d int) (groupd.Update, error)
	LeaveContext(ctx context.Context, id string, d int) (groupd.Update, error)
	DeleteContext(ctx context.Context, id string) error
	PlanContext(ctx context.Context, id string) (groupd.PlanInfo, error)
}

var _ ctxGroups = (*shard.Set)(nil)

func (s *Server) doCreate(r *http.Request, id string, source int, members []int) (groupd.GroupInfo, error) {
	if cg, ok := s.groups.(ctxGroups); ok {
		return cg.CreateContext(r.Context(), id, source, members)
	}
	return s.groups.Create(id, source, members)
}

func (s *Server) doCreateWithBackend(r *http.Request, id string, source int, members []int, pref backend.Tier) (groupd.GroupInfo, error) {
	if cg, ok := s.groups.(ctxGroups); ok {
		return cg.CreateWithBackendContext(r.Context(), id, source, members, pref)
	}
	return s.groups.CreateWithBackend(id, source, members, pref)
}

func (s *Server) doSetBackend(r *http.Request, id string, pref backend.Tier) (groupd.GroupInfo, error) {
	if cg, ok := s.groups.(ctxGroups); ok {
		return cg.SetBackendContext(r.Context(), id, pref)
	}
	return s.groups.SetBackend(id, pref)
}

func (s *Server) doJoin(r *http.Request, id string, d int) (groupd.Update, error) {
	if cg, ok := s.groups.(ctxGroups); ok {
		return cg.JoinContext(r.Context(), id, d)
	}
	return s.groups.Join(id, d)
}

func (s *Server) doLeave(r *http.Request, id string, d int) (groupd.Update, error) {
	if cg, ok := s.groups.(ctxGroups); ok {
		return cg.LeaveContext(r.Context(), id, d)
	}
	return s.groups.Leave(id, d)
}

func (s *Server) doDelete(r *http.Request, id string) error {
	if cg, ok := s.groups.(ctxGroups); ok {
		return cg.DeleteContext(r.Context(), id)
	}
	return s.groups.Delete(id)
}

func (s *Server) doPlan(r *http.Request, id string) (groupd.PlanInfo, error) {
	if cg, ok := s.groups.(ctxGroups); ok {
		return cg.PlanContext(r.Context(), id)
	}
	return s.groups.Plan(id)
}

func (s *Server) withGroups(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.groups == nil {
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "api: group backend not enabled")
			return
		}
		h(w, r)
	}
}

// groupErrStatus maps backend sentinel errors onto statuses: groupd's
// registry errors plus shard's admission, placement, and ticket errors.
func groupErrStatus(err error) int {
	switch {
	case errors.Is(err, groupd.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, groupd.ErrExists):
		return http.StatusConflict
	case errors.Is(err, groupd.ErrClosed), errors.Is(err, shard.ErrClosed), errors.Is(err, shard.ErrNoLiveShard):
		return http.StatusServiceUnavailable
	case errors.Is(err, shard.ErrOverloaded), errors.Is(err, shard.ErrTicketLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client's context ended while the operation was queued; the
		// slot was freed and nothing counted as admitted.
		return StatusClientClosedRequest
	case errors.Is(err, groupd.ErrStore):
		// The mutation was rolled back; the durable store itself broke.
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// groupErr writes the envelope for a backend error.
func groupErr(w http.ResponseWriter, err error) {
	httpError(w, groupErrStatus(err), err)
}

// CreateGroupRequest is the POST /v1/groups payload.
type CreateGroupRequest struct {
	// ID is optional; empty auto-assigns one.
	ID      string `json:"id"`
	Source  int    `json:"source"`
	Members []int  `json:"members"`
	// Backend is the optional planner-tier preference: "auto", "brsmn",
	// "feedback", or "permnet". Empty defers to the server's configured
	// default.
	Backend string `json:"backend,omitempty"`
}

func (r *CreateGroupRequest) validate() (fields []FieldError) {
	if r.Source < 0 {
		fields = append(fields, FieldError{Field: "source", Reason: "must be a non-negative input port"})
	}
	for _, m := range r.Members {
		if m < 0 {
			fields = append(fields, FieldError{Field: "members", Reason: fmt.Sprintf("output %d is negative", m)})
			break
		}
	}
	if r.Backend != "" {
		if _, err := backend.ParseTier(r.Backend); err != nil {
			fields = append(fields, FieldError{Field: "backend", Reason: `must be "auto", "brsmn", "feedback", or "permnet"`})
		}
	}
	return fields
}

func (s *Server) handleGroupCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateGroupRequest
	if !decode(w, r, &req) {
		return
	}
	if asyncRequested(r) {
		s.submitAsync(w, func(set *shard.Set) (*shard.Ticket, error) {
			if req.Backend != "" {
				pref, _ := backend.ParseTier(req.Backend)
				return set.SubmitCreateWithBackend(req.ID, req.Source, req.Members, pref)
			}
			return set.SubmitCreate(req.ID, req.Source, req.Members)
		})
		return
	}
	var (
		info groupd.GroupInfo
		err  error
	)
	if req.Backend != "" {
		pref, _ := backend.ParseTier(req.Backend)
		info, err = s.doCreateWithBackend(r, req.ID, req.Source, req.Members, pref)
	} else {
		info, err = s.doCreate(r, req.ID, req.Source, req.Members)
	}
	if err != nil {
		groupErr(w, err)
		return
	}
	writeData(w, http.StatusCreated, info)
}

// GroupListResponse is the GET /v1/groups reply. Count is the total
// registered groups; Groups is the requested window of them.
type GroupListResponse struct {
	Count  int                `json:"count"`
	Offset int                `json:"offset"`
	Groups []groupd.GroupInfo `json:"groups"`
}

// handleGroupList serves the group listing with offset/limit pagination
// and RFC 8288 Link headers for the neighboring pages.
func (s *Server) handleGroupList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var fields []FieldError
	limit := queryInt(q, "limit", 0, &fields)
	offset := queryInt(q, "offset", 0, &fields)
	if len(fields) > 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid request", fields...)
		return
	}
	list := s.groups.List()
	total := len(list)
	if offset > total {
		offset = total
	}
	window := list[offset:]
	if limit > 0 {
		end := offset + limit
		if end > total {
			end = total
		}
		window = list[offset:end]
		if end < total {
			w.Header().Add("Link", fmt.Sprintf(`</v1/groups?offset=%d&limit=%d>; rel="next"`, end, limit))
		}
		if offset > 0 {
			prev := offset - limit
			if prev < 0 {
				prev = 0
			}
			w.Header().Add("Link", fmt.Sprintf(`</v1/groups?offset=%d&limit=%d>; rel="prev"`, prev, limit))
		}
	}
	writeData(w, http.StatusOK, GroupListResponse{Count: total, Offset: offset, Groups: window})
}

func (s *Server) handleGroupGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.groups.Get(r.PathValue("id"))
	if err != nil {
		groupErr(w, err)
		return
	}
	writeData(w, http.StatusOK, info)
}

// MembershipRequest is the join/leave payload.
type MembershipRequest struct {
	Dest int `json:"dest"`
}

func (r *MembershipRequest) validate() (fields []FieldError) {
	if r.Dest < 0 {
		fields = append(fields, FieldError{Field: "dest", Reason: "must be a non-negative output port"})
	}
	return fields
}

func (s *Server) handleGroupJoin(w http.ResponseWriter, r *http.Request) {
	s.handleMembership(w, r, s.doJoin, (*shard.Set).SubmitJoin)
}

func (s *Server) handleGroupLeave(w http.ResponseWriter, r *http.Request) {
	s.handleMembership(w, r, s.doLeave, (*shard.Set).SubmitLeave)
}

func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request,
	op func(*http.Request, string, int) (groupd.Update, error),
	submit func(*shard.Set, string, int) (*shard.Ticket, error)) {
	var req MembershipRequest
	if !decode(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	if asyncRequested(r) {
		s.submitAsync(w, func(set *shard.Set) (*shard.Ticket, error) {
			return submit(set, id, req.Dest)
		})
		return
	}
	u, err := op(r, id, req.Dest)
	if err != nil {
		groupErr(w, err)
		return
	}
	writeData(w, http.StatusOK, u)
}

func (s *Server) handleGroupDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if asyncRequested(r) {
		s.submitAsync(w, func(set *shard.Set) (*shard.Ticket, error) {
			return set.SubmitDelete(id)
		})
		return
	}
	if err := s.doDelete(r, id); err != nil {
		groupErr(w, err)
		return
	}
	writeData(w, http.StatusOK, map[string]string{"deleted": id})
}

// GroupPlanResponse is the GET /v1/groups/{id}/plan reply. The backend,
// passes, and cost fields are additive: clients that ignore unknown
// fields decode the pre-tiering shape unchanged.
type GroupPlanResponse struct {
	ID      string `json:"id"`
	Gen     uint64 `json:"gen"`
	Cached  bool   `json:"cached"`
	Columns int    `json:"columns"`
	Plan    string `json:"plan"` // base64(plancodec)
	// Backend is the planner tier that produced the program; Passes is
	// the injection passes it spans; Cost is the tier's hardware row at
	// the serving network's size.
	Backend string    `json:"backend,omitempty"`
	Passes  int       `json:"passes,omitempty"`
	Cost    *cost.Row `json:"cost,omitempty"`
}

func (s *Server) handleGroupPlan(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if asyncRequested(r) {
		s.submitAsync(w, func(set *shard.Set) (*shard.Ticket, error) {
			return set.SubmitPlan(id)
		})
		return
	}
	p, err := s.doPlan(r, id)
	if err != nil {
		groupErr(w, err)
		return
	}
	writeData(w, http.StatusOK, s.planResponse(p))
}

// planResponse renders a PlanInfo as the wire shape.
func (s *Server) planResponse(p groupd.PlanInfo) GroupPlanResponse {
	return GroupPlanResponse{
		ID:      p.ID,
		Gen:     p.Gen,
		Cached:  p.Cached,
		Columns: p.Columns,
		Plan:    base64.StdEncoding.EncodeToString(p.Blob),
		Backend: p.Backend,
		Passes:  p.Passes,
		Cost:    s.tierCost(p.Backend),
	}
}

// tierCost resolves a tier's cost row at the serving network size; nil
// when the tier is unknown or no group backend is configured.
func (s *Server) tierCost(tier string) *cost.Row {
	if s.groups == nil {
		return nil
	}
	t, err := backend.ParseTier(tier)
	if err != nil || t == backend.TierAuto {
		return nil
	}
	b := s.groups.Backends()[t]
	if b == nil {
		return nil
	}
	row := b.Cost()
	return &row
}

// SetBackendRequest is the POST /v1/groups/{id}/backend payload.
type SetBackendRequest struct {
	Backend string `json:"backend"`
}

func (r *SetBackendRequest) validate() (fields []FieldError) {
	if _, err := backend.ParseTier(r.Backend); err != nil {
		fields = append(fields, FieldError{Field: "backend", Reason: `must be "auto", "brsmn", "feedback", or "permnet"`})
	}
	return fields
}

func (s *Server) handleGroupSetBackend(w http.ResponseWriter, r *http.Request) {
	var req SetBackendRequest
	if !decode(w, r, &req) {
		return
	}
	pref, _ := backend.ParseTier(req.Backend)
	info, err := s.doSetBackend(r, r.PathValue("id"), pref)
	if err != nil {
		groupErr(w, err)
		return
	}
	writeData(w, http.StatusOK, info)
}

// BackendInfo describes one planner tier in the GET /v1/backends reply.
type BackendInfo struct {
	Name string `json:"name"`
	// Patch reports whether the tier's plans accept incremental
	// membership patches on the serving path.
	Patch bool `json:"patch"`
	// Cost is the tier's hardware/routing row at the serving network's
	// size (the paper's Table 2 accounting).
	Cost cost.Row `json:"cost"`
}

// BackendsResponse is the GET /v1/backends reply.
type BackendsResponse struct {
	N        int                    `json:"n"`
	Backends []BackendInfo          `json:"backends"`
	Selector backend.SelectorConfig `json:"selector"`
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	bs := s.groups.Backends()
	resp := BackendsResponse{N: s.groups.N(), Selector: s.groups.SelectorConfig()}
	for _, t := range backend.Tiers() {
		b := bs[t]
		if b == nil {
			continue
		}
		resp.Backends = append(resp.Backends, BackendInfo{Name: b.Name(), Patch: b.CanPatch(), Cost: b.Cost()})
	}
	writeData(w, http.StatusOK, resp)
}

func (s *Server) handleEpochGet(w http.ResponseWriter, r *http.Request) {
	rep := s.groups.LastEpoch()
	if rep == nil {
		rep = &groupd.EpochReport{}
	}
	writeData(w, http.StatusOK, rep)
}

func (s *Server) handleEpochRun(w http.ResponseWriter, r *http.Request) {
	rep, err := s.groups.RunEpoch()
	if err != nil {
		groupErr(w, err)
		return
	}
	writeData(w, http.StatusOK, rep)
}

// HealthResponse is the GET /v1/healthz reply.
type HealthResponse struct {
	Status  string `json:"status"`
	Groups  int    `json:"groups"`
	Epoch   int64  `json:"epoch"`
	Pending int64  `json:"pending"`
	// Faults carries the fault-management counters when the monitor is
	// enabled (the default monitor when serving sharded).
	Faults *faultd.Stats `json:"faults,omitempty"`
	// Shards carries the serving layer's aggregated snapshot when the
	// server fronts a shard.Set.
	Shards *shard.SetStats `json:"shards,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok"}
	if s.groups != nil {
		resp.Groups = s.groups.Count()
		resp.Epoch = s.groups.Epoch()
		resp.Pending = s.groups.Pending()
	}
	if fm := s.defaultMonitor(); fm != nil {
		st := fm.Stats()
		resp.Faults = &st
	}
	if s.set != nil {
		st := s.set.Stats()
		resp.Shards = &st
	}
	writeData(w, http.StatusOK, resp)
}
