package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"brsmn/internal/groupd"
	"brsmn/internal/rbn"
)

// newGroupServer spins up a server with a 16-port group manager in
// manual-epoch mode.
func newGroupServer(t *testing.T) *httptest.Server {
	t.Helper()
	gm, err := groupd.NewManager(groupd.Config{N: 16, Engine: rbn.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gm.Close() })
	ts := httptest.NewServer(NewServer(rbn.Sequential, gm, nil))
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var req *http.Request
	var err error
	if body != nil {
		raw, merr := json.Marshal(body)
		if merr != nil {
			t.Fatal(merr)
		}
		req, err = http.NewRequest(method, url, bytes.NewReader(raw))
	} else {
		req, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestGroupLifecycleHTTP walks a group through create / join / leave /
// epoch / plan / delete over the wire.
func TestGroupLifecycleHTTP(t *testing.T) {
	ts := newGroupServer(t)

	var info groupd.GroupInfo
	code := doJSON(t, "POST", ts.URL+"/groups",
		CreateGroupRequest{ID: "conf", Source: 2, Members: []int{3, 4, 7}}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if info.ID != "conf" || info.Gen != 1 || info.Size != 3 {
		t.Fatalf("create info = %+v", info)
	}
	if code := doJSON(t, "POST", ts.URL+"/groups",
		CreateGroupRequest{ID: "conf", Source: 1}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate create = %d, want 409", code)
	}

	var u groupd.Update
	if code := doJSON(t, "POST", ts.URL+"/groups/conf/join", MembershipRequest{Dest: 9}, &u); code != http.StatusOK {
		t.Fatalf("join = %d", code)
	}
	if u.Gen != 2 || u.Size != 4 {
		t.Fatalf("join update = %+v", u)
	}
	if code := doJSON(t, "POST", ts.URL+"/groups/conf/leave", MembershipRequest{Dest: 3}, &u); code != http.StatusOK {
		t.Fatalf("leave = %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/groups/conf/join", MembershipRequest{Dest: 9}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("double join = %d, want 422", code)
	}

	var got groupd.GroupInfo
	if code := doJSON(t, "GET", ts.URL+"/groups/conf", nil, &got); code != http.StatusOK {
		t.Fatalf("get = %d", code)
	}
	if got.Size != 3 || got.Sequence == "" {
		t.Fatalf("get info = %+v", got)
	}

	var rep groupd.EpochReport
	if code := doJSON(t, "POST", ts.URL+"/epoch", nil, &rep); code != http.StatusOK {
		t.Fatalf("epoch run = %d", code)
	}
	if rep.Epoch != 1 || rep.Groups != 1 || len(rep.Rounds) != 1 {
		t.Fatalf("epoch report = %+v", rep)
	}
	for _, d := range got.Members {
		if rep.Rounds[0].Deliveries[d] != got.Source {
			t.Fatalf("epoch delivered %d at output %d, want %d", rep.Rounds[0].Deliveries[d], d, got.Source)
		}
	}
	var rep2 groupd.EpochReport
	if code := doJSON(t, "GET", ts.URL+"/epoch", nil, &rep2); code != http.StatusOK {
		t.Fatalf("epoch get = %d", code)
	}
	if rep2.Epoch != rep.Epoch {
		t.Fatalf("GET /epoch = %+v, want epoch %d", rep2, rep.Epoch)
	}

	// The epoch warmed the plan cache: the first explicit plan fetch hits.
	var plan GroupPlanResponse
	if code := doJSON(t, "GET", ts.URL+"/groups/conf/plan", nil, &plan); code != http.StatusOK {
		t.Fatalf("plan = %d", code)
	}
	if !plan.Cached || plan.Columns == 0 || plan.Plan == "" {
		t.Fatalf("plan = %+v, want warm cache hit", plan)
	}

	var list GroupListResponse
	if code := doJSON(t, "GET", ts.URL+"/groups", nil, &list); code != http.StatusOK || list.Count != 1 {
		t.Fatalf("list = %d / %+v", code, list)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/groups/conf", nil, nil); code != http.StatusOK {
		t.Fatalf("delete = %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/groups/conf", nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete = %d, want 404", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/groups/conf/join", MembershipRequest{Dest: 1}, nil); code != http.StatusNotFound {
		t.Fatalf("join after delete = %d, want 404", code)
	}
}

func TestGroupCreateValidationHTTP(t *testing.T) {
	ts := newGroupServer(t)
	if code := doJSON(t, "POST", ts.URL+"/groups", CreateGroupRequest{Source: 99}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad source = %d, want 422", code)
	}
	resp, err := http.Post(ts.URL+"/groups", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts := newGroupServer(t)
	var h HealthResponse
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if h.Status != "ok" || h.Groups != 0 {
		t.Fatalf("healthz = %+v", h)
	}
	if code := doJSON(t, "POST", ts.URL+"/groups", CreateGroupRequest{ID: "g", Source: 0, Members: []int{1}}, nil); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if doJSON(t, "GET", ts.URL+"/healthz", nil, &h); h.Groups != 1 || h.Pending == 0 {
		t.Fatalf("healthz after create = %+v", h)
	}
}

// TestGroupEndpointsWithoutManager pins the stateless deployment: group
// endpoints 503, healthz still live.
func TestGroupEndpointsWithoutManager(t *testing.T) {
	ts := newTestServer(t)
	var h HealthResponse
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d / %+v", code, h)
	}
	for _, probe := range []struct{ method, path string }{
		{"POST", "/groups"},
		{"GET", "/groups"},
		{"GET", "/groups/x"},
		{"POST", "/groups/x/join"},
		{"DELETE", "/groups/x"},
		{"GET", "/epoch"},
		{"POST", "/epoch"},
	} {
		if code := doJSON(t, probe.method, ts.URL+probe.path, nil, nil); code != http.StatusServiceUnavailable {
			t.Errorf("%s %s = %d, want 503", probe.method, probe.path, code)
		}
	}
}
