package api

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"brsmn/internal/groupd"
	"brsmn/internal/rbn"
)

// newGroupServer spins up a server with a 16-port group manager in
// manual-epoch mode.
func newGroupServer(t *testing.T) *httptest.Server {
	t.Helper()
	gm, err := groupd.NewManager(groupd.Config{N: 16, Engine: rbn.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gm.Close() })
	ts := httptest.NewServer(NewServer(rbn.Sequential, gm, nil))
	t.Cleanup(ts.Close)
	return ts
}

// TestGroupLifecycleHTTP walks a group through create / join / leave /
// epoch / plan / delete over the wire.
func TestGroupLifecycleHTTP(t *testing.T) {
	ts := newGroupServer(t)

	var info groupd.GroupInfo
	code := doJSON(t, "POST", ts.URL+"/v1/groups",
		CreateGroupRequest{ID: "conf", Source: 2, Members: []int{3, 4, 7}}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if info.ID != "conf" || info.Gen != 1 || info.Size != 3 {
		t.Fatalf("create info = %+v", info)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/groups",
		CreateGroupRequest{ID: "conf", Source: 1}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate create = %d, want 409", code)
	}

	var u groupd.Update
	if code := doJSON(t, "POST", ts.URL+"/v1/groups/conf/join", MembershipRequest{Dest: 9}, &u); code != http.StatusOK {
		t.Fatalf("join = %d", code)
	}
	if u.Gen != 2 || u.Size != 4 {
		t.Fatalf("join update = %+v", u)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/groups/conf/leave", MembershipRequest{Dest: 3}, &u); code != http.StatusOK {
		t.Fatalf("leave = %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/groups/conf/join", MembershipRequest{Dest: 9}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("double join = %d, want 422", code)
	}

	var got groupd.GroupInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/groups/conf", nil, &got); code != http.StatusOK {
		t.Fatalf("get = %d", code)
	}
	if got.Size != 3 || got.Sequence == "" {
		t.Fatalf("get info = %+v", got)
	}

	var rep groupd.EpochReport
	if code := doJSON(t, "POST", ts.URL+"/v1/epoch", nil, &rep); code != http.StatusOK {
		t.Fatalf("epoch run = %d", code)
	}
	if rep.Epoch != 1 || rep.Groups != 1 || len(rep.Rounds) != 1 {
		t.Fatalf("epoch report = %+v", rep)
	}
	for _, d := range got.Members {
		if rep.Rounds[0].Deliveries[d] != got.Source {
			t.Fatalf("epoch delivered %d at output %d, want %d", rep.Rounds[0].Deliveries[d], d, got.Source)
		}
	}
	var rep2 groupd.EpochReport
	if code := doJSON(t, "GET", ts.URL+"/v1/epoch", nil, &rep2); code != http.StatusOK {
		t.Fatalf("epoch get = %d", code)
	}
	if rep2.Epoch != rep.Epoch {
		t.Fatalf("GET /v1/epoch = %+v, want epoch %d", rep2, rep.Epoch)
	}

	// The epoch warmed the plan cache: the first explicit plan fetch hits.
	var plan GroupPlanResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/groups/conf/plan", nil, &plan); code != http.StatusOK {
		t.Fatalf("plan = %d", code)
	}
	if !plan.Cached || plan.Columns == 0 || plan.Plan == "" {
		t.Fatalf("plan = %+v, want warm cache hit", plan)
	}

	var list GroupListResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/groups", nil, &list); code != http.StatusOK || list.Count != 1 {
		t.Fatalf("list = %d / %+v", code, list)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/groups/conf", nil, nil); code != http.StatusOK {
		t.Fatalf("delete = %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/groups/conf", nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete = %d, want 404", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/groups/conf/join", MembershipRequest{Dest: 1}, nil); code != http.StatusNotFound {
		t.Fatalf("join after delete = %d, want 404", code)
	}
}

func TestGroupCreateValidationHTTP(t *testing.T) {
	ts := newGroupServer(t)
	// Structurally valid but out of range for the fabric: the manager
	// rejects it, 422.
	if code := doJSON(t, "POST", ts.URL+"/v1/groups", CreateGroupRequest{Source: 99}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad source = %d, want 422", code)
	}
	// Structurally invalid: negative ports fail the shared validator, 400.
	if code := doJSON(t, "POST", ts.URL+"/v1/groups", CreateGroupRequest{ID: "g", Source: -1}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative source = %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/groups", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", resp.StatusCode)
	}
}

// TestGroupListPagination pins the Link-header pagination contract on
// GET /v1/groups.
func TestGroupListPagination(t *testing.T) {
	ts := newGroupServer(t)
	ids := []string{"a", "b", "c", "d", "e"}
	for i, id := range ids {
		if code := doJSON(t, "POST", ts.URL+"/v1/groups",
			CreateGroupRequest{ID: id, Source: i, Members: []int{8 + i}}, nil); code != http.StatusCreated {
			t.Fatalf("create %s = %d", id, code)
		}
	}

	get := func(query string) (GroupListResponse, http.Header) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/groups" + query)
		if err != nil {
			t.Fatal(err)
		}
		var list GroupListResponse
		if e := readEnvelope(t, resp, &list); e != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("list%s = %d / %+v", query, resp.StatusCode, e)
		}
		return list, resp.Header
	}

	// First page: 2 of 5, a "next" link, no "prev".
	list, hdr := get("?limit=2")
	if list.Count != 5 || list.Offset != 0 || len(list.Groups) != 2 {
		t.Fatalf("page 1 = %+v", list)
	}
	links := hdr.Values("Link")
	if len(links) != 1 || !containsAll(links[0], `rel="next"`, "offset=2", "limit=2") {
		t.Fatalf("page 1 Link = %q", links)
	}

	// Middle page: both links.
	list, hdr = get("?limit=2&offset=2")
	if len(list.Groups) != 2 || list.Offset != 2 {
		t.Fatalf("page 2 = %+v", list)
	}
	var next, prev bool
	for _, l := range hdr.Values("Link") {
		next = next || containsAll(l, `rel="next"`, "offset=4")
		prev = prev || containsAll(l, `rel="prev"`, "offset=0")
	}
	if !next || !prev {
		t.Fatalf("page 2 Link = %q", hdr.Values("Link"))
	}

	// Last page: 1 group, no "next".
	list, hdr = get("?limit=2&offset=4")
	if len(list.Groups) != 1 {
		t.Fatalf("page 3 = %+v", list)
	}
	for _, l := range hdr.Values("Link") {
		if containsAll(l, `rel="next"`) {
			t.Fatalf("page 3 has a next link: %q", l)
		}
	}

	// Offset past the end clamps to an empty window, not an error.
	if list, _ = get("?limit=2&offset=99"); len(list.Groups) != 0 || list.Count != 5 {
		t.Fatalf("overshoot = %+v", list)
	}

	// Junk paging parameters are a uniform 400.
	if code := doJSON(t, "GET", ts.URL+"/v1/groups?limit=x", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("limit=x = %d, want 400", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/groups?offset=-3", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("offset=-3 = %d, want 400", code)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !bytes.Contains([]byte(s), []byte(sub)) {
			return false
		}
	}
	return true
}

func TestHealthz(t *testing.T) {
	ts := newGroupServer(t)
	var h HealthResponse
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if h.Status != "ok" || h.Groups != 0 {
		t.Fatalf("healthz = %+v", h)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/groups", CreateGroupRequest{ID: "g", Source: 0, Members: []int{1}}, nil); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if doJSON(t, "GET", ts.URL+"/v1/healthz", nil, &h); h.Groups != 1 || h.Pending == 0 {
		t.Fatalf("healthz after create = %+v", h)
	}
}

// TestGroupEndpointsWithoutManager pins the stateless deployment: group
// endpoints 503, healthz still live.
func TestGroupEndpointsWithoutManager(t *testing.T) {
	ts := newTestServer(t)
	var h HealthResponse
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d / %+v", code, h)
	}
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v1/groups"},
		{"GET", "/v1/groups"},
		{"GET", "/v1/groups/x"},
		{"POST", "/v1/groups/x/join"},
		{"DELETE", "/v1/groups/x"},
		{"GET", "/v1/epoch"},
		{"POST", "/v1/epoch"},
	} {
		if code := doJSON(t, probe.method, ts.URL+probe.path, nil, nil); code != http.StatusServiceUnavailable {
			t.Errorf("%s %s = %d, want 503", probe.method, probe.path, code)
		}
	}
}
