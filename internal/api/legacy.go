package api

// Deprecated pre-/v1 path aliases. Every legacy endpoint answers a
// permanent redirect to its /v1 successor — 301 for GET/HEAD, 308 for
// bodied methods so clients replay the method and body — and carries
// the deprecation headers:
//
//	Deprecation: true
//	Link: </v1/...>; rel="successor-version"
//
// GET /healthz and GET /metrics are the exception: they are served
// directly (api.go registers them), since probes and scrapers do not
// follow redirects.

import "net/http"

// legacyPaths are the pre-/v1 mux patterns. Subtree patterns (trailing
// slash) cover the parameterized endpoints: /groups/{id}/join,
// /faults/report, /trace/{group}.
var legacyPaths = []string{
	"/route",
	"/schedule",
	"/plan",
	"/pipeline",
	"/cost",
	"/sequence",
	"/groups",
	"/groups/",
	"/epoch",
	"/faults",
	"/faults/",
	"/probe",
	"/trace/",
}

func (s *Server) registerLegacy() {
	h := s.instrument("legacy_redirect", redirectToV1)
	for _, p := range legacyPaths {
		s.mux.HandleFunc(p, h)
	}
}

func redirectToV1(w http.ResponseWriter, r *http.Request) {
	target := "/v1" + r.URL.Path
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "<"+target+`>; rel="successor-version"`)
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	code := http.StatusPermanentRedirect // 308: method and body replayed
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		code = http.StatusMovedPermanently // 301
	}
	http.Redirect(w, r, target, code)
}
