package api

import (
	"net/http"
	"strings"
	"testing"
)

// noFollow is a client that surfaces redirects instead of chasing them.
var noFollow = &http.Client{
	CheckRedirect: func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	},
}

// TestLegacyRedirects pins the deprecation contract on every pre-/v1
// path: a permanent redirect to the /v1 successor carrying
// Deprecation: true and a successor-version Link.
func TestLegacyRedirects(t *testing.T) {
	ts := newGroupServer(t)

	cases := []struct {
		method, path, location string
		wantCode               int
	}{
		{"GET", "/cost?n=64", "/v1/cost?n=64", http.StatusMovedPermanently},
		{"GET", "/sequence?n=8&dests=3,4,7", "/v1/sequence?n=8&dests=3,4,7", http.StatusMovedPermanently},
		{"GET", "/groups", "/v1/groups", http.StatusMovedPermanently},
		{"GET", "/groups/conf", "/v1/groups/conf", http.StatusMovedPermanently},
		{"GET", "/epoch", "/v1/epoch", http.StatusMovedPermanently},
		{"GET", "/faults", "/v1/faults", http.StatusMovedPermanently},
		{"GET", "/faults/report", "/v1/faults/report", http.StatusMovedPermanently},
		{"GET", "/trace/conf", "/v1/trace/conf", http.StatusMovedPermanently},
		{"POST", "/route", "/v1/route", http.StatusPermanentRedirect},
		{"POST", "/schedule", "/v1/schedule", http.StatusPermanentRedirect},
		{"POST", "/plan", "/v1/plan", http.StatusPermanentRedirect},
		{"POST", "/pipeline", "/v1/pipeline", http.StatusPermanentRedirect},
		{"POST", "/groups", "/v1/groups", http.StatusPermanentRedirect},
		{"POST", "/groups/conf/join", "/v1/groups/conf/join", http.StatusPermanentRedirect},
		{"POST", "/probe", "/v1/probe", http.StatusPermanentRedirect},
		{"DELETE", "/faults", "/v1/faults", http.StatusPermanentRedirect},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := noFollow.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantCode)
			continue
		}
		if loc := resp.Header.Get("Location"); loc != tc.location {
			t.Errorf("%s %s: Location %q, want %q", tc.method, tc.path, loc, tc.location)
		}
		if dep := resp.Header.Get("Deprecation"); dep != "true" {
			t.Errorf("%s %s: Deprecation %q, want \"true\"", tc.method, tc.path, dep)
		}
		link := resp.Header.Get("Link")
		if !strings.Contains(link, `rel="successor-version"`) || !strings.Contains(link, "</v1/") {
			t.Errorf("%s %s: Link %q, want a successor-version /v1 link", tc.method, tc.path, link)
		}
	}
}

// TestNoLegacyPath404s is the CI invariant in test form: no pre-/v1
// path may have fallen through to the catch-all 404.
func TestNoLegacyPath404s(t *testing.T) {
	ts := newGroupServer(t)
	for _, path := range []string{
		"/route", "/schedule", "/plan", "/pipeline", "/cost", "/sequence",
		"/groups", "/groups/x", "/groups/x/join", "/groups/x/leave", "/groups/x/plan",
		"/epoch", "/faults", "/faults/report", "/probe", "/trace/x",
		"/healthz", "/metrics",
	} {
		resp, err := noFollow.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			t.Errorf("GET %s = 404: legacy path lost", path)
		}
	}
}

// TestLegacyEndToEnd drives the old paths with a redirect-following
// client: 308 replays the method and body, so the pre-/v1 calls still
// work unchanged.
func TestLegacyEndToEnd(t *testing.T) {
	ts := newGroupServer(t)

	// doJSON uses http.DefaultClient, which follows the 308 and replays
	// the POST body against /v1/groups.
	var info struct {
		ID string `json:"id"`
	}
	if code := doJSON(t, "POST", ts.URL+"/groups",
		CreateGroupRequest{ID: "legacy", Source: 2, Members: []int{3, 4}}, &info); code != http.StatusCreated {
		t.Fatalf("legacy create = %d, want 201 via 308", code)
	}
	if info.ID != "legacy" {
		t.Fatalf("legacy create info = %+v", info)
	}

	var out RouteResponse
	if code := doJSON(t, "POST", ts.URL+"/route", RouteRequest{
		N: 8, Dests: [][]int{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}},
	}, &out); code != http.StatusOK {
		t.Fatalf("legacy route = %d", code)
	}
	if len(out.Deliveries) != 8 {
		t.Fatalf("legacy route deliveries = %v", out.Deliveries)
	}

	var list GroupListResponse
	if code := doJSON(t, "GET", ts.URL+"/groups", nil, &list); code != http.StatusOK || list.Count != 1 {
		t.Fatalf("legacy list = %d / %+v", code, list)
	}
}
