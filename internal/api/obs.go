package api

// Observability endpoints and HTTP instrumentation, active when the
// server is constructed with WithMetrics / WithTracer:
//
//	GET /v1/metrics         -> Prometheus text exposition of the registry
//	GET /v1/trace/{group}   -> the last recorded planning trace as JSON
//
// /metrics is also served unversioned (scrapers don't follow
// redirects); its exposition-format body is the one non-envelope
// response besides redirects.
//
// Every handler is additionally wrapped to count requests by handler
// and status code (brsmn_http_requests_total) and observe latency
// (brsmn_http_request_seconds). Without a registry the wrapper is a
// direct call — no status capture, no clock reads.

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"brsmn/internal/obs"
)

// Option configures optional Server subsystems.
type Option func(*Server)

// WithMetrics serves reg on GET /metrics and instruments every handler
// with request/latency series.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithTracer serves rec's last-trace-per-group on GET /trace/{group}.
func WithTracer(rec *obs.TraceRecorder) Option {
	return func(s *Server) { s.tracer = rec }
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "api: metrics not enabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// TraceResponse is the GET /v1/trace/{group} reply.
type TraceResponse struct {
	Group string          `json:"group"`
	Trace *obs.RouteTrace `json:"trace"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "api: tracing not enabled")
		return
	}
	group := r.PathValue("group")
	tr := s.tracer.Last(group)
	if tr == nil {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("api: no trace recorded for %q (traces are sampled; route the group first)", group))
		return
	}
	writeData(w, http.StatusOK, TraceResponse{Group: group, Trace: tr})
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer, so
// the SSE handler can flush through the instrumentation wrapper.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// instrument wraps h with per-handler request counting and latency
// observation. With no registry it returns h unchanged.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.reg == nil {
			h(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		s.reg.Counter(
			fmt.Sprintf(`brsmn_http_requests_total{handler=%q,code="%d"}`, name, sw.code),
			"HTTP requests by handler and status code.").Inc()
		s.reg.Histogram(`brsmn_http_request_seconds{handler=`+strconv.Quote(name)+`}`,
			"HTTP request latency by handler.", obs.SecondsBuckets()).ObserveDuration(time.Since(t0))
	}
}
