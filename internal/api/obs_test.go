package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"brsmn/internal/groupd"
	"brsmn/internal/obs"
	"brsmn/internal/rbn"
)

// newObsServer spins up a fully instrumented server: registry, tracer
// sampling every replan, and a 16-port group manager sharing both.
func newObsServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	tracer := obs.NewTraceRecorder(1)
	gm, err := groupd.NewManager(groupd.Config{N: 16, Engine: rbn.Sequential, Metrics: reg, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gm.Close() })
	ts := httptest.NewServer(NewServer(rbn.Sequential, gm, nil, WithMetrics(reg), WithTracer(tracer)))
	t.Cleanup(ts.Close)
	return ts, reg
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newObsServer(t)

	// Generate some traffic so the HTTP series exist.
	var created groupd.GroupInfo
	if code := doJSON(t, "POST", ts.URL+"/groups", CreateGroupRequest{ID: "conf", Source: 2, Members: []int{3, 4, 7}}, &created); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/epoch", nil, nil); code != http.StatusOK {
		t.Fatalf("epoch = %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, series := range []string{
		"# TYPE brsmn_epoch_duration_seconds histogram",
		"brsmn_plan_cache_ops_total{op=\"miss\"}",
		"brsmn_planner_pool_ops_total{op=\"get\"}",
		"brsmn_http_requests_total{handler=\"group_create\",code=\"201\"} 1",
		"brsmn_http_request_seconds",
		"brsmn_groups 1",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}

func TestMetricsDisabled(t *testing.T) {
	ts := httptest.NewServer(NewServer(rbn.Sequential, nil, nil))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/metrics without registry = %d, want 503", resp.StatusCode)
	}
}

func TestTraceEndpoint(t *testing.T) {
	ts, _ := newObsServer(t)

	if code := doJSON(t, "POST", ts.URL+"/groups", CreateGroupRequest{ID: "conf", Source: 2, Members: []int{3, 4, 7}}, nil); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	// The replan (and with it the sampled trace) happens on plan demand.
	if code := doJSON(t, "GET", ts.URL+"/groups/conf/plan", nil, nil); code != http.StatusOK {
		t.Fatalf("plan = %d", code)
	}

	var got TraceResponse
	if code := doJSON(t, "GET", ts.URL+"/trace/conf", nil, &got); code != http.StatusOK {
		t.Fatalf("/trace/conf = %d", code)
	}
	if got.Group != "conf" || got.Trace == nil {
		t.Fatalf("trace response = %+v", got)
	}
	if got.Trace.N != 16 || got.Trace.Fanout != 3 || got.Trace.TotalNs <= 0 || got.Trace.Settings <= 0 {
		t.Fatalf("trace body = %+v", got.Trace)
	}

	resp, err := http.Get(ts.URL + "/trace/unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace/unknown = %d, want 404", resp.StatusCode)
	}

	// Without a tracer the endpoint is disabled, not missing.
	bare := httptest.NewServer(NewServer(rbn.Sequential, nil, nil))
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/trace/conf")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/trace without tracer = %d, want 503", resp.StatusCode)
	}
}

// checkJSONError asserts an error response is JSON all the way: content
// type, a decodable {"error": ...} body, and the expected status.
func checkJSONError(t *testing.T, resp *http.Response, wantCode int) errorBody {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("%s: status %d, want %d", resp.Request.URL.Path, resp.StatusCode, wantCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s: content-type %q, want application/json", resp.Request.URL.Path, ct)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("%s: error body is not JSON: %v", resp.Request.URL.Path, err)
	}
	if body.Error == "" {
		t.Fatalf("%s: empty error message", resp.Request.URL.Path)
	}
	return body
}

// TestMethodNotAllowedJSON is the conformance fix regression test: a
// wrong method on a real endpoint must answer 405 (not 404) with a JSON
// body and an Allow header — /faults and /probe were the offenders.
func TestMethodNotAllowedJSON(t *testing.T) {
	ts, _ := newObsServer(t)
	cases := []struct {
		method, path, allow string
	}{
		{"PUT", "/faults", "GET, POST, DELETE"},
		{"GET", "/probe", "POST"},
		{"DELETE", "/probe", "POST"},
		{"GET", "/route", "POST"},
		{"PUT", "/groups", "GET, POST"},
		{"PATCH", "/groups/conf", "GET, DELETE"},
		{"POST", "/metrics", "GET"},
		{"POST", "/trace/conf", "GET"},
		{"DELETE", "/epoch", "GET, POST"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		checkJSONError(t, resp, http.StatusMethodNotAllowed)
		if allow := resp.Header.Get("Allow"); allow != tc.allow {
			t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, allow, tc.allow)
		}
	}
}

func TestNotFoundJSON(t *testing.T) {
	ts, _ := newObsServer(t)
	resp, err := http.Get(ts.URL + "/no/such/endpoint")
	if err != nil {
		t.Fatal(err)
	}
	checkJSONError(t, resp, http.StatusNotFound)
}

// TestMalformedJSONBody asserts every decoding endpoint answers 400
// with a JSON error body on syntactically broken request JSON.
func TestMalformedJSONBody(t *testing.T) {
	ts, _ := newObsServer(t)
	for _, path := range []string{"/route", "/schedule", "/plan", "/pipeline", "/groups"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(`{"n": 8,`))
		if err != nil {
			t.Fatal(err)
		}
		checkJSONError(t, resp, http.StatusBadRequest)
	}
}
