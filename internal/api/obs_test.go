package api

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"brsmn/internal/groupd"
	"brsmn/internal/obs"
	"brsmn/internal/rbn"
)

// newObsServer spins up a fully instrumented server: registry, tracer
// sampling every replan, and a 16-port group manager sharing both.
func newObsServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	tracer := obs.NewTraceRecorder(1)
	gm, err := groupd.NewManager(groupd.Config{N: 16, Engine: rbn.Sequential, Metrics: reg, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gm.Close() })
	ts := httptest.NewServer(NewServer(rbn.Sequential, gm, nil, WithMetrics(reg), WithTracer(tracer)))
	t.Cleanup(ts.Close)
	return ts, reg
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newObsServer(t)

	// Generate some traffic so the HTTP series exist.
	var created groupd.GroupInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/groups", CreateGroupRequest{ID: "conf", Source: 2, Members: []int{3, 4, 7}}, &created); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/epoch", nil, nil); code != http.StatusOK {
		t.Fatalf("epoch = %d", code)
	}

	// The exposition is served both at /v1/metrics and, for scrapers
	// that don't follow redirects, directly at /metrics.
	for _, path := range []string{"/metrics", "/v1/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("%s content-type = %q", path, ct)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		text := string(raw)
		for _, series := range []string{
			"# TYPE brsmn_epoch_duration_seconds histogram",
			"brsmn_plan_cache_ops_total{op=\"miss\"}",
			"brsmn_planner_pool_ops_total{op=\"get\"}",
			"brsmn_http_requests_total{handler=\"group_create\",code=\"201\"} 1",
			"brsmn_http_request_seconds",
			"brsmn_groups 1",
		} {
			if !strings.Contains(text, series) {
				t.Errorf("%s missing %q", path, series)
			}
		}
	}
}

func TestMetricsDisabled(t *testing.T) {
	ts := httptest.NewServer(NewServer(rbn.Sequential, nil, nil))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/metrics without registry = %d, want 503", resp.StatusCode)
	}
}

func TestTraceEndpoint(t *testing.T) {
	ts, _ := newObsServer(t)

	if code := doJSON(t, "POST", ts.URL+"/v1/groups", CreateGroupRequest{ID: "conf", Source: 2, Members: []int{3, 4, 7}}, nil); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	// The replan (and with it the sampled trace) happens on plan demand.
	if code := doJSON(t, "GET", ts.URL+"/v1/groups/conf/plan", nil, nil); code != http.StatusOK {
		t.Fatalf("plan = %d", code)
	}

	var got TraceResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/trace/conf", nil, &got); code != http.StatusOK {
		t.Fatalf("/v1/trace/conf = %d", code)
	}
	if got.Group != "conf" || got.Trace == nil {
		t.Fatalf("trace response = %+v", got)
	}
	if got.Trace.N != 16 || got.Trace.Fanout != 3 || got.Trace.TotalNs <= 0 || got.Trace.Settings <= 0 {
		t.Fatalf("trace body = %+v", got.Trace)
	}

	resp, err := http.Get(ts.URL + "/v1/trace/unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/trace/unknown = %d, want 404", resp.StatusCode)
	}

	// Without a tracer the endpoint is disabled, not missing.
	bare := httptest.NewServer(NewServer(rbn.Sequential, nil, nil))
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/v1/trace/conf")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/v1/trace without tracer = %d, want 503", resp.StatusCode)
	}
}

// checkJSONError asserts an error response is JSON all the way: content
// type, a decodable envelope with a machine-readable code and null data,
// and the expected status.
func checkJSONError(t *testing.T, resp *http.Response, wantCode int) *ErrorBody {
	t.Helper()
	if resp.StatusCode != wantCode {
		t.Fatalf("%s: status %d, want %d", resp.Request.URL.Path, resp.StatusCode, wantCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s: content-type %q, want application/json", resp.Request.URL.Path, ct)
	}
	e := readEnvelope(t, resp, nil)
	if e == nil || e.Code == "" || e.Message == "" {
		t.Fatalf("%s: error half is empty: %+v", resp.Request.URL.Path, e)
	}
	return e
}

// TestMethodNotAllowedJSON: a wrong method on a real /v1 endpoint must
// answer 405 (not 404) with the JSON envelope and an Allow header.
func TestMethodNotAllowedJSON(t *testing.T) {
	ts, _ := newObsServer(t)
	cases := []struct {
		method, path, allow string
	}{
		{"PUT", "/v1/faults", "GET, POST, DELETE"},
		{"GET", "/v1/probe", "POST"},
		{"DELETE", "/v1/probe", "POST"},
		{"GET", "/v1/route", "POST"},
		{"PUT", "/v1/groups", "GET, POST"},
		{"PATCH", "/v1/groups/conf", "GET, DELETE"},
		{"POST", "/v1/metrics", "GET"},
		{"POST", "/metrics", "GET"},
		{"POST", "/healthz", "GET"},
		{"POST", "/v1/trace/conf", "GET"},
		{"DELETE", "/v1/epoch", "GET, POST"},
		{"DELETE", "/v1/shards", "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		e := checkJSONError(t, resp, http.StatusMethodNotAllowed)
		if e.Code != CodeMethodNotAllowed {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, e.Code, CodeMethodNotAllowed)
		}
		if allow := resp.Header.Get("Allow"); allow != tc.allow {
			t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, allow, tc.allow)
		}
	}
}

func TestNotFoundJSON(t *testing.T) {
	ts, _ := newObsServer(t)
	for _, path := range []string{"/no/such/endpoint", "/v1/no/such/endpoint", "/v2/route"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if e := checkJSONError(t, resp, http.StatusNotFound); e.Code != CodeNotFound {
			t.Errorf("%s: code %q, want %q", path, e.Code, CodeNotFound)
		}
	}
}

// TestMalformedJSONBody asserts every decoding endpoint answers 400
// with the envelope and a field-level reason on syntactically broken
// request JSON.
func TestMalformedJSONBody(t *testing.T) {
	ts, _ := newObsServer(t)
	for _, path := range []string{"/v1/route", "/v1/schedule", "/v1/plan", "/v1/pipeline", "/v1/groups"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(`{"n": 8,`))
		if err != nil {
			t.Fatal(err)
		}
		e := checkJSONError(t, resp, http.StatusBadRequest)
		if e.Code != CodeBadRequest || len(e.Fields) == 0 || e.Fields[0].Field != "body" {
			t.Errorf("%s: error = %+v, want bad_request with a body field reason", path, e)
		}
	}
}
