package api

// Liveness vs readiness.
//
//	GET /v1/healthz  (and /healthz)  -> liveness: 200 while the process
//	                                    serves HTTP at all
//	GET /v1/readyz   (and /readyz)   -> readiness: 200 only when the node
//	                                    should receive traffic
//
// The split matters in cluster mode: a draining node keeps answering
// requests for the groups it still holds (liveness up) while reporting
// not-ready so ring peers, load balancers, and the CI smoke stop
// steering *new* traffic at it. A node still syncing its first
// membership view is likewise not-ready. Without a readiness check
// installed (single-node deployments), readyz is an alias for liveness.

import "net/http"

// ReadyCheck reports whether this node should receive traffic: nil
// means ready, an error carries the human-readable reason (draining,
// recovering, ...). Implementations must be safe for concurrent use.
type ReadyCheck func() error

// WithReadiness installs the readiness check behind GET /v1/readyz.
func WithReadiness(check ReadyCheck) Option {
	return func(s *Server) { s.ready = check }
}

// ReadyResponse is the GET /v1/readyz reply.
type ReadyResponse struct {
	Ready bool `json:"ready"`
	// Reason is the not-ready explanation; empty when ready.
	Reason string `json:"reason,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.ready != nil {
		if err := s.ready(); err != nil {
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
			return
		}
	}
	writeData(w, http.StatusOK, ReadyResponse{Ready: true})
}
