package api

// Shard introspection and rebalance endpoints, active when the server
// fronts a shard.Set (WithShards):
//
//	GET  /v1/shards                    -> the Set's aggregated + per-shard stats
//	POST /v1/shards/{id}/quarantine    -> pull a shard off the ring, migrate its groups
//	POST /v1/shards/{id}/reinstate     -> return it and migrate its groups back
//
// Without a Set these endpoints answer 503 like the other gated
// surfaces. Quarantining the last live shard is refused with 409.

import (
	"errors"
	"net/http"
	"strconv"

	"brsmn/internal/faultd"
	"brsmn/internal/shard"
)

// WithShards wires the sharded serving layer: set fronts the group
// endpoints' backend (pass it as NewServer's Groups too), and monitors
// — one per shard, may be nil — back the ?shard=k selector of the
// fault endpoints.
func WithShards(set *shard.Set, monitors []*faultd.Monitor) Option {
	return func(s *Server) {
		s.set = set
		s.monitors = monitors
	}
}

func (s *Server) withShards(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.set == nil {
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "api: sharded serving not enabled")
			return
		}
		h(w, r)
	}
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	writeData(w, http.StatusOK, s.set.Stats())
}

// shardID parses the {id} path value, writing the 400 envelope on junk.
func shardID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid request",
			FieldError{Field: "id", Reason: "must be a non-negative shard index"})
		return 0, false
	}
	return id, true
}

// shardErr maps Set placement errors: unknown shard 404, closed 503,
// everything else (already quarantined, not quarantined, last live
// shard) is a state conflict.
func shardErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, shard.ErrNoSuchShard):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, shard.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
	default:
		httpError(w, http.StatusConflict, err)
	}
}

func (s *Server) handleShardQuarantine(w http.ResponseWriter, r *http.Request) {
	id, ok := shardID(w, r)
	if !ok {
		return
	}
	if err := s.set.Quarantine(id); err != nil {
		shardErr(w, err)
		return
	}
	writeData(w, http.StatusOK, s.set.Stats())
}

func (s *Server) handleShardReinstate(w http.ResponseWriter, r *http.Request) {
	id, ok := shardID(w, r)
	if !ok {
		return
	}
	if err := s.set.Reinstate(id); err != nil {
		shardErr(w, err)
		return
	}
	writeData(w, http.StatusOK, s.set.Stats())
}
