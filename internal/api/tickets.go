package api

// Asynchronous admission over HTTP — the ticket surface:
//
//	POST /v1/tickets              {"op":"join","group":"conf","dest":9}
//	                              -> 202 {"ticket":{...,"state":"queued"},"queue":{...}}
//	GET  /v1/tickets              -> registry + per-shard queue stats
//	GET  /v1/tickets/{id}         -> the ticket; ?wait=2s long-polls for completion
//	GET  /v1/tickets/{id}/events  -> SSE: "queued" immediately, "done" on completion
//
// The group endpoints accept ?async=1 as sugar for the same submission
// (POST /v1/groups?async=1 ≡ POST /v1/tickets with op=create). Every
// 202 carries the owning shard's queue depth and shed count, so clients
// see backpressure at submit time; completed tickets carry the
// stage-timing record of shard.TicketStamps plus derived durations.
//
// Tickets require the sharded serving layer (the single-fabric manager
// admits inline, so there is nothing to ticket) — without it the
// endpoints answer 503.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"brsmn/internal/shard"
)

// maxTicketWait caps the long-poll window so a stuck client cannot pin
// a handler forever; poll again for longer waits.
const maxTicketWait = 30 * time.Second

// asyncRequested reports whether the request opted into ticketed
// admission via ?async=1|true.
func asyncRequested(r *http.Request) bool {
	v := r.URL.Query().Get("async")
	return v == "1" || v == "true"
}

func (s *Server) withTickets(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.set == nil {
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
				"api: async admission requires the sharded serving layer")
			return
		}
		h(w, r)
	}
}

// TicketStages is a ticket's stage-timing record on the wire: the raw
// Unix-ns stamps plus the derived stage durations.
type TicketStages struct {
	shard.TicketStamps
	QueueWaitNs int64 `json:"queueWaitNs"` // enqueue -> batch drain
	ExecNs      int64 `json:"execNs"`      // batch drain -> manager-call return
	SignalNs    int64 `json:"signalNs"`    // manager-call return -> ticket signaled
	TotalNs     int64 `json:"totalNs"`     // submit -> ticket signaled
}

// TicketView is a ticket's wire shape. Result is the op's usual success
// payload (group state, membership update, plan, or {"deleted": id});
// Error mirrors the envelope's error half. Both are set only when State
// is "done".
type TicketView struct {
	ID     string        `json:"id"`
	Op     string        `json:"op"`
	Group  string        `json:"group"`
	Shard  int           `json:"shard"`
	State  string        `json:"state"` // queued | done
	Error  *ErrorBody    `json:"error,omitempty"`
	Result any           `json:"result,omitempty"`
	Stages *TicketStages `json:"stages,omitempty"`
}

// TicketResponse is the 202 submission reply: the queued ticket plus
// the owning shard's backpressure view.
type TicketResponse struct {
	Ticket TicketView       `json:"ticket"`
	Queue  shard.QueueStats `json:"queue"`
}

// ticketView renders tk, including results and stages once done.
func (s *Server) ticketView(tk *shard.Ticket) TicketView {
	v := TicketView{
		ID:    tk.ID(),
		Op:    tk.Op(),
		Group: tk.Group(),
		Shard: tk.Shard(),
		State: "queued",
	}
	if !tk.Done() {
		return v
	}
	v.State = "done"
	st := tk.Stamps()
	v.Stages = &TicketStages{
		TicketStamps: st,
		QueueWaitNs:  st.Drained - st.Enqueued,
		ExecNs:       st.Execed - st.Drained,
		SignalNs:     st.Done - st.Execed,
		TotalNs:      st.Done - st.Submitted,
	}
	if err := tk.Err(); err != nil {
		status := groupErrStatus(err)
		v.Error = &ErrorBody{Code: codeForStatus(status), Message: err.Error()}
		return v
	}
	switch {
	case tk.Op() == "delete":
		v.Result = map[string]string{"deleted": tk.Group()}
	default:
		if info, ok := tk.Info(); ok {
			v.Result = info
		} else if up, ok := tk.Update(); ok {
			v.Result = up
		} else if p, ok := tk.Plan(); ok {
			v.Result = s.planResponse(p)
		}
	}
	return v
}

// submitAsync runs one ticketed submission and writes the 202 (or the
// mapped submission error). Shared by POST /v1/tickets and the group
// endpoints' ?async=1 branch.
func (s *Server) submitAsync(w http.ResponseWriter, submit func(*shard.Set) (*shard.Ticket, error)) {
	if s.set == nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			"api: async admission requires the sharded serving layer")
		return
	}
	tk, err := submit(s.set)
	if err != nil {
		groupErr(w, err)
		return
	}
	q, _ := s.set.QueueStats(tk.Shard())
	writeData(w, http.StatusAccepted, TicketResponse{Ticket: s.ticketView(tk), Queue: q})
}

// TicketSubmitRequest is the POST /v1/tickets payload — one group
// operation in self-describing form.
type TicketSubmitRequest struct {
	Op    string `json:"op"` // create | join | leave | delete | plan
	Group string `json:"group"`
	// Create fields.
	Source  int   `json:"source"`
	Members []int `json:"members"`
	// Join/leave field.
	Dest int `json:"dest"`
}

func (r *TicketSubmitRequest) validate() (fields []FieldError) {
	switch r.Op {
	case "create":
		if r.Source < 0 {
			fields = append(fields, FieldError{Field: "source", Reason: "must be a non-negative input port"})
		}
	case "join", "leave":
		if r.Dest < 0 {
			fields = append(fields, FieldError{Field: "dest", Reason: "must be a non-negative output port"})
		}
		fallthrough
	case "delete", "plan":
		if r.Group == "" {
			fields = append(fields, FieldError{Field: "group", Reason: "required"})
		}
	default:
		fields = append(fields, FieldError{Field: "op", Reason: "one of create, join, leave, delete, plan"})
	}
	return fields
}

func (s *Server) handleTicketSubmit(w http.ResponseWriter, r *http.Request) {
	var req TicketSubmitRequest
	if !decode(w, r, &req) {
		return
	}
	s.submitAsync(w, func(set *shard.Set) (*shard.Ticket, error) {
		switch req.Op {
		case "create":
			return set.SubmitCreate(req.Group, req.Source, req.Members)
		case "join":
			return set.SubmitJoin(req.Group, req.Dest)
		case "leave":
			return set.SubmitLeave(req.Group, req.Dest)
		case "delete":
			return set.SubmitDelete(req.Group)
		default:
			return set.SubmitPlan(req.Group)
		}
	})
}

// TicketStatsResponse is the GET /v1/tickets reply.
type TicketStatsResponse struct {
	Tickets shard.TicketStats  `json:"tickets"`
	Queues  []shard.QueueStats `json:"queues"`
}

func (s *Server) handleTicketStats(w http.ResponseWriter, r *http.Request) {
	resp := TicketStatsResponse{Tickets: s.set.TicketStats()}
	for i := 0; i < s.set.Shards(); i++ {
		q, err := s.set.QueueStats(i)
		if err != nil {
			continue
		}
		resp.Queues = append(resp.Queues, q)
	}
	writeData(w, http.StatusOK, resp)
}

// handleTicketGet serves one ticket; ?wait=<duration> long-polls up to
// maxTicketWait for completion before answering with whatever state the
// ticket is in.
func (s *Server) handleTicketGet(w http.ResponseWriter, r *http.Request) {
	tk, err := s.set.Ticket(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
		return
	}
	if raw := r.URL.Query().Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid request",
				FieldError{Field: "wait", Reason: "must be a non-negative duration (e.g. 2s)"})
			return
		}
		if d > maxTicketWait {
			d = maxTicketWait
		}
		waitCtx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		_ = tk.Wait(waitCtx) // timeout just reports the current state
	}
	writeData(w, http.StatusOK, s.ticketView(tk))
}

// handleTicketEvents streams the ticket's lifecycle as server-sent
// events: a "queued" event immediately, then "done" with the final view
// when the result is published. The stream ends after "done" (or when
// the client disconnects) — tickets complete exactly once, so there is
// nothing further to push.
func (s *Server) handleTicketEvents(w http.ResponseWriter, r *http.Request) {
	tk, err := s.set.Ticket(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	if !tk.Done() {
		writeSSE(w, "queued", s.ticketView(tk))
		_ = rc.Flush()
		select {
		case <-tk.DoneCh():
		case <-r.Context().Done():
			return
		}
	}
	writeSSE(w, "done", s.ticketView(tk))
	_ = rc.Flush()
}

// writeSSE emits one named event with a JSON data line.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte("{}")
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
