package api

// Tests for the async admission surface: POST /v1/tickets, the
// ?async=1 sugar on the group endpoints, long-poll pickup, the SSE
// stream, and the 503 gate when the sharded layer is absent.

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestTicketSubmitAndPoll(t *testing.T) {
	ts, _ := newShardServer(t, 2)

	// Submit a create; the 202 carries the queued ticket plus the owning
	// shard's backpressure view.
	var sub TicketResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/tickets",
		TicketSubmitRequest{Op: "create", Group: "async-a", Source: 0, Members: []int{1, 2}},
		&sub); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	if sub.Ticket.ID == "" || sub.Ticket.Op != "create" || sub.Ticket.Group != "async-a" {
		t.Fatalf("ticket = %+v", sub.Ticket)
	}
	if sub.Queue.Depth == 0 {
		t.Fatalf("202 carries no queue view: %+v", sub.Queue)
	}

	// Long-poll until done; the view carries the result and the full
	// stage-timing record.
	var view TicketView
	if code := doJSON(t, "GET", ts.URL+"/v1/tickets/"+sub.Ticket.ID+"?wait=5s", nil, &view); code != http.StatusOK {
		t.Fatalf("poll = %d", code)
	}
	if view.State != "done" || view.Error != nil {
		t.Fatalf("view = %+v", view)
	}
	if view.Stages == nil || view.Stages.Done < view.Stages.Submitted || view.Stages.QueueWaitNs < 0 {
		t.Fatalf("stages = %+v", view.Stages)
	}
	if view.Result == nil {
		t.Fatal("done view carries no result")
	}

	// The created group is visible to the sync surface.
	if code := doJSON(t, "GET", ts.URL+"/v1/groups/async-a", nil, nil); code != http.StatusOK {
		t.Fatalf("group after async create = %d", code)
	}

	// A failing op completes with the mapped error in the view, not an
	// HTTP error on the poll itself.
	if code := doJSON(t, "POST", ts.URL+"/v1/tickets",
		TicketSubmitRequest{Op: "plan", Group: "nope"}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit plan = %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/tickets/"+sub.Ticket.ID+"?wait=5s", nil, &view); code != http.StatusOK {
		t.Fatalf("poll = %d", code)
	}
	if view.State != "done" || view.Error == nil || view.Error.Code != CodeNotFound {
		t.Fatalf("failed-op view = %+v", view)
	}

	// Registry stats include the submissions above.
	var stats TicketStatsResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/tickets", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Tickets.Submitted < 2 || len(stats.Queues) != 2 {
		t.Fatalf("stats = %+v", stats)
	}

	// Validation and lookup failures.
	e := checkJSONError(t, mustDo(t, "POST", ts.URL+"/v1/tickets", `{"op":"explode"}`), http.StatusBadRequest)
	if len(e.Fields) == 0 || e.Fields[0].Field != "op" {
		t.Fatalf("bad op error = %+v", e)
	}
	e = checkJSONError(t, mustDo(t, "GET", ts.URL+"/v1/tickets/t99999", ""), http.StatusNotFound)
	if e.Code != CodeNotFound {
		t.Fatalf("unknown ticket code = %q", e.Code)
	}
	e = checkJSONError(t, mustDo(t, "GET", ts.URL+"/v1/tickets/"+sub.Ticket.ID+"?wait=banana", ""), http.StatusBadRequest)
	if len(e.Fields) == 0 || e.Fields[0].Field != "wait" {
		t.Fatalf("bad wait error = %+v", e)
	}
}

// TestAsyncQuerySugar drives the ?async=1 form of the group endpoints:
// same submission, same 202 shape.
func TestAsyncQuerySugar(t *testing.T) {
	ts, _ := newShardServer(t, 2)

	var sub TicketResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/groups?async=1",
		CreateGroupRequest{ID: "sugar", Source: 0, Members: []int{3}}, &sub); code != http.StatusAccepted {
		t.Fatalf("async create = %d", code)
	}
	var view TicketView
	if code := doJSON(t, "GET", ts.URL+"/v1/tickets/"+sub.Ticket.ID+"?wait=5s", nil, &view); code != http.StatusOK || view.State != "done" {
		t.Fatalf("async create ticket: %d %+v", code, view)
	}

	if code := doJSON(t, "POST", ts.URL+"/v1/groups/sugar/join?async=1",
		MembershipRequest{Dest: 9}, &sub); code != http.StatusAccepted {
		t.Fatalf("async join = %d", code)
	}
	if sub.Ticket.Op != "join" {
		t.Fatalf("sugar join op = %q", sub.Ticket.Op)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/tickets/"+sub.Ticket.ID+"?wait=5s", nil, &view); code != http.StatusOK ||
		view.State != "done" || view.Error != nil {
		t.Fatalf("async join ticket: %d %+v", code, view)
	}

	// Without the flag the same endpoints stay synchronous.
	if code := doJSON(t, "POST", ts.URL+"/v1/groups/sugar/leave", MembershipRequest{Dest: 9}, nil); code != http.StatusOK {
		t.Fatalf("sync leave = %d", code)
	}
}

// TestTicketSSE reads the event stream to completion: it must end with
// a "done" event carrying the finished view.
func TestTicketSSE(t *testing.T) {
	ts, _ := newShardServer(t, 2)

	var sub TicketResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/tickets",
		TicketSubmitRequest{Op: "create", Group: "sse-g", Source: 0, Members: []int{1}}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/tickets/" + sub.Ticket.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body) // the stream ends after "done"
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, "event: done") {
		t.Fatalf("stream missing done event:\n%s", body)
	}
	if !strings.Contains(body, `"state":"done"`) {
		t.Fatalf("done event missing finished view:\n%s", body)
	}
}

// TestTicketsUnsharded checks the 503 gate on every async surface when
// the server fronts the single-fabric manager.
func TestTicketsUnsharded(t *testing.T) {
	ts := newGroupServer(t)
	for _, probe := range []struct{ method, path, body string }{
		{"POST", "/v1/tickets", `{"op":"plan","group":"g"}`},
		{"GET", "/v1/tickets", ""},
		{"GET", "/v1/tickets/t1", ""},
		{"GET", "/v1/tickets/t1/events", ""},
		{"POST", "/v1/groups?async=1", `{"id":"g","source":0,"members":[1]}`},
	} {
		e := checkJSONError(t, mustDo(t, probe.method, ts.URL+probe.path, probe.body), http.StatusServiceUnavailable)
		if e.Code != CodeUnavailable {
			t.Errorf("%s %s: code %q, want %q", probe.method, probe.path, e.Code, CodeUnavailable)
		}
	}
}

// mustDo issues one request with an optional raw JSON body.
func mustDo(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
