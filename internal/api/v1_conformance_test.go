package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"brsmn/internal/faultd"
	"brsmn/internal/groupd"
	"brsmn/internal/rbn"
	"brsmn/internal/shard"
)

// TestEnvelopeBothKeysAlways is the envelope conformance check: every
// JSON reply — success or failure, any handler family — carries both
// the "data" and "error" keys, and exactly one of them is null.
func TestEnvelopeBothKeysAlways(t *testing.T) {
	ts := newGroupServer(t)

	type probe struct {
		method, path string
		body         string
	}
	probes := []probe{
		{"POST", "/v1/route", `{"n":8,"dests":[[1],null,null,null,null,null,null,null]}`}, // 200
		{"POST", "/v1/route", `{"n":7}`},                     // 400
		{"POST", "/v1/route", `{"n":4,"dests":[[0],[0]]}`},   // 422
		{"GET", "/v1/cost?n=64", ""},                         // 200
		{"GET", "/v1/cost?n=63", ""},                         // 400
		{"POST", "/v1/groups", `{"id":"e","source":0,"members":[1]}`}, // 201
		{"POST", "/v1/groups", `{"id":"e","source":0,"members":[1]}`}, // 409
		{"GET", "/v1/groups/nope", ""},                       // 404
		{"GET", "/v1/healthz", ""},                           // 200
		{"GET", "/v1/shards", ""},                            // 503 (unsharded)
		{"PUT", "/v1/route", ""},                             // 405
		{"GET", "/v1/definitely/not/there", ""},              // 404 catch-all
	}
	for _, p := range probes {
		var body io.Reader
		if p.body != "" {
			body = strings.NewReader(p.body)
		}
		req, err := http.NewRequest(p.method, ts.URL+p.path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: content-type %q, want application/json", p.method, p.path, ct)
			continue
		}
		var keys map[string]json.RawMessage
		if err := json.Unmarshal(raw, &keys); err != nil {
			t.Errorf("%s %s: body not a JSON object: %v", p.method, p.path, err)
			continue
		}
		data, hasData := keys["data"]
		errv, hasErr := keys["error"]
		if !hasData || !hasErr {
			t.Errorf("%s %s: envelope missing keys: %s", p.method, p.path, raw)
			continue
		}
		dataNull := string(data) == "null"
		errNull := string(errv) == "null"
		if resp.StatusCode < 400 && (dataNull || !errNull) {
			t.Errorf("%s %s (%d): success envelope wrong: %s", p.method, p.path, resp.StatusCode, raw)
		}
		if resp.StatusCode >= 400 && (!dataNull || errNull) {
			t.Errorf("%s %s (%d): error envelope wrong: %s", p.method, p.path, resp.StatusCode, raw)
		}
	}
}

// TestUniform400Shape asserts structurally invalid input produces the
// same field-level error shape no matter which handler family rejects
// it.
func TestUniform400Shape(t *testing.T) {
	ts, _ := newFaultServer(t)

	cases := []struct {
		method, path, body, field string
	}{
		{"POST", "/v1/route", `{"n":7,"dests":[[1]]}`, "n"},
		{"POST", "/v1/pipeline", `{"n":8,"gap":-1,"batch":[[[1]]]}`, "gap"},
		{"POST", "/v1/groups", `{"id":"g","source":-1}`, "source"},
		{"POST", "/v1/groups/x/join", `{"dest":-4}`, "dest"},
		{"POST", "/v1/faults", `{}`, "faults"},
		{"GET", "/v1/faults?shard=x", "", "shard"},
		{"GET", "/v1/groups?limit=-1", "", "limit"},
		{"GET", "/v1/cost?n=banana", "", "n"},
	}
	for _, tc := range cases {
		var body io.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		}
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		e := checkJSONError(t, resp, http.StatusBadRequest)
		if e.Code != CodeBadRequest {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, e.Code, CodeBadRequest)
		}
		found := false
		for _, f := range e.Fields {
			if f.Field == tc.field && f.Reason != "" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s %s: fields %+v, want one naming %q", tc.method, tc.path, e.Fields, tc.field)
		}
	}
}

// newShardServer spins up a server fronting a 2-shard Set with one
// fault monitor per shard.
func newShardServer(t *testing.T, shards int) (*httptest.Server, *shard.Set) {
	t.Helper()
	monitors := make([]*faultd.Monitor, shards)
	for i := range monitors {
		fm, err := faultd.NewMonitor(faultd.Config{N: 16, Engine: rbn.Sequential, ProbeCount: 2},
			faultd.NewInjector(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		monitors[i] = fm
	}
	set, err := shard.New(shard.Config{
		Shards:    shards,
		Group:     groupd.Config{N: 16, Engine: rbn.Sequential},
		NewPolicy: func(i int) groupd.FaultPolicy { return monitors[i] },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	ts := httptest.NewServer(NewServer(rbn.Sequential, set, nil, WithShards(set, monitors)))
	t.Cleanup(ts.Close)
	return ts, set
}

// TestShardedServer drives the group lifecycle and the shard
// introspection/rebalance endpoints against a 2-shard Set.
func TestShardedServer(t *testing.T) {
	ts, _ := newShardServer(t, 2)

	for i, id := range []string{"s-a", "s-b", "s-c", "s-d", "s-e", "s-f"} {
		if code := doJSON(t, "POST", ts.URL+"/v1/groups",
			CreateGroupRequest{ID: id, Source: i, Members: []int{8 + i}}, nil); code != http.StatusCreated {
			t.Fatalf("create %s = %d", id, code)
		}
	}

	var stats shard.SetStats
	if code := doJSON(t, "GET", ts.URL+"/v1/shards", nil, &stats); code != http.StatusOK {
		t.Fatalf("shards = %d", code)
	}
	if stats.Shards != 2 || stats.Live != 2 || stats.Groups != 6 || len(stats.PerShard) != 2 {
		t.Fatalf("shard stats = %+v", stats)
	}

	// Healthz reports the sharded layer.
	var h HealthResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if h.Shards == nil || h.Shards.Shards != 2 || h.Groups != 6 {
		t.Fatalf("healthz on sharded server = %+v", h)
	}

	// Quarantine shard 1: its groups migrate, the set stays whole.
	if code := doJSON(t, "POST", ts.URL+"/v1/shards/1/quarantine", nil, &stats); code != http.StatusOK {
		t.Fatalf("quarantine = %d", code)
	}
	if stats.Live != 1 || stats.Groups != 6 {
		t.Fatalf("post-quarantine stats = %+v", stats)
	}
	var got groupd.GroupInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/groups/s-c", nil, &got); code != http.StatusOK {
		t.Fatalf("get after quarantine = %d", code)
	}

	// State conflicts: re-quarantining, and pulling the last live shard.
	if code := doJSON(t, "POST", ts.URL+"/v1/shards/1/quarantine", nil, nil); code != http.StatusConflict {
		t.Fatalf("double quarantine = %d, want 409", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/shards/0/quarantine", nil, nil); code != http.StatusConflict {
		t.Fatalf("quarantine last live = %d, want 409", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/shards/9/quarantine", nil, nil); code != http.StatusNotFound {
		t.Fatalf("quarantine unknown = %d, want 404", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/shards/zebra/quarantine", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("quarantine junk id = %d, want 400", code)
	}

	if code := doJSON(t, "POST", ts.URL+"/v1/shards/1/reinstate", nil, &stats); code != http.StatusOK {
		t.Fatalf("reinstate = %d", code)
	}
	if stats.Live != 2 || stats.Groups != 6 {
		t.Fatalf("post-reinstate stats = %+v", stats)
	}

	// Per-shard fault selectors: both fabrics probe, a shard past the
	// end does not exist.
	for _, q := range []string{"?shard=0", "?shard=1"} {
		var probe faultd.ProbeReport
		if code := doJSON(t, "POST", ts.URL+"/v1/probe"+q, nil, &probe); code != http.StatusOK {
			t.Fatalf("probe%s = %d", q, code)
		}
		if probe.Probes != 2 || probe.Detected {
			t.Fatalf("probe%s = %+v", q, probe)
		}
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/faults?shard=2", nil, nil); code != http.StatusNotFound {
		t.Fatalf("faults shard=2 = %d, want 404", code)
	}

	// Epochs run across all live shards.
	var rep groupd.EpochReport
	if code := doJSON(t, "POST", ts.URL+"/v1/epoch", nil, &rep); code != http.StatusOK {
		t.Fatalf("epoch = %d", code)
	}
	if rep.Groups != 6 {
		t.Fatalf("sharded epoch report = %+v", rep)
	}
}

// TestShardEndpointsDisabledUnsharded pins the unsharded deployment:
// shard endpoints answer 503, not 404.
func TestShardEndpointsDisabledUnsharded(t *testing.T) {
	ts := newGroupServer(t)
	for _, ep := range []struct{ method, path string }{
		{"GET", "/v1/shards"},
		{"POST", "/v1/shards/0/quarantine"},
		{"POST", "/v1/shards/0/reinstate"},
	} {
		if code := doJSON(t, ep.method, ts.URL+ep.path, nil, nil); code != http.StatusServiceUnavailable {
			t.Errorf("%s %s = %d, want 503", ep.method, ep.path, code)
		}
	}
}
