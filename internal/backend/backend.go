// Package backend puts the repository's three routing fabrics behind
// one planner-backend interface — the full BRSMN (package core), the
// feedback BRSMN (package feedback, Section 7.3) and the unicast
// permutation network (package permnet, Cheng & Chen) — so the serving
// layer can pick a fabric per group instead of hard-wiring the unrolled
// network. Every backend produces the same artifact: a flattened
// switch-column program plus per-output deliveries, with the pass count
// and a cost.Row describing what the fabric spends to realize it.
//
// The Selector tiers groups across backends from observed workload
// (group size, membership churn, plan-cache hit profile) with hysteresis
// so a group near a threshold does not flap between fabrics.
package backend

import (
	"fmt"

	"brsmn/internal/cost"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
)

// Tier identifies a planner backend. TierAuto is a preference, not a
// backend: it asks the Selector to pick among the concrete tiers.
type Tier uint8

const (
	// TierAuto lets the selector tier the group from observed workload.
	TierAuto Tier = iota
	// TierBRSMN is the full unrolled BRSMN: one pass, patchable plans.
	TierBRSMN
	// TierFeedback is the feedback BRSMN: one RBN's hardware, 2 log2(n) - 1
	// sequential passes — the amortization play for stable large groups.
	TierFeedback
	// TierPermNet is the unicast permutation network: one pass per unit of
	// fanout — the cheap path for tiny groups.
	TierPermNet
)

// String returns the wire name of the tier (the /v1 `backend` field).
func (t Tier) String() string {
	switch t {
	case TierAuto:
		return "auto"
	case TierBRSMN:
		return "brsmn"
	case TierFeedback:
		return "feedback"
	case TierPermNet:
		return "permnet"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// ParseTier parses a wire name; the empty string means TierAuto.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "auto":
		return TierAuto, nil
	case "brsmn":
		return TierBRSMN, nil
	case "feedback":
		return TierFeedback, nil
	case "permnet":
		return TierPermNet, nil
	}
	return TierAuto, fmt.Errorf("backend: unknown backend %q (want auto, brsmn, feedback or permnet)", s)
}

// Tiers lists the concrete backends, in tier order.
func Tiers() []Tier { return []Tier{TierBRSMN, TierFeedback, TierPermNet} }

// Route is a fabric-independent routed assignment: the switch-column
// program realizing it, how many injection passes the program spans, and
// the per-output delivered sources (-1 for idle outputs).
//
// For single-injection backends (brsmn, feedback) Columns is one linear
// program executable by fabric.Run. The permnet backend decomposes a
// multicast assignment into one unicast pass per unit of fanout, each
// pass re-injecting the sources; its Columns concatenate the per-pass
// programs in order (a pass boundary is where Level restarts at 1).
type Route struct {
	Backend Tier
	Columns []fabric.Column
	Passes  int
	// Deliveries[out] is the source delivered to output out, -1 if idle.
	Deliveries []int
}

// Backend is one routing fabric behind the common planning surface.
// Implementations are safe for concurrent use.
type Backend interface {
	// Name returns the tier's wire name.
	Name() string
	// Tier returns the concrete tier the backend implements.
	Tier() Tier
	// Route realizes a multicast assignment, verifying deliveries.
	Route(a mcast.Assignment) (*Route, error)
	// CanPatch reports whether cached plans from this backend accept
	// O(log n) membership patches (core.RoutePatch) instead of replans.
	CanPatch() bool
	// Cost returns the fabric's closed-form hardware/latency row at the
	// backend's network size.
	Cost() cost.Row
}

// New constructs the backend implementing a concrete tier for an n x n
// network on the given engine. TierAuto has no implementation — resolve
// it through a Selector first.
func New(t Tier, n int, eng rbn.Engine) (Backend, error) {
	switch t {
	case TierBRSMN:
		return NewBRSMN(n, eng)
	case TierFeedback:
		return NewFeedback(n, eng)
	case TierPermNet:
		return NewPermNet(n, eng)
	}
	return nil, fmt.Errorf("backend: no implementation for tier %v", t)
}

// All constructs every concrete backend for an n x n network, indexed by
// tier, for callers (the group manager, the bench harness) that serve
// all tiers side by side.
func All(n int, eng rbn.Engine) (map[Tier]Backend, error) {
	out := make(map[Tier]Backend, 3)
	for _, t := range Tiers() {
		b, err := New(t, n, eng)
		if err != nil {
			return nil, err
		}
		out[t] = b
	}
	return out, nil
}
