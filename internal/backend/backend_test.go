package backend

import (
	"math/rand"
	"testing"

	"brsmn/internal/bsn"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/plancodec"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
)

// TestDifferentialSemantics is the satellite differential test: all
// three backends must deliver identical multicast semantics — every
// requested output reached from its owning source, nothing misdelivered
// — for 300 random assignments across n ∈ {16, 64, 256}. The brsmn and
// feedback column programs are additionally executed through fabric.Run
// and must reproduce their own reported deliveries, and every program
// must survive a plancodec round trip (the serving path's plan blob).
func TestDifferentialSemantics(t *testing.T) {
	const trialsPerSize = 100
	for _, n := range []int{16, 64, 256} {
		backends, err := All(n, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(70 + n)))
		for trial := 0; trial < trialsPerSize; trial++ {
			a := workload.Random(rng, n, rng.Float64(), rng.Float64())
			owner := a.OutputOwner()
			routes := map[Tier]*Route{}
			for _, tier := range Tiers() {
				r, err := backends[tier].Route(a)
				if err != nil {
					t.Fatalf("n=%d trial %d: %v: %v", n, trial, tier, err)
				}
				if r.Backend != tier {
					t.Fatalf("n=%d: %v route labeled %v", n, tier, r.Backend)
				}
				if len(r.Deliveries) != n {
					t.Fatalf("n=%d: %v returned %d deliveries", n, tier, len(r.Deliveries))
				}
				for out, src := range r.Deliveries {
					if src != owner[out] {
						t.Fatalf("n=%d trial %d: %v delivered source %d to output %d, want %d",
							n, trial, tier, src, out, owner[out])
					}
				}
				routes[tier] = r
			}
			for _, tier := range Tiers() {
				other := routes[tier]
				ref := routes[TierBRSMN]
				for out := range ref.Deliveries {
					if other.Deliveries[out] != ref.Deliveries[out] {
						t.Fatalf("n=%d trial %d: output %d: %v delivers %d, brsmn delivers %d",
							n, trial, out, tier, other.Deliveries[out], ref.Deliveries[out])
					}
				}
			}
			if trial%10 == 0 { // fabric execution + codec round trip, sampled
				for _, tier := range []Tier{TierBRSMN, TierFeedback} {
					checkColumnsDeliver(t, a, routes[tier])
				}
				for _, tier := range Tiers() {
					checkCodecRoundTrip(t, n, routes[tier])
				}
			}
		}
	}
}

// checkColumnsDeliver executes a single-injection column program and
// compares the fabric's deliveries with the route's claim.
func checkColumnsDeliver(t *testing.T, a mcast.Assignment, r *Route) {
	t.Helper()
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fabric.Run(r.Columns, cells)
	if err != nil {
		t.Fatalf("%v: executing columns: %v", r.Backend, err)
	}
	for i, c := range out {
		src := c.Source
		if c.IsIdle() {
			src = -1
		}
		if src != r.Deliveries[i] {
			t.Fatalf("%v: fabric delivered %d to output %d, route claims %d", r.Backend, src, i, r.Deliveries[i])
		}
	}
}

// checkCodecRoundTrip encodes and decodes a route's column program.
func checkCodecRoundTrip(t *testing.T, n int, r *Route) {
	t.Helper()
	blob, err := plancodec.Encode(n, r.Columns)
	if err != nil {
		t.Fatalf("%v: encode: %v", r.Backend, err)
	}
	gotN, cols, err := plancodec.Decode(blob)
	if err != nil {
		t.Fatalf("%v: decode: %v", r.Backend, err)
	}
	if gotN != n || len(cols) != len(r.Columns) {
		t.Fatalf("%v: round trip %d columns at n=%d, want %d at n=%d", r.Backend, len(cols), gotN, len(r.Columns), n)
	}
	for i, c := range cols {
		w := r.Columns[i]
		if c.Kind != w.Kind || c.Level != w.Level || c.BlockSize != w.BlockSize || c.AdvanceAfter != w.AdvanceAfter {
			t.Fatalf("%v: column %d header mismatch after round trip", r.Backend, i)
		}
		for j, s := range c.Settings {
			if s != w.Settings[j] {
				t.Fatalf("%v: column %d setting %d mismatch after round trip", r.Backend, i, j)
			}
		}
	}
}

// TestBackendShapes pins the per-tier program shape: pass counts and
// column counts follow the closed forms the /v1 surface reports.
func TestBackendShapes(t *testing.T) {
	n, m := 16, 4
	backends, err := All(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	a, err := workload.EvenFanout(n, 4)
	if err != nil {
		t.Fatal(err)
	}

	r, err := backends[TierBRSMN].Route(a)
	if err != nil {
		t.Fatal(err)
	}
	if r.Passes != 1 {
		t.Errorf("brsmn passes = %d, want 1", r.Passes)
	}

	r, err = backends[TierFeedback].Route(a)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*m - 1; r.Passes != want {
		t.Errorf("feedback passes = %d, want %d", r.Passes, want)
	}
	if want := 2*m*(m-1) + 1; len(r.Columns) != want {
		t.Errorf("feedback columns = %d, want %d", len(r.Columns), want)
	}

	r, err = backends[TierPermNet].Route(a)
	if err != nil {
		t.Fatal(err)
	}
	if r.Passes != 4 {
		t.Errorf("permnet passes = %d, want 4", r.Passes)
	}
	perPass := 0
	for size := n; size >= 2; size /= 2 {
		perPass += mlog2(size)
	}
	if want := 4 * perPass; len(r.Columns) != want {
		t.Errorf("permnet columns = %d, want %d", len(r.Columns), want)
	}
}

func mlog2(n int) int {
	m := 0
	for 1<<m < n {
		m++
	}
	return m
}

// TestTierParsing round-trips the wire names.
func TestTierParsing(t *testing.T) {
	for _, tier := range []Tier{TierAuto, TierBRSMN, TierFeedback, TierPermNet} {
		got, err := ParseTier(tier.String())
		if err != nil || got != tier {
			t.Errorf("ParseTier(%q) = %v, %v", tier.String(), got, err)
		}
	}
	if got, err := ParseTier(""); err != nil || got != TierAuto {
		t.Errorf("ParseTier(\"\") = %v, %v", got, err)
	}
	if _, err := ParseTier("crossbar"); err == nil {
		t.Error("ParseTier accepted an unknown backend")
	}
}

// TestCapabilities pins the patch-capability matrix and cost rows.
func TestCapabilities(t *testing.T) {
	backends, err := All(64, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if !backends[TierBRSMN].CanPatch() {
		t.Error("brsmn must be patch-capable")
	}
	if backends[TierFeedback].CanPatch() || backends[TierPermNet].CanPatch() {
		t.Error("feedback and permnet must not claim patch capability")
	}
	for _, tier := range Tiers() {
		b := backends[tier]
		if b.Name() != tier.String() || b.Tier() != tier {
			t.Errorf("%v: Name/Tier mismatch (%q, %v)", tier, b.Name(), b.Tier())
		}
		if row := b.Cost(); row.Switches <= 0 || row.Depth <= 0 {
			t.Errorf("%v: degenerate cost row %+v", tier, row)
		}
	}
	if backends[TierFeedback].Cost().Switches >= backends[TierBRSMN].Cost().Switches {
		t.Error("feedback must use less hardware than the unrolled BRSMN")
	}
}

// TestSelectorTiering checks the instantaneous policy: tiny → permnet,
// large stable → feedback, churny or mid-size → brsmn.
func TestSelectorTiering(t *testing.T) {
	s := NewSelector(SelectorConfig{})
	var st GroupState

	s.Init(&st, TierAuto, 2, 0)
	if st.Tier != TierPermNet {
		t.Errorf("size-2 group initialized on %v, want permnet", st.Tier)
	}
	s.Init(&st, TierAuto, 16, 0)
	if st.Tier != TierBRSMN {
		t.Errorf("size-16 group initialized on %v, want brsmn", st.Tier)
	}
	s.Init(&st, TierAuto, 200, 0)
	if st.Tier != TierFeedback {
		t.Errorf("large stable group initialized on %v, want feedback", st.Tier)
	}
	s.Init(&st, TierPermNet, 200, 0)
	if st.Tier != TierPermNet {
		t.Errorf("explicit preference not honored: got %v", st.Tier)
	}

	// A large group under heavy churn must leave feedback for brsmn.
	s.Init(&st, TierAuto, 200, 0)
	gen := uint64(0)
	moved := false
	for i := 0; i < 20 && !moved; i++ {
		gen += 5 // five membership changes between observations
		moved = s.Observe(&st, 200, gen)
	}
	if !moved || st.Tier != TierBRSMN {
		t.Errorf("churny large group on %v (moved=%v), want brsmn", st.Tier, moved)
	}
	// ...and return to feedback once churn decays.
	moved = false
	for i := 0; i < 64 && !moved; i++ {
		moved = s.Observe(&st, 200, gen)
	}
	if !moved || st.Tier != TierFeedback {
		t.Errorf("quiet large group stayed on %v (moved=%v), want feedback", st.Tier, moved)
	}
}

// TestSelectorHysteresis is the satellite tier-flap test: a group
// oscillating near a threshold must not transition until the decision
// agrees for Hysteresis consecutive observations, and a single
// disagreeing observation must reset the ladder.
func TestSelectorHysteresis(t *testing.T) {
	cfg := DefaultSelectorConfig()
	s := NewSelector(cfg)
	var st GroupState
	s.Init(&st, TierAuto, 100, 0)
	if st.Tier != TierFeedback {
		t.Fatalf("initial tier %v, want feedback", st.Tier)
	}

	// Alternate the instantaneous decision every observation (by
	// forcing the churn EWMA above and below threshold): the brsmn
	// decision never accumulates Hysteresis agreements, so the tier
	// must hold.
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			st.churn = 10 // decide() sees brsmn
		} else {
			st.churn = 0 // decide() sees feedback, resetting the ladder
		}
		if s.Observe(&st, 100, 0) {
			t.Fatalf("observation %d flapped the tier to %v", i, st.Tier)
		}
	}
	if st.Tier != TierFeedback {
		t.Fatalf("tier drifted to %v under oscillation", st.Tier)
	}

	// A sustained change of regime must take exactly Hysteresis
	// consecutive agreeing observations.
	for i := 1; i <= cfg.Hysteresis; i++ {
		st.churn = 10
		moved := s.Observe(&st, 100, 0)
		if moved != (i == cfg.Hysteresis) {
			t.Fatalf("observation %d: transitioned=%v, want transition only on observation %d",
				i, moved, cfg.Hysteresis)
		}
	}
	if st.Tier != TierBRSMN {
		t.Errorf("tier %v after sustained churn, want brsmn", st.Tier)
	}
}

// TestSelectorHitProfile checks the plan-cache hit gate: a large quiet
// group whose plans keep missing cache must not move to feedback.
func TestSelectorHitProfile(t *testing.T) {
	s := NewSelector(SelectorConfig{})
	var st GroupState
	s.Init(&st, TierAuto, 16, 0) // starts brsmn (mid-size)
	// Grow the group large while its cache profile is all misses.
	for i := 0; i < 20; i++ {
		s.RecordLookup(&st, false)
	}
	for i := 0; i < 10; i++ {
		if s.Observe(&st, 200, 0) {
			t.Fatalf("all-miss group transitioned to %v", st.Tier)
		}
	}
	// A healthy hit profile unlocks feedback.
	for i := 0; i < 40; i++ {
		s.RecordLookup(&st, true)
	}
	moved := false
	for i := 0; i < 10 && !moved; i++ {
		moved = s.Observe(&st, 200, 0)
	}
	if !moved || st.Tier != TierFeedback {
		t.Errorf("well-cached large group on %v (moved=%v), want feedback", st.Tier, moved)
	}
}
