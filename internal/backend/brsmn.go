package backend

import (
	"brsmn/internal/core"
	"brsmn/internal/cost"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
)

// BRSMN is the full unrolled network behind the Backend interface: one
// injection pass, cost.BRSMNDepth(n) columns, and — uniquely among the
// tiers — plans that accept O(log n) membership patches, which is why
// the selector parks churny groups here.
type BRSMN struct {
	nw *core.Network
}

// NewBRSMN returns the full-BRSMN backend for an n x n network.
func NewBRSMN(n int, eng rbn.Engine) (*BRSMN, error) {
	nw, err := core.New(n, eng)
	if err != nil {
		return nil, err
	}
	return &BRSMN{nw: nw}, nil
}

// Name implements Backend.
func (b *BRSMN) Name() string { return TierBRSMN.String() }

// Tier implements Backend.
func (b *BRSMN) Tier() Tier { return TierBRSMN }

// CanPatch implements Backend: core plans carry the packed routing-tag
// trees RoutePatch edits in place.
func (b *BRSMN) CanPatch() bool { return true }

// Cost implements Backend.
func (b *BRSMN) Cost() cost.Row { return cost.BRSMN(b.nw.N()) }

// Network exposes the wrapped core network (the patch path and the
// epoch scheduler keep routing on it directly).
func (b *BRSMN) Network() *core.Network { return b.nw }

// Route implements Backend: a pooled core route flattened into the
// linear column program.
func (b *BRSMN) Route(a mcast.Assignment) (*Route, error) {
	res, err := b.nw.Route(a)
	if err != nil {
		return nil, err
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		return nil, err
	}
	return &Route{
		Backend:    TierBRSMN,
		Columns:    cols,
		Passes:     1,
		Deliveries: deliverySources(res.Deliveries),
	}, nil
}

// deliverySources strips core deliveries down to per-output sources.
func deliverySources(ds []core.Delivery) []int {
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = d.Source
	}
	return out
}
