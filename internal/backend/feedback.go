package backend

import (
	"brsmn/internal/cost"
	"brsmn/internal/fabric"
	"brsmn/internal/feedback"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/swbox"
)

// Feedback is the Section 7.3 feedback BRSMN behind the Backend
// interface: a single RBN's hardware reconfigured over 2 log2(n) - 1
// sequential passes. Its plans are not patchable — every membership
// change recomputes all passes — so the selector reserves it for large
// stable groups whose plans amortize across epochs.
type Feedback struct {
	n    int
	m    int
	pool *feedback.PlannerPool
}

// NewFeedback returns the feedback backend for an n x n network.
func NewFeedback(n int, eng rbn.Engine) (*Feedback, error) {
	pool, err := feedback.NewPlannerPool(n, eng)
	if err != nil {
		return nil, err
	}
	return &Feedback{n: n, m: shuffle.Log2(n), pool: pool}, nil
}

// Name implements Backend.
func (b *Feedback) Name() string { return TierFeedback.String() }

// Tier implements Backend.
func (b *Feedback) Tier() Tier { return TierFeedback }

// CanPatch implements Backend.
func (b *Feedback) CanPatch() bool { return false }

// Cost implements Backend.
func (b *Feedback) Cost() cost.Row { return cost.Feedback(b.n) }

// Route implements Backend. Every scatter/quasisort pass contributes its
// full log2(n) stages as columns — the cells physically traverse the
// whole RBN each trip, with the stages above the pass's block size set
// parallel (identity) — and the delivery pass contributes its stage-0
// column, so a routing yields 2 log2(n) (log2(n) - 1) + 1 columns. The
// program executes under fabric.Run exactly like an unrolled plan: the
// level hand-off advances after the last column of each quasisort pass.
func (b *Feedback) Route(a mcast.Assignment) (*Route, error) {
	pl := b.pool.Get()
	defer b.pool.Put(pl)
	res, err := pl.Route(a)
	if err != nil {
		return nil, err
	}
	n, m := b.n, b.m
	cols := make([]fabric.Column, 0, 2*m*(m-1)+1)
	pi := 0
	level := 0
	for size := n; size > 2; size /= 2 {
		level++
		for _, kind := range []fabric.ColumnKind{fabric.ColScatter, fabric.ColQuasisort} {
			p := res.Passes[pi]
			pi++
			for j := 0; j < m; j++ {
				cols = append(cols, fabric.Column{
					Kind:      kind,
					Level:     level,
					BlockSize: 1 << (j + 1),
					Settings:  append([]swbox.Setting(nil), p.Stages[j]...),
				})
			}
		}
		cols[len(cols)-1].AdvanceAfter = true
	}
	fp := res.Passes[len(res.Passes)-1]
	cols = append(cols, fabric.Column{
		Kind:      fabric.ColDeliver,
		Level:     level + 1,
		BlockSize: 2,
		Settings:  append([]swbox.Setting(nil), fp.Stages[0]...),
	})
	return &Route{
		Backend:    TierFeedback,
		Columns:    cols,
		Passes:     res.NumPasses(),
		Deliveries: deliverySources(res.Deliveries),
	}, nil
}
