package backend

import (
	"fmt"

	"brsmn/internal/cost"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/permnet"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/swbox"
)

// PermNet is the Cheng & Chen unicast permutation network behind the
// Backend interface. A multicast assignment is decomposed into unicast
// passes: pass p routes every input to its p-th destination, which is a
// valid partial permutation because destination sets are pairwise
// disjoint. A group with fanout f therefore costs f injection passes on
// half the BRSMN's hardware — the winning trade only for tiny groups,
// which is the only place the selector sends traffic here.
type PermNet struct {
	n   int
	m   int
	eng rbn.Engine
}

// NewPermNet returns the permutation-network backend for an n x n
// network.
func NewPermNet(n int, eng rbn.Engine) (*PermNet, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("backend: network size %d is not a power of two >= 2", n)
	}
	return &PermNet{n: n, m: shuffle.Log2(n), eng: eng}, nil
}

// Name implements Backend.
func (b *PermNet) Name() string { return TierPermNet.String() }

// Tier implements Backend.
func (b *PermNet) Tier() Tier { return TierPermNet }

// CanPatch implements Backend.
func (b *PermNet) CanPatch() bool { return false }

// Cost implements Backend: the row of one unicast pass.
func (b *PermNet) Cost() cost.Row { return cost.PermNet(b.n) }

// Route implements Backend. Each pass contributes the quasisort columns
// of its log2(n) levels — level k touches only stages [0, log2(n/2^k))
// of its blocks, so the identity stages above are elided and a pass
// spans cost.PermNet(n).Depth columns. Passes re-inject the sources
// (Columns is not one fabric.Run program); a pass boundary is where
// Level restarts at 1.
func (b *PermNet) Route(a mcast.Assignment) (*Route, error) {
	n := b.n
	if a.N != n {
		return nil, fmt.Errorf("backend: assignment for %d inputs on a %d x %d network", a.N, n, n)
	}
	owner := make([]int, n)
	if err := a.OwnerInto(owner); err != nil {
		return nil, err
	}
	passes := 0
	for _, ds := range a.Dests {
		if len(ds) > passes {
			passes = len(ds)
		}
	}
	deliveries := make([]int, n)
	for i := range deliveries {
		deliveries[i] = -1
	}
	var cols []fabric.Column
	perm := make([]int, n)
	for p := 0; p < passes; p++ {
		for i, ds := range a.Dests {
			if p < len(ds) {
				perm[i] = ds[p]
			} else {
				perm[i] = -1
			}
		}
		res, err := permnet.Route(perm, b.eng)
		if err != nil {
			return nil, fmt.Errorf("backend: permnet pass %d: %w", p, err)
		}
		for k, lp := range res.Levels {
			stages := b.m - k // log2 of the level's block size
			for j := 0; j < stages; j++ {
				cols = append(cols, fabric.Column{
					Kind:      fabric.ColQuasisort,
					Level:     k + 1,
					BlockSize: 1 << (j + 1),
					Settings:  append([]swbox.Setting(nil), lp.Stages[j]...),
				})
			}
		}
		for d, src := range res.OutSource {
			if src >= 0 {
				deliveries[d] = src
			}
		}
	}
	for d, want := range owner {
		if deliveries[d] != want {
			return nil, fmt.Errorf("backend: permnet output %d received source %d, want %d", d, deliveries[d], want)
		}
	}
	return &Route{
		Backend:    TierPermNet,
		Columns:    cols,
		Passes:     passes,
		Deliveries: deliveries,
	}, nil
}
