package backend

// SelectorConfig sets the tiering policy thresholds. The zero value of
// any field means its default; DefaultSelectorConfig lists them.
type SelectorConfig struct {
	// TinyMaxFanout is the largest fanout served by the permutation
	// network: a group this small costs at most TinyMaxFanout unicast
	// passes on half the hardware.
	TinyMaxFanout int `json:"tinyMaxFanout"`
	// LargeMinSize is the smallest member count eligible for the
	// feedback tier — below it the amortization never beats the
	// unrolled network's single pass.
	LargeMinSize int `json:"largeMinSize"`
	// ChurnMax is the highest membership-churn EWMA (changes observed
	// per selector observation) a feedback-tier group may sustain;
	// churnier groups stay on the patchable BRSMN.
	ChurnMax float64 `json:"churnMax"`
	// ChurnAlpha is the EWMA smoothing factor for churn observations.
	ChurnAlpha float64 `json:"churnAlpha"`
	// HitMin is the minimum plan-cache hit ratio a group must hold
	// (once HitSamples lookups are recorded) to stay feedback-eligible:
	// a group whose plans keep missing cache is replanning too often to
	// amortize multi-pass planning.
	HitMin float64 `json:"hitMin"`
	// HitSamples is how many cache lookups must be recorded before the
	// hit profile gates feedback eligibility.
	HitSamples int `json:"hitSamples"`
	// Hysteresis is how many consecutive observations must agree on a
	// different tier before the group transitions — the anti-flap band.
	Hysteresis int `json:"hysteresis"`
}

// DefaultSelectorConfig returns the default thresholds.
func DefaultSelectorConfig() SelectorConfig {
	return SelectorConfig{
		TinyMaxFanout: 2,
		LargeMinSize:  64,
		ChurnMax:      0.25,
		ChurnAlpha:    0.3,
		HitMin:        0.5,
		HitSamples:    8,
		Hysteresis:    3,
	}
}

// withDefaults fills zero fields from DefaultSelectorConfig.
func (c SelectorConfig) withDefaults() SelectorConfig {
	d := DefaultSelectorConfig()
	if c.TinyMaxFanout <= 0 {
		c.TinyMaxFanout = d.TinyMaxFanout
	}
	if c.LargeMinSize <= 0 {
		c.LargeMinSize = d.LargeMinSize
	}
	if c.ChurnMax <= 0 {
		c.ChurnMax = d.ChurnMax
	}
	if c.ChurnAlpha <= 0 || c.ChurnAlpha > 1 {
		c.ChurnAlpha = d.ChurnAlpha
	}
	if c.HitMin <= 0 {
		c.HitMin = d.HitMin
	}
	if c.HitSamples <= 0 {
		c.HitSamples = d.HitSamples
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = d.Hysteresis
	}
	return c
}

// GroupState is the per-group tiering state the selector reads and
// writes: the resolved serving tier, the requested preference, the
// churn EWMA fed from the group's generation counter, the plan-cache
// hit profile, and the hysteresis ladder. Callers serialize access (the
// group manager holds its session lock).
type GroupState struct {
	// Tier is the tier the group is currently served on (never
	// TierAuto).
	Tier Tier
	// Pref is the requested preference; TierAuto delegates to the
	// selector, anything else pins Tier.
	Pref Tier

	cand         Tier
	streak       int
	churn        float64
	lastGen      uint64
	hits, misses uint64
}

// Churn returns the group's membership-churn EWMA.
func (st *GroupState) Churn() float64 { return st.churn }

// HitRatio returns the group's observed plan-cache hit ratio and
// whether enough lookups were recorded for it to mean anything.
func (st *GroupState) HitRatio() (float64, int) {
	total := st.hits + st.misses
	if total == 0 {
		return 0, 0
	}
	return float64(st.hits) / float64(total), int(total)
}

// Selector tiers groups across backends from observed workload. It is
// stateless between calls — all per-group state lives in GroupState —
// and therefore safe for concurrent use on distinct states.
type Selector struct {
	cfg SelectorConfig
}

// NewSelector returns a selector with the given thresholds (zero fields
// defaulted).
func NewSelector(cfg SelectorConfig) *Selector {
	return &Selector{cfg: cfg.withDefaults()}
}

// Config returns the selector's effective thresholds.
func (s *Selector) Config() SelectorConfig { return s.cfg }

// Init resolves a group's initial tier: a concrete preference pins it,
// TierAuto decides immediately from size alone (no history exists yet,
// so no hysteresis applies).
func (s *Selector) Init(st *GroupState, pref Tier, size int, gen uint64) {
	*st = GroupState{Pref: pref, lastGen: gen}
	if pref != TierAuto {
		st.Tier = pref
	} else {
		st.Tier = s.decide(st, size)
	}
	st.cand = st.Tier
}

// SetPref changes the group's preference. A concrete preference takes
// effect immediately; switching back to TierAuto keeps the current tier
// and lets subsequent observations move it. It reports whether the
// serving tier changed.
func (s *Selector) SetPref(st *GroupState, pref Tier) bool {
	st.Pref = pref
	st.cand, st.streak = st.Tier, 0
	if pref != TierAuto && pref != st.Tier {
		st.Tier = pref
		st.cand = pref
		st.hits, st.misses = 0, 0
		return true
	}
	return false
}

// RecordLookup feeds one plan-cache lookup into the group's hit
// profile.
func (s *Selector) RecordLookup(st *GroupState, hit bool) {
	if hit {
		st.hits++
	} else {
		st.misses++
	}
}

// Observe updates the churn EWMA from the group's generation counter
// (gen increments once per membership change) and, for auto groups,
// re-decides the tier: the decision must agree for cfg.Hysteresis
// consecutive observations before the group transitions. It reports
// whether the serving tier changed.
func (s *Selector) Observe(st *GroupState, size int, gen uint64) bool {
	delta := float64(0)
	if gen > st.lastGen {
		delta = float64(gen - st.lastGen)
	}
	st.lastGen = gen
	st.churn = s.cfg.ChurnAlpha*delta + (1-s.cfg.ChurnAlpha)*st.churn
	if st.Pref != TierAuto {
		return false
	}
	d := s.decide(st, size)
	if d == st.Tier {
		st.cand, st.streak = st.Tier, 0
		return false
	}
	if d == st.cand {
		st.streak++
	} else {
		st.cand, st.streak = d, 1
	}
	if st.streak < s.cfg.Hysteresis {
		return false
	}
	st.Tier = d
	st.cand, st.streak = d, 0
	st.hits, st.misses = 0, 0
	return true
}

// decide is the instantaneous (hysteresis-free) policy: tiny fanouts
// ride the permutation network, large stable well-cached groups the
// feedback network, everything else — and everything churny — the full
// patchable BRSMN.
func (s *Selector) decide(st *GroupState, size int) Tier {
	if size <= s.cfg.TinyMaxFanout {
		return TierPermNet
	}
	if size >= s.cfg.LargeMinSize && st.churn <= s.cfg.ChurnMax && s.hitOK(st) {
		return TierFeedback
	}
	return TierBRSMN
}

// hitOK gates feedback eligibility on the plan-cache hit profile once
// enough lookups are recorded.
func (s *Selector) hitOK(st *GroupState) bool {
	total := st.hits + st.misses
	if total < uint64(s.cfg.HitSamples) {
		return true
	}
	return float64(st.hits)/float64(total) >= s.cfg.HitMin
}
