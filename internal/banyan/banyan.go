// Package banyan implements an omega (shuffle-exchange banyan) network
// with the boolean interval-splitting broadcast routing of Lee's
// nonblocking copy network [Lee 1988, reference 6 of Yang & Wang]. Each
// cell carries a contiguous address interval [Lo, Hi]; at stage k a
// switch compares bit k (most significant first) of the two endpoints —
// equal bits route the cell on, unequal bits split the interval and the
// cell, so a cell fans out to exactly Hi-Lo+1 outputs.
//
// The network is internally nonblocking when the active cells are
// concentrated (no idle input between two active ones) and their
// intervals are monotone increasing — the condition the copy network's
// running-adder stage establishes. Route reports an error if two cells
// ever contend for a switch output, so callers can rely on silence.
package banyan

import (
	"fmt"

	"brsmn/internal/shuffle"
)

// Cell is a broadcast cell: an address interval and an opaque payload.
// Index is the offset of this copy within its multicast (copy Lo-lo0 of
// the original interval), maintained by the splitting rule.
type Cell[T any] struct {
	Lo, Hi  int
	Payload T
	// Index is the rank of Cell.Lo within the original interval: the
	// copy that exits at output Lo is copy number Index of its source.
	Index int
}

// Idle reports whether the cell slot is empty (Hi < Lo).
func (c Cell[T]) Idle() bool { return c.Hi < c.Lo }

// IdleCell returns an empty slot.
func IdleCell[T any]() Cell[T] { return Cell[T]{Lo: 0, Hi: -1} }

// Route drives n cells through an n x n broadcast banyan. The result has
// one cell per output: output p receives the copy of the unique input
// cell whose interval contains p. Contention (two cells at one switch
// requesting the same output port) is reported as an error.
func Route[T any](in []Cell[T]) ([]Cell[T], error) {
	n := len(in)
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("banyan: size %d is not a power of two >= 2", n)
	}
	m := shuffle.Log2(n)
	for i, c := range in {
		if !c.Idle() && (c.Lo < 0 || c.Hi >= n) {
			return nil, fmt.Errorf("banyan: input %d interval [%d,%d] out of range", i, c.Lo, c.Hi)
		}
	}
	cur := append([]Cell[T](nil), in...)
	for k := 0; k < m; k++ {
		// Omega stage: perfect-shuffle the positions, then exchange by
		// bit k (MSB first) of the interval endpoints.
		shuffled := make([]Cell[T], n)
		for x, c := range cur {
			shuffled[shuffle.Shuffle(n, x)] = c
		}
		next := make([]Cell[T], n)
		for i := range next {
			next[i] = IdleCell[T]()
		}
		bit := m - 1 - k
		for sw := 0; sw < n/2; sw++ {
			var port [2]Cell[T]
			port[0], port[1] = IdleCell[T](), IdleCell[T]()
			claim := func(b int, c Cell[T]) error {
				if !port[b].Idle() {
					return fmt.Errorf("banyan: stage %d switch %d: output %d claimed twice (intervals [%d,%d] and [%d,%d])",
						k, sw, b, port[b].Lo, port[b].Hi, c.Lo, c.Hi)
				}
				port[b] = c
				return nil
			}
			for _, c := range []Cell[T]{shuffled[2*sw], shuffled[2*sw+1]} {
				if c.Idle() {
					continue
				}
				bLo := c.Lo >> bit & 1
				bHi := c.Hi >> bit & 1
				switch {
				case bLo == bHi:
					if err := claim(bLo, c); err != nil {
						return nil, err
					}
				default:
					// Split: [Lo, ...0111] and [...1000, Hi].
					mask := 1<<bit - 1
					upper := c
					upper.Hi = c.Lo | mask
					lower := c
					lower.Lo = (c.Hi >> bit << bit)
					lower.Index = c.Index + (lower.Lo - c.Lo)
					if err := claim(0, upper); err != nil {
						return nil, err
					}
					if err := claim(1, lower); err != nil {
						return nil, err
					}
				}
			}
			next[2*sw], next[2*sw+1] = port[0], port[1]
		}
		cur = next
	}
	// Every surviving cell is now a single-address copy at its address.
	for p, c := range cur {
		if c.Idle() {
			continue
		}
		if c.Lo != c.Hi || c.Lo != p {
			return nil, fmt.Errorf("banyan: output %d holds interval [%d,%d]", p, c.Lo, c.Hi)
		}
	}
	return cur, nil
}

// Switches returns the hardware cost: (n/2) log2(n) switches.
func Switches(n int) int { return n / 2 * shuffle.Log2(n) }

// Depth returns the number of switch stages, log2(n).
func Depth(n int) int { return shuffle.Log2(n) }
