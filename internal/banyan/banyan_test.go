package banyan

import (
	"math/rand"
	"testing"
)

// buildCells assigns contiguous monotone intervals to the first k
// positions with the given fanouts (the copy network's post-running-adder
// shape).
func buildCells(n int, fanouts []int) []Cell[int] {
	cells := make([]Cell[int], n)
	for i := range cells {
		cells[i] = IdleCell[int]()
	}
	lo := 0
	for p, f := range fanouts {
		if f == 0 {
			continue
		}
		cells[p] = Cell[int]{Lo: lo, Hi: lo + f - 1, Payload: p}
		lo += f
	}
	return cells
}

// checkRoute verifies every address in every interval receives exactly
// its source's copy with the right index.
func checkRoute(t *testing.T, n int, fanouts []int) {
	t.Helper()
	cells := buildCells(n, fanouts)
	out, err := Route(cells)
	if err != nil {
		t.Fatalf("n=%d fanouts=%v: %v", n, fanouts, err)
	}
	for p, c := range cells {
		if c.Idle() {
			continue
		}
		for d := c.Lo; d <= c.Hi; d++ {
			got := out[d]
			if got.Idle() || got.Payload != p {
				t.Fatalf("n=%d fanouts=%v: output %d should carry input %d's copy, has %+v", n, fanouts, d, p, got)
			}
			if got.Index != d-c.Lo {
				t.Fatalf("n=%d fanouts=%v: output %d copy index %d, want %d", n, fanouts, d, got.Index, d-c.Lo)
			}
		}
	}
}

// TestSingleBroadcast fans one cell out to all n outputs.
func TestSingleBroadcast(t *testing.T) {
	for _, n := range []int{2, 4, 16, 256} {
		checkRoute(t, n, []int{n})
	}
}

// TestUnicastFull routes n unicast cells.
func TestUnicastFull(t *testing.T) {
	for _, n := range []int{2, 8, 64} {
		fan := make([]int, n)
		for i := range fan {
			fan[i] = 1
		}
		checkRoute(t, n, fan)
	}
}

// TestExhaustiveFanoutsN8 checks every fanout composition of total <= 8
// over concentrated cells.
func TestExhaustiveFanoutsN8(t *testing.T) {
	n := 8
	var fan []int
	var rec func(remaining int)
	rec = func(remaining int) {
		checkRoute(t, n, fan)
		if remaining == 0 || len(fan) == n {
			return
		}
		for f := 1; f <= remaining; f++ {
			fan = append(fan, f)
			rec(remaining - f)
			fan = fan[:len(fan)-1]
		}
	}
	rec(n)
}

// TestRandomLarge checks random compositions at larger sizes.
func TestRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{32, 128, 1024} {
		for trial := 0; trial < 10; trial++ {
			var fan []int
			left := rng.Intn(n + 1)
			for left > 0 {
				f := 1 + rng.Intn(left)
				fan = append(fan, f)
				left -= f
			}
			checkRoute(t, n, fan)
		}
	}
}

// TestRejectsBadInput checks validation.
func TestRejectsBadInput(t *testing.T) {
	if _, err := Route([]Cell[int]{{Lo: 0, Hi: 0}}); err == nil {
		t.Error("accepted n=1")
	}
	cells := make([]Cell[int], 4)
	for i := range cells {
		cells[i] = IdleCell[int]()
	}
	cells[0] = Cell[int]{Lo: 2, Hi: 5}
	if _, err := Route(cells); err == nil {
		t.Error("accepted out-of-range interval")
	}
	// Non-monotone intervals contend.
	cells[0] = Cell[int]{Lo: 2, Hi: 3}
	cells[1] = Cell[int]{Lo: 2, Hi: 3}
	if _, err := Route(cells); err == nil {
		t.Error("accepted overlapping intervals")
	}
}

// TestCostFormulas pins the banyan hardware counts.
func TestCostFormulas(t *testing.T) {
	if Switches(8) != 12 || Depth(8) != 3 {
		t.Errorf("n=8: %d switches depth %d", Switches(8), Depth(8))
	}
}
