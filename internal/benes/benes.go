// Package benes implements the Benes rearrangeable permutation network
// and its classical centralized looping routing algorithm. It is the
// unicast distribution substrate of the copy-network multicast baseline
// (package copynet) and the routing-time foil for the paper's comparison:
// the looping algorithm is inherently sequential — O(n log n) work that
// cannot be pipelined per stage — whereas the BRSMN's distributed setting
// sweeps finish in O(log^2 n) gate delays.
//
// An n x n Benes network (n = 2^m) is an input column of n/2 switches,
// two n/2 x n/2 Benes subnetworks, and an output column of n/2 switches;
// the base case n = 2 is a single switch. Total: n/2 * (2 log2 n - 1)
// switches in 2 log2 n - 1 columns.
package benes

import (
	"fmt"

	"brsmn/internal/shuffle"
)

// Plan is a routed Benes configuration in its recursive form: In and Out
// are the cross flags of the input and output columns, Top and Bot the
// subnetwork plans. For n = 2, In holds the single switch and Out, Top,
// Bot are unset.
type Plan struct {
	N        int
	In, Out  []bool
	Top, Bot *Plan
}

// Switches returns the number of 2x2 switches of an n x n Benes network.
func Switches(n int) int { return n / 2 * (2*shuffle.Log2(n) - 1) }

// Depth returns the number of switch columns, 2 log2(n) - 1.
func Depth(n int) int { return 2*shuffle.Log2(n) - 1 }

// RoutePermutation computes switch settings realizing a (partial)
// permutation: perm[i] is the destination of input i, or negative if
// input i is idle. It runs the looping algorithm at every recursion
// level: the pairing constraints between input-switch mates and
// output-switch mates form a graph of paths and even cycles, which is
// 2-colored to split the traffic across the two subnetworks.
func RoutePermutation(perm []int) (*Plan, error) {
	n := len(perm)
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("benes: size %d is not a power of two >= 2", n)
	}
	seen := make([]bool, n)
	for i, d := range perm {
		if d < 0 {
			continue
		}
		if d >= n {
			return nil, fmt.Errorf("benes: input %d has destination %d out of range", i, d)
		}
		if seen[d] {
			return nil, fmt.Errorf("benes: destination %d assigned twice", d)
		}
		seen[d] = true
	}
	return route(perm), nil
}

// route is the recursive looping step; perm is a validated partial
// permutation.
func route(perm []int) *Plan {
	n := len(perm)
	p := &Plan{N: n}
	if n == 2 {
		p.In = []bool{perm[0] == 1 || perm[1] == 0}
		return p
	}

	// src[d] is the input delivering to output d, or -1.
	src := make([]int, n)
	for i := range src {
		src[i] = -1
	}
	for i, d := range perm {
		if d >= 0 {
			src[d] = i
		}
	}

	// 2-color the constraint graph over inputs: color[i] is the
	// subnetwork (0 top, 1 bottom) carrying input i's connection.
	// Edges: {i, i^1} must differ (input switch), and {src[d], src[d^1]}
	// must differ (output switch). Each vertex has degree <= 2, so the
	// graph is a disjoint union of paths and even cycles: BFS coloring
	// is the looping algorithm.
	color := make([]int8, n)
	for i := range color {
		color[i] = -1
	}
	var stack []int
	for start := 0; start < n; start++ {
		if color[start] != -1 {
			continue
		}
		color[start] = 0
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c := color[i]
			// Input-switch mate.
			if mate := i ^ 1; color[mate] == -1 {
				color[mate] = 1 - c
				stack = append(stack, mate)
			}
			// Output-switch mate of i's destination.
			if d := perm[i]; d >= 0 {
				if s := src[d^1]; s >= 0 && color[s] == -1 {
					color[s] = 1 - c
					stack = append(stack, s)
				}
			}
		}
	}

	// Build the column settings and the subpermutations. Input switch k:
	// cross iff its upper input (2k) goes to the bottom subnetwork.
	p.In = make([]bool, n/2)
	p.Out = make([]bool, n/2)
	top := make([]int, n/2)
	bot := make([]int, n/2)
	for i := range top {
		top[i] = -1
		bot[i] = -1
	}
	for i, d := range perm {
		if d < 0 {
			continue
		}
		if color[i] == 0 {
			top[i/2] = d / 2
		} else {
			bot[i/2] = d / 2
		}
	}
	for k := 0; k < n/2; k++ {
		p.In[k] = color[2*k] == 1
	}
	for j := 0; j < n/2; j++ {
		// Output switch j: cross iff output 2j is served by the bottom
		// subnetwork.
		if s := src[2*j]; s >= 0 {
			p.Out[j] = color[s] == 1
		} else if s := src[2*j+1]; s >= 0 {
			p.Out[j] = color[s] == 0
		}
	}
	p.Top = route(top)
	p.Bot = route(bot)
	return p
}

// Apply routes a vector of items through the planned network. Items on
// idle inputs travel wherever the (arbitrary) idle switch settings send
// them; callers track live traffic by content.
func Apply[T any](p *Plan, in []T) ([]T, error) {
	if len(in) != p.N {
		return nil, fmt.Errorf("benes: %d inputs for a %d x %d network", len(in), p.N, p.N)
	}
	if p.N == 2 {
		out := make([]T, 2)
		if p.In[0] {
			out[0], out[1] = in[1], in[0]
		} else {
			out[0], out[1] = in[0], in[1]
		}
		return out, nil
	}
	h := p.N / 2
	top := make([]T, h)
	bot := make([]T, h)
	for k := 0; k < h; k++ {
		a, b := in[2*k], in[2*k+1]
		if p.In[k] {
			a, b = b, a
		}
		top[k], bot[k] = a, b
	}
	topOut, err := Apply(p.Top, top)
	if err != nil {
		return nil, err
	}
	botOut, err := Apply(p.Bot, bot)
	if err != nil {
		return nil, err
	}
	out := make([]T, p.N)
	for j := 0; j < h; j++ {
		a, b := topOut[j], botOut[j]
		if p.Out[j] {
			a, b = b, a
		}
		out[2*j], out[2*j+1] = a, b
	}
	return out, nil
}

// Route computes a plan and applies it to the identity payload vector,
// returning out[d] = source input for each destination (or a stale value
// on idle outputs; use the permutation to know which outputs are live).
func Route(perm []int) (*Plan, []int, error) {
	p, err := RoutePermutation(perm)
	if err != nil {
		return nil, nil, err
	}
	ids := make([]int, len(perm))
	for i := range ids {
		ids[i] = i
	}
	out, err := Apply(p, ids)
	if err != nil {
		return nil, nil, err
	}
	return p, out, nil
}
