package benes

import (
	"math/rand"
	"testing"
)

// checkPerm routes a partial permutation and verifies every live
// destination receives its source.
func checkPerm(t *testing.T, perm []int) {
	t.Helper()
	_, out, err := Route(perm)
	if err != nil {
		t.Fatalf("Route(%v): %v", perm, err)
	}
	for i, d := range perm {
		if d < 0 {
			continue
		}
		if out[d] != i {
			t.Fatalf("perm %v: output %d received %d, want %d (outputs %v)", perm, d, out[d], i, out)
		}
	}
}

// TestExhaustiveN4 routes every full permutation of 4 elements.
func TestExhaustiveN4(t *testing.T) {
	perm := []int{0, 1, 2, 3}
	var rec func(k int)
	rec = func(k int) {
		if k == 4 {
			checkPerm(t, perm)
			return
		}
		for i := k; i < 4; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
}

// TestExhaustivePartialN4 routes every partial permutation vector of 4
// elements (destinations in {-1, 0..3}, distinct when set).
func TestExhaustivePartialN4(t *testing.T) {
	var perm [4]int
	var rec func(i int)
	rec = func(i int) {
		if i == 4 {
			used := map[int]bool{}
			for _, d := range perm {
				if d >= 0 {
					if used[d] {
						return
					}
					used[d] = true
				}
			}
			checkPerm(t, perm[:])
			return
		}
		for d := -1; d < 4; d++ {
			perm[i] = d
			rec(i + 1)
		}
	}
	rec(0)
}

// TestRandomLarge routes random full and partial permutations at larger
// sizes.
func TestRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, n := range []int{2, 8, 64, 256, 1024} {
		for trial := 0; trial < 10; trial++ {
			perm := rng.Perm(n)
			checkPerm(t, perm)
			for i := range perm {
				if rng.Intn(2) == 0 {
					perm[i] = -1
				}
			}
			checkPerm(t, perm)
		}
	}
}

// TestIdentityAndReversal pins two structured permutations.
func TestIdentityAndReversal(t *testing.T) {
	n := 64
	id := make([]int, n)
	rev := make([]int, n)
	for i := range id {
		id[i] = i
		rev[i] = n - 1 - i
	}
	checkPerm(t, id)
	checkPerm(t, rev)
}

// TestValidation checks error paths.
func TestValidation(t *testing.T) {
	if _, err := RoutePermutation([]int{0, 1, 2}); err == nil {
		t.Error("accepted non-power-of-two size")
	}
	if _, err := RoutePermutation([]int{0, 0}); err == nil {
		t.Error("accepted duplicate destination")
	}
	if _, err := RoutePermutation([]int{0, 5}); err == nil {
		t.Error("accepted out-of-range destination")
	}
	p, err := RoutePermutation([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(p, []int{1}); err == nil {
		t.Error("Apply accepted wrong input width")
	}
}

// TestCostFormulas checks the switch and depth counts.
func TestCostFormulas(t *testing.T) {
	if Switches(2) != 1 || Depth(2) != 1 {
		t.Error("n=2 counts wrong")
	}
	if Switches(8) != 4*5 || Depth(8) != 5 {
		t.Errorf("n=8 counts wrong: %d switches, depth %d", Switches(8), Depth(8))
	}
}
