// Package bitonic implements Batcher's bitonic sorting network — the
// classical self-routing alternative to the paper's quasisorting reverse
// banyan network. A bitonic sorter needs no setting computation at all
// (each comparator steers by comparing keys locally) but costs
// Θ(n log^2 n) comparators at Θ(log^2 n) depth, whereas the RBN
// quasisort costs (n/2) log n switches at log n depth and needs only the
// O(log n)-delay ε-divide + bit-sort sweeps. The ablation benchmarks
// quantify that trade; this package also provides, via Concentrate, the
// sorting-based concentrator a Batcher-banyan style switch would use.
package bitonic

import (
	"fmt"

	"brsmn/internal/shuffle"
)

// Stats counts the hardware exercised by one sort.
type Stats struct {
	Comparators int
	Depth       int
}

// Switches returns the comparator count of an n-input bitonic sorter:
// (n/4)·log2(n)·(log2(n)+1).
func Switches(n int) int {
	m := shuffle.Log2(n)
	return n * m * (m + 1) / 4
}

// Depth returns the comparator-column depth: log2(n)·(log2(n)+1)/2.
func Depth(n int) int {
	m := shuffle.Log2(n)
	return m * (m + 1) / 2
}

// Sort sorts items ascending by key using the iterative Batcher bitonic
// network; it returns the sorted items plus the hardware stats of the
// network it exercised. Keys must be comparable with <; ties keep no
// particular order (bitonic sorting is not stable). The item count must
// be a power of two.
func Sort[T any](items []T, key func(T) int) ([]T, Stats, error) {
	n := len(items)
	if !shuffle.IsPow2(n) || n < 1 {
		return nil, Stats{}, fmt.Errorf("bitonic: size %d is not a power of two >= 1", n)
	}
	out := append([]T(nil), items...)
	st := Stats{}
	if n == 1 {
		return out, st, nil
	}
	// Standard iterative form: stage k builds bitonic runs of length 2k;
	// substage j performs compare-exchange at distance j.
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j >= 1; j /= 2 {
			st.Depth++
			for i := 0; i < n; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				st.Comparators++
				ascending := i&k == 0
				if (key(out[i]) > key(out[l])) == ascending {
					out[i], out[l] = out[l], out[i]
				}
			}
		}
	}
	return out, st, nil
}

// SortInts sorts a plain int slice, for tests and quick use.
func SortInts(xs []int) ([]int, Stats, error) {
	return Sort(xs, func(x int) int { return x })
}

// Concentrate routes the active items (active(x) true) to the lowest
// positions, preserving nothing about order (a concentrator, the
// building block the Nassimi–Sahni family uses): it sorts by the
// inactive flag. It returns the concentrated vector and the number of
// active items.
func Concentrate[T any](items []T, active func(T) bool) ([]T, int, Stats, error) {
	count := 0
	for _, x := range items {
		if active(x) {
			count++
		}
	}
	out, st, err := Sort(items, func(x T) int {
		if active(x) {
			return 0
		}
		return 1
	})
	return out, count, st, err
}

// Quasisort reproduces the quasisorting contract of the paper's
// Section 5.2 with a bitonic sorter instead of an RBN: items with bit 0
// end in the upper half, bit 1 in the lower half, idle items (bit < 0)
// fill the gaps. It requires at most n/2 zeros and at most n/2 ones.
func Quasisort[T any](items []T, bit func(T) int) ([]T, Stats, error) {
	n := len(items)
	n0, n1 := 0, 0
	for _, x := range items {
		switch bit(x) {
		case 0:
			n0++
		case 1:
			n1++
		}
	}
	if n0 > n/2 || n1 > n/2 {
		return nil, Stats{}, fmt.Errorf("bitonic: %d zeros and %d ones exceed n/2 = %d", n0, n1, n/2)
	}
	// Key: zeros first, idles in the middle, ones last — a sorted order
	// realizing the quasisort contract directly.
	return Sort(items, func(x T) int {
		switch bit(x) {
		case 0:
			return 0
		case 1:
			return 2
		default:
			return 1
		}
	})
}
