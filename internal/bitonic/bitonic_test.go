package bitonic

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"brsmn/internal/tag"
)

// TestSortAgainstStdlib property-tests the network against sort.Ints.
func TestSortAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 1024} {
		for trial := 0; trial < 10; trial++ {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = rng.Intn(50)
			}
			got, st, err := SortInts(xs)
			if err != nil {
				t.Fatal(err)
			}
			want := append([]int(nil), xs...)
			sort.Ints(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d: sorted %v, want %v", n, got, want)
				}
			}
			if n > 1 {
				if st.Comparators != Switches(n) {
					t.Fatalf("n=%d: %d comparators, closed form %d", n, st.Comparators, Switches(n))
				}
				if st.Depth != Depth(n) {
					t.Fatalf("n=%d: depth %d, closed form %d", n, st.Depth, Depth(n))
				}
			}
		}
	}
}

// TestSortQuick checks sortedness and permutation property via
// testing/quick.
func TestSortQuick(t *testing.T) {
	f := func(raw [16]uint8) bool {
		xs := make([]int, 16)
		for i, v := range raw {
			xs[i] = int(v)
		}
		got, _, err := SortInts(xs)
		if err != nil {
			return false
		}
		counts := map[int]int{}
		for _, v := range xs {
			counts[v]++
		}
		prev := -1
		for _, v := range got {
			if v < prev {
				return false
			}
			prev = v
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestConcentrate checks actives pack to the front.
func TestConcentrate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 16, 256} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(2) * (1 + rng.Intn(9)) // 0 = inactive
		}
		out, count, _, err := Concentrate(xs, func(x int) bool { return x != 0 })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if (i < count) != (v != 0) {
				t.Fatalf("n=%d: position %d holds %d with count %d (%v)", n, i, v, count, out)
			}
		}
	}
}

// TestQuasisortContract checks the Section 5.2 contract against the
// RBN-based quasisort's: real 0s upper half, real 1s lower half.
func TestQuasisortContract(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 16, 128} {
		for trial := 0; trial < 20; trial++ {
			tags := make([]tag.Value, n)
			for i := range tags {
				tags[i] = tag.Eps
			}
			n0 := rng.Intn(n/2 + 1)
			n1 := rng.Intn(n/2 + 1)
			perm := rng.Perm(n)
			for i := 0; i < n0; i++ {
				tags[perm[i]] = tag.V0
			}
			for i := 0; i < n1; i++ {
				tags[perm[n/2+i]] = tag.V1
			}
			out, _, err := Quasisort(tags, func(v tag.Value) int {
				switch v {
				case tag.V0:
					return 0
				case tag.V1:
					return 1
				}
				return -1
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v == tag.V0 && i >= n/2 {
					t.Fatalf("n=%d: 0 at lower-half position %d (%v)", n, i, out)
				}
				if v == tag.V1 && i < n/2 {
					t.Fatalf("n=%d: 1 at upper-half position %d (%v)", n, i, out)
				}
			}
		}
	}
	// Overload is rejected.
	if _, _, err := Quasisort([]tag.Value{tag.V0, tag.V0, tag.V0, tag.Eps}, func(v tag.Value) int {
		if v == tag.V0 {
			return 0
		}
		return -1
	}); err == nil {
		t.Error("Quasisort accepted 3 zeros in 4 slots")
	}
}

// TestCostComparisonWithRBN pins the ablation arithmetic: the bitonic
// quasisort costs a (log n + 1)/2 factor more comparators than the RBN
// quasisort's switches.
func TestCostComparisonWithRBN(t *testing.T) {
	for _, n := range []int{16, 256, 4096} {
		bit := Switches(n)
		rbnSw := n / 2 * log2(n)
		// bit / rbnSw = (log n + 1) / 2.
		if bit*2 != rbnSw*(log2(n)+1) {
			t.Errorf("n=%d: bitonic %d vs RBN %d: ratio mismatch", n, bit, rbnSw)
		}
	}
}

func log2(n int) int {
	m := 0
	for v := n; v > 1; v >>= 1 {
		m++
	}
	return m
}

// TestSortErrors checks validation.
func TestSortErrors(t *testing.T) {
	if _, _, err := SortInts(make([]int, 3)); err == nil {
		t.Error("accepted non-power-of-two size")
	}
	if _, _, err := SortInts(nil); err == nil {
		t.Error("accepted empty input")
	}
}
