// Package bsn implements the binary splitting network (BSN) of Yang &
// Wang (Sections 3 and 5): the level building block of the BRSMN. An
// n x n BSN is a scatter network followed by a quasisorting network, both
// reverse banyan networks. Fed with one routing-tag per input (the current
// level's tag: 0, 1, α or ε), it
//
//  1. splits every α connection into a 0-copy and a 1-copy by pairing the
//     α with an idle ε input at a broadcast switch (scatter, Theorem 2),
//  2. routes every 0-tagged connection to the upper half of its outputs
//     and every 1-tagged connection to the lower half (quasisort,
//     Section 5.2),
//
// so the two halves can be handed to two independent half-size networks.
package bsn

import (
	"fmt"

	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/tag"
)

// Cell is the content of one network link: an idle placeholder or a
// (possibly split) multicast connection. Tag is the connection's tag for
// the current level; Seq is its remaining routing-tag sequence, whose
// head equals Tag for a cell entering a BSN. Payload travels untouched.
type Cell struct {
	Tag     tag.Value
	Source  int
	Seq     []tag.Value
	Payload any
}

// Idle returns an idle cell.
func Idle() Cell { return Cell{Tag: tag.Eps, Source: -1} }

// IsIdle reports whether the cell carries no connection.
func (c Cell) IsIdle() bool { return !c.Tag.CarriesMessage() }

// SplitCell is the broadcast transformation: the α connection is
// duplicated, the copy emerging on the switch's upper output tagged 0 and
// the lower copy tagged 1 (Fig. 3c/3d). Both copies keep the full
// remaining sequence; Advance later selects each copy's half.
func SplitCell(c Cell) (Cell, Cell) {
	up, low := c, c
	up.Tag = tag.V0
	low.Tag = tag.V1
	return up, low
}

// Advance consumes the head tag of a routed cell after it leaves a BSN:
// the remaining tags are dealt out alternately (Fig. 10) and the cell
// keeps the half selected by its exit tag — the upper subsequence for a
// 0-exit, the lower for a 1-exit. The resulting sequence drives the
// half-size network of the next level.
func Advance(c Cell) (Cell, error) { return AdvanceIn(c, nil) }

// Arena is a bump allocator for the routing-tag storage Advance creates
// at every level boundary. A steady serving loop (fabric.Executor) holds
// one Arena and resets it per run, turning the two-slices-per-live-cell
// allocation of Advance into amortized-zero allocations. Sequences
// handed out by an Arena are valid until its next Reset. The zero value
// is ready to use; an Arena is not safe for concurrent use.
type Arena struct {
	chunk []tag.Value
	used  int // bump pointer into the current chunk
	total int // tags handed out since the last Reset, across chunk growth
}

// Reset recycles all storage handed out since the last Reset.
func (ar *Arena) Reset() { ar.used, ar.total = 0, 0 }

// Cap returns the retained backing capacity in tag values — the arena's
// contribution to a long-lived planner's memory footprint.
func (ar *Arena) Cap() int { return len(ar.chunk) }

// Used returns the tag values handed out since the last Reset. Unlike
// the internal bump pointer it survives chunk growth, so it measures a
// reset cycle's true demand — the signal pool retention policies decay.
func (ar *Arena) Used() int { return ar.total }

// Release drops the retained backing chunk entirely, so the next Alloc
// regrows from actual need — the shrink path for pools that kept a
// high-water arena past its workload.
func (ar *Arena) Release() { ar.chunk = nil; ar.used = 0; ar.total = 0 }

// Alloc returns a clean k-element block valid until the arena's next
// Reset. It is the building block for callers (the core planner) that
// bump-allocate tag storage outside AdvanceIn.
func (ar *Arena) Alloc(k int) []tag.Value { return ar.alloc(k) }

// MinChunk is the smallest backing chunk an arena grows to — the
// per-arena floor of a planner's retained footprint, which memory
// accounting (core's pool retention policy) builds its baseline from.
const MinChunk = 1024

// alloc returns a clean k-element block, growing the backing chunk when
// exhausted (abandoned chunks are reclaimed by the GC).
func (ar *Arena) alloc(k int) []tag.Value {
	if ar.used+k > len(ar.chunk) {
		size := 2 * len(ar.chunk)
		if size < MinChunk {
			size = MinChunk
		}
		if size < k {
			size = k
		}
		ar.chunk = make([]tag.Value, size)
		ar.used = 0
	}
	b := ar.chunk[ar.used : ar.used+k : ar.used+k]
	ar.used += k
	ar.total += k
	return b
}

// AdvanceIn is Advance with the split sequences sub-allocated from ar;
// a nil ar allocates fresh storage (one slice per call).
func AdvanceIn(c Cell, ar *Arena) (Cell, error) {
	if c.IsIdle() {
		return c, nil
	}
	if len(c.Seq) < 3 || len(c.Seq)%2 == 0 {
		return Cell{}, fmt.Errorf("bsn: cannot advance a cell with %d remaining tags", len(c.Seq))
	}
	rest := c.Seq[1:]
	h := len(rest) / 2
	var block []tag.Value
	if ar != nil {
		block = ar.alloc(len(rest))
	} else {
		block = make([]tag.Value, len(rest))
	}
	up, low := block[:h:h], block[h:]
	for i, v := range rest {
		if i%2 == 0 {
			up[i/2] = v
		} else {
			low[i/2] = v
		}
	}
	switch c.Tag {
	case tag.V0:
		c.Seq = up
	case tag.V1:
		c.Seq = low
	default:
		return Cell{}, fmt.Errorf("bsn: cell leaves BSN with tag %v; want 0 or 1", c.Tag)
	}
	c.Tag = c.Seq[0]
	return c, nil
}

// Result holds the outcome of routing one tag vector through a BSN: the
// output cells and the two computed reverse-banyan plans (for cost,
// timing and diagram purposes). Divided is the ε-divided tag vector the
// quasisorting pass sorted.
type Result struct {
	N       int
	Out     []Cell
	Scatter *rbn.Plan
	Quasi   *rbn.Plan
	Divided []tag.Value
}

// Route drives n cells through an n x n binary splitting network. The
// head tags must satisfy the BSN input constraints (equations 1–3):
// at most n/2 connections destined (fully or partly) to each half.
func Route(in []Cell, eng rbn.Engine) (*Result, error) {
	n := len(in)
	tags := make([]tag.Value, n)
	for i, c := range in {
		if c.Tag.CarriesMessage() && (len(c.Seq) == 0 || c.Seq[0] != c.Tag) {
			return nil, fmt.Errorf("bsn: cell %d has tag %v but sequence head %v", i, c.Tag, headOf(c.Seq))
		}
		if c.IsIdle() {
			tags[i] = tag.Eps
		} else {
			tags[i] = c.Tag
		}
	}
	if err := tag.Count(tags).CheckBSNInput(n); err != nil {
		return nil, err
	}

	// Pass 1: scatter — eliminate αs.
	sp, err := eng.ScatterPlan(n, tags, 0)
	if err != nil {
		return nil, err
	}
	mid, err := rbn.Apply(sp, in, SplitCell)
	if err != nil {
		return nil, err
	}
	midTags := make([]tag.Value, n)
	for i, c := range mid {
		if c.Tag == tag.Alpha {
			return nil, fmt.Errorf("bsn: α survived the scatter network at position %d", i)
		}
		if c.IsIdle() {
			midTags[i] = tag.Eps
		} else {
			midTags[i] = c.Tag
		}
	}

	// Pass 2: quasisort — 0s to the upper half, 1s to the lower half.
	qp, divided, err := eng.QuasisortPlan(n, midTags)
	if err != nil {
		return nil, err
	}
	out, err := rbn.Apply(qp, mid, nil)
	if err != nil {
		return nil, err
	}
	for i, c := range out {
		if c.Tag == tag.V0 && i >= n/2 {
			return nil, fmt.Errorf("bsn: 0-tagged connection from input %d quasisorted to lower-half output %d", c.Source, i)
		}
		if c.Tag == tag.V1 && i < n/2 {
			return nil, fmt.Errorf("bsn: 1-tagged connection from input %d quasisorted to upper-half output %d", c.Source, i)
		}
	}
	return &Result{N: n, Out: out, Scatter: sp, Quasi: qp, Divided: divided}, nil
}

func headOf(s []tag.Value) tag.Value {
	if len(s) == 0 {
		return tag.Eps
	}
	return s[0]
}

// CellsForAssignment prepares the input cell vector of the outermost BSN
// of an n x n BRSMN: each active input carries its full routing-tag
// sequence (Section 7.1) with the level-1 tag at the head.
func CellsForAssignment(a mcast.Assignment) ([]Cell, error) {
	seqs, err := a.Sequences()
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, a.N)
	for i := range cells {
		if len(a.Dests[i]) == 0 {
			cells[i] = Idle()
			continue
		}
		cells[i] = Cell{Tag: seqs[i][0], Source: i, Seq: seqs[i]}
	}
	return cells, nil
}
