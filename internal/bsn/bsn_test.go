package bsn

import (
	"math/rand"
	"testing"

	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/tag"
	"brsmn/internal/workload"
)

// TestFig4Example reproduces the flavor of Fig. 4b: a BSN fed with a mix
// of 0/1/α/ε tags scatters then quasisorts, leaving 0s in the upper half
// and 1s in the lower half with αs split.
func TestFig4Example(t *testing.T) {
	// 8 inputs: tags 0, α, ε, 1, ε, α, ε, ε  (n0=1, n1=1, nα=2, nε=4).
	in := make([]Cell, 8)
	mk := func(i int, dests []int) Cell {
		s, err := mcast.SequenceFromDests(8, dests)
		if err != nil {
			t.Fatal(err)
		}
		return Cell{Tag: s[0], Source: i, Seq: s}
	}
	in[0] = mk(0, []int{1})       // tag 0
	in[1] = mk(1, []int{2, 6})    // tag α
	in[2] = Idle()                // ε
	in[3] = mk(3, []int{5})       // tag 1
	in[4] = Idle()                // ε
	in[5] = mk(5, []int{0, 4, 7}) // tag α
	in[6] = Idle()
	in[7] = Idle()
	res, err := Route(in, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	// Expect 3 cells tagged 0 in the upper half (sources 0, 1, 5) and 3
	// tagged 1 in the lower half (sources 3, 1, 5).
	upSrc := map[int]bool{}
	lowSrc := map[int]bool{}
	for i, c := range res.Out {
		if c.IsIdle() {
			continue
		}
		if i < 4 {
			if c.Tag != tag.V0 {
				t.Fatalf("upper output %d has tag %v", i, c.Tag)
			}
			upSrc[c.Source] = true
		} else {
			if c.Tag != tag.V1 {
				t.Fatalf("lower output %d has tag %v", i, c.Tag)
			}
			lowSrc[c.Source] = true
		}
	}
	for _, want := range []int{0, 1, 5} {
		if !upSrc[want] {
			t.Errorf("source %d missing from upper half (%v)", want, upSrc)
		}
	}
	for _, want := range []int{1, 3, 5} {
		if !lowSrc[want] {
			t.Errorf("source %d missing from lower half (%v)", want, lowSrc)
		}
	}
}

// TestBSNInvariants checks equations (1)–(4) across random BSN-legal
// traffic: the input constraints hold, and the output counts match
// equation (4) with all αs eliminated.
func TestBSNInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, n := range []int{4, 8, 32, 128} {
		for trial := 0; trial < 30; trial++ {
			a := workload.Random(rng, n, rng.Float64(), rng.Float64())
			cells, err := CellsForAssignment(a)
			if err != nil {
				t.Fatal(err)
			}
			inTags := make([]tag.Value, n)
			for i, c := range cells {
				inTags[i] = tag.Eps
				if !c.IsIdle() {
					inTags[i] = c.Tag
				}
			}
			ic := tag.Count(inTags)
			if err := ic.CheckBSNInput(n); err != nil {
				t.Fatalf("n=%d %v: input constraints: %v", n, a, err)
			}
			res, err := Route(cells, rbn.Sequential)
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, a, err)
			}
			outTags := make([]tag.Value, n)
			for i, c := range res.Out {
				outTags[i] = tag.Eps
				if !c.IsIdle() {
					outTags[i] = c.Tag
				}
			}
			oc := tag.Count(outTags)
			if oc != ic.AfterScatter() {
				t.Fatalf("n=%d %v: output counts %+v, want %+v", n, a, oc, ic.AfterScatter())
			}
		}
	}
}

// TestRouteRejectsIllegalLoad checks the eq. (2) guard.
func TestRouteRejectsIllegalLoad(t *testing.T) {
	// Three connections all destined to the upper half of a 4-network.
	in := make([]Cell, 4)
	for i := 0; i < 3; i++ {
		s, err := mcast.SequenceFromDests(4, []int{i})
		if err != nil {
			t.Fatal(err)
		}
		in[i] = Cell{Tag: s[0], Source: i, Seq: s}
	}
	// Destination 2 is lower half; use {0},{1} upper plus a third upper
	// one: inputs 0->{0},1->{1} fill the upper half; 2->{0} would clash
	// with disjointness, so craft tags directly.
	in[0].Seq = nil
	in[0] = Cell{Tag: tag.V0, Source: 0, Seq: []tag.Value{tag.V0, tag.V0, tag.Eps}}
	in[1] = Cell{Tag: tag.V0, Source: 1, Seq: []tag.Value{tag.V0, tag.V1, tag.Eps}}
	in[2] = Cell{Tag: tag.V0, Source: 2, Seq: []tag.Value{tag.V0, tag.V0, tag.Eps}}
	in[3] = Idle()
	if _, err := Route(in, rbn.Sequential); err == nil {
		t.Error("Route accepted 3 upper-half connections on a 4 x 4 BSN")
	}
}

// TestRouteRejectsInconsistentCell checks the tag/sequence head guard.
func TestRouteRejectsInconsistentCell(t *testing.T) {
	in := make([]Cell, 2)
	in[0] = Cell{Tag: tag.V0, Source: 0, Seq: []tag.Value{tag.V1}}
	in[1] = Idle()
	if _, err := Route(in, rbn.Sequential); err == nil {
		t.Error("Route accepted a cell whose tag differs from its sequence head")
	}
}

// TestAdvance checks the Fig. 10 sequence handling on the paper's
// examples.
func TestAdvance(t *testing.T) {
	seq, err := mcast.SequenceFromDests(8, []int{3, 4, 7}) // α1αε011
	if err != nil {
		t.Fatal(err)
	}
	// The 0-copy continues with the left subtree (destinations {3} of
	// the upper half => {11} in 4-space => tags 1,ε,1 interleaved).
	up := Cell{Tag: tag.V0, Source: 2, Seq: seq}
	adv, err := Advance(up)
	if err != nil {
		t.Fatal(err)
	}
	if got := mcast.FormatSequence(adv.Seq); got != "1ε1" {
		t.Errorf("upper continuation = %q, want 1ε1", got)
	}
	if adv.Tag != tag.V1 {
		t.Errorf("upper continuation head tag = %v, want 1", adv.Tag)
	}
	// The 1-copy continues with the right subtree ({4,7} => {0,3} in
	// 4-space => root α, children 0 and 1).
	low := Cell{Tag: tag.V1, Source: 2, Seq: seq}
	adv, err = Advance(low)
	if err != nil {
		t.Fatal(err)
	}
	if got := mcast.FormatSequence(adv.Seq); got != "α01" {
		t.Errorf("lower continuation = %q, want α01", got)
	}
	// Idle cells advance unchanged; α exits are illegal.
	if _, err := Advance(Cell{Tag: tag.Alpha, Source: 1, Seq: seq}); err == nil {
		t.Error("Advance accepted an α exit tag")
	}
	idle, err := Advance(Idle())
	if err != nil || !idle.IsIdle() {
		t.Error("Advance(idle) changed the cell")
	}
	if _, err := Advance(Cell{Tag: tag.V0, Source: 0, Seq: []tag.Value{tag.V0}}); err == nil {
		t.Error("Advance accepted a final-level cell")
	}
}

// TestCellsForAssignment checks preparation of the outermost inputs.
func TestCellsForAssignment(t *testing.T) {
	a := workload.PaperFig2()
	cells, err := CellsForAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := mcast.FormatSequence(cells[0].Seq); got != "00εαεεε" {
		t.Errorf("input 0 sequence = %q", got)
	}
	if got := mcast.FormatSequence(cells[2].Seq); got != "α1αε011" {
		t.Errorf("input 2 sequence = %q", got)
	}
	if !cells[1].IsIdle() || cells[1].Source != -1 {
		t.Error("idle input not idle")
	}
	if cells[2].Tag != tag.Alpha {
		t.Errorf("input 2 head tag = %v", cells[2].Tag)
	}
}

// TestEdgeDisjointness routes a heavy multicast and checks no wire ever
// carries two connections: Apply would have to merge two cells onto one
// link, which the cell model makes impossible by construction, so instead
// we check conservation — the number of non-idle cells grows only at
// broadcast switches, one copy per broadcast.
func TestEdgeDisjointness(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 64
	a := workload.Random(rng, n, 1.0, 0.3)
	cells, err := CellsForAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, c := range cells {
		if !c.IsIdle() {
			active++
		}
	}
	res, err := Route(cells, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	sc := res.Scatter.CountSettings()
	bcasts := sc[2] + sc[3]
	outActive := 0
	for _, c := range res.Out {
		if !c.IsIdle() {
			outActive++
		}
	}
	if outActive != active+bcasts {
		t.Fatalf("active cells %d -> %d with %d broadcasts; want %d",
			active, outActive, bcasts, active+bcasts)
	}
}
