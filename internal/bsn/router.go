package bsn

import (
	"fmt"
	"sync/atomic"
	"time"

	"brsmn/internal/rbn"
	"brsmn/internal/tag"
)

// Router is a reusable binary-splitting-network router: it performs the
// same two-pass scatter + quasisort routing as Route, but computes the
// switch settings into caller-owned preallocated plans and draws every
// intermediate vector (head tags, mid tags, ε-divided tags, the cell
// ping-pong buffers and the RBN sweep scratch) from its own storage,
// sized once and recycled across calls. A warm Router routes a BSN with
// zero allocations.
//
// The cell slice returned by Route aliases the router's buffers and is
// valid until the next call; Divided likewise. A Router is not safe for
// concurrent use — pool routers (one per worker) to parallelize.
type Router struct {
	n       int // capacity (largest size seen)
	lastN   int // size of the most recent Route call
	tags    []tag.Value
	midTags []tag.Value
	divided []tag.Value
	bufA    []Cell
	bufB    []Cell
	sc      *rbn.Scratch
}

// NewRouter returns a router pre-sized for n x n BSNs. It grows on
// demand, so the size is a hint; the zero value also works.
func NewRouter(n int) *Router {
	r := &Router{}
	r.ensure(n)
	return r
}

func (r *Router) ensure(n int) {
	if n <= r.n {
		return
	}
	r.tags = make([]tag.Value, n)
	r.midTags = make([]tag.Value, n)
	r.divided = make([]tag.Value, n)
	r.bufA = make([]Cell, n)
	r.bufB = make([]Cell, n)
	if r.sc == nil {
		r.sc = rbn.NewScratch(n)
	}
	r.n = n
}

// Divided returns the ε-divided tag vector of the last Route call,
// valid until the next call.
func (r *Router) Divided() []tag.Value { return r.divided[:r.lastN] }

// Route drives len(in) cells through a BSN, writing the scatter and
// quasisort switch settings into the two preallocated plans (both of
// size len(in)) and returning the output cells. The output aliases the
// router's internal buffers: consume or copy it before the next call.
// Input constraints and half-placement checks match Route.
func (r *Router) Route(in []Cell, eng rbn.Engine, scatter, quasi *rbn.Plan) ([]Cell, error) {
	return r.RouteTimed(in, eng, scatter, quasi, nil, nil)
}

// RouteTimed is Route with optional per-pass timing: when non-nil,
// scatterNs and quasiNs receive the wall-clock nanoseconds of the
// scatter and quasisort passes via atomic adds (callers routing
// sub-BRSMNs concurrently accumulate into shared trace fields). With
// both nil it is exactly Route — no clock reads on the untraced path.
func (r *Router) RouteTimed(in []Cell, eng rbn.Engine, scatter, quasi *rbn.Plan, scatterNs, quasiNs *int64) ([]Cell, error) {
	n := len(in)
	if scatter.N != n || quasi.N != n {
		return nil, fmt.Errorf("bsn: plans sized %d, %d for %d input cells", scatter.N, quasi.N, n)
	}
	r.ensure(n)
	r.lastN = n
	tags := r.tags[:n]
	for i, c := range in {
		if c.Tag.CarriesMessage() && (len(c.Seq) == 0 || c.Seq[0] != c.Tag) {
			return nil, fmt.Errorf("bsn: cell %d has tag %v but sequence head %v", i, c.Tag, headOf(c.Seq))
		}
		if c.IsIdle() {
			tags[i] = tag.Eps
		} else {
			tags[i] = c.Tag
		}
	}
	if err := tag.Count(tags).CheckBSNInput(n); err != nil {
		return nil, err
	}

	// Pass 1: scatter — eliminate αs.
	var t0 time.Time
	if scatterNs != nil {
		t0 = time.Now()
	}
	if err := eng.ScatterPlanInto(scatter, tags, 0, r.sc); err != nil {
		return nil, err
	}
	mid, err := rbn.ApplyScratch(scatter, in, r.bufA[:n], r.bufB[:n], SplitCell)
	if err != nil {
		return nil, err
	}
	midTags := r.midTags[:n]
	for i, c := range mid {
		if c.Tag == tag.Alpha {
			return nil, fmt.Errorf("bsn: α survived the scatter network at position %d", i)
		}
		if c.IsIdle() {
			midTags[i] = tag.Eps
		} else {
			midTags[i] = c.Tag
		}
	}
	if scatterNs != nil {
		atomic.AddInt64(scatterNs, int64(time.Since(t0)))
	}

	// Pass 2: quasisort — 0s to the upper half, 1s to the lower half.
	if quasiNs != nil {
		t0 = time.Now()
	}
	if err := eng.QuasisortPlanInto(quasi, r.divided[:n], midTags, r.sc); err != nil {
		return nil, err
	}
	out, err := rbn.ApplyScratch(quasi, mid, r.bufA[:n], r.bufB[:n], nil)
	if err != nil {
		return nil, err
	}
	for i, c := range out {
		if c.Tag == tag.V0 && i >= n/2 {
			return nil, fmt.Errorf("bsn: 0-tagged connection from input %d quasisorted to lower-half output %d", c.Source, i)
		}
		if c.Tag == tag.V1 && i < n/2 {
			return nil, fmt.Errorf("bsn: 1-tagged connection from input %d quasisorted to upper-half output %d", c.Source, i)
		}
	}
	if quasiNs != nil {
		atomic.AddInt64(quasiNs, int64(time.Since(t0)))
	}
	return out, nil
}
