// Package circuit re-implements the distributed self-routing algorithms
// at register-transfer level, using only the operations the paper's
// Section 7.2 hardware provides: one-bit serial adders (Fig. 12),
// bit-wise masking for mod-2^k, and wire selection for div-2^k. Every
// tree-node computation of Tables 3, 4 and 6 (the sums, differences,
// minima, mods and case selections of the forward and backward phases)
// is performed by these units — no native integer arithmetic on the
// node buses — and the resulting switch plans are verified bit-identical
// to package rbn's. This is the evidence that
// the distributed algorithms really fit in the constant per-switch
// circuitry the paper's cost analysis charges for.
//
// Timing is modeled separately (package gates simulates the pipelined
// adder tree cycle by cycle); this package validates the data path.
package circuit

import (
	"fmt"

	"brsmn/internal/gates"
	"brsmn/internal/rbn"
	"brsmn/internal/seq"
	"brsmn/internal/shuffle"
	"brsmn/internal/swbox"
	"brsmn/internal/tag"
)

// word is a little-endian bit vector — the value representation on the
// circuit's serial buses.
type word []uint8

// toWord serializes a non-negative integer into `width` bits.
func toWord(x, width int) word {
	w := make(word, width)
	for k := 0; k < width; k++ {
		w[k] = uint8(x >> k & 1)
	}
	return w
}

// value deserializes (for plan emission and tests only).
func (w word) value() int {
	v := 0
	for k, b := range w {
		v |= int(b) << k
	}
	return v
}

// addSerial runs two words through a one-bit serial adder.
func addSerial(a, b word) word {
	var fa gates.SerialAdder
	width := len(a)
	if len(b) > width {
		width = len(b)
	}
	out := make(word, width+1)
	for k := 0; k <= width; k++ {
		out[k] = fa.Step(bitAt(a, k), bitAt(b, k))
	}
	return out
}

// subSerial computes a - b in two's complement through a serial adder
// (a + ~b + 1); it returns the difference bits and the final carry,
// which is 1 exactly when a >= b.
func subSerial(a, b word, width int) (diff word, geq uint8) {
	// a + ~b + 1 == a - b (mod 2^width): a full-adder chain whose carry
	// register is initialized to 1 (the serial adder of Fig. 12 with a
	// presettable carry flip-flop).
	carry := uint8(1)
	diff = make(word, width)
	for k := 0; k < width; k++ {
		x := bitAt(a, k)
		y := 1 - bitAt(b, k)
		s := x ^ y ^ carry
		carry = (x & y) | (x & carry) | (y & carry)
		diff[k] = s
	}
	return diff, carry
}

func bitAt(w word, k int) uint8 {
	if k < len(w) {
		return w[k]
	}
	return 0
}

// maskMod keeps the low k bits — the mod-2^k unit (pure wiring).
func maskMod(w word, k int) word {
	out := make(word, k)
	copy(out, w[:min(k, len(w))])
	return out
}

// divBit extracts bit k — the (x div 2^k) mod 2 unit (pure wiring).
func divBit(w word, k int) uint8 { return bitAt(w, k) }

// ltSerial reports a < b via the subtractor's carry.
func ltSerial(a, b word, width int) bool {
	_, geq := subSerial(a, b, width)
	return geq == 0
}

// BitSortPlan recomputes rbn.BitSortPlan with serial units only
// (Table 3): forward tree of serial adders; backward masking/adding;
// per-switch comparison of the local index against s1.
func BitSortPlan(n int, gamma []bool, s int) (*rbn.Plan, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("circuit: size %d is not a power of two >= 2", n)
	}
	if len(gamma) != n {
		return nil, fmt.Errorf("circuit: %d marks for n = %d", len(gamma), n)
	}
	if s < 0 || s >= n {
		return nil, fmt.Errorf("circuit: start %d out of range", s)
	}
	m := shuffle.Log2(n)
	width := m + 2
	p := rbn.NewPlan(n)

	// Forward adder tree.
	ls := make([][]word, m+1)
	ls[0] = make([]word, n)
	for i, g := range gamma {
		v := 0
		if g {
			v = 1
		}
		ls[0][i] = toWord(v, width)
	}
	for j := 1; j <= m; j++ {
		ls[j] = make([]word, n>>j)
		for b := range ls[j] {
			ls[j][b] = addSerial(ls[j-1][2*b], ls[j-1][2*b+1])
		}
	}

	// Backward phase.
	ss := make([][]word, m+1)
	for j := range ss {
		ss[j] = make([]word, n>>j)
	}
	ss[m][0] = toWord(s, width)
	for j := m; j >= 1; j-- {
		hBits := j - 1 // h = 2^(j-1)
		for b := 0; b < n>>j; b++ {
			sw := ss[j][b]
			l0 := ls[j-1][2*b]
			sum := addSerial(sw, l0) // s + l0
			s1 := maskMod(sum, max(hBits, 1))
			if hBits == 0 {
				s1 = word{} // h = 1: everything mod 1 is 0
			}
			bset := swbox.Setting(divBit(sum, hBits))
			ss[j-1][2*b] = maskMod(sw, max(hBits, 1))
			if hBits == 0 {
				ss[j-1][2*b] = word{}
			}
			ss[j-1][2*b+1] = s1
			h := 1 << hBits
			base := b * h
			for i := 0; i < h; i++ {
				// i < s1 via the serial comparator.
				if ltSerial(toWord(i, width), pad(s1, width), width) {
					p.Stages[j-1][base+i] = bset
				} else {
					p.Stages[j-1][base+i] = bset.Opposite()
				}
			}
		}
	}
	return p, nil
}

func pad(w word, width int) word {
	out := make(word, width)
	copy(out, w)
	return out
}

// scatterNode is a forward value on the circuit's buses: the surplus
// count and a one-bit dominating-type flag (0 = ε, 1 = α), exactly the
// b0∧¬b1 / b0∧b1 counting encoding of Section 7.2.
type scatterNode struct {
	l   word
	typ uint8
}

// ScatterPlan recomputes rbn.ScatterPlan with serial units only
// (Tables 4–5).
func ScatterPlan(n int, tags []tag.Value, s int) (*rbn.Plan, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("circuit: size %d is not a power of two >= 2", n)
	}
	if len(tags) != n {
		return nil, fmt.Errorf("circuit: %d tags for n = %d", len(tags), n)
	}
	if s < 0 || s >= n {
		return nil, fmt.Errorf("circuit: start %d out of range", s)
	}
	m := shuffle.Log2(n)
	width := m + 2
	p := rbn.NewPlan(n)

	// Forward phase: leaves from the encoded tag bits.
	fwd := make([][]scatterNode, m+1)
	fwd[0] = make([]scatterNode, n)
	for i, v := range tags {
		if !v.Valid() || v == tag.Eps0 || v == tag.Eps1 {
			if !v.IsEps() {
				return nil, fmt.Errorf("circuit: input %d carries invalid tag %v", i, v)
			}
		}
		bits := tag.Encode(v)
		isAlpha := bits.CountAlphaBit()
		isEps := bits.CountEpsBit()
		fwd[0][i] = scatterNode{l: toWord(int(isAlpha|isEps), width), typ: isAlpha}
	}
	for j := 1; j <= m; j++ {
		fwd[j] = make([]scatterNode, n>>j)
		for b := range fwd[j] {
			c0, c1 := fwd[j-1][2*b], fwd[j-1][2*b+1]
			var nd scatterNode
			if c0.typ == c1.typ {
				nd = scatterNode{l: addSerial(c0.l, c1.l), typ: c0.typ}
			} else {
				// Dual subtractors; the carry selects the survivor.
				d01, geq := subSerial(c0.l, c1.l, width)
				d10, _ := subSerial(c1.l, c0.l, width)
				if geq == 1 {
					nd = scatterNode{l: d01, typ: c0.typ}
				} else {
					nd = scatterNode{l: d10, typ: c1.typ}
				}
			}
			if isZero(nd.l) {
				nd.typ = 0 // canonical ε for an exhausted subtree
			}
			fwd[j][b] = nd
		}
	}

	// Backward + switch-setting phases.
	ss := make([][]word, m+1)
	for j := range ss {
		ss[j] = make([]word, n>>j)
	}
	ss[m][0] = toWord(s, width)
	for j := m; j >= 1; j-- {
		hBits := j - 1
		h := 1 << hBits
		for b := 0; b < n>>j; b++ {
			sw := pad(ss[j][b], width)
			c0, c1 := fwd[j-1][2*b], fwd[j-1][2*b+1]
			lNode := fwd[j][b].l
			base := b * h
			col := p.Stages[j-1]

			modH := func(w word) word {
				if hBits == 0 {
					return word{}
				}
				return maskMod(w, hBits)
			}

			if c0.typ == c1.typ {
				sum := addSerial(sw, c0.l)
				s1 := modH(sum)
				bset := swbox.Setting(divBit(sum, hBits))
				ss[j-1][2*b] = modH(sw)
				ss[j-1][2*b+1] = s1
				for i := 0; i < h; i++ {
					if ltSerial(toWord(i, width), pad(s1, width), width) {
						col[base+i] = bset
					} else {
						col[base+i] = bset.Opposite()
					}
				}
				continue
			}

			// Elimination: compare the children's surpluses.
			_, geq01 := subSerial(c0.l, c1.l, width)
			sPlusL := addSerial(sw, lNode)
			var s0, s1 word
			var stmp word
			var ltmp word
			var ucast swbox.Setting
			if geq01 == 1 {
				s0 = modH(sw)
				s1 = modH(sPlusL)
				stmp, ltmp = s1, c1.l
				ucast = swbox.Parallel
			} else {
				s0 = modH(sPlusL)
				s1 = modH(sw)
				stmp, ltmp = s0, c0.l
				ucast = swbox.Cross
			}
			ss[j-1][2*b] = s0
			ss[j-1][2*b+1] = s1
			var bcast swbox.Setting
			if c0.typ == 1 {
				bcast = swbox.UpperBcast
			} else {
				bcast = swbox.LowerBcast
			}
			// Case selection: compare s and s+l against h and 2h via
			// the div-2^k wires (bits hBits and hBits+1).
			sHi := (divBit(sw, hBits) | divBit(sw, hBits+1)<<1)
			slHi := (divBit(sPlusL, hBits) | divBit(sPlusL, hBits+1)<<1)
			sGEh := sHi != 0
			slGEh := slHi != 0
			slGE2h := slHi >= 2
			stmpv := pad(stmp, width).value()
			ltmpv := ltmp.value()
			var settings []swbox.Setting
			switch {
			case !sGEh && !slGEh:
				settings = seq.BinaryCompact(h, stmpv, ltmpv, ucast, bcast)
			case !sGEh: // s < h <= s+l
				settings = seq.TrinaryCompact(h, stmpv, ltmpv, h-stmpv-ltmpv, ucast.Opposite(), bcast, ucast)
			case !slGE2h: // h <= s, s+l < 2h
				settings = seq.BinaryCompact(h, stmpv, ltmpv, ucast.Opposite(), bcast)
			default:
				settings = seq.TrinaryCompact(h, stmpv, ltmpv, h-stmpv-ltmpv, ucast, bcast, ucast.Opposite())
			}
			copy(col[base:base+h], settings)
		}
	}
	return p, nil
}

func isZero(w word) bool {
	for _, b := range w {
		if b != 0 {
			return false
		}
	}
	return true
}

// EpsDivide recomputes rbn.EpsDivide with serial units only (Table 6).
func EpsDivide(tags []tag.Value) ([]tag.Value, error) {
	n := len(tags)
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("circuit: size %d is not a power of two >= 2", n)
	}
	m := shuffle.Log2(n)
	width := m + 2

	ne := make([][]word, m+1)
	n1s := make([][]word, m+1)
	ne[0] = make([]word, n)
	n1s[0] = make([]word, n)
	for i, v := range tags {
		switch v {
		case tag.Eps:
			ne[0][i] = toWord(1, width)
			n1s[0][i] = toWord(0, width)
		case tag.V1:
			ne[0][i] = toWord(0, width)
			n1s[0][i] = toWord(1, width)
		case tag.V0:
			ne[0][i] = toWord(0, width)
			n1s[0][i] = toWord(0, width)
		default:
			return nil, fmt.Errorf("circuit: ε-divide input %d carries %v", i, v)
		}
	}
	for j := 1; j <= m; j++ {
		ne[j] = make([]word, n>>j)
		n1s[j] = make([]word, n>>j)
		for b := range ne[j] {
			ne[j][b] = addSerial(ne[j-1][2*b], ne[j-1][2*b+1])
			n1s[j][b] = addSerial(n1s[j-1][2*b], n1s[j-1][2*b+1])
		}
	}
	half := toWord(n/2, width)
	// Reject overloads: n1 > n/2 or n0 > n/2.
	if ltSerial(half, n1s[m][0], width) {
		return nil, fmt.Errorf("circuit: more than n/2 ones")
	}
	// n0 = n - n1 - nε.
	nTot := toWord(n, width)
	t1, _ := subSerial(nTot, n1s[m][0], width)
	n0w, _ := subSerial(t1, ne[m][0], width)
	if ltSerial(half, n0w, width) {
		return nil, fmt.Errorf("circuit: more than n/2 zeros")
	}

	ne0 := make([][]word, m+1)
	ne1 := make([][]word, m+1)
	for j := range ne0 {
		ne0[j] = make([]word, n>>j)
		ne1[j] = make([]word, n>>j)
	}
	rootE1, _ := subSerial(half, n1s[m][0], width)
	rootE0, _ := subSerial(ne[m][0], rootE1, width)
	ne1[m][0] = rootE1
	ne0[m][0] = rootE0
	for j := m; j >= 1; j-- {
		for b := 0; b < n>>j; b++ {
			e0 := pad(ne0[j][b], width)
			le := pad(ne[j-1][2*b], width)
			re := pad(ne[j-1][2*b+1], width)
			// l0 = min(e0, le) via the comparator.
			var l0 word
			if ltSerial(le, e0, width) {
				l0 = le
			} else {
				l0 = e0
			}
			ne0[j-1][2*b] = l0
			d, _ := subSerial(le, l0, width)
			ne1[j-1][2*b] = d
			d2, _ := subSerial(e0, l0, width)
			ne0[j-1][2*b+1] = d2
			d3, _ := subSerial(re, d2, width)
			ne1[j-1][2*b+1] = d3
		}
	}

	out := append([]tag.Value(nil), tags...)
	for i := range out {
		if tags[i] != tag.Eps {
			continue
		}
		switch {
		case pad(ne0[0][i], 1)[0] == 1:
			out[i] = tag.Eps0
		case pad(ne1[0][i], 1)[0] == 1:
			out[i] = tag.Eps1
		}
	}
	return out, nil
}

// QuasisortPlan recomputes rbn.QuasisortPlan with serial units only:
// the ε-divide sweeps of Table 6 followed by the Table 3 bit-sort on
// the resulting sort bits, starting at n/2.
func QuasisortPlan(n int, tags []tag.Value) (*rbn.Plan, []tag.Value, error) {
	if len(tags) != n {
		return nil, nil, fmt.Errorf("circuit: %d tags for n = %d", len(tags), n)
	}
	divided, err := EpsDivide(tags)
	if err != nil {
		return nil, nil, err
	}
	gamma := make([]bool, n)
	for i, v := range divided {
		gamma[i] = tag.Encode(v).CountOneBit() == 1
	}
	p, err := BitSortPlan(n, gamma, n/2)
	if err != nil {
		return nil, nil, err
	}
	return p, divided, nil
}
