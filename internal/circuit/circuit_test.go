package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"brsmn/internal/rbn"
	"brsmn/internal/tag"
)

// TestSerialUnits checks the bit-serial arithmetic blocks.
func TestSerialUnits(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a%100), int(b%100)
		w := 9
		sum := addSerial(toWord(x, w), toWord(y, w))
		if sum.value() != x+y {
			return false
		}
		diff, geq := subSerial(toWord(x, w), toWord(y, w), w)
		if (geq == 1) != (x >= y) {
			return false
		}
		if x >= y && diff.value() != x-y {
			return false
		}
		if ltSerial(toWord(x, w), toWord(y, w), w) != (x < y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if maskMod(toWord(13, 6), 2).value() != 1 {
		t.Error("maskMod wrong")
	}
	if divBit(toWord(13, 6), 2) != 1 || divBit(toWord(13, 6), 1) != 0 {
		t.Error("divBit wrong")
	}
}

// TestBitSortPlanMatchesRBN cross-checks the RTL bit-sort against the
// algorithmic implementation over random inputs and all positions at
// small sizes.
func TestBitSortPlanMatchesRBN(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	for _, n := range []int{2, 4, 8, 64, 256} {
		trials := 20
		if n <= 8 {
			trials = 60
		}
		for trial := 0; trial < trials; trial++ {
			gamma := make([]bool, n)
			for i := range gamma {
				gamma[i] = rng.Intn(2) == 1
			}
			s := rng.Intn(n)
			want, err := rbn.BitSortPlan(n, gamma, s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := BitSortPlan(n, gamma, s)
			if err != nil {
				t.Fatal(err)
			}
			comparePlans(t, n, want, got)
		}
	}
}

// TestScatterPlanMatchesRBN cross-checks the RTL scatter, exhaustively
// at n = 4 and randomly above.
func TestScatterPlanMatchesRBN(t *testing.T) {
	vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps}
	// Exhaustive n = 4.
	n := 4
	tags := make([]tag.Value, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			for s := 0; s < n; s++ {
				want, err := rbn.ScatterPlan(n, tags, s)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ScatterPlan(n, tags, s)
				if err != nil {
					t.Fatal(err)
				}
				comparePlans(t, n, want, got)
			}
			return
		}
		for _, v := range vals {
			tags[i] = v
			rec(i + 1)
		}
	}
	rec(0)

	rng := rand.New(rand.NewSource(171))
	for _, n := range []int{8, 32, 256} {
		for trial := 0; trial < 30; trial++ {
			tags := make([]tag.Value, n)
			for i := range tags {
				tags[i] = vals[rng.Intn(4)]
			}
			s := rng.Intn(n)
			want, err := rbn.ScatterPlan(n, tags, s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ScatterPlan(n, tags, s)
			if err != nil {
				t.Fatal(err)
			}
			comparePlans(t, n, want, got)
		}
	}
}

// TestEpsDivideMatchesRBN cross-checks the RTL ε-divide.
func TestEpsDivideMatchesRBN(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	for _, n := range []int{2, 8, 64, 512} {
		for trial := 0; trial < 30; trial++ {
			tags := make([]tag.Value, n)
			for i := range tags {
				tags[i] = tag.Eps
			}
			n0 := rng.Intn(n/2 + 1)
			n1 := rng.Intn(n/2 + 1)
			perm := rng.Perm(n)
			for i := 0; i < n0; i++ {
				tags[perm[i]] = tag.V0
			}
			for i := 0; i < n1; i++ {
				tags[perm[n/2+i]] = tag.V1
			}
			want, err := rbn.EpsDivide(tags)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EpsDivide(tags)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("n=%d input %v: position %d: rtl %v vs rbn %v", n, tags, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRTLValidation checks the RTL error paths mirror the algorithmic
// ones.
func TestRTLValidation(t *testing.T) {
	if _, err := BitSortPlan(3, make([]bool, 3), 0); err == nil {
		t.Error("BitSortPlan accepted bad size")
	}
	if _, err := BitSortPlan(4, make([]bool, 2), 0); err == nil {
		t.Error("BitSortPlan accepted bad width")
	}
	if _, err := BitSortPlan(4, make([]bool, 4), 7); err == nil {
		t.Error("BitSortPlan accepted bad start")
	}
	if _, err := ScatterPlan(4, []tag.Value{tag.Value(9), tag.Eps, tag.Eps, tag.Eps}, 0); err == nil {
		t.Error("ScatterPlan accepted invalid tag")
	}
	if _, err := ScatterPlan(4, make([]tag.Value, 3), 0); err == nil {
		t.Error("ScatterPlan accepted bad width")
	}
	if _, err := EpsDivide([]tag.Value{tag.V1, tag.V1, tag.V1, tag.Eps}); err == nil {
		t.Error("EpsDivide accepted overload")
	}
	if _, err := EpsDivide([]tag.Value{tag.Alpha, tag.Eps}); err == nil {
		t.Error("EpsDivide accepted an α")
	}
}

func comparePlans(t *testing.T, n int, want, got *rbn.Plan) {
	t.Helper()
	for j := range want.Stages {
		for w := range want.Stages[j] {
			if want.Stages[j][w] != got.Stages[j][w] {
				t.Fatalf("n=%d: stage %d switch %d: rtl %v vs algorithmic %v",
					n, j, w, got.Stages[j][w], want.Stages[j][w])
			}
		}
	}
}

// TestQuasisortPlanMatchesRBN cross-checks the composed RTL quasisort.
func TestQuasisortPlanMatchesRBN(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	for _, n := range []int{2, 8, 64, 256} {
		for trial := 0; trial < 20; trial++ {
			tags := make([]tag.Value, n)
			for i := range tags {
				tags[i] = tag.Eps
			}
			n0 := rng.Intn(n/2 + 1)
			n1 := rng.Intn(n/2 + 1)
			perm := rng.Perm(n)
			for i := 0; i < n0; i++ {
				tags[perm[i]] = tag.V0
			}
			for i := 0; i < n1; i++ {
				tags[perm[n/2+i]] = tag.V1
			}
			wantP, wantDiv, err := rbn.QuasisortPlan(n, tags)
			if err != nil {
				t.Fatal(err)
			}
			gotP, gotDiv, err := QuasisortPlan(n, tags)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantDiv {
				if wantDiv[i] != gotDiv[i] {
					t.Fatalf("n=%d: divided tags differ at %d", n, i)
				}
			}
			comparePlans(t, n, wantP, gotP)
		}
	}
	if _, _, err := QuasisortPlan(4, make([]tag.Value, 2)); err == nil {
		t.Error("QuasisortPlan accepted bad width")
	}
	if _, _, err := QuasisortPlan(4, []tag.Value{tag.V1, tag.V1, tag.V1, tag.Eps}); err == nil {
		t.Error("QuasisortPlan accepted overload")
	}
}
