// Package cluster extends the consistent-hash shard ring across
// processes: N brsmnd nodes form a second ring above internal/shard's
// per-process one, so a group ID hashes first to an owning *node*, then
// (inside that node) to an owning *shard*. Three cooperating mechanisms
// make the fabric of the source paper serve traffic beyond one
// machine's cores:
//
//   - membership: nodes come from a static -peers list (id=addr pairs).
//     A background loop polls every peer's /v1/cluster/node endpoint and
//     tracks three states — up, down (consecutive poll failures), and
//     draining (deliberate removal). The placement ring spans every
//     non-draining node: a down node keeps its ring share, so its groups
//     produce fast 502s instead of silently re-homing (and flapping back)
//     — static membership re-homes groups only on deliberate drains.
//   - forwarding: any node accepts any /v1 request. Group-scoped
//     requests whose ring owner is another node are proxied to it by
//     forward.go's HTTP client (bounded retries, per-attempt timeout,
//     and an X-Brsmn-Hops guard so transient ring disagreement degrades
//     to local service instead of a forwarding loop).
//   - drain/migration: draining a node exports every group it holds in
//     the PR 6 snapshot vocabulary — generation and warm plan blob
//     included — installs each on its new ring owner via
//     POST /v1/cluster/migrate, and gen-guard-deletes the local copy, so
//     zero groups (and zero cached plans) are lost and the gaining node's
//     first plan request is a warm, byte-identical hit. The same sweep
//     runs whenever the membership view changes, which is how a node
//     (re)joining the ring pulls its share back: every holder pushes the
//     groups the newcomer now owns.
//
// A Node is an http.Handler wrapping the local api.Server; it is safe
// for concurrent use. Deployments without -peers never construct one
// and keep the single-process behavior bit for bit.
package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"brsmn/internal/groupd"
	"brsmn/internal/obs"
	"brsmn/internal/shard"
	"brsmn/internal/store"
)

// Sentinel errors.
var (
	// ErrDraining reports an operation refused because the node is
	// already draining.
	ErrDraining = errors.New("cluster: node is draining")
	// ErrClosed reports a closed node.
	ErrClosed = errors.New("cluster: node closed")
)

// Backend is the slice of the local serving layer (*shard.Set) the
// cluster tier drives: group introspection for status, and the
// export/install/gen-guarded-delete triple migrations are built from.
type Backend interface {
	Count() int
	Epoch() int64
	Get(id string) (groupd.GroupInfo, error)
	Export() ([]store.GroupState, []*store.PlanState)
	ExportGroup(id string) (store.GroupState, *store.PlanState, error)
	Install(g store.GroupState, plan *store.PlanState) error
	DeleteIfGen(id string, gen uint64) error
}

var _ Backend = (*shard.Set)(nil)

// Config parameterizes a Node.
type Config struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers maps node ID -> base URL ("http://host:port") for every
	// cluster member, this node included. All nodes must agree on it.
	Peers map[string]string
	// Local is the node's serving layer (the *shard.Set).
	Local Backend
	// Handler is the local API handler requests are served by when this
	// node owns them (or the hop guard forces local service).
	Handler http.Handler
	// Replicas is the virtual-node count per node on the placement ring
	// (default 64, the shard ring's default).
	Replicas int
	// PollEvery is the membership poll cadence (default 500ms).
	PollEvery time.Duration
	// ForwardTimeout bounds each proxied attempt (default 5s).
	ForwardTimeout time.Duration
	// ForwardRetries is how many additional attempts a failed proxied
	// request gets (default 2; only transport errors retry, and
	// non-idempotent verbs only when the request never left).
	ForwardRetries int
	// MaxHops caps forwarding chains; a request that has already been
	// forwarded MaxHops times is served locally (default 2: origin ->
	// believed owner -> actual owner after a migration).
	MaxHops int
	// DownAfter is how many consecutive poll failures mark a peer down
	// (default 2).
	DownAfter int
	// MigrateBatch caps groups per /v1/cluster/migrate request
	// (default 64).
	MigrateBatch int
	// Metrics, when non-nil, receives the cluster series of metrics.go.
	Metrics *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 500 * time.Millisecond
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 5 * time.Second
	}
	if c.ForwardRetries < 0 {
		c.ForwardRetries = 0
	} else if c.ForwardRetries == 0 {
		c.ForwardRetries = 2
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 2
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.MigrateBatch <= 0 {
		c.MigrateBatch = 64
	}
}

// peerState is a peer's observed membership state.
type peerState int32

const (
	// peerUnknown is the pre-first-poll state; the peer keeps its ring
	// share (optimistic: most boots see all peers up within one poll).
	peerUnknown peerState = iota
	peerUp
	peerDown
	peerDraining
)

// serving reports whether a node in this state keeps its placement-ring
// share. Down nodes do (fail fast, don't flap groups); draining don't.
func (s peerState) serving() bool { return s != peerDraining }

func (s peerState) String() string {
	switch s {
	case peerUp:
		return "up"
	case peerDown:
		return "down"
	case peerDraining:
		return "draining"
	}
	return "unknown"
}

// peer is one cluster member as seen from this node.
type peer struct {
	id  string
	url string

	state  atomic.Int32 // peerState
	fails  atomic.Int32 // consecutive poll failures
	groups atomic.Int64 // last reported group count
	epoch  atomic.Int64 // last reported epoch
}

func (p *peer) getState() peerState  { return peerState(p.state.Load()) }
func (p *peer) setState(s peerState) { p.state.Store(int32(s)) }
func (p *peer) serving() bool        { return p.getState().serving() }
func (p *peer) reachable() bool      { s := p.getState(); return s == peerUp || s == peerUnknown }

// Node is the cluster tier of one brsmnd process. Construct with New,
// release with Close (before the HTTP listener shuts down).
type Node struct {
	cfg   Config
	self  *peer
	peers []*peer // sorted by ID, self included
	byID  map[string]*peer

	client *http.Client
	// streamClient proxies ticket long-polls and SSE streams: no overall
	// timeout (the client's context bounds those requests), same
	// connection pool hygiene on Close.
	streamClient *http.Client

	// ringMu guards ring rebuilds; reads go through the atomic pointer
	// so the forwarding hot path never takes a lock.
	ringMu sync.Mutex
	ring   atomic.Pointer[nodeRing]

	draining atomic.Bool
	synced   atomic.Bool // first membership poll round completed
	closed   atomic.Bool

	sweepMu sync.Mutex     // single-flight rebalance sweeps
	sweepWG sync.WaitGroup // in-flight background sweeps, drained by Close

	// Lifetime counters, kept on the Node (not the registry) so the
	// /v1/cluster view reports them with or without metrics wired.
	nForwarded   atomic.Uint64
	nMigratedOut atomic.Uint64
	nMigratedIn  atomic.Uint64

	met *clusterMetrics // nil without a registry

	quit chan struct{}
	done chan struct{}
}

// New builds the cluster node and starts its membership loop.
func New(cfg Config) (*Node, error) {
	cfg.applyDefaults()
	if cfg.Self == "" {
		return nil, errors.New("cluster: empty self node ID")
	}
	if cfg.Local == nil || cfg.Handler == nil {
		return nil, errors.New("cluster: Local backend and Handler are required")
	}
	if _, ok := cfg.Peers[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self %q not in peers", cfg.Self)
	}
	n := &Node{
		cfg:  cfg,
		byID: make(map[string]*peer, len(cfg.Peers)),
		client: &http.Client{
			Timeout: cfg.ForwardTimeout,
		},
		streamClient: &http.Client{},
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := &peer{id: id, url: strings.TrimRight(cfg.Peers[id], "/")}
		if id == cfg.Self {
			p.setState(peerUp)
			n.self = p
		}
		n.peers = append(n.peers, p)
		n.byID[id] = p
	}
	n.rebuildRing()
	if cfg.Metrics != nil {
		n.met = n.registerMetrics(cfg.Metrics)
	}
	go n.loop()
	return n, nil
}

// Close stops the membership loop, waits out any in-flight rebalance
// sweep, and releases the forwarding client's idle connections. It must
// run before the serving layer and the HTTP listener close so no
// membership poll or migration push races the teardown. Idempotent.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	close(n.quit)
	<-n.done
	n.sweepWG.Wait()
	n.client.CloseIdleConnections()
	n.streamClient.CloseIdleConnections()
	return nil
}

// goSweep runs a sweep in the background, tracked so Close can wait it
// out. A sweep that starts after Close exits immediately on the closed
// check.
func (n *Node) goSweep(reason string) {
	n.sweepWG.Add(1)
	go func() {
		defer n.sweepWG.Done()
		if err := n.sweep(reason); err != nil {
			n.logf("cluster: sweep (%s): %v", reason, err)
		}
	}()
}

// Self returns this node's ID.
func (n *Node) Self() string { return n.cfg.Self }

// Ready implements the readiness contract (api.WithReadiness): a node
// is ready once its first membership poll round has completed and while
// it is not draining.
func (n *Node) Ready() error {
	if n.closed.Load() {
		return ErrClosed
	}
	if n.draining.Load() {
		return ErrDraining
	}
	if !n.synced.Load() {
		return errors.New("cluster: membership sync in progress")
	}
	return nil
}

// logf routes operational logging through the configured sink.
func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// loop is the membership goroutine: poll every peer, refresh the ring
// on view changes, and kick a rebalance sweep when the change matters.
// The first round runs immediately so readiness doesn't wait a full
// poll interval.
func (n *Node) loop() {
	defer close(n.done)
	t := time.NewTicker(n.cfg.PollEvery)
	defer t.Stop()
	n.pollRound()
	n.synced.Store(true)
	for {
		select {
		case <-n.quit:
			return
		case <-t.C:
			if changed := n.pollRound(); changed {
				// Serving-view changes re-home groups (a peer started
				// draining, or a drained node came back); sweep off the
				// loop goroutine so polling cadence holds.
				n.goSweep("membership change")
			}
		}
	}
}

// pollRound refreshes every peer's state, returning whether the
// serving view (the set of ring members) changed.
func (n *Node) pollRound() bool {
	changed := false
	var wg sync.WaitGroup
	results := make([]peerState, len(n.peers))
	for i, p := range n.peers {
		if p == n.self {
			// Self state is authoritative locally.
			if n.draining.Load() {
				results[i] = peerDraining
			} else {
				results[i] = peerUp
			}
			p.groups.Store(int64(n.cfg.Local.Count()))
			p.epoch.Store(n.cfg.Local.Epoch())
			continue
		}
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			results[i] = n.pollPeer(p)
		}(i, p)
	}
	wg.Wait()
	for i, p := range n.peers {
		old := p.getState()
		if results[i] != old {
			p.setState(results[i])
			if old.serving() != results[i].serving() {
				changed = true
			}
			if old != peerUnknown || results[i] != peerUp {
				n.logf("cluster: node %s %s -> %s", p.id, old, results[i])
			}
		}
	}
	if changed {
		n.rebuildRing()
		if n.met != nil {
			n.met.viewChanges.Inc()
		}
	}
	return changed
}

// pollPeer asks one peer for its self-reported state.
func (n *Node) pollPeer(p *peer) peerState {
	st, err := n.fetchNodeStatus(p)
	if err != nil {
		fails := p.fails.Add(1)
		if int(fails) >= n.cfg.DownAfter {
			return peerDown
		}
		// Below the threshold: keep the previous state (hysteresis).
		return p.getState()
	}
	p.fails.Store(0)
	p.groups.Store(st.Groups)
	p.epoch.Store(st.Epoch)
	if st.State == peerDraining.String() {
		return peerDraining
	}
	return peerUp
}

// serving returns the peers currently on the placement ring, in ID
// order.
func (n *Node) servingPeers() []*peer {
	out := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		if p.serving() {
			out = append(out, p)
		}
	}
	return out
}

// NodeStatus is one node's externally visible membership state — the
// /v1/cluster/node reply and one row of the /v1/cluster view.
type NodeStatus struct {
	ID     string `json:"id"`
	URL    string `json:"url,omitempty"`
	State  string `json:"state"`
	Groups int64  `json:"groups"`
	Epoch  int64  `json:"epoch"`
	Self   bool   `json:"self,omitempty"`
}

// Status is the whole cluster as seen from this node — the /v1/cluster
// reply.
type Status struct {
	Self    string       `json:"self"`
	Nodes   []NodeStatus `json:"nodes"`
	Serving int          `json:"serving"`
	// Groups sums the last-reported group counts across nodes — the
	// zero-loss invariant CI checks across a drain.
	Groups int64 `json:"groups"`
	// Forwarded/Migrated are this node's lifetime counters.
	Forwarded   uint64 `json:"forwarded"`
	MigratedOut uint64 `json:"migratedOut"`
	MigratedIn  uint64 `json:"migratedIn"`
}

// selfStatus is this node's own row.
func (n *Node) selfStatus() NodeStatus {
	state := peerUp.String()
	if n.draining.Load() {
		state = peerDraining.String()
	}
	return NodeStatus{
		ID:     n.cfg.Self,
		State:  state,
		Groups: int64(n.cfg.Local.Count()),
		Epoch:  n.cfg.Local.Epoch(),
		Self:   true,
	}
}

// status renders the full membership view.
func (n *Node) status() Status {
	st := Status{Self: n.cfg.Self}
	for _, p := range n.peers {
		row := NodeStatus{ID: p.id, URL: p.url, State: p.getState().String(),
			Groups: p.groups.Load(), Epoch: p.epoch.Load()}
		if p == n.self {
			row = n.selfStatus()
			row.URL = p.url
		}
		if row.State == peerUp.String() || row.State == peerDraining.String() {
			st.Groups += row.Groups
		}
		if p.serving() {
			st.Serving++
		}
		st.Nodes = append(st.Nodes, row)
	}
	st.Forwarded = n.nForwarded.Load()
	st.MigratedOut = n.nMigratedOut.Load()
	st.MigratedIn = n.nMigratedIn.Load()
	return st
}
