package cluster

// In-process cluster tests: real shard sets, real api servers, real
// HTTP between nodes — only the listeners are httptest. These cover the
// acceptance contracts: differential plan identity across nodes,
// forwarding semantics, drain with zero group loss and warm
// byte-identical plans on the gaining node, and forwarding to a
// just-migrated group.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"brsmn/internal/api"
	"brsmn/internal/groupd"
	"brsmn/internal/obs"
	"brsmn/internal/rbn"
	"brsmn/internal/shard"
)

// testNode is one in-process cluster member.
type testNode struct {
	id   string
	set  *shard.Set
	node *Node
	ts   *httptest.Server
	reg  *obs.Registry
	url  string
}

// testCluster builds n nodes (ids "a", "b", ...) that know each other
// via real loopback URLs. Caller order at teardown mirrors brsmnd:
// node, then set, then listener.
func testCluster(t *testing.T, n int, mutate func(id string, cfg *Config)) map[string]*testNode {
	t.Helper()
	ids := make([]string, n)
	servers := make(map[string]*httptest.Server, n)
	peers := make(map[string]string, n)
	for i := range ids {
		id := string(rune('a' + i))
		ids[i] = id
		ts := httptest.NewUnstartedServer(http.NotFoundHandler())
		servers[id] = ts
		peers[id] = "http://" + ts.Listener.Addr().String()
	}
	nodes := make(map[string]*testNode, n)
	for _, id := range ids {
		reg := obs.NewRegistry()
		reg.SetCommonLabel(fmt.Sprintf("node=%q", id))
		set, err := shard.New(shard.Config{
			Shards:     2,
			Group:      groupd.Config{N: 16, Engine: rbn.Sequential},
			TicketNode: id,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn := &testNode{id: id, set: set, reg: reg, url: peers[id]}
		apiSrv := api.NewServer(rbn.Sequential, set, nil,
			api.WithShards(set, nil),
			api.WithMetrics(reg),
			api.WithReadiness(func() error {
				if tn.node == nil {
					return nil
				}
				return tn.node.Ready()
			}))
		cfg := Config{
			Self:      id,
			Peers:     peers,
			Local:     set,
			Handler:   apiSrv,
			PollEvery: 25 * time.Millisecond,
			Metrics:   reg,
			Logf:      t.Logf,
		}
		if mutate != nil {
			mutate(id, &cfg)
		}
		node, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tn.node = node
		servers[id].Config.Handler = node
		servers[id].Start()
		tn.ts = servers[id]
		nodes[id] = tn
		t.Cleanup(func() {
			tn.node.Close()
			tn.set.Close()
			tn.ts.Close()
		})
	}
	return nodes
}

// env unwraps the /v1 envelope into the given data shape.
func env[T any](t *testing.T, resp *http.Response, want int) T {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != want {
		t.Fatalf("HTTP %d (want %d): %s", resp.StatusCode, want, raw)
	}
	var e struct {
		Data  T `json:"data"`
		Error *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	if e.Error != nil {
		t.Fatalf("error envelope: %+v", e.Error)
	}
	return e.Data
}

type planData struct {
	ID      string `json:"id"`
	Gen     uint64 `json:"gen"`
	Cached  bool   `json:"cached"`
	Columns int    `json:"columns"`
	Plan    string `json:"plan"`
}

func createGroup(t *testing.T, base, id string, source int, members []int) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"id": id, "source": source, "members": members})
	resp, err := http.Post(base+"/v1/groups", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	env[map[string]any](t, resp, http.StatusCreated)
}

func getPlan(t *testing.T, base, id string) (planData, *http.Response) {
	t.Helper()
	resp, err := http.Get(base + "/v1/groups/" + id + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	return env[planData](t, resp, http.StatusOK), resp
}

// TestClusterDifferential is the any-node/any-group identity check:
// the same groups created on a 3-node cluster and on a standalone
// server yield byte-identical plans, no matter which node answers.
func TestClusterDifferential(t *testing.T) {
	nodes := testCluster(t, 3, nil)

	soloSet, err := shard.New(shard.Config{Shards: 2, Group: groupd.Config{N: 16, Engine: rbn.Sequential}})
	if err != nil {
		t.Fatal(err)
	}
	defer soloSet.Close()
	solo := httptest.NewServer(api.NewServer(rbn.Sequential, soloSet, nil, api.WithShards(soloSet, nil)))
	defer solo.Close()

	urls := []string{nodes["a"].url, nodes["b"].url, nodes["c"].url}
	for i := 0; i < 24; i++ {
		id := fmt.Sprintf("diff-%02d", i)
		// Disjoint ranges keep source and members distinct.
		members := []int{4 + i%4, 8 + i%4, 12 + i%4}
		// Cluster create lands on a rotating node; solo gets the same.
		createGroup(t, urls[i%3], id, i%4, members)
		createGroup(t, solo.URL, id, i%4, members)
	}
	for i := 0; i < 24; i++ {
		id := fmt.Sprintf("diff-%02d", i)
		want, _ := getPlan(t, solo.URL, id)
		for _, u := range urls {
			got, _ := getPlan(t, u, id)
			if got.Plan != want.Plan || got.Gen != want.Gen || got.Columns != want.Columns {
				t.Fatalf("%s via %s: plan diverged from single-node run\n got %+v\nwant %+v", id, u, got, want)
			}
		}
	}
}

// TestClusterForwarding checks a request at a non-owner is proxied to
// the ring owner (marked with the forwarding headers), while the owner
// serves it first-touch.
func TestClusterForwarding(t *testing.T) {
	nodes := testCluster(t, 3, nil)
	createGroup(t, nodes["a"].url, "fwd-probe", 1, []int{2, 5})

	ownerID := nodes["a"].node.Owner("fwd-probe")
	var nonOwner *testNode
	for id, tn := range nodes {
		if id != ownerID {
			nonOwner = tn
			break
		}
	}

	_, resp := getPlan(t, nodes[ownerID].url, "fwd-probe")
	if resp.Header.Get(HeaderForwarded) != "" {
		t.Fatalf("owner response marked forwarded: %q", resp.Header.Get(HeaderForwarded))
	}
	if got := resp.Header.Get(HeaderNode); got != ownerID {
		t.Fatalf("owner response served by %q, want %q", got, ownerID)
	}

	_, resp = getPlan(t, nonOwner.url, "fwd-probe")
	path := resp.Header.Get(HeaderForwarded)
	if path != nonOwner.id+">"+ownerID {
		t.Fatalf("forwarded path = %q, want %q", path, nonOwner.id+">"+ownerID)
	}
	if got := resp.Header.Get(HeaderNode); got != ownerID {
		t.Fatalf("forwarded response served by %q, want owner %q", got, ownerID)
	}

	// The proxy hop shows up on the non-owner's scrape, labeled with its
	// node identity. (The create may have forwarded too, so assert >= 1
	// rather than an exact count.)
	var sb strings.Builder
	if err := nonOwner.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`brsmn_cluster_forwarded_total{node=%q} `, nonOwner.id)
	found := false
	for _, line := range strings.Split(sb.String(), "\n") {
		if v, ok := strings.CutPrefix(line, want); ok {
			found = true
			if v == "0" {
				t.Fatalf("forwarded counter is 0 after a proxied request: %q", line)
			}
		}
	}
	if !found {
		t.Fatalf("scrape missing series %q", strings.TrimSpace(want))
	}
}

// TestClusterAutoIDCreate checks POST /v1/groups without an ID gets a
// node-scoped unique ID and still lands on its ring owner.
func TestClusterAutoIDCreate(t *testing.T) {
	nodes := testCluster(t, 3, nil)
	body := `{"source":1,"members":[2,5]}`
	resp, err := http.Post(nodes["b"].url+"/v1/groups", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data := env[map[string]any](t, resp, http.StatusCreated)
	id, _ := data["id"].(string)
	if !strings.HasPrefix(id, "b-g") {
		t.Fatalf("auto ID %q not scoped to the receiving node", id)
	}
	// The group is reachable from every node.
	for _, tn := range nodes {
		if _, err := http.Get(tn.url + "/v1/groups/" + id); err != nil {
			t.Fatal(err)
		}
		p, _ := getPlan(t, tn.url, id)
		if p.ID != id {
			t.Fatalf("plan for %q answered as %q", id, p.ID)
		}
	}
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterDrainZeroLoss is the drain acceptance test: draining a
// node loses zero groups, the gaining nodes serve warm byte-identical
// plans from the migrated snapshots, and the drained node reports
// not-ready while staying alive.
func TestClusterDrainZeroLoss(t *testing.T) {
	nodes := testCluster(t, 3, nil)
	urls := []string{nodes["a"].url, nodes["b"].url, nodes["c"].url}

	const groups = 60
	plans := make(map[string]planData, groups)
	for i := 0; i < groups; i++ {
		id := fmt.Sprintf("drain-%03d", i)
		createGroup(t, urls[i%3], id, i%4, []int{1 + i%5, 8 + i%7})
	}
	// Warm every owner's plan cache and record the canonical bytes.
	for i := 0; i < groups; i++ {
		id := fmt.Sprintf("drain-%03d", i)
		p, _ := getPlan(t, urls[i%3], id)
		plans[id] = p
	}

	victim := nodes["a"]
	held := victim.set.Count()
	if held == 0 {
		t.Fatal("placement left node a empty; test needs a non-trivial drain")
	}

	// Readiness flips before the sweep finishes; liveness stays up.
	resp, err := http.Post(victim.url+"/v1/cluster/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	d := env[DrainResponse](t, resp, http.StatusAccepted)
	if !d.Draining {
		t.Fatalf("drain reply = %+v", d)
	}
	if resp, err := http.Get(victim.url + "/v1/readyz"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining node /v1/readyz = %d, want 503", resp.StatusCode)
		}
	}
	if resp, err := http.Get(victim.url + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("draining node /healthz = %d, want 200 (liveness)", resp.StatusCode)
		}
	}

	// A second drain is idempotent.
	resp, err = http.Post(victim.url+"/v1/cluster/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	env[DrainResponse](t, resp, http.StatusAccepted)

	waitFor(t, "drain sweep to empty node a", func() bool { return victim.set.Count() == 0 })

	// Peers converge on the new membership view (their next poll) before
	// their rings can be asked about the new ownership.
	for _, peerID := range []string{"b", "c"} {
		tn := nodes[peerID]
		waitFor(t, peerID+" to drop a from its ring", func() bool {
			for i := 0; i < groups; i++ {
				if tn.node.Owner(fmt.Sprintf("drain-%03d", i)) == "a" {
					return false
				}
			}
			return true
		})
	}

	// Zero loss: every group still exists exactly once across b and c.
	if total := nodes["b"].set.Count() + nodes["c"].set.Count(); total != groups {
		t.Fatalf("groups after drain = %d, want %d", total, groups)
	}
	if moved := victim.node.nMigratedOut.Load(); moved != uint64(held) {
		t.Fatalf("migrated-out = %d, want %d", moved, held)
	}

	// Warm handoff: the gaining node answers from the restored snapshot
	// — cached on the very first request, byte-identical plan.
	for id, want := range plans {
		ownerID := nodes["b"].node.Owner(id)
		if ownerID == "a" {
			t.Fatalf("ring still places %s on the drained node", id)
		}
		got, _ := getPlan(t, nodes[ownerID].url, id)
		if got.Plan != want.Plan || got.Gen != want.Gen {
			t.Fatalf("%s after drain: plan diverged\n got %+v\nwant %+v", id, got, want)
		}
		if !got.Cached {
			t.Fatalf("%s after drain: first plan fetch on the gaining node was a cache miss", id)
		}
	}

	// The drained node keeps serving: requests land there and are
	// forwarded to the new owners (the just-migrated-group check).
	for _, id := range []string{"drain-000", "drain-031", "drain-059"} {
		got, resp := getPlan(t, victim.url, id)
		if got.Plan != plans[id].Plan {
			t.Fatalf("%s via drained node: wrong plan", id)
		}
		if fwd := resp.Header.Get(HeaderForwarded); !strings.HasPrefix(fwd, "a>") {
			t.Fatalf("%s via drained node: forwarded path %q, want a>...", id, fwd)
		}
	}

	// Peers converge on the draining state and their cluster view keeps
	// the full group count.
	waitFor(t, "peer b to see a draining", func() bool {
		resp, err := http.Get(nodes["b"].url + "/v1/cluster")
		if err != nil {
			return false
		}
		st := env[Status](t, resp, http.StatusOK)
		for _, row := range st.Nodes {
			if row.ID == "a" {
				return row.State == "draining" && st.Groups == groups
			}
		}
		return false
	})
}

// TestClusterMigratedGroupMutable checks a migrated group accepts
// writes on its new owner: generation continues from the migrated
// value and replans reflect the change.
func TestClusterMigratedGroupMutable(t *testing.T) {
	nodes := testCluster(t, 3, nil)
	createGroup(t, nodes["b"].url, "mut-1", 1, []int{2, 5})
	before, _ := getPlan(t, nodes["b"].url, "mut-1")

	owner := nodes["a"].node.Owner("mut-1")
	nodes[owner].node.Drain()
	if err := nodes[owner].node.SweepWait(); err != nil {
		t.Fatal(err)
	}

	// The drained node's own ring (which excludes it) names the new
	// owner; peers converge on the same answer after their next poll.
	newOwner := nodes[owner].node.Owner("mut-1")
	if newOwner == owner {
		t.Fatalf("drained node still claims mut-1 (owner %s)", owner)
	}

	body := strings.NewReader(`{"dest":9}`)
	resp, err := http.Post(nodes[newOwner].url+"/v1/groups/mut-1/join", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	env[map[string]any](t, resp, http.StatusOK)
	after, _ := getPlan(t, nodes[newOwner].url, "mut-1")
	if after.Gen <= before.Gen {
		t.Fatalf("generation did not advance across migration: %d -> %d", before.Gen, after.Gen)
	}
	if after.Plan == before.Plan {
		t.Fatal("plan unchanged after post-migration join")
	}
}

// TestClusterConcurrentWritesDuringDrain races membership writes
// against the drain sweep: the gen-guarded migration must never drop a
// write — every group survives, and any group whose join landed before
// the final export carries it.
func TestClusterConcurrentWritesDuringDrain(t *testing.T) {
	nodes := testCluster(t, 3, nil)
	urls := []string{nodes["a"].url, nodes["b"].url, nodes["c"].url}
	const groups = 40
	for i := 0; i < groups; i++ {
		createGroup(t, urls[i%3], fmt.Sprintf("race-%03d", i), 0, []int{1 + i%5})
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("race-%03d", (w*13+i)%groups)
				body := strings.NewReader(fmt.Sprintf(`{"dest":%d}`, 1+(w+i)%14))
				resp, err := http.Post(urls[(w+i)%3]+"/v1/groups/"+id+"/join", "application/json", body)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond) // let writes overlap the sweep
	nodes["a"].node.Drain()
	if err := nodes["a"].node.SweepWait(); err != nil {
		t.Fatalf("sweep under write load: %v", err)
	}
	close(stop)
	writers.Wait()

	// One more sweep moves anything (re)written onto a after the first
	// pass; then the invariants must hold exactly.
	if err := nodes["a"].node.SweepWait(); err != nil {
		t.Fatal(err)
	}
	if got := nodes["a"].set.Count(); got != 0 {
		t.Fatalf("drained node still holds %d groups", got)
	}
	if total := nodes["b"].set.Count() + nodes["c"].set.Count(); total != groups {
		t.Fatalf("groups after racing drain = %d, want %d", total, groups)
	}
	for i := 0; i < groups; i++ {
		id := fmt.Sprintf("race-%03d", i)
		if _, err := nodes["b"].set.Get(id); err != nil {
			if _, err2 := nodes["c"].set.Get(id); err2 != nil {
				t.Fatalf("%s lost during racing drain: %v / %v", id, err, err2)
			}
		}
	}
}
