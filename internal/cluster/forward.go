package cluster

// The forwarding tier: Node is an http.Handler in front of the local
// api.Server. Group-scoped /v1 requests whose ring owner is another
// node are proxied verbatim — body, status, and envelope relayed
// byte-for-byte — so a client can point at any node and observe the
// same API. Everything else (planner endpoints, faults, shards,
// metrics, health) stays local: those are per-node or stateless.
//
// Loop safety: each proxied request carries X-Brsmn-Hops. A node that
// receives a request at the hop limit serves it locally even if the
// ring disagrees — during the one-poll window where two nodes hold
// different views, a request degrades to a 404/local answer instead of
// bouncing until timeout. Every response carries X-Brsmn-Node (the node
// that finally served it) and, when proxied, X-Brsmn-Forwarded with the
// hop path — which is how brsmnload measures forwarding overhead.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"brsmn/internal/api"
)

// Forwarding headers.
const (
	// HeaderHops counts forwarding hops a request has taken.
	HeaderHops = "X-Brsmn-Hops"
	// HeaderNode names the node that served the response.
	HeaderNode = "X-Brsmn-Node"
	// HeaderForwarded lists the forwarding path ("a>b") on proxied
	// responses; absent when served first-touch.
	HeaderForwarded = "X-Brsmn-Forwarded"
)

// maxForwardBody bounds request bodies the forwarder will buffer for
// retransmission. Group mutations are small; 1 MiB is generous.
const maxForwardBody = 1 << 20

// autoID is this node's counter for cluster-unique auto-assigned group
// IDs.
var autoID atomic.Uint64

// ServeHTTP implements the cluster tier: route group-scoped requests to
// their ring owner, serve everything else locally.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/cluster") {
		n.serveCluster(w, r)
		return
	}
	if strings.HasPrefix(r.URL.Path, "/v1/tickets") {
		n.serveTickets(w, r)
		return
	}
	id, ok := groupIDFromPath(r.URL.Path)
	if !ok {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/groups" {
			n.serveCreate(w, r)
			return
		}
		n.serveLocal(w, r)
		return
	}
	n.dispatch(w, r, id)
}

// serveLocal hands the request to the wrapped api handler, stamping the
// serving node.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(HeaderNode, n.cfg.Self)
	n.cfg.Handler.ServeHTTP(w, r)
}

// dispatch serves or forwards one group-scoped request.
func (n *Node) dispatch(w http.ResponseWriter, r *http.Request, id string) {
	owner := n.ring.Load().owner(id)
	if owner == nil || owner == n.self {
		n.serveLocal(w, r)
		return
	}
	// A draining node has left the ring, but until its sweep finishes it
	// still holds (and must keep serving) the groups that haven't moved
	// yet; the gen-guarded migration order guarantees a group exists on
	// its new owner before it disappears here, so local-first never
	// shadows the migrated copy with a stale one.
	if n.draining.Load() {
		if _, err := n.cfg.Local.Get(id); err == nil {
			n.serveLocal(w, r)
			return
		}
	}
	hops := hopCount(r)
	if hops >= n.cfg.MaxHops {
		if n.met != nil {
			n.met.hopLimited.Inc()
		}
		n.serveLocal(w, r)
		return
	}
	n.forward(w, r, owner, hops)
}

// serveCreate handles POST /v1/groups cluster-wide: decode enough of
// the body to learn the group ID (assigning a node-scoped unique one if
// absent — concurrent creates on different nodes must not collide), then
// dispatch to the ring owner like any other group-scoped request.
func (n *Node) serveCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxForwardBody+1))
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "reading request body: "+err.Error())
		return
	}
	if len(body) > maxForwardBody {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Sprintf("request body exceeds %d bytes", maxForwardBody))
		return
	}
	var req struct {
		ID string `json:"id"`
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			// Let the local handler produce the canonical 400.
			r.Body = io.NopCloser(bytes.NewReader(body))
			n.serveLocal(w, r)
			return
		}
	}
	if req.ID == "" {
		// Splice the assigned ID into the raw body without re-encoding
		// the rest of the request.
		req.ID = fmt.Sprintf("%s-g%08d", n.cfg.Self, autoID.Add(1))
		body, err = spliceID(body, req.ID)
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
			return
		}
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	n.dispatch(w, r, req.ID)
}

// spliceID re-serializes a create body with the given ID set.
func spliceID(body []byte, id string) ([]byte, error) { return spliceField(body, "id", id) }

// spliceField re-serializes a JSON-object body with one string field
// set, leaving every other field byte-identical.
func spliceField(body []byte, key, val string) ([]byte, error) {
	m := map[string]json.RawMessage{}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("request body must be a JSON object: %v", err)
		}
	}
	raw, err := json.Marshal(val)
	if err != nil {
		return nil, err
	}
	m[key] = raw
	return json.Marshal(m)
}

// serveTickets routes the async-admission surface. Submissions dispatch
// to the target group's ring owner (so the issued ticket lives where
// the work executes); polls and event streams route to the node named
// in the ticket ID's "@<node>" suffix; the stats listing is local.
func (n *Node) serveTickets(w http.ResponseWriter, r *http.Request) {
	rest, found := strings.CutPrefix(r.URL.Path, "/v1/tickets/")
	if !found || rest == "" {
		if r.Method == http.MethodPost {
			n.serveTicketSubmit(w, r)
			return
		}
		n.serveLocal(w, r)
		return
	}
	tid := strings.TrimSuffix(rest, "/events")
	n.dispatchTicket(w, r, tid)
}

// serveTicketSubmit handles POST /v1/tickets cluster-wide, mirroring
// serveCreate: learn the target group from the body (assigning a
// node-scoped unique ID to an ID-less create), then dispatch to the
// ring owner.
func (n *Node) serveTicketSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxForwardBody+1))
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "reading request body: "+err.Error())
		return
	}
	if len(body) > maxForwardBody {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Sprintf("request body exceeds %d bytes", maxForwardBody))
		return
	}
	var req struct {
		Op    string `json:"op"`
		Group string `json:"group"`
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			// Let the local handler produce the canonical 400.
			r.Body = io.NopCloser(bytes.NewReader(body))
			n.serveLocal(w, r)
			return
		}
	}
	if req.Group == "" && req.Op == "create" {
		req.Group = fmt.Sprintf("%s-g%08d", n.cfg.Self, autoID.Add(1))
		body, err = spliceField(body, "group", req.Group)
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
			return
		}
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	n.dispatch(w, r, req.Group)
}

// ticketNode extracts the issuing node from a ticket ID's "@<node>"
// suffix; empty for single-node IDs.
func ticketNode(tid string) string {
	if i := strings.IndexByte(tid, '@'); i >= 0 {
		return tid[i+1:]
	}
	return ""
}

// dispatchTicket serves or forwards one ticket poll/stream. Unlike
// group dispatch, the target is the issuing node (tickets live in the
// issuer's registry), not a ring owner — an unknown or absent suffix
// serves locally, where the canonical 404 comes from.
func (n *Node) dispatchTicket(w http.ResponseWriter, r *http.Request, tid string) {
	node := ticketNode(tid)
	if node == "" || node == n.cfg.Self {
		n.serveLocal(w, r)
		return
	}
	p, ok := n.byID[node]
	if !ok {
		n.serveLocal(w, r)
		return
	}
	hops := hopCount(r)
	if hops >= n.cfg.MaxHops {
		if n.met != nil {
			n.met.hopLimited.Inc()
		}
		n.serveLocal(w, r)
		return
	}
	n.forward(w, r, p, hops)
}

// forward proxies the request to the owning peer, relaying the response
// verbatim. A down-marked peer fails fast. Failed attempts retry up to
// ForwardRetries times, but only when re-sending cannot re-apply the
// operation (see retryable) — a create or join whose response was lost
// mid-flight must NOT be replayed, or the remote side applies it twice
// and the client sees a spurious conflict.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner *peer, hops int) {
	start := time.Now()
	if !owner.reachable() {
		n.forwardFailed(w, owner, fmt.Errorf("owner %s is %s", owner.id, owner.getState()))
		return
	}
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxForwardBody+1))
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "reading request body: "+err.Error())
			return
		}
		if len(body) > maxForwardBody {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Sprintf("request body exceeds %d bytes", maxForwardBody))
			return
		}
	}
	client := n.client
	if streamingRequest(r) {
		// Long-polls and SSE legitimately outlive ForwardTimeout; the
		// client's own context bounds them instead.
		client = n.streamClient
	}
	url := owner.url + r.URL.RequestURI()
	var resp *http.Response
	var err error
	for attempt := 0; attempt <= n.cfg.ForwardRetries; attempt++ {
		var req *http.Request
		req, err = http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
		if err != nil {
			break
		}
		copyProxyHeaders(req.Header, r.Header)
		req.Header.Set(HeaderHops, strconv.Itoa(hops+1))
		resp, err = client.Do(req)
		if err == nil {
			break
		}
		if r.Context().Err() != nil {
			break // the client gave up; don't retry into the void
		}
		if !retryable(r, err) {
			break
		}
		if n.met != nil {
			n.met.forwardRetries.Inc()
		}
	}
	if err != nil {
		n.forwardFailed(w, owner, err)
		return
	}
	defer resp.Body.Close()

	h := w.Header()
	for k, vv := range resp.Header {
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	// Extend (or start) the forwarding path for overhead accounting.
	path := n.cfg.Self
	if prior := resp.Header.Get(HeaderForwarded); prior != "" {
		h.Del(HeaderForwarded)
		path = n.cfg.Self + ">" + prior
	} else if via := resp.Header.Get(HeaderNode); via != "" {
		path = n.cfg.Self + ">" + via
	}
	h.Set(HeaderForwarded, path)
	w.WriteHeader(resp.StatusCode)
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		flushCopy(w, resp.Body)
	} else {
		_, _ = io.Copy(w, resp.Body)
	}
	n.nForwarded.Add(1)
	if n.met != nil {
		n.met.forwardSeconds.Observe(time.Since(start).Seconds())
	}
}

// retryable reports whether a failed proxied attempt may safely be
// re-sent: idempotent methods always; anything else only when the
// failure happened at the connection stage (dial), i.e. the request
// never reached the peer. A mid-response transport error on a POST
// means the operation may already have been applied — surface the 502
// and let the client decide.
func retryable(r *http.Request, err error) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// streamingRequest reports whether the proxied request may legitimately
// outlive ForwardTimeout — ticket long-polls and SSE event streams.
func streamingRequest(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/v1/tickets/")
}

// flushCopy relays an event stream, flushing after every read so
// events cross the hop as they happen instead of when the buffer fills.
func flushCopy(w http.ResponseWriter, rd io.Reader) {
	rc := http.NewResponseController(w)
	buf := make([]byte, 4096)
	for {
		k, err := rd.Read(buf)
		if k > 0 {
			if _, werr := w.Write(buf[:k]); werr != nil {
				return
			}
			_ = rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

// forwardFailed reports an unforwardable request: 502 in the standard
// envelope, naming the owner so operators can see which node is out.
func (n *Node) forwardFailed(w http.ResponseWriter, owner *peer, err error) {
	if n.met != nil {
		n.met.forwardErrors.Inc()
	}
	w.Header().Set(HeaderNode, n.cfg.Self)
	api.WriteError(w, http.StatusBadGateway, api.CodeUnavailable,
		fmt.Sprintf("forwarding to owner %s: %v", owner.id, err))
}

// copyProxyHeaders carries request headers across the hop, minus
// hop-by-hop ones the client owns.
func copyProxyHeaders(dst, src http.Header) {
	for k, vv := range src {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Te", "Trailer", "Transfer-Encoding", "Upgrade", "Content-Length", "Host":
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

// hopCount reads the request's forwarding hop counter.
func hopCount(r *http.Request) int {
	h, err := strconv.Atoi(r.Header.Get(HeaderHops))
	if err != nil || h < 0 {
		return 0
	}
	return h
}

// groupIDFromPath extracts the group ID from group-scoped /v1 paths:
// /v1/groups/{id}, /v1/groups/{id}/join, /leave, /plan, /backend. The
// collection endpoints (/v1/groups itself) and everything else return
// ok=false.
func groupIDFromPath(path string) (string, bool) {
	rest, found := strings.CutPrefix(path, "/v1/groups/")
	if !found || rest == "" {
		return "", false
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		id, action := rest[:i], rest[i+1:]
		switch action {
		case "join", "leave", "plan", "backend":
			return id, id != ""
		}
		return "", false
	}
	return rest, true
}
