package cluster

// The /v1/cluster endpoints, answered by the cluster tier itself (they
// never forward) in the standard /v1 envelope:
//
//	GET  /v1/cluster          full membership view from this node
//	GET  /v1/cluster/node     this node's self-reported status (the
//	                          membership poll target)
//	POST /v1/cluster/drain    start draining this node (idempotent);
//	                          202 with the drain accepted, groups move
//	                          in the background
//	POST /v1/cluster/migrate  install a batch of exported groups (the
//	                          receiving half of drain/rebalance)

import (
	"encoding/json"
	"fmt"
	"net/http"

	"brsmn/internal/api"
	"brsmn/internal/store"
)

func (n *Node) serveCluster(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(HeaderNode, n.cfg.Self)
	switch r.URL.Path {
	case "/v1/cluster":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		api.WriteData(w, http.StatusOK, n.status())
	case "/v1/cluster/node":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		api.WriteData(w, http.StatusOK, n.selfStatus())
	case "/v1/cluster/drain":
		if r.Method != http.MethodPost {
			methodNotAllowed(w, "POST")
			return
		}
		n.handleDrain(w, r)
	case "/v1/cluster/migrate":
		if r.Method != http.MethodPost {
			methodNotAllowed(w, "POST")
			return
		}
		n.handleMigrate(w, r)
	default:
		api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no such cluster endpoint")
	}
}

func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "method not allowed")
}

// DrainResponse is the POST /v1/cluster/drain reply.
type DrainResponse struct {
	Draining bool `json:"draining"`
	// Groups is how many groups this node still held when the drain was
	// accepted.
	Groups int `json:"groups"`
}

func (n *Node) handleDrain(w http.ResponseWriter, r *http.Request) {
	if n.closed.Load() {
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeUnavailable, ErrClosed.Error())
		return
	}
	first := !n.draining.Swap(true)
	if first {
		n.self.setState(peerDraining)
		n.rebuildRing() // drop self from the placement ring immediately
		if n.met != nil {
			n.met.drains.Inc()
		}
		n.logf("cluster: node %s draining, %d groups to move", n.cfg.Self, n.cfg.Local.Count())
		n.goSweep("drain")
	}
	api.WriteData(w, http.StatusAccepted, DrainResponse{Draining: true, Groups: n.cfg.Local.Count()})
}

// MigrateItem is one group in a migration batch: its snapshot state
// plus (optionally) the warm current-generation plan so the gaining
// node's first plan request is a cache hit on byte-identical bytes.
type MigrateItem struct {
	Group store.GroupState `json:"group"`
	Plan  *store.PlanState `json:"plan,omitempty"`
}

// MigrateRequest is the POST /v1/cluster/migrate body.
type MigrateRequest struct {
	// From names the sending node (logging/metrics only).
	From  string        `json:"from"`
	Items []MigrateItem `json:"items"`
}

// MigrateResponse reports per-batch install results.
type MigrateResponse struct {
	Installed int `json:"installed"`
	// Rejected counts items the local backend refused (e.g. a stale
	// generation losing to a newer local copy — not an error, the newer
	// state simply wins).
	Rejected int `json:"rejected"`
}

func (n *Node) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding migrate batch: "+err.Error())
		return
	}
	var resp MigrateResponse
	for _, it := range req.Items {
		if it.Group.ID == "" {
			api.WriteError(w, http.StatusUnprocessableEntity, api.CodeInvalidArgument, "migrate item with empty group ID")
			return
		}
		if err := n.cfg.Local.Install(it.Group, it.Plan); err != nil {
			api.WriteError(w, http.StatusInternalServerError, api.CodeInternal,
				fmt.Sprintf("installing group %s: %v", it.Group.ID, err))
			return
		}
		resp.Installed++
	}
	n.nMigratedIn.Add(uint64(resp.Installed))
	if resp.Installed > 0 {
		n.logf("cluster: installed %d groups from %s", resp.Installed, req.From)
	}
	api.WriteData(w, http.StatusOK, resp)
}
