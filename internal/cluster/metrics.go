package cluster

// Cluster-tier metrics. Combined with the registry's common node="id"
// label (obs.Registry.SetCommonLabel, wired in cmd/brsmnd), every
// series below — like every pre-existing series — is attributable to
// its node when N scrapes land in one aggregator:
//
//	brsmn_cluster_nodes                    gauge      configured cluster size
//	brsmn_cluster_nodes_serving            gauge      nodes on the placement ring
//	brsmn_cluster_nodes_down               gauge      peers past the failure threshold
//	brsmn_cluster_forwarded_total          counter    requests proxied to their ring owner
//	brsmn_cluster_forward_errors_total     counter    proxies that failed (502 to the client)
//	brsmn_cluster_forward_retries_total    counter    transport-level proxy retries
//	brsmn_cluster_hop_limited_total        counter    requests served locally at the hop cap
//	brsmn_cluster_forward_seconds          histogram  proxy round-trip latency
//	brsmn_cluster_migrated_out_total       counter    groups pushed to gaining nodes
//	brsmn_cluster_migrated_in_total        counter    groups installed from draining peers
//	brsmn_cluster_drains_total             counter    drain transitions on this node
//	brsmn_cluster_view_changes_total       counter    membership-view (ring) rebuilds
//	brsmn_cluster_draining                 gauge      1 while this node is draining

import "brsmn/internal/obs"

// clusterMetrics holds the write-side handles; read-side series are
// CounterFunc/GaugeFunc closures over Node state.
type clusterMetrics struct {
	forwardErrors  *obs.Counter
	forwardRetries *obs.Counter
	hopLimited     *obs.Counter
	forwardSeconds *obs.Histogram
	drains         *obs.Counter
	viewChanges    *obs.Counter
}

func (n *Node) registerMetrics(reg *obs.Registry) *clusterMetrics {
	m := &clusterMetrics{
		forwardErrors:  reg.Counter("brsmn_cluster_forward_errors_total", "Proxied requests that failed after retries."),
		forwardRetries: reg.Counter("brsmn_cluster_forward_retries_total", "Transport-level retries of proxied requests."),
		hopLimited:     reg.Counter("brsmn_cluster_hop_limited_total", "Requests served locally because the forwarding hop cap was reached."),
		forwardSeconds: reg.Histogram("brsmn_cluster_forward_seconds", "Proxy round-trip latency to the owning node.", obs.SecondsBuckets()),
		drains:         reg.Counter("brsmn_cluster_drains_total", "Drain transitions on this node."),
		viewChanges:    reg.Counter("brsmn_cluster_view_changes_total", "Membership-view changes (placement-ring rebuilds)."),
	}
	reg.CounterFunc("brsmn_cluster_forwarded_total", "Requests proxied to their ring owner.",
		func() float64 { return float64(n.nForwarded.Load()) })
	reg.CounterFunc("brsmn_cluster_migrated_out_total", "Groups pushed to gaining nodes.",
		func() float64 { return float64(n.nMigratedOut.Load()) })
	reg.CounterFunc("brsmn_cluster_migrated_in_total", "Groups installed from draining peers.",
		func() float64 { return float64(n.nMigratedIn.Load()) })
	reg.GaugeFunc("brsmn_cluster_nodes", "Configured cluster size.",
		func() float64 { return float64(len(n.peers)) })
	reg.GaugeFunc("brsmn_cluster_nodes_serving", "Nodes on the placement ring.",
		func() float64 { return float64(len(n.servingPeers())) })
	reg.GaugeFunc("brsmn_cluster_nodes_down", "Peers past the consecutive-poll-failure threshold.",
		func() float64 {
			down := 0
			for _, p := range n.peers {
				if p.getState() == peerDown {
					down++
				}
			}
			return float64(down)
		})
	reg.GaugeFunc("brsmn_cluster_draining", "1 while this node is draining.",
		func() float64 {
			if n.draining.Load() {
				return 1
			}
			return 0
		})
	return m
}
