package cluster

// The migration engine. One mechanism serves both transitions:
//
//	drain  = leave the ring, then sweep
//	join   = appear in peers' serving view, their sweeps push groups over
//
// sweep walks every group this node holds, and for each whose ring
// owner is another node: POST it (state + warm plan) to that owner in a
// batch, then gen-guard-delete the local copy. The guard closes the
// export-vs-mutation race — if a join/leave landed between export and
// delete, DeleteIfGen fails with ErrGenMismatch and the group is
// re-exported and re-sent, so the write is never silently dropped. The
// install-before-delete order means a group always exists somewhere:
// worst case (crash between the two) both nodes hold it and the higher
// generation wins on the next sweep.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"brsmn/internal/groupd"
)

// maxMigrateRetries bounds per-group re-export attempts when writes
// keep landing mid-migration.
const maxMigrateRetries = 8

// Drain starts draining this node: it leaves the placement ring and a
// background sweep pushes every group it holds to the new ring owners.
// Idempotent; the HTTP drain endpoint is a thin wrapper. Exposed for
// in-process cluster tests.
func (n *Node) Drain() {
	if n.draining.Swap(true) {
		return
	}
	// The self peer leaves the serving view immediately — the ring
	// rebuild below must not wait for the next poll round to notice.
	n.self.setState(peerDraining)
	n.rebuildRing()
	if n.met != nil {
		n.met.drains.Inc()
	}
	n.goSweep("drain")
}

// SweepWait runs one rebalance sweep synchronously — the test hook for
// deterministic drain/join assertions (the HTTP path sweeps in the
// background).
func (n *Node) SweepWait() error { return n.sweep("manual") }

// sweep re-homes every locally held group whose ring owner is another
// node. Single-flight: a sweep triggered while one is running waits its
// turn (the second pass sees whatever the first left, so nothing is
// missed). Returns the first hard error; best-effort otherwise — groups
// that fail to move stay local and the next sweep retries them.
func (n *Node) sweep(reason string) error {
	n.sweepMu.Lock()
	defer n.sweepMu.Unlock()
	if n.closed.Load() {
		return ErrClosed
	}
	groups, plans := n.cfg.Local.Export()
	ring := n.ring.Load()

	// Partition by gaining node so each target gets few, large batches.
	byTarget := map[*peer][]MigrateItem{}
	for i, g := range groups {
		owner := ring.owner(g.ID)
		if owner == nil || owner == n.self {
			continue
		}
		byTarget[owner] = append(byTarget[owner], MigrateItem{Group: g, Plan: plans[i]})
	}
	if len(byTarget) == 0 {
		return nil
	}
	var moved int
	var firstErr error
	for target, items := range byTarget {
		for start := 0; start < len(items); start += n.cfg.MigrateBatch {
			end := min(start+n.cfg.MigrateBatch, len(items))
			m, err := n.migrateBatch(target, items[start:end])
			moved += m
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	n.logf("cluster: sweep (%s) moved %d groups across %d nodes", reason, moved, len(byTarget))
	n.nMigratedOut.Add(uint64(moved))
	return firstErr
}

// migrateBatch pushes one batch to its gaining node and, on success,
// gen-guard-deletes each group locally, re-exporting and re-sending any
// group whose generation moved underneath the batch. Returns how many
// groups finished the full move.
func (n *Node) migrateBatch(target *peer, items []MigrateItem) (int, error) {
	if !target.reachable() {
		return 0, fmt.Errorf("cluster: gaining node %s is %s", target.id, target.getState())
	}
	if err := n.postMigrate(target, items); err != nil {
		return 0, err
	}
	moved := 0
	for _, it := range items {
		if err := n.finishMove(target, it); err != nil {
			if errors.Is(err, groupd.ErrNotFound) {
				moved++ // deleted concurrently; nothing left to move
				continue
			}
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// finishMove deletes the local copy of one migrated group, chasing
// generation bumps that landed after its export.
func (n *Node) finishMove(target *peer, it MigrateItem) error {
	gen := it.Group.Gen
	for attempt := 0; ; attempt++ {
		err := n.cfg.Local.DeleteIfGen(it.Group.ID, gen)
		if err == nil {
			return nil
		}
		if !errors.Is(err, groupd.ErrGenMismatch) || attempt >= maxMigrateRetries {
			return err
		}
		// A write landed between export and delete: re-export the fresher
		// state, push it over, and try the delete again at the new
		// generation. Install is higher-gen-wins, so re-sending is safe.
		g, plan, err := n.cfg.Local.ExportGroup(it.Group.ID)
		if err != nil {
			if errors.Is(err, groupd.ErrNotFound) {
				return err
			}
			return fmt.Errorf("re-exporting %s: %w", it.Group.ID, err)
		}
		if err := n.postMigrate(target, []MigrateItem{{Group: g, Plan: plan}}); err != nil {
			return err
		}
		gen = g.Gen
	}
}

// postMigrate sends one install batch to the gaining node.
func (n *Node) postMigrate(target *peer, items []MigrateItem) error {
	body, err := json.Marshal(MigrateRequest{From: n.cfg.Self, Items: items})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, target.url+"/v1/cluster/migrate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: migrate to %s: %w", target.id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error *struct {
				Message string `json:"message"`
			} `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&env) == nil && env.Error != nil {
			msg = env.Error.Message
		}
		return fmt.Errorf("cluster: migrate to %s: %s", target.id, msg)
	}
	return nil
}

// fetchNodeStatus asks one peer for its self-reported membership row —
// the body of the poll loop.
func (n *Node) fetchNodeStatus(p *peer) (NodeStatus, error) {
	req, err := http.NewRequest(http.MethodGet, p.url+"/v1/cluster/node", nil)
	if err != nil {
		return NodeStatus{}, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return NodeStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return NodeStatus{}, fmt.Errorf("cluster: node poll: %s", resp.Status)
	}
	var env struct {
		Data NodeStatus `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return NodeStatus{}, err
	}
	if env.Data.ID != p.id {
		return NodeStatus{}, fmt.Errorf("cluster: node %s answered as %q (peer map misconfigured?)", p.id, env.Data.ID)
	}
	return env.Data, nil
}
