package cluster

// The node placement ring. Same construction as internal/shard's
// per-process ring — every serving node contributes Replicas virtual
// points at PlaceHash("nodeID#i"), a group ID lands on the first point
// clockwise from PlaceHash(id) — and the same hash on both levels, so
// placement is deterministic across every node that shares the
// membership view. Rings are immutable once built; Node swaps a fresh
// one in atomically on view changes, so the forwarding hot path reads
// lock-free.

import (
	"fmt"
	"sort"

	"brsmn/internal/shard"
)

// nodeRing maps group IDs to owning nodes via consistent hashing.
type nodeRing struct {
	points []ringPoint // sorted by hash
	nodes  []*peer     // the serving members this ring was built from
}

type ringPoint struct {
	hash uint64
	node *peer
}

// buildRing constructs the ring over the given members with replicas
// virtual points each. An empty member list yields a ring whose owner
// lookups return nil (callers fall back to local service).
func buildRing(members []*peer, replicas int) *nodeRing {
	r := &nodeRing{nodes: members}
	if len(members) == 0 {
		return r
	}
	r.points = make([]ringPoint, 0, len(members)*replicas)
	for _, p := range members {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: shard.PlaceHash(fmt.Sprintf("%s#%d", p.id, i)),
				node: p,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tiebreak on the (astronomically rare) collision
		// so every node sorts identically.
		return r.points[i].node.id < r.points[j].node.id
	})
	return r
}

// owner returns the node owning the given group ID, or nil on an empty
// ring.
func (r *nodeRing) owner(id string) *peer {
	if len(r.points) == 0 {
		return nil
	}
	h := shard.PlaceHash(id)
	// First point with hash >= h, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// rebuildRing recomputes the ring from the current serving view.
func (n *Node) rebuildRing() {
	n.ringMu.Lock()
	defer n.ringMu.Unlock()
	n.ring.Store(buildRing(n.servingPeers(), n.cfg.Replicas))
}

// Owner reports which node the ring places a group ID on. Exposed for
// tests and the placement-stability property suite.
func (n *Node) Owner(id string) string {
	if p := n.ring.Load().owner(id); p != nil {
		return p.id
	}
	return n.cfg.Self
}
