package cluster

import (
	"fmt"
	"testing"
)

// testPeers builds n peers named n0..n(n-1), all up.
func testPeers(n int) []*peer {
	ps := make([]*peer, n)
	for i := range ps {
		ps[i] = &peer{id: fmt.Sprintf("n%d", i)}
		ps[i].setState(peerUp)
	}
	return ps
}

// owners maps group IDs to their ring owner.
func owners(r *nodeRing, ids []string) map[string]string {
	out := make(map[string]string, len(ids))
	for _, id := range ids {
		out[id] = r.owner(id).id
	}
	return out
}

func groupIDs(count int) []string {
	ids := make([]string, count)
	for i := range ids {
		ids[i] = fmt.Sprintf("group-%06d", i)
	}
	return ids
}

// TestRingStability is the placement-stability property: growing or
// shrinking an N-node ring by one node re-homes only about 1/N (resp.
// 1/(N+1)) of group IDs — the consistent-hashing contract cluster
// drain and join rely on to keep migration traffic proportional.
func TestRingStability(t *testing.T) {
	const replicas = 64
	const groups = 20000
	ids := groupIDs(groups)
	for _, n := range []int{2, 3, 5, 8} {
		peers := testPeers(n + 1)
		small := buildRing(peers[:n], replicas)
		big := buildRing(peers, replicas)
		before := owners(small, ids)
		after := owners(big, ids)

		moved := 0
		for id, owner := range after {
			if owner != before[id] {
				moved++
				// Every re-homed group must land on the new node; anything
				// else is unnecessary movement.
				if owner != peers[n].id {
					t.Fatalf("N=%d: %s moved %s -> %s, not to the joining node", n, id, before[id], owner)
				}
			}
		}
		ideal := float64(groups) / float64(n+1)
		frac := float64(moved) / float64(groups)
		t.Logf("N=%d->%d: moved %d/%d (%.3f, ideal %.3f)", n, n+1, moved, groups, frac, 1/float64(n+1))
		if moved == 0 {
			t.Fatalf("N=%d: no groups moved to the new node", n)
		}
		// With 64 vnodes per node the observed share stays within ~2x of
		// ideal; a gross violation means the ring hash or construction
		// broke.
		if float64(moved) > 2*ideal {
			t.Fatalf("N=%d: moved %d groups, more than 2x the ideal %.0f", n, moved, ideal)
		}
	}
}

// TestRingDrainMovesOnlyVictims checks the reverse transition: removing
// one node re-homes exactly the groups it owned and nothing else.
func TestRingDrainMovesOnlyVictims(t *testing.T) {
	const replicas = 64
	ids := groupIDs(10000)
	peers := testPeers(4)
	full := buildRing(peers, replicas)
	drained := buildRing(append(append([]*peer{}, peers[:2]...), peers[3]), replicas) // drop n2
	before := owners(full, ids)
	after := owners(drained, ids)
	for id, owner := range before {
		if owner == "n2" {
			if after[id] == "n2" {
				t.Fatalf("%s still owned by the drained node", id)
			}
			continue
		}
		if after[id] != owner {
			t.Fatalf("%s moved %s -> %s though its owner did not drain", id, owner, after[id])
		}
	}
}

// TestRingDeterminism checks two rings built from the same membership
// agree on every placement — the property that lets each node compute
// ownership locally.
func TestRingDeterminism(t *testing.T) {
	ids := groupIDs(5000)
	a := buildRing(testPeers(5), 64)
	b := buildRing(testPeers(5), 64)
	for _, id := range ids {
		if a.owner(id).id != b.owner(id).id {
			t.Fatalf("rings disagree on %s: %s vs %s", id, a.owner(id).id, b.owner(id).id)
		}
	}
}

// TestRingEmpty checks owner lookups on an empty ring return nil
// (callers fall back to local service).
func TestRingEmpty(t *testing.T) {
	if buildRing(nil, 64).owner("g") != nil {
		t.Fatal("empty ring returned an owner")
	}
}

func TestGroupIDFromPath(t *testing.T) {
	cases := []struct {
		path string
		id   string
		ok   bool
	}{
		{"/v1/groups/conf", "conf", true},
		{"/v1/groups/conf/plan", "conf", true},
		{"/v1/groups/conf/join", "conf", true},
		{"/v1/groups/conf/leave", "conf", true},
		{"/v1/groups/conf/backend", "conf", true},
		{"/v1/groups", "", false},
		{"/v1/groups/", "", false},
		{"/v1/groups/conf/nope", "", false},
		{"/v1/groups//join", "", false},
		{"/v1/route", "", false},
		{"/v1/cluster/node", "", false},
	}
	for _, c := range cases {
		id, ok := groupIDFromPath(c.path)
		if id != c.id || ok != c.ok {
			t.Errorf("groupIDFromPath(%q) = (%q, %v), want (%q, %v)", c.path, id, ok, c.id, c.ok)
		}
	}
}
