package cluster

// Async-admission forwarding tests: ticket submissions dispatch to the
// group's ring owner, polls and event streams follow the ticket ID's
// node suffix home, and the forwarding retry policy never replays a
// non-idempotent request that may already have been applied.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"brsmn/internal/api"
	"brsmn/internal/groupd"
	"brsmn/internal/rbn"
	"brsmn/internal/shard"
)

// TestClusterTicketLifecycle drives one async create end to end across
// a 3-node cluster: submit at a non-owner, poll and stream from a third
// node, and confirm the result landed on the ring owner.
func TestClusterTicketLifecycle(t *testing.T) {
	nodes := testCluster(t, 3, nil)

	const gid = "ctk-probe"
	owner := nodes["a"].node.Owner(gid)
	var submitter, third string
	for id := range nodes {
		if id == owner {
			continue
		}
		if submitter == "" {
			submitter = id
		} else {
			third = id
		}
	}

	// Submit at a non-owner: the 202 comes back via the forwarding tier
	// and the ticket ID carries the owner's node suffix — the ticket
	// lives where the work executes.
	body := fmt.Sprintf(`{"op":"create","group":%q,"source":1,"members":[2,5]}`, gid)
	resp, err := http.Post(nodes[submitter].url+"/v1/tickets", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	sub := env[api.TicketResponse](t, resp, http.StatusAccepted)
	if resp.Header.Get(HeaderForwarded) == "" {
		t.Fatal("non-owner submission was not forwarded")
	}
	if !strings.HasSuffix(sub.Ticket.ID, "@"+owner) {
		t.Fatalf("ticket %q not scoped to owner %q", sub.Ticket.ID, owner)
	}

	// Poll from a third node: the suffix routes the poll to the issuer.
	resp, err = http.Get(nodes[third].url + "/v1/tickets/" + sub.Ticket.ID + "?wait=5s")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(HeaderNode); got != owner {
		t.Fatalf("poll served by %q, want issuer %q", got, owner)
	}
	view := env[api.TicketView](t, resp, http.StatusOK)
	if view.State != "done" || view.Error != nil || view.Stages == nil {
		t.Fatalf("view = %+v", view)
	}

	// The SSE stream crosses the hop too.
	resp, err = http.Get(nodes[third].url + "/v1/tickets/" + sub.Ticket.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "event: done") {
		t.Fatalf("forwarded stream missing done event:\n%s", raw)
	}

	// The group itself is readable everywhere.
	if p, _ := getPlan(t, nodes[third].url, gid); p.ID != gid {
		t.Fatalf("plan after async create = %+v", p)
	}

	// An ID-less async create gets a node-scoped group ID, like the sync
	// surface.
	resp, err = http.Post(nodes["a"].url+"/v1/tickets", "application/json",
		strings.NewReader(`{"op":"create","source":0,"members":[3]}`))
	if err != nil {
		t.Fatal(err)
	}
	sub = env[api.TicketResponse](t, resp, http.StatusAccepted)
	if !strings.HasPrefix(sub.Ticket.Group, "a-g") {
		t.Fatalf("auto group ID = %q, want a-g... prefix", sub.Ticket.Group)
	}
}

// TestRetryable pins the retry predicate: idempotent methods always
// retry; everything else only on connection-stage (dial) failures,
// where the request provably never reached the peer.
func TestRetryable(t *testing.T) {
	get, _ := http.NewRequest(http.MethodGet, "http://x/", nil)
	post, _ := http.NewRequest(http.MethodPost, "http://x/", nil)
	dialErr := &net.OpError{Op: "dial", Err: errors.New("connection refused")}
	readErr := &net.OpError{Op: "read", Err: errors.New("connection reset")}

	cases := []struct {
		name string
		r    *http.Request
		err  error
		want bool
	}{
		{"get/read", get, readErr, true},
		{"get/eof", get, io.ErrUnexpectedEOF, true},
		{"post/dial", post, dialErr, true},
		{"post/dial-wrapped", post, &url.Error{Op: "Post", URL: "http://x/", Err: dialErr}, true},
		{"post/read", post, readErr, false},
		{"post/eof", post, io.ErrUnexpectedEOF, false},
	}
	for _, tc := range cases {
		if got := retryable(tc.r, tc.err); got != tc.want {
			t.Errorf("%s: retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestForwardRetrySemantics proves the bugfix at the wire: a peer that
// accepts the request and then kills the connection sees a POST exactly
// once (no replay of a possibly-applied mutation), while a GET against
// the same failure is retried to the configured limit.
func TestForwardRetrySemantics(t *testing.T) {
	var hits atomic.Int32
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cluster/node" {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"data":{"id":"b","state":"up"},"error":null}`)
			return
		}
		hits.Add(1)
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("response writer is not a hijacker")
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close() // request consumed, response never written
	}))
	defer stub.Close()

	set, err := shard.New(shard.Config{Shards: 2, Group: groupd.Config{N: 16, Engine: rbn.Sequential}})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	apiSrv := api.NewServer(rbn.Sequential, set, nil, api.WithShards(set, nil))
	aTS := httptest.NewUnstartedServer(http.NotFoundHandler())
	const retries = 2
	node, err := New(Config{
		Self:           "a",
		Peers:          map[string]string{"a": "http://" + aTS.Listener.Addr().String(), "b": stub.URL},
		Local:          set,
		Handler:        apiSrv,
		PollEvery:      25 * time.Millisecond,
		ForwardRetries: retries,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	aTS.Config.Handler = node
	aTS.Start()
	defer aTS.Close()
	base := "http://" + aTS.Listener.Addr().String()

	deadline := time.Now().Add(5 * time.Second)
	for node.Ready() != nil {
		if time.Now().After(deadline) {
			t.Fatalf("node never became ready: %v", node.Ready())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Find a group the stub peer owns, so requests at "a" forward.
	gid := ""
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("retry-%04d", i)
		if node.Owner(id) == "b" {
			gid = id
			break
		}
	}
	if gid == "" {
		t.Fatal("ring never placed a probe group on the stub peer")
	}

	// Non-idempotent POST: one attempt, then the 502 surfaces.
	resp, err := http.Post(base+"/v1/groups/"+gid+"/join", "application/json", strings.NewReader(`{"dest":3}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("broken-peer POST = %d, want %d", resp.StatusCode, http.StatusBadGateway)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("POST hit the peer %d times, want exactly 1 (mutations must not be replayed)", n)
	}

	// Idempotent GET: retried up to the limit against the same failure.
	hits.Store(0)
	resp, err = http.Get(base + "/v1/groups/" + gid + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("broken-peer GET = %d, want %d", resp.StatusCode, http.StatusBadGateway)
	}
	if n := hits.Load(); n != retries+1 {
		t.Fatalf("GET hit the peer %d times, want %d (1 + %d retries)", n, retries+1, retries)
	}
}
