// Package controller runs the multicast network as a software service
// over a stream of assignments: a pool of routing workers computes
// switch plans and simulates the fabric concurrently — assignment k+1's
// plan computation overlaps assignment k's — while a reorder stage
// delivers results in submission order. This is the software analogue of
// the hardware pipelining of package netsim: there the fabric overlaps
// waves cycle by cycle; here goroutines overlap whole routings.
package controller

import (
	"context"
	"fmt"
	"sync"

	"brsmn/internal/core"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
)

// StreamResult is one routed assignment, tagged with its submission
// index. Exactly one of Res/Err is set.
type StreamResult struct {
	Index int
	Res   *core.Result
	Err   error
}

// RouteStream consumes assignments from in until it closes (or ctx is
// cancelled), routes them on `workers` concurrent goroutines sharing one
// n x n network, and emits results on the returned channel in submission
// order. The channel closes after the last result. A routing error is
// delivered in its slot; the stream keeps going.
func RouteStream(ctx context.Context, n int, in <-chan mcast.Assignment, workers int, eng rbn.Engine) (<-chan StreamResult, error) {
	nw, err := core.New(n, eng)
	if err != nil {
		return nil, err
	}
	return RouteStreamOn(ctx, nw, in, workers)
}

// RouteStreamOn is RouteStream on a caller-provided network, so a
// long-running service (the groupd epoch loop) reuses the network's
// warm planner pool across epochs instead of rebuilding the pipeline
// per call.
func RouteStreamOn(ctx context.Context, nw *core.Network, in <-chan mcast.Assignment, workers int) (<-chan StreamResult, error) {
	if workers < 1 {
		return nil, fmt.Errorf("controller: %d workers out of range", workers)
	}

	type job struct {
		idx int
		a   mcast.Assignment
	}
	jobs := make(chan job)
	unordered := make(chan StreamResult)
	out := make(chan StreamResult)

	// Dispatcher: tags submissions with their index.
	go func() {
		defer close(jobs)
		idx := 0
		for {
			select {
			case <-ctx.Done():
				return
			case a, ok := <-in:
				if !ok {
					return
				}
				select {
				case jobs <- job{idx, a}:
					idx++
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	// Workers.
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, err := nw.Route(j.a)
				select {
				case unordered <- StreamResult{Index: j.idx, Res: res, Err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(unordered)
	}()

	// Reorder stage: buffer out-of-order completions and release the
	// next expected index as soon as it lands.
	go func() {
		defer close(out)
		pending := map[int]StreamResult{}
		next := 0
		for r := range unordered {
			pending[r.Index] = r
			for {
				rr, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				select {
				case out <- rr:
					next++
				case <-ctx.Done():
					return
				}
			}
		}
		// Flush any remainder (possible only if ctx cancelled mid-way).
		for {
			rr, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			select {
			case out <- rr:
				next++
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

// RouteAll is the slice convenience over RouteStream: route every
// assignment with the given concurrency and return the ordered results.
func RouteAll(n int, assignments []mcast.Assignment, workers int, eng rbn.Engine) ([]StreamResult, error) {
	nw, err := core.New(n, eng)
	if err != nil {
		return nil, err
	}
	return RouteAllOn(nw, assignments, workers)
}

// RouteAllOn is RouteAll on a caller-provided network (see
// RouteStreamOn).
func RouteAllOn(nw *core.Network, assignments []mcast.Assignment, workers int) ([]StreamResult, error) {
	in := make(chan mcast.Assignment)
	go func() {
		defer close(in)
		for _, a := range assignments {
			in <- a
		}
	}()
	out, err := RouteStreamOn(context.Background(), nw, in, workers)
	if err != nil {
		return nil, err
	}
	results := make([]StreamResult, 0, len(assignments))
	for r := range out {
		results = append(results, r)
	}
	return results, nil
}
