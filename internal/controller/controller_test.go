package controller

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
	"brsmn/internal/xbar"
)

// TestRouteAllOrderedAndCorrect checks results arrive in submission
// order and match the oracle, across worker counts.
func TestRouteAllOrderedAndCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(240))
	n := 32
	as := make([]mcast.Assignment, 24)
	for i := range as {
		as[i] = workload.Random(rng, n, rng.Float64(), rng.Float64())
	}
	xb, err := xbar.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		results, err := RouteAll(n, as, workers, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(as) {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, r := range results {
			if r.Index != i {
				t.Fatalf("workers=%d: slot %d holds index %d", workers, i, r.Index)
			}
			if r.Err != nil {
				t.Fatalf("workers=%d: assignment %d: %v", workers, i, r.Err)
			}
			want, err := xb.Route(as[i])
			if err != nil {
				t.Fatal(err)
			}
			for out := range want {
				if r.Res.Deliveries[out].Source != want[out] {
					t.Fatalf("workers=%d assignment %d output %d mismatch", workers, i, out)
				}
			}
		}
	}
}

// TestStreamErrorsInBand checks a bad assignment yields an error in its
// slot without stopping the stream.
func TestStreamErrorsInBand(t *testing.T) {
	n := 8
	good := workload.Broadcast(n, 1)
	bad := mcast.Assignment{N: n, Dests: [][]int{{0}, {0}, nil, nil, nil, nil, nil, nil}}
	results, err := RouteAll(n, []mcast.Assignment{good, bad, good}, 2, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("good assignments errored")
	}
	if results[1].Err == nil {
		t.Error("bad assignment did not error in its slot")
	}
}

// TestStreamCancel checks context cancellation shuts the stream down.
func TestStreamCancel(t *testing.T) {
	n := 16
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan mcast.Assignment)
	out, err := RouteStream(ctx, n, in, 2, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	in <- workload.Broadcast(n, 0)
	<-out
	cancel()
	// The output channel must close soon after cancellation even though
	// `in` stays open.
	select {
	case _, ok := <-out:
		if ok {
			// A buffered result may still drain; the next read must
			// close.
			if _, ok := <-out; ok {
				t.Error("stream still open after cancel")
			}
		}
	case <-time.After(2 * time.Second):
		t.Error("stream did not close after cancel")
	}
}

// TestRouteStreamValidation covers the guards.
func TestRouteStreamValidation(t *testing.T) {
	in := make(chan mcast.Assignment)
	if _, err := RouteStream(context.Background(), 8, in, 0, rbn.Sequential); err == nil {
		t.Error("accepted zero workers")
	}
	if _, err := RouteStream(context.Background(), 7, in, 1, rbn.Sequential); err == nil {
		t.Error("accepted bad size")
	}
}
