// Package copynet implements the copy-network multicast baseline in the
// style of Lee's nonblocking copy network [6] cascaded with a Benes
// distribution network — the classical "copy then route" alternative the
// BRSMN is compared against. The pipeline is:
//
//  1. concentrate: a reverse-banyan bit-sorting pass (package rbn) packs
//     the active inputs onto contiguous top positions;
//  2. running adder (package prefix): prefix sums of the fanouts assign
//     each multicast a contiguous output interval — the dummy address
//     encoding;
//  3. broadcast banyan (package banyan): interval splitting makes the
//     copies, which emerge on the contiguous interval block;
//  4. distribution (package benes): a centrally routed Benes network
//     carries copy j of each multicast to its j-th smallest real
//     destination.
//
// Hardware is O(n log n) switches — the same order as the feedback BRSMN —
// but the Benes stage's looping algorithm is centralized: its routing
// work is O(n log n) serial operations versus the BRSMN's O(log^2 n)
// distributed gate delays, which is the trade Table 2 of the paper
// quantifies.
package copynet

import (
	"fmt"

	"brsmn/internal/banyan"
	"brsmn/internal/benes"
	"brsmn/internal/mcast"
	"brsmn/internal/prefix"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
)

// Network is an n x n copy-network multicast switch.
type Network struct {
	n   int
	ran *prefix.Network
}

// New returns an n x n copy network (n a power of two >= 2).
func New(n int) (*Network, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("copynet: size %d is not a power of two >= 2", n)
	}
	ran, err := prefix.NewNetwork(n)
	if err != nil {
		return nil, err
	}
	return &Network{n: n, ran: ran}, nil
}

// N returns the network size.
func (nw *Network) N() int { return nw.n }

// Result records a routed assignment.
type Result struct {
	N int
	// OutSource[p] is the input whose connection is delivered at output
	// p, or -1.
	OutSource []int
	// Intervals[i] is the copy interval assigned to input i (Lo > Hi if
	// idle) — the dummy address encoding, exposed for inspection.
	Intervals [][2]int
}

// Route realizes a multicast assignment and verifies the deliveries
// against it.
func (nw *Network) Route(a mcast.Assignment) (*Result, error) {
	n := nw.n
	if a.N != n {
		return nil, fmt.Errorf("copynet: assignment for %d inputs on a %d x %d network", a.N, n, n)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}

	// Stage 1: concentrate active inputs at the top positions, in input
	// order. The bit-sorting RBN compacts the γ-marked (idle) inputs at
	// the bottom; its one-to-one routing preserves no order, so sort by
	// activity and carry the input index as payload, then order within
	// the active block is irrelevant — each cell knows its own fanout
	// and destinations.
	idle := make([]bool, n)
	active := 0
	for i := range idle {
		if len(a.Dests[i]) == 0 {
			idle[i] = true
		} else {
			active++
		}
	}
	plan, err := rbn.BitSortPlan(n, idle, active%n) // idles compact from position `active`
	if err != nil {
		return nil, err
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	conc, err := rbn.Apply(plan, ids, nil)
	if err != nil {
		return nil, err
	}

	// Stage 2: running adder over the concentrated fanouts.
	fanouts := make([]int, n)
	for p := 0; p < active; p++ {
		fanouts[p] = len(a.Dests[conc[p]])
	}
	starts, err := nw.ran.Run(fanouts)
	if err != nil {
		return nil, err
	}
	res := &Result{N: n, OutSource: make([]int, n), Intervals: make([][2]int, n)}
	for i := range res.OutSource {
		res.OutSource[i] = -1
		res.Intervals[i] = [2]int{0, -1}
	}

	// Stage 3: broadcast banyan with the interval cells.
	cells := make([]banyan.Cell[int], n)
	for p := range cells {
		cells[p] = banyan.IdleCell[int]()
	}
	total := 0
	for p := 0; p < active; p++ {
		lo := starts[p] - fanouts[p] // exclusive prefix
		hi := starts[p] - 1
		src := conc[p]
		cells[p] = banyan.Cell[int]{Lo: lo, Hi: hi, Payload: src, Index: 0}
		res.Intervals[src] = [2]int{lo, hi}
		total = starts[p]
	}
	if total > n {
		return nil, fmt.Errorf("copynet: total fanout %d exceeds %d outputs", total, n)
	}
	copies, err := banyan.Route(cells)
	if err != nil {
		return nil, err
	}

	// Stage 4: Benes distribution — copy Index of input src goes to the
	// Index-th smallest destination of src.
	perm := make([]int, n)
	carrying := make([]int, n)
	for i := range perm {
		perm[i] = -1
		carrying[i] = -1
	}
	for p, c := range copies {
		if c.Idle() {
			continue
		}
		src := c.Payload
		dests := a.Dests[src]
		if c.Index < 0 || c.Index >= len(dests) {
			return nil, fmt.Errorf("copynet: copy at %d of input %d has index %d of %d", p, src, c.Index, len(dests))
		}
		perm[p] = dests[c.Index]
		carrying[p] = src
	}
	bplan, err := benes.RoutePermutation(perm)
	if err != nil {
		return nil, err
	}
	delivered, err := benes.Apply(bplan, carrying)
	if err != nil {
		return nil, err
	}
	live := make([]bool, n)
	for p, d := range perm {
		if d >= 0 {
			live[d] = true
			_ = p
		}
	}
	for out := 0; out < n; out++ {
		if live[out] {
			res.OutSource[out] = delivered[out]
		}
	}

	// Verify against the assignment.
	owner := a.OutputOwner()
	for out, want := range owner {
		if res.OutSource[out] != want {
			return nil, fmt.Errorf("copynet: output %d received source %d, want %d", out, res.OutSource[out], want)
		}
	}
	return res, nil
}

// Switches returns the total switch/adder hardware of the pipeline:
// concentrator RBN + running adder + broadcast banyan + Benes.
func (nw *Network) Switches() int {
	n := nw.n
	return n/2*shuffle.Log2(n) + nw.ran.Adders() + banyan.Switches(n) + benes.Switches(n)
}

// Depth returns the column depth of the pipeline.
func (nw *Network) Depth() int {
	n := nw.n
	return shuffle.Log2(n) + nw.ran.Depth() + banyan.Depth(n) + benes.Depth(n)
}
