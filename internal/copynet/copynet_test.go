package copynet

import (
	"math/rand"
	"testing"

	"brsmn/internal/mcast"
	"brsmn/internal/workload"
	"brsmn/internal/xbar"
)

// routeAndCompare routes through the copy network and compares with the
// crossbar oracle.
func routeAndCompare(t *testing.T, a mcast.Assignment) {
	t.Helper()
	nw, err := New(a.N)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Route(a)
	if err != nil {
		t.Fatalf("%v: %v", a, err)
	}
	xb, err := xbar.New(a.N)
	if err != nil {
		t.Fatal(err)
	}
	want, err := xb.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	for out := range want {
		if res.OutSource[out] != want[out] {
			t.Fatalf("%v: output %d = %d, oracle %d", a, out, res.OutSource[out], want[out])
		}
	}
}

// TestExhaustiveMulticastN4 checks every 4 x 4 multicast assignment.
func TestExhaustiveMulticastN4(t *testing.T) {
	n := 4
	var owner [4]int
	var rec func(o int)
	rec = func(o int) {
		if o == n {
			dests := make([][]int, n)
			for out, in := range owner {
				if in >= 0 {
					dests[in] = append(dests[in], out)
				}
			}
			routeAndCompare(t, mcast.MustNew(n, dests))
			return
		}
		for in := -1; in < n; in++ {
			owner[o] = in
			rec(o + 1)
		}
	}
	rec(0)
}

// TestRandomTraffic checks random assignments across sizes and loads.
func TestRandomTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, n := range []int{2, 8, 32, 128, 512} {
		for trial := 0; trial < 10; trial++ {
			routeAndCompare(t, workload.Random(rng, n, rng.Float64(), rng.Float64()))
		}
	}
}

// TestBroadcastAndCombs exercises extreme fanouts.
func TestBroadcastAndCombs(t *testing.T) {
	routeAndCompare(t, workload.Broadcast(64, 17))
	for g := 1; g <= 64; g *= 2 {
		a, err := workload.MaxSplit(64, g)
		if err != nil {
			t.Fatal(err)
		}
		routeAndCompare(t, a)
	}
}

// TestIntervalsAreMonotone checks the dummy address encoding invariant
// the broadcast banyan relies on.
func TestIntervalsAreMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	nw, _ := New(64)
	a := workload.Random(rng, 64, 0.9, 0.4)
	res, err := nw.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, iv := range res.Intervals {
		if iv[1] < iv[0] {
			continue
		}
		covered += iv[1] - iv[0] + 1
	}
	if covered != a.Fanout() {
		t.Errorf("intervals cover %d addresses, want fanout %d", covered, a.Fanout())
	}
}

// TestValidation checks error paths.
func TestValidation(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("New(3) succeeded")
	}
	nw, _ := New(8)
	if _, err := nw.Route(workload.Broadcast(4, 0)); err == nil {
		t.Error("Route accepted wrong-size assignment")
	}
}

// TestCostAccessors sanity-checks the hardware model.
func TestCostAccessors(t *testing.T) {
	nw, _ := New(64)
	if nw.N() != 64 {
		t.Error("N wrong")
	}
	if nw.Switches() <= 0 || nw.Depth() <= 0 {
		t.Error("cost accessors non-positive")
	}
	// O(n log n): within a small factor of n log2 n.
	if s := nw.Switches(); s > 6*64*6 {
		t.Errorf("switch count %d implausibly large", s)
	}
}
