// Package core implements the paper's primary contribution: the binary
// radix sorting multicast network (BRSMN) of Yang & Wang. An n x n BRSMN
// is an n x n binary splitting network (BSN) followed by two n/2 x n/2
// BRSMNs (Fig. 1); the recursion bottoms out in a column of 2x2 switches
// that deliver each connection to its final output(s) (Fig. 2).
//
// The network is self-routing: each input carries only its routing-tag
// sequence (package mcast), every BSN sets its own switches with the
// distributed algorithms of package rbn, and a connection whose
// destinations straddle both halves of a level is split in flight by a
// broadcast switch. Any multicast assignment — pairwise-disjoint
// destination sets — is realized without blocking, over edge-disjoint
// trees.
package core

import (
	"fmt"

	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/swbox"
	"brsmn/internal/tag"
)

// LevelPlan records the switch plans of one BSN instance: the level it
// sits at (1-based, level 1 = outermost), the first network output under
// it, and the scatter and quasisort reverse-banyan plans.
type LevelPlan struct {
	Level   int
	Base    int
	Size    int
	Scatter *rbn.Plan
	Quasi   *rbn.Plan
}

// Delivery is what one network output receives: the source input of the
// connection delivered there (-1 if none) and its payload.
type Delivery struct {
	Source  int
	Payload any
}

// Result is a fully routed multicast assignment: per-output deliveries
// plus every switch setting chosen along the way, for verification, cost
// accounting and rendering.
type Result struct {
	N          int
	Deliveries []Delivery
	Plans      []LevelPlan
	// Final[i] is the setting of the i-th last-level 2x2 switch.
	Final []swbox.Setting
}

// Network is an n x n BRSMN routing engine backed by a planner pool:
// each Route draws a warm arena-backed Planner, routes through it, and
// detaches the result, so steady-state routing costs a handful of
// allocations (the detached Result) instead of rebuilding the whole
// pipeline. A Network is safe for concurrent use. The zero value is not
// usable; construct with New.
type Network struct {
	n    int
	eng  rbn.Engine
	pool *PlannerPool
}

// New returns an n x n BRSMN (n a power of two, n >= 2) whose distributed
// switch-setting sweeps run on the given engine.
func New(n int, eng rbn.Engine) (*Network, error) {
	pool, err := NewPlannerPool(n, eng)
	if err != nil {
		return nil, err
	}
	return &Network{n: n, eng: eng, pool: pool}, nil
}

// N returns the network size.
func (nw *Network) N() int { return nw.n }

// Planners exposes the network's planner pool for callers that want the
// raw zero-allocation path (results valid only until the planner's next
// Route) instead of Route's detached results.
func (nw *Network) Planners() *PlannerPool { return nw.pool }

// Route realizes a multicast assignment: it computes every switch setting
// with the self-routing algorithms and simulates the resulting
// configuration, returning the per-output deliveries. The routing is
// verified internally: Route fails rather than return a misdelivery.
func (nw *Network) Route(a mcast.Assignment) (*Result, error) {
	return nw.RouteWithPayloads(a, nil)
}

// RouteWithPayloads is Route with a payload attached to each input's
// connection; Deliveries carry the payloads to every destination.
// payloads may be nil for payload-free routing.
func (nw *Network) RouteWithPayloads(a mcast.Assignment, payloads []any) (*Result, error) {
	pl := nw.pool.Get()
	res, err := pl.RouteWithPayloads(a, payloads)
	if err != nil {
		nw.pool.Put(pl)
		return nil, err
	}
	out := res.Clone()
	nw.pool.Put(pl)
	return out, nil
}

// deliveryOf resolves a final-column cell into a Delivery, attaching the
// source's payload from the latest route.
func (p *Planner) deliveryOf(c pcell) Delivery {
	if c.isIdle() {
		return Delivery{Source: -1}
	}
	d := Delivery{Source: int(c.src)}
	if p.payloads != nil {
		d.Payload = p.payloads[c.src]
	}
	return d
}

// splitFinal duplicates a broadcast connection onto both final outputs;
// the delivery is fully described by the source, so the split is the
// identity.
func splitFinal(c pcell) (pcell, pcell) { return c, c }

// FinalSetting chooses the 2x2 switch setting realizing the two final
// tags. The valid combinations follow from the BSN constraints: at most
// one connection wants each output.
func FinalSetting(h [2]tag.Value) (swbox.Setting, error) {
	want := func(v tag.Value, out int) bool {
		return v == tag.Alpha || (out == 0 && v == tag.V0) || (out == 1 && v == tag.V1)
	}
	w00, w01 := want(h[0], 0), want(h[0], 1) // input 0 wants output 0 / 1
	w10, w11 := want(h[1], 0), want(h[1], 1)
	if (w00 && w10) || (w01 && w11) {
		return 0, fmt.Errorf("core: final switch conflict: tags (%v, %v)", h[0], h[1])
	}
	switch {
	case h[0] == tag.Alpha:
		return swbox.UpperBcast, nil
	case h[1] == tag.Alpha:
		return swbox.LowerBcast, nil
	case w01 || w10:
		return swbox.Cross, nil
	default:
		return swbox.Parallel, nil
	}
}

// Verify checks a routed Result against the assignment: every destination
// receives exactly its source's connection, and outputs outside every
// destination set receive nothing.
func Verify(a mcast.Assignment, res *Result) error {
	if a.N != res.N {
		return fmt.Errorf("core: verifying an n=%d assignment against an n=%d result", a.N, res.N)
	}
	return verifyOwner(a.OutputOwner(), res.Deliveries)
}

// Route is a convenience constructing a sequential-engine network and
// routing one assignment through it.
func Route(a mcast.Assignment) (*Result, error) {
	nw, err := New(a.N, rbn.Sequential)
	if err != nil {
		return nil, err
	}
	return nw.Route(a)
}
