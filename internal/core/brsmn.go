// Package core implements the paper's primary contribution: the binary
// radix sorting multicast network (BRSMN) of Yang & Wang. An n x n BRSMN
// is an n x n binary splitting network (BSN) followed by two n/2 x n/2
// BRSMNs (Fig. 1); the recursion bottoms out in a column of 2x2 switches
// that deliver each connection to its final output(s) (Fig. 2).
//
// The network is self-routing: each input carries only its routing-tag
// sequence (package mcast), every BSN sets its own switches with the
// distributed algorithms of package rbn, and a connection whose
// destinations straddle both halves of a level is split in flight by a
// broadcast switch. Any multicast assignment — pairwise-disjoint
// destination sets — is realized without blocking, over edge-disjoint
// trees.
package core

import (
	"fmt"

	"brsmn/internal/bsn"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/swbox"
	"brsmn/internal/tag"
)

// LevelPlan records the switch plans of one BSN instance: the level it
// sits at (1-based, level 1 = outermost), the first network output under
// it, and the scatter and quasisort reverse-banyan plans.
type LevelPlan struct {
	Level   int
	Base    int
	Size    int
	Scatter *rbn.Plan
	Quasi   *rbn.Plan
}

// Delivery is what one network output receives: the source input of the
// connection delivered there (-1 if none) and its payload.
type Delivery struct {
	Source  int
	Payload any
}

// Result is a fully routed multicast assignment: per-output deliveries
// plus every switch setting chosen along the way, for verification, cost
// accounting and rendering.
type Result struct {
	N          int
	Deliveries []Delivery
	Plans      []LevelPlan
	// Final[i] is the setting of the i-th last-level 2x2 switch.
	Final []swbox.Setting
}

// Network is an n x n BRSMN routing engine. The zero value is not usable;
// construct with New.
type Network struct {
	n   int
	eng rbn.Engine
}

// New returns an n x n BRSMN (n a power of two, n >= 2) whose distributed
// switch-setting sweeps run on the given engine.
func New(n int, eng rbn.Engine) (*Network, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("core: network size %d is not a power of two >= 2", n)
	}
	return &Network{n: n, eng: eng}, nil
}

// N returns the network size.
func (nw *Network) N() int { return nw.n }

// Route realizes a multicast assignment: it computes every switch setting
// with the self-routing algorithms and simulates the resulting
// configuration, returning the per-output deliveries. The routing is
// verified internally: Route fails rather than return a misdelivery.
func (nw *Network) Route(a mcast.Assignment) (*Result, error) {
	return nw.RouteWithPayloads(a, nil)
}

// RouteWithPayloads is Route with a payload attached to each input's
// connection; Deliveries carry the payloads to every destination.
// payloads may be nil for payload-free routing.
func (nw *Network) RouteWithPayloads(a mcast.Assignment, payloads []any) (*Result, error) {
	if payloads != nil && len(payloads) != nw.n {
		return nil, fmt.Errorf("core: %d payloads for %d inputs", len(payloads), nw.n)
	}
	if a.N != nw.n {
		return nil, fmt.Errorf("core: assignment for %d inputs on a %d x %d network", a.N, nw.n, nw.n)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		return nil, err
	}
	if payloads != nil {
		for i := range cells {
			if !cells[i].IsIdle() {
				cells[i].Payload = payloads[i]
			}
		}
	}
	res := &Result{
		N:          nw.n,
		Deliveries: make([]Delivery, nw.n),
		Final:      make([]swbox.Setting, 0, nw.n/2),
	}
	if err := nw.routeRec(cells, 1, 0, res); err != nil {
		return nil, err
	}
	if err := Verify(a, res); err != nil {
		return nil, fmt.Errorf("core: routed configuration failed verification: %w", err)
	}
	return res, nil
}

// routeRec routes the cells of one (sub-)BRSMN covering network outputs
// [base, base+len(cells)).
func (nw *Network) routeRec(cells []bsn.Cell, level, base int, res *Result) error {
	n := len(cells)
	if n == 2 {
		return nw.deliver(cells, base, res)
	}
	r, err := bsn.Route(cells, nw.eng)
	if err != nil {
		return fmt.Errorf("core: level %d BSN at output base %d: %w", level, base, err)
	}
	res.Plans = append(res.Plans, LevelPlan{
		Level: level, Base: base, Size: n, Scatter: r.Scatter, Quasi: r.Quasi,
	})
	upper := make([]bsn.Cell, n/2)
	lower := make([]bsn.Cell, n/2)
	for i, c := range r.Out {
		adv := c
		if !c.IsIdle() {
			adv, err = bsn.Advance(c)
			if err != nil {
				return fmt.Errorf("core: level %d output %d: %w", level, i, err)
			}
		}
		if i < n/2 {
			upper[i] = adv
		} else {
			lower[i-n/2] = adv
		}
	}
	if err := nw.routeRec(upper, level+1, base, res); err != nil {
		return err
	}
	return nw.routeRec(lower, level+1, base+n/2, res)
}

// deliver realizes a 2x2 BRSMN — the last level of the recursion — as a
// single switch: a 0-tagged connection goes to the upper output, a
// 1-tagged one to the lower output and an α connection to both.
func (nw *Network) deliver(cells []bsn.Cell, base int, res *Result) error {
	heads := [2]tag.Value{tag.Eps, tag.Eps}
	for k, c := range cells {
		if c.IsIdle() {
			continue
		}
		if len(c.Seq) != 1 {
			return fmt.Errorf("core: final-level cell from input %d still has %d tags", c.Source, len(c.Seq))
		}
		heads[k] = c.Seq[0]
	}
	setting, err := FinalSetting(heads)
	if err != nil {
		return err
	}
	out0, out1 := swbox.Apply(setting, cells[0], cells[1], splitFinal)
	res.Final = append(res.Final, setting)
	res.Deliveries[base] = deliveryOf(out0)
	res.Deliveries[base+1] = deliveryOf(out1)
	return nil
}

func deliveryOf(c bsn.Cell) Delivery {
	if c.IsIdle() {
		return Delivery{Source: -1}
	}
	return Delivery{Source: c.Source, Payload: c.Payload}
}

func splitFinal(c bsn.Cell) (bsn.Cell, bsn.Cell) {
	up, low := c, c
	up.Tag = tag.V0
	low.Tag = tag.V1
	return up, low
}

// FinalSetting chooses the 2x2 switch setting realizing the two final
// tags. The valid combinations follow from the BSN constraints: at most
// one connection wants each output.
func FinalSetting(h [2]tag.Value) (swbox.Setting, error) {
	want := func(v tag.Value, out int) bool {
		return v == tag.Alpha || (out == 0 && v == tag.V0) || (out == 1 && v == tag.V1)
	}
	w00, w01 := want(h[0], 0), want(h[0], 1) // input 0 wants output 0 / 1
	w10, w11 := want(h[1], 0), want(h[1], 1)
	if (w00 && w10) || (w01 && w11) {
		return 0, fmt.Errorf("core: final switch conflict: tags (%v, %v)", h[0], h[1])
	}
	switch {
	case h[0] == tag.Alpha:
		return swbox.UpperBcast, nil
	case h[1] == tag.Alpha:
		return swbox.LowerBcast, nil
	case w01 || w10:
		return swbox.Cross, nil
	default:
		return swbox.Parallel, nil
	}
}

// Verify checks a routed Result against the assignment: every destination
// receives exactly its source's connection, and outputs outside every
// destination set receive nothing.
func Verify(a mcast.Assignment, res *Result) error {
	if a.N != res.N {
		return fmt.Errorf("core: verifying an n=%d assignment against an n=%d result", a.N, res.N)
	}
	owner := a.OutputOwner()
	for out, want := range owner {
		got := res.Deliveries[out].Source
		if got != want {
			return fmt.Errorf("core: output %d received source %d, want %d", out, got, want)
		}
	}
	return nil
}

// Route is a convenience constructing a sequential-engine network and
// routing one assignment through it.
func Route(a mcast.Assignment) (*Result, error) {
	nw, err := New(a.N, rbn.Sequential)
	if err != nil {
		return nil, err
	}
	return nw.Route(a)
}
