package core

import (
	"fmt"
	"math/rand"
	"testing"

	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
)

// route is a test helper that routes and fails on error.
func route(t *testing.T, a mcast.Assignment) *Result {
	t.Helper()
	res, err := Route(a)
	if err != nil {
		t.Fatalf("Route(%v): %v", a, err)
	}
	return res
}

// TestFig2PaperExample reproduces the routing example of Fig. 2: the
// multicast assignment {{0,1}, ∅, {3,4,7}, {2}, ∅, ∅, ∅, {5,6}} on an
// 8 x 8 BRSMN.
func TestFig2PaperExample(t *testing.T) {
	a := workload.PaperFig2()
	res := route(t, a)
	want := map[int]int{0: 0, 1: 0, 2: 3, 3: 2, 4: 2, 5: 7, 6: 7, 7: 2}
	for out := 0; out < 8; out++ {
		src, ok := want[out]
		if !ok {
			src = -1
		}
		if res.Deliveries[out].Source != src {
			t.Errorf("output %d received source %d, want %d", out, res.Deliveries[out].Source, src)
		}
	}
	// The 8x8 BRSMN has one 8x8 BSN, two 4x4 BSNs, and four final 2x2
	// switches (Fig. 2).
	if len(res.Plans) != 3 {
		t.Errorf("expected 3 BSN instances, got %d", len(res.Plans))
	}
	if len(res.Final) != 4 {
		t.Errorf("expected 4 final switches, got %d", len(res.Final))
	}
}

// TestExhaustiveUnicastN4 routes every partial permutation of a 4x4
// network (5^4 destination vectors with repetition filtered).
func TestExhaustiveUnicastN4(t *testing.T) {
	n := 4
	var vec [4]int
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			used := map[int]bool{}
			ok := true
			for _, d := range vec {
				if d >= 0 {
					if used[d] {
						ok = false
						break
					}
					used[d] = true
				}
			}
			if !ok {
				return
			}
			a, err := mcast.Permutation(vec[:])
			if err != nil {
				t.Fatal(err)
			}
			route(t, a)
			return
		}
		for d := -1; d < n; d++ {
			vec[i] = d
			rec(i + 1)
		}
	}
	rec(0)
}

// TestExhaustiveMulticastN4 routes every multicast assignment of a 4x4
// network: every function from outputs to {idle, input 0..3} (5^4 = 625
// assignments, all valid by construction).
func TestExhaustiveMulticastN4(t *testing.T) {
	n := 4
	var owner [4]int // owner[out] in [-1, n)
	var rec func(o int)
	rec = func(o int) {
		if o == n {
			dests := make([][]int, n)
			for out, in := range owner {
				if in >= 0 {
					dests[in] = append(dests[in], out)
				}
			}
			a, err := mcast.New(n, dests)
			if err != nil {
				t.Fatal(err)
			}
			route(t, a)
			return
		}
		for in := -1; in < n; in++ {
			owner[o] = in
			rec(o + 1)
		}
	}
	rec(0)
}

// TestRandomMulticast routes random multicast assignments over a range of
// sizes and loads; Route verifies deliveries internally, so reaching the
// end means exact delivery.
func TestRandomMulticast(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		for _, load := range []float64{0.1, 0.5, 0.9, 1.0} {
			for trial := 0; trial < 10; trial++ {
				a := workload.Random(rng, n, load, rng.Float64())
				route(t, a)
			}
		}
	}
}

// TestBroadcast routes the full broadcast from every source of a 32x32
// network.
func TestBroadcast(t *testing.T) {
	for src := 0; src < 32; src++ {
		a := workload.Broadcast(32, src)
		res := route(t, a)
		for out, d := range res.Deliveries {
			if d.Source != src {
				t.Fatalf("broadcast from %d: output %d got source %d", src, out, d.Source)
			}
		}
	}
}

// TestMaxSplit routes the adversarial maximum-split combs.
func TestMaxSplit(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		for g := 1; g <= n; g *= 2 {
			a, err := workload.MaxSplit(n, g)
			if err != nil {
				t.Fatal(err)
			}
			route(t, a)
		}
	}
}

// TestFullPermutations routes full random permutations (the unicast
// special case of Section 2).
func TestFullPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{2, 8, 64, 512} {
		for trial := 0; trial < 5; trial++ {
			a := workload.Permutation(rng, n)
			route(t, a)
		}
	}
}

// TestPayloadDelivery checks that payloads reach every destination of
// their multicast.
func TestPayloadDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 64
	nw, err := New(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	a := workload.Random(rng, n, 0.8, 0.5)
	payloads := make([]any, n)
	for i := range payloads {
		payloads[i] = fmt.Sprintf("msg-%d", i)
	}
	res, err := nw.RouteWithPayloads(a, payloads)
	if err != nil {
		t.Fatal(err)
	}
	for out, d := range res.Deliveries {
		if d.Source < 0 {
			continue
		}
		if d.Payload != payloads[d.Source] {
			t.Errorf("output %d got payload %v, want %v", out, d.Payload, payloads[d.Source])
		}
	}
}

// TestParallelEngineRouting checks routing works identically under the
// parallel engine.
func TestParallelEngineRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 128
	seqNet, _ := New(n, rbn.Sequential)
	parNet, _ := New(n, rbn.Engine{Workers: 8})
	for trial := 0; trial < 5; trial++ {
		a := workload.Random(rng, n, 0.7, 0.6)
		r1, err := seqNet.Route(a)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := parNet.Route(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r1.Deliveries {
			if r1.Deliveries[i].Source != r2.Deliveries[i].Source {
				t.Fatalf("engines disagree at output %d", i)
			}
		}
	}
}

// TestNewErrors checks constructor validation.
func TestNewErrors(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := New(n, rbn.Sequential); err == nil {
			t.Errorf("New(%d) succeeded; want error", n)
		}
	}
	nw, _ := New(8, rbn.Sequential)
	a := workload.Random(rand.New(rand.NewSource(1)), 16, 0.5, 0.5)
	if _, err := nw.Route(a); err == nil {
		t.Error("Route accepted an assignment of the wrong size")
	}
}

// TestStructureInventory checks the Fig. 1 construction arithmetic: an
// n x n BRSMN instantiates 2^(k-1) BSNs of size n/2^(k-1) at level k and
// n/2 final switches, when every level is exercised.
func TestStructureInventory(t *testing.T) {
	n := 64
	// Broadcast exercises every BSN instance.
	res := route(t, workload.Broadcast(n, 3))
	counts := map[int]int{} // size -> #BSNs
	for _, lp := range res.Plans {
		counts[lp.Size]++
	}
	wantLevels := 0
	for sz, want := n, 1; sz > 2; sz, want = sz/2, want*2 {
		if counts[sz] != want {
			t.Errorf("BSNs of size %d: got %d, want %d", sz, counts[sz], want)
		}
		wantLevels++
	}
	if len(counts) != wantLevels {
		t.Errorf("BSN size classes: got %d, want %d", len(counts), wantLevels)
	}
	if len(res.Final) != n/2 {
		t.Errorf("final switches: got %d, want %d", len(res.Final), n/2)
	}
}
