package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"brsmn/internal/mcast"
	"brsmn/internal/workload"
)

// TestVerifyCatchesTampering is the failure-injection test for the
// verifier: every way of corrupting a delivery vector must be detected.
func TestVerifyCatchesTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	a := workload.Random(rng, 16, 0.8, 0.5)
	res, err := Route(a)
	if err != nil {
		t.Fatal(err)
	}
	// Swap two distinct deliveries.
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			if res.Deliveries[i].Source == res.Deliveries[j].Source {
				continue
			}
			res.Deliveries[i], res.Deliveries[j] = res.Deliveries[j], res.Deliveries[i]
			if Verify(a, res) == nil {
				t.Fatalf("Verify missed a swap of outputs %d and %d", i, j)
			}
			res.Deliveries[i], res.Deliveries[j] = res.Deliveries[j], res.Deliveries[i]
		}
	}
	// Drop a delivery.
	for i := 0; i < 16; i++ {
		if res.Deliveries[i].Source < 0 {
			continue
		}
		old := res.Deliveries[i]
		res.Deliveries[i] = Delivery{Source: -1}
		if Verify(a, res) == nil {
			t.Fatalf("Verify missed a dropped delivery at output %d", i)
		}
		res.Deliveries[i] = old
	}
	// Fabricate a delivery on an idle output.
	for i := 0; i < 16; i++ {
		if res.Deliveries[i].Source >= 0 {
			continue
		}
		res.Deliveries[i] = Delivery{Source: 3}
		if Verify(a, res) == nil {
			t.Fatalf("Verify missed a fabricated delivery at output %d", i)
		}
		res.Deliveries[i] = Delivery{Source: -1}
	}
	// Size mismatch.
	if Verify(mcast.MustNew(8, nil), res) == nil {
		t.Error("Verify accepted mismatched sizes")
	}
	// Untampered result still verifies.
	if err := Verify(a, res); err != nil {
		t.Errorf("Verify rejected a clean result: %v", err)
	}
}

// TestQuickFullNetwork property-tests the whole network: any random
// owner map over a 16- or 32-port network routes and verifies. The
// generator interprets raw bytes as an output->input owner map, which is
// always a valid assignment.
func TestQuickFullNetwork(t *testing.T) {
	f := func(raw []uint8, wide bool) bool {
		n := 16
		if wide {
			n = 32
		}
		dests := make([][]int, n)
		for out := 0; out < n && out < len(raw); out++ {
			in := int(raw[out]) % (n + 1)
			if in == n {
				continue // idle output
			}
			dests[in] = append(dests[in], out)
		}
		a, err := mcast.New(n, dests)
		if err != nil {
			return false
		}
		_, err = Route(a)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
