package core

// Observability hooks for the planning hot path: per-route tracing
// (RouteTraced), planner memory accounting, and the planner pool's
// hit/miss/retention counters. Everything here is pay-for-use — an
// untraced Route takes one nil check per recursion node, and the pool
// counters are single atomic adds.

import (
	"time"

	"brsmn/internal/mcast"
	"brsmn/internal/obs"
	"brsmn/internal/shuffle"
)

// RetainedTagBytes returns the bytes of tag-tree arena storage the
// planner keeps alive between routes — the part of its footprint that
// grows with the number of active inputs rather than network size.
func (p *Planner) RetainedTagBytes() int {
	return len(p.treeWords) * 8
}

// lastUsedTagBytes returns the arena bytes the most recent route
// actually consumed (the arena is reset at the next route, so the value
// persists after Route returns).
func (p *Planner) lastUsedTagBytes() int {
	return p.treeUsed * 8
}

// ShrinkArenas drops the retained tag-tree arena; subsequent routes
// regrow it to actual need. The fixed, n-sized planning structures
// (cell levels, plan slots, routers) are untouched. The retained route
// loses its trees, so in-place patching is disabled until the next full
// route.
func (p *Planner) ShrinkArenas() {
	p.treeWords = nil
	p.treeUsed = 0
	p.routed = false
}

// RouteTraced is Route with per-stage tracing into tr: wall-clock total,
// scatter/quasisort/advance/deliver stage times (CPU-summed across the
// parallel recursion) and the paper-level route quantities. A nil tr
// falls back to the untraced path.
func (p *Planner) RouteTraced(a mcast.Assignment, tr *obs.RouteTrace) (*Result, error) {
	if tr == nil {
		return p.Route(a)
	}
	tr.N = p.n
	tr.When = time.Now()
	p.tr = tr
	start := time.Now()
	res, err := p.RouteWithPayloads(a, nil)
	p.tr = nil
	tr.TotalNs = int64(time.Since(start))
	if err != nil {
		return nil, err
	}
	p.fillTraceQuantities(tr)
	return res, nil
}

// fillTraceQuantities derives the Section 7 accounting numbers from the
// freshly routed plan slots: switch settings emitted (every reverse-
// banyan stage plus the final column), α-splits realized as broadcast
// settings, and the physical column depth.
func (p *Planner) fillTraceQuantities(tr *obs.RouteTrace) {
	tr.LevelsSwept = p.m
	tr.BSNs = len(p.plans)
	settings, alphas := 0, 0
	for i := range p.plans {
		lp := &p.plans[i]
		settings += lp.Scatter.M*lp.Scatter.N/2 + lp.Quasi.M*lp.Quasi.N/2
		c := lp.Scatter.CountSettings()
		alphas += c[2] + c[3] // the two broadcast settings
	}
	settings += len(p.final)
	for _, f := range p.final {
		if f.IsBroadcast() {
			alphas++
		}
	}
	tr.Settings = settings
	tr.AlphaSplits = alphas
	// Column depth of the unrolled network: 2 log2(size) per level plus
	// the delivery column (cost.BRSMNDepth, restated here to keep core
	// free of a cost import whose tests route through core).
	depth := 0
	for size := p.n; size > 2; size /= 2 {
		depth += 2 * shuffle.Log2(size)
	}
	tr.Columns = depth + 1
}

// RouteTraced is Network.Route with tracing: the pooled planner's stages
// land in tr and the detaching clone is stamped as the clone/detach
// stage. See Planner.RouteTraced for the tr contract.
func (nw *Network) RouteTraced(a mcast.Assignment, tr *obs.RouteTrace) (*Result, error) {
	if tr == nil {
		return nw.Route(a)
	}
	pl := nw.pool.Get()
	res, err := pl.RouteTraced(a, tr)
	if err != nil {
		nw.pool.Put(pl)
		return nil, err
	}
	t0 := time.Now()
	out := res.Clone()
	obs.AddNs(&tr.CloneNs, time.Since(t0))
	nw.pool.Put(pl)
	return out, nil
}

// Pool retention policy: a planner's arenas grow to the high-water
// fanout they ever routed and sync.Pool would keep that forever. Put
// tracks a decayed recent-need estimate and releases the arenas of any
// planner retaining more than shrinkFactor times it, so a one-off dense
// route does not pin arena memory under a sparse steady state.
const (
	shrinkFactor = 4
	// minNeedBytes floors the need estimate so near-idle workloads do
	// not shrink-thrash over the arena's minimum chunk size. The floor
	// is additionally raised to the planner's structural baseline — one
	// arena growth chunk, or one tree for networks too large for a
	// single chunk, which is not workload growth.
	minNeedBytes = 4 << 10
)

// baselineTagBytes is the retention an n-port planner reaches from the
// tag-tree arena minimum alone: one growth chunk, or one packed tree if
// a single tree already exceeds it.
func baselineTagBytes(n int) int64 {
	wpt := (n-1)>>5 + 1
	if wpt < treeChunkWords {
		wpt = treeChunkWords
	}
	return int64(wpt) * 8
}

// PoolStats is a point-in-time snapshot of a PlannerPool's counters.
type PoolStats struct {
	// Gets counts planner checkouts; News counts the Gets that had to
	// build a planner (pool misses: first use or GC-reclaimed pool).
	Gets uint64 `json:"gets"`
	News uint64 `json:"news"`
	Puts uint64 `json:"puts"`
	// Shrinks counts arena releases forced by the retention policy.
	Shrinks uint64 `json:"shrinks"`
	// RetainedHighWaterBytes is the largest arena retention any planner
	// reached; RecentNeedBytes is the decayed per-route need estimate
	// the shrink threshold derives from.
	RetainedHighWaterBytes int64 `json:"retainedHighWaterBytes"`
	RecentNeedBytes        int64 `json:"recentNeedBytes"`
}

// Stats snapshots the pool counters.
func (p *PlannerPool) Stats() PoolStats {
	return PoolStats{
		Gets:                   p.gets.Load(),
		News:                   p.news.Load(),
		Puts:                   p.puts.Load(),
		Shrinks:                p.shrinks.Load(),
		RetainedHighWaterBytes: p.hw.Load(),
		RecentNeedBytes:        p.need.Load(),
	}
}

// maintain applies the retention policy to a planner on its way back
// into the pool.
func (p *PlannerPool) maintain(pl *Planner) {
	used := int64(pl.lastUsedTagBytes())
	var need int64
	for {
		cur := p.need.Load()
		need = cur - cur/16 // exponential decay toward the recent regime
		if used > need {
			need = used
		}
		if p.need.CompareAndSwap(cur, need) {
			break
		}
	}
	retained := int64(pl.RetainedTagBytes())
	for {
		hw := p.hw.Load()
		if retained <= hw || p.hw.CompareAndSwap(hw, retained) {
			break
		}
	}
	floor := need
	if floor < minNeedBytes {
		floor = minNeedBytes
	}
	if base := baselineTagBytes(p.n); floor < base {
		floor = base
	}
	if retained > shrinkFactor*floor {
		pl.ShrinkArenas()
		p.shrinks.Add(1)
	}
}
