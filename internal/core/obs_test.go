package core

import (
	"reflect"
	"testing"

	"brsmn/internal/mcast"
	"brsmn/internal/obs"
	"brsmn/internal/rbn"
)

// permAssignment is the workload that maximizes arena retention: every
// input active, so the sequence arena grows to n*(n-1) tags.
func permAssignment(n int) mcast.Assignment {
	dests := make([][]int, n)
	for i := range dests {
		dests[i] = []int{i}
	}
	return mcast.MustNew(n, dests)
}

func sparseAssignment(n int) mcast.Assignment {
	dests := make([][]int, n)
	dests[0] = []int{1}
	return mcast.MustNew(n, dests)
}

// TestPoolShrinksOversizedArenas is the retention-policy regression
// test: a dense (full permutation) route grows a pooled planner's
// arenas far past the structural baseline, and a following sparse
// steady state must release them — unbounded high-water retention was
// the bug.
func TestPoolShrinksOversizedArenas(t *testing.T) {
	const n = 1024
	pool, err := NewPlannerPool(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	dense := permAssignment(n)
	pl := pool.Get()
	// Route twice: the first route grows the arenas chunk by chunk, the
	// second records steady-state usage in them.
	for i := 0; i < 2; i++ {
		if _, err := pl.Route(dense); err != nil {
			t.Fatal(err)
		}
	}
	denseRetained := int64(pl.RetainedTagBytes())
	if denseRetained <= shrinkFactor*baselineTagBytes(n) {
		t.Fatalf("dense retention %d under the shrink threshold %d; workload too small to exercise the policy",
			denseRetained, shrinkFactor*baselineTagBytes(n))
	}
	// Register the dense need through the policy without surrendering
	// the planner: sync.Pool randomly drops stored items under the race
	// detector, so the test holds the dense planner itself and only
	// routes its maintenance through the pool.
	pool.maintain(pl)
	if st := pool.Stats(); st.Shrinks != 0 {
		t.Fatalf("planner shrunk while the dense need is fresh: %+v", st)
	}

	// Sparse steady state: the need estimate decays until the retained
	// dense arenas exceed shrinkFactor times it.
	sparse := sparseAssignment(n)
	for i := 0; i < 100; i++ {
		spl := pool.Get()
		if _, err := spl.Route(sparse); err != nil {
			t.Fatal(err)
		}
		pool.Put(spl)
	}
	// The dense planner joins the sparse steady state (one sparse route,
	// so its last-used figure reflects the new regime, not the dense
	// burst) and comes back to a pool whose recent need is sparse: the
	// policy must release its arenas on the way in.
	if _, err := pl.Route(sparse); err != nil {
		t.Fatal(err)
	}
	pool.Put(pl)
	st := pool.Stats()
	if st.Shrinks == 0 {
		t.Fatalf("no shrink after 100 sparse routes: %+v", st)
	}
	if st.RetainedHighWaterBytes < denseRetained {
		t.Fatalf("high-water %d below observed dense retention %d", st.RetainedHighWaterBytes, denseRetained)
	}
	if got := int64(pl.RetainedTagBytes()); got >= denseRetained/shrinkFactor {
		t.Fatalf("dense planner still retains %d after the sparse steady state; want well under %d",
			got, denseRetained)
	}

	// A shrunk planner regrows to sparse need only.
	pl = pool.Get()
	if _, err := pl.Route(sparse); err != nil {
		t.Fatal(err)
	}
	regrown := int64(pl.RetainedTagBytes())
	pool.Put(pl)
	if regrown >= denseRetained/shrinkFactor {
		t.Fatalf("retained %d regrown under sparse traffic; want well under the dense %d",
			regrown, denseRetained)
	}
}

// TestRouteTracedMatchesUntraced is the differential check: tracing must
// observe the planning pipeline, not perturb it — same deliveries, same
// switch settings, bit for bit.
func TestRouteTracedMatchesUntraced(t *testing.T) {
	const n = 64
	a := mcast.MustNew(n, [][]int{2: {0, 5, 9, 33}, 7: {1, 2}, 40: {60, 61, 62, 63}})

	nw, err := New(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := nw.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	tr := &obs.RouteTrace{Key: "diff"}
	traced, err := nw.RouteTraced(a, tr)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Deliveries, traced.Deliveries) {
		t.Fatal("tracing changed deliveries")
	}
	if !reflect.DeepEqual(plain.Final, traced.Final) {
		t.Fatal("tracing changed the final column settings")
	}
	if len(plain.Plans) != len(traced.Plans) {
		t.Fatalf("plan count %d vs %d", len(plain.Plans), len(traced.Plans))
	}
	for i := range plain.Plans {
		p, q := plain.Plans[i], traced.Plans[i]
		if !reflect.DeepEqual(p.Scatter.Stages, q.Scatter.Stages) ||
			!reflect.DeepEqual(p.Quasi.Stages, q.Quasi.Stages) {
			t.Fatalf("tracing changed BSN %d's switch settings", i)
		}
	}

	// The trace itself must carry the paper-level quantities.
	if tr.N != n || tr.LevelsSwept != 6 || tr.BSNs != len(plain.Plans) {
		t.Fatalf("trace shape = %+v", tr)
	}
	if tr.Settings <= 0 || tr.Columns <= 0 || tr.Fanout != 10 || tr.IdleInputs != n-3 {
		t.Fatalf("trace quantities = %+v", tr)
	}
	if tr.TotalNs <= 0 || tr.ScatterNs <= 0 || tr.QuasiNs <= 0 {
		t.Fatalf("trace stage times = %+v", tr)
	}
	if tr.CloneNs <= 0 {
		t.Fatalf("network clone stage untimed: %+v", tr)
	}

	// A nil trace falls back to the untraced path.
	if _, err := nw.RouteTraced(a, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsAllocBudget is the other half of the differential check:
// the always-on pool counters and engine occupancy accounting must not
// add more than 5 allocs per warm Network.Route (the BenchmarkRouteReuse
// "network" regime).
func TestMetricsAllocBudget(t *testing.T) {
	const n = 256
	a := permAssignment(n)

	base, err := New(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := New(n, rbn.Engine{Occ: &rbn.Occupancy{}})
	if err != nil {
		t.Fatal(err)
	}
	route := func(nw *Network) float64 {
		// Warm the pool out of the measurement.
		if _, err := nw.Route(a); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := nw.Route(a); err != nil {
				t.Fatal(err)
			}
		})
	}
	plain := route(base)
	withObs := route(instrumented)
	if withObs > plain+5 {
		t.Fatalf("metrics accounting costs %.0f allocs/route over the %.0f baseline; budget is 5", withObs-plain, plain)
	}
}
