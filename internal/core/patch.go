package core

// Incremental plan patching: a single join or leave changes only the
// contiguous root-to-leaf path suffix of one source's tag tree (see
// mcast.AddDelta / mcast.RemoveDelta). Every plan above the topmost
// changed tree level is computed from unchanged tags, so the retained
// route stays valid there and only the sub-BRSMN containing the changed
// destination — O(log n) switch columns when the change sits deep — has
// to be replanned. RoutePatch performs exactly that replan against the
// planner's retained levels.

import (
	"errors"
	"fmt"

	"brsmn/internal/tag"
)

// ErrPatchFallback reports that an in-place patch cannot (or should
// not) be applied — the planner holds no complete route, the change
// reaches the tree root, or the change is structural (a source joining
// from idle or leaving its last destination). The caller must fall back
// to a full Route with the updated assignment; the planner remains
// usable for that.
var ErrPatchFallback = errors.New("core: plan patch outside the incremental regime; full replan required")

// RoutePatch applies a single-membership change — input src gains
// (join) or loses (leave) destination d — to the retained route of the
// previous successful Route call, replanning only the sub-BRSMN whose
// tags changed. It returns the patched Result (aliasing the planner's
// storage, like Route) and the topmost recursion level replanned: level
// l means n >> (l-1) outputs were re-routed, so large levels are cheap,
// near-constant-time patches.
//
// On ErrPatchFallback the planner's tag tree may already carry the
// mutation; the caller's full Route rebuilds all state from the
// assignment, which must reflect the same change.
func (p *Planner) RoutePatch(src, d int, join bool) (*Result, int, error) {
	if src < 0 || src >= p.n {
		return nil, 0, fmt.Errorf("core: patch source %d out of range [0,%d)", src, p.n)
	}
	if d < 0 || d >= p.n {
		return nil, 0, fmt.Errorf("core: patch destination %d out of range [0,%d)", d, p.n)
	}
	if !p.routed {
		return nil, 0, ErrPatchFallback
	}
	if join {
		if own := p.owner[d]; own >= 0 {
			return nil, 0, fmt.Errorf("core: output %d already receives input %d", d, own)
		}
		if p.treeOff[src] < 0 {
			// The source was idle: it has no tree and no cell anywhere
			// in the retained levels — a structural change.
			p.routed = false
			return nil, 0, ErrPatchFallback
		}
	} else if p.owner[d] != src {
		return nil, 0, fmt.Errorf("core: output %d does not receive input %d", d, src)
	}

	level, err := p.patchTree(p.treeOff[src], d, join)
	if err != nil {
		p.routed = false
		return nil, 0, err
	}
	if join {
		p.owner[d] = src
	} else {
		p.owner[d] = -1
	}
	if level <= 1 {
		// The root lane flipped (or the tree emptied): the source's
		// level-1 tag changed, so the outermost BSN — the whole
		// network — replans anyway.
		p.routed = false
		return nil, 0, ErrPatchFallback
	}

	// Replan the sub-BRSMN at recursion level `level` containing d. All
	// tags at tree levels < level are unchanged, so every upstream plan
	// and every cell position entering this subnetwork is exactly what
	// the retained levels record; re-entering the recursion here
	// reproduces what a full route of the new assignment would compute.
	size := p.n >> (level - 1)
	base := d &^ (size - 1)
	slot, b, s := 0, 0, p.n
	for l := 1; l < level; l++ {
		half := s / 2
		if d < b+half {
			slot++
		} else {
			slot += s / 4
			b += half
		}
		s = half
	}
	if size == 2 {
		err = p.deliver(p.m, base)
	} else {
		err = p.routeRec(level, base, size, slot)
	}
	if err != nil {
		p.routed = false
		return nil, 0, err
	}
	for out := base; out < base+size; out++ {
		if got, want := p.deliveries[out].Source, p.owner[out]; got != want {
			p.routed = false
			return nil, 0, fmt.Errorf("core: patched output %d received source %d, want %d", out, got, want)
		}
	}
	return &p.res, level, nil
}

// patchTree applies the join/leave to the packed tag tree at offset off,
// mirroring mcast.AddDelta / mcast.RemoveDelta on 2-bit lanes, and
// returns the topmost changed tree level (0 when a leave empties the
// tree, which makes the source idle).
func (p *Planner) patchTree(off int32, d int, join bool) (int, error) {
	m := p.m
	if join {
		node := 1
		level := m + 1
		for i := 0; i < m; i++ {
			bit := d >> (m - 1 - i) & 1
			want := tag.V0
			if bit == 1 {
				want = tag.V1
			}
			switch p.laneAt(off, node) {
			case tag.Eps:
				p.setLane(off, node, want)
			case tag.Alpha, want:
				// Already covers this direction: unchanged.
				node = 2*node + bit
				continue
			default:
				// Covers only the other direction: now both.
				p.setLane(off, node, tag.Alpha)
			}
			if i+1 < level {
				level = i + 1
			}
			node = 2*node + bit
		}
		if level > m {
			// A genuine join flips at least the leaf-level node; an
			// untouched walk means owner and tree disagree.
			return 0, fmt.Errorf("core: tag tree already covers output %d owned by no one", d)
		}
		return level, nil
	}

	// Leave: collect the path, then repair bottom-up, stopping at the
	// first node whose sibling direction survives.
	var path [64]int
	node := 1
	for i := 0; i < m; i++ {
		path[i] = node
		node = 2*node + d>>(m-1-i)&1
	}
	emptied := true
	level := m + 1
	for i := m - 1; i >= 0 && emptied; i-- {
		k := path[i]
		bit := d >> (m - 1 - i) & 1
		removedDir := tag.V0
		if bit == 1 {
			removedDir = tag.V1
		}
		switch p.laneAt(off, k) {
		case tag.Alpha:
			// The other direction survives.
			p.setLane(off, k, removedDir.OtherDirection())
			emptied = false
		case removedDir:
			p.setLane(off, k, tag.Eps)
		default:
			return 0, fmt.Errorf("core: tag tree corrupt at node %d while removing output %d", k, d)
		}
		level = i + 1
	}
	if emptied {
		return 0, nil
	}
	return level, nil
}
