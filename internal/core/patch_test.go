package core

import (
	"math/rand"
	"reflect"
	"testing"

	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
)

// TestBuildTreeMatchesMcast is the differential check for the word-
// parallel tree construction: the packed 2-bit lanes must equal the
// byte tree of mcast.BuildTagTree for random destination sets across
// sizes that exercise both the whole-word and the in-word-0 paths.
func TestBuildTreeMatchesMcast(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 1024} {
		p, err := NewPlanner(n, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			var ds []int
			for d := 0; d < n; d++ {
				if rng.Intn(3) == 0 {
					ds = append(ds, d)
				}
			}
			if len(ds) == 0 {
				ds = []int{rng.Intn(n)}
			}
			p.treeUsed = 0
			off := p.allocTree()
			p.buildTree(p.treeWords[int(off):int(off)+p.tw], ds)
			ref, err := mcast.BuildTagTree(n, ds)
			if err != nil {
				t.Fatal(err)
			}
			for k := 1; k < n; k++ {
				if got, want := p.laneAt(off, k), ref.Nodes[k]; got != want {
					t.Fatalf("n=%d trial %d: node %d lane %v, want %v", n, trial, k, got, want)
				}
			}
		}
	}
}

// resultsEqual compares two routed results bit for bit: deliveries,
// final column, and every reverse-banyan stage of every BSN.
func resultsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.N != want.N || len(got.Plans) != len(want.Plans) {
		t.Fatalf("%s: result shapes differ", label)
	}
	for i := range got.Deliveries {
		if got.Deliveries[i].Source != want.Deliveries[i].Source {
			t.Fatalf("%s: output %d source %d, want %d", label, i, got.Deliveries[i].Source, want.Deliveries[i].Source)
		}
	}
	if !reflect.DeepEqual(got.Final, want.Final) {
		t.Fatalf("%s: final column differs", label)
	}
	for i := range got.Plans {
		g, w := got.Plans[i], want.Plans[i]
		if !reflect.DeepEqual(g.Scatter.Stages, w.Scatter.Stages) ||
			!reflect.DeepEqual(g.Quasi.Stages, w.Quasi.Stages) {
			t.Fatalf("%s: BSN %d settings differ", label, i)
		}
	}
}

// TestRoutePatchMatchesFreshRoute drives random join/leave churn through
// a patched planner and checks, after every single step, that the
// patched configuration is byte-identical to a fresh full route of the
// current assignment — patches must be invisible.
func TestRoutePatchMatchesFreshRoute(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		rng := rand.New(rand.NewSource(int64(200 + n)))
		patched, err := NewPlanner(n, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewPlanner(n, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		// Mutable assignment state: dests[i] as a set.
		member := make([][]bool, n)
		for i := range member {
			member[i] = make([]bool, n)
		}
		owner := make([]int, n)
		for i := range owner {
			owner[i] = -1
		}
		assignment := func() mcast.Assignment {
			dests := make([][]int, n)
			for i := range dests {
				for d := 0; d < n; d++ {
					if member[i][d] {
						dests[i] = append(dests[i], d)
					}
				}
			}
			return mcast.MustNew(n, dests)
		}
		// Seed with a moderately loaded random multicast.
		for d := 0; d < n; d++ {
			if rng.Intn(4) != 0 {
				src := rng.Intn(n / 2) // few sources, real fanout
				member[src][d] = true
				owner[d] = src
			}
		}
		if _, err := patched.Route(assignment()); err != nil {
			t.Fatal(err)
		}

		patches, fallbacks := 0, 0
		for step := 0; step < 200; step++ {
			d := rng.Intn(n)
			var src int
			join := owner[d] < 0
			if join {
				src = rng.Intn(n / 2)
				// Avoid the structural idle-source case sometimes, hit
				// it other times — both paths must work.
				member[src][d] = true
				owner[d] = src
			} else {
				src = owner[d]
				member[src][d] = false
				owner[d] = -1
			}
			res, lvl, err := patched.RoutePatch(src, d, join)
			switch {
			case err == ErrPatchFallback:
				fallbacks++
				res, err = patched.Route(assignment())
				if err != nil {
					t.Fatalf("n=%d step %d: fallback route: %v", n, step, err)
				}
			case err != nil:
				t.Fatalf("n=%d step %d: RoutePatch(%d, %d, %v): %v", n, step, src, d, join, err)
			default:
				patches++
				if lvl <= 1 || lvl > patched.m {
					t.Fatalf("n=%d step %d: patch level %d out of (1,%d]", n, step, lvl, patched.m)
				}
			}
			want, err := fresh.Route(assignment())
			if err != nil {
				t.Fatalf("n=%d step %d: fresh route: %v", n, step, err)
			}
			resultsEqual(t, "patched vs fresh", res, want)
		}
		if patches == 0 {
			t.Fatalf("n=%d: no step exercised the in-place patch path (%d fallbacks)", n, fallbacks)
		}
	}
}

// TestRoutePatchErrors pins the patch error paths: bad arguments, a cold
// planner, conflicting ownership, and patching after ShrinkArenas.
func TestRoutePatchErrors(t *testing.T) {
	const n = 16
	p, err := NewPlanner(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	// Cold planner: fallback, not a crash.
	if _, _, err := p.RoutePatch(0, 1, true); err != ErrPatchFallback {
		t.Fatalf("cold patch: %v, want ErrPatchFallback", err)
	}
	a := mcast.MustNew(n, [][]int{0: {1, 2, 3}, 4: {8}})
	if _, err := p.Route(a); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.RoutePatch(-1, 0, true); err == nil {
		t.Error("negative source accepted")
	}
	if _, _, err := p.RoutePatch(0, n, true); err == nil {
		t.Error("out-of-range destination accepted")
	}
	// Join of an owned output is a user error, not a fallback.
	if _, _, err := p.RoutePatch(4, 2, true); err == nil || err == ErrPatchFallback {
		t.Errorf("join onto owned output: %v, want ownership error", err)
	}
	// Leave of an output the source does not own.
	if _, _, err := p.RoutePatch(0, 8, false); err == nil || err == ErrPatchFallback {
		t.Errorf("leave of foreign output: %v, want ownership error", err)
	}
	// Idle-source join is structural.
	if _, _, err := p.RoutePatch(7, 9, true); err != ErrPatchFallback {
		t.Errorf("idle-source join: %v, want ErrPatchFallback", err)
	}
	// After the fallback the planner routes fully and is patchable again.
	a2 := mcast.MustNew(n, [][]int{0: {1, 2, 3}, 4: {8}, 7: {9}})
	if _, err := p.Route(a2); err != nil {
		t.Fatal(err)
	}
	if _, lvl, err := p.RoutePatch(0, 0, true); err != nil {
		t.Fatalf("patch after fallback route: %v", err)
	} else if lvl <= 1 {
		t.Fatalf("leaf-adjacent join replanned level %d", lvl)
	}
	// ShrinkArenas invalidates the retained route.
	p.ShrinkArenas()
	if _, _, err := p.RoutePatch(0, 5, true); err != ErrPatchFallback {
		t.Errorf("patch after shrink: %v, want ErrPatchFallback", err)
	}
}

// TestRoutePatchPayloads checks that patched deliveries still resolve
// payloads from the retained payload slice.
func TestRoutePatchPayloads(t *testing.T) {
	const n = 16
	p, err := NewPlanner(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	a := mcast.MustNew(n, [][]int{2: {4, 5}})
	payloads := make([]any, n)
	payloads[2] = "hello"
	if _, err := p.RouteWithPayloads(a, payloads); err != nil {
		t.Fatal(err)
	}
	res, _, err := p.RoutePatch(2, 6, true)
	if err != nil {
		t.Fatalf("RoutePatch: %v", err)
	}
	if res.Deliveries[6].Source != 2 || res.Deliveries[6].Payload != "hello" {
		t.Fatalf("patched delivery = %+v, want source 2 payload hello", res.Deliveries[6])
	}
}

// TestRoutePatchLevelsDeep checks the headline property: a join far from
// the group's existing destinations patches near the root (expensive),
// while a join adjacent to an existing destination patches at the leaf
// (near constant time). The level the patch reports is the level the
// recursion re-entered.
func TestRoutePatchLevelsDeep(t *testing.T) {
	const n = 1024
	p, err := NewPlanner(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	a := mcast.MustNew(n, [][]int{0: {0}})
	if _, err := p.Route(a); err != nil {
		t.Fatal(err)
	}
	// Output 1 is the sibling leaf of output 0: only the final 2x2
	// switch changes.
	if _, lvl, err := p.RoutePatch(0, 1, true); err != nil {
		t.Fatal(err)
	} else if lvl != p.m {
		t.Fatalf("sibling join replanned from level %d, want leaf level %d", lvl, p.m)
	}
	// Output n-1 is in the other half of the network: the root lane
	// flips to α, which is a full replan.
	if _, _, err := p.RoutePatch(0, n-1, true); err != ErrPatchFallback {
		t.Fatalf("far join: %v, want ErrPatchFallback (root change)", err)
	}
	if _, err := p.Route(mcast.MustNew(n, [][]int{0: {0, 1, n - 1}})); err != nil {
		t.Fatal(err)
	}
	// Leaving the sibling again is a leaf-level patch.
	if _, lvl, err := p.RoutePatch(0, 1, false); err != nil {
		t.Fatal(err)
	} else if lvl != p.m {
		t.Fatalf("sibling leave replanned from level %d, want leaf level %d", lvl, p.m)
	}
}

// TestPatchedTreeStaysConsistent checks that after an in-place patch the
// packed tree equals a from-scratch build of the new destination set.
func TestPatchedTreeStaysConsistent(t *testing.T) {
	const n = 64
	p, err := NewPlanner(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Route(mcast.MustNew(n, [][]int{3: {8, 9, 40}})); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.RoutePatch(3, 10, true); err != nil {
		t.Fatal(err)
	}
	ref, err := mcast.BuildTagTree(n, []int{8, 9, 10, 40})
	if err != nil {
		t.Fatal(err)
	}
	off := p.treeOff[3]
	for k := 1; k < n; k++ {
		if got, want := p.laneAt(off, k), ref.Nodes[k]; got != want {
			t.Fatalf("node %d lane %v, want %v", k, got, want)
		}
	}
}
