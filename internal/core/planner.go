package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"brsmn/internal/bsn"
	"brsmn/internal/mcast"
	"brsmn/internal/obs"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/swbox"
	"brsmn/internal/tag"
)

// plannerGrain is the smallest sub-BRSMN worth routing on its own
// goroutine; below it the per-node planning work no longer amortizes the
// spawn cost. It matches the sweep grain of rbn.Engine.
const plannerGrain = 256

// Planner is a reusable, arena-backed BRSMN routing pipeline: all
// per-route state — input routing-tag sequences, the per-level cell
// vectors, every reverse-banyan plan, the final-column settings and the
// delivery vector — is allocated once at New and recycled, so a warm
// Planner routes an assignment with zero steady-state allocations.
//
// The Result returned by Route aliases the planner's storage and is
// valid only until the next Route call; callers that retain results
// (or route through a shared pool) detach them with Result.Clone.
//
// With an Engine of Workers > 1 the planner also routes the two
// independent half-size sub-BRSMNs of each level concurrently: their
// input halves, output halves and plan slots are disjoint (Theorem 2
// splits the assignment so each half is again a valid assignment), so
// the recursion parallelizes without locks and produces bit-identical
// results to the sequential walk. A Planner is not safe for concurrent
// use; use a PlannerPool to share one network across goroutines.
type Planner struct {
	n       int
	m       int // log2(n)
	eng     rbn.Engine
	workers int

	owner []int            // fused validation + verification buffer
	seqb  mcast.SeqBuilder // routing-tag sequence construction
	seqAr bsn.Arena        // input sequence storage

	// levels[l] holds the cell vector entering recursion level l+1:
	// levels[0] is the network input; a level-l node at output base b of
	// size s reads levels[l-1][b:b+s] and writes its children's cells to
	// levels[l][b:b+s]. Sibling nodes write disjoint ranges, so the
	// parallel recursion needs no synchronization.
	levels [][]bsn.Cell

	// plans holds one slot per BSN instance in DFS preorder — the exact
	// order the sequential recursion appends them — with both RBN plans
	// preallocated. The slot of a node's upper child is slot+1, of its
	// lower child slot+size/4 (one plus the size/4-1 slots of the upper
	// subtree). arenas[slot] backs the advanced routing-tag sequences
	// created at that node's exit, which must outlive its whole subtree.
	plans  []LevelPlan
	arenas []bsn.Arena

	routers chan *bsn.Router // BSN router pool, one per worker
	tokens  chan struct{}    // bounds extra recursion goroutines to workers-1

	final      []swbox.Setting
	deliveries []Delivery
	res        Result

	// tr, when non-nil, is the trace the current route accumulates stage
	// durations into (see RouteTraced in obs.go). The untraced hot path
	// pays one nil check per recursion node for it.
	tr *obs.RouteTrace
}

// NewPlanner builds a planner for an n x n BRSMN (n a power of two,
// n >= 2) running its setting sweeps — and, for Workers > 1, its
// sub-BRSMN recursion — on the given engine.
func NewPlanner(n int, eng rbn.Engine) (*Planner, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("core: network size %d is not a power of two >= 2", n)
	}
	w := eng.Workers
	if w < 1 {
		w = 1
	}
	m := shuffle.Log2(n)
	p := &Planner{
		n:          n,
		m:          m,
		eng:        eng,
		workers:    w,
		owner:      make([]int, n),
		levels:     make([][]bsn.Cell, m),
		final:      make([]swbox.Setting, n/2),
		deliveries: make([]Delivery, n),
		routers:    make(chan *bsn.Router, w),
		tokens:     make(chan struct{}, w-1),
	}
	for l := range p.levels {
		p.levels[l] = make([]bsn.Cell, n)
	}
	slots := n/2 - 1 // BSN instances: one per sub-BRSMN of size >= 4
	p.plans = make([]LevelPlan, slots)
	p.arenas = make([]bsn.Arena, slots)
	p.initSlots(1, 0, n, 0)
	for i := 0; i < w; i++ {
		p.routers <- bsn.NewRouter(n)
	}
	return p, nil
}

// initSlots lays the static part of every plan slot (level, base, size
// and the two preallocated RBN plans) in DFS preorder.
func (p *Planner) initSlots(level, base, size, slot int) {
	if size == 2 {
		return
	}
	p.plans[slot] = LevelPlan{
		Level: level, Base: base, Size: size,
		Scatter: rbn.NewPlan(size), Quasi: rbn.NewPlan(size),
	}
	p.initSlots(level+1, base, size/2, slot+1)
	p.initSlots(level+1, base+size/2, size/2, slot+size/4)
}

// N returns the network size.
func (p *Planner) N() int { return p.n }

// Route realizes a multicast assignment. The returned Result aliases
// the planner's recycled storage — valid until the next Route call.
func (p *Planner) Route(a mcast.Assignment) (*Result, error) {
	return p.RouteWithPayloads(a, nil)
}

// RouteWithPayloads is Route with a payload attached to each input's
// connection. payloads may be nil for payload-free routing.
func (p *Planner) RouteWithPayloads(a mcast.Assignment, payloads []any) (*Result, error) {
	if payloads != nil && len(payloads) != p.n {
		return nil, fmt.Errorf("core: %d payloads for %d inputs", len(payloads), p.n)
	}
	if a.N != p.n {
		return nil, fmt.Errorf("core: assignment for %d inputs on a %d x %d network", a.N, p.n, p.n)
	}
	if err := a.OwnerInto(p.owner); err != nil {
		return nil, err
	}
	p.seqAr.Reset()
	in := p.levels[0]
	for i := range in {
		ds := a.Dests[i]
		if len(ds) == 0 {
			if p.tr != nil {
				p.tr.IdleInputs++
			}
			in[i] = bsn.Idle()
			continue
		}
		if p.tr != nil {
			p.tr.Fanout += len(ds)
		}
		s, err := p.seqb.AppendFromDests(p.seqAr.Alloc(p.n - 1)[:0], p.n, ds)
		if err != nil {
			return nil, fmt.Errorf("mcast: input %d: %w", i, err)
		}
		c := bsn.Cell{Tag: s[0], Source: i, Seq: s}
		if payloads != nil {
			c.Payload = payloads[i]
		}
		in[i] = c
	}
	for i := range p.arenas {
		p.arenas[i].Reset()
	}
	if err := p.routeRec(1, 0, p.n, 0); err != nil {
		return nil, err
	}
	p.res = Result{N: p.n, Deliveries: p.deliveries, Plans: p.plans, Final: p.final}
	if err := verifyOwner(p.owner, p.deliveries); err != nil {
		return nil, fmt.Errorf("core: routed configuration failed verification: %w", err)
	}
	return &p.res, nil
}

// routeRec routes the sub-BRSMN at the given level covering network
// outputs [base, base+size), filling plan slot `slot` and recursing
// into its two halves — concurrently when workers and tokens allow.
func (p *Planner) routeRec(level, base, size, slot int) error {
	if size == 2 {
		return p.deliver(level, base)
	}
	lp := &p.plans[slot]
	cells := p.levels[level-1][base : base+size]
	r := <-p.routers
	var out []bsn.Cell
	var err error
	if tr := p.tr; tr != nil {
		out, err = r.RouteTimed(cells, p.eng, lp.Scatter, lp.Quasi, &tr.ScatterNs, &tr.QuasiNs)
	} else {
		out, err = r.Route(cells, p.eng, lp.Scatter, lp.Quasi)
	}
	if err != nil {
		p.routers <- r
		return fmt.Errorf("core: level %d BSN at output base %d: %w", level, base, err)
	}
	var tAdv time.Time
	if p.tr != nil {
		tAdv = time.Now()
	}
	next := p.levels[level][base : base+size]
	ar := &p.arenas[slot]
	for i, c := range out {
		adv := c
		if !c.IsIdle() {
			adv, err = bsn.AdvanceIn(c, ar)
			if err != nil {
				p.routers <- r
				return fmt.Errorf("core: level %d output %d: %w", level, i, err)
			}
		}
		next[i] = adv
	}
	if tr := p.tr; tr != nil {
		obs.AddNs(&tr.AdvanceNs, time.Since(tAdv))
	}
	p.routers <- r

	half := size / 2
	upSlot, loSlot := slot+1, slot+size/4
	if p.workers > 1 && half >= plannerGrain {
		select {
		case p.tokens <- struct{}{}:
			var wg sync.WaitGroup
			var upErr error
			wg.Add(1)
			go func() {
				defer wg.Done()
				upErr = p.routeRec(level+1, base, half, upSlot)
				<-p.tokens
			}()
			loErr := p.routeRec(level+1, base+half, half, loSlot)
			wg.Wait()
			if upErr != nil {
				return upErr
			}
			return loErr
		default:
		}
	}
	if err := p.routeRec(level+1, base, half, upSlot); err != nil {
		return err
	}
	return p.routeRec(level+1, base+half, half, loSlot)
}

// deliver realizes the 2x2 switch covering outputs base and base+1.
func (p *Planner) deliver(level, base int) error {
	if tr := p.tr; tr != nil {
		defer func(t0 time.Time) { obs.AddNs(&tr.DeliverNs, time.Since(t0)) }(time.Now())
	}
	cells := p.levels[level-1][base : base+2]
	heads := [2]tag.Value{tag.Eps, tag.Eps}
	for k, c := range cells {
		if c.IsIdle() {
			continue
		}
		if len(c.Seq) != 1 {
			return fmt.Errorf("core: final-level cell from input %d still has %d tags", c.Source, len(c.Seq))
		}
		heads[k] = c.Seq[0]
	}
	setting, err := FinalSetting(heads)
	if err != nil {
		return err
	}
	out0, out1 := swbox.Apply(setting, cells[0], cells[1], splitFinal)
	p.final[base/2] = setting
	p.deliveries[base] = deliveryOf(out0)
	p.deliveries[base+1] = deliveryOf(out1)
	return nil
}

// verifyOwner checks deliveries against a validated owner map.
func verifyOwner(owner []int, deliveries []Delivery) error {
	for out, want := range owner {
		got := deliveries[out].Source
		if got != want {
			return fmt.Errorf("core: output %d received source %d, want %d", out, got, want)
		}
	}
	return nil
}

// Clone returns a deep copy of the result detached from any
// planner-owned storage, packed into a handful of flat backing arrays
// (about seven allocations regardless of network size).
func (r *Result) Clone() *Result {
	out := &Result{
		N:          r.N,
		Deliveries: append([]Delivery(nil), r.Deliveries...),
		Final:      append([]swbox.Setting(nil), r.Final...),
	}
	if len(r.Plans) == 0 {
		return out
	}
	totSet, totCol := 0, 0
	for _, lp := range r.Plans {
		totSet += lp.Scatter.M*lp.Scatter.N/2 + lp.Quasi.M*lp.Quasi.N/2
		totCol += lp.Scatter.M + lp.Quasi.M
	}
	flat := make([]swbox.Setting, totSet)
	cols := make([][]swbox.Setting, totCol)
	plans := make([]rbn.Plan, 2*len(r.Plans))
	out.Plans = make([]LevelPlan, len(r.Plans))
	si, ci := 0, 0
	clonePlan := func(src, dst *rbn.Plan) {
		dst.N, dst.M = src.N, src.M
		dst.Stages = cols[ci : ci+src.M : ci+src.M]
		ci += src.M
		for j, col := range src.Stages {
			c := flat[si : si+len(col) : si+len(col)]
			si += len(col)
			copy(c, col)
			dst.Stages[j] = c
		}
	}
	for i, lp := range r.Plans {
		sc, qu := &plans[2*i], &plans[2*i+1]
		clonePlan(lp.Scatter, sc)
		clonePlan(lp.Quasi, qu)
		out.Plans[i] = LevelPlan{Level: lp.Level, Base: lp.Base, Size: lp.Size, Scatter: sc, Quasi: qu}
	}
	return out
}

// PlannerPool shares planners for one network shape across goroutines:
// Get returns a warm planner (building one on first use or after a GC
// cycle reclaimed the pool), Put recycles it. The pool is the backing
// store of Network's Route and is safe for concurrent use.
//
// The pool also bounds arena retention: planners whose routing-tag
// arenas grew far past the recent workload (a one-off dense route in a
// sparse steady state) have them released on Put — see maintain in
// obs.go. Counters are exposed through Stats.
type PlannerPool struct {
	n    int
	eng  rbn.Engine
	pool sync.Pool

	gets, news, puts, shrinks atomic.Uint64
	need                      atomic.Int64 // decayed recent per-route arena need, bytes
	hw                        atomic.Int64 // retained arena high-water, bytes
}

// NewPlannerPool builds a pool of planners for n x n BRSMNs on the
// given engine.
func NewPlannerPool(n int, eng rbn.Engine) (*PlannerPool, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("core: network size %d is not a power of two >= 2", n)
	}
	p := &PlannerPool{n: n, eng: eng}
	p.pool.New = func() any {
		pl, err := NewPlanner(p.n, p.eng)
		if err != nil {
			panic(err) // unreachable: n validated above
		}
		p.news.Add(1)
		return pl
	}
	return p, nil
}

// N returns the pool's network size.
func (p *PlannerPool) N() int { return p.n }

// Get returns a planner sized for the pool's network.
func (p *PlannerPool) Get() *Planner {
	p.gets.Add(1)
	return p.pool.Get().(*Planner)
}

// Put returns a planner to the pool. Results obtained from it become
// invalid once another goroutine reuses the planner — Clone first.
func (p *PlannerPool) Put(pl *Planner) {
	if pl != nil && pl.n == p.n {
		p.puts.Add(1)
		p.maintain(pl)
		p.pool.Put(pl)
	}
}
