package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"brsmn/internal/mcast"
	"brsmn/internal/obs"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/swbox"
	"brsmn/internal/tag"
)

// plannerGrain is the smallest sub-BRSMN worth routing on its own
// goroutine; below it the per-node planning work no longer amortizes the
// spawn cost. It matches the sweep grain of rbn.Engine.
const plannerGrain = 256

// treeChunkWords is the minimum tag-tree arena growth step (4 KiB), so
// sparse workloads do not grow the arena word by word.
const treeChunkWords = 512

// pcell is a connection branch in flight: the source input and the node
// of the source's packed tag tree the branch currently sits at. The node
// IS the routing state — its 2-bit lane holds the branch's tag at the
// current level and its two children are the next level's tags — so a
// cell advances by index arithmetic and carries no tag storage of its
// own. This replaces the per-cell routing-tag sequence (and the
// re-dealing pass that dominated warm routes) with one int32.
type pcell struct {
	src  int32 // source input; -1 for an idle wire
	node int32 // heap index into the source's tag tree
}

func (c pcell) isIdle() bool { return c.src < 0 }

// splitPCell realizes an α-split in a broadcast switch: the upper output
// continues into the 0-subtree, the lower into the 1-subtree.
func splitPCell(c pcell) (pcell, pcell) {
	up, low := c, c
	up.node = 2 * c.node
	low.node = 2*c.node + 1
	return up, low
}

// Planner is a reusable, arena-backed BRSMN routing pipeline: all
// per-route state — the packed per-input tag trees, the per-level cell
// vectors, every reverse-banyan plan, the final-column settings and the
// delivery vector — is allocated once at New and recycled, so a warm
// Planner routes an assignment with zero steady-state allocations.
//
// Each active input's routing tags are stored as a packed tag tree: a
// heap-indexed vector of 2-bit lanes (lane value == the tag.Value
// constant) bump-allocated from one shared word arena. A cell's tag at
// recursion level l is the lane of its current tree node, so the planner
// never materializes routing-tag sequences at all.
//
// The Result returned by Route aliases the planner's storage and is
// valid only until the next Route call; callers that retain results
// (or route through a shared pool) detach them with Result.Clone.
//
// With an Engine of Workers > 1 the planner also routes the two
// independent half-size sub-BRSMNs of each level concurrently: their
// input halves, output halves and plan slots are disjoint (Theorem 2
// splits the assignment so each half is again a valid assignment), so
// the recursion parallelizes without locks and produces bit-identical
// results to the sequential walk. A Planner is not safe for concurrent
// use; use a PlannerPool to share one network across goroutines.
type Planner struct {
	n       int
	m       int // log2(n)
	eng     rbn.Engine
	workers int
	tw      int // uint64 words per packed tag tree: (n-1)/32 + 1

	owner []int // fused validation + verification buffer

	// Packed tag-tree arena. treeOff[i] is input i's word offset into
	// treeWords, -1 when idle. Offsets survive arena growth (the slice
	// is copied, not chunked), so laneAt stays a two-instruction load.
	treeWords []uint64
	treeOff   []int32
	treeUsed  int
	bm        []uint64 // shared leaf-bitmap scratch for buildTree

	// payloads is the caller's payload slice of the latest route,
	// resolved per delivery at the final column.
	payloads []any

	// routed marks that the planner holds a complete, verified route
	// whose retained levels and trees RoutePatch may patch in place.
	routed bool

	// levels[l] holds the cell vector entering recursion level l+1:
	// levels[0] is the network input; a level-l node at output base b of
	// size s reads levels[l-1][b:b+s] and writes its children's cells to
	// levels[l][b:b+s]. Sibling nodes write disjoint ranges, so the
	// parallel recursion needs no synchronization — and RoutePatch can
	// re-enter the recursion at any node whose entry cells it retained.
	levels [][]pcell

	// plans holds one slot per BSN instance in DFS preorder — the exact
	// order the sequential recursion appends them — with both RBN plans
	// preallocated. The slot of a node's upper child is slot+1, of its
	// lower child slot+size/4 (one plus the size/4-1 slots of the upper
	// subtree).
	plans []LevelPlan

	routers chan *pRouter // BSN router pool, one per worker
	tokens  chan struct{} // bounds extra recursion goroutines to workers-1

	final      []swbox.Setting
	deliveries []Delivery
	res        Result

	// tr, when non-nil, is the trace the current route accumulates stage
	// durations into (see RouteTraced in obs.go). The untraced hot path
	// pays one nil check per recursion node for it.
	tr *obs.RouteTrace
}

// NewPlanner builds a planner for an n x n BRSMN (n a power of two,
// n >= 2) running its setting sweeps — and, for Workers > 1, its
// sub-BRSMN recursion — on the given engine.
func NewPlanner(n int, eng rbn.Engine) (*Planner, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("core: network size %d is not a power of two >= 2", n)
	}
	w := eng.Workers
	if w < 1 {
		w = 1
	}
	// Forking the recursion past the schedulable parallelism only adds
	// goroutine and channel overhead, which the fast packed kernels no
	// longer amortize; cap the fork width at GOMAXPROCS (so a 4-worker
	// planner on a 1-CPU box routes sequentially).
	if mp := runtime.GOMAXPROCS(0); w > mp {
		w = mp
	}
	m := shuffle.Log2(n)
	p := &Planner{
		n:          n,
		m:          m,
		eng:        eng,
		workers:    w,
		tw:         (n-1)>>5 + 1,
		owner:      make([]int, n),
		treeOff:    make([]int32, n),
		bm:         make([]uint64, (n+63)>>6),
		levels:     make([][]pcell, m),
		final:      make([]swbox.Setting, n/2),
		deliveries: make([]Delivery, n),
		routers:    make(chan *pRouter, w),
		tokens:     make(chan struct{}, w-1),
	}
	for l := range p.levels {
		p.levels[l] = make([]pcell, n)
	}
	slots := n/2 - 1 // BSN instances: one per sub-BRSMN of size >= 4
	p.plans = make([]LevelPlan, slots)
	p.initSlots(1, 0, n, 0)
	for i := 0; i < w; i++ {
		p.routers <- newPRouter(n)
	}
	return p, nil
}

// initSlots lays the static part of every plan slot (level, base, size
// and the two preallocated RBN plans) in DFS preorder.
func (p *Planner) initSlots(level, base, size, slot int) {
	if size == 2 {
		return
	}
	p.plans[slot] = LevelPlan{
		Level: level, Base: base, Size: size,
		Scatter: rbn.NewPlan(size), Quasi: rbn.NewPlan(size),
	}
	p.initSlots(level+1, base, size/2, slot+1)
	p.initSlots(level+1, base+size/2, size/2, slot+size/4)
}

// N returns the network size.
func (p *Planner) N() int { return p.n }

// laneAt reads the 2-bit tag lane of the given tree node.
func (p *Planner) laneAt(off int32, node int) tag.Value {
	return tag.Value(p.treeWords[int(off)+node>>5] >> (2 * (uint(node) & 31)) & 3)
}

// setLane overwrites the 2-bit tag lane of the given tree node.
func (p *Planner) setLane(off int32, node int, v tag.Value) {
	w := &p.treeWords[int(off)+node>>5]
	sh := 2 * (uint(node) & 31)
	*w = *w&^(3<<sh) | uint64(v)<<sh
}

// allocTree bump-allocates one tree's worth of arena words and returns
// its offset. Growth copies the backing slice, so earlier offsets stay
// valid.
func (p *Planner) allocTree() int32 {
	off := p.treeUsed
	if need := off + p.tw; need > len(p.treeWords) {
		newLen := 2 * len(p.treeWords)
		if newLen < need {
			newLen = need
		}
		if newLen < treeChunkWords {
			newLen = treeChunkWords
		}
		grown := make([]uint64, newLen)
		copy(grown, p.treeWords[:off])
		p.treeWords = grown
	}
	p.treeUsed = off + p.tw
	return int32(off)
}

// tagWordOf turns 64 leaf-occupancy bits into 32 two-bit node lanes:
// each (even, odd) bit pair — left subtree nonempty, right subtree
// nonempty — maps to V0 (1,0), V1 (0,1), Alpha (1,1) or Eps (0,0),
// numerically the tag.Value constants.
func tagWordOf(c uint64) uint64 {
	const even = 0x5555555555555555
	ce := c & even
	co := (c >> 1) & even
	return (^(ce^co)&even)<<1 | ^ce&even
}

// compactEven gathers the 32 even-position bits of x into the low half.
func compactEven(x uint64) uint64 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return x
}

// buildTree packs the routing-tag tree for destination set ds into tw
// (p.tw words): a bottom-up word-parallel construction that derives each
// level's node lanes from the leaf-occupancy bitmap, then compacts the
// bitmap by pairwise OR for the level above — O(n/64 + log n) word
// operations in place of the O(n) byte-tree walk of mcast.BuildTagTree.
func (p *Planner) buildTree(tw []uint64, ds []int) {
	D := p.bm
	for w := range D {
		D[w] = 0
	}
	for _, d := range ds {
		D[d>>6] |= 1 << (uint(d) & 63)
	}
	tw[0] = 0
	width := p.n // bitmap bits still live
	for nodes := p.n / 2; nodes >= 1; nodes >>= 1 {
		if nodes >= 32 {
			// This level owns whole words: nodes [nodes, 2*nodes) sit
			// at words [nodes/32, nodes/16).
			base := nodes >> 5
			for w := 0; w < width>>6; w++ {
				tw[base+w] = tagWordOf(D[w])
			}
		} else {
			// The level's lanes live inside word 0 at lane positions
			// nodes..2*nodes-1. tagWordOf reads the unused high (0,0)
			// pairs as ε lanes, so mask before merging.
			t := tagWordOf(D[0]) & (1<<(2*uint(nodes)) - 1)
			tw[0] |= t << (2 * uint(nodes))
		}
		if cw := width >> 6; cw >= 2 {
			for pw := 0; pw < cw/2; pw++ {
				D[pw] = compactEven(D[2*pw]|D[2*pw]>>1) |
					compactEven(D[2*pw+1]|D[2*pw+1]>>1)<<32
			}
		} else {
			D[0] = compactEven(D[0] | D[0]>>1)
		}
		width >>= 1
	}
}

// Route realizes a multicast assignment. The returned Result aliases
// the planner's recycled storage — valid until the next Route call.
func (p *Planner) Route(a mcast.Assignment) (*Result, error) {
	return p.RouteWithPayloads(a, nil)
}

// RouteWithPayloads is Route with a payload attached to each input's
// connection. payloads may be nil for payload-free routing. The planner
// keeps a reference to payloads for delivery resolution until the next
// route.
func (p *Planner) RouteWithPayloads(a mcast.Assignment, payloads []any) (*Result, error) {
	p.routed = false
	if payloads != nil && len(payloads) != p.n {
		return nil, fmt.Errorf("core: %d payloads for %d inputs", len(payloads), p.n)
	}
	if a.N != p.n {
		return nil, fmt.Errorf("core: assignment for %d inputs on a %d x %d network", a.N, p.n, p.n)
	}
	if err := a.OwnerInto(p.owner); err != nil {
		return nil, err
	}
	p.payloads = payloads

	var t0 time.Time
	if p.tr != nil {
		t0 = time.Now()
	}
	p.treeUsed = 0
	in := p.levels[0]
	for i := range in {
		ds := a.Dests[i]
		if len(ds) == 0 {
			if p.tr != nil {
				p.tr.IdleInputs++
			}
			p.treeOff[i] = -1
			in[i] = pcell{src: -1}
			continue
		}
		if p.tr != nil {
			p.tr.Fanout += len(ds)
		}
		off := p.allocTree()
		p.treeOff[i] = off
		p.buildTree(p.treeWords[off:int(off)+p.tw], ds)
		in[i] = pcell{src: int32(i), node: 1}
	}
	if tr := p.tr; tr != nil {
		tr.AddStage("tree-build", time.Since(t0))
	}

	if err := p.routeRec(1, 0, p.n, 0); err != nil {
		return nil, err
	}
	p.res = Result{N: p.n, Deliveries: p.deliveries, Plans: p.plans, Final: p.final}
	if err := verifyOwner(p.owner, p.deliveries); err != nil {
		return nil, fmt.Errorf("core: routed configuration failed verification: %w", err)
	}
	p.routed = true
	return &p.res, nil
}

// routeRec routes the sub-BRSMN at the given level covering network
// outputs [base, base+size), filling plan slot `slot` and recursing
// into its two halves — concurrently when workers and tokens allow.
func (p *Planner) routeRec(level, base, size, slot int) error {
	if size == 2 {
		return p.deliver(level, base)
	}
	lp := &p.plans[slot]
	cells := p.levels[level-1][base : base+size]
	r := <-p.routers
	var out []pcell
	var err error
	if tr := p.tr; tr != nil {
		out, err = r.route(p, level, cells, lp, &tr.ScatterNs, &tr.QuasiNs)
	} else {
		out, err = r.route(p, level, cells, lp, nil, nil)
	}
	if err != nil {
		p.routers <- r
		return fmt.Errorf("core: level %d BSN at output base %d: %w", level, base, err)
	}
	copy(p.levels[level][base:base+size], out)
	p.routers <- r

	half := size / 2
	upSlot, loSlot := slot+1, slot+size/4
	if p.workers > 1 && half >= plannerGrain {
		select {
		case p.tokens <- struct{}{}:
			var wg sync.WaitGroup
			var upErr error
			wg.Add(1)
			go func() {
				defer wg.Done()
				upErr = p.routeRec(level+1, base, half, upSlot)
				<-p.tokens
			}()
			loErr := p.routeRec(level+1, base+half, half, loSlot)
			wg.Wait()
			if upErr != nil {
				return upErr
			}
			return loErr
		default:
		}
	}
	if err := p.routeRec(level+1, base, half, upSlot); err != nil {
		return err
	}
	return p.routeRec(level+1, base+half, half, loSlot)
}

// pRouter is a reusable binary-splitting-network router over pcells: the
// same two-pass scatter + quasisort routing as bsn.Router, but cells
// carry tree nodes instead of tag sequences, so the entry tags are lane
// loads and the level advance folds into the scatter pass itself — χ
// cells step to their child node before the permutation is applied and
// α cells step during the broadcast split, eliminating the separate
// sequence-advance sweep entirely.
type pRouter struct {
	tags    []tag.Value
	midTags []tag.Value
	divided []tag.Value
	a, b    []pcell
	sc      *rbn.Scratch
}

func newPRouter(n int) *pRouter {
	return &pRouter{
		tags:    make([]tag.Value, n),
		midTags: make([]tag.Value, n),
		divided: make([]tag.Value, n),
		a:       make([]pcell, n),
		b:       make([]pcell, n),
		sc:      rbn.NewScratch(n),
	}
}

// route drives cells (entering tree level `level`) through one BSN,
// writing the scatter and quasisort settings into lp and returning the
// output cells, every one advanced to tree level level+1. The output
// aliases the router's buffers: consume or copy it before the next call.
func (r *pRouter) route(p *Planner, level int, cells []pcell, lp *LevelPlan, scatterNs, quasiNs *int64) ([]pcell, error) {
	n := len(cells)
	tags := r.tags[:n]
	for i, c := range cells {
		if c.isIdle() {
			tags[i] = tag.Eps
		} else {
			tags[i] = p.laneAt(p.treeOff[c.src], int(c.node))
		}
	}
	if err := tag.Count(tags).CheckBSNInput(n); err != nil {
		return nil, err
	}

	// Pass 1: scatter — eliminate αs. The working copy pre-advances every
	// χ cell to its child node (the retained input cells stay untouched
	// for RoutePatch re-entry); α cells advance inside splitPCell.
	var t0 time.Time
	if scatterNs != nil {
		t0 = time.Now()
	}
	if err := p.eng.ScatterPlanInto(lp.Scatter, tags, 0, r.sc); err != nil {
		return nil, err
	}
	a := r.a[:n]
	for i, c := range cells {
		if !c.isIdle() {
			switch tags[i] {
			case tag.V0:
				c.node = 2 * c.node
			case tag.V1:
				c.node = 2*c.node + 1
			}
		}
		a[i] = c
	}
	mid, err := rbn.ApplyScratch(lp.Scatter, a, a, r.b[:n], splitPCell)
	if err != nil {
		return nil, err
	}
	// After the scatter every live cell sits at tree level level+1, so
	// its quasisort bit is the node's parity. A cell still at the entry
	// level is an α the scatter failed to split.
	midTags := r.midTags[:n]
	levelEnd := int32(1) << uint(level)
	for i, c := range mid {
		switch {
		case c.isIdle():
			midTags[i] = tag.Eps
		case c.node < levelEnd:
			return nil, fmt.Errorf("core: α survived the scatter network at position %d", i)
		case c.node&1 == 1:
			midTags[i] = tag.V1
		default:
			midTags[i] = tag.V0
		}
	}
	if scatterNs != nil {
		atomic.AddInt64(scatterNs, int64(time.Since(t0)))
	}

	// Pass 2: quasisort — 0s to the upper half, 1s to the lower half.
	if quasiNs != nil {
		t0 = time.Now()
	}
	if err := p.eng.QuasisortPlanInto(lp.Quasi, r.divided[:n], midTags, r.sc); err != nil {
		return nil, err
	}
	out, err := rbn.ApplyScratch(lp.Quasi, mid, r.a[:n], r.b[:n], nil)
	if err != nil {
		return nil, err
	}
	for i, c := range out {
		if c.isIdle() {
			continue
		}
		if c.node&1 == 0 && i >= n/2 {
			return nil, fmt.Errorf("core: 0-tagged connection from input %d quasisorted to lower-half output %d", c.src, i)
		}
		if c.node&1 == 1 && i < n/2 {
			return nil, fmt.Errorf("core: 1-tagged connection from input %d quasisorted to upper-half output %d", c.src, i)
		}
	}
	if quasiNs != nil {
		atomic.AddInt64(quasiNs, int64(time.Since(t0)))
	}
	return out, nil
}

// deliver realizes the 2x2 switch covering outputs base and base+1. Its
// input cells sit at the leaf level of their tag trees, so the lane IS
// the delivery instruction.
func (p *Planner) deliver(level, base int) error {
	if tr := p.tr; tr != nil {
		defer func(t0 time.Time) { obs.AddNs(&tr.DeliverNs, time.Since(t0)) }(time.Now())
	}
	cells := p.levels[level-1][base : base+2]
	heads := [2]tag.Value{tag.Eps, tag.Eps}
	for k, c := range cells {
		if c.isIdle() {
			continue
		}
		heads[k] = p.laneAt(p.treeOff[c.src], int(c.node))
	}
	setting, err := FinalSetting(heads)
	if err != nil {
		return err
	}
	out0, out1 := swbox.Apply(setting, cells[0], cells[1], splitFinal)
	p.final[base/2] = setting
	p.deliveries[base] = p.deliveryOf(out0)
	p.deliveries[base+1] = p.deliveryOf(out1)
	return nil
}

// verifyOwner checks deliveries against a validated owner map.
func verifyOwner(owner []int, deliveries []Delivery) error {
	for out, want := range owner {
		got := deliveries[out].Source
		if got != want {
			return fmt.Errorf("core: output %d received source %d, want %d", out, got, want)
		}
	}
	return nil
}

// Clone returns a deep copy of the result detached from any
// planner-owned storage, packed into a handful of flat backing arrays
// (about seven allocations regardless of network size).
func (r *Result) Clone() *Result {
	out := &Result{
		N:          r.N,
		Deliveries: append([]Delivery(nil), r.Deliveries...),
		Final:      append([]swbox.Setting(nil), r.Final...),
	}
	if len(r.Plans) == 0 {
		return out
	}
	totSet, totCol := 0, 0
	for _, lp := range r.Plans {
		totSet += lp.Scatter.M*lp.Scatter.N/2 + lp.Quasi.M*lp.Quasi.N/2
		totCol += lp.Scatter.M + lp.Quasi.M
	}
	flat := make([]swbox.Setting, totSet)
	cols := make([][]swbox.Setting, totCol)
	plans := make([]rbn.Plan, 2*len(r.Plans))
	out.Plans = make([]LevelPlan, len(r.Plans))
	si, ci := 0, 0
	clonePlan := func(src, dst *rbn.Plan) {
		dst.N, dst.M = src.N, src.M
		dst.Stages = cols[ci : ci+src.M : ci+src.M]
		ci += src.M
		for j, col := range src.Stages {
			c := flat[si : si+len(col) : si+len(col)]
			si += len(col)
			copy(c, col)
			dst.Stages[j] = c
		}
	}
	for i, lp := range r.Plans {
		sc, qu := &plans[2*i], &plans[2*i+1]
		clonePlan(lp.Scatter, sc)
		clonePlan(lp.Quasi, qu)
		out.Plans[i] = LevelPlan{Level: lp.Level, Base: lp.Base, Size: lp.Size, Scatter: sc, Quasi: qu}
	}
	return out
}

// PlannerPool shares planners for one network shape across goroutines:
// Get returns a warm planner (building one on first use or after a GC
// cycle reclaimed the pool), Put recycles it. The pool is the backing
// store of Network's Route and is safe for concurrent use.
//
// The pool also bounds arena retention: planners whose tag-tree arenas
// grew far past the recent workload (a one-off dense route in a sparse
// steady state) have them released on Put — see maintain in obs.go.
// Counters are exposed through Stats.
type PlannerPool struct {
	n    int
	eng  rbn.Engine
	pool sync.Pool

	gets, news, puts, shrinks atomic.Uint64
	need                      atomic.Int64 // decayed recent per-route arena need, bytes
	hw                        atomic.Int64 // retained arena high-water, bytes
}

// NewPlannerPool builds a pool of planners for n x n BRSMNs on the
// given engine.
func NewPlannerPool(n int, eng rbn.Engine) (*PlannerPool, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("core: network size %d is not a power of two >= 2", n)
	}
	p := &PlannerPool{n: n, eng: eng}
	p.pool.New = func() any {
		pl, err := NewPlanner(p.n, p.eng)
		if err != nil {
			panic(err) // unreachable: n validated above
		}
		p.news.Add(1)
		return pl
	}
	return p, nil
}

// N returns the pool's network size.
func (p *PlannerPool) N() int { return p.n }

// Get returns a planner sized for the pool's network.
func (p *PlannerPool) Get() *Planner {
	p.gets.Add(1)
	return p.pool.Get().(*Planner)
}

// Put returns a planner to the pool. Results obtained from it become
// invalid once another goroutine reuses the planner — Clone first.
func (p *PlannerPool) Put(pl *Planner) {
	if pl != nil && pl.n == p.n {
		p.puts.Add(1)
		p.maintain(pl)
		p.pool.Put(pl)
	}
}
