package core

import (
	"strings"
	"testing"

	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
)

func TestNewPlannerRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := NewPlanner(n, rbn.Sequential); err == nil {
			t.Errorf("NewPlanner(%d) accepted a non-power-of-two size", n)
		}
	}
}

func TestPlannerErrorPaths(t *testing.T) {
	p, err := NewPlanner(8, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	a := mcast.MustNew(8, [][]int{0: {1, 2}, 3: {5}})

	if _, err := p.RouteWithPayloads(a, []any{"too", "short"}); err == nil ||
		!strings.Contains(err.Error(), "payload") {
		t.Errorf("short payload slice: got %v, want payload-count error", err)
	}
	bad := mcast.Assignment{N: 16, Dests: make([][]int, 16)}
	if _, err := p.Route(bad); err == nil || !strings.Contains(err.Error(), "8") {
		t.Errorf("size-mismatched assignment: got %v, want size error", err)
	}
	overlap := mcast.Assignment{N: 8, Dests: [][]int{0: {1}, 2: {1}, 7: nil}}
	overlap.Dests = append(overlap.Dests, make([][]int, 8-len(overlap.Dests))...)
	overlap.Dests = overlap.Dests[:8]
	if _, err := p.Route(overlap); err == nil {
		t.Error("overlapping destinations routed without error")
	}

	// The planner must stay usable after a failed call.
	res, err := p.Route(a)
	if err != nil {
		t.Fatalf("route after failed calls: %v", err)
	}
	if err := Verify(a, res); err != nil {
		t.Fatal(err)
	}
}

func TestPlannerPool(t *testing.T) {
	pool, err := NewPlannerPool(8, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if pool.N() != 8 {
		t.Fatalf("pool.N() = %d, want 8", pool.N())
	}
	pl := pool.Get()
	if pl.N() != 8 {
		t.Fatalf("pooled planner size %d, want 8", pl.N())
	}
	a := mcast.MustNew(8, [][]int{0: {0, 1, 2, 3, 4, 5, 6, 7}})
	res, err := pl.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(a, res); err != nil {
		t.Fatal(err)
	}
	pool.Put(pl)

	// A foreign-sized planner must not enter the pool: a later Get would
	// hand out scratch arrays of the wrong shape.
	wrong, err := NewPlanner(16, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(wrong)
	pool.Put(nil)
	for i := 0; i < 8; i++ {
		got := pool.Get()
		if got.N() != 8 {
			t.Fatalf("pool handed out an n=%d planner", got.N())
		}
		pool.Put(got)
	}

	if _, err := NewPlannerPool(5, rbn.Sequential); err == nil {
		t.Error("NewPlannerPool(5) accepted a non-power-of-two size")
	}
}

func TestResultCloneDetaches(t *testing.T) {
	p, err := NewPlanner(16, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	a := mcast.MustNew(16, [][]int{2: {0, 5, 9}, 7: {1, 2}})
	res, err := p.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	clone := res.Clone()
	if err := Verify(a, clone); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not reach planner storage, and vice versa.
	clone.Deliveries[0].Source = -99
	clone.Final[0] = 3
	clone.Plans[0].Scatter.Stages[0][0] = 3
	res2, err := p.Route(a)
	if err != nil {
		t.Fatalf("route after clone mutation: %v", err)
	}
	if err := Verify(a, res2); err != nil {
		t.Fatalf("planner storage corrupted through clone: %v", err)
	}
	if clone.Deliveries[0].Source != -99 {
		t.Fatal("clone deliveries overwritten by planner reuse")
	}
}
