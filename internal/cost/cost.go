// Package cost provides the closed-form hardware and routing-time
// accounting behind Table 2 of Yang & Wang: switch counts, gate counts,
// network depth and routing time for the BRSMN, its feedback version and
// every baseline in this repository, plus order-of-growth models for the
// two prior recursively-decomposed multicast networks the paper compares
// against (Nassimi & Sahni [4]; Lee & Oruc [9]), whose implementations
// are not public — see DESIGN.md's substitution notes.
package cost

import (
	"fmt"
	"math"

	"brsmn/internal/gates"
	"brsmn/internal/gcn"
	"brsmn/internal/shuffle"
)

// Row is one line of a Table 2-style comparison, all in concrete units:
// 2x2 switches (or crosspoints), logic gates, switch-column depth, and
// routing time in gate delays.
type Row struct {
	Name        string
	Switches    int
	Gates       int
	Depth       int
	RoutingTime int
}

// RBNSwitches is the switch count of one n x n reverse banyan network.
func RBNSwitches(n int) int { return n / 2 * shuffle.Log2(n) }

// BRSMNSwitches is the switch count of the unrolled n x n BRSMN: at the
// level with BSNs of the given size, (n/size) BSNs of two RBNs each,
// plus the final column of n/2 delivery switches.
func BRSMNSwitches(n int) int {
	total := 0
	for size := n; size > 2; size /= 2 {
		total += (n / size) * 2 * RBNSwitches(size)
	}
	return total + n/2
}

// BRSMNDepth is the column depth of the unrolled BRSMN: 2 log2(size) per
// level plus the delivery column.
func BRSMNDepth(n int) int {
	d := 0
	for size := n; size > 2; size /= 2 {
		d += 2 * shuffle.Log2(size)
	}
	return d + 1
}

// BRSMN returns the full cost row of the unrolled network.
func BRSMN(n int) Row {
	sw := BRSMNSwitches(n)
	return Row{
		Name:        "BRSMN (this paper)",
		Switches:    sw,
		Gates:       sw * gates.GatesPerSwitch,
		Depth:       BRSMNDepth(n),
		RoutingTime: gates.BRSMNRoutingDelay(n),
	}
}

// Feedback returns the cost row of the feedback implementation
// (Section 7.3): one RBN's hardware; the depth column reports the total
// switch columns traversed across all 2 log2(n) - 1 passes, which is what
// a cell experiences end to end.
func Feedback(n int) Row {
	m := shuffle.Log2(n)
	sw := RBNSwitches(n)
	return Row{
		Name:        "BRSMN feedback (this paper)",
		Switches:    sw,
		Gates:       sw * gates.GatesPerSwitch,
		Depth:       m * (2*m - 1),
		RoutingTime: gates.FeedbackRoutingDelay(n),
	}
}

// PermNet returns the cost row of the unicast specialization (Cheng &
// Chen-style permutation network): quasisort RBNs only.
func PermNet(n int) Row {
	total := 0
	d := 0
	for size := n; size >= 2; size /= 2 {
		total += (n / size) * RBNSwitches(size)
		d += shuffle.Log2(size)
	}
	rt := 0
	for size := n; size >= 2; size /= 2 {
		rt += 2 * gates.RBNRoutingDelay(size)
	}
	return Row{
		Name:        "Permutation network (Cheng & Chen)",
		Switches:    total,
		Gates:       total * gates.GatesPerSwitch,
		Depth:       d,
		RoutingTime: rt,
	}
}

// CopyNetSwitches mirrors copynet.Switches without importing it (cost is
// a leaf package): concentrator RBN + running adder + broadcast banyan +
// Benes distribution.
func CopyNetSwitches(n int) int {
	m := shuffle.Log2(n)
	adders := 0
	for d := 1; d < n; d *= 2 {
		adders += n - d
	}
	return RBNSwitches(n) + adders + RBNSwitches(n) + n/2*(2*m-1)
}

// CopyNet returns the cost row of the copy-network + Benes baseline. Its
// routing time is dominated by the centralized looping algorithm:
// every recursion level of the Benes network touches every terminal once
// — Θ(n log n) serial steps, charged one gate-delay-equivalent each.
func CopyNet(n int) Row {
	m := shuffle.Log2(n)
	sw := CopyNetSwitches(n)
	return Row{
		Name:        "Copy network + Benes (centralized)",
		Switches:    sw,
		Gates:       sw * gates.GatesPerSwitch,
		Depth:       m + m + m + (2*m - 1),
		RoutingTime: n * (2*m - 1),
	}
}

// Crossbar returns the cost row of the n x n crossbar: n^2 crosspoints
// (charged as "switches"), constant depth, and Θ(n) centralized
// configuration (each output selector is loaded once).
func Crossbar(n int) Row {
	return Row{
		Name:        "Crossbar",
		Switches:    n * n,
		Gates:       n * n * 4,
		Depth:       1,
		RoutingTime: n,
	}
}

// NassimiSahni returns the order-of-growth model of the Nassimi & Sahni
// generalized connection network at its k = log n design point, as cited
// in Table 2: cost n log^2 n, depth log^2 n, routing time log^3 n. The
// unit constants are set to 1; only the growth shape is meaningful.
func NassimiSahni(n int) Row {
	m := shuffle.Log2(n)
	return Row{
		Name:        "Nassimi & Sahni (model)",
		Switches:    n * m * m,
		Gates:       n * m * m * gates.GatesPerSwitch,
		Depth:       m * m,
		RoutingTime: m * m * m,
	}
}

// LeeOruc returns the order-of-growth model of Lee & Oruc's multicast
// network per Table 2: n log^2 n gates, log^2 n depth, log^3 n routing
// time.
func LeeOruc(n int) Row {
	m := shuffle.Log2(n)
	return Row{
		Name:        "Lee & Oruc (model)",
		Switches:    n * m * m,
		Gates:       n * m * m * gates.GatesPerSwitch,
		Depth:       m * m,
		RoutingTime: m * m * m,
	}
}

// Table2 returns the four-row comparison of the paper's Table 2 for one
// network size, in concrete units.
func Table2(n int) []Row {
	return []Row{NassimiSahni(n), LeeOruc(n), BRSMN(n), Feedback(n)}
}

// NormalizedGrowth divides a measured series value by the named growth
// function — the harness uses it to show the Table 2 orders hold: a
// correct order keeps the ratio within a constant band across the sweep.
func NormalizedGrowth(n int, value float64, growth string) float64 {
	m := float64(shuffle.Log2(n))
	fn := float64(n)
	switch growth {
	case "n":
		return value / fn
	case "nlogn":
		return value / (fn * m)
	case "nlog2n":
		return value / (fn * m * m)
	case "n2":
		return value / (fn * fn)
	case "logn":
		return value / m
	case "log2n":
		return value / (m * m)
	case "log3n":
		return value / (m * m * m)
	default:
		return math.NaN()
	}
}

// GCNImplemented returns the cost row of the functional Nassimi–Sahni-
// style generalized connection network of package gcn (generator/
// concentrator cascade + Benes): concrete switch counts where the
// NassimiSahni row gives only the cited orders. Its routing here is
// centralized (the looping algorithm dominates), hence the Θ(n log n)
// routing time; the original design routes on an attached parallel
// computer in O(log^3 n) gate delays, which the model row reports.
func GCNImplemented(n int) Row {
	m := shuffle.Log2(n)
	sw := gcn.Switches(n)
	return Row{
		Name:        "NS-style GCN (implemented)",
		Switches:    sw,
		Gates:       sw * gates.GatesPerSwitch,
		Depth:       gcn.Depth(n),
		RoutingTime: n * (2*m - 1),
	}
}

// NassimiSahniK returns the order model of the Nassimi & Sahni network
// at an arbitrary design parameter k (footnote 1 of the paper:
// 1 <= k <= log n): cost k·n^(1+1/k)·log n switches, depth k·log n, and
// routing time k·log^2 n gate delays (their routing runs on an attached
// cube/shuffle parallel computer). k = log n recovers the Table 2 row up
// to constants; small k buys depth at a polynomial cost blow-up.
func NassimiSahniK(n, k int) Row {
	m := shuffle.Log2(n)
	if k < 1 {
		k = 1
	}
	if k > m {
		k = m
	}
	sw := int(float64(k) * math.Pow(float64(n), 1+1/float64(k)) * float64(m))
	return Row{
		Name:        fmt.Sprintf("Nassimi & Sahni (model, k=%d)", k),
		Switches:    sw,
		Gates:       sw * gates.GatesPerSwitch,
		Depth:       k * m,
		RoutingTime: k * m * m,
	}
}
