package cost

import (
	"testing"

	"brsmn/internal/copynet"
	"brsmn/internal/core"
	"brsmn/internal/permnet"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/workload"
)

// TestBRSMNSwitchesMatchConstruction cross-checks the closed form
// against the switches a routed network actually instantiates: the sum
// over every BSN plan of its two RBNs plus the delivery column.
func TestBRSMNSwitchesMatchConstruction(t *testing.T) {
	for _, n := range []int{4, 8, 32, 128} {
		res, err := core.Route(workload.Broadcast(n, 0))
		if err != nil {
			t.Fatal(err)
		}
		counted := len(res.Final)
		for _, lp := range res.Plans {
			counted += lp.Scatter.NumSwitches() + lp.Quasi.NumSwitches()
		}
		if counted != BRSMNSwitches(n) {
			t.Errorf("n=%d: constructed %d switches, closed form %d", n, counted, BRSMNSwitches(n))
		}
	}
}

// TestBRSMNClosedForms checks the Section 7.4 recurrences:
// C(n) = n log n (per level, both RBNs) summed = n(log^2 n + log n - 2)/2 + n/2
// and D(n) = log^2 n + log n - 3.
func TestBRSMNClosedForms(t *testing.T) {
	for _, n := range []int{4, 8, 64, 1024} {
		m := shuffle.Log2(n)
		wantSw := 0
		for j := 2; j <= m; j++ {
			wantSw += n * j // level with size 2^j: 2 RBNs x (n/2) log switches
		}
		wantSw += n / 2
		if got := BRSMNSwitches(n); got != wantSw {
			t.Errorf("n=%d: switches %d, want %d", n, got, wantSw)
		}
		wantD := 1
		for j := 2; j <= m; j++ {
			wantD += 2 * j
		}
		if got := BRSMNDepth(n); got != wantD {
			t.Errorf("n=%d: depth %d, want %d", n, got, wantD)
		}
	}
}

// TestFeedbackVsUnrolled checks the Section 7.3 saving: the feedback
// network's switch count is one RBN, a log n factor below the unrolled
// network.
func TestFeedbackVsUnrolled(t *testing.T) {
	for _, n := range []int{8, 64, 1024} {
		fb, un := Feedback(n), BRSMN(n)
		if fb.Switches != RBNSwitches(n) {
			t.Errorf("n=%d: feedback switches %d, want %d", n, fb.Switches, RBNSwitches(n))
		}
		if fb.Switches >= un.Switches {
			t.Errorf("n=%d: feedback (%d) not cheaper than unrolled (%d)", n, fb.Switches, un.Switches)
		}
		if fb.RoutingTime < un.RoutingTime {
			t.Errorf("n=%d: feedback routing faster than unrolled", n)
		}
	}
}

// TestPermNetMatchesConstruction cross-checks against package permnet.
func TestPermNetMatchesConstruction(t *testing.T) {
	for _, n := range []int{4, 16, 256} {
		if got, want := PermNet(n).Switches, permnet.Switches(n); got != want {
			t.Errorf("n=%d: %d vs permnet's %d", n, got, want)
		}
	}
}

// TestCopyNetMatchesConstruction cross-checks against package copynet.
func TestCopyNetMatchesConstruction(t *testing.T) {
	for _, n := range []int{4, 16, 256} {
		cn, err := copynet.New(n)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := CopyNetSwitches(n), cn.Switches(); got != want {
			t.Errorf("n=%d: %d vs copynet's %d", n, got, want)
		}
		if got, want := CopyNet(n).Depth, cn.Depth(); got != want {
			t.Errorf("n=%d: depth %d vs copynet's %d", n, got, want)
		}
	}
}

// TestTable2Shape checks the qualitative relations of Table 2 hold in
// the concrete models across a size sweep:
//   - all four rows cost Θ(n log^2 n) except feedback at Θ(n log n);
//   - the new design's routing time is Θ(log^2 n) while the prior
//     networks' models are Θ(log^3 n), so the ratio diverges;
//   - depths are all Θ(log^2 n).
func TestTable2Shape(t *testing.T) {
	type band struct{ lo, hi float64 }
	check := func(name string, vals []float64, b band) {
		t.Helper()
		for _, v := range vals {
			if v < b.lo || v > b.hi {
				t.Errorf("%s: normalized series %v leaves band [%v,%v]", name, vals, b.lo, b.hi)
				return
			}
		}
	}
	var newCost, fbCost, newTime, priorTime, newDepth []float64
	for n := 16; n <= 1<<12; n *= 4 {
		rows := Table2(n)
		ns, lo, brsmn, fb := rows[0], rows[1], rows[2], rows[3]
		_ = lo
		newCost = append(newCost, NormalizedGrowth(n, float64(brsmn.Switches), "nlog2n"))
		fbCost = append(fbCost, NormalizedGrowth(n, float64(fb.Switches), "nlogn"))
		newTime = append(newTime, NormalizedGrowth(n, float64(brsmn.RoutingTime), "log2n"))
		priorTime = append(priorTime, NormalizedGrowth(n, float64(ns.RoutingTime), "log3n"))
		newDepth = append(newDepth, NormalizedGrowth(n, float64(brsmn.Depth), "log2n"))
	}
	check("BRSMN cost / n log^2 n", newCost, band{0.2, 2})
	check("feedback cost / n log n", fbCost, band{0.2, 2})
	check("BRSMN routing / log^2 n", newTime, band{1, 16})
	check("prior routing / log^3 n", priorTime, band{0.5, 2})
	check("BRSMN depth / log^2 n", newDepth, band{0.3, 3})
}

// TestNormalizedGrowth covers the helper including the unknown key.
func TestNormalizedGrowth(t *testing.T) {
	if NormalizedGrowth(16, 32, "n") != 2 {
		t.Error("n normalization wrong")
	}
	if NormalizedGrowth(16, 64, "nlogn") != 1 {
		t.Error("nlogn normalization wrong")
	}
	if NormalizedGrowth(16, 256, "n2") != 1 {
		t.Error("n2 normalization wrong")
	}
	if NormalizedGrowth(16, 16, "log2n") != 1 {
		t.Error("log2n normalization wrong")
	}
	if v := NormalizedGrowth(16, 1, "nonsense"); v == v { // NaN check
		t.Error("unknown growth did not return NaN")
	}
}

// TestCrossbarRow pins the trivial baseline.
func TestCrossbarRow(t *testing.T) {
	r := Crossbar(8)
	if r.Switches != 64 || r.Depth != 1 || r.RoutingTime != 8 {
		t.Errorf("Crossbar(8) = %+v", r)
	}
}

// TestEngineInvariance notes the cost model is independent of the
// routing engine (sequential vs parallel): routed plans have identical
// switch counts.
func TestEngineInvariance(t *testing.T) {
	n := 32
	a := workload.Broadcast(n, 5)
	nw1, _ := core.New(n, rbn.Sequential)
	nw2, _ := core.New(n, rbn.Engine{Workers: 4})
	r1, err := nw1.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := nw2.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Plans) != len(r2.Plans) {
		t.Error("plan counts differ across engines")
	}
}

// TestGCNImplementedRow checks the functional GCN's cost row sits in the
// Θ(n log² n) band and exceeds the feedback BRSMN's.
func TestGCNImplementedRow(t *testing.T) {
	for _, n := range []int{16, 256, 4096} {
		r := GCNImplemented(n)
		if NormalizedGrowth(n, float64(r.Switches), "nlog2n") < 0.3 ||
			NormalizedGrowth(n, float64(r.Switches), "nlog2n") > 2 {
			t.Errorf("n=%d: GCN switches %d outside the n·lg²n band", n, r.Switches)
		}
		if r.Switches <= Feedback(n).Switches {
			t.Errorf("n=%d: GCN not costlier than feedback BRSMN", n)
		}
		if r.RoutingTime <= BRSMN(n).RoutingTime && n >= 256 {
			t.Errorf("n=%d: centralized GCN routing not slower than distributed", n)
		}
	}
}

// TestNassimiSahniK checks the k-parameter model endpoints: k = 1 is the
// n²-cost crossbar-like point; k = log n lands at the Table 2 order; k
// clamps into [1, log n].
func TestNassimiSahniK(t *testing.T) {
	n := 1024
	m := 10
	k1 := NassimiSahniK(n, 1)
	if k1.Switches != n*n*m || k1.Depth != m {
		t.Errorf("k=1 row %+v", k1)
	}
	kM := NassimiSahniK(n, m)
	// n^(1+1/m) = n·2 at n = 2^m, so cost = m·2n·m = 2n·m².
	if kM.Switches != 2*n*m*m {
		t.Errorf("k=log n switches %d, want %d", kM.Switches, 2*n*m*m)
	}
	if kM.RoutingTime != m*m*m {
		t.Errorf("k=log n routing %d, want %d", kM.RoutingTime, m*m*m)
	}
	if NassimiSahniK(n, 0) != NassimiSahniK(n, 1) || NassimiSahniK(n, 99) != NassimiSahniK(n, m) {
		t.Error("k clamping wrong")
	}
	// k·n^(1+1/k) falls steeply from k = 1 and has its minimum near
	// k ≈ ln n before the leading k factor takes over: k = 1 must be
	// the maximum and the interior minimum must undercut both ends.
	minSw, argmin := k1.Switches, 1
	for k := 2; k <= m; k++ {
		cur := NassimiSahniK(n, k).Switches
		if cur < minSw {
			minSw, argmin = cur, k
		}
		if cur > k1.Switches {
			t.Errorf("k=%d costlier than k=1", k)
		}
	}
	if argmin <= 1 || argmin >= m {
		t.Errorf("cost minimum at k=%d; expected an interior minimum near ln n", argmin)
	}
	if minSw >= kM.Switches {
		t.Errorf("interior minimum %d not below the k=log n endpoint %d", minSw, kM.Switches)
	}
}
