// Package diagnosis locates faulty switches in a BRSMN fabric from
// routing behavior alone — the classical fault-diagnosis problem for
// multistage interconnection networks, here solved with the machinery
// this repository already has: the per-connection tree extraction of
// package paths tells exactly which (column, switch) elements each
// connection traverses, so every misdelivered test assignment narrows
// the suspect set to the switches its broken connections share.
//
// The model is a single stuck-at fault: one switch ignores its computed
// setting and stays at a fixed state. Diagnose runs a sequence of test
// assignments through the faulty fabric, compares deliveries with the
// fault-free expectation, and intersects suspects until the faulty
// switch is isolated (or the candidate set stops shrinking).
package diagnosis

import (
	"fmt"
	"math/rand"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/paths"
	"brsmn/internal/swbox"
	"brsmn/internal/workload"
)

// Fault is a stuck-at switch fault: the switch at (Col, Switch) of the
// flattened column program always assumes Stuck regardless of its
// computed setting.
type Fault struct {
	Col    int
	Switch int
	Stuck  swbox.Setting
}

// Suspect identifies one candidate faulty element.
type Suspect struct {
	Col    int
	Switch int
}

// runWithFault replays a routed assignment's column program with the
// fault injected and returns the per-output sources.
func runWithFault(a mcast.Assignment, res *core.Result, f *Fault) ([]int, error) {
	cols, err := fabric.Flatten(res)
	if err != nil {
		return nil, err
	}
	if f != nil {
		if f.Col < 0 || f.Col >= len(cols) || f.Switch < 0 || f.Switch >= len(cols[f.Col].Settings) {
			return nil, fmt.Errorf("diagnosis: fault at (%d,%d) outside the fabric", f.Col, f.Switch)
		}
		// Copy-on-write the faulty column.
		patched := append([]swbox.Setting(nil), cols[f.Col].Settings...)
		patched[f.Switch] = f.Stuck
		cols[f.Col].Settings = patched
	}
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		return nil, err
	}
	out := make([]int, a.N)
	final, err := fabric.Run(cols, cells)
	if err != nil {
		// A fault can make Advance fail (a cell exits a BSN still
		// carrying α); treat as "everything misdelivered".
		for i := range out {
			out[i] = -2
		}
		return out, nil
	}
	for p, c := range final {
		out[p] = -1
		if !c.IsIdle() {
			out[p] = c.Source
		}
	}
	return out, nil
}

// suspectsOf returns the switches traversed by every connection whose
// delivery went wrong under the fault — the fault must lie on one of
// them (for single faults).
func suspectsOf(a mcast.Assignment, res *core.Result, got []int) (map[Suspect]bool, bool, error) {
	want := a.OutputOwner()
	broken := map[int]bool{} // sources with at least one wrong delivery
	anyWrong := false
	attributable := true
	for out := range want {
		if got[out] != want[out] {
			anyWrong = true
			if want[out] >= 0 {
				broken[want[out]] = true
			}
			if got[out] >= 0 {
				broken[got[out]] = true
			}
			if got[out] == -2 { // total failure: blame is unattributable
				attributable = false
				for src, ds := range a.Dests {
					if len(ds) > 0 {
						broken[src] = true
					}
				}
				break
			}
		}
	}
	if !anyWrong {
		return nil, false, nil
	}
	trees, err := paths.Extract(a, res)
	if err != nil {
		return nil, false, err
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		return nil, false, err
	}
	// A single stuck switch is the only place trajectories can change,
	// so EVERY attributably-broken connection traversed it: the fault
	// lies in the intersection of the broken connections' switch sets.
	// When the failure is a hand-off crash (unattributable), only the
	// union is sound.
	var sus map[Suspect]bool
	for _, tr := range trees {
		if !broken[tr.Source] {
			continue
		}
		one := map[Suspect]bool{}
		for _, e := range tr.Edges {
			// The cell left column e.Col on link e.Link through the
			// switch driving that link; also the switch of the NEXT
			// column that consumes the link can be at fault.
			if e.Col >= 0 {
				one[Suspect{e.Col, switchOf(cols[e.Col], e.Link)}] = true
			}
			if e.Col+1 < len(cols) {
				one[Suspect{e.Col + 1, switchOf(cols[e.Col+1], e.Link)}] = true
			}
		}
		switch {
		case sus == nil:
			sus = one
		case attributable:
			for s := range sus {
				if !one[s] {
					delete(sus, s)
				}
			}
		default:
			for s := range one {
				sus[s] = true
			}
		}
	}
	return sus, true, nil
}

// switchOf returns the switch index of a column that drives/consumes a
// link.
func switchOf(c fabric.Column, link int) int {
	h := c.BlockSize / 2
	b := link / c.BlockSize
	i := link % c.BlockSize
	if i >= h {
		i -= h
	}
	return b*h + i
}

// Report is the outcome of a diagnosis run.
type Report struct {
	TestsRun   int
	Detected   bool
	Candidates []Suspect
}

// Diagnose probes a fabric carrying the given stuck-at fault with up to
// maxTests random assignments (plus a full broadcast, which traverses
// every switch) and intersects the suspect sets of the failing tests.
// It returns the surviving candidates; with enough tests the true fault
// location is always among them, and usually pinned to a handful of
// switches sharing the faulty one's links.
func Diagnose(n int, f Fault, maxTests int, seed int64) (*Report, error) {
	if maxTests < 1 {
		return nil, fmt.Errorf("diagnosis: need at least one test")
	}
	rng := rand.New(rand.NewSource(seed))
	rep := &Report{}
	var candidates map[Suspect]bool

	tests := make([]mcast.Assignment, 0, maxTests)
	b, err := mcast.Broadcast(n, rng.Intn(n))
	if err != nil {
		return nil, err
	}
	tests = append(tests, b)
	for len(tests) < maxTests {
		tests = append(tests, workload.Random(rng, n, 0.9, 0.6))
	}

	for _, a := range tests {
		res, err := core.Route(a)
		if err != nil {
			return nil, err
		}
		got, err := runWithFault(a, res, &f)
		if err != nil {
			return nil, err
		}
		rep.TestsRun++
		sus, wrong, err := suspectsOf(a, res, got)
		if err != nil {
			return nil, err
		}
		if !wrong {
			continue // this test did not excite the fault
		}
		rep.Detected = true
		if candidates == nil {
			candidates = sus
		} else {
			for s := range candidates {
				if !sus[s] {
					delete(candidates, s)
				}
			}
		}
		if len(candidates) <= 1 {
			break
		}
	}
	for s := range candidates {
		rep.Candidates = append(rep.Candidates, s)
	}
	return rep, nil
}
