// Package diagnosis locates faulty switches in a BRSMN fabric from
// routing behavior alone — the classical fault-diagnosis problem for
// multistage interconnection networks, here solved with the machinery
// this repository already has: the per-connection tree extraction of
// package paths tells exactly which (column, switch) elements each
// connection traverses, so every misdelivered test assignment narrows
// the suspect set to the switches its broken connections share.
//
// The model is a single stuck-at fault: one switch ignores its computed
// setting and stays at a fixed state. Diagnose runs a sequence of test
// assignments through the faulty fabric, compares deliveries with the
// fault-free expectation, and intersects suspects until the faulty
// switch is isolated (or the candidate set stops shrinking).
package diagnosis

import (
	"fmt"
	"math/rand"
	"sort"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/paths"
	"brsmn/internal/swbox"
	"brsmn/internal/workload"
)

// Fault is a stuck-at switch fault: the switch at (Col, Switch) of the
// flattened column program always assumes Stuck regardless of its
// computed setting.
type Fault struct {
	Col    int
	Switch int
	Stuck  swbox.Setting
}

// Suspect identifies one candidate faulty element.
type Suspect struct {
	Col    int
	Switch int
}

// runWithFault replays a routed assignment's column program with the
// fault injected and returns the per-output sources.
func runWithFault(a mcast.Assignment, res *core.Result, f *Fault) ([]int, error) {
	cols, err := fabric.Flatten(res)
	if err != nil {
		return nil, err
	}
	if f != nil {
		if f.Col < 0 || f.Col >= len(cols) || f.Switch < 0 || f.Switch >= len(cols[f.Col].Settings) {
			return nil, fmt.Errorf("diagnosis: fault at (%d,%d) outside the fabric", f.Col, f.Switch)
		}
		// Copy-on-write the faulty column.
		patched := append([]swbox.Setting(nil), cols[f.Col].Settings...)
		patched[f.Switch] = f.Stuck
		cols[f.Col].Settings = patched
	}
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		return nil, err
	}
	out := make([]int, a.N)
	final, err := fabric.Run(cols, cells)
	if err != nil {
		// A fault can make Advance fail (a cell exits a BSN still
		// carrying α); treat as "everything misdelivered".
		for i := range out {
			out[i] = -2
		}
		return out, nil
	}
	for p, c := range final {
		out[p] = -1
		if !c.IsIdle() {
			out[p] = c.Source
		}
	}
	return out, nil
}

// SuspectsOf is the per-test half of the diagnosis: given a routed
// assignment and the deliveries actually observed on the (possibly
// faulty) fabric, it returns the candidate faulty switches this one
// test implicates — the switches traversed by every connection whose
// delivery went wrong. The boolean reports whether the test excited the
// fault at all (false means got matched the fault-free expectation and
// the suspect map is nil). got follows the fabric convention: got[out]
// is the source delivered at output out, -1 idle, -2 everywhere when
// the run crashed outright (a stranded cell).
func SuspectsOf(a mcast.Assignment, res *core.Result, got []int) (map[Suspect]bool, bool, error) {
	want := a.OutputOwner()
	broken := map[int]bool{} // sources with at least one wrong delivery
	anyWrong := false
	attributable := true
	for out := range want {
		if got[out] != want[out] {
			anyWrong = true
			if want[out] >= 0 {
				broken[want[out]] = true
			}
			if got[out] >= 0 {
				broken[got[out]] = true
			}
			if got[out] == -2 { // total failure: blame is unattributable
				attributable = false
				for src, ds := range a.Dests {
					if len(ds) > 0 {
						broken[src] = true
					}
				}
				break
			}
		}
	}
	if !anyWrong {
		return nil, false, nil
	}
	trees, err := paths.Extract(a, res)
	if err != nil {
		return nil, false, err
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		return nil, false, err
	}
	// A single stuck switch is the only place trajectories can change,
	// so EVERY attributably-broken connection traversed it: the fault
	// lies in the intersection of the broken connections' switch sets.
	// When the failure is a hand-off crash (unattributable), only the
	// union is sound.
	var sus map[Suspect]bool
	for _, tr := range trees {
		if !broken[tr.Source] {
			continue
		}
		one := map[Suspect]bool{}
		for _, e := range tr.Edges {
			// The cell left column e.Col on link e.Link through the
			// switch driving that link; also the switch of the NEXT
			// column that consumes the link can be at fault.
			if e.Col >= 0 {
				one[Suspect{e.Col, cols[e.Col].SwitchFor(e.Link)}] = true
			}
			if e.Col+1 < len(cols) {
				one[Suspect{e.Col + 1, cols[e.Col+1].SwitchFor(e.Link)}] = true
			}
		}
		switch {
		case sus == nil:
			sus = one
		case attributable:
			for s := range sus {
				if !one[s] {
					delete(sus, s)
				}
			}
		default:
			for s := range one {
				sus[s] = true
			}
		}
	}
	return sus, true, nil
}

// Report is the outcome of a diagnosis run.
type Report struct {
	TestsRun   int
	Detected   bool
	Candidates []Suspect
}

// Tracker accumulates fault evidence one test at a time — the
// incremental form of Diagnose that an online prober (internal/faultd)
// feeds as failed probes arrive, instead of mounting a fresh offline
// test campaign. Candidates only ever shrink (intersection of the
// suspect sets of exciting tests); a Tracker is not safe for concurrent
// use.
type Tracker struct {
	tests      int
	detected   bool
	candidates map[Suspect]bool
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Observe folds one test's observed deliveries into the candidate set
// and reports whether this test excited the fault. a and res are the
// routed fault-free expectation; got is what the fabric delivered (the
// convention of SuspectsOf).
func (t *Tracker) Observe(a mcast.Assignment, res *core.Result, got []int) (bool, error) {
	sus, wrong, err := SuspectsOf(a, res, got)
	if err != nil {
		return false, err
	}
	t.tests++
	if !wrong {
		return false, nil
	}
	t.detected = true
	if t.candidates == nil {
		t.candidates = sus
	} else {
		for s := range t.candidates {
			if !sus[s] {
				delete(t.candidates, s)
			}
		}
	}
	return true, nil
}

// Tests returns the number of observations folded in.
func (t *Tracker) Tests() int { return t.tests }

// Detected reports whether any observation excited a fault.
func (t *Tracker) Detected() bool { return t.detected }

// Pinned reports whether the candidate set has shrunk to at most k
// suspects (and at least one test excited the fault).
func (t *Tracker) Pinned(k int) bool { return t.detected && len(t.candidates) <= k }

// Candidates returns the surviving suspects, sorted by (column, switch).
func (t *Tracker) Candidates() []Suspect {
	out := make([]Suspect, 0, len(t.candidates))
	for s := range t.candidates {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Switch < out[j].Switch
	})
	return out
}

// Diagnose probes a fabric carrying the given stuck-at fault with up to
// maxTests random assignments (plus a full broadcast, which traverses
// every switch) and intersects the suspect sets of the failing tests.
// It returns the surviving candidates; with enough tests the true fault
// location is always among them, and usually pinned to a handful of
// switches sharing the faulty one's links.
func Diagnose(n int, f Fault, maxTests int, seed int64) (*Report, error) {
	if maxTests < 1 {
		return nil, fmt.Errorf("diagnosis: need at least one test")
	}
	rng := rand.New(rand.NewSource(seed))
	tests := make([]mcast.Assignment, 0, maxTests)
	b, err := mcast.Broadcast(n, rng.Intn(n))
	if err != nil {
		return nil, err
	}
	tests = append(tests, b)
	for len(tests) < maxTests {
		tests = append(tests, workload.Random(rng, n, 0.9, 0.6))
	}

	tr := NewTracker()
	for _, a := range tests {
		res, err := core.Route(a)
		if err != nil {
			return nil, err
		}
		got, err := runWithFault(a, res, &f)
		if err != nil {
			return nil, err
		}
		if _, err := tr.Observe(a, res, got); err != nil {
			return nil, err
		}
		if tr.Pinned(1) {
			break
		}
	}
	rep := &Report{TestsRun: tr.Tests(), Detected: tr.Detected()}
	if tr.Detected() {
		rep.Candidates = tr.Candidates()
	}
	return rep, nil
}
