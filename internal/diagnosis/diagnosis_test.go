package diagnosis

import (
	"math/rand"
	"testing"

	"brsmn/internal/core"
	"brsmn/internal/cost"
	"brsmn/internal/swbox"
	"brsmn/internal/workload"
)

// TestDiagnoseLocatesFault injects stuck-at faults at random fabric
// positions and checks the true location is always among the surviving
// candidates, and the candidate set is small.
func TestDiagnoseLocatesFault(t *testing.T) {
	rng := rand.New(rand.NewSource(260))
	n := 16
	depth := cost.BRSMNDepth(n)
	sharpest := 1 << 20
	for trial := 0; trial < 20; trial++ {
		f := Fault{
			Col:    rng.Intn(depth),
			Switch: rng.Intn(n / 2),
			Stuck:  swbox.Setting(rng.Intn(2)), // stuck parallel or cross
		}
		rep, err := Diagnose(n, f, 12, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Detected {
			// A stuck setting can coincide with every computed setting
			// across the tests; then the fault is benign for this
			// traffic and nothing to locate.
			continue
		}
		found := false
		for _, s := range rep.Candidates {
			if s.Col == f.Col && s.Switch == f.Switch {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: fault (%d,%d,%v) not among %d candidates %v",
				trial, f.Col, f.Switch, f.Stuck, len(rep.Candidates), rep.Candidates)
		}
		// Unattributable hand-off crashes can only be localized to a
		// union of suspect trees; attributable faults intersect down
		// hard. Bound the worst case loosely and the best case tightly.
		if len(rep.Candidates) > 4*depth {
			t.Errorf("trial %d: %d candidates is implausibly many", trial, len(rep.Candidates))
		}
		if len(rep.Candidates) < sharpest {
			sharpest = len(rep.Candidates)
		}
	}
	if sharpest > 8 {
		t.Errorf("no trial localized the fault below 9 candidates (best %d)", sharpest)
	}
}

// TestDiagnoseStuckBroadcast covers the nastiest fault class: a switch
// stuck at a broadcast setting duplicates traffic and can break the BSN
// hand-off entirely; the detector must still flag it.
func TestDiagnoseStuckBroadcast(t *testing.T) {
	n := 16
	f := Fault{Col: 3, Switch: 2, Stuck: swbox.UpperBcast}
	rep, err := Diagnose(n, f, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatal("stuck-broadcast fault went undetected")
	}
}

// TestFaultFreeFabricIsClean checks no false positives: replaying
// without a fault never disagrees with the router.
func TestFaultFreeFabricIsClean(t *testing.T) {
	rng := rand.New(rand.NewSource(261))
	n := 32
	for trial := 0; trial < 10; trial++ {
		a := workload.Random(rng, n, 0.8, 0.5)
		res, err := core.Route(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := runWithFault(a, res, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, wrong, err := SuspectsOf(a, res, got)
		if err != nil {
			t.Fatal(err)
		}
		if wrong {
			t.Fatal("fault-free replay flagged as faulty")
		}
	}
}

// TestDiagnoseValidation covers the guards.
func TestDiagnoseValidation(t *testing.T) {
	if _, err := Diagnose(16, Fault{}, 0, 1); err == nil {
		t.Error("accepted zero tests")
	}
	if _, err := Diagnose(16, Fault{Col: 999, Switch: 0}, 2, 1); err == nil {
		t.Error("accepted out-of-fabric fault")
	}
}
