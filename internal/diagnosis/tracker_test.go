package diagnosis

import (
	"math/rand"
	"testing"

	"brsmn/internal/core"
	"brsmn/internal/swbox"
	"brsmn/internal/workload"
)

// TestTrackerIncrementalMatchesDiagnose feeds the tracker the same test
// sequence Diagnose would generate, one observation at a time, and
// checks the incremental candidate set converges onto the true fault
// and only ever shrinks.
func TestTrackerIncrementalMatchesDiagnose(t *testing.T) {
	const n = 16
	f := Fault{Col: 5, Switch: 3, Stuck: swbox.Cross}
	rng := rand.New(rand.NewSource(9))
	tr := NewTracker()
	prev := -1
	for i := 0; i < 12; i++ {
		a := workload.Random(rng, n, 0.9, 0.6)
		res, err := core.Route(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := runWithFault(a, res, &f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Observe(a, res, got); err != nil {
			t.Fatal(err)
		}
		if tr.Detected() {
			c := len(tr.Candidates())
			if prev >= 0 && c > prev {
				t.Fatalf("candidate set grew from %d to %d at test %d", prev, c, i)
			}
			prev = c
		}
	}
	if tr.Tests() != 12 {
		t.Fatalf("Tests() = %d, want 12", tr.Tests())
	}
	if !tr.Detected() {
		t.Skip("fault benign for this traffic — nothing to localize")
	}
	found := false
	for _, s := range tr.Candidates() {
		if s.Col == f.Col && s.Switch == f.Switch {
			found = true
		}
	}
	if !found {
		t.Fatalf("true fault (%d,%d) not among candidates %v", f.Col, f.Switch, tr.Candidates())
	}
}

// TestTrackerCleanObservationsDetectNothing checks fault-free evidence
// never trips detection.
func TestTrackerCleanObservationsDetectNothing(t *testing.T) {
	const n = 8
	rng := rand.New(rand.NewSource(10))
	tr := NewTracker()
	for i := 0; i < 5; i++ {
		a := workload.Random(rng, n, 0.7, 0.5)
		res, err := core.Route(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := runWithFault(a, res, nil)
		if err != nil {
			t.Fatal(err)
		}
		excited, err := tr.Observe(a, res, got)
		if err != nil {
			t.Fatal(err)
		}
		if excited {
			t.Fatal("clean observation reported as exciting a fault")
		}
	}
	if tr.Detected() || tr.Pinned(100) {
		t.Fatal("tracker detected a fault on a clean fabric")
	}
}
