// Package diagram renders ASCII views of the networks and of routed
// traffic: reverse-banyan switch plans (Fig. 5), tag traces through a
// binary splitting network (Fig. 4b), the level structure of a routed
// BRSMN (Figs. 1–2), and plain text tables for the experiment harness.
package diagram

import (
	"fmt"
	"strings"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/swbox"
	"brsmn/internal/tag"
)

// settingGlyph is a one-character rendering of a switch setting.
func settingGlyph(s swbox.Setting) byte {
	switch s {
	case swbox.Parallel:
		return '='
	case swbox.Cross:
		return 'x'
	case swbox.UpperBcast:
		return 'A'
	case swbox.LowerBcast:
		return 'V'
	}
	return '?'
}

// RenderPlan draws an n x n reverse banyan plan as one column per stage;
// row w of column j is the setting of switch w ('=' parallel, 'x' cross,
// 'A' upper broadcast, 'V' lower broadcast).
func RenderPlan(p *rbn.Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d x %d RBN (%d stages, %d switches)\n", p.N, p.N, p.M, p.NumSwitches())
	b.WriteString("switch")
	for j := 0; j < p.M; j++ {
		fmt.Fprintf(&b, " st%-2d", j)
	}
	b.WriteByte('\n')
	for w := 0; w < p.N/2; w++ {
		fmt.Fprintf(&b, "%4d  ", w)
		for j := 0; j < p.M; j++ {
			fmt.Fprintf(&b, "  %c  ", settingGlyph(p.Stages[j][w]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTagTrace draws the tag vector at every stage boundary of a
// planned RBN fed with the given tags — the Fig. 4b view of scattering
// or quasisorting in flight.
func RenderTagTrace(p *rbn.Plan, in []tag.Value) (string, error) {
	trace, err := rbn.Trace(p, in, func(v tag.Value) (tag.Value, tag.Value) {
		return tag.V0, tag.V1
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for pos := 0; pos < p.N; pos++ {
		fmt.Fprintf(&b, "%3d: ", pos)
		for s, vec := range trace {
			if s > 0 {
				b.WriteString(" -> ")
			}
			fmt.Fprintf(&b, "%-2s", vec[pos])
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// RenderAssignment prints the assignment in paper notation with fanout
// statistics.
func RenderAssignment(a mcast.Assignment) string {
	return fmt.Sprintf("%v  (n=%d, fanout %d, %d active inputs)",
		a, a.N, a.Fanout(), a.ActiveInputs())
}

// RenderRoute summarizes a routed BRSMN: the level/BSN structure of
// Fig. 1 with per-BSN broadcast counts, the final switch column and the
// deliveries of Fig. 2.
func RenderRoute(a mcast.Assignment, res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "assignment: %s\n", RenderAssignment(a))
	for _, lp := range res.Plans {
		sc := lp.Scatter.CountSettings()
		fmt.Fprintf(&b, "level %d: %2d x %-2d BSN at outputs [%d,%d): %d broadcast(s) in scatter\n",
			lp.Level, lp.Size, lp.Size, lp.Base, lp.Base+lp.Size,
			sc[swbox.UpperBcast]+sc[swbox.LowerBcast])
	}
	b.WriteString("final column: ")
	for _, s := range res.Final {
		b.WriteByte(settingGlyph(s))
	}
	b.WriteByte('\n')
	for out, d := range res.Deliveries {
		if d.Source < 0 {
			fmt.Fprintf(&b, "output %d: (idle)\n", out)
		} else {
			fmt.Fprintf(&b, "output %d: from input %d\n", out, d.Source)
		}
	}
	return b.String()
}

// RenderSequences prints each input's routing-tag sequence — the wire
// format of Section 7.1 / Fig. 9.
func RenderSequences(a mcast.Assignment) (string, error) {
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, c := range cells {
		if c.IsIdle() {
			fmt.Fprintf(&b, "input %d: idle (all-ε)\n", i)
			continue
		}
		fmt.Fprintf(&b, "input %d: %s  (destinations %v)\n", i, mcast.FormatSequence(c.Seq), a.Dests[i])
	}
	return b.String(), nil
}

// Table renders rows of cells under headers as an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// RenderTagTree draws a multicast's routing-tag tree (Fig. 9): one line
// per level, each node's tag positioned over the block of outputs it
// governs, with the destination set on the last line.
func RenderTagTree(tree mcast.TagTree) string {
	n := tree.N
	var b strings.Builder
	cell := 3 // characters per output column
	for level := 1; level <= tree.Levels(); level++ {
		tags := tree.Level(level)
		span := n / len(tags) // outputs governed per node
		fmt.Fprintf(&b, "L%d ", level)
		for _, v := range tags {
			label := v.String()
			width := span * cell
			pad := (width - len([]rune(label))) / 2
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(label)
			b.WriteString(strings.Repeat(" ", width-pad-len([]rune(label))))
		}
		b.WriteByte('\n')
	}
	b.WriteString("out")
	member := map[int]bool{}
	for _, d := range tree.Dests() {
		member[d] = true
	}
	for d := 0; d < n; d++ {
		mark := " · "
		if member[d] {
			mark = fmt.Sprintf("%2d ", d)
		}
		b.WriteString(mark)
	}
	b.WriteByte('\n')
	return b.String()
}
