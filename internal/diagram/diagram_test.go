package diagram

import (
	"strings"
	"testing"

	"brsmn/internal/core"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/tag"
	"brsmn/internal/workload"
)

// TestRenderPlan checks the plan rendering structure and glyphs.
func TestRenderPlan(t *testing.T) {
	tags := []tag.Value{tag.Alpha, tag.Eps, tag.V0, tag.V1}
	p, err := rbn.ScatterPlan(4, tags, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderPlan(p)
	if !strings.Contains(out, "4 x 4 RBN (2 stages, 4 switches)") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.ContainsAny(out, "AV") {
		t.Errorf("no broadcast glyph for an α/ε input:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 1+1+2 { // header + column header + 2 switch rows
		t.Errorf("unexpected line count %d:\n%s", lines, out)
	}
}

// TestRenderTagTrace checks trace rows and stage columns.
func TestRenderTagTrace(t *testing.T) {
	tags := []tag.Value{tag.Alpha, tag.Eps, tag.V0, tag.V1}
	p, err := rbn.ScatterPlan(4, tags, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderTagTrace(p, tags)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "\n") != 4 {
		t.Errorf("want 4 rows:\n%s", out)
	}
	if !strings.Contains(out, "->") {
		t.Errorf("no stage separators:\n%s", out)
	}
}

// TestRenderRoute checks the Fig. 2 rendering mentions every structural
// element.
func TestRenderRoute(t *testing.T) {
	a := workload.PaperFig2()
	res, err := core.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderRoute(a, res)
	for _, want := range []string{
		"{{0,1}, ∅, {3,4,7}, {2}, ∅, ∅, ∅, {5,6}}",
		"level 1:  8 x 8  BSN",
		"level 2:  4 x 4  BSN",
		"final column:",
		"output 0: from input 0",
		"output 7: from input 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestRenderSequences checks the Fig. 9 sequences appear.
func TestRenderSequences(t *testing.T) {
	out, err := RenderSequences(workload.PaperFig2())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "00εαεεε") || !strings.Contains(out, "α1αε011") {
		t.Errorf("golden sequences missing:\n%s", out)
	}
	if !strings.Contains(out, "input 1: idle") {
		t.Errorf("idle input not rendered:\n%s", out)
	}
}

// TestTable checks alignment and structure of the table renderer.
func TestTable(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"xxxx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("no separator row:\n%s", out)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("header and separator misaligned:\n%s", out)
	}
}

// TestRenderTagTree pins the Fig. 9 tree rendering on the running
// example.
func TestRenderTagTree(t *testing.T) {
	tree, err := mcast.BuildTagTree(8, []int{3, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTagTree(tree)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 3 levels + output line
		t.Fatalf("want 4 lines:\n%s", out)
	}
	if !strings.Contains(lines[0], "α") {
		t.Errorf("root α missing:\n%s", out)
	}
	if !strings.Contains(lines[3], " 3 ") || !strings.Contains(lines[3], " 7 ") {
		t.Errorf("destinations missing:\n%s", out)
	}
	if !strings.Contains(lines[3], "·") {
		t.Errorf("idle outputs not marked:\n%s", out)
	}
}
