package fabric

import (
	"math/rand"
	"testing"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/workload"
)

// TestExecutorMatchesRun replays the same column programs through the
// one-shot Run and a shared, buffer-reusing Executor (including runs of
// different sizes back to back); deliveries must be identical.
func TestExecutorMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	var e Executor
	for trial := 0; trial < 12; trial++ {
		n := 4 << uint(rng.Intn(4)) // 4..32, shuffled sizes stress buffer resizing
		a := workload.Random(rng, n, rng.Float64(), rng.Float64())
		res, err := core.Route(a)
		if err != nil {
			t.Fatal(err)
		}
		cols, err := Flatten(res)
		if err != nil {
			t.Fatal(err)
		}
		cells, err := bsn.CellsForAssignment(a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(cols, cells)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Run(cols, cells)
		if err != nil {
			t.Fatal(err)
		}
		for p := range got {
			gs, ws := -1, -1
			if !got[p].IsIdle() {
				gs = got[p].Source
			}
			if !want[p].IsIdle() {
				ws = want[p].Source
			}
			if gs != ws {
				t.Fatalf("trial %d n=%d output %d: executor delivered %d, Run delivered %d", trial, n, p, gs, ws)
			}
		}
	}
}

// TestSwitchForInvertsPair pins SwitchFor as the inverse of Pair on
// every column shape that occurs in a flattened program.
func TestSwitchForInvertsPair(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		for bs := 2; bs <= n; bs *= 2 {
			c := Column{BlockSize: bs}
			for w := 0; w < n/2; w++ {
				p0, p1 := c.Pair(w)
				if c.SwitchFor(p0) != w || c.SwitchFor(p1) != w {
					t.Fatalf("n=%d blockSize=%d: SwitchFor(Pair(%d)) = (%d,%d)",
						n, bs, w, c.SwitchFor(p0), c.SwitchFor(p1))
				}
			}
		}
	}
}

// BenchmarkRun measures the one-shot execution path (fresh buffers per
// call) against BenchmarkExecutorRun, the buffer-reusing serving path.
func BenchmarkRun(b *testing.B) {
	cols, cells := benchProgram(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cols, cells); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorRun is the hot serving path: one Executor reused
// across runs; allocs/op drops to zero once the buffers are warm.
func BenchmarkExecutorRun(b *testing.B) {
	cols, cells := benchProgram(b, 256)
	var e Executor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cols, cells); err != nil {
			b.Fatal(err)
		}
	}
}

func benchProgram(b *testing.B, n int) ([]Column, []bsn.Cell) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	a := workload.Random(rng, n, 0.9, 0.6)
	res, err := core.Route(a)
	if err != nil {
		b.Fatal(err)
	}
	cols, err := Flatten(res)
	if err != nil {
		b.Fatal(err)
	}
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		b.Fatal(err)
	}
	return cols, cells
}
