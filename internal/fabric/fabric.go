// Package fabric is the physical, wiring-level view of the networks: it
// builds the merging stages from the shuffle/exchange wiring functions of
// Figs. 6–7 (rather than the logical pair model the algorithms are stated
// in), executes switch plans on that wiring, and checks link occupancy —
// each wire carries at most one message per pass, the edge-disjointness
// the multicast trees are claimed to have.
//
// The package also flattens a fully routed BRSMN (its per-level BSN plans
// plus the delivery column) into one linear column program, which is what
// the pipelined simulator (package netsim) runs waves of assignments
// through.
package fabric

import (
	"fmt"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/swbox"
)

// Stage is one physical switch column of an RBN: the sub-block size its
// merging networks operate on, and for every switch its two attached link
// indices on the input and output side, derived from the wiring function.
type Stage struct {
	BlockSize int
	// Port[t][k] is the network link attached to port k of physical
	// switch t (the same link index on the input and output side — the
	// merging network is wired symmetrically).
	Port [][2]int
}

// BuildRBN constructs the physical stages of an n x n reverse banyan
// network from the wiring functions: stage j consists of the merging
// networks of all sub-RBNs of size 2^(j+1); within a block, switch port a
// attaches to block link Wire(blockSize, a).
func BuildRBN(n int) ([]Stage, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("fabric: size %d is not a power of two >= 2", n)
	}
	m := shuffle.Log2(n)
	stages := make([]Stage, m)
	for j := 0; j < m; j++ {
		size := 1 << (j + 1)
		st := Stage{BlockSize: size, Port: make([][2]int, n/2)}
		for block := 0; block < n/size; block++ {
			base := block * size
			for t := 0; t < size/2; t++ {
				a0, a1 := 2*t, 2*t+1
				st.Port[base/2+t] = [2]int{
					base + shuffle.Wire(size, a0),
					base + shuffle.Wire(size, a1),
				}
			}
		}
		stages[j] = st
	}
	return stages, nil
}

// VerifyAgainstPairModel checks that the physical wiring reproduces the
// logical pair model the setting algorithms use: physical switch w of
// stage j must join exactly the links rbn.Plan.Pair(j, w) reports, with
// the upper link on port 0.
func VerifyAgainstPairModel(n int) error {
	stages, err := BuildRBN(n)
	if err != nil {
		return err
	}
	p := rbn.NewPlan(n)
	for j, st := range stages {
		for w, ports := range st.Port {
			p0, p1 := p.Pair(j, w)
			if ports[0] != p0 || ports[1] != p1 {
				return fmt.Errorf("fabric: stage %d switch %d wired to (%d,%d); pair model says (%d,%d)",
					j, w, ports[0], ports[1], p0, p1)
			}
		}
	}
	return nil
}

// Apply executes an rbn.Plan on the physical wiring with message
// conservation checking. Every link has exactly one driving switch, so a
// link can never carry two messages (edge-disjointness is structural);
// what a corrupted plan *can* do is drop a message — a broadcast setting
// discards one of its inputs. Apply returns an error whenever a
// broadcast would discard a live message, so message conservation holds
// on every return. occupied reports whether an item is a live message;
// pass nil to skip the check.
func Apply[T any](p *rbn.Plan, in []T, split func(T) (T, T), occupied func(T) bool) ([]T, error) {
	stages, err := BuildRBN(p.N)
	if err != nil {
		return nil, err
	}
	if len(in) != p.N {
		return nil, fmt.Errorf("fabric: %d inputs for a %d x %d network", len(in), p.N, p.N)
	}
	cur := append([]T(nil), in...)
	for j, st := range stages {
		next := make([]T, p.N)
		for t, ports := range st.Port {
			s := p.Stages[j][t]
			if s.IsBroadcast() {
				if split == nil {
					return nil, fmt.Errorf("fabric: stage %d switch %d is %v with no split function", j, t, s)
				}
				discarded := ports[1]
				if s == swbox.LowerBcast {
					discarded = ports[0]
				}
				if occupied != nil && occupied(cur[discarded]) {
					return nil, fmt.Errorf("fabric: stage %d switch %d (%v) discards the live message on link %d",
						j, t, s, discarded)
				}
			}
			o0, o1 := swbox.Apply(s, cur[ports[0]], cur[ports[1]], split)
			next[ports[0]], next[ports[1]] = o0, o1
		}
		cur = next
	}
	return cur, nil
}

// ColumnKind labels what a flattened column belongs to, for rendering
// and accounting.
type ColumnKind uint8

const (
	// ColScatter is a column of a level's scatter RBNs.
	ColScatter ColumnKind = iota
	// ColQuasisort is a column of a level's quasisorting RBNs.
	ColQuasisort
	// ColDeliver is the final 2x2 delivery column.
	ColDeliver
)

// String implements fmt.Stringer.
func (k ColumnKind) String() string {
	switch k {
	case ColScatter:
		return "scatter"
	case ColQuasisort:
		return "quasisort"
	case ColDeliver:
		return "deliver"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Column is one switch column of the flattened BRSMN: n/2 settings plus
// the block size its pair wiring uses and the level it came from.
type Column struct {
	Kind      ColumnKind
	Level     int
	BlockSize int // pair wiring: switch w joins links base+i, base+i+BlockSize/2
	Settings  []swbox.Setting
	// AdvanceAfter marks the level boundary: cells must consume one
	// routing tag after this column (the BSN hand-off of Fig. 10).
	AdvanceAfter bool
}

// Pair returns the two links joined by switch w of this column.
func (c Column) Pair(w int) (int, int) {
	h := c.BlockSize / 2
	b := w / h
	i := w % h
	base := b * c.BlockSize
	return base + i, base + i + h
}

// SwitchFor returns the switch of this column that drives/consumes the
// given link — the inverse of Pair.
func (c Column) SwitchFor(link int) int {
	h := c.BlockSize / 2
	b := link / c.BlockSize
	i := link % c.BlockSize
	if i >= h {
		i -= h
	}
	return b*h + i
}

// Flatten converts a routed BRSMN result into its linear column program:
// for each level in order, the scatter stages then the quasisort stages
// of all the level's BSNs (side by side), then the delivery column. The
// result has exactly cost.BRSMNDepth(n) columns.
func Flatten(res *core.Result) ([]Column, error) {
	n := res.N
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("fabric: result size %d is not a power of two >= 2", n)
	}
	// Group level plans by level.
	byLevel := map[int][]core.LevelPlan{}
	maxLevel := 0
	for _, lp := range res.Plans {
		byLevel[lp.Level] = append(byLevel[lp.Level], lp)
		if lp.Level > maxLevel {
			maxLevel = lp.Level
		}
	}
	var cols []Column
	for level := 1; level <= maxLevel; level++ {
		plans := byLevel[level]
		if len(plans) == 0 {
			return nil, fmt.Errorf("fabric: no BSN plans at level %d", level)
		}
		size := plans[0].Size
		stagesPer := shuffle.Log2(size)
		for _, kind := range []ColumnKind{ColScatter, ColQuasisort} {
			for j := 0; j < stagesPer; j++ {
				col := Column{
					Kind:      kind,
					Level:     level,
					BlockSize: 1 << (j + 1),
					Settings:  make([]swbox.Setting, n/2),
				}
				for _, lp := range plans {
					p := lp.Scatter
					if kind == ColQuasisort {
						p = lp.Quasi
					}
					copy(col.Settings[lp.Base/2:lp.Base/2+size/2], p.Stages[j])
				}
				cols = append(cols, col)
			}
		}
		cols[len(cols)-1].AdvanceAfter = true
	}
	cols = append(cols, Column{
		Kind:      ColDeliver,
		Level:     maxLevel + 1,
		BlockSize: 2,
		Settings:  append([]swbox.Setting(nil), res.Final...),
	})
	return cols, nil
}

// Run executes a flattened column program on a cell vector, performing
// the per-level tag hand-off at level boundaries, and returns the final
// cells (one per output). Each switch drives its two links exactly once
// per column, so link occupancy is single-writer by construction here;
// Apply performs the explicit occupancy assertion on the unflattened
// wiring. Run allocates its result; the hot serving path should hold an
// Executor and call its Run method instead, which reuses buffers across
// calls.
func Run(cols []Column, in []bsn.Cell) ([]bsn.Cell, error) {
	return new(Executor).Run(cols, in)
}

// Tamperer mutates a column program's execution in flight — the fault-
// injection hook the faultd subsystem uses to model stuck switches and
// dead links without forking the execution loop. Implementations must
// not retain the slices they are handed.
type Tamperer interface {
	// TamperSettings may substitute the settings a column executes with.
	// The returned slice must have the same length; return s unchanged
	// when column ci carries no fault.
	TamperSettings(ci int, s []swbox.Setting) []swbox.Setting
	// TamperCells mutates the live cell vector right after column ci
	// executes (before the level-boundary tag hand-off).
	TamperCells(ci int, cells []bsn.Cell)
}

// Executor runs flattened column programs while reusing two internal
// cell buffers plus a routing-tag arena across calls, so a steady
// serving loop performs zero per-column (and, once warm, zero per-run)
// allocations. The returned slice and the tag sequences of its cells
// alias internal storage and are valid until the next call. An Executor
// is not safe for concurrent use.
type Executor struct {
	cur, next []bsn.Cell
	arena     bsn.Arena
}

// Run executes the program like the package-level Run, against the
// executor's reusable buffers.
func (e *Executor) Run(cols []Column, in []bsn.Cell) ([]bsn.Cell, error) {
	return e.RunTampered(cols, in, nil)
}

// RunTampered executes the program with a fault-injection hook applied
// at every column; t may be nil for a fault-free run.
func (e *Executor) RunTampered(cols []Column, in []bsn.Cell, t Tamperer) ([]bsn.Cell, error) {
	n := len(in)
	if cap(e.cur) < n {
		e.cur = make([]bsn.Cell, n)
		e.next = make([]bsn.Cell, n)
	}
	e.cur, e.next = e.cur[:n], e.next[:n]
	e.arena.Reset()
	copy(e.cur, in)
	for ci, col := range cols {
		if len(col.Settings) != n/2 {
			return nil, fmt.Errorf("fabric: column %d has %d settings for n=%d", ci, len(col.Settings), n)
		}
		settings := col.Settings
		if t != nil {
			settings = t.TamperSettings(ci, settings)
			if len(settings) != n/2 {
				return nil, fmt.Errorf("fabric: tamperer changed column %d to %d settings", ci, len(settings))
			}
		}
		for w, s := range settings {
			p0, p1 := col.Pair(w)
			e.next[p0], e.next[p1] = swbox.Apply(s, e.cur[p0], e.cur[p1], bsn.SplitCell)
		}
		e.cur, e.next = e.next, e.cur
		if t != nil {
			t.TamperCells(ci, e.cur)
		}
		if col.AdvanceAfter {
			for i := range e.cur {
				if e.cur[i].IsIdle() {
					continue
				}
				adv, err := bsn.AdvanceIn(e.cur[i], &e.arena)
				if err != nil {
					return nil, fmt.Errorf("fabric: column %d advance: %w", ci, err)
				}
				e.cur[i] = adv
			}
		}
	}
	return e.cur, nil
}
