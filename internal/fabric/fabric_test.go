package fabric

import (
	"math/rand"
	"testing"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/cost"
	"brsmn/internal/rbn"
	"brsmn/internal/tag"
	"brsmn/internal/workload"
)

// TestWiringMatchesPairModel checks the physical shuffle wiring yields
// exactly the pair model of the setting algorithms, for all sizes up to
// 512 (the Figs. 6–7 equivalence, at fabric granularity).
func TestWiringMatchesPairModel(t *testing.T) {
	for n := 2; n <= 512; n *= 2 {
		if err := VerifyAgainstPairModel(n); err != nil {
			t.Fatal(err)
		}
	}
}

// TestApplyAgreesWithRBN routes the same plans through the physical
// fabric and the logical Apply; results must be identical, and the
// occupancy assertion must stay silent.
func TestApplyAgreesWithRBN(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps}
	for _, n := range []int{2, 8, 64, 256} {
		for trial := 0; trial < 10; trial++ {
			tags := make([]tag.Value, n)
			for i := range tags {
				tags[i] = vals[rng.Intn(4)]
			}
			p, err := rbn.ScatterPlan(n, tags, rng.Intn(n))
			if err != nil {
				t.Fatal(err)
			}
			split := func(v tag.Value) (tag.Value, tag.Value) { return tag.V0, tag.V1 }
			want, err := rbn.Apply(p, tags, split)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Apply(p, tags, split, func(v tag.Value) bool { return v.CarriesMessage() })
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d: fabric and pair-model outputs differ at %d: %v vs %v", n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestApplyConservationCatchesCorruption corrupts a plan so a broadcast
// discards a live message and checks the conservation assertion fires —
// the failure-injection test for the fabric checker.
func TestApplyConservationCatchesCorruption(t *testing.T) {
	n := 8
	tags := []tag.Value{tag.V0, tag.V0, tag.V1, tag.V1, tag.V0, tag.V1, tag.V0, tag.V1}
	gamma := make([]bool, n)
	for i, v := range tags {
		gamma[i] = v == tag.V1
	}
	p, err := rbn.BitSortPlan(n, gamma, n/2)
	if err != nil {
		t.Fatal(err)
	}
	// Turn a unicast switch into a broadcast: with all inputs live, the
	// broadcast discards the live message on its second port.
	p.Stages[0][0] = 2 // UpperBcast
	split := func(v tag.Value) (tag.Value, tag.Value) { return v, v }
	_, err = Apply(p, tags, split, func(v tag.Value) bool { return v.CarriesMessage() })
	if err == nil {
		t.Fatal("fabric accepted a corrupted plan that drops live traffic")
	}
}

// TestFlattenDepthMatchesCostModel checks the flattened column count
// equals the closed-form depth.
func TestFlattenDepthMatchesCostModel(t *testing.T) {
	for _, n := range []int{4, 8, 32, 128} {
		res, err := core.Route(workload.Broadcast(n, 1))
		if err != nil {
			t.Fatal(err)
		}
		cols, err := Flatten(res)
		if err != nil {
			t.Fatal(err)
		}
		if len(cols) != cost.BRSMNDepth(n) {
			t.Errorf("n=%d: %d columns, want depth %d", n, len(cols), cost.BRSMNDepth(n))
		}
		// Kind structure: scatter and quasisort alternate per level,
		// ending with one delivery column.
		if cols[len(cols)-1].Kind != ColDeliver {
			t.Errorf("n=%d: last column is %v", n, cols[len(cols)-1].Kind)
		}
		advances := 0
		for _, c := range cols {
			if c.AdvanceAfter {
				advances++
			}
		}
		if wantLevels := cost.BRSMNDepth(n); advances == 0 && wantLevels > 1 {
			t.Errorf("n=%d: no level hand-offs marked", n)
		}
	}
}

// TestRunReproducesRouting runs the flattened program on the original
// input cells and checks the deliveries equal the recursive router's.
func TestRunReproducesRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for _, n := range []int{4, 8, 32, 128} {
		for trial := 0; trial < 10; trial++ {
			a := workload.Random(rng, n, rng.Float64(), rng.Float64())
			res, err := core.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			cols, err := Flatten(res)
			if err != nil {
				t.Fatal(err)
			}
			cells, err := bsn.CellsForAssignment(a)
			if err != nil {
				t.Fatal(err)
			}
			out, err := Run(cols, cells)
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, a, err)
			}
			for p, c := range out {
				want := res.Deliveries[p].Source
				got := -1
				if !c.IsIdle() {
					got = c.Source
				}
				if got != want {
					t.Fatalf("n=%d %v: output %d: flattened run delivered %d, recursive %d", n, a, p, got, want)
				}
			}
		}
	}
}

// TestColumnKindStrings pins the labels.
func TestColumnKindStrings(t *testing.T) {
	if ColScatter.String() != "scatter" || ColQuasisort.String() != "quasisort" || ColDeliver.String() != "deliver" {
		t.Error("kind strings wrong")
	}
	if ColumnKind(9).String() == "" {
		t.Error("unknown kind unprintable")
	}
}

// TestBuildErrors checks validation.
func TestBuildErrors(t *testing.T) {
	if _, err := BuildRBN(6); err == nil {
		t.Error("BuildRBN accepted non-power-of-two size")
	}
	p := rbn.NewPlan(4)
	if _, err := Apply(p, make([]tag.Value, 3), nil, nil); err == nil {
		t.Error("Apply accepted mismatched width")
	}
}
