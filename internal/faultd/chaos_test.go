package faultd

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/groupd"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/swbox"
)

// chaosRig is the full serving stack under test: a group manager whose
// fault policy is a Monitor, probing every epoch, with the shared
// injector standing in for the (possibly faulty) hardware.
type chaosRig struct {
	inj *Injector
	mon *Monitor
	gm  *groupd.Manager
	rng *rand.Rand
	n   int
}

func newChaosRig(t *testing.T, n int) *chaosRig {
	t.Helper()
	inj := NewInjector(11)
	mon, err := NewMonitor(Config{N: n, Engine: rbn.Sequential, ProbeCount: 4, ProbeEvery: 1}, inj)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := groupd.NewManager(groupd.Config{N: n, Engine: rbn.Sequential, Workers: 2, Policy: mon})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gm.Close() })
	return &chaosRig{inj: inj, mon: mon, gm: gm, rng: rand.New(rand.NewSource(7)), n: n}
}

// churn flips random memberships of the named groups, the same machinery
// the groupd churn soak uses.
func (rig *chaosRig) churn(t *testing.T, ids []string, ops int) {
	t.Helper()
	for op := 0; op < ops; op++ {
		id := ids[rig.rng.Intn(len(ids))]
		d := rig.rng.Intn(rig.n)
		g, err := rig.gm.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		joined := false
		for _, mem := range g.Members {
			if mem == d {
				joined = true
				break
			}
		}
		if joined {
			if _, err := rig.gm.Leave(id, d); err != nil {
				t.Fatal(err)
			}
		} else if _, err := rig.gm.Join(id, d); err != nil {
			t.Fatal(err)
		}
	}
}

// verifyChaosEpoch replays each round of an epoch report through the
// real (faulty) injector and demands 100% delivery of every output the
// round kept, plus exact membership accounting: each round's members
// are either delivered or listed as rejected, never silently lost.
func verifyChaosEpoch(t *testing.T, rig *chaosRig, rep *groupd.EpochReport) {
	t.Helper()
	var e fabric.Executor
	for r, round := range rep.Rounds {
		dests := make([][]int, rig.n)
		kept := 0
		for out, src := range round.Deliveries {
			if src >= 0 {
				dests[src] = append(dests[src], out)
				kept++
			}
		}
		for _, out := range round.Rejected {
			if round.Deliveries[out] >= 0 {
				t.Fatalf("round %d output %d both delivered and rejected", r, out)
			}
		}
		want := 0
		for _, id := range round.GroupIDs {
			g, err := rig.gm.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			want += g.Size
		}
		if kept+len(round.Rejected) != want {
			t.Fatalf("round %d lost members: %d delivered + %d rejected != %d requested",
				r, kept, len(round.Rejected), want)
		}
		if kept == 0 {
			continue
		}
		// The router is deterministic, so re-routing the kept assignment
		// reproduces exactly the plan the quarantine planner vetted.
		a, err := mcast.New(rig.n, dests)
		if err != nil {
			t.Fatalf("round %d delivery vector is not a valid assignment: %v", r, err)
		}
		res, err := core.Route(a)
		if err != nil {
			t.Fatalf("round %d re-route: %v", r, err)
		}
		cols, err := fabric.Flatten(res)
		if err != nil {
			t.Fatal(err)
		}
		cells, err := bsn.CellsForAssignment(a)
		if err != nil {
			t.Fatal(err)
		}
		got := rig.inj.Deliveries(&e, cols, cells)
		for out := range got {
			if got[out] != round.Deliveries[out] {
				t.Fatalf("round %d output %d: faulty fabric delivered %d, epoch promised %d",
					r, out, got[out], round.Deliveries[out])
			}
		}
	}
}

// TestChaosFaultMidChurn is the end-to-end soak: clean churn, then a
// stuck-at fault injected mid-churn; the per-epoch probes must detect it
// within budget, the localizer must pin the true (column, switch) among
// its candidates, and every post-quarantine epoch must deliver 100% of
// its non-rejected outputs through the faulty fabric.
func TestChaosFaultMidChurn(t *testing.T) {
	const (
		n                  = 16
		groups             = 6
		cleanCycles        = 3
		faultCycles        = 5
		detectBudgetEpochs = 2
	)
	rig := newChaosRig(t, n)
	ids := make([]string, groups)
	for g := range ids {
		ids[g] = fmt.Sprintf("g%d", g)
		if _, err := rig.gm.Create(ids[g], rig.rng.Intn(n/2), nil); err != nil {
			t.Fatal(err)
		}
	}
	// A wide static group keeps the fabric loaded so the suspect region
	// always carries traffic once the fault is localized.
	wide := make([]int, 0, n-2)
	for d := 2; d < n; d++ {
		wide = append(wide, d)
	}
	if _, err := rig.gm.Create("wide", n-1, wide); err != nil {
		t.Fatal(err)
	}

	for c := 0; c < cleanCycles; c++ {
		rig.churn(t, ids, 3*groups)
		rep, err := rig.gm.RunEpoch()
		if err != nil {
			t.Fatalf("clean cycle %d: %v", c, err)
		}
		verifyChaosEpoch(t, rig, rep)
	}
	if rig.mon.Stats().Detected {
		t.Fatal("clean fabric reported a fault")
	}

	// Inject mid-churn. One of the two unicast stuck values must
	// disagree with some probe's plan at this switch.
	truth := Fault{Kind: StuckAt, Col: 5, Switch: 3}
	detected := false
	epochsUsed := 0
	for _, s := range []swbox.Setting{swbox.Parallel, swbox.Cross} {
		rig.inj.Clear()
		truth.Stuck = s
		rig.inj.Add(truth)
		for e := 0; e < detectBudgetEpochs && !detected; e++ {
			rig.churn(t, ids, groups)
			if _, err := rig.gm.RunEpoch(); err != nil {
				t.Fatal(err)
			}
			epochsUsed++
			detected = rig.mon.Stats().Detected
		}
		if detected {
			break
		}
	}
	if !detected {
		t.Fatalf("stuck fault at (%d,%d) undetected after %d probe epochs", truth.Col, truth.Switch, epochsUsed)
	}

	rep := rig.mon.Report()
	found := false
	for _, c := range rep.Candidates {
		if c.Col == truth.Col && c.Switch == truth.Switch {
			found = true
		}
	}
	if !found {
		t.Fatalf("true fault (%d,%d) not among candidates %v", truth.Col, truth.Switch, rep.Candidates)
	}

	// Degraded phase: churn on, and every epoch must keep its delivery
	// promises through the still-faulty fabric.
	sawQuarantine := false
	for c := 0; c < faultCycles; c++ {
		rig.churn(t, ids, 2*groups)
		erep, err := rig.gm.RunEpoch()
		if err != nil {
			t.Fatalf("degraded cycle %d: %v", c, err)
		}
		if erep.Quarantined > 0 {
			if erep.DegradedRounds == 0 {
				t.Fatalf("epoch %d quarantined %d outputs across zero rounds", erep.Epoch, erep.Quarantined)
			}
			sawQuarantine = true
		}
		verifyChaosEpoch(t, rig, erep)
	}
	st := rig.mon.Stats()
	if !sawQuarantine || st.DegradedReplans == 0 {
		t.Fatalf("degraded phase never exercised quarantine: %+v", st)
	}
	if st.DetectedAtProbe == 0 {
		t.Fatalf("no time-to-detect recorded: %+v", st)
	}
}

// TestChaosConcurrentChurn runs the fault loop under the race detector's
// worst conditions: a background epoch loop probing every epoch, many
// goroutines churning memberships, and the fault set mutating midway.
func TestChaosConcurrentChurn(t *testing.T) {
	const n = 16
	inj := NewInjector(13)
	mon, err := NewMonitor(Config{N: n, Engine: rbn.Sequential, ProbeCount: 2, ProbeEvery: 1}, inj)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := groupd.NewManager(groupd.Config{
		N:           n,
		Engine:      rbn.Sequential,
		EpochPeriod: time.Millisecond,
		Workers:     2,
		Policy:      mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gm.Close()
	for g := 0; g < 4; g++ {
		if _, err := gm.Create(fmt.Sprintf("g%d", g), g, nil); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("g%d", rng.Intn(4))
				if rng.Intn(2) == 0 {
					_, _ = gm.Join(id, rng.Intn(n))
				} else {
					_, _ = gm.Leave(id, rng.Intn(n))
				}
			}
		}(int64(w))
	}

	// Arm a fault mid-churn and wait for the per-epoch probes to catch
	// it, flipping the stuck value if the first one is unexciting.
	deadline := time.Now().Add(10 * time.Second)
	detected := false
	for _, s := range []swbox.Setting{swbox.Parallel, swbox.Cross} {
		inj.Clear()
		inj.Add(Fault{Kind: StuckAt, Col: 2, Switch: 1, Stuck: s})
		for time.Now().Before(deadline) {
			if mon.Stats().Detected {
				detected = true
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if detected {
			break
		}
	}
	close(stop)
	for w := 0; w < 4; w++ {
		<-done
	}
	if !detected {
		t.Fatal("background probing never detected the stuck fault")
	}
	if _, err := gm.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if rep := gm.LastEpoch(); rep == nil || rep.Err != "" {
		t.Fatalf("final epoch report = %+v", rep)
	}
}
