// Package faultd is the online fault-management subsystem of the
// serving fabric: it closes the loop between fault injection, detection,
// localization and degraded-mode serving. The paper's self-routing
// property (Theorems 1–3) holds only on a fault-free fabric; faultd is
// what lets a long-running switch keep serving when that assumption
// breaks. Four cooperating parts:
//
//   - an Injector wraps any flattened column-program execution
//     (fabric.Executor / netsim.PipelineTampered) and applies a
//     configurable fault set: stuck-at switches, dead links, and
//     seeded intermittent faults — the chaos-testing surface;
//   - a prober (Monitor.RunProbes) piggybacks the cheap deterministic
//     built-in self-test assignments of workload.Probes between groupd
//     epochs and compares deliveries against the fault-free
//     expectation, recording time-to-detect;
//   - a localizer drives diagnosis.Tracker incrementally from the
//     failed probes, intersecting suspects across probe rounds instead
//     of mounting a fresh offline campaign;
//   - a quarantine planner replans traffic with the destinations whose
//     connections would traverse a confirmed-faulty switch excluded,
//     falling back to rejecting only the unroutable subset.
package faultd

import (
	"fmt"
	"strconv"
	"strings"

	"brsmn/internal/swbox"
)

// Kind classifies a fault.
type Kind uint8

const (
	// StuckAt pins a switch to a fixed setting regardless of its
	// computed plan — the classical MIN fault model of internal/diagnosis.
	StuckAt Kind = iota
	// DeadLink drops any cell carried by one fabric wire.
	DeadLink
	// Intermittent is a stuck-at fault that fires with probability Prob
	// each time its column executes (seeded, so runs are reproducible).
	Intermittent
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case StuckAt:
		return "stuck"
	case DeadLink:
		return "dead-link"
	case Intermittent:
		return "intermittent"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText encodes the kind by name (used by the /faults JSON API).
func (k Kind) MarshalText() ([]byte, error) {
	if k > Intermittent {
		return nil, fmt.Errorf("faultd: cannot marshal kind %d", uint8(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText is the inverse of MarshalText.
func (k *Kind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "stuck":
		*k = StuckAt
	case "dead-link", "dead":
		*k = DeadLink
	case "intermittent", "flaky":
		*k = Intermittent
	default:
		return fmt.Errorf("faultd: unknown fault kind %q", string(b))
	}
	return nil
}

// Fault is one hardware defect in the flattened column program. Col is
// the column index (fault coordinates are stable for a given network
// size: every assignment flattens to the same column structure). For
// StuckAt and Intermittent, Switch and Stuck describe the pinned
// switch; for DeadLink, Link is the wire (after column Col) that drops
// its cell. Prob is the per-column excitation probability of an
// Intermittent fault.
type Fault struct {
	Kind   Kind          `json:"kind"`
	Col    int           `json:"col"`
	Switch int           `json:"switch,omitempty"`
	Link   int           `json:"link,omitempty"`
	Stuck  swbox.Setting `json:"stuck,omitempty"`
	Prob   float64       `json:"prob,omitempty"`
}

// String renders the fault in the -fault-inject spec syntax.
func (f Fault) String() string {
	switch f.Kind {
	case StuckAt:
		return fmt.Sprintf("stuck:%d:%d:%v", f.Col, f.Switch, f.Stuck)
	case DeadLink:
		return fmt.Sprintf("dead:%d:%d", f.Col, f.Link)
	case Intermittent:
		return fmt.Sprintf("flaky:%d:%d:%v:%g", f.Col, f.Switch, f.Stuck, f.Prob)
	}
	return fmt.Sprintf("fault(%d)", uint8(f.Kind))
}

// Validate checks the fault against an n-port fabric of the given
// column depth.
func (f Fault) Validate(n, depth int) error {
	if f.Col < 0 || f.Col >= depth {
		return fmt.Errorf("faultd: column %d outside the %d-column fabric", f.Col, depth)
	}
	switch f.Kind {
	case StuckAt, Intermittent:
		if f.Switch < 0 || f.Switch >= n/2 {
			return fmt.Errorf("faultd: switch %d outside a column of %d switches", f.Switch, n/2)
		}
		if !f.Stuck.Valid() {
			return fmt.Errorf("faultd: invalid stuck setting %d", uint8(f.Stuck))
		}
		if f.Kind == Intermittent && (f.Prob <= 0 || f.Prob > 1) {
			return fmt.Errorf("faultd: intermittent probability %g outside (0,1]", f.Prob)
		}
	case DeadLink:
		if f.Link < 0 || f.Link >= n {
			return fmt.Errorf("faultd: link %d outside a fabric of %d wires", f.Link, n)
		}
	default:
		return fmt.Errorf("faultd: unknown fault kind %d", uint8(f.Kind))
	}
	return nil
}

// ParseSpec parses a comma-separated fault-injection spec — the
// -fault-inject flag syntax of cmd/brsmnd:
//
//	stuck:<col>:<switch>:<setting>
//	dead:<col>:<link>
//	flaky:<col>:<switch>:<setting>:<prob>
//
// where <setting> is parallel | cross | ubcast | lbcast (or 0–3).
func ParseSpec(spec string) ([]Fault, error) {
	var out []Fault
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		f, err := parseOne(fields)
		if err != nil {
			return nil, fmt.Errorf("faultd: spec %q: %w", part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseOne(fields []string) (Fault, error) {
	var f Fault
	if len(fields) == 0 {
		return f, fmt.Errorf("empty spec")
	}
	if err := f.Kind.UnmarshalText([]byte(fields[0])); err != nil {
		return f, err
	}
	want := map[Kind]int{StuckAt: 4, DeadLink: 3, Intermittent: 5}[f.Kind]
	if len(fields) != want {
		return f, fmt.Errorf("%s wants %d fields, got %d", f.Kind, want, len(fields))
	}
	col, err := strconv.Atoi(fields[1])
	if err != nil {
		return f, fmt.Errorf("bad column %q", fields[1])
	}
	f.Col = col
	switch f.Kind {
	case DeadLink:
		link, err := strconv.Atoi(fields[2])
		if err != nil {
			return f, fmt.Errorf("bad link %q", fields[2])
		}
		f.Link = link
	case StuckAt, Intermittent:
		sw, err := strconv.Atoi(fields[2])
		if err != nil {
			return f, fmt.Errorf("bad switch %q", fields[2])
		}
		f.Switch = sw
		s, err := swbox.ParseSetting(fields[3])
		if err != nil {
			return f, err
		}
		f.Stuck = s
		if f.Kind == Intermittent {
			p, err := strconv.ParseFloat(fields[4], 64)
			if err != nil || p <= 0 || p > 1 {
				return f, fmt.Errorf("bad probability %q, want (0,1]", fields[4])
			}
			f.Prob = p
		}
	}
	return f, nil
}
