package faultd

import (
	"reflect"
	"testing"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/swbox"
	"brsmn/internal/workload"
)

func TestParseSpecRoundTrips(t *testing.T) {
	spec := "stuck:3:1:cross, dead:5:7, flaky:2:0:parallel:0.25"
	faults, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: StuckAt, Col: 3, Switch: 1, Stuck: swbox.Cross},
		{Kind: DeadLink, Col: 5, Link: 7},
		{Kind: Intermittent, Col: 2, Switch: 0, Stuck: swbox.Parallel, Prob: 0.25},
	}
	if !reflect.DeepEqual(faults, want) {
		t.Fatalf("ParseSpec(%q) = %+v, want %+v", spec, faults, want)
	}
	for _, f := range faults {
		back, err := ParseSpec(f.String())
		if err != nil {
			t.Fatalf("re-parsing %q: %v", f.String(), err)
		}
		if !reflect.DeepEqual(back, []Fault{f}) {
			t.Fatalf("round trip of %q lost information: %+v", f.String(), back)
		}
	}
	for _, bad := range []string{"stuck:1:2", "dead:x:0", "flaky:0:0:cross:2", "gone:1:2", "stuck:0:0:sideways"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted an invalid spec", bad)
		}
	}
}

func TestFaultValidate(t *testing.T) {
	n, depth := 8, 9
	good := []Fault{
		{Kind: StuckAt, Col: 0, Switch: 3, Stuck: swbox.UpperBcast},
		{Kind: DeadLink, Col: depth - 1, Link: n - 1},
		{Kind: Intermittent, Col: 4, Switch: 0, Stuck: swbox.Cross, Prob: 1},
	}
	for _, f := range good {
		if err := f.Validate(n, depth); err != nil {
			t.Errorf("Validate(%v): %v", f, err)
		}
	}
	bad := []Fault{
		{Kind: StuckAt, Col: depth, Switch: 0},
		{Kind: StuckAt, Col: 0, Switch: n / 2},
		{Kind: StuckAt, Col: 0, Switch: 0, Stuck: 7},
		{Kind: DeadLink, Col: 0, Link: n},
		{Kind: Intermittent, Col: 0, Switch: 0, Stuck: swbox.Cross, Prob: 0},
		{Kind: Kind(9), Col: 0},
	}
	for _, f := range bad {
		if err := f.Validate(n, depth); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid fault", f)
		}
	}
}

// runProbeThrough routes one probe assignment and returns its injected
// deliveries plus the fault-free expectation.
func runProbeThrough(t *testing.T, inj *Injector, n int) (got, want []int, a mcast.Assignment, res *core.Result) {
	t.Helper()
	probes, err := workload.Probes(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	a = probes[0]
	res, err = core.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	var e fabric.Executor
	got = inj.Deliveries(&e, cols, cells)
	want = make([]int, n)
	for out, src := range a.OutputOwner() {
		want[out] = src
	}
	return got, want, a, res
}

func TestInjectorFaultFreeDeliversExactly(t *testing.T) {
	inj := NewInjector(1)
	got, want, _, _ := runProbeThrough(t, inj, 16)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fault-free deliveries %v, want %v", got, want)
	}
}

func TestInjectorStuckAtMisdelivers(t *testing.T) {
	inj := NewInjector(1)
	// A full permutation drives every switch, so some stuck switch must
	// disagree with its plan; try both unicast stuck values on switch 0
	// of column 2 — one of them is guaranteed to differ from the plan.
	broke := false
	for _, s := range []swbox.Setting{swbox.Parallel, swbox.Cross} {
		inj.Clear()
		inj.Add(Fault{Kind: StuckAt, Col: 2, Switch: 0, Stuck: s})
		got, want, _, _ := runProbeThrough(t, inj, 16)
		if !reflect.DeepEqual(got, want) {
			broke = true
		}
	}
	if !broke {
		t.Fatal("neither stuck setting of (col 2, switch 0) excited the probe")
	}
}

func TestInjectorDeadLinkDropsDeliveries(t *testing.T) {
	inj := NewInjector(1)
	inj.Add(Fault{Kind: DeadLink, Col: 0, Link: 5})
	got, want, _, _ := runProbeThrough(t, inj, 16)
	if reflect.DeepEqual(got, want) {
		t.Fatal("dead link on a fully loaded fabric did not change deliveries")
	}
	if got[0] == -2 {
		// A dropped cell may strand a later hand-off; either way the
		// probe must not report clean delivery.
		return
	}
	missing := 0
	for out := range got {
		if got[out] != want[out] {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("dead link lost no deliveries")
	}
}

func TestInjectorIntermittentIsSeededDeterministic(t *testing.T) {
	// An excitation is only visible when the stuck value differs from
	// the plan's setting, so run both unicast values: one of them must
	// both fire and skip over 8 seeded rolls at p=0.5.
	run := func(seed int64, s swbox.Setting) []int {
		inj := NewInjector(seed)
		inj.Add(Fault{Kind: Intermittent, Col: 1, Switch: 2, Stuck: s, Prob: 0.5})
		var flips []int
		for i := 0; i < 8; i++ {
			got, want, _, _ := runProbeThrough(t, inj, 8)
			if reflect.DeepEqual(got, want) {
				flips = append(flips, 0)
			} else {
				flips = append(flips, 1)
			}
		}
		return flips
	}
	mixed := false
	for _, s := range []swbox.Setting{swbox.Parallel, swbox.Cross} {
		a, b := run(42, s), run(42, s)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("same seed, different excitation pattern: %v vs %v", a, b)
		}
		saw := map[int]bool{}
		for _, f := range a {
			saw[f] = true
		}
		if saw[0] && saw[1] {
			mixed = true
		}
	}
	if !mixed {
		t.Fatal("no stuck value of the p=0.5 intermittent fault both fired and skipped over 8 probes")
	}
}

func TestMonitorDetectsAndLocalizesStuckFault(t *testing.T) {
	const n = 16
	inj := NewInjector(7)
	m, err := NewMonitor(Config{N: n, ProbeCount: 4}, inj)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := m.RunProbes()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected || rep.Failures != 0 {
		t.Fatalf("clean fabric reported faulty: %+v", rep)
	}

	// Find a stuck fault the probe set excites (a full permutation uses
	// every switch, so one of the two unicast stuck values must differ
	// from some probe's plan at this switch).
	truth := Fault{Kind: StuckAt, Col: 3, Switch: 2, Stuck: swbox.Parallel}
	for _, s := range []swbox.Setting{swbox.Parallel, swbox.Cross} {
		inj.Clear()
		truth.Stuck = s
		inj.Add(truth)
		if rep, err = m.RunProbes(); err != nil {
			t.Fatal(err)
		}
		if rep.Detected {
			break
		}
	}
	if !rep.Detected {
		t.Fatal("no stuck value of (col 3, switch 2) was detected by the probe set")
	}
	st := m.Stats()
	if st.DetectedAtProbe == 0 || st.ProbeFailures == 0 {
		t.Fatalf("detection left no time-to-detect trace: %+v", st)
	}
	found := false
	for _, c := range rep.Candidates {
		if c.Col == truth.Col && c.Switch == truth.Switch {
			found = true
		}
	}
	if !found {
		t.Fatalf("true fault (%d,%d) not among candidates %v", truth.Col, truth.Switch, rep.Candidates)
	}
}

func TestFilterAssignmentPassesThroughWhenClean(t *testing.T) {
	inj := NewInjector(1)
	m, err := NewMonitor(Config{N: 8}, inj)
	if err != nil {
		t.Fatal(err)
	}
	a := mcast.MustNew(8, [][]int{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}})
	filtered, rejected := m.FilterAssignment(a)
	if rejected != nil || !reflect.DeepEqual(filtered, a) {
		t.Fatalf("clean monitor rewrote the assignment: rejected %v", rejected)
	}
}

// TestFilterAssignmentSurvivesLocalizedFault drives the full loop on a
// multicast round: inject, probe until localized, then check the
// filtered assignment delivers 100% of its remaining outputs through
// the real injector.
func TestFilterAssignmentSurvivesLocalizedFault(t *testing.T) {
	const n = 16
	inj := NewInjector(3)
	m, err := NewMonitor(Config{N: n, ProbeCount: 6}, inj)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []swbox.Setting{swbox.Parallel, swbox.Cross} {
		inj.Clear()
		inj.Add(Fault{Kind: StuckAt, Col: 4, Switch: 3, Stuck: s})
		rep, err := m.RunProbes()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Detected {
			break
		}
	}
	if !m.Stats().Detected {
		t.Fatal("fault was not detected")
	}

	a := mcast.MustNew(n, [][]int{
		{0, 1, 2, 3}, nil, {8, 9}, {4}, {5, 6}, nil, {7, 15}, nil,
		{10}, {11, 12}, nil, {13}, {14}, nil, nil, nil,
	})
	filtered, rejected := m.FilterAssignment(a)
	if filtered.Fanout()+len(rejected) != a.Fanout() {
		t.Fatalf("filter lost outputs: fanout %d + rejected %d != %d",
			filtered.Fanout(), len(rejected), a.Fanout())
	}
	checkDelivers(t, inj, filtered)
	if m.Stats().QuarantinedOuts != len(rejected) {
		t.Fatalf("quarantined counter %d, rejected %d", m.Stats().QuarantinedOuts, len(rejected))
	}
}

// checkDelivers routes an assignment and asserts the (faulty) fabric
// delivers every requested output exactly.
func checkDelivers(t *testing.T, inj *Injector, a mcast.Assignment) {
	t.Helper()
	if a.Fanout() == 0 {
		return
	}
	res, err := core.Route(a)
	if err != nil {
		t.Fatalf("routing filtered assignment: %v", err)
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	var e fabric.Executor
	got := inj.Deliveries(&e, cols, cells)
	for out, src := range a.OutputOwner() {
		if src < 0 {
			continue
		}
		if got[out] != src {
			t.Fatalf("output %d delivered %d, want %d (deliveries %v)", out, got[out], src, got)
		}
	}
}

func TestFilterAssignmentTraversalFallback(t *testing.T) {
	const n = 8
	inj := NewInjector(5)
	// MaxModelCandidates 0 takes the default; force the structural
	// fallback with a cap the smallest candidate set already exceeds.
	m, err := NewMonitor(Config{N: n, ProbeCount: 4, MaxModelCandidates: -1}, inj)
	if err != nil {
		t.Fatal(err)
	}
	m.cfg.MaxModelCandidates = 0
	for _, s := range []swbox.Setting{swbox.Parallel, swbox.Cross} {
		inj.Clear()
		inj.Add(Fault{Kind: StuckAt, Col: 2, Switch: 1, Stuck: s})
		rep, err := m.RunProbes()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Detected {
			break
		}
	}
	if !m.Stats().Detected {
		t.Fatal("fault was not detected")
	}
	if len(m.models) != 0 {
		t.Fatalf("cap 0 still built %d fault models", len(m.models))
	}
	a := mcast.MustNew(n, [][]int{{0, 1, 2, 3}, nil, {4, 5}, {6}, {7}, nil, nil, nil})
	filtered, _ := m.FilterAssignment(a)
	checkDelivers(t, inj, filtered)
}

func TestMonitorVersionBumpsOnLocalization(t *testing.T) {
	inj := NewInjector(2)
	m, err := NewMonitor(Config{N: 8, ProbeCount: 2}, inj)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version() != 0 {
		t.Fatalf("fresh monitor at version %d", m.Version())
	}
	if _, err := m.RunProbes(); err != nil {
		t.Fatal(err)
	}
	if m.Version() != 0 {
		t.Fatal("clean probe round bumped the policy version")
	}
	for _, s := range []swbox.Setting{swbox.Parallel, swbox.Cross} {
		inj.Clear()
		inj.Add(Fault{Kind: StuckAt, Col: 1, Switch: 0, Stuck: s})
		if _, err := m.RunProbes(); err != nil {
			t.Fatal(err)
		}
		if m.Stats().Detected {
			break
		}
	}
	if m.Version() == 0 {
		t.Fatal("localization did not bump the policy version")
	}
}
