package faultd

import (
	"math/rand"
	"sync"

	"brsmn/internal/bsn"
	"brsmn/internal/fabric"
	"brsmn/internal/swbox"
)

// Injector is the simulated faulty hardware: a fabric.Tamperer that
// applies a configurable fault set to any column-program execution —
// fabric.Executor.RunTampered for one-shot runs, netsim.PipelineTampered
// for pipelined waves. The fault set is mutable at runtime (the chaos
// surface of POST /faults) and an Injector is safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	faults []Fault
	rng    *rand.Rand // excitation rolls for Intermittent faults

	// Durability hooks; see SetJournal.
	onAdd   func(Fault)
	onClear func()
}

// NewInjector returns an empty (fault-free) injector whose intermittent
// faults roll a deterministic seeded source.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// SetJournal installs hooks invoked (outside the injector's lock) after
// every Add and Clear — the durability path that journals runtime fault
// mutations into a groupd write-ahead log. Install before sharing the
// injector across goroutines; nil hooks disable journaling.
func (inj *Injector) SetJournal(onAdd func(Fault), onClear func()) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.onAdd, inj.onClear = onAdd, onClear
}

// Add arms one more fault.
func (inj *Injector) Add(f Fault) {
	inj.mu.Lock()
	inj.faults = append(inj.faults, f)
	onAdd := inj.onAdd
	inj.mu.Unlock()
	if onAdd != nil {
		onAdd(f)
	}
}

// Clear disarms every fault.
func (inj *Injector) Clear() {
	inj.mu.Lock()
	inj.faults = nil
	onClear := inj.onClear
	inj.mu.Unlock()
	if onClear != nil {
		onClear()
	}
}

// List snapshots the armed fault set.
func (inj *Injector) List() []Fault {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Fault(nil), inj.faults...)
}

// Active reports whether any fault is armed.
func (inj *Injector) Active() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return len(inj.faults) > 0
}

// TamperSettings implements fabric.Tamperer: stuck-at faults (and
// intermittent faults whose excitation roll fires) override the
// column's computed settings on a private copy.
func (inj *Injector) TamperSettings(ci int, s []swbox.Setting) []swbox.Setting {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var patched []swbox.Setting
	for _, f := range inj.faults {
		if f.Col != ci {
			continue
		}
		switch f.Kind {
		case StuckAt:
		case Intermittent:
			if inj.rng.Float64() >= f.Prob {
				continue
			}
		default:
			continue
		}
		if f.Switch >= len(s) {
			continue
		}
		if patched == nil {
			patched = append([]swbox.Setting(nil), s...)
		}
		patched[f.Switch] = f.Stuck
	}
	if patched != nil {
		return patched
	}
	return s
}

// TamperCells implements fabric.Tamperer: dead links drop whatever cell
// the wire carries after its column executes.
func (inj *Injector) TamperCells(ci int, cells []bsn.Cell) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, f := range inj.faults {
		if f.Kind == DeadLink && f.Col == ci && f.Link < len(cells) {
			cells[f.Link] = bsn.Idle()
		}
	}
}

// Deliveries executes a column program through the injector and returns
// the per-output delivered sources (-1 idle). A run the fault crashes
// outright (a cell stranded mid-hand-off) returns -2 everywhere — the
// convention diagnosis.SuspectsOf expects. e supplies the reusable
// execution buffers; it must not be shared with concurrent callers.
func (inj *Injector) Deliveries(e *fabric.Executor, cols []fabric.Column, cells []bsn.Cell) []int {
	out := make([]int, len(cells))
	final, err := e.RunTampered(cols, cells, inj)
	if err != nil {
		for i := range out {
			out[i] = -2
		}
		return out
	}
	for p, c := range final {
		out[p] = -1
		if !c.IsIdle() {
			out[p] = c.Source
		}
	}
	return out
}

// modelFault is a deterministic single-fault Tamperer the quarantine
// planner simulates candidate defects with: intermittent models are
// treated as always-on (the worst case a plan must survive).
type modelFault Fault

func (m modelFault) TamperSettings(ci int, s []swbox.Setting) []swbox.Setting {
	f := Fault(m)
	if f.Col != ci || f.Kind == DeadLink || f.Switch >= len(s) {
		return s
	}
	patched := append([]swbox.Setting(nil), s...)
	patched[f.Switch] = f.Stuck
	return patched
}

func (m modelFault) TamperCells(ci int, cells []bsn.Cell) {
	f := Fault(m)
	if f.Kind == DeadLink && f.Col == ci && f.Link < len(cells) {
		cells[f.Link] = bsn.Idle()
	}
}
