package faultd

// Metrics registration for the fault-management loop:
//
//	brsmn_faultd_probe_rounds_total        counter    probe rounds executed
//	brsmn_faultd_probes_total              counter    self-test assignments run
//	brsmn_faultd_probe_failures_total      counter    self-tests that misdelivered
//	brsmn_faultd_probe_round_seconds       histogram  one probe round, wall-clock
//	brsmn_faultd_detected                  gauge      1 once any fault was excited
//	brsmn_faultd_time_to_detect_probes     gauge      probes run until first detection
//	brsmn_faultd_candidates                gauge      localizer's surviving suspect set
//	brsmn_faultd_quarantined_outputs       gauge      outputs degraded replanning rejected
//	brsmn_faultd_degraded_replans_total    counter    quarantine replans performed
//	brsmn_faultd_policy_version            gauge      FaultPolicy version (cache key part)
//	brsmn_faultd_armed_faults              gauge      chaos-injected faults currently armed

import "brsmn/internal/obs"

// RegisterMetrics wires the monitor's series into reg. The counters are
// scrape-time reads of the atomics the monitor already keeps; only the
// probe-round histogram is an inline instrument. Config.MetricsLabel is
// folded into every series name so per-shard monitors coexist in one
// registry.
func (m *Monitor) RegisterMetrics(reg *obs.Registry) {
	lbl := func(name string) string { return obs.WithLabel(name, m.cfg.MetricsLabel) }
	m.probeDur = reg.Histogram(lbl("brsmn_faultd_probe_round_seconds"),
		"Wall-clock duration of one probe round.", obs.SecondsBuckets())
	reg.CounterFunc(lbl("brsmn_faultd_probe_rounds_total"), "Probe rounds executed.",
		func() float64 { return float64(m.probeRounds.Load()) })
	reg.CounterFunc(lbl("brsmn_faultd_probes_total"), "Built-in self-test assignments run.",
		func() float64 { return float64(m.probesRun.Load()) })
	reg.CounterFunc(lbl("brsmn_faultd_probe_failures_total"), "Self-tests that misdelivered.",
		func() float64 { return float64(m.probeFailures.Load()) })
	reg.GaugeFunc(lbl("brsmn_faultd_detected"), "1 once any probe has excited a fault.",
		func() float64 {
			if m.Stats().Detected {
				return 1
			}
			return 0
		})
	reg.GaugeFunc(lbl("brsmn_faultd_time_to_detect_probes"),
		"Probes run until the first detection (0 while undetected).",
		func() float64 { return float64(m.detectedAtProbe.Load()) })
	reg.GaugeFunc(lbl("brsmn_faultd_candidates"), "Localizer's surviving suspect count.",
		func() float64 { return float64(m.Stats().Candidates) })
	reg.GaugeFunc(lbl("brsmn_faultd_quarantined_outputs"),
		"Output ports degraded replanning has rejected.",
		func() float64 { return float64(m.Stats().QuarantinedOuts) })
	reg.CounterFunc(lbl("brsmn_faultd_degraded_replans_total"), "Quarantine replans performed.",
		func() float64 { return float64(m.degradedReplans.Load()) })
	reg.GaugeFunc(lbl("brsmn_faultd_policy_version"),
		"Fault policy version; bumps invalidate cached degraded plans.",
		func() float64 { return float64(m.version.Load()) })
	reg.GaugeFunc(lbl("brsmn_faultd_armed_faults"), "Chaos-injected faults currently armed.",
		func() float64 { return float64(len(m.inj.List())) })
}
