package faultd

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/cost"
	"brsmn/internal/diagnosis"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/obs"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
)

// Config parameterizes a Monitor. Only N is required.
type Config struct {
	// N is the (fixed) network size, a power of two >= 2.
	N int
	// Engine runs the switch-setting sweeps of probe routing and
	// quarantine replanning.
	Engine rbn.Engine
	// ProbeCount is the number of built-in self-test assignments per
	// probe round (default 4).
	ProbeCount int
	// ProbeEvery runs a probe round every this many groupd epochs via
	// AfterEpoch; 0 probes only on demand (POST /probe, RunProbes).
	ProbeEvery int64
	// MaxModelCandidates bounds the suspect set the quarantine planner
	// simulates fault models for; above it the planner falls back to
	// rejecting whole connections that traverse any suspect
	// (default 16).
	MaxModelCandidates int
	// MetricsLabel, when non-empty, is a rendered label pair (e.g.
	// `shard="3"`) folded into every series RegisterMetrics registers,
	// so the per-shard monitors of internal/shard share one registry.
	MetricsLabel string
}

func (c *Config) applyDefaults() {
	if c.ProbeCount <= 0 {
		c.ProbeCount = 4
	}
	if c.MaxModelCandidates <= 0 {
		c.MaxModelCandidates = 16
	}
}

// probe is one precomputed self-test: the assignment, its fault-free
// routed program and the expected deliveries. Probes are deterministic,
// so the routing cost is paid once at Monitor construction.
type probe struct {
	a     mcast.Assignment
	res   *core.Result
	cols  []fabric.Column
	cells []bsn.Cell
	owner []int
}

// Monitor is the online fault-management loop: it probes the (possibly
// faulty) fabric, localizes detected faults incrementally, and plans
// degraded-mode traffic around them. It implements groupd.FaultPolicy
// and is safe for concurrent use.
type Monitor struct {
	cfg   Config
	depth int
	inj   *Injector
	nw    *core.Network
	// shape[ci] is column ci's wiring metadata (no settings), for
	// mapping suspects onto their attached links.
	shape  []fabric.Column
	probes []probe

	mu          sync.Mutex
	exec        fabric.Executor // probe/replan execution buffers, under mu
	planner     *core.Planner   // quarantine replanning pipeline, under mu
	tracker     *diagnosis.Tracker
	candidates  []diagnosis.Suspect
	models      []Fault // quarantine fault models derived from candidates
	quarantined map[int]bool

	// probeDur, when set by RegisterMetrics, observes probe round
	// durations; nil-safe like every obs instrument.
	probeDur *obs.Histogram

	version         atomic.Uint64
	probeRounds     atomic.Uint64
	probesRun       atomic.Uint64
	probeFailures   atomic.Uint64
	detectedAtProbe atomic.Uint64 // ProbesRun at first detection (1-based)
	degradedReplans atomic.Uint64
}

// NewMonitor builds the subsystem around an injector (the simulated
// faulty hardware; construct with NewInjector and share it with the
// serving path). The probe set is routed fault-free up front.
func NewMonitor(cfg Config, inj *Injector) (*Monitor, error) {
	cfg.applyDefaults()
	nw, err := core.New(cfg.N, cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("faultd: %w", err)
	}
	as, err := workload.Probes(cfg.N, cfg.ProbeCount)
	if err != nil {
		return nil, err
	}
	planner, err := core.NewPlanner(cfg.N, cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("faultd: %w", err)
	}
	m := &Monitor{
		cfg:         cfg,
		depth:       cost.BRSMNDepth(cfg.N),
		inj:         inj,
		nw:          nw,
		planner:     planner,
		tracker:     diagnosis.NewTracker(),
		quarantined: map[int]bool{},
	}
	for _, a := range as {
		res, err := nw.Route(a)
		if err != nil {
			return nil, fmt.Errorf("faultd: routing probe: %w", err)
		}
		cols, err := fabric.Flatten(res)
		if err != nil {
			return nil, err
		}
		cells, err := bsn.CellsForAssignment(a)
		if err != nil {
			return nil, err
		}
		if m.shape == nil {
			m.shape = make([]fabric.Column, len(cols))
			copy(m.shape, cols)
		}
		m.probes = append(m.probes, probe{a: a, res: res, cols: cols, cells: cells, owner: a.OutputOwner()})
	}
	return m, nil
}

// N returns the configured network size.
func (m *Monitor) N() int { return m.cfg.N }

// Depth returns the column depth of the fabric, the valid range of
// fault column coordinates.
func (m *Monitor) Depth() int { return m.depth }

// Injector returns the armed fault set's owner, the chaos surface.
func (m *Monitor) Injector() *Injector { return m.inj }

// ProbeReport summarizes one probe round.
type ProbeReport struct {
	// Probes and Failures count this round's self-tests and how many
	// delivered wrongly.
	Probes   int `json:"probes"`
	Failures int `json:"failures"`
	// Detected reports whether any probe so far (this round or earlier)
	// has excited a fault.
	Detected bool `json:"detected"`
	// Candidates is the localizer's surviving suspect set.
	Candidates []diagnosis.Suspect `json:"candidates,omitempty"`
}

// RunProbes executes one probe round: every built-in self-test runs
// through the injector, mismatches feed the incremental localizer, and
// the quarantine models are refreshed from the surviving suspects.
func (m *Monitor) RunProbes() (*ProbeReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer func(t0 time.Time) { m.probeDur.ObserveDuration(time.Since(t0)) }(time.Now())
	m.probeRounds.Add(1)
	rep := &ProbeReport{}
	for _, p := range m.probes {
		got := m.inj.Deliveries(&m.exec, p.cols, p.cells)
		n := m.probesRun.Add(1)
		rep.Probes++
		excited, err := m.tracker.Observe(p.a, p.res, got)
		if err != nil {
			return nil, fmt.Errorf("faultd: probe observation: %w", err)
		}
		if excited {
			rep.Failures++
			m.probeFailures.Add(1)
			m.detectedAtProbe.CompareAndSwap(0, n)
		}
	}
	rep.Detected = m.tracker.Detected()
	if rep.Detected {
		m.refreshModelsLocked()
		rep.Candidates = m.candidates
	}
	return rep, nil
}

// refreshModelsLocked rebuilds the quarantine fault models from the
// tracker's candidate set and bumps the policy version when the set
// changed. Each suspect switch contributes four models: stuck at either
// unicast setting, and a dead wire on either attached link — the
// deterministic envelope that also covers intermittent excitation of
// the same defect.
func (m *Monitor) refreshModelsLocked() {
	cand := m.tracker.Candidates()
	if suspectsEqual(cand, m.candidates) {
		return
	}
	m.candidates = cand
	m.models = nil
	if len(cand) <= m.cfg.MaxModelCandidates {
		for _, s := range cand {
			l0, l1 := m.shape[s.Col].Pair(s.Switch)
			m.models = append(m.models,
				Fault{Kind: StuckAt, Col: s.Col, Switch: s.Switch, Stuck: 0},
				Fault{Kind: StuckAt, Col: s.Col, Switch: s.Switch, Stuck: 1},
				Fault{Kind: DeadLink, Col: s.Col, Link: l0},
				Fault{Kind: DeadLink, Col: s.Col, Link: l1},
			)
		}
	}
	m.version.Add(1)
}

func suspectsEqual(a, b []diagnosis.Suspect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AfterEpoch implements groupd.FaultPolicy: every ProbeEvery-th epoch
// piggybacks a probe round between the serving epochs.
func (m *Monitor) AfterEpoch(epoch int64) {
	if m.cfg.ProbeEvery <= 0 || epoch%m.cfg.ProbeEvery != 0 {
		return
	}
	_, _ = m.RunProbes() // probe errors surface through Stats, not the epoch loop
}

// Version implements groupd.FaultPolicy: it increments whenever the
// quarantine state changes, invalidating cached degraded plans.
func (m *Monitor) Version() uint64 { return m.version.Load() }

// Healthy reports whether no probe has excited a fault so far — the
// signal internal/shard watches to quarantine a whole serving shard and
// migrate its groups to healthy fabrics.
func (m *Monitor) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.tracker.Detected()
}

// Stats is the monitor's counter snapshot — the numbers exposed on the
// daemon's stats surface (/healthz, /faults/report).
type Stats struct {
	ProbeRounds     uint64 `json:"probeRounds"`
	ProbesRun       uint64 `json:"probesRun"`
	ProbeFailures   uint64 `json:"probeFailures"`
	Detected        bool   `json:"detected"`
	DetectedAtProbe uint64 `json:"detectedAtProbe,omitempty"` // 1-based probe count at first detection
	Candidates      int    `json:"candidates"`
	QuarantinedOuts int    `json:"quarantinedOuts"`
	DegradedReplans uint64 `json:"degradedReplans"`
	Version         uint64 `json:"version"`
}

// Stats snapshots the counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	cand := len(m.candidates)
	quarantined := len(m.quarantined)
	detected := m.tracker.Detected()
	m.mu.Unlock()
	return Stats{
		ProbeRounds:     m.probeRounds.Load(),
		ProbesRun:       m.probesRun.Load(),
		ProbeFailures:   m.probeFailures.Load(),
		Detected:        detected,
		DetectedAtProbe: m.detectedAtProbe.Load(),
		Candidates:      cand,
		QuarantinedOuts: quarantined,
		DegradedReplans: m.degradedReplans.Load(),
		Version:         m.version.Load(),
	}
}

// Report is the full externally visible fault-management state.
type Report struct {
	Stats Stats `json:"stats"`
	// Faults is the armed (chaos-injected) fault set — ground truth the
	// localizer does not get to see.
	Faults []Fault `json:"faults"`
	// Candidates is the localizer's surviving suspect set.
	Candidates []diagnosis.Suspect `json:"candidates,omitempty"`
	// Quarantined lists the output ports degraded replanning has
	// rejected so far, sorted.
	Quarantined []int `json:"quarantined,omitempty"`
}

// Report assembles the full state snapshot.
func (m *Monitor) Report() Report {
	rep := Report{Stats: m.Stats(), Faults: m.inj.List()}
	m.mu.Lock()
	rep.Candidates = append([]diagnosis.Suspect(nil), m.candidates...)
	for out := range m.quarantined {
		rep.Quarantined = append(rep.Quarantined, out)
	}
	m.mu.Unlock()
	sort.Ints(rep.Quarantined)
	return rep
}
