package faultd

import (
	"testing"

	"brsmn/internal/netsim"
	"brsmn/internal/rbn"
	"brsmn/internal/swbox"
	"brsmn/internal/workload"
)

// TestInjectorTampersPipeline ties the injector to the wave-pipelined
// simulator: a clean pipeline misdelivers nothing; with a stuck switch
// armed, some wave must misdeliver.
func TestInjectorTampersPipeline(t *testing.T) {
	const n = 16
	probes, err := workload.Probes(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(1)
	rep, err := netsim.PipelineTampered(probes, 1, rbn.Sequential, inj)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misdelivered != 0 {
		t.Fatalf("fault-free pipeline misdelivered %d outputs", rep.Misdelivered)
	}
	total := 0
	for _, s := range []swbox.Setting{swbox.Parallel, swbox.Cross} {
		inj.Clear()
		inj.Add(Fault{Kind: StuckAt, Col: 3, Switch: 1, Stuck: s})
		rep, err = netsim.PipelineTampered(probes, 1, rbn.Sequential, inj)
		if err != nil {
			t.Fatal(err)
		}
		total += rep.Misdelivered
	}
	if total == 0 {
		t.Fatal("neither stuck value of (col 3, switch 1) misdelivered any pipelined wave")
	}
}
