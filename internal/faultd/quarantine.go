package faultd

import (
	"sort"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/diagnosis"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/paths"
)

// FilterAssignment implements groupd.FaultPolicy: with no localized
// fault the assignment passes through untouched; otherwise the
// quarantine planner rewrites it to avoid every candidate defect and
// returns the output ports it had to reject. Rejected ports accumulate
// in the quarantined set reported by Report.
func (m *Monitor) FilterAssignment(a mcast.Assignment) (mcast.Assignment, []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.candidates) == 0 {
		return a, nil
	}
	filtered, rejected := m.planAroundLocked(a)
	if len(rejected) > 0 {
		m.degradedReplans.Add(1)
		for _, out := range rejected {
			m.quarantined[out] = true
		}
	}
	return filtered, rejected
}

// planAroundLocked is the quarantine planner's fixed point. Whether a
// connection survives a fault depends on the whole round's switch
// settings, so quarantine cannot be decided per connection up front:
// the planner routes the assignment, simulates the routed program under
// every candidate fault model, drops the outputs any model misdelivers,
// and re-routes the survivors — repeating until some plan is clean
// under every model (often the first or second iteration) or nothing is
// left. Every iteration drops at least one active output, so the loop
// runs at most N times.
func (m *Monitor) planAroundLocked(a mcast.Assignment) (mcast.Assignment, []int) {
	dropped := map[int]bool{}
	cur := a
	for cur.Fanout() > 0 {
		// The monitor's dedicated planner (guarded by mu, like exec)
		// recycles its arenas across the simulate-drop-reroute
		// iterations; res is transient — consumed by badOutputsLocked
		// before the next iteration reuses the planner's storage.
		res, err := m.planner.Route(cur)
		if err != nil {
			dropActive(cur, dropped)
			cur = withoutOutputs(a, dropped)
			break
		}
		bad, err := m.badOutputsLocked(cur, res)
		if err != nil {
			dropActive(cur, dropped)
			cur = withoutOutputs(a, dropped)
			break
		}
		if len(bad) == 0 {
			break
		}
		for out := range bad {
			dropped[out] = true
		}
		cur = withoutOutputs(a, dropped)
	}
	return cur, sortedOuts(dropped)
}

// badOutputsLocked returns the outputs of the routed plan that some
// candidate fault model misdelivers. With a suspect set too large to
// simulate (models empty), or when a simulated run crashes outright, it
// falls back to the structural over-approximation: every output of a
// tree that traverses a suspect switch.
func (m *Monitor) badOutputsLocked(cur mcast.Assignment, res *core.Result) (map[int]bool, error) {
	cols, err := fabric.Flatten(res)
	if err != nil {
		return nil, err
	}
	bad := map[int]bool{}
	if len(m.models) == 0 {
		err := m.addTraversalBad(cur, res, cols, bad)
		return bad, err
	}
	cells, err := bsn.CellsForAssignment(cur)
	if err != nil {
		return nil, err
	}
	want := cur.OutputOwner()
	crashed := false
	for _, f := range m.models {
		got, err := m.exec.RunTampered(cols, cells, modelFault(f))
		if err != nil {
			crashed = true
			continue
		}
		for out, c := range got {
			if want[out] < 0 {
				continue
			}
			if c.IsIdle() || c.Source != want[out] {
				bad[out] = true
			}
		}
	}
	if crashed {
		if err := m.addTraversalBad(cur, res, cols, bad); err != nil {
			return nil, err
		}
		if len(bad) == 0 {
			// A model strands cells but no tree admits to touching a
			// suspect — the crash is unattributable, so nothing left in
			// this assignment can be vouched for.
			dropAllOf(want, bad)
		}
	}
	return bad, nil
}

// addTraversalBad adds the outputs of every multicast tree that
// traverses a candidate switch — on either side of an occupied link:
// the switch that drove the cell onto it and the one that consumes it.
func (m *Monitor) addTraversalBad(cur mcast.Assignment, res *core.Result, cols []fabric.Column, bad map[int]bool) error {
	trees, err := paths.Extract(cur, res)
	if err != nil {
		return err
	}
	suspect := make(map[diagnosis.Suspect]bool, len(m.candidates))
	for _, s := range m.candidates {
		suspect[s] = true
	}
	for _, tr := range trees {
		if !treeTouches(tr, cols, suspect) {
			continue
		}
		for _, out := range tr.Outputs {
			bad[out] = true
		}
	}
	return nil
}

func treeTouches(tr paths.Tree, cols []fabric.Column, suspect map[diagnosis.Suspect]bool) bool {
	for _, e := range tr.Edges {
		if e.Col >= 0 && suspect[diagnosis.Suspect{Col: e.Col, Switch: cols[e.Col].SwitchFor(e.Link)}] {
			return true
		}
		if e.Col+1 < len(cols) && suspect[diagnosis.Suspect{Col: e.Col + 1, Switch: cols[e.Col+1].SwitchFor(e.Link)}] {
			return true
		}
	}
	return false
}

// dropActive marks every output the assignment still serves.
func dropActive(cur mcast.Assignment, dropped map[int]bool) {
	dropAllOf(cur.OutputOwner(), dropped)
}

func dropAllOf(owner []int, dropped map[int]bool) {
	for out, src := range owner {
		if src >= 0 {
			dropped[out] = true
		}
	}
}

// withoutOutputs rebuilds the original assignment minus the dropped
// output ports. A subset of a valid assignment is itself valid.
func withoutOutputs(a mcast.Assignment, dropped map[int]bool) mcast.Assignment {
	dests := make([][]int, a.N)
	for i, ds := range a.Dests {
		for _, d := range ds {
			if !dropped[d] {
				dests[i] = append(dests[i], d)
			}
		}
	}
	return mcast.MustNew(a.N, dests)
}

func sortedOuts(dropped map[int]bool) []int {
	if len(dropped) == 0 {
		return nil
	}
	outs := make([]int, 0, len(dropped))
	for o := range dropped {
		outs = append(outs, o)
	}
	sort.Ints(outs)
	return outs
}
