// Package feedback implements the feedback version of the BRSMN
// (Section 7.3, Fig. 13 of Yang & Wang): a single n x n reverse banyan
// network whose outputs are fed back to the inputs with the same
// addresses, reused for every pass.
//
// Pass structure: level k of the unrolled BRSMN needs 2^(k-1) independent
// binary splitting networks of size n' = n / 2^(k-1). In an RBN, the
// sub-RBNs of size n' are exactly the first log2(n') stages restricted to
// aligned blocks, so a pass sets those stages per block with the usual
// distributed algorithms and sets the remaining stages to parallel — the
// merging stage's pair wiring makes an all-parallel stage the identity.
// Each level takes two passes (scatter, then quasisort); one final pass
// configures the stage-1 switches as the delivery column. The whole
// network therefore uses a single RBN's hardware — O(n log n) cost — at
// the price of 2 log2(n) - 1 sequential passes.
package feedback

import (
	"fmt"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/tag"
)

// Network is the feedback BRSMN: one n x n RBN plus the feedback wrap.
type Network struct {
	n   int
	eng rbn.Engine
}

// New returns an n x n feedback BRSMN.
func New(n int, eng rbn.Engine) (*Network, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("feedback: network size %d is not a power of two >= 2", n)
	}
	return &Network{n: n, eng: eng}, nil
}

// N returns the network size.
func (nw *Network) N() int { return nw.n }

// Result records a routed assignment: the deliveries plus the RBN's
// switch plan for every pass (the same physical switches, reconfigured).
type Result struct {
	N          int
	Deliveries []core.Delivery
	Passes     []*rbn.Plan
}

// NumPasses returns how many trips through the RBN the routing took.
func (r *Result) NumPasses() int { return len(r.Passes) }

// Route realizes a multicast assignment through the feedback network and
// verifies the deliveries.
func (nw *Network) Route(a mcast.Assignment) (*Result, error) {
	return nw.RouteWithPayloads(a, nil)
}

// RouteWithPayloads is Route with payloads attached to the connections.
func (nw *Network) RouteWithPayloads(a mcast.Assignment, payloads []any) (*Result, error) {
	n := nw.n
	if a.N != n {
		return nil, fmt.Errorf("feedback: assignment for %d inputs on a %d x %d network", a.N, n, n)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if payloads != nil && len(payloads) != n {
		return nil, fmt.Errorf("feedback: %d payloads for %d inputs", len(payloads), n)
	}
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		return nil, err
	}
	if payloads != nil {
		for i := range cells {
			if !cells[i].IsIdle() {
				cells[i].Payload = payloads[i]
			}
		}
	}
	res := &Result{N: n, Deliveries: make([]core.Delivery, n)}

	for size := n; size > 2; size /= 2 {
		// Scatter pass: configure stages [0, log2(size)) per block.
		sp, err := nw.blockPass(size, cells, func(blockTags []tag.Value) (*rbn.Plan, error) {
			if err := tag.Count(blockTags).CheckBSNInput(size); err != nil {
				return nil, err
			}
			return nw.eng.ScatterPlan(size, blockTags, 0)
		})
		if err != nil {
			return nil, err
		}
		cells, err = rbn.Apply(sp, cells, bsn.SplitCell)
		if err != nil {
			return nil, err
		}
		res.Passes = append(res.Passes, sp)

		// Quasisort pass.
		qp, err := nw.blockPass(size, cells, func(blockTags []tag.Value) (*rbn.Plan, error) {
			p, _, err := nw.eng.QuasisortPlan(size, blockTags)
			return p, err
		})
		if err != nil {
			return nil, err
		}
		cells, err = rbn.Apply(qp, cells, nil)
		if err != nil {
			return nil, err
		}
		res.Passes = append(res.Passes, qp)

		// Advance every connection to the next level's tags.
		for i := range cells {
			if cells[i].IsIdle() {
				continue
			}
			cells[i], err = bsn.Advance(cells[i])
			if err != nil {
				return nil, fmt.Errorf("feedback: advancing after size-%d level: %w", size, err)
			}
		}
	}

	// Delivery pass: stage 0 acts as the column of final 2x2 switches.
	fp := rbn.NewPlan(n)
	for w := 0; w < n/2; w++ {
		heads := [2]tag.Value{tag.Eps, tag.Eps}
		for k, c := range cells[2*w : 2*w+2] {
			if c.IsIdle() {
				continue
			}
			if len(c.Seq) != 1 {
				return nil, fmt.Errorf("feedback: final-level cell from input %d still has %d tags", c.Source, len(c.Seq))
			}
			heads[k] = c.Seq[0]
		}
		setting, err := core.FinalSetting(heads)
		if err != nil {
			return nil, err
		}
		fp.Stages[0][w] = setting
	}
	cells, err = rbn.Apply(fp, cells, bsn.SplitCell)
	if err != nil {
		return nil, err
	}
	res.Passes = append(res.Passes, fp)

	for i, c := range cells {
		if c.IsIdle() {
			res.Deliveries[i] = core.Delivery{Source: -1}
		} else {
			res.Deliveries[i] = core.Delivery{Source: c.Source, Payload: c.Payload}
		}
	}
	owner := a.OutputOwner()
	for out, want := range owner {
		if res.Deliveries[out].Source != want {
			return nil, fmt.Errorf("feedback: output %d received source %d, want %d", out, res.Deliveries[out].Source, want)
		}
	}
	return res, nil
}

// blockPass builds one full-RBN plan for a pass operating on independent
// aligned blocks of the given size: stages [0, log2(size)) carry each
// block's sub-plan; the higher stages stay parallel (identity).
func (nw *Network) blockPass(size int, cells []bsn.Cell, mk func([]tag.Value) (*rbn.Plan, error)) (*rbn.Plan, error) {
	n := nw.n
	full := rbn.NewPlan(n)
	for off := 0; off < n; off += size {
		blockTags := make([]tag.Value, size)
		for i, c := range cells[off : off+size] {
			if c.IsIdle() {
				blockTags[i] = tag.Eps
			} else {
				blockTags[i] = c.Tag
			}
		}
		sub, err := mk(blockTags)
		if err != nil {
			return nil, fmt.Errorf("feedback: block at %d (size %d): %w", off, size, err)
		}
		for j := 0; j < sub.M; j++ {
			copy(full.Stages[j][off/2:off/2+size/2], sub.Stages[j])
		}
	}
	return full, nil
}

// Route is a convenience constructing a sequential-engine feedback
// network and routing one assignment.
func Route(a mcast.Assignment) (*Result, error) {
	nw, err := New(a.N, rbn.Sequential)
	if err != nil {
		return nil, err
	}
	return nw.Route(a)
}

// HardwareSwitches returns the number of 2x2 switches the feedback
// implementation instantiates: a single RBN's (n/2) log2 n, independent
// of how many passes a routing takes — the cost saving of Section 7.3.
func (nw *Network) HardwareSwitches() int {
	return nw.n / 2 * shuffle.Log2(nw.n)
}
