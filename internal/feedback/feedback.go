// Package feedback implements the feedback version of the BRSMN
// (Section 7.3, Fig. 13 of Yang & Wang): a single n x n reverse banyan
// network whose outputs are fed back to the inputs with the same
// addresses, reused for every pass.
//
// Pass structure: level k of the unrolled BRSMN needs 2^(k-1) independent
// binary splitting networks of size n' = n / 2^(k-1). In an RBN, the
// sub-RBNs of size n' are exactly the first log2(n') stages restricted to
// aligned blocks, so a pass sets those stages per block with the usual
// distributed algorithms and sets the remaining stages to parallel — the
// merging stage's pair wiring makes an all-parallel stage the identity.
// Each level takes two passes (scatter, then quasisort); one final pass
// configures the stage-1 switches as the delivery column. The whole
// network therefore uses a single RBN's hardware — O(n log n) cost — at
// the price of 2 log2(n) - 1 sequential passes.
//
// Route and Network.Route allocate their Result afresh per call; the
// serving hot path holds a Planner (or draws one from a PlannerPool),
// whose Route reuses every pass plan, cell buffer and routing-tag arena
// across calls.
package feedback

import (
	"brsmn/internal/core"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
)

// Network is the feedback BRSMN: one n x n RBN plus the feedback wrap.
type Network struct {
	n    int
	eng  rbn.Engine
	pool *PlannerPool
}

// New returns an n x n feedback BRSMN.
func New(n int, eng rbn.Engine) (*Network, error) {
	pool, err := NewPlannerPool(n, eng)
	if err != nil {
		return nil, err
	}
	return &Network{n: n, eng: eng, pool: pool}, nil
}

// N returns the network size.
func (nw *Network) N() int { return nw.n }

// Planners returns the network's planner pool — the zero-allocation
// route path for callers that can respect a pooled Planner's aliasing
// rules.
func (nw *Network) Planners() *PlannerPool { return nw.pool }

// Result records a routed assignment: the deliveries plus the RBN's
// switch plan for every pass (the same physical switches, reconfigured).
type Result struct {
	N          int
	Deliveries []core.Delivery
	Passes     []*rbn.Plan
}

// NumPasses returns how many trips through the RBN the routing took.
func (r *Result) NumPasses() int { return len(r.Passes) }

// Clone returns a deep copy of the result that shares no storage with
// the receiver — the detach step Network.Route performs on a pooled
// planner's aliased result.
func (r *Result) Clone() *Result {
	out := &Result{
		N:          r.N,
		Deliveries: append([]core.Delivery(nil), r.Deliveries...),
		Passes:     make([]*rbn.Plan, len(r.Passes)),
	}
	for i, p := range r.Passes {
		q := rbn.NewPlan(p.N)
		for j := 0; j < p.M; j++ {
			copy(q.Stages[j], p.Stages[j])
		}
		out.Passes[i] = q
	}
	return out
}

// Route realizes a multicast assignment through the feedback network and
// verifies the deliveries.
func (nw *Network) Route(a mcast.Assignment) (*Result, error) {
	return nw.RouteWithPayloads(a, nil)
}

// RouteWithPayloads is Route with payloads attached to the connections.
// The returned Result is detached from the pooled planner that computed
// it, so callers may retain it indefinitely.
func (nw *Network) RouteWithPayloads(a mcast.Assignment, payloads []any) (*Result, error) {
	pl := nw.pool.Get()
	defer nw.pool.Put(pl)
	res, err := pl.RouteWithPayloads(a, payloads)
	if err != nil {
		return nil, err
	}
	return res.Clone(), nil
}

// Route is a convenience constructing a sequential-engine feedback
// network and routing one assignment.
func Route(a mcast.Assignment) (*Result, error) {
	nw, err := New(a.N, rbn.Sequential)
	if err != nil {
		return nil, err
	}
	return nw.Route(a)
}

// HardwareSwitches returns the number of 2x2 switches the feedback
// implementation instantiates: a single RBN's (n/2) log2 n, independent
// of how many passes a routing takes — the cost saving of Section 7.3.
func (nw *Network) HardwareSwitches() int {
	return nw.n / 2 * shuffle.Log2(nw.n)
}
