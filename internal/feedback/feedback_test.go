package feedback

import (
	"math/rand"
	"testing"

	"brsmn/internal/core"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/workload"
)

// TestFeedbackEquivalence checks the feedback network delivers exactly
// what the unrolled BRSMN delivers on random traffic.
func TestFeedbackEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, n := range []int{2, 4, 8, 32, 128} {
		fb, err := New(n, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		un, err := core.New(n, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 15; trial++ {
			a := workload.Random(rng, n, rng.Float64(), rng.Float64())
			r1, err := fb.Route(a)
			if err != nil {
				t.Fatalf("n=%d %v: feedback: %v", n, a, err)
			}
			r2, err := un.Route(a)
			if err != nil {
				t.Fatalf("n=%d %v: unrolled: %v", n, a, err)
			}
			for out := range r1.Deliveries {
				if r1.Deliveries[out].Source != r2.Deliveries[out].Source {
					t.Fatalf("n=%d %v: output %d: feedback %d vs unrolled %d",
						n, a, out, r1.Deliveries[out].Source, r2.Deliveries[out].Source)
				}
			}
		}
	}
}

// TestFeedbackPassCount checks the 2 log2(n) - 1 pass count of the
// feedback schedule.
func TestFeedbackPassCount(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{2, 4, 16, 256} {
		fb, _ := New(n, rbn.Sequential)
		a := workload.Random(rng, n, 0.8, 0.5)
		res, err := fb.Route(a)
		if err != nil {
			t.Fatal(err)
		}
		want := 2*shuffle.Log2(n) - 1
		if res.NumPasses() != want {
			t.Errorf("n=%d: %d passes, want %d", n, res.NumPasses(), want)
		}
		for k, p := range res.Passes {
			if p.N != n {
				t.Errorf("n=%d: pass %d reconfigures a %d x %d network", n, k, p.N, p.N)
			}
		}
	}
}

// TestFeedbackFig2 routes the paper's running example through the
// feedback implementation.
func TestFeedbackFig2(t *testing.T) {
	res, err := Route(workload.PaperFig2())
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 3, 2, 2, 7, 7, 2}
	for out, src := range want {
		if res.Deliveries[out].Source != src {
			t.Errorf("output %d got %d, want %d", out, res.Deliveries[out].Source, src)
		}
	}
}

// TestFeedbackBroadcastAndCombs exercises the extreme fanouts.
func TestFeedbackBroadcastAndCombs(t *testing.T) {
	for _, n := range []int{8, 64} {
		for src := 0; src < n; src += n / 4 {
			if _, err := Route(workload.Broadcast(n, src)); err != nil {
				t.Fatalf("broadcast(%d, %d): %v", n, src, err)
			}
		}
		for g := 1; g <= n; g *= 4 {
			a, err := workload.MaxSplit(n, g)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Route(a); err != nil {
				t.Fatalf("maxsplit(%d, %d): %v", n, g, err)
			}
		}
	}
}

// TestFeedbackPayloads checks payload delivery through the feedback path.
func TestFeedbackPayloads(t *testing.T) {
	n := 16
	fb, _ := New(n, rbn.Sequential)
	a := workload.Broadcast(n, 7)
	payloads := make([]any, n)
	payloads[7] = "hello"
	res, err := fb.RouteWithPayloads(a, payloads)
	if err != nil {
		t.Fatal(err)
	}
	for out, d := range res.Deliveries {
		if d.Payload != "hello" {
			t.Errorf("output %d payload = %v", out, d.Payload)
		}
	}
}

// TestHardwareSaving checks the O(n log n) hardware claim against the
// unrolled network's switch count: one RBN vs 2 log n - 1 RBN-equivalents.
func TestHardwareSaving(t *testing.T) {
	n := 1024
	fb, _ := New(n, rbn.Sequential)
	if got, want := fb.HardwareSwitches(), n/2*10; got != want {
		t.Errorf("HardwareSwitches = %d, want %d", got, want)
	}
}

// TestFeedbackErrors checks validation.
func TestFeedbackErrors(t *testing.T) {
	if _, err := New(3, rbn.Sequential); err == nil {
		t.Error("New(3) succeeded")
	}
	fb, _ := New(8, rbn.Sequential)
	a := workload.Broadcast(4, 0)
	if _, err := fb.Route(a); err == nil {
		t.Error("Route accepted wrong-size assignment")
	}
	if _, err := fb.RouteWithPayloads(workload.Broadcast(8, 0), make([]any, 3)); err == nil {
		t.Error("RouteWithPayloads accepted wrong payload count")
	}
	bad := mcast.Assignment{N: 8, Dests: make([][]int, 7)}
	if _, err := fb.Route(bad); err == nil {
		t.Error("Route accepted malformed assignment")
	}
}

// TestFeedbackParallelEngine routes with the parallel engine.
func TestFeedbackParallelEngine(t *testing.T) {
	fb, err := New(32, rbn.ParallelEngine())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 5; trial++ {
		if _, err := fb.Route(workload.Random(rng, 32, 0.8, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFeedbackN2 covers the degenerate single-switch network (no BSN
// levels, delivery pass only).
func TestFeedbackN2(t *testing.T) {
	fb, err := New(2, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	for _, dests := range [][][]int{
		{{0, 1}, nil},
		{{1}, {0}},
		{nil, {0}},
		{nil, nil},
	} {
		a, err := mcast.New(2, dests)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fb.Route(a)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.NumPasses() != 1 {
			t.Errorf("%v: %d passes, want 1", a, res.NumPasses())
		}
	}
}
