package feedback

import (
	"fmt"
	"sync"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/tag"
)

// Planner routes assignments through the feedback network against
// retained storage, mirroring core.Planner's zero-allocation discipline:
// the 2 log2(n) - 1 pass plans, the per-block sub-plans, the ping-pong
// cell buffers, the engine scratch and the routing-tag arena all live on
// the Planner and are recycled across routes, so a steady loop routing
// same-size assignments performs no per-pass allocations.
//
// The Result a Planner returns aliases that storage (its Deliveries and
// Passes are overwritten by the next route); callers that retain results
// use Result.Clone or Network.Route. A Planner is not safe for
// concurrent use — wrap it in a PlannerPool.
type Planner struct {
	n   int
	m   int
	eng rbn.Engine

	// passes holds the retained full-size plan of every pass, in pass
	// order: scatter+quasisort per level (sizes n, n/2, ..., 4), then
	// the delivery pass. A pass index always reruns the same block
	// size, so the stages above a pass's block range stay the parallel
	// identity NewPlan initialized them to.
	passes []*rbn.Plan
	// subs[k] is the reusable block plan for the level with blocks of
	// size n >> k (k >= 1; the k = 0 level plans directly into the
	// full-size pass plan).
	subs []*rbn.Plan

	cellsA, cellsB []bsn.Cell
	blockTags      []tag.Value
	divided        []tag.Value
	sc             *rbn.Scratch
	seqb           mcast.SeqBuilder
	arena          bsn.Arena
	deliveries     []core.Delivery
	owner          []int
	res            Result
}

// NewPlanner returns a reusable planner for an n x n feedback network.
func NewPlanner(n int, eng rbn.Engine) (*Planner, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("feedback: network size %d is not a power of two >= 2", n)
	}
	m := shuffle.Log2(n)
	p := &Planner{n: n, m: m, eng: eng}
	for size := n; size > 2; size /= 2 {
		p.passes = append(p.passes, rbn.NewPlan(n), rbn.NewPlan(n))
	}
	p.passes = append(p.passes, rbn.NewPlan(n))
	p.subs = make([]*rbn.Plan, m)
	for k := 1; k < m; k++ {
		if size := n >> k; size > 2 {
			p.subs[k] = rbn.NewPlan(size)
		}
	}
	p.cellsA = make([]bsn.Cell, n)
	p.cellsB = make([]bsn.Cell, n)
	p.blockTags = make([]tag.Value, n)
	p.divided = make([]tag.Value, n)
	p.sc = rbn.NewScratch(n)
	p.deliveries = make([]core.Delivery, n)
	p.owner = make([]int, n)
	return p, nil
}

// N returns the network size the planner serves.
func (p *Planner) N() int { return p.n }

// NumPasses returns how many trips through the RBN every routing takes:
// 2 log2(n) - 1.
func (p *Planner) NumPasses() int { return len(p.passes) }

// Route realizes a multicast assignment and verifies the deliveries.
// The returned Result aliases the planner's retained storage and is
// valid until the next route.
func (p *Planner) Route(a mcast.Assignment) (*Result, error) {
	return p.RouteWithPayloads(a, nil)
}

// RouteWithPayloads is Route with payloads attached to the connections.
func (p *Planner) RouteWithPayloads(a mcast.Assignment, payloads []any) (*Result, error) {
	n := p.n
	if a.N != n {
		return nil, fmt.Errorf("feedback: assignment for %d inputs on a %d x %d network", a.N, n, n)
	}
	if err := a.OwnerInto(p.owner); err != nil {
		return nil, err
	}
	if payloads != nil && len(payloads) != n {
		return nil, fmt.Errorf("feedback: %d payloads for %d inputs", len(payloads), n)
	}
	p.arena.Reset()
	cells := p.cellsA
	for i := 0; i < n; i++ {
		if len(a.Dests[i]) == 0 {
			cells[i] = bsn.Idle()
			continue
		}
		seq, err := p.seqb.AppendFromDests(p.arena.Alloc(n - 1)[:0], n, a.Dests[i])
		if err != nil {
			return nil, err
		}
		c := bsn.Cell{Tag: seq[0], Source: i, Seq: seq}
		if payloads != nil {
			c.Payload = payloads[i]
		}
		cells[i] = c
	}

	pi := 0
	for size := n; size > 2; size /= 2 {
		// Scatter pass: configure stages [0, log2(size)) per block.
		sp := p.passes[pi]
		pi++
		if err := p.levelPass(sp, size, cells, true); err != nil {
			return nil, err
		}
		var err error
		cells, err = rbn.ApplyScratch(sp, cells, p.cellsA, p.cellsB, bsn.SplitCell)
		if err != nil {
			return nil, err
		}
		for i, c := range cells {
			if c.Tag == tag.Alpha {
				return nil, fmt.Errorf("feedback: α survived the size-%d scatter pass at position %d", size, i)
			}
		}

		// Quasisort pass.
		qp := p.passes[pi]
		pi++
		if err := p.levelPass(qp, size, cells, false); err != nil {
			return nil, err
		}
		cells, err = rbn.ApplyScratch(qp, cells, p.cellsA, p.cellsB, nil)
		if err != nil {
			return nil, err
		}

		// Advance every connection to the next level's tags.
		for i := range cells {
			if cells[i].IsIdle() {
				continue
			}
			cells[i], err = bsn.AdvanceIn(cells[i], &p.arena)
			if err != nil {
				return nil, fmt.Errorf("feedback: advancing after size-%d level: %w", size, err)
			}
		}
	}

	// Delivery pass: stage 0 acts as the column of final 2x2 switches.
	fp := p.passes[len(p.passes)-1]
	for w := 0; w < n/2; w++ {
		heads := [2]tag.Value{tag.Eps, tag.Eps}
		for k, c := range cells[2*w : 2*w+2] {
			if c.IsIdle() {
				continue
			}
			if len(c.Seq) != 1 {
				return nil, fmt.Errorf("feedback: final-level cell from input %d still has %d tags", c.Source, len(c.Seq))
			}
			heads[k] = c.Seq[0]
		}
		setting, err := core.FinalSetting(heads)
		if err != nil {
			return nil, err
		}
		fp.Stages[0][w] = setting
	}
	cells, err := rbn.ApplyScratch(fp, cells, p.cellsA, p.cellsB, bsn.SplitCell)
	if err != nil {
		return nil, err
	}

	for i, c := range cells {
		if c.IsIdle() {
			p.deliveries[i] = core.Delivery{Source: -1}
		} else {
			p.deliveries[i] = core.Delivery{Source: c.Source, Payload: c.Payload}
		}
	}
	for out, want := range p.owner {
		if p.deliveries[out].Source != want {
			return nil, fmt.Errorf("feedback: output %d received source %d, want %d", out, p.deliveries[out].Source, want)
		}
	}
	p.res = Result{N: n, Deliveries: p.deliveries, Passes: p.passes}
	return &p.res, nil
}

// levelPass fills full with one pass operating on independent aligned
// blocks of the given size: stages [0, log2(size)) carry each block's
// sub-plan; the higher stages stay parallel (identity). Sub-plans for
// blocks smaller than n are computed into the retained subs entry and
// copied, so the pass allocates nothing.
func (p *Planner) levelPass(full *rbn.Plan, size int, cells []bsn.Cell, scatter bool) error {
	n := p.n
	bt := p.blockTags[:size]
	for off := 0; off < n; off += size {
		for i, c := range cells[off : off+size] {
			if c.IsIdle() {
				bt[i] = tag.Eps
			} else {
				bt[i] = c.Tag
			}
		}
		dst := full
		if size < n {
			dst = p.subs[shuffle.Log2(n/size)]
		}
		var err error
		if scatter {
			if err = tag.Count(bt).CheckBSNInput(size); err == nil {
				err = p.eng.ScatterPlanInto(dst, bt, 0, p.sc)
			}
		} else {
			err = p.eng.QuasisortPlanInto(dst, p.divided[:size], bt, p.sc)
		}
		if err != nil {
			return fmt.Errorf("feedback: block at %d (size %d): %w", off, size, err)
		}
		if dst != full {
			for j := 0; j < dst.M; j++ {
				copy(full.Stages[j][off/2:off/2+size/2], dst.Stages[j])
			}
		}
	}
	return nil
}

// PlannerPool hands out Planners for concurrent feedback routing. Put
// returns a planner for reuse; planners are created on demand, so a
// pool's retained footprint tracks its peak concurrency.
type PlannerPool struct {
	n    int
	eng  rbn.Engine
	mu   sync.Mutex
	idle []*Planner
}

// NewPlannerPool returns a pool of n x n feedback planners.
func NewPlannerPool(n int, eng rbn.Engine) (*PlannerPool, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("feedback: network size %d is not a power of two >= 2", n)
	}
	return &PlannerPool{n: n, eng: eng}, nil
}

// N returns the network size the pool's planners serve.
func (pp *PlannerPool) N() int { return pp.n }

// Get returns an idle planner, creating one if none is free.
func (pp *PlannerPool) Get() *Planner {
	pp.mu.Lock()
	if k := len(pp.idle); k > 0 {
		pl := pp.idle[k-1]
		pp.idle[k-1] = nil
		pp.idle = pp.idle[:k-1]
		pp.mu.Unlock()
		return pl
	}
	pp.mu.Unlock()
	pl, _ := NewPlanner(pp.n, pp.eng)
	return pl
}

// Put returns a planner to the pool. Results the planner handed out
// alias its storage and must not be read after Put.
func (pp *PlannerPool) Put(pl *Planner) {
	if pl == nil || pl.n != pp.n {
		return
	}
	pp.mu.Lock()
	pp.idle = append(pp.idle, pl)
	pp.mu.Unlock()
}
