package feedback

import (
	"fmt"
	"math/rand"
	"testing"

	"brsmn/internal/rbn"
	"brsmn/internal/workload"
)

// TestPlannerMatchesNetwork routes random traffic through one reused
// Planner and checks every delivery against a fresh Network.Route call —
// the reuse path must not leak state between routes.
func TestPlannerMatchesNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, n := range []int{2, 4, 8, 32, 128} {
		pl, err := NewPlanner(n, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := New(n, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			a := workload.Random(rng, n, rng.Float64(), rng.Float64())
			got, err := pl.Route(a)
			if err != nil {
				t.Fatalf("n=%d %v: planner: %v", n, a, err)
			}
			want, err := nw.Route(a)
			if err != nil {
				t.Fatalf("n=%d %v: network: %v", n, a, err)
			}
			if got.NumPasses() != want.NumPasses() {
				t.Fatalf("n=%d: planner took %d passes, network %d", n, got.NumPasses(), want.NumPasses())
			}
			for out := range got.Deliveries {
				if got.Deliveries[out].Source != want.Deliveries[out].Source {
					t.Fatalf("n=%d %v: output %d: planner %d vs network %d",
						n, a, out, got.Deliveries[out].Source, want.Deliveries[out].Source)
				}
			}
		}
	}
}

// TestPlannerResultDetached checks that Network.Route's result survives
// the pooled planner being reused for a different assignment.
func TestPlannerResultDetached(t *testing.T) {
	n := 16
	nw, err := New(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	first, err := nw.Route(workload.Broadcast(n, 3))
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]int, n)
	for i, d := range first.Deliveries {
		snapshot[i] = d.Source
	}
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		if _, err := nw.Route(workload.Random(rng, n, 0.9, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range first.Deliveries {
		if d.Source != snapshot[i] {
			t.Fatalf("output %d of retained result changed from %d to %d", i, snapshot[i], d.Source)
		}
	}
}

// TestPlannerPoolReuse checks the pool recycles planners and rejects
// foreign ones.
func TestPlannerPoolReuse(t *testing.T) {
	pool, err := NewPlannerPool(8, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	pl := pool.Get()
	if pl.N() != 8 {
		t.Fatalf("pooled planner serves n=%d, want 8", pl.N())
	}
	pool.Put(pl)
	if again := pool.Get(); again != pl {
		t.Error("pool did not recycle the returned planner")
	}
	other, _ := NewPlanner(16, rbn.Sequential)
	pool.Put(other)
	if got := pool.Get(); got == other {
		t.Error("pool handed out a planner of the wrong size")
	}
	if _, err := NewPlannerPool(5, rbn.Sequential); err == nil {
		t.Error("NewPlannerPool(5) succeeded")
	}
}

// TestPlannerWarmRouteAllocs asserts the planner's steady-state route is
// allocation-free — the discipline core.Planner set and this package's
// pooled path must match.
func TestPlannerWarmRouteAllocs(t *testing.T) {
	n := 64
	pl, err := NewPlanner(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	a := workload.Random(rng, n, 0.8, 0.6)
	for i := 0; i < 4; i++ { // warm the arena and scratch to steady state
		if _, err := pl.Route(a); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := pl.Route(a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warm Planner.Route allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkPlannerRoute measures the reused-planner route path; the
// ReportAllocs output is the satellite claim — 0 allocs/op warm.
func BenchmarkPlannerRoute(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(benchName(n), func(b *testing.B) {
			pl, err := NewPlanner(n, rbn.Sequential)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(63))
			a := workload.Random(rng, n, 0.8, 0.6)
			if _, err := pl.Route(a); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pl.Route(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNetworkRoute is the detached-result path (pooled planner +
// per-call Result clone) the zero-allocation planner is measured
// against.
func BenchmarkNetworkRoute(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(benchName(n), func(b *testing.B) {
			nw, err := New(n, rbn.Sequential)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(63))
			a := workload.Random(rng, n, 0.8, 0.6)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Route(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(n int) string { return fmt.Sprintf("n=%d", n) }
