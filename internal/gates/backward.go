package gates

import (
	"fmt"

	"brsmn/internal/shuffle"
)

// BackwardSweep simulates the backward phase of the bit-sorting
// distributed algorithm (Table 3) on the tree of Fig. 8: the root holds
// its starting position s; every node passes s mod h to its left child
// (pure wiring — the low bits pass straight through) and computes
// (s + l0) mod h for its right child on a pipelined serial adder, one
// bit per gate delay, where l0 (the left child's γ count) is resident in
// the node's registers from the forward phase.
//
// Because a level-j node's start position is only j bits wide — the
// parent's masking discards the rest — the backward wave narrows as it
// descends: bit k reaches level j at cycle (m-j)+k and no node needs a
// bit beyond its own width, so the sweep completes in about m cycles,
// faster than the forward phase whose sums widen as they rise. The
// conservative BackwardDelay model (= ForwardDelay) therefore
// upper-bounds the measured value, which the tests verify.
//
// It returns starts[j][b], the start position received by node b of
// level j (starts[m][0] == s), and the cycle at which the last node had
// its complete value.
func BackwardSweep(gamma []bool, s int) (starts [][]int, cycles int, err error) {
	n := len(gamma)
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, 0, fmt.Errorf("gates: %d leaves is not a power of two >= 2", n)
	}
	if s < 0 || s >= n {
		return nil, 0, fmt.Errorf("gates: start %d out of range [0,%d)", s, n)
	}
	m := shuffle.Log2(n)

	// Forward-phase γ counts, resident in the node registers.
	ls := make([][]int, m+1)
	ls[0] = make([]int, n)
	for i, g := range gamma {
		if g {
			ls[0][i] = 1
		}
	}
	for j := 1; j <= m; j++ {
		ls[j] = make([]int, n>>j)
		for b := range ls[j] {
			ls[j][b] = ls[j-1][2*b] + ls[j-1][2*b+1]
		}
	}

	starts = make([][]int, m+1)
	adders := make([][]SerialAdder, m+1)
	for j := 0; j <= m; j++ {
		starts[j] = make([]int, n>>j)
		adders[j] = make([]SerialAdder, n>>j)
	}
	starts[m][0] = s

	// Wave schedule: node b of level j processes its bit k during cycle
	// (m-j)+k; the bit of its own value arrived one cycle earlier from
	// its parent (or is resident, for the root). A node's value is j
	// bits wide, so it processes bits k = 0..j-1; children only store
	// bits below their own width j-1.
	lastCycle := 0
	for cyc := 0; ; cyc++ {
		active := false
		for j := m; j >= 1; j-- {
			k := cyc - (m - j)
			if k < 0 || k >= j {
				continue
			}
			active = true
			childBits := j - 1
			for b := 0; b < n>>j; b++ {
				sBit := uint8(starts[j][b] >> k & 1)
				l0Bit := uint8(ls[j-1][2*b] >> k & 1)
				sumBit := adders[j][b].Step(sBit, l0Bit)
				if k < childBits {
					starts[j-1][2*b] |= int(sBit) << k
					starts[j-1][2*b+1] |= int(sumBit) << k
				}
			}
			if cyc+1 > lastCycle {
				lastCycle = cyc + 1
			}
		}
		if !active && cyc > m {
			break
		}
		if cyc > 4*m+8 {
			return nil, 0, fmt.Errorf("gates: backward sweep did not settle")
		}
	}
	return starts, lastCycle, nil
}

// MeasuredBackwardDelay returns the simulated backward-phase delay for
// an n-input RBN on a worst-case load (alternating γs, maximal carry
// churn in the serial adders).
func MeasuredBackwardDelay(n int) int {
	gamma := make([]bool, n)
	for i := range gamma {
		gamma[i] = i%2 == 0
	}
	_, cycles, err := BackwardSweep(gamma, n-1)
	if err != nil {
		panic(err) // n validated by callers
	}
	return cycles
}
