package gates

import (
	"math/rand"
	"testing"
)

// refStarts computes the backward-phase start positions by direct
// recursion (Table 3's arithmetic), as the reference for the pipelined
// simulation.
func refStarts(gamma []bool, s int) [][]int {
	n := len(gamma)
	m := 0
	for v := n; v > 1; v >>= 1 {
		m++
	}
	ls := make([][]int, m+1)
	ls[0] = make([]int, n)
	for i, g := range gamma {
		if g {
			ls[0][i] = 1
		}
	}
	for j := 1; j <= m; j++ {
		ls[j] = make([]int, n>>j)
		for b := range ls[j] {
			ls[j][b] = ls[j-1][2*b] + ls[j-1][2*b+1]
		}
	}
	ss := make([][]int, m+1)
	for j := range ss {
		ss[j] = make([]int, n>>j)
	}
	ss[m][0] = s
	for j := m; j >= 1; j-- {
		h := 1 << (j - 1)
		for b := 0; b < n>>j; b++ {
			ss[j-1][2*b] = ss[j][b] % h
			ss[j-1][2*b+1] = (ss[j][b] + ls[j-1][2*b]) % h
		}
	}
	return ss
}

// TestBackwardSweepMatchesRecursion cross-checks the pipelined backward
// simulation against the direct recursion on random loads.
func TestBackwardSweepMatchesRecursion(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	for _, n := range []int{2, 4, 16, 128, 1024} {
		for trial := 0; trial < 15; trial++ {
			gamma := make([]bool, n)
			for i := range gamma {
				gamma[i] = rng.Intn(2) == 1
			}
			s := rng.Intn(n)
			got, cycles, err := BackwardSweep(gamma, s)
			if err != nil {
				t.Fatal(err)
			}
			want := refStarts(gamma, s)
			for j := range want {
				for b := range want[j] {
					if got[j][b] != want[j][b] {
						t.Fatalf("n=%d s=%d: level %d node %d: %d, want %d",
							n, s, j, b, got[j][b], want[j][b])
					}
				}
			}
			if cycles <= 0 {
				t.Fatalf("n=%d: nonpositive delay", n)
			}
		}
	}
}

// TestBackwardNarrowerThanForward checks the asymmetry the simulation
// exposes: the backward wave narrows as it descends, so its measured
// delay is below the conservative forward-equals-backward model, and
// still grows by a constant per doubling (Θ(log n)).
func TestBackwardNarrowerThanForward(t *testing.T) {
	prev := 0
	for n := 4; n <= 1<<14; n *= 2 {
		d := MeasuredBackwardDelay(n)
		if f := ForwardDelay(n); d > f {
			t.Errorf("n=%d: measured backward %d exceeds the forward bound %d", n, d, f)
		}
		if prev > 0 {
			grow := d - prev
			if grow < 0 || grow > 3 {
				t.Errorf("n=%d: backward delay grew by %d per doubling", n, grow)
			}
		}
		prev = d
	}
}

// TestBackwardSweepValidation covers the guards.
func TestBackwardSweepValidation(t *testing.T) {
	if _, _, err := BackwardSweep(make([]bool, 3), 0); err == nil {
		t.Error("accepted non-power-of-two width")
	}
	if _, _, err := BackwardSweep(make([]bool, 4), 4); err == nil {
		t.Error("accepted out-of-range start")
	}
	if _, _, err := BackwardSweep(make([]bool, 4), -1); err == nil {
		t.Error("accepted negative start")
	}
}
