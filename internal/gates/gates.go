// Package gates provides the gate-level hardware model of Section 7 of
// Yang & Wang: bit-serial pipelined one-bit adders (Fig. 12), the
// embedded forward/backward trees of the distributed routing algorithms
// (Fig. 8), and a cycle-accurate simulation of those sweeps that measures
// routing time in units of one gate delay — the unit Table 2's
// routing-time column is stated in.
//
// The paper's argument: the forward phase pipelines one bit per gate
// delay up a log2(n)-level adder tree, so the first result bit reaches
// the root after O(log n) delays and each subsequent bit after O(1); the
// backward phase mirrors it. The simulation here reproduces exactly that
// schedule, so measured cycle counts grow as the paper's complexity
// claims say they must.
package gates

import (
	"fmt"

	"brsmn/internal/shuffle"
)

// Model constants: gate counts for the fixed-size circuit blocks. The
// absolute values are a conventional static CMOS accounting (a full adder
// is 2 XOR + 2 AND + 1 OR); only their constancy matters for the
// asymptotics.
const (
	// GatesPerFullAdder is the gate count of the one-bit full adder of
	// Fig. 12 (sum and carry logic).
	GatesPerFullAdder = 5
	// GatesPerRegisterBit models the flip-flop holding the carry or a
	// pipeline bit.
	GatesPerRegisterBit = 4
	// GatesPerSwitchDatapath is the data path of a 2x2 switch with
	// four settings: two 2:1 selectors per output plus setting decode.
	GatesPerSwitchDatapath = 12
	// RoutingAddersPerSwitch is the constant number of serial adder /
	// comparator blocks distributed into each switch for the
	// self-routing circuit (forward sum, backward mod/compare, setting
	// decision) — the "constant cost added to each switch" of
	// Section 7.4.
	RoutingAddersPerSwitch = 3
)

// GatesPerSwitch is the total per-switch gate cost: data path plus the
// distributed routing circuit (adders with their carry/pipeline
// registers).
const GatesPerSwitch = GatesPerSwitchDatapath +
	RoutingAddersPerSwitch*(GatesPerFullAdder+2*GatesPerRegisterBit)

// SerialAdder is a one-bit full adder with a carry register, fed LSB
// first — the Fig. 12 block.
type SerialAdder struct {
	carry uint8
}

// Step consumes one bit from each operand and emits one sum bit.
func (a *SerialAdder) Step(x, y uint8) uint8 {
	s := x ^ y ^ a.carry
	a.carry = (x & y) | (x & a.carry) | (y & a.carry)
	return s
}

// Reset clears the carry between additions.
func (a *SerialAdder) Reset() { a.carry = 0 }

// AddSerial adds two non-negative integers through a SerialAdder,
// returning the sum and the number of cycles consumed (max operand width
// + 1 for the final carry).
func AddSerial(x, y int) (sum, cycles int) {
	var a SerialAdder
	width := 1
	for v := x | y; v > 1; v >>= 1 {
		width++
	}
	for k := 0; k <= width; k++ { // one extra cycle flushes the carry
		bit := a.Step(uint8(x>>k&1), uint8(y>>k&1))
		sum |= int(bit) << k
		cycles++
	}
	return sum, cycles
}

// ForwardSweep simulates the forward phase of a distributed routing
// algorithm on an n-leaf adder tree (Fig. 8a): each leaf feeds its value
// bit-serially; every tree node is a pipelined serial adder with one gate
// delay of latency per bit. It returns the root sum and the cycle at
// which the root has emitted its last significant bit — the forward-phase
// routing time in gate delays.
func ForwardSweep(leaves []int) (sum, cycles int, err error) {
	n := len(leaves)
	if !shuffle.IsPow2(n) || n < 1 {
		return 0, 0, fmt.Errorf("gates: %d leaves is not a power of two >= 1", n)
	}
	if n == 1 {
		return leaves[0], 1, nil
	}
	m := shuffle.Log2(n)
	// width: enough serial bits for the maximal sum (n, needing log n +1
	// bits) plus the tree latency.
	bits := m + 2
	total := bits + m // pipeline drain: depth m, one delay per level

	// adders[level][i]: level 1 has n/2 adders ... level m has 1.
	adders := make([][]SerialAdder, m+1)
	// pipe[level][i] holds the bit emitted by node i of `level` last
	// cycle (level 0 = leaves).
	pipe := make([][]uint8, m+1)
	for lv := 0; lv <= m; lv++ {
		adders[lv] = make([]SerialAdder, n>>lv)
		pipe[lv] = make([]uint8, n>>lv)
	}
	lastSignificant := 0
	for cyc := 0; cyc < total; cyc++ {
		// Propagate top-down over levels so each level consumes the
		// bits its children emitted on the previous cycle.
		for lv := m; lv >= 1; lv-- {
			for i := range adders[lv] {
				pipeBit := adders[lv][i].Step(pipe[lv-1][2*i], pipe[lv-1][2*i+1])
				if lv == m {
					// Leaf bit 0 is emitted at the end of cycle 0 and
					// crosses m pipelined levels, so the root emits sum
					// bit k during cycle m+k.
					if pipeBit == 1 && cyc >= m {
						sum |= 1 << (cyc - m)
						lastSignificant = cyc + 1
					}
				} else {
					// Stash for the parent next cycle; written after
					// the parent has read? Parent (lv+1) was processed
					// earlier this cycle, so writing now is safe.
					pipe[lv][i] = pipeBit
				}
			}
		}
		// Leaves emit their next bit.
		for i, v := range leaves {
			pipe[0][i] = uint8(v >> cyc & 1)
		}
	}
	if lastSignificant == 0 {
		lastSignificant = m + 1 // an all-zero sum still pays the latency
	}
	return sum, lastSignificant, nil
}

// ForwardDelay returns the forward-phase delay in gate delays for an
// n-input RBN: measured by simulating the sweep on worst-case leaf
// values (all ones, maximizing the sum's bit width).
func ForwardDelay(n int) int {
	leaves := make([]int, n)
	for i := range leaves {
		leaves[i] = 1
	}
	_, cycles, err := ForwardSweep(leaves)
	if err != nil {
		panic(err) // n is validated by callers
	}
	return cycles
}

// BackwardDelay returns the backward-phase delay for an n-input RBN. The
// backward computation per node (two mods and an add on log n-bit values,
// Tables 3–4) pipelines exactly like the forward phase, so the delay has
// the same shape; the paper treats the two as symmetric and so does this
// model.
func BackwardDelay(n int) int { return ForwardDelay(n) }

// RBNRoutingDelay is the routing time of one RBN switch-setting
// computation in gate delays: forward sweep + backward sweep + one delay
// for the parallel switch-setting step (Section 6.1).
func RBNRoutingDelay(n int) int {
	return ForwardDelay(n) + BackwardDelay(n) + 1
}

// BSNRoutingDelay is the routing time of one binary splitting network:
// the scatter RBN's sweeps, the ε-divide sweeps (Table 6, same tree),
// and the quasisort (bit-sort) RBN's sweeps, in sequence.
func BSNRoutingDelay(n int) int {
	return 3 * RBNRoutingDelay(n)
}

// BRSMNRoutingDelay is the total routing time of the unrolled n x n
// BRSMN: the levels run in sequence (level k+1 cannot set switches until
// level k has delivered its tags), giving the paper's recurrence
// T(n) = O(log n) + T(n/2) = O(log^2 n).
func BRSMNRoutingDelay(n int) int {
	total := 0
	for size := n; size > 2; size /= 2 {
		total += BSNRoutingDelay(size)
	}
	return total + 1 // final delivery column sets in one delay
}

// FeedbackRoutingDelay is the routing time of the feedback
// implementation: identical phase structure (the same sweeps run on the
// same tree hardware, just reusing one RBN), plus one pass-turnaround
// delay per feedback wrap.
func FeedbackRoutingDelay(n int) int {
	total := 0
	passes := 0
	for size := n; size > 2; size /= 2 {
		total += BSNRoutingDelay(size)
		passes += 2
	}
	return total + passes + 1
}
