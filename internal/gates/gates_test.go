package gates

import (
	"math/rand"
	"testing"
	"testing/quick"

	"brsmn/internal/shuffle"
)

// TestFig12PipelinedAdder checks the one-bit serial adder block.
func TestFig12PipelinedAdder(t *testing.T) {
	cases := [][3]int{{0, 0, 0}, {1, 1, 2}, {5, 7, 12}, {255, 1, 256}, {123456, 654321, 777777}}
	for _, c := range cases {
		sum, cycles := AddSerial(c[0], c[1])
		if sum != c[2] {
			t.Errorf("AddSerial(%d,%d) = %d, want %d", c[0], c[1], sum, c[2])
		}
		if cycles <= 0 {
			t.Errorf("AddSerial(%d,%d) took %d cycles", c[0], c[1], cycles)
		}
	}
	// Quick-check against +.
	f := func(x, y uint16) bool {
		s, _ := AddSerial(int(x), int(y))
		return s == int(x)+int(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Reset clears the carry.
	var a SerialAdder
	a.Step(1, 1)
	a.Reset()
	if a.Step(0, 0) != 0 {
		t.Error("Reset did not clear carry")
	}
}

// TestForwardSweepSums checks the adder tree computes correct sums for
// random leaf values.
func TestForwardSweepSums(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, n := range []int{1, 2, 4, 16, 64, 256} {
		for trial := 0; trial < 10; trial++ {
			leaves := make([]int, n)
			want := 0
			for i := range leaves {
				leaves[i] = rng.Intn(2)
				want += leaves[i]
			}
			sum, cycles, err := ForwardSweep(leaves)
			if err != nil {
				t.Fatal(err)
			}
			if sum != want {
				t.Fatalf("n=%d leaves=%v: sum %d, want %d", n, leaves, sum, want)
			}
			if cycles <= 0 {
				t.Fatalf("n=%d: nonpositive delay %d", n, cycles)
			}
		}
	}
	if _, _, err := ForwardSweep(make([]int, 3)); err == nil {
		t.Error("ForwardSweep accepted non-power-of-two width")
	}
}

// TestForwardDelayLogarithmic checks the headline claim behind the
// routing-time column of Table 2: the forward-phase delay of one RBN
// grows as Θ(log n), not Θ(n) — doubling n adds a constant number of
// gate delays.
func TestForwardDelayLogarithmic(t *testing.T) {
	prev := 0
	for n := 4; n <= 1<<14; n *= 2 {
		d := ForwardDelay(n)
		if prev > 0 {
			grow := d - prev
			if grow < 1 || grow > 4 {
				t.Errorf("n=%d: delay %d grew by %d over n/2; want a small constant", n, d, grow)
			}
		}
		prev = d
		// Against the analytic bound: pipeline depth log n plus the
		// sum's bit-serial width log n + O(1).
		m := shuffle.Log2(n)
		if d > 3*m+4 {
			t.Errorf("n=%d: delay %d exceeds 3 log n + 4 = %d", n, d, 3*m+4)
		}
	}
}

// TestRoutingDelayRecurrences checks the composed delays follow the
// paper's recurrences: BRSMN delay is Θ(log^2 n) — the ratio
// delay / log2^2(n) stays within constant bounds across three decades.
func TestRoutingDelayRecurrences(t *testing.T) {
	var ratios []float64
	for n := 8; n <= 1<<12; n *= 4 {
		m := float64(shuffle.Log2(n))
		ratios = append(ratios, float64(BRSMNRoutingDelay(n))/(m*m))
	}
	for _, r := range ratios {
		if r < 1 || r > 16 {
			t.Fatalf("BRSMN delay / log^2 n ratios out of constant band: %v", ratios)
		}
	}
	if ratios[len(ratios)-1] > 2*ratios[0] {
		t.Errorf("BRSMN delay ratio drifting upward (not O(log^2 n)): %v", ratios)
	}
	// The feedback implementation pays only a constant extra per pass.
	for _, n := range []int{8, 64, 1024} {
		d, f := BRSMNRoutingDelay(n), FeedbackRoutingDelay(n)
		if f < d || f > d+2*shuffle.Log2(n)+1 {
			t.Errorf("n=%d: feedback delay %d vs unrolled %d out of band", n, f, d)
		}
	}
	// BSN = 3 RBN sweeps.
	if BSNRoutingDelay(16) != 3*RBNRoutingDelay(16) {
		t.Error("BSN delay is not 3 RBN sweeps")
	}
}

// TestGateConstants pins the per-switch constant cost (Section 7.4: the
// self-routing circuit adds O(1) gates per switch).
func TestGateConstants(t *testing.T) {
	if GatesPerSwitch != GatesPerSwitchDatapath+RoutingAddersPerSwitch*(GatesPerFullAdder+2*GatesPerRegisterBit) {
		t.Error("GatesPerSwitch formula drifted")
	}
	if GatesPerSwitch <= 0 || GatesPerSwitch > 200 {
		t.Errorf("GatesPerSwitch = %d implausible", GatesPerSwitch)
	}
}

// TestSingleLeafSweep covers the n=1 degenerate tree.
func TestSingleLeafSweep(t *testing.T) {
	sum, cycles, err := ForwardSweep([]int{7})
	if err != nil || sum != 7 || cycles != 1 {
		t.Errorf("ForwardSweep([7]) = (%d,%d,%v)", sum, cycles, err)
	}
}
