// Package gcn implements a generalized connection network in the style
// of Nassimi & Sahni [4] at their k = log n design point: a cascade of
// log n generator/concentrator stages that doubles multicast copies
// until every cell is unicast, followed by a Benes permutation network
// that carries each copy to its destination.
//
// Stage i (i = 1..log n) first concentrates the live cells to the top
// positions (an (n, n/2)-concentrator, realized here by a bit-sorting
// reverse banyan pass) and then drives a column of (1,2)-generators:
// every cell whose remaining fanout exceeds n/2^i splits into two cells
// of half the fanout. After stage i every cell's fanout is at most
// n/2^i, so after log n stages all cells are unicast and total at most
// n; the copies of one multicast stay adjacent, so copy j of a source
// maps to its j-th smallest destination, and the final Benes pass
// (centralized looping) places every copy.
//
// Hardware: log n concentrators of (n/2) log n switches plus log n
// generator columns of n cells plus one Benes network — Θ(n log^2 n)
// switches, matching the cost row the paper's Table 2 cites for this
// family. Routing is centralized here (Nassimi & Sahni route on an
// attached parallel computer; see DESIGN.md substitutions).
package gcn

import (
	"fmt"

	"brsmn/internal/benes"
	"brsmn/internal/mcast"
	"brsmn/internal/shuffle"
)

// cell is one (possibly partial) multicast in flight: its source, the
// index of its first copy, and its copy count.
type cell struct {
	source int
	first  int // rank of this cell's first copy within the source's destinations
	fanout int
}

// Network is an n x n generalized connection network.
type Network struct {
	n int
}

// New returns an n x n GCN.
func New(n int) (*Network, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("gcn: size %d is not a power of two >= 2", n)
	}
	return &Network{n: n}, nil
}

// N returns the network size.
func (nw *Network) N() int { return nw.n }

// Result records a routed assignment.
type Result struct {
	N int
	// OutSource[out] is the source delivered at that output, -1 idle.
	OutSource []int
	// Stages is the number of generator/concentrator stages traversed.
	Stages int
	// Splits is the number of generator activations (copies made).
	Splits int
}

// Route realizes a multicast assignment and verifies the deliveries.
func (nw *Network) Route(a mcast.Assignment) (*Result, error) {
	n := nw.n
	if a.N != n {
		return nil, fmt.Errorf("gcn: assignment for %d inputs on a %d x %d network", a.N, n, n)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	m := shuffle.Log2(n)

	// Initial cells, one per active input, in input order (already
	// "concentrated" logically — the simulation keeps the live cells as
	// a dense list, which is exactly what each concentrator pass
	// produces).
	var cells []cell
	for i, ds := range a.Dests {
		if len(ds) > 0 {
			cells = append(cells, cell{source: i, first: 0, fanout: len(ds)})
		}
	}

	res := &Result{N: n, OutSource: make([]int, n), Stages: m}
	for i := range res.OutSource {
		res.OutSource[i] = -1
	}

	// Generator/concentrator cascade.
	for i := 1; i <= m; i++ {
		limit := n >> i
		next := make([]cell, 0, len(cells)*2)
		for _, c := range cells {
			if c.fanout > limit {
				half := c.fanout / 2
				upper := c.fanout - half
				next = append(next,
					cell{source: c.source, first: c.first, fanout: upper},
					cell{source: c.source, first: c.first + upper, fanout: half},
				)
				res.Splits++
			} else {
				next = append(next, c)
			}
		}
		if len(next) > n {
			return nil, fmt.Errorf("gcn: stage %d overflowed to %d cells", i, len(next))
		}
		cells = next
	}
	for _, c := range cells {
		if c.fanout != 1 {
			return nil, fmt.Errorf("gcn: cell of source %d still has fanout %d after %d stages", c.source, c.fanout, m)
		}
	}

	// Distribution: copy `first` of a source goes to its first-th
	// smallest destination; route the partial permutation with the
	// Benes looping algorithm.
	perm := make([]int, n)
	carrying := make([]int, n)
	for i := range perm {
		perm[i] = -1
		carrying[i] = -1
	}
	for p, c := range cells {
		perm[p] = a.Dests[c.source][c.first]
		carrying[p] = c.source
	}
	plan, err := benes.RoutePermutation(perm)
	if err != nil {
		return nil, err
	}
	delivered, err := benes.Apply(plan, carrying)
	if err != nil {
		return nil, err
	}
	for p, d := range perm {
		if d >= 0 {
			res.OutSource[d] = delivered[d]
		}
		_ = p
	}

	owner := a.OutputOwner()
	for out, want := range owner {
		if res.OutSource[out] != want {
			return nil, fmt.Errorf("gcn: output %d received %d, want %d", out, res.OutSource[out], want)
		}
	}
	return res, nil
}

// Switches returns the hardware cost: log n concentrator passes of
// (n/2) log n switches, log n generator columns of n (1,2)-generators,
// and the final Benes network.
func Switches(n int) int {
	m := shuffle.Log2(n)
	return m*(n/2*m) + m*n + benes.Switches(n)
}

// Depth returns the column depth: each stage is a concentrator (log n
// columns) plus a generator column, then the Benes depth.
func Depth(n int) int {
	m := shuffle.Log2(n)
	return m*(m+1) + benes.Depth(n)
}
