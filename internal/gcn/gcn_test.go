package gcn

import (
	"math/rand"
	"testing"

	"brsmn/internal/mcast"
	"brsmn/internal/shuffle"
	"brsmn/internal/workload"
	"brsmn/internal/xbar"
)

func routeAndCompare(t *testing.T, a mcast.Assignment) *Result {
	t.Helper()
	nw, err := New(a.N)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Route(a)
	if err != nil {
		t.Fatalf("%v: %v", a, err)
	}
	xb, err := xbar.New(a.N)
	if err != nil {
		t.Fatal(err)
	}
	want, err := xb.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	for out := range want {
		if res.OutSource[out] != want[out] {
			t.Fatalf("%v: output %d = %d, oracle %d", a, out, res.OutSource[out], want[out])
		}
	}
	return res
}

// TestExhaustiveMulticastN4 checks every 4x4 multicast assignment
// against the oracle.
func TestExhaustiveMulticastN4(t *testing.T) {
	n := 4
	var owner [4]int
	var rec func(o int)
	rec = func(o int) {
		if o == n {
			dests := make([][]int, n)
			for out, in := range owner {
				if in >= 0 {
					dests[in] = append(dests[in], out)
				}
			}
			routeAndCompare(t, mcast.MustNew(n, dests))
			return
		}
		for in := -1; in < n; in++ {
			owner[o] = in
			rec(o + 1)
		}
	}
	rec(0)
}

// TestRandomAndExtremes checks random loads plus broadcast and combs.
func TestRandomAndExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for _, n := range []int{2, 8, 64, 256} {
		for trial := 0; trial < 10; trial++ {
			routeAndCompare(t, workload.Random(rng, n, rng.Float64(), rng.Float64()))
		}
	}
	res := routeAndCompare(t, workload.Broadcast(64, 9))
	// A full broadcast needs exactly n-1 generator activations.
	if res.Splits != 63 {
		t.Errorf("broadcast splits = %d, want 63", res.Splits)
	}
	for g := 1; g <= 64; g *= 4 {
		a, err := workload.MaxSplit(64, g)
		if err != nil {
			t.Fatal(err)
		}
		routeAndCompare(t, a)
	}
}

// TestCostShape checks the Θ(n log^2 n) switch count and stage
// accounting.
func TestCostShape(t *testing.T) {
	for _, n := range []int{8, 64, 1024} {
		m := shuffle.Log2(n)
		sw := Switches(n)
		lo, hi := n*m*m/2, 3*n*m*m
		if sw < lo || sw > hi {
			t.Errorf("n=%d: %d switches outside [%d,%d] (Θ(n log²n) band)", n, sw, lo, hi)
		}
		if Depth(n) <= 0 {
			t.Error("nonpositive depth")
		}
	}
	nw, _ := New(8)
	if nw.N() != 8 {
		t.Error("N wrong")
	}
}

// TestValidation checks error paths.
func TestValidation(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("New(3) succeeded")
	}
	nw, _ := New(8)
	if _, err := nw.Route(workload.Broadcast(4, 0)); err == nil {
		t.Error("Route accepted wrong-size assignment")
	}
	bad := mcast.Assignment{N: 8, Dests: make([][]int, 5)}
	if _, err := nw.Route(bad); err == nil {
		t.Error("Route accepted malformed assignment")
	}
}
