package groupd

import (
	"fmt"
	"testing"
	"time"

	"brsmn"
	"brsmn/internal/rbn"
)

// benchManager builds an n-port manager with one n/2-member group "g"
// rooted at source 0 (members = the odd outputs, so the plan has real
// multicast structure at every level).
func benchManager(tb testing.TB, n int) *Manager {
	tb.Helper()
	m, err := NewManager(Config{N: n, Engine: rbn.Sequential})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { m.Close() })
	members := make([]int, 0, n/2)
	for d := 1; d < n; d += 2 {
		members = append(members, d)
	}
	if _, err := m.Create("g", 0, members); err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkPlanWarm1024 is the rerouting path for an unchanged group: a
// plan-cache hit.
func BenchmarkPlanWarm1024(b *testing.B) {
	m := benchManager(b, 1024)
	if _, err := m.Plan("g"); err != nil { // warm
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := m.Plan("g")
		if err != nil {
			b.Fatal(err)
		}
		if !p.Cached {
			b.Fatal("warm plan missed the cache")
		}
	}
}

// BenchmarkPlanCold1024 is the rerouting path for a changed group: a full
// O(n log^2 n) replan (the generation is bumped every iteration by a
// join/leave toggle, which itself costs only O(log n)).
func BenchmarkPlanCold1024(b *testing.B) {
	m := benchManager(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Join("g", 0); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Leave("g", 0); err != nil {
			b.Fatal(err)
		}
		p, err := m.Plan("g")
		if err != nil {
			b.Fatal(err)
		}
		if p.Cached {
			b.Fatal("cold plan hit the cache")
		}
	}
}

// BenchmarkJoinLeave compares the incremental membership path across
// sizes: the cost must track log n, not n.
func BenchmarkJoinLeave(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := benchManager(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Join("g", 0); err != nil {
					b.Fatal(err)
				}
				if _, err := m.Leave("g", 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestWarmPlanSpeedup pins the acceptance bar: at n = 1024, rerouting an
// unchanged group from the plan cache must beat a cold full replan by at
// least 10x. (Measured gap is orders of magnitude; 10x keeps the test
// robust on noisy machines.)
func TestWarmPlanSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const n = 1024
	m := benchManager(t, n)

	const coldIters = 5
	cold := time.Duration(0)
	for i := 0; i < coldIters; i++ {
		if _, err := m.Join("g", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Leave("g", 0); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		p, err := m.Plan("g")
		if err != nil {
			t.Fatal(err)
		}
		cold += time.Since(start)
		if p.Cached {
			t.Fatal("cold iteration hit the cache")
		}
	}

	const warmIters = 200
	if _, err := m.Plan("g"); err != nil {
		t.Fatal(err)
	}
	warm := time.Duration(0)
	for i := 0; i < warmIters; i++ {
		start := time.Now()
		p, err := m.Plan("g")
		if err != nil {
			t.Fatal(err)
		}
		warm += time.Since(start)
		if !p.Cached {
			t.Fatal("warm iteration missed the cache")
		}
	}

	coldPer := cold / coldIters
	warmPer := warm / warmIters
	t.Logf("n=%d cold replan %v/op, warm cache hit %v/op (%.0fx)",
		n, coldPer, warmPer, float64(coldPer)/float64(warmPer))
	if coldPer < 10*warmPer {
		t.Fatalf("warm plan only %.1fx faster than cold replan (cold %v, warm %v)",
			float64(coldPer)/float64(warmPer), coldPer, warmPer)
	}
}

// TestJoinLeaveAllocsLogN pins the other half of the churn bar: a
// join/leave round trip touches O(log n) tag-tree nodes in place, so its
// allocation count must not grow with n.
func TestJoinLeaveAllocsLogN(t *testing.T) {
	allocsAt := func(n int) float64 {
		g, err := brsmn.NewGroup(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		for d := 1; d < n; d += 2 {
			if err := g.Join(d); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if err := g.Join(0); err != nil {
				t.Fatal(err)
			}
			if err := g.Leave(0); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := allocsAt(1<<6), allocsAt(1<<14)
	t.Logf("join+leave allocations: %v at n=64, %v at n=16384", small, large)
	if large > small {
		t.Fatalf("join/leave allocations grew with n: %v at n=64 vs %v at n=16384", small, large)
	}
	if large > 4 {
		t.Fatalf("join/leave allocates %v objects per round trip, want O(1) slices", large)
	}

	// The managed path (registry lookup, generation bump, cache
	// invalidation) must stay O(log n) too.
	m := benchManager(t, 1<<12)
	managed := testing.AllocsPerRun(200, func() {
		if _, err := m.Join("g", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Leave("g", 0); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("managed join+leave allocations at n=4096: %v", managed)
	if managed > 8 {
		t.Fatalf("managed join/leave allocates %v objects per round trip", managed)
	}
}
