package groupd

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// planKey identifies one cached column program: a group at a specific
// generation, planned under a specific fault-policy version, on a
// specific backend tier. Generations are monotonic, so a key can never
// refer to two different memberships; a policy change (fault localized,
// quarantine grown) bumps pv, so degraded plans never shadow healthy
// ones; a tier transition changes bk, so the group's first Plan on the
// new tier replans through the normal miss path and plans from
// different backends never shadow each other. Stale entries of either
// kind age out through normal LRU eviction.
type planKey struct {
	id  string
	gen uint64
	pv  uint64
	bk  uint8 // backend.Tier numeric value
}

type planEntry struct {
	key     planKey
	blob    []byte // plancodec-encoded column program
	columns int
	passes  int // injection passes the program spans (1 for BRSMN)
}

// CacheStats is a point-in-time snapshot of the plan cache's counters —
// the numbers the churn benchmarks watch.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Size          int    `json:"size"`
	Capacity      int    `json:"capacity"`
}

// planCache is a mutex-guarded LRU over encoded column programs. A
// membership change bumps the group's generation and invalidates the old
// key eagerly; an entry inserted by a racing Plan for an already-stale
// generation is harmless — no lookup uses old generations — and ages out
// through normal LRU eviction.
//
// The mutex covers only the LRU structure; the counters are sync/atomic
// so Stats can be read lock-free while epoch goroutines churn the cache
// (and so a scrape never contends with the replan path).
type planCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[planKey]*list.Element

	hits, misses, evictions, invalidations atomic.Uint64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[planKey]*list.Element, capacity),
	}
}

func (c *planCache) get(k planKey) (planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses.Add(1)
		return planEntry{}, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return *el.Value.(*planEntry), true
}

// peek is a stats- and LRU-neutral lookup: the snapshot writer uses it
// to harvest warm plans without skewing hit/miss counters or recency.
func (c *planCache) peek(k planKey) (planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return planEntry{}, false
	}
	return *el.Value.(*planEntry), true
}

func (c *planCache) put(k planKey, blob []byte, columns, passes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value = &planEntry{key: k, blob: blob, columns: columns, passes: passes}
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&planEntry{key: k, blob: blob, columns: columns, passes: passes})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*planEntry).key)
		c.evictions.Add(1)
	}
}

func (c *planCache) invalidate(k planKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.Remove(el)
		delete(c.items, k)
		c.invalidations.Add(1)
	}
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	size := c.ll.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Size:          size,
		Capacity:      c.capacity,
	}
}
