package groupd

import (
	"bytes"
	"testing"
)

func TestPlanCacheLRUOrder(t *testing.T) {
	c := newPlanCache(2)
	c.put(planKey{"a", 1, 0}, []byte{1}, 1)
	c.put(planKey{"b", 1, 0}, []byte{2}, 1)
	// Touch a so b becomes the LRU victim.
	if _, ok := c.get(planKey{"a", 1, 0}); !ok {
		t.Fatal("a missing")
	}
	c.put(planKey{"c", 1, 0}, []byte{3}, 1)
	if _, ok := c.get(planKey{"b", 1, 0}); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.get(planKey{"a", 1, 0}); !ok {
		t.Fatal("a evicted despite recent use")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPlanCachePutOverwrites(t *testing.T) {
	c := newPlanCache(4)
	k := planKey{"g", 7, 0}
	c.put(k, []byte{1, 2}, 3)
	c.put(k, []byte{9}, 5)
	e, ok := c.get(k)
	if !ok || !bytes.Equal(e.blob, []byte{9}) || e.columns != 5 {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}
	if st := c.stats(); st.Size != 1 {
		t.Fatalf("size = %d after overwrite", st.Size)
	}
}

func TestPlanCacheInvalidate(t *testing.T) {
	c := newPlanCache(4)
	k := planKey{"g", 1, 0}
	c.put(k, []byte{1}, 1)
	c.invalidate(k)
	c.invalidate(k) // absent: no double count
	if _, ok := c.get(k); ok {
		t.Fatal("entry survived invalidation")
	}
	st := c.stats()
	if st.Invalidations != 1 || st.Size != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Distinct generations are distinct entries.
	c.put(planKey{"g", 1, 0}, []byte{1}, 1)
	c.put(planKey{"g", 2, 0}, []byte{2}, 1)
	if st := c.stats(); st.Size != 2 {
		t.Fatalf("size = %d, want 2 generations", st.Size)
	}
}
