package groupd

import (
	"bytes"
	"sync"
	"testing"
)

func TestPlanCacheLRUOrder(t *testing.T) {
	c := newPlanCache(2)
	c.put(planKey{"a", 1, 0, 1}, []byte{1}, 1, 1)
	c.put(planKey{"b", 1, 0, 1}, []byte{2}, 1, 1)
	// Touch a so b becomes the LRU victim.
	if _, ok := c.get(planKey{"a", 1, 0, 1}); !ok {
		t.Fatal("a missing")
	}
	c.put(planKey{"c", 1, 0, 1}, []byte{3}, 1, 1)
	if _, ok := c.get(planKey{"b", 1, 0, 1}); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.get(planKey{"a", 1, 0, 1}); !ok {
		t.Fatal("a evicted despite recent use")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPlanCachePutOverwrites(t *testing.T) {
	c := newPlanCache(4)
	k := planKey{"g", 7, 0, 1}
	c.put(k, []byte{1, 2}, 3, 1)
	c.put(k, []byte{9}, 5, 1)
	e, ok := c.get(k)
	if !ok || !bytes.Equal(e.blob, []byte{9}) || e.columns != 5 {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}
	if st := c.stats(); st.Size != 1 {
		t.Fatalf("size = %d after overwrite", st.Size)
	}
}

func TestPlanCacheInvalidate(t *testing.T) {
	c := newPlanCache(4)
	k := planKey{"g", 1, 0, 1}
	c.put(k, []byte{1}, 1, 1)
	c.invalidate(k)
	c.invalidate(k) // absent: no double count
	if _, ok := c.get(k); ok {
		t.Fatal("entry survived invalidation")
	}
	st := c.stats()
	if st.Invalidations != 1 || st.Size != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Distinct generations are distinct entries.
	c.put(planKey{"g", 1, 0, 1}, []byte{1}, 1, 1)
	c.put(planKey{"g", 2, 0, 1}, []byte{2}, 1, 1)
	if st := c.stats(); st.Size != 2 {
		t.Fatalf("size = %d, want 2 generations", st.Size)
	}
}

// TestPlanCacheStatsRace hammers stats() while writer goroutines churn
// the cache — the counters were plain ints read outside the structural
// mutex, which the race detector flags and which could tear or drop
// increments on scrape-heavy deployments. Run with -race.
func TestPlanCacheStatsRace(t *testing.T) {
	const (
		writers    = 4
		iterations = 2000
	)
	c := newPlanCache(8)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = c.stats()
				}
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			id := string(rune('a' + w))
			for i := 0; i < iterations; i++ {
				k := planKey{id, uint64(i % 32), 0, 1}
				c.put(k, []byte{byte(i)}, 1, 1)
				c.get(k)
				if i%7 == 0 {
					c.invalidate(k)
				}
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	// Every get either hit or missed; none may have been lost.
	st := c.stats()
	if st.Hits+st.Misses != writers*iterations {
		t.Fatalf("hits %d + misses %d != %d gets", st.Hits, st.Misses, writers*iterations)
	}
	if st.Size > st.Capacity {
		t.Fatalf("size %d exceeds capacity %d", st.Size, st.Capacity)
	}
}
