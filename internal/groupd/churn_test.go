package groupd

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"brsmn/internal/core"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
)

// verifyEpoch checks one epoch report against first principles: every
// round must be a conflict-free assignment (disjoint outputs, one request
// per source), its deliveries must match a fresh routing by an
// independent core network, each group must appear in exactly one round,
// and every member of every group must be served. members[id] is the
// membership frozen while no churn runs.
func verifyEpoch(t *testing.T, n int, rep *EpochReport, sources map[string]int, members map[string][]int) {
	t.Helper()
	nw, err := core.New(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for r, round := range rep.Rounds {
		dests := make([][]int, n)
		srcUsed := make([]bool, n)
		for _, id := range round.GroupIDs {
			if seen[id] {
				t.Fatalf("group %q scheduled in two rounds", id)
			}
			seen[id] = true
			src := sources[id]
			if srcUsed[src] {
				t.Fatalf("round %d uses source %d twice", r, src)
			}
			srcUsed[src] = true
			for _, d := range members[id] {
				if dests[src] == nil {
					dests[src] = []int{}
				}
				dests[src] = append(dests[src], d)
			}
		}
		a, err := mcast.New(n, dests) // fails if any outputs overlap
		if err != nil {
			t.Fatalf("round %d not conflict-free: %v", r, err)
		}
		res, err := nw.Route(a)
		if err != nil {
			t.Fatalf("round %d fresh routing: %v", r, err)
		}
		for out, d := range res.Deliveries {
			if round.Deliveries[out] != d.Source {
				t.Fatalf("round %d output %d: epoch delivered %d, fresh core delivered %d",
					r, out, round.Deliveries[out], d.Source)
			}
		}
	}
	for id, mem := range members {
		if len(mem) > 0 && !seen[id] {
			t.Fatalf("group %q (%d members) never scheduled", id, len(mem))
		}
	}
}

// TestChurnSoak drives random join/leave/route cycles and checks every
// epoch's rounds against a fresh core routing.
func TestChurnSoak(t *testing.T) {
	const (
		n      = 32
		groups = 10
		cycles = 15
	)
	rng := rand.New(rand.NewSource(42))
	m := newTestManager(t, Config{N: n, CacheSize: 8, Workers: 2})

	for g := 0; g < groups; g++ {
		// Sources collide on purpose: the scheduler must separate them.
		mustCreate(t, m, fmt.Sprintf("g%d", g), rng.Intn(n/2), nil)
	}
	for cycle := 0; cycle < cycles; cycle++ {
		for op := 0; op < 3*groups; op++ {
			id := fmt.Sprintf("g%d", rng.Intn(groups))
			d := rng.Intn(n)
			g, err := m.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			joined := false
			for _, mem := range g.Members {
				if mem == d {
					joined = true
					break
				}
			}
			if joined {
				if _, err := m.Leave(id, d); err != nil {
					t.Fatal(err)
				}
			} else if _, err := m.Join(id, d); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := m.RunEpoch()
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		sources := map[string]int{}
		members := map[string][]int{}
		for _, g := range m.List() {
			if g.Size > 0 {
				sources[g.ID] = g.Source
				members[g.ID] = g.Members
			}
		}
		verifyEpoch(t, n, rep, sources, members)
	}
	st := m.CacheStats()
	if st.Misses == 0 || st.Invalidations == 0 {
		t.Fatalf("soak never exercised the cache: %+v", st)
	}
}

// TestConcurrentChurn hammers the manager from many goroutines while the
// background epoch loop runs — the -race workout for the sharded
// registry, per-session locks, plan cache and epoch snapshotting.
func TestConcurrentChurn(t *testing.T) {
	const (
		n       = 16
		workers = 8
		ops     = 150
	)
	m := newTestManager(t, Config{
		N:              n,
		CacheSize:      8,
		Shards:         4,
		EpochPeriod:    time.Millisecond,
		EpochThreshold: 10,
		Workers:        2,
	})
	for g := 0; g < 6; g++ {
		mustCreate(t, m, fmt.Sprintf("g%d", g), g, nil)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				id := fmt.Sprintf("g%d", rng.Intn(8)) // g6, g7 mostly missing: exercises ErrNotFound
				switch rng.Intn(10) {
				case 0:
					_, _ = m.Create(id, rng.Intn(n), nil) // ErrExists races are fine
				case 1:
					_ = m.Delete(id)
				case 2:
					_, _ = m.Get(id)
				case 3:
					_, _ = m.Plan(id)
				case 4:
					_, _ = m.RunEpoch()
				default:
					if rng.Intn(2) == 0 {
						_, _ = m.Join(id, rng.Intn(n))
					} else {
						_, _ = m.Leave(id, rng.Intn(n))
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if _, err := m.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	rep := m.LastEpoch()
	if rep == nil || rep.Err != "" {
		t.Fatalf("final report = %+v", rep)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
