package groupd

import (
	"errors"
	"fmt"
	"time"

	"brsmn/internal/controller"
	"brsmn/internal/sched"
	"brsmn/internal/store"
)

// RoundReport is one conflict-free round of an epoch: the groups it
// carries and the resulting per-output delivery vector (the source input
// delivered at each output, -1 idle).
type RoundReport struct {
	GroupIDs   []string `json:"groupIds"`
	Deliveries []int    `json:"deliveries"`
	// Rejected lists the output ports the fault policy excluded from
	// this round (sorted); empty on a healthy fabric.
	Rejected []int `json:"rejected,omitempty"`
}

// EpochReport summarizes one reroute epoch.
type EpochReport struct {
	Epoch    int64         `json:"epoch"`
	When     time.Time     `json:"when"`
	Duration time.Duration `json:"durationNs"`
	// Groups is the number of non-empty groups routed this epoch.
	Groups int `json:"groups"`
	// Fanout is the total (source, output) connection count.
	Fanout int           `json:"fanout"`
	Rounds []RoundReport `json:"rounds"`
	Cache  CacheStats    `json:"cache"`
	// Quarantined is the total output-port count the fault policy
	// rejected across this epoch's rounds; DegradedRounds counts the
	// rounds it touched.
	Quarantined    int `json:"quarantined,omitempty"`
	DegradedRounds int `json:"degradedRounds,omitempty"`
	// Err carries a failed background epoch's error; empty on success.
	Err string `json:"err,omitempty"`
}

// RunEpoch executes one reroute epoch synchronously: snapshot the live
// groups, partition them into conflict-free rounds, route every round
// through the network (rounds run on Config.Workers concurrent
// routings), and refresh the plan cache — changed groups replan, the
// rest hit. Epochs are serialized; membership changes landing mid-epoch
// count toward the next one.
func (m *Manager) RunEpoch() (*EpochReport, error) {
	if m.closed.Load() {
		return nil, ErrClosed
	}
	m.epochMu.Lock()
	defer m.epochMu.Unlock()
	start := time.Now()
	m.pending.Store(0)

	snaps := m.snapshot()
	live := snaps[:0]
	for _, sn := range snaps {
		if len(sn.members) > 0 {
			live = append(live, sn)
		}
	}
	reqs := make([]sched.Request, len(live))
	for i, sn := range live {
		reqs[i] = sched.Request{Source: sn.source, Dests: sn.members}
	}
	roundIdx, err := sched.ScheduleIndices(m.cfg.N, reqs)
	if err != nil {
		return nil, fmt.Errorf("groupd: epoch scheduling: %w", err)
	}
	rounds := make([][]sched.Request, len(roundIdx))
	ids := make([][]string, len(roundIdx))
	for r, members := range roundIdx {
		for _, k := range members {
			rounds[r] = append(rounds[r], reqs[k])
			ids[r] = append(ids[r], live[k].id)
		}
	}
	as, err := sched.Assignments(m.cfg.N, rounds)
	if err != nil {
		return nil, fmt.Errorf("groupd: epoch round assembly: %w", err)
	}
	// Quarantine is a per-round decision: whether a connection survives a
	// fault depends on the whole round's switch settings, so the policy
	// filters each combined assignment, not each group.
	rejected := make([][]int, len(as))
	if m.cfg.Policy != nil {
		for r := range as {
			as[r], rejected[r] = m.cfg.Policy.FilterAssignment(as[r])
		}
	}
	routed, err := controller.RouteAllOn(m.nw, as, m.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("groupd: epoch routing: %w", err)
	}

	rep := &EpochReport{
		When:   start,
		Groups: len(live),
		Rounds: make([]RoundReport, len(routed)),
	}
	for r, sr := range routed {
		if sr.Err != nil {
			return nil, fmt.Errorf("groupd: epoch round %d: %w", r, sr.Err)
		}
		vec := make([]int, m.cfg.N)
		for out, d := range sr.Res.Deliveries {
			vec[out] = d.Source
		}
		rep.Rounds[r] = RoundReport{GroupIDs: ids[sr.Index], Deliveries: vec, Rejected: rejected[sr.Index]}
		if len(rejected[sr.Index]) > 0 {
			rep.Quarantined += len(rejected[sr.Index])
			rep.DegradedRounds++
		}
	}
	for _, sn := range live {
		rep.Fanout += len(sn.members)
		if _, err := m.planFor(sn.id, sn.gen, sn.source, sn.members, sn.tier); err != nil {
			return nil, fmt.Errorf("groupd: epoch plan for %q: %w", sn.id, err)
		}
	}
	rep.Epoch = m.epochN.Add(1)
	// An epoch boundary doubles as a durability barrier: record the
	// advance and sync the accumulated fsync batch through to disk.
	// Best-effort — the epoch counter also rides in every snapshot.
	if m.cfg.Store != nil {
		if lsn, err := m.cfg.Store.Append(store.Record{Op: store.OpEpoch, Epoch: rep.Epoch}); err == nil {
			m.noteLSN(lsn)
			_ = m.cfg.Store.Sync()
		}
	}
	rep.Duration = time.Since(start)
	rep.Cache = m.cache.stats()
	if m.met != nil {
		m.met.epochsOK.Inc()
		m.met.epochDur.ObserveDuration(rep.Duration)
		m.met.epochRounds.Observe(float64(len(rep.Rounds)))
	}
	m.last.Store(rep)
	if m.cfg.Policy != nil {
		m.cfg.Policy.AfterEpoch(rep.Epoch)
	}
	return rep, nil
}

// Epoch returns the number of completed epochs.
func (m *Manager) Epoch() int64 { return m.epochN.Load() }

// LastEpoch returns the most recent epoch report, or nil before the
// first epoch completes.
func (m *Manager) LastEpoch() *EpochReport { return m.last.Load() }

// Pending returns the membership changes accumulated since the last
// epoch began.
func (m *Manager) Pending() int64 { return m.pending.Load() }

// loop is the epoch goroutine: tick-driven when EpochPeriod > 0,
// kicked early whenever the pending-change threshold trips.
func (m *Manager) loop() {
	defer close(m.done)
	var tick <-chan time.Time
	if m.cfg.EpochPeriod > 0 {
		t := time.NewTicker(m.cfg.EpochPeriod)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-m.quit:
			return
		case <-tick:
		case <-m.kick:
		}
		if _, err := m.RunEpoch(); err != nil && !errors.Is(err, ErrClosed) {
			// An epoch can only fail on an internal invariant breach;
			// surface it in the report stream rather than crash the loop.
			if m.met != nil {
				m.met.epochsErr.Inc()
			}
			m.last.Store(&EpochReport{Epoch: m.epochN.Load(), When: time.Now(), Err: err.Error()})
		}
	}
}
