// Package groupd is the stateful group-management layer of the multicast
// service: the piece that makes the BRSMN behave like a long-running
// switch under churn rather than a per-request calculator. It owns three
// cooperating parts:
//
//   - a session registry: long-lived multicast groups keyed by ID, each
//     wrapping a brsmn.Group whose routing-tag tree is mutated
//     incrementally (O(log n) nodes per join/leave) under a sharded
//     RWMutex, with a generation counter bumped on every change;
//   - an epoch scheduler: membership changes accumulate, and every epoch
//     (timer tick or pending-change threshold) the live groups are
//     partitioned into conflict-free rounds by internal/sched and routed
//     concurrently through internal/controller, so overlapping groups
//     coexist the way real traffic does;
//   - a plan cache: an LRU keyed by (group ID, generation) holding
//     plancodec-encoded column programs, so rerouting an unchanged group
//     is a cache hit instead of an O(n log^2 n) replan. Hit/miss/eviction
//     counters are exposed for benchmarking.
//
// A Manager is safe for concurrent use by the HTTP handlers of
// internal/api and its own epoch goroutine.
package groupd

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"brsmn"
	"brsmn/internal/backend"
	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/obs"
	"brsmn/internal/plancodec"
	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/store"
)

// Sentinel errors the API layer maps to HTTP statuses.
var (
	ErrNotFound = errors.New("groupd: no such group")
	ErrExists   = errors.New("groupd: group already exists")
	ErrClosed   = errors.New("groupd: manager closed")
	// ErrStore wraps a durable-store append failure: the mutation was
	// rolled back, nothing changed, and the caller may retry.
	ErrStore = errors.New("groupd: durable store append failed")
	// ErrNoStore is returned by snapshot operations on a manager built
	// without Config.Store.
	ErrNoStore = errors.New("groupd: no durable store configured")
)

// Config parameterizes a Manager. The zero value of every field except N
// is usable; NewManager fills in defaults.
type Config struct {
	// N is the (fixed) network size, a power of two >= 2.
	N int
	// Engine runs the distributed switch-setting sweeps.
	Engine rbn.Engine
	// Shards is the registry shard count (default 16).
	Shards int
	// CacheSize caps the plan cache in entries (default 1024).
	CacheSize int
	// EpochPeriod drives the timer-based epoch loop; 0 disables the
	// timer (epochs run on threshold or on demand only).
	EpochPeriod time.Duration
	// EpochThreshold forces an early epoch once this many membership
	// changes are pending; 0 disables threshold-driven epochs.
	EpochThreshold int
	// Workers is the number of rounds routed concurrently per epoch
	// (default 1).
	Workers int
	// PatchThreshold bounds incremental plan patching on the serving
	// path: a Plan cache miss whose group moved at most this many
	// generations past the manager's retained patched route applies the
	// pending joins/leaves as O(log n) plan patches (core.RoutePatch)
	// instead of a full O(n log^2 n) replan. 0 means the default (8);
	// values above the per-session change-ring depth (16) are capped;
	// negative disables patching. With a Policy set, patching runs only
	// while the policy filter is a no-op at an unchanged version — a
	// filtered assignment falls back to full replans until the fault
	// clears.
	PatchThreshold int
	// Policy, when non-nil, filters every planned assignment around
	// believed faults and hooks probe scheduling into the epoch loop
	// (see FaultPolicy; implemented by internal/faultd).
	Policy FaultPolicy
	// Metrics, when non-nil, receives the manager's series: epoch
	// duration/rounds histograms, replan latency, plan-cache and
	// planner-pool counters (see metrics.go for the full reference).
	Metrics *obs.Registry
	// MetricsLabel, when non-empty, is a rendered label pair (e.g.
	// `shard="3"`) folded into every series this manager registers, so
	// several managers — the shards of internal/shard — can share one
	// registry without colliding.
	MetricsLabel string
	// Tracer, when non-nil, samples replans per group and records a
	// per-stage RouteTrace for each sampled one.
	Tracer *obs.TraceRecorder
	// Store, when non-nil, makes the manager durable: every mutation is
	// appended to the store before it becomes visible (rolled back on
	// append failure), NewManager recovers state via snapshot-load plus
	// log replay, and Close writes a final snapshot and closes the
	// store. The manager owns the store from then on.
	Store store.Store
	// FaultSpecs, when non-nil, reports the fault specs currently armed
	// on the fabric (faultd Fault.String() form); snapshots carry them
	// so believed faults survive a restart alongside the groups.
	FaultSpecs func() []string
	// DefaultBackend is the backend preference assigned to groups
	// created without one: a concrete tier pins them there,
	// backend.TierAuto (the zero value) defers to TierAuto below.
	DefaultBackend backend.Tier
	// TierAuto, when DefaultBackend is backend.TierAuto, makes the
	// selector tier new groups from observed workload; false (the
	// default) keeps every group on the full BRSMN, preserving the
	// pre-tiering behavior exactly.
	TierAuto bool
	// Selector sets the auto-tiering thresholds; zero fields take the
	// defaults in backend.DefaultSelectorConfig.
	Selector backend.SelectorConfig
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.PatchThreshold == 0 {
		c.PatchThreshold = 8
	}
	if c.PatchThreshold > chgRing {
		c.PatchThreshold = chgRing
	}
}

// session is one registered group. The registry shard lock covers the
// map; the session's own mutex covers the tag tree and generation.
type session struct {
	mu    sync.Mutex
	id    string
	group *brsmn.Group
	gen   uint64
	gone  bool // deleted from the registry while a caller still holds it
	// tier is the group's backend-tiering state (serving tier,
	// preference, churn EWMA, hit profile, hysteresis ladder), covered
	// by mu like the rest of the session.
	tier backend.GroupState
	// chg is a ring of the session's most recent membership changes,
	// indexed by the generation each produced (chg[gen%chgRing]); the
	// plan-patch path replays it to roll a retained route forward.
	chg [chgRing]memberChange
}

type shard struct {
	mu     sync.RWMutex
	groups map[string]*session
}

// Manager is the stateful group subsystem. Construct with NewManager and
// release with Close.
type Manager struct {
	cfg    Config
	nw     *core.Network
	seed   maphash.Seed
	shards []*shard
	cache  *planCache

	// backends holds one Backend per tier. The BRSMN entry exists for
	// capability/cost metadata only — BRSMN routing stays on nw so the
	// traced, pooled, and patched paths keep working unchanged.
	backends map[backend.Tier]backend.Backend
	sel      *backend.Selector

	nextID  atomic.Uint64
	pending atomic.Int64 // membership changes since the last epoch began
	closed  atomic.Bool

	epochMu sync.Mutex // serializes RunEpoch
	epochN  atomic.Int64
	last    atomic.Pointer[EpochReport]

	met    *managerMetrics // nil when Config.Metrics was nil
	tracer *obs.TraceRecorder
	patch  patchState // the serving path's retained incremental route

	// Durability state; all zero when Config.Store is nil.
	lastLSN         atomic.Uint64 // highest LSN this manager has appended or replayed
	snapMu          sync.Mutex    // serializes snapshotToStore
	recovered       RecoveryStats // written once during NewManager
	recoveredFaults []string

	kick        chan struct{}
	quit        chan struct{}
	done        chan struct{}
	loopRunning bool
}

// NewManager builds the subsystem and, when Config enables timer- or
// threshold-driven epochs, starts the epoch goroutine.
func NewManager(cfg Config) (*Manager, error) {
	if !shuffle.IsPow2(cfg.N) || cfg.N < 2 {
		return nil, fmt.Errorf("groupd: network size %d is not a power of two >= 2", cfg.N)
	}
	cfg.applyDefaults()
	nw, err := core.New(cfg.N, cfg.Engine)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:    cfg,
		nw:     nw,
		seed:   maphash.MakeSeed(),
		shards: make([]*shard, cfg.Shards),
		cache:  newPlanCache(cfg.CacheSize),
		kick:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i] = &shard{groups: make(map[string]*session)}
	}
	m.tracer = cfg.Tracer
	m.sel = backend.NewSelector(cfg.Selector)
	m.backends, err = backend.All(cfg.N, cfg.Engine)
	if err != nil {
		return nil, err
	}
	if cfg.Store != nil {
		if err := m.restore(); err != nil {
			return nil, err
		}
	}
	if cfg.Metrics != nil {
		m.met = m.registerMetrics(cfg.Metrics)
	}
	if cfg.EpochPeriod > 0 || cfg.EpochThreshold > 0 {
		m.loopRunning = true
		go m.loop()
	}
	return m, nil
}

// Close stops the epoch loop, waiting for an in-flight epoch to drain.
// With a durable store it then writes a final snapshot (so the next
// boot replays nothing) and closes the store. It is idempotent and safe
// to call concurrently.
func (m *Manager) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	close(m.quit)
	if m.loopRunning {
		<-m.done
	}
	if m.cfg.Store == nil {
		return nil
	}
	_, serr := m.snapshotToStore()
	cerr := m.cfg.Store.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// N returns the configured network size.
func (m *Manager) N() int { return m.cfg.N }

func (m *Manager) shardFor(id string) *shard {
	return m.shards[maphash.String(m.seed, id)%uint64(len(m.shards))]
}

func (m *Manager) sessionFor(id string) (*session, error) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.groups[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s, nil
}

// noteChange records membership churn and kicks an early epoch when the
// threshold is crossed.
func (m *Manager) noteChange(n int) {
	p := m.pending.Add(int64(n))
	if m.cfg.EpochThreshold > 0 && p >= int64(m.cfg.EpochThreshold) && m.loopRunning {
		select {
		case m.kick <- struct{}{}:
		default:
		}
	}
}

// defaultPref resolves the backend preference for groups created
// without one: a concrete Config.DefaultBackend wins, otherwise
// Config.TierAuto selects between selector-driven tiering and the
// pre-tiering constant (full BRSMN).
func (m *Manager) defaultPref() backend.Tier {
	if m.cfg.DefaultBackend != backend.TierAuto {
		return m.cfg.DefaultBackend
	}
	if m.cfg.TierAuto {
		return backend.TierAuto
	}
	return backend.TierBRSMN
}

// Backends returns the manager's backend per tier (the BRSMN entry is
// metadata-only; its routing runs on the manager's own network). The
// map is shared — callers must not mutate it.
func (m *Manager) Backends() map[backend.Tier]backend.Backend { return m.backends }

// SelectorConfig returns the effective auto-tiering thresholds.
func (m *Manager) SelectorConfig() backend.SelectorConfig { return m.sel.Config() }

// GroupInfo is the full externally visible state of one group.
type GroupInfo struct {
	ID       string `json:"id"`
	Source   int    `json:"source"`
	Gen      uint64 `json:"gen"`
	Size     int    `json:"size"`
	Members  []int  `json:"members"`
	Sequence string `json:"sequence"`
	// Backend is the tier the group is currently served on; BackendPref
	// is the requested preference ("auto" delegates to the selector).
	Backend     string `json:"backend"`
	BackendPref string `json:"backendPref"`
}

// Update is the O(log n) acknowledgement of a join/leave: enough for the
// caller to observe progress without materializing the O(n) member list.
type Update struct {
	ID   string `json:"id"`
	Gen  uint64 `json:"gen"`
	Size int    `json:"size"`
}

// Create registers a new group rooted at source with the given initial
// members. An empty id is auto-assigned ("g1", "g2", ...). Sources and
// memberships may overlap freely across groups — the epoch scheduler
// separates conflicting groups into rounds.
func (m *Manager) Create(id string, source int, members []int) (GroupInfo, error) {
	return m.CreateWithBackend(id, source, members, m.defaultPref())
}

// CreateWithBackend registers a new group with an explicit backend
// preference: a concrete tier pins the group there, backend.TierAuto
// lets the selector tier it from observed workload. The preference is
// serving state, not durable state — a restart re-resolves it from the
// manager's configured default.
func (m *Manager) CreateWithBackend(id string, source int, members []int, pref backend.Tier) (GroupInfo, error) {
	if m.closed.Load() {
		return GroupInfo{}, ErrClosed
	}
	if id == "" {
		id = fmt.Sprintf("g%d", m.nextID.Add(1))
	}
	g, err := brsmn.NewGroup(m.cfg.N, source)
	if err != nil {
		return GroupInfo{}, err
	}
	for _, d := range members {
		if err := g.Join(d); err != nil {
			return GroupInfo{}, fmt.Errorf("groupd: initial member %d: %w", d, err)
		}
	}
	s := &session{id: id, group: g, gen: 1}
	m.sel.Init(&s.tier, pref, g.Len(), 1)
	sh := m.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.groups[id]; ok {
		sh.mu.Unlock()
		return GroupInfo{}, fmt.Errorf("%w: %q", ErrExists, id)
	}
	// Append before the group becomes visible: a crash after this point
	// replays the create; an append failure leaves no trace.
	if err := m.appendRecord(store.Record{Op: store.OpCreate, Group: id, Source: source, Gen: 1, Members: members}); err != nil {
		sh.mu.Unlock()
		return GroupInfo{}, err
	}
	sh.groups[id] = s
	sh.mu.Unlock()
	m.noteChange(1 + len(members))
	return s.info(), nil
}

// Join admits output d to the group, bumping its generation and
// invalidating the superseded cached plan. The whole path — tag-tree
// update included — allocates O(log n), not O(n).
func (m *Manager) Join(id string, d int) (Update, error) {
	return m.mutate(id, d, true)
}

// Leave removes output d from the group; same contract as Join.
func (m *Manager) Leave(id string, d int) (Update, error) {
	return m.mutate(id, d, false)
}

func (m *Manager) mutate(id string, d int, join bool) (Update, error) {
	if m.closed.Load() {
		return Update{}, ErrClosed
	}
	s, err := m.sessionFor(id)
	if err != nil {
		return Update{}, err
	}
	op, inv, rop := (*brsmn.Group).Leave, (*brsmn.Group).Join, store.OpLeave
	if join {
		op, inv, rop = (*brsmn.Group).Join, (*brsmn.Group).Leave, store.OpJoin
	}
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		return Update{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if err := op(s.group, d); err != nil {
		s.mu.Unlock()
		return Update{}, err
	}
	// The tag-tree op validated the mutation; log it before the new
	// generation becomes visible. Join and leave are exact inverses, so
	// an append failure rolls the tree back and the caller sees an
	// unchanged group.
	if err := m.appendRecord(store.Record{Op: rop, Group: id, Dest: d, Gen: s.gen + 1}); err != nil {
		_ = inv(s.group, d)
		s.mu.Unlock()
		return Update{}, err
	}
	old := s.gen
	s.gen++
	s.chg[s.gen%chgRing] = memberChange{gen: s.gen, dest: int32(d), join: join}
	u := Update{ID: s.id, Gen: s.gen, Size: s.group.Len()}
	tier := s.tier.Tier
	s.mu.Unlock()
	m.cache.invalidate(planKey{id: id, gen: old, pv: m.policyVersion(), bk: uint8(tier)})
	m.noteChange(1)
	return u, nil
}

// SetBackend changes the group's backend preference. A concrete tier
// takes effect immediately — the next Plan misses into the new tier's
// cache key and replans there through the normal epoch path — while
// backend.TierAuto hands the group to the selector, which keeps the
// current tier until observations move it. Like the creation-time
// preference, this is serving state, not durable state.
func (m *Manager) SetBackend(id string, pref backend.Tier) (GroupInfo, error) {
	if m.closed.Load() {
		return GroupInfo{}, ErrClosed
	}
	s, err := m.sessionFor(id)
	if err != nil {
		return GroupInfo{}, err
	}
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		return GroupInfo{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	changed := m.sel.SetPref(&s.tier, pref)
	tier := s.tier.Tier
	s.mu.Unlock()
	if changed {
		m.noteBackendTransition(tier)
	}
	return s.info(), nil
}

// Delete unregisters the group and drops its cached plan.
func (m *Manager) Delete(id string) error {
	if m.closed.Load() {
		return ErrClosed
	}
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.groups[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.mu.Lock()
	gen := s.gen
	if err := m.appendRecord(store.Record{Op: store.OpDelete, Group: id, Gen: gen}); err != nil {
		s.mu.Unlock()
		sh.mu.Unlock()
		return err
	}
	s.gone = true
	tier := s.tier.Tier
	s.mu.Unlock()
	delete(sh.groups, id)
	sh.mu.Unlock()
	m.cache.invalidate(planKey{id: id, gen: gen, pv: m.policyVersion(), bk: uint8(tier)})
	m.noteChange(1)
	return nil
}

// Get returns the group's full state.
func (m *Manager) Get(id string) (GroupInfo, error) {
	s, err := m.sessionFor(id)
	if err != nil {
		return GroupInfo{}, err
	}
	return s.info(), nil
}

func (s *session) info() GroupInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return GroupInfo{
		ID:          s.id,
		Source:      s.group.Source(),
		Gen:         s.gen,
		Size:        s.group.Len(),
		Members:     s.group.Members(),
		Sequence:    s.group.Sequence(),
		Backend:     s.tier.Tier.String(),
		BackendPref: s.tier.Pref.String(),
	}
}

// List returns every registered group's state, sorted by ID.
func (m *Manager) List() []GroupInfo {
	var out []GroupInfo
	for _, sh := range m.shards {
		sh.mu.RLock()
		sessions := make([]*session, 0, len(sh.groups))
		for _, s := range sh.groups {
			sessions = append(sessions, s)
		}
		sh.mu.RUnlock()
		for _, s := range sessions {
			out = append(out, s.info())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Count returns the number of registered groups.
func (m *Manager) Count() int {
	c := 0
	for _, sh := range m.shards {
		sh.mu.RLock()
		c += len(sh.groups)
		sh.mu.RUnlock()
	}
	return c
}

// CacheStats snapshots the plan cache counters.
func (m *Manager) CacheStats() CacheStats { return m.cache.stats() }

// PlanInfo is one group's encoded column program.
type PlanInfo struct {
	ID      string
	Gen     uint64
	Cached  bool // true when served from the plan cache
	Columns int
	Blob    []byte // plancodec format
	// Backend is the tier that planned the program; Passes is the
	// injection passes it spans (1 for BRSMN, 2 log2(n) - 1 for the
	// feedback network, the group's fanout for the permutation network).
	Backend string
	Passes  int
}

// Plan returns the group's standalone column program — the switch
// settings a hardware configuration flow would load to realize this
// group alone. Served from the plan cache when the group is unchanged
// since the last computation. On a BRSMN-tier miss, a group only a few
// join/leaves past the manager's retained patched route is rolled
// forward by incremental plan patches (see patch.go); otherwise a full
// route + flatten + encode on the group's serving tier.
func (m *Manager) Plan(id string) (PlanInfo, error) {
	s, err := m.sessionFor(id)
	if err != nil {
		return PlanInfo{}, err
	}
	// Fast path: an unchanged group needs only its generation and tier
	// to hit the cache — no O(n) member materialization. The lookup
	// doubles as the selector's observation point: churn is fed from the
	// generation counter, and the hit or miss lands in the group's
	// plan-cache profile.
	s.mu.Lock()
	gen := s.gen
	if m.sel.Observe(&s.tier, s.group.Len(), gen) {
		m.noteBackendTransition(s.tier.Tier)
	}
	tier := s.tier.Tier
	s.mu.Unlock()
	if e, ok := m.cache.get(planKey{id: id, gen: gen, pv: m.policyVersion(), bk: uint8(tier)}); ok {
		s.mu.Lock()
		m.sel.RecordLookup(&s.tier, true)
		s.mu.Unlock()
		return PlanInfo{ID: id, Gen: gen, Cached: true, Columns: e.columns, Blob: e.blob,
			Backend: tier.String(), Passes: e.passes}, nil
	}
	s.mu.Lock()
	m.sel.RecordLookup(&s.tier, false)
	gen = s.gen // may have moved past the missed generation; key consistently
	tier = s.tier.Tier
	source := s.group.Source()
	members := s.group.Members()
	chg := s.chg
	s.mu.Unlock()
	var (
		blob    []byte
		columns int
		passes  = 1
	)
	if tier == backend.TierBRSMN {
		blob, columns, err = m.replanOrPatch(s, gen, source, members, &chg)
	} else {
		blob, columns, passes, err = m.replanVia(tier, source, members)
	}
	if err != nil {
		return PlanInfo{}, err
	}
	m.noteBackendRoute(tier, columns)
	m.cache.put(planKey{id: id, gen: gen, pv: m.policyVersion(), bk: uint8(tier)}, blob, columns, passes)
	return PlanInfo{ID: id, Gen: gen, Cached: false, Columns: columns, Blob: blob,
		Backend: tier.String(), Passes: passes}, nil
}

func (m *Manager) planFor(id string, gen uint64, source int, members []int, tier backend.Tier) (PlanInfo, error) {
	k := planKey{id: id, gen: gen, pv: m.policyVersion(), bk: uint8(tier)}
	if e, ok := m.cache.get(k); ok {
		return PlanInfo{ID: id, Gen: gen, Cached: true, Columns: e.columns, Blob: e.blob,
			Backend: tier.String(), Passes: e.passes}, nil
	}
	var (
		blob    []byte
		columns int
		passes  = 1
		err     error
	)
	if tier == backend.TierBRSMN {
		blob, columns, err = m.replan(id, source, members)
	} else {
		blob, columns, passes, err = m.replanVia(tier, source, members)
	}
	if err != nil {
		return PlanInfo{}, err
	}
	m.noteBackendRoute(tier, columns)
	m.cache.put(k, blob, columns, passes)
	return PlanInfo{ID: id, Gen: gen, Cached: false, Columns: columns, Blob: blob,
		Backend: tier.String(), Passes: passes}, nil
}

// replanVia is the cache-miss path for the non-BRSMN tiers: the
// generic backend route — policy-filtered like any replan — serialized
// to the same plancodec form. Multi-pass programs encode as one column
// sequence; a pass boundary is where the column level restarts at 1.
func (m *Manager) replanVia(tier backend.Tier, source int, members []int) ([]byte, int, int, error) {
	b := m.backends[tier]
	if b == nil {
		return nil, 0, 0, fmt.Errorf("groupd: no backend for tier %q", tier)
	}
	start := time.Now()
	dests := make([][]int, m.cfg.N)
	dests[source] = members
	a, err := mcast.New(m.cfg.N, dests)
	if err != nil {
		return nil, 0, 0, err
	}
	if m.cfg.Policy != nil {
		a, _ = m.cfg.Policy.FilterAssignment(a)
	}
	r, err := b.Route(a)
	if err != nil {
		return nil, 0, 0, err
	}
	blob, err := plancodec.Encode(m.cfg.N, r.Columns)
	if err != nil {
		return nil, 0, 0, err
	}
	if m.met != nil {
		m.met.replans.Inc()
		m.met.replanDur.ObserveDuration(time.Since(start))
	}
	return blob, len(r.Columns), r.Passes, nil
}

// replan is the cache-miss path: a full O(n log^2 n) route of the
// single-group assignment — filtered around believed faults when a
// policy is set — flattened to physical columns and serialized. It
// routes on a pooled planner and flattens the transient result in
// place (Flatten copies every setting), so a replan burst reuses warm
// arenas instead of rebuilding the pipeline per group.
//
// When the manager has a tracer and this group's sampling counter
// trips, the route runs traced: the planner stamps its stage durations
// and paper-level quantities, flatten/encode land as extra spans, and
// the finished trace is recorded under the group ID.
func (m *Manager) replan(id string, source int, members []int) ([]byte, int, error) {
	start := time.Now()
	dests := make([][]int, m.cfg.N)
	dests[source] = members
	a, err := mcast.New(m.cfg.N, dests)
	if err != nil {
		return nil, 0, err
	}
	if m.cfg.Policy != nil {
		a, _ = m.cfg.Policy.FilterAssignment(a)
	}
	var tr *obs.RouteTrace
	if m.tracer.ShouldSample(id) {
		tr = &obs.RouteTrace{Key: id}
	}
	pool := m.nw.Planners()
	pl := pool.Get()
	var res *core.Result
	if tr != nil {
		res, err = pl.RouteTraced(a, tr)
	} else {
		res, err = pl.Route(a)
	}
	if err != nil {
		pool.Put(pl)
		return nil, 0, err
	}
	tFlatten := time.Now()
	cols, err := fabric.Flatten(res)
	pool.Put(pl)
	if err != nil {
		return nil, 0, err
	}
	if tr != nil {
		tr.AddStage("flatten", time.Since(tFlatten))
	}
	tEncode := time.Now()
	blob, err := plancodec.Encode(m.cfg.N, cols)
	if err != nil {
		return nil, 0, err
	}
	if tr != nil {
		tr.AddStage("encode", time.Since(tEncode))
		tr.Columns = len(cols)
		m.tracer.Record(tr)
	}
	if m.met != nil {
		m.met.replans.Inc()
		m.met.replanDur.ObserveDuration(time.Since(start))
	}
	return blob, len(cols), nil
}

// groupSnapshot is one group's membership frozen at epoch start.
type groupSnapshot struct {
	id      string
	source  int
	gen     uint64
	members []int
	tier    backend.Tier
}

// snapshot freezes every registered group's state, sorted by ID so epoch
// scheduling is deterministic for a given membership.
func (m *Manager) snapshot() []groupSnapshot {
	var out []groupSnapshot
	for _, sh := range m.shards {
		sh.mu.RLock()
		sessions := make([]*session, 0, len(sh.groups))
		for _, s := range sh.groups {
			sessions = append(sessions, s)
		}
		sh.mu.RUnlock()
		for _, s := range sessions {
			s.mu.Lock()
			out = append(out, groupSnapshot{
				id:      s.id,
				source:  s.group.Source(),
				gen:     s.gen,
				members: s.group.Members(),
				tier:    s.tier.Tier,
			})
			s.mu.Unlock()
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
