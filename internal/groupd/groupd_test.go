package groupd

import (
	"errors"
	"testing"
	"time"

	"brsmn/internal/plancodec"
	"brsmn/internal/rbn"
)

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Engine.Workers == 0 {
		cfg.Engine = rbn.Sequential
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestManagerConfigValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12, -8} {
		if _, err := NewManager(Config{N: n}); err == nil {
			t.Errorf("NewManager accepted n = %d", n)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	m := newTestManager(t, Config{N: 16})

	info, err := m.Create("conf", 2, []int{3, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "conf" || info.Source != 2 || info.Gen != 1 || info.Size != 3 {
		t.Fatalf("create info = %+v", info)
	}
	if _, err := m.Create("conf", 5, nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}

	u, err := m.Join("conf", 9)
	if err != nil {
		t.Fatal(err)
	}
	if u.Gen != 2 || u.Size != 4 {
		t.Fatalf("join update = %+v", u)
	}
	if _, err := m.Join("conf", 9); err == nil {
		t.Fatal("double join allowed")
	}
	u, err = m.Leave("conf", 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Gen != 3 || u.Size != 3 {
		t.Fatalf("leave update = %+v", u)
	}
	if _, err := m.Leave("conf", 3); err == nil {
		t.Fatal("double leave allowed")
	}

	got, err := m.Get("conf")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 7, 9}
	if len(got.Members) != len(want) {
		t.Fatalf("members = %v, want %v", got.Members, want)
	}
	for i := range want {
		if got.Members[i] != want[i] {
			t.Fatalf("members = %v, want %v", got.Members, want)
		}
	}
	if got.Sequence == "" {
		t.Fatal("empty sequence for non-empty group")
	}

	if m.Count() != 1 {
		t.Fatalf("count = %d", m.Count())
	}
	if err := m.Delete("conf"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("conf"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete: %v", err)
	}
	if _, err := m.Get("conf"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if _, err := m.Join("conf", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("join after delete: %v", err)
	}
}

func TestAutoIDAndList(t *testing.T) {
	m := newTestManager(t, Config{N: 8})
	a, err := m.Create("", 0, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Create("", 1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == "" || b.ID == "" || a.ID == b.ID {
		t.Fatalf("auto ids %q, %q", a.ID, b.ID)
	}
	list := m.List()
	if len(list) != 2 {
		t.Fatalf("list = %d entries", len(list))
	}
	if list[0].ID > list[1].ID {
		t.Fatalf("list unsorted: %q, %q", list[0].ID, list[1].ID)
	}
}

func TestCreateValidation(t *testing.T) {
	m := newTestManager(t, Config{N: 8})
	if _, err := m.Create("x", 8, nil); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := m.Create("x", 0, []int{99}); err == nil {
		t.Fatal("out-of-range member accepted")
	}
	if _, err := m.Create("x", 0, []int{1, 1}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	// Failed creates must not leak into the registry.
	if m.Count() != 0 {
		t.Fatalf("count = %d after failed creates", m.Count())
	}
}

func TestPlanCacheSemantics(t *testing.T) {
	m := newTestManager(t, Config{N: 16})
	if _, err := m.Create("g", 3, []int{1, 5, 10}); err != nil {
		t.Fatal(err)
	}

	p1, err := m.Plan("g")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cached {
		t.Fatal("first plan claimed cached")
	}
	n, cols, err := plancodec.Decode(p1.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 || len(cols) != p1.Columns {
		t.Fatalf("decoded n=%d columns=%d, want 16/%d", n, len(cols), p1.Columns)
	}

	p2, err := m.Plan("g")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Cached || p2.Gen != p1.Gen {
		t.Fatalf("second plan = %+v, want cache hit at gen %d", p2, p1.Gen)
	}

	// A membership change invalidates: next plan is a miss at a new gen.
	if _, err := m.Join("g", 12); err != nil {
		t.Fatal(err)
	}
	p3, err := m.Plan("g")
	if err != nil {
		t.Fatal(err)
	}
	if p3.Cached || p3.Gen != p1.Gen+1 {
		t.Fatalf("post-join plan = %+v", p3)
	}

	st := m.CacheStats()
	if st.Hits != 1 || st.Misses != 2 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	m := newTestManager(t, Config{N: 8, CacheSize: 2})
	for _, id := range []string{"a", "b", "c"} {
		if _, err := m.Create(id, 0, []int{1, 2}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Plan(id); err != nil {
			t.Fatal(err)
		}
	}
	st := m.CacheStats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want size 2 / 1 eviction", st)
	}
	// "a" was evicted (LRU): replanning it misses.
	p, err := m.Plan("a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Cached {
		t.Fatal("evicted plan served from cache")
	}
}

func TestRunEpochRoundsAndCacheWarm(t *testing.T) {
	m := newTestManager(t, Config{N: 16})
	// Three groups; a and b conflict on output 5, c is disjoint.
	mustCreate(t, m, "a", 0, []int{1, 5})
	mustCreate(t, m, "b", 3, []int{5, 9})
	mustCreate(t, m, "c", 7, []int{2, 11})
	mustCreate(t, m, "empty", 4, nil) // skipped: nothing to route

	rep, err := m.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 || rep.Groups != 3 || rep.Fanout != 6 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("%d rounds for one output conflict, want 2", len(rep.Rounds))
	}
	for _, rr := range rep.Rounds {
		for _, id := range rr.GroupIDs {
			g, err := m.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range g.Members {
				if rr.Deliveries[d] != g.Source {
					t.Fatalf("round %v: output %d got %d, want %d", rr.GroupIDs, d, rr.Deliveries[d], g.Source)
				}
			}
		}
	}

	// Second epoch with no churn: every plan hits.
	before := m.CacheStats()
	rep2, err := m.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	after := rep2.Cache
	if after.Misses != before.Misses {
		t.Fatalf("unchanged epoch replanned: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits != before.Hits+3 {
		t.Fatalf("unchanged epoch hits %d -> %d, want +3", before.Hits, after.Hits)
	}

	// Churn one group: exactly one replan next epoch.
	if _, err := m.Join("a", 14); err != nil {
		t.Fatal(err)
	}
	rep3, err := m.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Cache.Misses != after.Misses+1 {
		t.Fatalf("churned epoch misses %d -> %d, want +1", after.Misses, rep3.Cache.Misses)
	}
	if m.LastEpoch().Epoch != 3 || m.Epoch() != 3 {
		t.Fatalf("epoch counter = %d / report %d", m.Epoch(), m.LastEpoch().Epoch)
	}
}

func TestEpochEmptyRegistry(t *testing.T) {
	m := newTestManager(t, Config{N: 8})
	rep, err := m.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups != 0 || len(rep.Rounds) != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestThresholdDrivenEpoch(t *testing.T) {
	m := newTestManager(t, Config{N: 8, EpochThreshold: 2})
	mustCreate(t, m, "g", 0, []int{3}) // 2 changes: create + 1 member
	deadline := time.Now().Add(5 * time.Second)
	for m.Epoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("threshold epoch never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if rep := m.LastEpoch(); rep == nil || rep.Groups != 1 {
		t.Fatalf("report = %+v", m.LastEpoch())
	}
}

func TestTimerDrivenEpochAndClose(t *testing.T) {
	m, err := NewManager(Config{N: 8, Engine: rbn.Sequential, EpochPeriod: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("g", 1, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Epoch() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("timer epochs never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("second close errored:", err)
	}
	if _, err := m.Create("late", 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
	if _, err := m.RunEpoch(); !errors.Is(err, ErrClosed) {
		t.Fatalf("epoch after close: %v", err)
	}
}

func mustCreate(t *testing.T, m *Manager, id string, source int, members []int) {
	t.Helper()
	if _, err := m.Create(id, source, members); err != nil {
		t.Fatal(err)
	}
}
