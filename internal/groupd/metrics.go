package groupd

// Metrics registration for the group manager. All series live under the
// brsmn_ prefix and map onto the paper's accounting where one exists:
//
//	brsmn_epoch_duration_seconds      histogram  one reroute epoch, wall-clock
//	brsmn_epoch_rounds                histogram  conflict-free rounds per epoch
//	brsmn_epochs_total{result=...}    counter    ok | error
//	brsmn_replan_duration_seconds     histogram  cache-miss O(n log² n) replan
//	brsmn_replans_total               counter    cache-miss replans
//	brsmn_plan_patches_total{result}  counter    patched | full serving-path misses
//	brsmn_plan_patch_duration_seconds histogram  patched Plan: replay+flatten+encode
//	brsmn_plan_patch_level            histogram  topmost replanned level per delta
//	brsmn_plan_patch_delta_changes    histogram  changes replayed per patched Plan
//	brsmn_plan_cache_ops_total{op=..} counter    hit | miss | eviction | invalidation
//	brsmn_plan_cache_entries          gauge      live entries (capacity as its own gauge)
//	brsmn_groups                      gauge      registered groups
//	brsmn_pending_changes             gauge      membership churn since last epoch
//	brsmn_planner_pool_ops_total{op}  counter    get | new | put | shrink
//	brsmn_planner_arena_bytes{kind}   gauge      retained high-water | recent need
//
// Counters that subsystems already keep atomically (cache, pool) are
// exposed as scrape-time funcs, so serving paths pay nothing extra.

import (
	"brsmn/internal/backend"
	"brsmn/internal/core"
	"brsmn/internal/obs"
)

// managerMetrics holds the instruments the manager updates inline.
type managerMetrics struct {
	epochDur    *obs.Histogram
	epochRounds *obs.Histogram
	epochsOK    *obs.Counter
	epochsErr   *obs.Counter
	replans     *obs.Counter
	replanDur   *obs.Histogram
	patched     *obs.Counter
	patchFull   *obs.Counter
	patchDur    *obs.Histogram
	patchLevel  *obs.Histogram
	patchDelta  *obs.Histogram

	// Per-backend-tier accounting, indexed by backend.Tier numeric
	// value (index 0, TierAuto, stays nil).
	backendRoutes   [4]*obs.Counter
	backendSwitches [4]*obs.Counter
	backendDepth    [4]*obs.Counter
	backendTrans    [4]*obs.Counter
}

// registerMetrics wires the manager's series into reg and returns the
// inline instruments. Config.MetricsLabel (e.g. `shard="3"`) is folded
// into every series name, so several managers share one registry
// without colliding — families, and with them the HELP/TYPE headers,
// stay shared.
func (m *Manager) registerMetrics(reg *obs.Registry) *managerMetrics {
	lbl := func(name string) string { return obs.WithLabel(name, m.cfg.MetricsLabel) }
	met := &managerMetrics{
		epochDur: reg.Histogram(lbl("brsmn_epoch_duration_seconds"),
			"Wall-clock duration of one reroute epoch.", obs.SecondsBuckets()),
		epochRounds: reg.Histogram(lbl("brsmn_epoch_rounds"),
			"Conflict-free rounds scheduled per epoch.", []float64{1, 2, 4, 8, 16, 32, 64}),
		epochsOK: reg.Counter(lbl(`brsmn_epochs_total{result="ok"}`),
			"Completed reroute epochs by result."),
		epochsErr: reg.Counter(lbl(`brsmn_epochs_total{result="error"}`),
			"Completed reroute epochs by result."),
		replans: reg.Counter(lbl("brsmn_replans_total"),
			"Cache-miss full replans (O(n log^2 n) routes)."),
		replanDur: reg.Histogram(lbl("brsmn_replan_duration_seconds"),
			"Wall-clock duration of one cache-miss replan, flatten and encode included.", obs.SecondsBuckets()),
		patched: reg.Counter(lbl(`brsmn_plan_patches_total{result="patched"}`),
			"Plan cache misses served by rolling the retained route forward with incremental patches vs by a full replan."),
		patchFull: reg.Counter(lbl(`brsmn_plan_patches_total{result="full"}`),
			"Plan cache misses served by rolling the retained route forward with incremental patches vs by a full replan."),
		patchDur: reg.Histogram(lbl("brsmn_plan_patch_duration_seconds"),
			"Wall-clock duration of one patched Plan: delta replay, flatten and encode included.", obs.SecondsBuckets()),
		patchLevel: reg.Histogram(lbl("brsmn_plan_patch_level"),
			"Topmost recursion level replanned per applied patch delta (deeper levels replan fewer outputs).",
			[]float64{2, 3, 4, 5, 6, 7, 8, 10, 12, 16}),
		patchDelta: reg.Histogram(lbl("brsmn_plan_patch_delta_changes"),
			"Pending membership changes replayed per patched Plan.", []float64{1, 2, 4, 8, 16}),
	}

	for _, t := range backend.Tiers() {
		name := t.String()
		met.backendRoutes[t] = reg.Counter(lbl(`brsmn_backend_routes_total{backend="`+name+`"}`),
			"Plans computed per backend tier (cache-miss routes).")
		met.backendSwitches[t] = reg.Counter(lbl(`brsmn_backend_switches_total{backend="`+name+`"}`),
			"Switch settings programmed per backend tier, summed over computed plans.")
		met.backendDepth[t] = reg.Counter(lbl(`brsmn_backend_depth_total{backend="`+name+`"}`),
			"Column depth traversed per backend tier, summed over computed plans (multi-pass tiers count every pass).")
		met.backendTrans[t] = reg.Counter(lbl(`brsmn_backend_transitions_total{backend="`+name+`"}`),
			"Backend tier transitions, labelled by the tier transitioned to.")
	}

	cacheOp := func(name string, read func(CacheStats) uint64) {
		reg.CounterFunc(lbl(`brsmn_plan_cache_ops_total{op="`+name+`"}`),
			"Plan cache operations by kind.",
			func() float64 { return float64(read(m.cache.stats())) })
	}
	cacheOp("hit", func(s CacheStats) uint64 { return s.Hits })
	cacheOp("miss", func(s CacheStats) uint64 { return s.Misses })
	cacheOp("eviction", func(s CacheStats) uint64 { return s.Evictions })
	cacheOp("invalidation", func(s CacheStats) uint64 { return s.Invalidations })
	reg.GaugeFunc(lbl("brsmn_plan_cache_entries"), "Live plan cache entries.",
		func() float64 { return float64(m.cache.stats().Size) })
	reg.GaugeFunc(lbl("brsmn_plan_cache_capacity"), "Plan cache capacity in entries.",
		func() float64 { return float64(m.cfg.CacheSize) })

	reg.GaugeFunc(lbl("brsmn_groups"), "Registered multicast groups.",
		func() float64 { return float64(m.Count()) })
	reg.GaugeFunc(lbl("brsmn_pending_changes"), "Membership changes since the last epoch began.",
		func() float64 { return float64(m.Pending()) })
	reg.CounterFunc(lbl("brsmn_epoch_number"), "Completed epoch count.",
		func() float64 { return float64(m.Epoch()) })

	pool := m.nw.Planners()
	poolOp := func(name string, read func(core.PoolStats) uint64) {
		reg.CounterFunc(lbl(`brsmn_planner_pool_ops_total{op="`+name+`"}`),
			"Planner pool operations by kind (new = pool miss).",
			func() float64 { return float64(read(pool.Stats())) })
	}
	poolOp("get", func(s core.PoolStats) uint64 { return s.Gets })
	poolOp("new", func(s core.PoolStats) uint64 { return s.News })
	poolOp("put", func(s core.PoolStats) uint64 { return s.Puts })
	poolOp("shrink", func(s core.PoolStats) uint64 { return s.Shrinks })
	reg.GaugeFunc(lbl(`brsmn_planner_arena_bytes{kind="highwater"}`),
		"Planner arena retention: observed high-water and decayed recent need.",
		func() float64 { return float64(pool.Stats().RetainedHighWaterBytes) })
	reg.GaugeFunc(lbl(`brsmn_planner_arena_bytes{kind="need"}`),
		"Planner arena retention: observed high-water and decayed recent need.",
		func() float64 { return float64(pool.Stats().RecentNeedBytes) })

	// Recovery series exist only on durable managers. m.recovered is
	// written once in NewManager before registration, so scrape-time
	// reads are race-free.
	if m.cfg.Store != nil {
		reg.GaugeFunc(lbl("brsmn_recovery_groups"),
			"Groups live after the last boot-time recovery.",
			func() float64 { return float64(m.recovered.Groups) })
		reg.GaugeFunc(lbl("brsmn_recovery_replayed_records"),
			"WAL records replayed past the snapshot during the last boot-time recovery.",
			func() float64 { return float64(m.recovered.Records) })
		reg.GaugeFunc(lbl("brsmn_recovery_plans"),
			"Warm plan-cache entries restored by the last boot-time recovery.",
			func() float64 { return float64(m.recovered.Plans) })
		reg.GaugeFunc(lbl("brsmn_recovery_snapshot_loaded"),
			"Whether a snapshot seeded the last boot-time recovery (0 or 1).",
			func() float64 {
				if m.recovered.SnapshotLoaded {
					return 1
				}
				return 0
			})
		reg.GaugeFunc(lbl("brsmn_recovery_duration_seconds"),
			"Wall-clock duration of the last boot-time recovery.",
			func() float64 { return m.recovered.Duration.Seconds() })
	}
	return met
}

// noteBackendRoute accounts one computed plan against its tier: the
// route itself, the switch settings it programs (columns x n/2), and
// the column depth it traverses.
func (m *Manager) noteBackendRoute(t backend.Tier, columns int) {
	if m.met == nil || int(t) >= len(m.met.backendRoutes) || m.met.backendRoutes[t] == nil {
		return
	}
	m.met.backendRoutes[t].Inc()
	m.met.backendSwitches[t].Add(uint64(columns) * uint64(m.cfg.N/2))
	m.met.backendDepth[t].Add(uint64(columns))
}

// noteBackendTransition accounts one tier transition under the tier
// transitioned to.
func (m *Manager) noteBackendTransition(t backend.Tier) {
	if m.met == nil || int(t) >= len(m.met.backendTrans) || m.met.backendTrans[t] == nil {
		return
	}
	m.met.backendTrans[t].Inc()
}
