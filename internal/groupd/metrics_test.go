package groupd

import (
	"strings"
	"testing"

	"brsmn/internal/obs"
)

// TestManagerMetricsAndTracing drives a full epoch on an instrumented
// manager and checks that every advertised series family lands in the
// Prometheus exposition and that the sampled replan trace carries the
// planning quantities.
func TestManagerMetricsAndTracing(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTraceRecorder(1) // sample every replan
	m := newTestManager(t, Config{N: 16, Metrics: reg, Tracer: tracer})

	if _, err := m.Create("conf", 2, []int{3, 4, 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Plan("conf"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Plan("conf"); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, err := m.RunEpoch(); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, family := range []string{
		"brsmn_epoch_duration_seconds",
		"brsmn_epoch_rounds",
		"brsmn_epochs_total",
		"brsmn_replans_total",
		"brsmn_replan_duration_seconds",
		"brsmn_plan_cache_ops_total",
		"brsmn_plan_cache_entries",
		"brsmn_plan_cache_capacity",
		"brsmn_groups",
		"brsmn_pending_changes",
		"brsmn_epoch_number",
		"brsmn_planner_pool_ops_total",
		"brsmn_planner_arena_bytes",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("series %s missing from exposition", family)
		}
	}
	for _, line := range []string{
		`brsmn_epochs_total{result="ok"} 1`,
		`brsmn_plan_cache_ops_total{op="hit"}`,
		`brsmn_plan_cache_ops_total{op="miss"}`,
		`brsmn_groups 1`,
		`brsmn_epoch_number 1`,
	} {
		if !strings.Contains(text, line) {
			t.Errorf("exposition missing %q:\n%s", line, text)
		}
	}

	tr := tracer.Last("conf")
	if tr == nil {
		t.Fatal("no trace recorded for conf at sample rate 1")
	}
	if tr.Key != "conf" || tr.N != 16 || tr.Fanout != 3 || tr.Settings <= 0 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.TotalNs <= 0 {
		t.Fatalf("trace untimed: %+v", tr)
	}
	// The flatten and encode stages ride in Extra.
	var flatten, encode bool
	for _, s := range tr.Extra {
		flatten = flatten || s.Name == "flatten"
		encode = encode || s.Name == "encode"
	}
	if !flatten || !encode {
		t.Fatalf("flatten/encode stages missing: %+v", tr.Extra)
	}
}

// TestManagerWithoutMetrics makes sure the instrumentation is fully
// optional: a bare manager runs epochs with nil metrics and tracer.
func TestManagerWithoutMetrics(t *testing.T) {
	m := newTestManager(t, Config{N: 8})
	if _, err := m.Create("g", 0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if m.met != nil || m.tracer != nil {
		t.Fatal("bare manager grew instruments")
	}
}
