package groupd

// Group migration primitives — the manager-level half of cluster drain.
//
// A draining node exports its groups in the PR 6 snapshot vocabulary
// (store.GroupState + store.PlanState, warm current-generation plan
// blobs included) and the gaining node installs them, so a migrated
// group arrives with its generation intact and its first Plan request
// is a warm, byte-identical cache hit. Both halves are durable on
// managers with a store: Install appends the same create/delete records
// a snapshot replay would produce, and the gen-guarded delete on the
// losing side closes the export-vs-mutation race without distributed
// locking.

import (
	"errors"
	"fmt"

	"brsmn"
	"brsmn/internal/backend"
	"brsmn/internal/store"
)

// ErrGenMismatch reports a gen-guarded delete that lost a race with a
// concurrent mutation: the group's generation moved past the exported
// one, so the caller must re-export and retry.
var ErrGenMismatch = errors.New("groupd: generation changed since export")

// Export freezes every registered group into snapshot form, paired with
// its warm current-generation healthy-fabric plan when the cache holds
// one (plans[i] is nil otherwise). The two slices are index-aligned.
func (m *Manager) Export() ([]store.GroupState, []*store.PlanState) {
	snaps := m.snapshot()
	groups := make([]store.GroupState, 0, len(snaps))
	plans := make([]*store.PlanState, 0, len(snaps))
	for _, sn := range snaps {
		groups = append(groups, store.GroupState{ID: sn.id, Source: sn.source, Gen: sn.gen, Members: sn.members})
		plans = append(plans, m.peekPlan(sn.id, sn.gen))
	}
	return groups, plans
}

// ExportGroup freezes one group (plan may be nil); used to re-export
// after a gen-guarded delete reports a racing mutation.
func (m *Manager) ExportGroup(id string) (store.GroupState, *store.PlanState, error) {
	s, err := m.sessionFor(id)
	if err != nil {
		return store.GroupState{}, nil, err
	}
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		return store.GroupState{}, nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	g := store.GroupState{ID: s.id, Source: s.group.Source(), Gen: s.gen, Members: s.group.Members()}
	s.mu.Unlock()
	return g, m.peekPlan(g.ID, g.Gen), nil
}

// peekPlan harvests the warm healthy-fabric (pv 0) BRSMN-tier plan for
// (id, gen) without skewing cache stats or recency — the same entry a
// snapshot would carry. Plans from the other tiers don't travel: the
// backend preference is serving state, so a migrated or recovered
// group starts on the destination's default tier and BRSMN is the only
// tier guaranteed to hit again.
func (m *Manager) peekPlan(id string, gen uint64) *store.PlanState {
	if e, ok := m.cache.peek(planKey{id: id, gen: gen, pv: 0, bk: uint8(backend.TierBRSMN)}); ok {
		return &store.PlanState{ID: id, Gen: gen, Columns: e.columns, Blob: e.blob}
	}
	return nil
}

// Install registers a migrated group with its generation intact,
// seeding the plan cache with its warm blob when one travelled along.
// If the group already exists locally, the higher generation wins: an
// incoming gen <= the local one is a no-op (the local copy is at least
// as fresh), a higher one replaces the local copy. Durable managers log
// the same delete/create records a replayed drain would need.
func (m *Manager) Install(g store.GroupState, plan *store.PlanState) error {
	if m.closed.Load() {
		return ErrClosed
	}
	gen := g.Gen
	if gen == 0 {
		gen = 1
	}
	ng, err := brsmn.NewGroup(m.cfg.N, g.Source)
	if err != nil {
		return fmt.Errorf("groupd: install %q: %w", g.ID, err)
	}
	for _, d := range g.Members {
		if err := ng.Join(d); err != nil {
			return fmt.Errorf("groupd: install %q member %d: %w", g.ID, d, err)
		}
	}
	sh := m.shardFor(g.ID)
	sh.mu.Lock()
	if old, ok := sh.groups[g.ID]; ok {
		old.mu.Lock()
		oldGen := old.gen
		if gen <= oldGen {
			// Local copy is at least as fresh; keep it. Still seed the
			// plan when the generations agree and we have nothing cached.
			old.mu.Unlock()
			sh.mu.Unlock()
			if plan != nil && gen == oldGen {
				m.installPlan(g.ID, gen, plan)
			}
			return nil
		}
		// Replace: log the supersession so replay reproduces it.
		if err := m.appendRecord(store.Record{Op: store.OpDelete, Group: g.ID, Gen: oldGen}); err != nil {
			old.mu.Unlock()
			sh.mu.Unlock()
			return err
		}
		old.gone = true
		oldTier := old.tier.Tier
		old.mu.Unlock()
		delete(sh.groups, g.ID)
		m.cache.invalidate(planKey{id: g.ID, gen: oldGen, pv: m.policyVersion(), bk: uint8(oldTier)})
	}
	if err := m.appendRecord(store.Record{Op: store.OpCreate, Group: g.ID, Source: g.Source, Gen: gen, Members: g.Members}); err != nil {
		sh.mu.Unlock()
		return err
	}
	s := &session{id: g.ID, group: ng, gen: gen}
	m.sel.Init(&s.tier, m.defaultPref(), ng.Len(), gen)
	sh.groups[g.ID] = s
	sh.mu.Unlock()
	if plan != nil {
		m.installPlan(g.ID, gen, plan)
	}
	m.noteChange(1 + len(g.Members))
	return nil
}

// installPlan seeds the cache with a migrated warm plan under the
// healthy-fabric version and BRSMN tier — the same key snapshot
// recovery uses, so a clean fabric's first Plan after migration is a
// byte-identical hit (when the group lands on the BRSMN tier).
func (m *Manager) installPlan(id string, gen uint64, plan *store.PlanState) {
	m.cache.put(planKey{id: id, gen: gen, pv: 0, bk: uint8(backend.TierBRSMN)}, plan.Blob, plan.Columns, 1)
}

// DeleteIfGen unregisters the group only if its generation still equals
// gen — the losing side of a migration. ErrGenMismatch means a mutation
// landed after the export; the caller re-exports and retries, so the
// transferred copy never silently drops a write.
func (m *Manager) DeleteIfGen(id string, gen uint64) error {
	if m.closed.Load() {
		return ErrClosed
	}
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.groups[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.mu.Lock()
	if s.gen != gen {
		cur := s.gen
		s.mu.Unlock()
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q at gen %d, exported %d", ErrGenMismatch, id, cur, gen)
	}
	if err := m.appendRecord(store.Record{Op: store.OpDelete, Group: id, Gen: gen}); err != nil {
		s.mu.Unlock()
		sh.mu.Unlock()
		return err
	}
	s.gone = true
	tier := s.tier.Tier
	s.mu.Unlock()
	delete(sh.groups, id)
	sh.mu.Unlock()
	m.cache.invalidate(planKey{id: id, gen: gen, pv: m.policyVersion(), bk: uint8(tier)})
	m.noteChange(1)
	return nil
}
