package groupd

// Incremental plan patching for the serving path. A Plan cache miss is
// usually a group that moved one or two generations since it was last
// planned; rerouting it from scratch repeats O(n log^2 n) work whose
// inputs barely changed. The manager therefore retains one dedicated
// planner holding the most recently served group's full route and, when
// the next miss is for the same group only a few generations later,
// replays the pending joins/leaves from the session's change ring as
// core.RoutePatch calls — O(log n) switch columns per change when the
// change sits deep in the tag tree — and re-encodes the patched result.
// Any mismatch (different group, ring overrun, structural change, a
// fault policy that filtered the assignment or moved its version) falls
// back to a full replan, which also re-seeds the retained route so the
// next miss can patch again.

import (
	"sync"
	"time"

	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/plancodec"
)

// chgRing is the per-session change-ring depth: how many generations of
// membership history a session keeps for the patch path to replay. It
// caps Config.PatchThreshold.
const chgRing = 16

// memberChange is one recorded join/leave: the generation it produced
// and the destination it moved.
type memberChange struct {
	gen  uint64
	dest int32
	join bool
}

// patchState is the manager's retained incremental route: a dedicated
// planner (never pooled, so its arenas and retained levels survive
// between Plan calls) plus the identity of the route it holds. The
// session is compared by pointer, so a deleted-and-recreated group can
// never inherit a stale route under a reused ID. The mutex is only ever
// TryLock'd: a second concurrent miss replans through the pool instead
// of queueing behind the patcher.
type patchState struct {
	mu   sync.Mutex
	pl   *core.Planner
	sess *session
	gen  uint64
	pv   uint64 // policy version the route was planned under
	ok   bool   // pl holds a verified route of sess at gen
}

// replanOrPatch serves a Plan cache miss: by incremental patches when
// the retained route can be rolled forward to (s, gen), by a full
// replan otherwise.
func (m *Manager) replanOrPatch(s *session, gen uint64, source int, members []int, chg *[chgRing]memberChange) ([]byte, int, error) {
	ps := &m.patch
	if m.cfg.PatchThreshold <= 0 || !ps.mu.TryLock() {
		return m.replan(s.id, source, members)
	}
	defer ps.mu.Unlock()
	if blob, cols, ok := m.tryPatch(ps, s, gen, source, chg); ok {
		return blob, cols, nil
	}
	if m.tracer.ShouldSample(s.id) {
		// Keep sampled replans on the traced pool path; the retained
		// route stays where it is and can still patch a later miss.
		return m.replan(s.id, source, members)
	}

	// Full route on the dedicated planner, so the next miss for this
	// group starts from a patchable state.
	start := time.Now()
	dests := make([][]int, m.cfg.N)
	dests[source] = members
	a, err := mcast.New(m.cfg.N, dests)
	if err != nil {
		return nil, 0, err
	}
	// A fault policy that actually rewrites the assignment makes the
	// route unpatchable: RoutePatch replays raw membership changes and
	// knows nothing about quarantined ports. With no believed faults the
	// filter is the identity and patching stays sound for as long as the
	// policy version — read before filtering, so a detection racing this
	// route can only make the retained state look stale, never fresh —
	// is unchanged.
	pv, patchable := uint64(0), true
	if m.cfg.Policy != nil {
		pv = m.cfg.Policy.Version()
		filtered, rejected := m.cfg.Policy.FilterAssignment(a)
		patchable = rejected == nil && sameAssignment(a, filtered)
		a = filtered
	}
	if ps.pl == nil {
		if ps.pl, err = core.NewPlanner(m.cfg.N, m.cfg.Engine); err != nil {
			return nil, 0, err
		}
	}
	ps.ok = false
	res, err := ps.pl.Route(a)
	if err != nil {
		return nil, 0, err
	}
	blob, cols, err := m.flattenEncode(res)
	if err != nil {
		return nil, 0, err
	}
	ps.sess, ps.gen, ps.pv, ps.ok = s, gen, pv, patchable
	if m.met != nil {
		m.met.patchFull.Inc()
		m.met.replans.Inc()
		m.met.replanDur.ObserveDuration(time.Since(start))
	}
	return blob, cols, nil
}

// tryPatch rolls the retained route forward from ps.gen to gen by
// replaying the session's change ring, and re-encodes the patched
// configuration. A false return means the caller must replan fully;
// the retained route is marked invalid if it was touched.
func (m *Manager) tryPatch(ps *patchState, s *session, gen uint64, source int, chg *[chgRing]memberChange) ([]byte, int, bool) {
	if !ps.ok || ps.sess != s || gen <= ps.gen || gen-ps.gen > uint64(m.cfg.PatchThreshold) ||
		ps.pv != m.policyVersion() {
		return nil, 0, false
	}
	start := time.Now()
	var res *core.Result
	for g := ps.gen + 1; g <= gen; g++ {
		c := chg[g%chgRing]
		if c.gen != g {
			// The ring wrapped past this generation (or the session was
			// restored without history): the delta is unreplayable.
			ps.ok = false
			return nil, 0, false
		}
		r, lvl, err := ps.pl.RoutePatch(source, int(c.dest), c.join)
		if err != nil {
			// ErrPatchFallback (structural change) or a routing error
			// mid-replay; either way the full replan rebuilds the state.
			ps.ok = false
			return nil, 0, false
		}
		res = r
		if m.met != nil {
			m.met.patchLevel.Observe(float64(lvl))
		}
	}
	delta := gen - ps.gen
	ps.gen = gen
	blob, cols, err := m.flattenEncode(res)
	if err != nil {
		ps.ok = false
		return nil, 0, false
	}
	if m.met != nil {
		m.met.patched.Inc()
		m.met.patchDelta.Observe(float64(delta))
		m.met.patchDur.ObserveDuration(time.Since(start))
	}
	return blob, cols, true
}

// sameAssignment reports whether a fault policy's filter left the
// assignment intact — same size and byte-for-byte equal destination
// sets. O(total destinations), negligible next to the full route it
// gates.
func sameAssignment(a, b mcast.Assignment) bool {
	if a.N != b.N || len(a.Dests) != len(b.Dests) {
		return false
	}
	for i := range a.Dests {
		if len(a.Dests[i]) != len(b.Dests[i]) {
			return false
		}
		for j := range a.Dests[i] {
			if a.Dests[i][j] != b.Dests[i][j] {
				return false
			}
		}
	}
	return true
}

// flattenEncode turns a routed result into the cached plan form:
// physical columns, then the plancodec blob. Identical inputs encode
// identically, so a patched route and a full replan of the same
// membership produce byte-equal blobs.
func (m *Manager) flattenEncode(res *core.Result) ([]byte, int, error) {
	cols, err := fabric.Flatten(res)
	if err != nil {
		return nil, 0, err
	}
	blob, err := plancodec.Encode(m.cfg.N, cols)
	if err != nil {
		return nil, 0, err
	}
	return blob, len(cols), nil
}
