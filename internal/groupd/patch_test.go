package groupd

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"brsmn/internal/mcast"
	"brsmn/internal/obs"
)

// TestPlanPatchMatchesFullReplan is the serving-path differential: two
// managers see the same churn, one with incremental patching and one
// with it disabled, and every Plan blob must be byte-identical. The
// churn mixes single steps (patchable), bursts past the threshold
// (fallback), deletes and recreates under a reused ID (the stale-route
// trap), and a second group competing for the retained planner.
func TestPlanPatchMatchesFullReplan(t *testing.T) {
	const n = 64
	reg := obs.NewRegistry()
	patched := newTestManager(t, Config{N: n, Metrics: reg})
	full := newTestManager(t, Config{N: n, PatchThreshold: -1})
	rng := rand.New(rand.NewSource(9))

	member := map[string]map[int]bool{}
	create := func(id string, src int) {
		mustCreate(t, patched, id, src, nil)
		mustCreate(t, full, id, src, nil)
		member[id] = map[int]bool{}
	}
	flip := func(id string, d int) {
		if member[id][d] {
			if _, err := patched.Leave(id, d); err != nil {
				t.Fatal(err)
			}
			if _, err := full.Leave(id, d); err != nil {
				t.Fatal(err)
			}
			delete(member[id], d)
		} else {
			if _, err := patched.Join(id, d); err != nil {
				t.Fatal(err)
			}
			if _, err := full.Join(id, d); err != nil {
				t.Fatal(err)
			}
			member[id][d] = true
		}
	}
	check := func(id string) {
		t.Helper()
		got, err := patched.Plan(id)
		if err != nil {
			t.Fatalf("patched Plan(%q): %v", id, err)
		}
		want, err := full.Plan(id)
		if err != nil {
			t.Fatalf("full Plan(%q): %v", id, err)
		}
		if !bytes.Equal(got.Blob, want.Blob) || got.Columns != want.Columns {
			t.Fatalf("Plan(%q) diverged: %d columns %d bytes vs %d columns %d bytes",
				id, got.Columns, len(got.Blob), want.Columns, len(want.Blob))
		}
	}

	create("a", 0)
	create("b", 1)
	for step := 0; step < 120; step++ {
		id := "a"
		if rng.Intn(4) == 0 {
			id = "b"
		}
		burst := 1
		switch rng.Intn(10) {
		case 0:
			burst = 10 // past the default threshold: must fall back
		case 1:
			burst = 3
		}
		for i := 0; i < burst; i++ {
			flip(id, rng.Intn(n))
		}
		check(id)
		if step == 60 {
			// Recreate "a" under the same ID: the retained route keyed
			// by the old session must not leak into the new group.
			if err := patched.Delete("a"); err != nil {
				t.Fatal(err)
			}
			if err := full.Delete("a"); err != nil {
				t.Fatal(err)
			}
			create("a", 5)
			flip("a", 7)
			check("a")
		}
	}

	hit := patched.met.patched.Value()
	miss := patched.met.patchFull.Value()
	if hit == 0 {
		t.Fatalf("churn never took the patch path (full=%d)", miss)
	}
	if miss == 0 {
		t.Fatalf("churn never fell back to a full replan (patched=%d)", hit)
	}
}

// TestPlanPatchDisabled pins the opt-out: a negative threshold keeps
// Plan on the pool replan path and never seeds the retained route.
func TestPlanPatchDisabled(t *testing.T) {
	const n = 16
	m := newTestManager(t, Config{N: n, PatchThreshold: -1})
	mustCreate(t, m, "g", 0, []int{1, 2})
	if _, err := m.Plan("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Join("g", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Plan("g"); err != nil {
		t.Fatal(err)
	}
	if m.patch.ok || m.patch.pl != nil {
		t.Fatalf("disabled patching still seeded the retained route: %+v", m.patch.ok)
	}
}

// TestPlanPatchThresholdCap pins the config normalization: the default
// is 8 and the ring depth caps explicit values.
func TestPlanPatchThresholdCap(t *testing.T) {
	c := Config{N: 8}
	c.applyDefaults()
	if c.PatchThreshold != 8 {
		t.Fatalf("default PatchThreshold = %d, want 8", c.PatchThreshold)
	}
	c = Config{N: 8, PatchThreshold: 100}
	c.applyDefaults()
	if c.PatchThreshold != chgRing {
		t.Fatalf("PatchThreshold = %d, want capped at %d", c.PatchThreshold, chgRing)
	}
}

// fakePatchPolicy is a controllable FaultPolicy: drop < 0 is the
// healthy identity filter; drop >= 0 strips that output from every
// destination set (a localized fault).
type fakePatchPolicy struct {
	mu      sync.Mutex
	version uint64
	drop    int
}

func (p *fakePatchPolicy) FilterAssignment(a mcast.Assignment) (mcast.Assignment, []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.drop < 0 {
		return a, nil
	}
	dests := make([][]int, len(a.Dests))
	hit := false
	for i, ds := range a.Dests {
		for _, d := range ds {
			if d == p.drop {
				hit = true
				continue
			}
			dests[i] = append(dests[i], d)
		}
	}
	if !hit {
		return mcast.Assignment{N: a.N, Dests: dests}, nil
	}
	return mcast.Assignment{N: a.N, Dests: dests}, []int{p.drop}
}

func (p *fakePatchPolicy) Version() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version
}

func (p *fakePatchPolicy) AfterEpoch(int64) {}

func (p *fakePatchPolicy) set(version uint64, drop int) {
	p.mu.Lock()
	p.version, p.drop = version, drop
	p.mu.Unlock()
}

// TestPlanPatchWithPolicy pins the fault-policy interaction: patching
// runs while the filter is a healthy no-op, stops (full replans,
// filtered plans byte-identical to a non-patching manager's) while a
// fault is localized, and resumes after the fault clears and the
// version moves again.
func TestPlanPatchWithPolicy(t *testing.T) {
	const n = 64
	reg := obs.NewRegistry()
	pol := &fakePatchPolicy{drop: -1}
	polFull := &fakePatchPolicy{drop: -1}
	m := newTestManager(t, Config{N: n, Metrics: reg, Policy: pol})
	full := newTestManager(t, Config{N: n, PatchThreshold: -1, Policy: polFull})

	mustCreate(t, m, "g", 0, []int{1, 3, 5, 7})
	mustCreate(t, full, "g", 0, []int{1, 3, 5, 7})
	step := func(join int) {
		t.Helper()
		if _, err := m.Join("g", join); err != nil {
			t.Fatal(err)
		}
		if _, err := full.Join("g", join); err != nil {
			t.Fatal(err)
		}
		got, err := m.Plan("g")
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.Plan("g")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Blob, want.Blob) {
			t.Fatalf("join %d: patched-manager plan diverged from full replan", join)
		}
	}

	// Healthy policy: the warming Plan seeds a patchable route, churn
	// patches.
	if _, err := m.Plan("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := full.Plan("g"); err != nil {
		t.Fatal(err)
	}
	step(2)
	if v := m.met.patched.Value(); v != 1 {
		t.Fatalf("healthy churn patched = %d, want 1", v)
	}

	// Localized fault: output 3 is stripped from every plan. The stale
	// retained route (planned under version 0) must not serve, and the
	// filtered reseed must not be marked patchable.
	pol.set(1, 3)
	polFull.set(1, 3)
	step(4)
	step(6)
	if v := m.met.patched.Value(); v != 1 {
		t.Fatalf("faulty-policy churn took the patch path (patched = %d)", v)
	}
	if m.patch.ok {
		t.Fatal("retained route marked patchable under an active filter")
	}

	// Fault cleared: the first miss reseeds, the next patches again.
	pol.set(2, -1)
	polFull.set(2, -1)
	step(8)
	step(9)
	if v := m.met.patched.Value(); v != 2 {
		t.Fatalf("post-clear churn patched = %d, want 2", v)
	}
}

// TestPlanPatchSingleChurn checks the headline serving-path behavior:
// after one warming Plan, a join-Plan-leave-Plan cycle is served
// entirely by patches, never by a full replan.
func TestPlanPatchSingleChurn(t *testing.T) {
	const n = 256
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{N: n, Metrics: reg})
	members := make([]int, 0, n/2)
	for d := 1; d < n; d += 2 {
		members = append(members, d)
	}
	mustCreate(t, m, "g", 0, members)
	if _, err := m.Plan("g"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		join := i%2 == 0
		var err error
		if join {
			_, err = m.Join("g", 2)
		} else {
			_, err = m.Leave("g", 2)
		}
		if err != nil {
			t.Fatal(err)
		}
		pi, err := m.Plan("g")
		if err != nil {
			t.Fatal(err)
		}
		if pi.Cached {
			t.Fatalf("cycle %d: Plan claimed a cache hit for a fresh generation", i)
		}
	}
	if v := m.met.patched.Value(); v != 20 {
		t.Fatalf("patched count = %d, want 20", v)
	}
	if v := m.met.patchFull.Value(); v != 1 {
		t.Fatalf("full count = %d, want only the warming Plan", v)
	}
	if v := m.met.patchDelta.Count(); v != 20 {
		t.Fatalf("delta histogram count = %d, want 20", v)
	}
	if v := m.met.patchLevel.Count(); v != 20 {
		t.Fatalf("level histogram count = %d, want 20", v)
	}
}
