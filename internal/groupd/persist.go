package groupd

// Durability glue between the Manager and internal/store.
//
// The contract is append-before-apply: every mutation (create, delete,
// join, leave, epoch advance, fault arm/clear) is written to the store
// before it becomes visible, so the store's durable prefix always
// dominates the in-memory state. Recovery is the inverse: load the
// latest snapshot, then replay the log suffix past the snapshot's LSN.
//
// Snapshots read the manager's high-water LSN *before* freezing state,
// so a mutation racing the snapshot may be captured by both the
// snapshot and the replayed log suffix. Replay is therefore idempotent:
// every record carries the generation it produced, and applyRecord
// skips records whose generation the restored state already reflects.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"brsmn"
	"brsmn/internal/backend"
	"brsmn/internal/store"
)

// RecoveryStats describes what NewManager reconstructed from the
// durable store. Zero when the manager has no store or the store was
// empty.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a snapshot seeded the recovery.
	SnapshotLoaded bool `json:"snapshotLoaded"`
	// Groups is the number of groups live after recovery.
	Groups int `json:"groups"`
	// Plans is the number of warm plan-cache entries restored from the
	// snapshot.
	Plans int `json:"plans"`
	// Records is the number of log records replayed past the snapshot.
	Records int `json:"records"`
	// Duration is the wall-clock recovery time.
	Duration time.Duration `json:"durationNs"`
}

// Recovery returns what NewManager reconstructed from the store.
func (m *Manager) Recovery() RecoveryStats { return m.recovered }

// RecoveredFaults returns the fault specs (faultd Fault.String() form)
// that were armed when the recovered state was persisted, deduplicated
// in arming order. The daemon re-arms them on its monitors at boot.
func (m *Manager) RecoveredFaults() []string {
	return append([]string(nil), m.recoveredFaults...)
}

// appendRecord logs rec ahead of applying its mutation. Managers
// without a store no-op; append failures come back wrapped in ErrStore
// so callers (and the API layer) can distinguish "storage broke" from
// domain errors.
func (m *Manager) appendRecord(rec store.Record) error {
	if m.cfg.Store == nil {
		return nil
	}
	lsn, err := m.cfg.Store.Append(rec)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStore, err)
	}
	m.noteLSN(lsn)
	return nil
}

// noteLSN advances the manager's high-water LSN monotonically.
func (m *Manager) noteLSN(lsn uint64) {
	for {
		cur := m.lastLSN.Load()
		if lsn <= cur || m.lastLSN.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// JournalFault durably records that spec was armed on the fabric.
// Fault mutations are rare and operationally important, so each one is
// synced through to disk immediately. Best-effort: the armed faults are
// also carried by every snapshot.
func (m *Manager) JournalFault(spec string) {
	m.appendSynced(store.Record{Op: store.OpFaultInject, Fault: spec})
}

// JournalFaultClear durably records that all armed faults were cleared.
func (m *Manager) JournalFaultClear() {
	m.appendSynced(store.Record{Op: store.OpFaultClear})
}

func (m *Manager) appendSynced(rec store.Record) {
	if m.cfg.Store == nil {
		return
	}
	if lsn, err := m.cfg.Store.Append(rec); err == nil {
		m.noteLSN(lsn)
		_ = m.cfg.Store.Sync()
	}
}

// SnapshotNow writes a snapshot of the manager's full state to the
// store and truncates the log records it covers. Safe to call
// concurrently with mutations; see the idempotent-replay note above.
func (m *Manager) SnapshotNow() (store.SnapshotInfo, error) {
	if m.cfg.Store == nil {
		return store.SnapshotInfo{}, ErrNoStore
	}
	if m.closed.Load() {
		return store.SnapshotInfo{}, ErrClosed
	}
	return m.snapshotToStore()
}

// SnapshotAll is the one-stream form of the sharded serving layer's
// SnapshotAll, so either backend serves the snapshot admin surface.
func (m *Manager) SnapshotAll() ([]store.SnapshotInfo, error) {
	info, err := m.SnapshotNow()
	if err != nil {
		return nil, err
	}
	return []store.SnapshotInfo{info}, nil
}

func (m *Manager) snapshotToStore() (store.SnapshotInfo, error) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	start := time.Now()
	// Read the LSN before freezing state: a concurrent mutation may then
	// land in both the snapshot and the replayed suffix (deduped by
	// generation at replay), but never in neither.
	lsn := m.lastLSN.Load()
	snaps := m.snapshot()
	snap := store.Snapshot{LSN: lsn, Epoch: m.epochN.Load(), NextID: m.nextID.Load()}
	for _, sn := range snaps {
		snap.Groups = append(snap.Groups, store.GroupState{ID: sn.id, Source: sn.source, Gen: sn.gen, Members: sn.members})
		// Persist only healthy-fabric (pv 0) BRSMN-tier plans for the
		// current generation: a fresh boot starts at policy version 0
		// with tier state re-resolved from config, so these are exactly
		// the entries that can hit again.
		if e, ok := m.cache.peek(planKey{id: sn.id, gen: sn.gen, pv: 0, bk: uint8(backend.TierBRSMN)}); ok {
			snap.Plans = append(snap.Plans, store.PlanState{ID: sn.id, Gen: sn.gen, Columns: e.columns, Blob: e.blob})
		}
	}
	if m.cfg.FaultSpecs != nil {
		snap.Faults = m.cfg.FaultSpecs()
	}
	n, err := m.cfg.Store.WriteSnapshot(snap)
	if err != nil {
		return store.SnapshotInfo{}, fmt.Errorf("groupd: write snapshot: %w", err)
	}
	if err := m.cfg.Store.Truncate(lsn); err != nil {
		return store.SnapshotInfo{}, fmt.Errorf("groupd: truncate log: %w", err)
	}
	return store.SnapshotInfo{
		LSN:        lsn,
		Groups:     len(snap.Groups),
		Plans:      len(snap.Plans),
		Bytes:      n,
		DurationNs: time.Since(start).Nanoseconds(),
	}, nil
}

// restore rebuilds the manager from the store: snapshot first, then the
// log suffix. Called from NewManager before the manager escapes, so it
// runs single-threaded and touches the registry maps directly.
func (m *Manager) restore() error {
	start := time.Now()
	snap, ok, err := m.cfg.Store.LoadSnapshot()
	if err != nil {
		return fmt.Errorf("groupd: load snapshot: %w", err)
	}
	if ok {
		m.recovered.SnapshotLoaded = true
		m.lastLSN.Store(snap.LSN)
		m.epochN.Store(snap.Epoch)
		m.nextID.Store(snap.NextID)
		m.recoveredFaults = append(m.recoveredFaults, snap.Faults...)
		for _, g := range snap.Groups {
			if err := m.restoreGroup(g.ID, g.Source, g.Gen, g.Members); err != nil {
				return err
			}
		}
		for _, p := range snap.Plans {
			m.cache.put(planKey{id: p.ID, gen: p.Gen, pv: 0, bk: uint8(backend.TierBRSMN)}, p.Blob, p.Columns, 1)
			m.recovered.Plans++
		}
	}
	recs, err := m.cfg.Store.Since(snap.LSN)
	if err != nil {
		return fmt.Errorf("groupd: read log: %w", err)
	}
	for _, rec := range recs {
		if err := m.applyRecord(rec); err != nil {
			return err
		}
		if rec.LSN > m.lastLSN.Load() {
			m.lastLSN.Store(rec.LSN)
		}
		m.recovered.Records++
	}
	m.reconcileNextID()
	m.recoveredFaults = dedupStrings(m.recoveredFaults)
	m.recovered.Groups = m.Count()
	m.recovered.Duration = time.Since(start)
	return nil
}

// restoreGroup rebuilds one session from persisted state. Only valid
// during restore (no locking).
func (m *Manager) restoreGroup(id string, source int, gen uint64, members []int) error {
	g, err := brsmn.NewGroup(m.cfg.N, source)
	if err != nil {
		return fmt.Errorf("groupd: restore %q: %w", id, err)
	}
	for _, d := range members {
		if err := g.Join(d); err != nil {
			return fmt.Errorf("groupd: restore %q member %d: %w", id, d, err)
		}
	}
	if gen == 0 {
		gen = 1
	}
	s := &session{id: id, group: g, gen: gen}
	m.sel.Init(&s.tier, m.defaultPref(), g.Len(), gen)
	m.shardFor(id).groups[id] = s
	return nil
}

// applyRecord replays one log record onto the restoring manager.
// Idempotent with respect to the snapshot: records whose generation the
// restored state already reflects are skipped, so the snapshot/suffix
// overlap window is harmless.
func (m *Manager) applyRecord(rec store.Record) error {
	switch rec.Op {
	case store.OpCreate:
		if _, ok := m.shardFor(rec.Group).groups[rec.Group]; ok {
			return nil // already in the snapshot
		}
		return m.restoreGroup(rec.Group, rec.Source, rec.Gen, rec.Members)
	case store.OpJoin, store.OpLeave:
		s, ok := m.shardFor(rec.Group).groups[rec.Group]
		if !ok || rec.Gen <= s.gen {
			return nil
		}
		// The op validated when first applied; errors here can only mean
		// the snapshot already reflects it, so the generation is what
		// matters.
		if rec.Op == store.OpJoin {
			_ = s.group.Join(rec.Dest)
		} else {
			_ = s.group.Leave(rec.Dest)
		}
		s.gen = rec.Gen
	case store.OpDelete:
		sh := m.shardFor(rec.Group)
		if s, ok := sh.groups[rec.Group]; ok && rec.Gen >= s.gen {
			delete(sh.groups, rec.Group)
		}
	case store.OpEpoch:
		if rec.Epoch > m.epochN.Load() {
			m.epochN.Store(rec.Epoch)
		}
	case store.OpFaultInject:
		m.recoveredFaults = append(m.recoveredFaults, rec.Fault)
	case store.OpFaultClear:
		m.recoveredFaults = m.recoveredFaults[:0]
	}
	return nil
}

// reconcileNextID advances the auto-ID counter past every recovered
// "g<k>" ID, so post-recovery auto-assignment never collides.
func (m *Manager) reconcileNextID() {
	max := m.nextID.Load()
	for _, sh := range m.shards {
		for id := range sh.groups {
			rest, ok := strings.CutPrefix(id, "g")
			if !ok {
				continue
			}
			if k, err := strconv.ParseUint(rest, 10, 64); err == nil && k > max {
				max = k
			}
		}
	}
	m.nextID.Store(max)
}

func dedupStrings(in []string) []string {
	if len(in) < 2 {
		return in
	}
	seen := make(map[string]struct{}, len(in))
	out := in[:0]
	for _, s := range in {
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}
