package groupd

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"brsmn/internal/store"
)

// newDurableManager builds a manager over st without registering
// cleanup-time Close (restart tests reuse the store across managers).
func newDurableManager(t *testing.T, st store.Store, extra func(*Config)) *Manager {
	t.Helper()
	cfg := Config{N: 16, Store: st}
	if extra != nil {
		extra(&cfg)
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPersistLogReplay(t *testing.T) {
	st := store.NewMem()
	m1 := newDurableManager(t, st, nil)

	if _, err := m1.Create("conf", 2, []int{3, 4, 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Create("", 5, []int{1}); err != nil { // auto-ID g1
		t.Fatal(err)
	}
	if _, err := m1.Join("conf", 9); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Leave("conf", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Create("doomed", 0, []int{6}); err != nil {
		t.Fatal(err)
	}
	if err := m1.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.RunEpoch(); err != nil {
		t.Fatal(err)
	}

	m2 := newDurableManager(t, st, nil)
	if got, want := m2.List(), m1.List(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed state:\n got %+v\nwant %+v", got, want)
	}
	if m2.Epoch() != m1.Epoch() {
		t.Fatalf("replayed epoch = %d, want %d", m2.Epoch(), m1.Epoch())
	}
	if m2.Recovery().SnapshotLoaded {
		t.Fatal("log-only recovery claims a snapshot")
	}
	if m2.Recovery().Records == 0 || m2.Recovery().Groups != 2 {
		t.Fatalf("recovery stats = %+v", m2.Recovery())
	}
	// Auto-IDs continue past replayed ones instead of colliding.
	info, err := m2.Create("", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "g2" {
		t.Fatalf("post-recovery auto ID = %q, want g2", info.ID)
	}
}

// TestPersistSnapshotReplayEquivalence is the property test: after
// randomized churn with snapshots interleaved at arbitrary points, a
// manager recovered from the store is indistinguishable from the
// original — same groups, generations, memberships, and warm plans.
func TestPersistSnapshotReplayEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			st := store.NewMem()
			m1 := newDurableManager(t, st, nil)

			live := []string{}
			for i := 0; i < 300; i++ {
				switch op := rng.Intn(10); {
				case op < 3 || len(live) == 0: // create
					id := fmt.Sprintf("grp-%d-%d", seed, i)
					if _, err := m1.Create(id, rng.Intn(16), nil); err != nil {
						t.Fatal(err)
					}
					live = append(live, id)
				case op < 6: // join
					_, err := m1.Join(live[rng.Intn(len(live))], rng.Intn(16))
					if err != nil && !isDomainErr(err) {
						t.Fatal(err)
					}
				case op < 8: // leave
					_, err := m1.Leave(live[rng.Intn(len(live))], rng.Intn(16))
					if err != nil && !isDomainErr(err) {
						t.Fatal(err)
					}
				case op < 9: // delete
					k := rng.Intn(len(live))
					if err := m1.Delete(live[k]); err != nil {
						t.Fatal(err)
					}
					live = append(live[:k], live[k+1:]...)
				default: // snapshot mid-churn
					if _, err := m1.SnapshotNow(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Warm the plan cache for every live group, then snapshot so
			// the plans are carried too.
			want := m1.List()
			for _, g := range want {
				if _, err := m1.Plan(g.ID); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := m1.SnapshotNow(); err != nil {
				t.Fatal(err)
			}

			m2 := newDurableManager(t, st, nil)
			if got := m2.List(); !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered state diverges:\n got %+v\nwant %+v", got, want)
			}
			if !m2.Recovery().SnapshotLoaded {
				t.Fatal("recovery ignored the snapshot")
			}
			// Every live group's plan must be a warm hit with an
			// identical blob.
			for _, g := range want {
				p1, err := m1.Plan(g.ID)
				if err != nil {
					t.Fatal(err)
				}
				p2, err := m2.Plan(g.ID)
				if err != nil {
					t.Fatal(err)
				}
				if !p2.Cached {
					t.Fatalf("group %q: recovered plan was a miss", g.ID)
				}
				if !reflect.DeepEqual(p1.Blob, p2.Blob) || p1.Columns != p2.Columns {
					t.Fatalf("group %q: recovered plan differs", g.ID)
				}
			}
		})
	}
}

func isDomainErr(err error) bool {
	return err != nil && !errors.Is(err, ErrStore) && !errors.Is(err, ErrClosed)
}

// TestPersistWarmCacheAcrossRestart is the end-to-end durability story
// on disk: graceful shutdown writes a final snapshot, and the first
// Plan call after reboot is served from the recovered cache.
func TestPersistWarmCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.OpenFile(dir, store.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := newDurableManager(t, st1, nil)
	if _, err := m1.Create("conf", 2, []int{3, 4, 7}); err != nil {
		t.Fatal(err)
	}
	p1, err := m1.Plan("conf")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cached {
		t.Fatal("first plan claims cached")
	}
	if err := m1.Close(); err != nil { // final snapshot + store close
		t.Fatal(err)
	}

	st2, err := store.OpenFile(dir, store.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m2 := newDurableManager(t, st2, nil)
	defer m2.Close()
	if recs, _ := st2.Recovered(); recs != 0 {
		t.Fatalf("graceful shutdown left %d log records to replay", recs)
	}
	p2, err := m2.Plan("conf")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Cached {
		t.Fatal("first plan after restart missed the recovered cache")
	}
	if !reflect.DeepEqual(p1.Blob, p2.Blob) || p1.Columns != p2.Columns {
		t.Fatal("recovered plan differs from the pre-restart plan")
	}
}

// TestPersistTornTail crashes mid-append: the torn record is truncated
// away and every prior mutation survives.
func TestPersistTornTail(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.OpenFile(dir, store.FileConfig{FsyncBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	m1 := newDurableManager(t, st1, nil)
	if _, err := m1.Create("a", 2, []int{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Create("b", 5, []int{1, 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Join("a", 9); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: no Close, and the last record loses its tail.
	wal := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	st2, err := store.OpenFile(dir, store.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, torn := st2.Recovered(); torn != 1 {
		t.Fatalf("torn truncations = %d, want 1", torn)
	}
	m2 := newDurableManager(t, st2, nil)
	defer m2.Close()
	a, err := m2.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if a.Gen != 1 || a.Size != 1 { // the torn join is gone
		t.Fatalf("group a after torn tail = %+v", a)
	}
	b, err := m2.Get("b")
	if err != nil {
		t.Fatal(err)
	}
	if b.Gen != 1 || b.Size != 2 {
		t.Fatalf("group b after torn tail = %+v", b)
	}
}

func TestPersistFaultJournal(t *testing.T) {
	st := store.NewMem()
	m1 := newDurableManager(t, st, nil)
	m1.JournalFault("dead:0:1")
	m1.JournalFault("stuck:2:3:cross")
	m1.JournalFault("dead:0:1") // duplicate arms dedup on recovery

	m2 := newDurableManager(t, st, nil)
	want := []string{"dead:0:1", "stuck:2:3:cross"}
	if got := m2.RecoveredFaults(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered faults = %v, want %v", got, want)
	}
	m2.JournalFaultClear()
	m3 := newDurableManager(t, st, nil)
	if got := m3.RecoveredFaults(); len(got) != 0 {
		t.Fatalf("faults after clear = %v", got)
	}
}

func TestPersistFaultSpecsInSnapshot(t *testing.T) {
	st := store.NewMem()
	specs := []string{"dead:1:0"}
	m1 := newDurableManager(t, st, func(c *Config) {
		c.FaultSpecs = func() []string { return append([]string(nil), specs...) }
	})
	if _, err := m1.Create("g", 0, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	m2 := newDurableManager(t, st, nil)
	if got := m2.RecoveredFaults(); !reflect.DeepEqual(got, specs) {
		t.Fatalf("recovered faults = %v, want %v", got, specs)
	}
}

// failStore wraps a MemStore and fails appends on demand.
type failStore struct {
	*store.MemStore
	fail bool
}

func (s *failStore) Append(rec store.Record) (uint64, error) {
	if s.fail {
		return 0, errors.New("injected append failure")
	}
	return s.MemStore.Append(rec)
}

// TestPersistAppendFailureRollsBack: when the store refuses an append,
// the mutation is invisible — not applied in memory, not durable.
func TestPersistAppendFailureRollsBack(t *testing.T) {
	fs := &failStore{MemStore: store.NewMem()}
	m := newDurableManager(t, fs, nil)
	if _, err := m.Create("conf", 2, []int{3}); err != nil {
		t.Fatal(err)
	}

	fs.fail = true
	if _, err := m.Create("other", 0, nil); !errors.Is(err, ErrStore) {
		t.Fatalf("create during store failure: %v", err)
	}
	if _, err := m.Join("conf", 9); !errors.Is(err, ErrStore) {
		t.Fatalf("join during store failure: %v", err)
	}
	if err := m.Delete("conf"); !errors.Is(err, ErrStore) {
		t.Fatalf("delete during store failure: %v", err)
	}
	fs.fail = false

	info, err := m.Get("conf")
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 1 || info.Size != 1 {
		t.Fatalf("group changed despite rollback: %+v", info)
	}
	if _, err := m.Get("other"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed create left a group: %v", err)
	}
	// The rolled-back join must still be possible (the tree reverted).
	if _, err := m.Join("conf", 9); err != nil {
		t.Fatalf("join after rollback: %v", err)
	}
	// And a fresh manager replaying the log agrees with m.
	m2 := newDurableManager(t, fs.MemStore, nil)
	if got, want := m2.List(), m.List(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed state:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotNowWithoutStore(t *testing.T) {
	m := newTestManager(t, Config{N: 8})
	if _, err := m.SnapshotNow(); !errors.Is(err, ErrNoStore) {
		t.Fatalf("SnapshotNow without store: %v", err)
	}
}
