package groupd

import "brsmn/internal/mcast"

// FaultPolicy lets a fault-management subsystem (internal/faultd) shape
// the traffic groupd plans, without groupd depending on how faults are
// detected. The Manager consults the policy at every planning site —
// each epoch round's combined assignment and every single-group replan —
// and tags cached plans with the policy version so a localization
// change invalidates the cached healthy-fabric plans implicitly.
// Implementations must be safe for concurrent use.
type FaultPolicy interface {
	// FilterAssignment rewrites an assignment to avoid the faults the
	// policy currently believes in, returning the filtered assignment
	// and the output ports it rejected (sorted). A policy with nothing
	// to avoid returns the assignment unchanged and a nil slice.
	FilterAssignment(a mcast.Assignment) (mcast.Assignment, []int)
	// Version changes whenever FilterAssignment's behavior changes.
	Version() uint64
	// AfterEpoch runs after each completed epoch (outside the epoch
	// lock's critical planning path) — the hook probe scheduling hangs
	// off of.
	AfterEpoch(epoch int64)
}

// policyVersion is the Manager's current plan-cache version tag: 0
// without a policy.
func (m *Manager) policyVersion() uint64 {
	if m.cfg.Policy == nil {
		return 0
	}
	return m.cfg.Policy.Version()
}
