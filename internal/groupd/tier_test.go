package groupd

import (
	"fmt"
	"strings"
	"testing"

	"brsmn/internal/backend"
	"brsmn/internal/obs"
)

// TestTierAutoWorkloadPlacement is the acceptance workload for the
// backend tiers: under -tier-auto semantics, a tiny group lands on
// permnet, a small one on brsmn, a large stable one on feedback, and a
// large churny one transitions (through hysteresis) back to brsmn. The
// placement is asserted twice — through GroupInfo.Backend and through
// the brsmn_backend_routes_total{backend=...} exposition.
func TestTierAutoWorkloadPlacement(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{N: 256, TierAuto: true, Metrics: reg})

	span := func(lo, n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = lo + i
		}
		return out
	}

	// Tiny (fanout 2 ≤ TinyMaxFanout): permutation-network unicast tier.
	if _, err := m.Create("tiny", 0, span(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Small (16 < LargeMinSize): the full BRSMN.
	if _, err := m.Create("small", 0, span(8, 16)); err != nil {
		t.Fatal(err)
	}
	// Large and never mutated: feedback network, multi-pass amortized.
	if _, err := m.Create("stable", 0, span(100, 100)); err != nil {
		t.Fatal(err)
	}
	// Large but churning every plan: the selector must walk it back to
	// the patchable BRSMN once the churn EWMA crosses ChurnMax and the
	// decision survives the hysteresis band.
	if _, err := m.Create("churny", 0, span(100, 100)); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"tiny", "small", "stable", "churny"} {
		for i := 0; i < 3; i++ { // miss, then warm hits
			if _, err := m.Plan(id); err != nil {
				t.Fatalf("Plan(%s): %v", id, err)
			}
		}
	}
	cfg := m.SelectorConfig()
	for i := 0; i < cfg.Hysteresis+1; i++ {
		if _, err := m.Join("churny", 200+i); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Plan("churny"); err != nil {
			t.Fatal(err)
		}
	}

	want := map[string]backend.Tier{
		"tiny":   backend.TierPermNet,
		"small":  backend.TierBRSMN,
		"stable": backend.TierFeedback,
		"churny": backend.TierBRSMN,
	}
	for id, tier := range want {
		info, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Backend != tier.String() {
			t.Errorf("group %s on backend %q, want %q", id, info.Backend, tier)
		}
		if info.BackendPref != backend.TierAuto.String() {
			t.Errorf("group %s pref %q, want auto", id, info.BackendPref)
		}
		p, err := m.Plan(id)
		if err != nil {
			t.Fatal(err)
		}
		if p.Backend != tier.String() {
			t.Errorf("plan for %s reports backend %q, want %q", id, p.Backend, tier)
		}
		if tier == backend.TierBRSMN && p.Passes != 1 {
			t.Errorf("plan for %s reports %d passes, want 1", id, p.Passes)
		}
		if tier != backend.TierBRSMN && p.Passes < 1 {
			t.Errorf("plan for %s reports %d passes", id, p.Passes)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, tier := range backend.Tiers() {
		if !strings.Contains(text, fmt.Sprintf(`brsmn_backend_routes_total{backend=%q}`, tier)) {
			t.Errorf("no routes recorded for backend %s:\n%s", tier, text)
		}
	}
	if !strings.Contains(text, `brsmn_backend_transitions_total{backend="brsmn"}`) {
		t.Error("churny group's transition to brsmn not recorded")
	}
	for _, family := range []string{"brsmn_backend_switches_total", "brsmn_backend_depth_total"} {
		if !strings.Contains(text, family) {
			t.Errorf("series %s missing from exposition", family)
		}
	}
}

// TestSetBackendRepins verifies the explicit repin path: a concrete
// preference takes effect on the next plan (replanned through the
// re-keyed cache miss), and switching back to auto re-enters selection
// without snapping the serving tier.
func TestSetBackendRepins(t *testing.T) {
	m := newTestManager(t, Config{N: 64})

	if _, err := m.Create("conf", 2, []int{3, 4, 7, 9}); err != nil {
		t.Fatal(err)
	}
	info, err := m.Get("conf")
	if err != nil {
		t.Fatal(err)
	}
	// Zero config (no TierAuto, no DefaultBackend): pre-tiering
	// behavior, pinned to brsmn.
	if info.Backend != "brsmn" || info.BackendPref != "brsmn" {
		t.Fatalf("zero-config group on %s/%s, want brsmn/brsmn", info.Backend, info.BackendPref)
	}

	if info, err = m.SetBackend("conf", backend.TierFeedback); err != nil {
		t.Fatal(err)
	}
	if info.Backend != "feedback" {
		t.Fatalf("after repin, backend %q", info.Backend)
	}
	p, err := m.Plan("conf")
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend != "feedback" {
		t.Errorf("plan after repin on %q, want feedback", p.Backend)
	}

	// Back to auto: serving tier holds until observations move it.
	if info, err = m.SetBackend("conf", backend.TierAuto); err != nil {
		t.Fatal(err)
	}
	if info.Backend != "feedback" || info.BackendPref != "auto" {
		t.Errorf("after auto repin: %s/%s, want feedback/auto", info.Backend, info.BackendPref)
	}

	if _, err := m.SetBackend("nope", backend.TierBRSMN); err == nil {
		t.Error("SetBackend on a missing group succeeded")
	}
}
