package harness

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment outputs")

// goldenCases are the deterministic experiments (no wall-clock timing)
// pinned byte for byte, so any change to an algorithm, a cost formula or
// a rendering shows up as a diff.
func goldenCases(t *testing.T) map[string]func() (string, error) {
	t.Helper()
	sizes := []int{16, 64, 256, 1024}
	return map[string]func() (string, error){
		"table1.txt": func() (string, error) { return Table1(), nil },
		"table2_n256.txt": func() (string, error) {
			return Table2Concrete(256), nil
		},
		"orders.txt": func() (string, error) {
			return Table2Normalized(sizes), nil
		},
		"fit.txt": func() (string, error) {
			return FitExperiment(sizes)
		},
		"fig2.txt": Fig2,
		"delay.txt": func() (string, error) {
			return RoutingDelaySweep([]int{8, 32, 128, 512}), nil
		},
		"splits_n64.txt": func() (string, error) {
			return SplitStress(64)
		},
		"util_n64.txt": func() (string, error) {
			return UtilizationExperiment(64, 1)
		},
		"admission_n64.txt": func() (string, error) {
			return AdmissionExperiment(64, 1)
		},
		"saturation_n32.txt": func() (string, error) {
			return SaturationExperiment(32, 100, 1)
		},
		"ktradeoff_n1024.txt": func() (string, error) {
			return KTradeoffExperiment(1024), nil
		},
	}
}

// TestGoldenExperiments compares every deterministic experiment against
// its recorded output. Refresh with: go test ./internal/harness -update
func TestGoldenExperiments(t *testing.T) {
	for name, gen := range goldenCases(t) {
		t.Run(name, func(t *testing.T) {
			got, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(want) != got {
				t.Errorf("%s drifted from its golden output.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
			}
		})
	}
}
