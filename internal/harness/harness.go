// Package harness regenerates every table and figure of the paper's
// exposition and evaluation from the implementations in this repository:
// Table 1 (tag encoding), Table 2 (network comparison, concrete and
// normalized), the Fig. 2 routing example, the Fig. 9/11 tag sequences,
// and the scaling sweeps recorded in EXPERIMENTS.md. Each experiment is a
// function returning rendered text plus, where useful, the raw series, so
// both the CLI (cmd/brsmnbench) and the tests drive the same code.
package harness

import (
	"fmt"
	"strings"
	"time"

	"brsmn/internal/benes"
	"brsmn/internal/copynet"
	"brsmn/internal/core"
	"brsmn/internal/cost"
	"brsmn/internal/diagram"
	"brsmn/internal/fabric"
	"brsmn/internal/feedback"
	"brsmn/internal/gates"
	"brsmn/internal/mcast"
	"brsmn/internal/netsim"
	"brsmn/internal/paths"
	"brsmn/internal/rbn"
	"brsmn/internal/sched"
	"brsmn/internal/shuffle"
	"brsmn/internal/stats"
	"brsmn/internal/tag"
	"brsmn/internal/workload"
	"math/rand"
)

// Table1 renders the routing-tag encoding of Table 1.
func Table1() string {
	rows := make([][]string, 0, tag.NumValues)
	for _, v := range []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps, tag.Eps0, tag.Eps1} {
		b := tag.Encode(v)
		enc := fmt.Sprintf("%d%d%d", b.B0, b.B1, b.B2)
		if v == tag.Eps {
			enc = "11X"
		}
		rows = append(rows, []string{v.String(), enc})
	}
	return "Table 1: routing-tag encoding\n" +
		diagram.Table([]string{"tag", "b0b1b2"}, rows)
}

// Table2Concrete renders the Table 2 comparison at one network size with
// concrete units (switches, gates, columns, gate delays).
func Table2Concrete(n int) string {
	rows := [][]string{}
	for _, r := range cost.Table2(n) {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprint(r.Switches),
			fmt.Sprint(r.Gates),
			fmt.Sprint(r.Depth),
			fmt.Sprint(r.RoutingTime),
		})
	}
	for _, r := range []cost.Row{cost.GCNImplemented(n), cost.CopyNet(n), cost.PermNet(n), cost.Crossbar(n)} {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprint(r.Switches),
			fmt.Sprint(r.Gates),
			fmt.Sprint(r.Depth),
			fmt.Sprint(r.RoutingTime),
		})
	}
	return fmt.Sprintf("Table 2 at n = %d (concrete units; implemented baselines appended)\n", n) +
		diagram.Table([]string{"network", "switches", "gates", "depth", "routing (gate delays)"}, rows)
}

// Table2Normalized renders the Table 2 orders over a size sweep: each
// quantity divided by its claimed growth function. Constant columns
// confirm the claimed orders.
func Table2Normalized(sizes []int) string {
	rows := [][]string{}
	for _, n := range sizes {
		brsmn := cost.BRSMN(n)
		fb := cost.Feedback(n)
		prior := cost.NassimiSahni(n)
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.3f", cost.NormalizedGrowth(n, float64(brsmn.Switches), "nlog2n")),
			fmt.Sprintf("%.3f", cost.NormalizedGrowth(n, float64(fb.Switches), "nlogn")),
			fmt.Sprintf("%.3f", cost.NormalizedGrowth(n, float64(brsmn.Depth), "log2n")),
			fmt.Sprintf("%.3f", cost.NormalizedGrowth(n, float64(brsmn.RoutingTime), "log2n")),
			fmt.Sprintf("%.3f", cost.NormalizedGrowth(n, float64(prior.RoutingTime), "log3n")),
		})
	}
	return "Table 2 orders over a size sweep (constant columns = claimed order holds)\n" +
		diagram.Table([]string{
			"n",
			"BRSMN sw / n·lg²n",
			"fb sw / n·lgn",
			"depth / lg²n",
			"BRSMN rt / lg²n",
			"prior rt / lg³n",
		}, rows)
}

// Fig2 renders the routing of the paper's 8 x 8 example through the
// BRSMN.
func Fig2() (string, error) {
	a := workload.PaperFig2()
	res, err := core.Route(a)
	if err != nil {
		return "", err
	}
	seqs, err := diagram.RenderSequences(a)
	if err != nil {
		return "", err
	}
	return "Fig. 2: the paper's 8x8 routing example\n\nRouting-tag sequences (Fig. 9 format):\n" +
		seqs + "\n" + diagram.RenderRoute(a, res), nil
}

// SweepPoint is one point of a scaling experiment.
type SweepPoint struct {
	N     int
	Value float64
}

// CostSweep returns the switch counts of the named network across sizes.
// Supported names: brsmn, feedback, permnet, copynet, crossbar, prior.
func CostSweep(name string, sizes []int) ([]SweepPoint, error) {
	var pts []SweepPoint
	for _, n := range sizes {
		var v int
		switch name {
		case "brsmn":
			v = cost.BRSMN(n).Switches
		case "feedback":
			v = cost.Feedback(n).Switches
		case "permnet":
			v = cost.PermNet(n).Switches
		case "copynet":
			v = cost.CopyNet(n).Switches
		case "crossbar":
			v = cost.Crossbar(n).Switches
		case "prior":
			v = cost.NassimiSahni(n).Switches
		default:
			return nil, fmt.Errorf("harness: unknown network %q", name)
		}
		pts = append(pts, SweepPoint{N: n, Value: float64(v)})
	}
	return pts, nil
}

// RoutingDelaySweep returns the simulated gate-delay routing time of the
// BRSMN and feedback networks across sizes.
func RoutingDelaySweep(sizes []int) string {
	rows := [][]string{}
	for _, n := range sizes {
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(gates.RBNRoutingDelay(n)),
			fmt.Sprint(gates.BRSMNRoutingDelay(n)),
			fmt.Sprint(gates.FeedbackRoutingDelay(n)),
			fmt.Sprint(cost.CopyNet(n).RoutingTime),
		})
	}
	return "Routing time in gate delays (simulated pipelined sweeps; copynet = centralized looping work)\n" +
		diagram.Table([]string{"n", "one RBN", "BRSMN", "feedback", "copynet (centralized)"}, rows)
}

// WallClock measures actual wall-clock routing time of the three
// functional multicast networks on the same random traffic — the
// software analogue of the routing-time column.
func WallClock(n, trials int, seed int64) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	assignments := make([]mcast.Assignment, trials)
	for i := range assignments {
		assignments[i] = workload.Random(rng, n, 0.8, 0.5)
	}
	un, err := core.New(n, rbn.Sequential)
	if err != nil {
		return "", err
	}
	fb, err := feedback.New(n, rbn.Sequential)
	if err != nil {
		return "", err
	}
	cn, err := copynet.New(n)
	if err != nil {
		return "", err
	}
	timeIt := func(f func(mcast.Assignment) error) (time.Duration, error) {
		start := time.Now()
		for _, a := range assignments {
			if err := f(a); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(trials), nil
	}
	tu, err := timeIt(func(a mcast.Assignment) error { _, err := un.Route(a); return err })
	if err != nil {
		return "", err
	}
	tf, err := timeIt(func(a mcast.Assignment) error { _, err := fb.Route(a); return err })
	if err != nil {
		return "", err
	}
	tc, err := timeIt(func(a mcast.Assignment) error { _, err := cn.Route(a); return err })
	if err != nil {
		return "", err
	}
	tb, err := timeIt(func(a mcast.Assignment) error {
		perm := make([]int, a.N)
		owner := a.OutputOwner()
		for i := range perm {
			perm[i] = -1
		}
		for out, in := range owner {
			if in >= 0 && perm[in] < 0 {
				perm[in] = out
			}
		}
		_, err := benes.RoutePermutation(perm)
		return err
	})
	if err != nil {
		return "", err
	}
	rows := [][]string{
		{"BRSMN (unrolled, self-routing)", tu.String()},
		{"BRSMN (feedback)", tf.String()},
		{"copy network + Benes (centralized)", tc.String()},
		{"Benes looping alone (unicast only)", tb.String()},
	}
	return fmt.Sprintf("Mean wall-clock routing time, n = %d, %d random assignments\n", n, trials) +
		diagram.Table([]string{"network", "time/assignment"}, rows), nil
}

// SplitStress routes the adversarial maximum-split workloads and reports
// the broadcast (split) counts per level — the α-traffic profile.
func SplitStress(n int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Maximum-split stress on n = %d\n", n)
	rows := [][]string{}
	for g := 1; g <= n; g *= 2 {
		a, err := workload.MaxSplit(n, g)
		if err != nil {
			return "", err
		}
		res, err := core.Route(a)
		if err != nil {
			return "", err
		}
		splits := 0
		for _, lp := range res.Plans {
			sc := lp.Scatter.CountSettings()
			splits += sc[2] + sc[3]
		}
		for _, s := range res.Final {
			if s.IsBroadcast() {
				splits++
			}
		}
		rows = append(rows, []string{fmt.Sprint(g), fmt.Sprint(a.Fanout()), fmt.Sprint(splits)})
	}
	b.WriteString(diagram.Table([]string{"groups", "fanout", "broadcast switches used"}, rows))
	return b.String(), nil
}

// PipelineExperiment runs a batch of assignments through the pipelined
// fabric simulator at several injection gaps and reports makespan,
// speedup and peak column parallelism (the Section 7 pipelining claim).
func PipelineExperiment(n, waves int, seed int64) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	as := make([]mcast.Assignment, waves)
	for i := range as {
		as[i] = workload.Random(rng, n, 0.8, 0.5)
	}
	rows := [][]string{}
	for _, gap := range []int{1, 2, 4} {
		rep, err := netsim.Pipeline(as, gap, rbn.Sequential)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprint(gap),
			fmt.Sprint(rep.Depth),
			fmt.Sprint(rep.Makespan),
			fmt.Sprint(rep.SequentialMakespan),
			fmt.Sprintf("%.2fx", rep.Speedup()),
			fmt.Sprint(rep.MaxColumnsBusy),
		})
	}
	return fmt.Sprintf("Pipelined operation, n = %d, %d assignments in flight\n", n, waves) +
		diagram.Table([]string{"gap", "depth", "makespan", "sequential", "speedup", "peak busy columns"}, rows), nil
}

// FitExperiment fits the measured series to the n·log^q(n) family of
// Table 2 and reports the estimated exponents q with R² — the regression
// form of the normalized-ratio table. Expected asymptotics: q = 2 for
// the BRSMN's cost and (base-0) routing delay, q = 1 for the feedback
// cost, q = 3 for the prior networks' modelled routing time; finite-size
// fits land slightly below the asymptote because the lower levels of the
// recursion carry smaller logs.
func FitExperiment(sizes []int) (string, error) {
	collect := func(f func(n int) float64) []float64 {
		vals := make([]float64, len(sizes))
		for i, n := range sizes {
			vals[i] = f(n)
		}
		return vals
	}
	type row struct {
		name   string
		base   float64
		values []float64
		expect string
	}
	rows := []row{
		{"BRSMN switches", 1, collect(func(n int) float64 { return float64(cost.BRSMN(n).Switches) }), "q→2"},
		{"feedback switches", 1, collect(func(n int) float64 { return float64(cost.Feedback(n).Switches) }), "q=1"},
		{"GCN (implemented) switches", 1, collect(func(n int) float64 { return float64(cost.GCNImplemented(n).Switches) }), "q→2"},
		{"BRSMN depth", 0, collect(func(n int) float64 { return float64(cost.BRSMN(n).Depth) }), "q→2"},
		{"BRSMN routing delay", 0, collect(func(n int) float64 { return float64(cost.BRSMN(n).RoutingTime) }), "q→2"},
		{"prior routing (model)", 0, collect(func(n int) float64 { return float64(cost.NassimiSahni(n).RoutingTime) }), "q=3"},
		{"copynet routing", 1, collect(func(n int) float64 { return float64(cost.CopyNet(n).RoutingTime) }), "q→1"},
	}
	table := [][]string{}
	for _, r := range rows {
		fit, err := stats.PolylogExponent(sizes, r.values, r.base)
		if err != nil {
			return "", fmt.Errorf("harness: fitting %s: %w", r.name, err)
		}
		table = append(table, []string{
			r.name,
			fmt.Sprintf("n^%g·lg^q", r.base),
			fmt.Sprintf("%.2f", fit.Slope),
			r.expect,
			fmt.Sprintf("%.4f", fit.R2),
		})
	}
	return "Fitted polylog exponents over the size sweep (value ≈ c · n^base · lg^q n)\n" +
		diagram.Table([]string{"series", "family", "fitted q", "expected", "R²"}, table), nil
}

// UtilizationExperiment measures fabric link-slot utilization vs load:
// the fraction of (column, link) slots occupied by the edge-disjoint
// multicast trees of a routed assignment (package paths). Full
// permutations keep every link busy in every column; light multicast
// loads leave most of the fabric dark — the over-provisioning inherent
// to a nonblocking design.
func UtilizationExperiment(n int, seed int64) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	rows := [][]string{}
	for _, load := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		a := workload.Random(rng, n, load, 0.6)
		res, err := core.Route(a)
		if err != nil {
			return "", err
		}
		trees, err := paths.VerifyAll(a, res)
		if err != nil {
			return "", err
		}
		cols, err := fabric.Flatten(res)
		if err != nil {
			return "", err
		}
		slots := (len(cols) + 1) * n
		used := paths.TotalEdges(trees)
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", load),
			fmt.Sprint(a.Fanout()),
			fmt.Sprint(used),
			fmt.Sprint(slots),
			fmt.Sprintf("%.1f%%", 100*float64(used)/float64(slots)),
		})
	}
	return fmt.Sprintf("Fabric link-slot utilization, n = %d (edge-disjoint trees verified per row)\n", n) +
		diagram.Table([]string{"load", "fanout", "link-slots used", "total", "utilization"}, rows), nil
}

// AdmissionExperiment measures the greedy scheduler against the
// conflict-degree lower bound across batch intensities: rounds used vs
// the bound, over random overlapping request batches.
func AdmissionExperiment(n int, seed int64) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	rows := [][]string{}
	for _, batch := range []int{n / 4, n / 2, n, 2 * n} {
		reqs := make([]sched.Request, batch)
		for i := range reqs {
			k := 1 + rng.Intn(n/4)
			reqs[i] = sched.Request{Source: rng.Intn(n), Dests: rng.Perm(n)[:k]}
		}
		rounds, err := sched.Schedule(n, reqs)
		if err != nil {
			return "", err
		}
		bound := sched.ConflictDegree(n, reqs)
		rows = append(rows, []string{
			fmt.Sprint(batch),
			fmt.Sprint(bound),
			fmt.Sprint(len(rounds)),
			fmt.Sprintf("%.2f", float64(len(rounds))/float64(bound)),
		})
	}
	return fmt.Sprintf("Greedy admission vs conflict-degree lower bound, n = %d\n", n) +
		diagram.Table([]string{"requests", "lower bound", "rounds used", "ratio"}, rows), nil
}

// SaturationExperiment runs the input-queued switch emulation (HOL
// admission of overlapping multicast packets, one fabric pass per slot)
// across offered loads and reports delivered throughput, mean packet
// delay and final backlog — the saturation behavior of a multicast
// input-queued switch.
func SaturationExperiment(n, slots int, seed int64) (string, error) {
	rows := [][]string{}
	for _, load := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		rng := rand.New(rand.NewSource(seed))
		nw, err := core.New(n, rbn.Sequential)
		if err != nil {
			return "", err
		}
		type pkt struct {
			dests   []int
			arrived int
		}
		queues := make([][]*pkt, n)
		delivered, copies, sumDelay, backlog := 0, 0, 0, 0
		for slot := 0; slot < slots; slot++ {
			for in := 0; in < n; in++ {
				if rng.Float64() >= load {
					continue
				}
				fan := 1
				for fan < n/2 && rng.Float64() < 0.4 {
					fan++
				}
				queues[in] = append(queues[in], &pkt{dests: rng.Perm(n)[:fan], arrived: slot})
			}
			outUsed := make([]bool, n)
			dests := make([][]int, n)
			var admitted []int
			for in := 0; in < n; in++ {
				if len(queues[in]) == 0 {
					continue
				}
				p := queues[in][0]
				ok := true
				for _, d := range p.dests {
					if outUsed[d] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				for _, d := range p.dests {
					outUsed[d] = true
				}
				dests[in] = p.dests
				admitted = append(admitted, in)
			}
			if len(admitted) == 0 {
				continue
			}
			a, err := mcast.New(n, dests)
			if err != nil {
				return "", err
			}
			if _, err := nw.Route(a); err != nil {
				return "", err
			}
			for _, in := range admitted {
				p := queues[in][0]
				queues[in] = queues[in][1:]
				delivered++
				copies += len(p.dests)
				sumDelay += slot - p.arrived
			}
		}
		for _, q := range queues {
			backlog += len(q)
		}
		meanDelay := 0.0
		if delivered > 0 {
			meanDelay = float64(sumDelay) / float64(delivered)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", load),
			fmt.Sprintf("%.2f", float64(copies)/float64(slots)),
			fmt.Sprintf("%.2f", meanDelay),
			fmt.Sprint(backlog),
		})
	}
	return fmt.Sprintf("Input-queued switch saturation, n = %d, %d slots (HOL admission)\n", n, slots) +
		diagram.Table([]string{"offered load (pkts/in/slot)", "copies/slot", "mean delay (slots)", "backlog"}, rows), nil
}

// KTradeoffExperiment sweeps the Nassimi–Sahni design parameter k
// (footnote 1 of the paper) at a fixed size: small k trades a polynomial
// switch-count blow-up for shallow depth; k = log n reaches the
// n·log² n Table 2 point, which the BRSMN meets with a faster (log² n
// vs k·log² n) distributed routing time.
func KTradeoffExperiment(n int) string {
	rows := [][]string{}
	m := shuffle.Log2(n)
	for k := 1; k <= m; k *= 2 {
		r := cost.NassimiSahniK(n, k)
		rows = append(rows, []string{
			fmt.Sprint(k),
			fmt.Sprint(r.Switches),
			fmt.Sprint(r.Depth),
			fmt.Sprint(r.RoutingTime),
		})
	}
	br := cost.BRSMN(n)
	rows = append(rows, []string{"BRSMN", fmt.Sprint(br.Switches), fmt.Sprint(br.Depth), fmt.Sprint(br.RoutingTime)})
	return fmt.Sprintf("Nassimi–Sahni k-parameter trade-off at n = %d (model; BRSMN row measured)\n", n) +
		diagram.Table([]string{"k", "switches", "depth", "routing (gate delays)"}, rows)
}
