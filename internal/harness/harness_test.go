package harness

import (
	"strings"
	"testing"

	"brsmn/internal/cost"
	"brsmn/internal/stats"
)

// TestTable1 checks the encoding table contents.
func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"α", "100", "ε", "11X", "ε0", "110", "ε1", "111"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

// TestTable2Concrete checks all four networks appear with numbers.
func TestTable2Concrete(t *testing.T) {
	out := Table2Concrete(256)
	for _, want := range []string{"Nassimi & Sahni", "Lee & Oruc", "BRSMN (this paper)", "feedback"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

// TestTable2Normalized checks the sweep renders one row per size.
func TestTable2Normalized(t *testing.T) {
	sizes := []int{16, 64, 256, 1024}
	out := Table2Normalized(sizes)
	for _, n := range []string{"16", "64", "256", "1024"} {
		if !strings.Contains(out, n) {
			t.Errorf("missing size %s:\n%s", n, out)
		}
	}
}

// TestFig2 checks the demo renders the golden deliveries.
func TestFig2(t *testing.T) {
	out, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"00εαεεε", "α1αε011", "output 4: from input 2", "output 6: from input 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 missing %q:\n%s", want, out)
		}
	}
}

// TestCostSweep checks known values and the error path.
func TestCostSweep(t *testing.T) {
	pts, err := CostSweep("feedback", []int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Value != 12 { // (8/2)*3
		t.Errorf("feedback sweep = %+v", pts)
	}
	for _, name := range []string{"brsmn", "permnet", "copynet", "crossbar", "prior"} {
		if _, err := CostSweep(name, []int{16}); err != nil {
			t.Errorf("CostSweep(%q): %v", name, err)
		}
	}
	if _, err := CostSweep("bogus", []int{8}); err == nil {
		t.Error("CostSweep accepted unknown network")
	}
}

// TestRoutingDelaySweep checks the table renders and delays grow slowly.
func TestRoutingDelaySweep(t *testing.T) {
	out := RoutingDelaySweep([]int{8, 64, 512})
	if !strings.Contains(out, "BRSMN") || !strings.Contains(out, "centralized") {
		t.Errorf("sweep table malformed:\n%s", out)
	}
}

// TestWallClock smoke-tests the timing experiment at a small size.
func TestWallClock(t *testing.T) {
	out, err := WallClock(32, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BRSMN (unrolled", "feedback", "copy network", "Benes looping"} {
		if !strings.Contains(out, want) {
			t.Errorf("WallClock missing %q:\n%s", want, out)
		}
	}
}

// TestSplitStress smoke-tests the α-traffic profile experiment.
func TestSplitStress(t *testing.T) {
	out, err := SplitStress(16)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "broadcast switches used") {
		t.Errorf("SplitStress malformed:\n%s", out)
	}
	// A single full broadcast (groups=1) needs exactly n-1 splits.
	lines := strings.Split(out, "\n")
	found := false
	for _, ln := range lines {
		fs := strings.Fields(ln)
		if len(fs) == 3 && fs[0] == "1" && fs[1] == "16" {
			if fs[2] != "15" {
				t.Errorf("broadcast split count = %s, want 15", fs[2])
			}
			found = true
		}
	}
	if !found {
		t.Errorf("groups=1 row missing:\n%s", out)
	}
}

// TestFitExperiment checks the fitted exponents land in the expected
// bands across a wide sweep.
func TestFitExperiment(t *testing.T) {
	out, err := FitExperiment([]int{16, 64, 256, 1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "BRSMN switches") || !strings.Contains(out, "fitted q") {
		t.Errorf("fit table malformed:\n%s", out)
	}
	// Spot-check the numbers behind the table.
	sizes := []int{16, 64, 256, 1024, 4096}
	vals := make([]float64, len(sizes))
	for i, n := range sizes {
		vals[i] = float64(cost.BRSMN(n).Switches)
	}
	fit, err := stats.PolylogExponent(sizes, vals, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 1.7 || fit.Slope > 2.1 {
		t.Errorf("BRSMN cost exponent %.2f outside [1.7, 2.1]", fit.Slope)
	}
	for i, n := range sizes {
		vals[i] = float64(cost.Feedback(n).Switches)
	}
	fit, err = stats.PolylogExponent(sizes, vals, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 0.99 || fit.Slope > 1.01 {
		t.Errorf("feedback cost exponent %.2f, want 1", fit.Slope)
	}
}

// TestPipelineExperiment smoke-tests the pipelining table.
func TestPipelineExperiment(t *testing.T) {
	out, err := PipelineExperiment(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "speedup") {
		t.Errorf("pipeline table malformed:\n%s", out)
	}
}

// TestUtilizationExperiment checks utilization grows with load and the
// full-load row approaches the permutation bound.
func TestUtilizationExperiment(t *testing.T) {
	out, err := UtilizationExperiment(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "utilization") || !strings.Contains(out, "1.00") {
		t.Errorf("utilization table malformed:\n%s", out)
	}
}

// TestAdmissionExperiment smoke-tests the scheduler-quality table.
func TestAdmissionExperiment(t *testing.T) {
	out, err := AdmissionExperiment(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lower bound") {
		t.Errorf("admission table malformed:\n%s", out)
	}
}

// TestSaturationExperiment checks the saturation shape: throughput
// plateaus while backlog grows with offered load.
func TestSaturationExperiment(t *testing.T) {
	out, err := SaturationExperiment(16, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mean delay") || !strings.Contains(out, "backlog") {
		t.Errorf("saturation table malformed:\n%s", out)
	}
}

// TestKTradeoffExperiment smoke-tests the footnote-1 sweep.
func TestKTradeoffExperiment(t *testing.T) {
	out := KTradeoffExperiment(256)
	if !strings.Contains(out, "BRSMN") || !strings.Contains(out, "k-parameter") {
		t.Errorf("ktradeoff table malformed:\n%s", out)
	}
}
