package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"brsmn/internal/benes"
	"brsmn/internal/copynet"
	"brsmn/internal/core"
	"brsmn/internal/feedback"
	"brsmn/internal/mcast"
	"brsmn/internal/netsim"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
)

// Measurement is one measured routing regime: mean wall-clock time and
// mean heap allocation per routed assignment. Allocation figures come
// from runtime.MemStats deltas around the whole trial loop, so they are
// exact for single-goroutine regimes and close for parallel ones.
type Measurement struct {
	Name        string `json:"name"`
	Workers     int    `json:"workers"`
	NsPerOp     int64  `json:"nsPerOp"`
	AllocsPerOp uint64 `json:"allocsPerOp"`
	BytesPerOp  uint64 `json:"bytesPerOp"`
}

func measure(name string, workers, trials int, f func() error) (Measurement, error) {
	// One untimed warm-up pass lets pooled arenas reach steady state so
	// the numbers describe the regime, not its first call.
	if err := f(); err != nil {
		return Measurement{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < trials; i++ {
		if err := f(); err != nil {
			return Measurement{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	t := uint64(trials)
	return Measurement{
		Name:        name,
		Workers:     workers,
		NsPerOp:     elapsed.Nanoseconds() / int64(trials),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / t,
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / t,
	}, nil
}

// RouteBenchReport is the machine-readable routing benchmark behind
// BENCH_route.json: the planning pipeline's allocation/latency regimes
// on one batch of random assignments.
type RouteBenchReport struct {
	Experiment string        `json:"experiment"`
	N          int           `json:"n"`
	Trials     int           `json:"trials"`
	Seed       int64         `json:"seed"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numCpu"`
	Regimes    []Measurement `json:"regimes"`
}

// RouteBench measures the routing hot path across its regimes: a cold
// network construction per routing, the pooled concurrency-safe
// Network.Route, a reused sequential Planner (packed word-parallel
// kernels), the reused planner with the parallel sub-network recursion
// on `workers` workers, the scalar reference kernels on the same
// reused planner, and single-membership plan patching against a dense
// retained route ("delta-churn").
func RouteBench(n, trials int, seed int64, workers int) (*RouteBenchReport, error) {
	if trials < 1 {
		trials = 1
	}
	if workers < 2 {
		workers = 4
	}
	rng := rand.New(rand.NewSource(seed))
	as := make([]mcast.Assignment, 8)
	for i := range as {
		as[i] = workload.Random(rng, n, 0.8, 0.5)
	}
	next := func(i int) mcast.Assignment { return as[i%len(as)] }

	rep := &RouteBenchReport{
		Experiment: "route",
		N:          n,
		Trials:     trials,
		Seed:       seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	i := 0
	cold, err := measure("cold", 1, trials, func() error {
		nw, err := core.New(n, rbn.Sequential)
		if err != nil {
			return err
		}
		_, err = nw.Route(next(i))
		i++
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.Regimes = append(rep.Regimes, cold)

	nw, err := core.New(n, rbn.Sequential)
	if err != nil {
		return nil, err
	}
	i = 0
	network, err := measure("network", 1, trials, func() error {
		_, err := nw.Route(next(i))
		i++
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.Regimes = append(rep.Regimes, network)

	pl, err := core.NewPlanner(n, rbn.Sequential)
	if err != nil {
		return nil, err
	}
	i = 0
	planner, err := measure("planner", 1, trials, func() error {
		_, err := pl.Route(next(i))
		i++
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.Regimes = append(rep.Regimes, planner)

	plp, err := core.NewPlanner(n, rbn.Engine{Workers: workers})
	if err != nil {
		return nil, err
	}
	i = 0
	par, err := measure("planner-parallel", workers, trials, func() error {
		_, err := plp.Route(next(i))
		i++
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.Regimes = append(rep.Regimes, par)

	pls, err := core.NewPlanner(n, rbn.Engine{Workers: 1, Scalar: true})
	if err != nil {
		return nil, err
	}
	i = 0
	scalar, err := measure("scalar", 1, trials, func() error {
		_, err := pls.Route(next(i))
		i++
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.Regimes = append(rep.Regimes, scalar)

	// Delta-churn: one output toggling in and out of a dense n-1 member
	// group. The toggled output's sibling stays a member, so every op is
	// the deep-leaf patch — the near-constant-time regime the incremental
	// path promises for single-member churn.
	pld, err := core.NewPlanner(n, rbn.Sequential)
	if err != nil {
		return nil, err
	}
	dense := make([][]int, n)
	for d := 1; d < n; d++ {
		dense[0] = append(dense[0], d)
	}
	da, err := mcast.New(n, dense)
	if err != nil {
		return nil, err
	}
	if _, err := pld.Route(da); err != nil {
		return nil, err
	}
	join := false // output 2 starts as a member: the first op leaves
	churn, err := measure("delta-churn", 1, trials, func() error {
		_, _, err := pld.RoutePatch(0, 2, join)
		join = !join
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.Regimes = append(rep.Regimes, churn)
	return rep, nil
}

// WallClockReport is the machine-readable form of WallClock.
type WallClockReport struct {
	Experiment string        `json:"experiment"`
	N          int           `json:"n"`
	Trials     int           `json:"trials"`
	Seed       int64         `json:"seed"`
	Networks   []Measurement `json:"networks"`
}

// WallClockJSON measures the same four networks as WallClock and
// returns the structured report.
func WallClockJSON(n, trials int, seed int64) (*WallClockReport, error) {
	rng := rand.New(rand.NewSource(seed))
	assignments := make([]mcast.Assignment, trials)
	for i := range assignments {
		assignments[i] = workload.Random(rng, n, 0.8, 0.5)
	}
	un, err := core.New(n, rbn.Sequential)
	if err != nil {
		return nil, err
	}
	fb, err := feedback.New(n, rbn.Sequential)
	if err != nil {
		return nil, err
	}
	cn, err := copynet.New(n)
	if err != nil {
		return nil, err
	}
	rep := &WallClockReport{Experiment: "wallclock", N: n, Trials: trials, Seed: seed}
	batch := func(f func(mcast.Assignment) error) func() error {
		i := 0
		return func() error {
			err := f(assignments[i%len(assignments)])
			i++
			return err
		}
	}
	for _, spec := range []struct {
		name string
		f    func(mcast.Assignment) error
	}{
		{"brsmn-unrolled", func(a mcast.Assignment) error { _, err := un.Route(a); return err }},
		{"brsmn-feedback", func(a mcast.Assignment) error { _, err := fb.Route(a); return err }},
		{"copynet-benes", func(a mcast.Assignment) error { _, err := cn.Route(a); return err }},
		{"benes-unicast", func(a mcast.Assignment) error {
			perm := make([]int, a.N)
			owner := a.OutputOwner()
			for i := range perm {
				perm[i] = -1
			}
			for out, in := range owner {
				if in >= 0 && perm[in] < 0 {
					perm[in] = out
				}
			}
			_, err := benes.RoutePermutation(perm)
			return err
		}},
	} {
		m, err := measure(spec.name, 1, trials, batch(spec.f))
		if err != nil {
			return nil, err
		}
		rep.Networks = append(rep.Networks, m)
	}
	return rep, nil
}

// PipelineReport is the machine-readable form of PipelineExperiment.
type PipelineReport struct {
	Experiment string          `json:"experiment"`
	N          int             `json:"n"`
	Waves      int             `json:"waves"`
	Seed       int64           `json:"seed"`
	Gaps       []PipelinePoint `json:"gaps"`
}

// PipelinePoint is one injection-gap row of the pipelined simulation.
type PipelinePoint struct {
	Gap                int     `json:"gap"`
	Depth              int     `json:"depth"`
	Makespan           int     `json:"makespan"`
	SequentialMakespan int     `json:"sequentialMakespan"`
	Speedup            float64 `json:"speedup"`
	MaxColumnsBusy     int     `json:"maxColumnsBusy"`
}

// PipelineJSON runs the pipelined fabric simulation and returns the
// structured report.
func PipelineJSON(n, waves int, seed int64) (*PipelineReport, error) {
	rng := rand.New(rand.NewSource(seed))
	as := make([]mcast.Assignment, waves)
	for i := range as {
		as[i] = workload.Random(rng, n, 0.8, 0.5)
	}
	rep := &PipelineReport{Experiment: "pipeline", N: n, Waves: waves, Seed: seed}
	for _, gap := range []int{1, 2, 4} {
		r, err := netsim.Pipeline(as, gap, rbn.Sequential)
		if err != nil {
			return nil, err
		}
		rep.Gaps = append(rep.Gaps, PipelinePoint{
			Gap:                gap,
			Depth:              r.Depth,
			Makespan:           r.Makespan,
			SequentialMakespan: r.SequentialMakespan,
			Speedup:            r.Speedup(),
			MaxColumnsBusy:     r.MaxColumnsBusy,
		})
	}
	return rep, nil
}

// MarshalReport renders any of the structured reports as indented JSON
// with a trailing newline, the on-disk format of BENCH_route.json.
func MarshalReport(v any) (string, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", fmt.Errorf("harness: encoding report: %w", err)
	}
	return string(b) + "\n", nil
}
