package harness

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"brsmn/internal/groupd"
	"brsmn/internal/rbn"
	"brsmn/internal/store"
)

// RecoveryMeasurement is one measured boot scenario: mean wall-clock
// time to open the durable store and reconstruct a Manager from it.
type RecoveryMeasurement struct {
	Name           string `json:"name"`
	NsPerOp        int64  `json:"nsPerOp"`
	Groups         int    `json:"groups"`
	Records        int    `json:"replayedRecords"`
	Plans          int    `json:"plans"`
	SnapshotLoaded bool   `json:"snapshotLoaded"`
}

// RecoveryBenchReport is the machine-readable recovery benchmark behind
// BENCH_recovery.json: how long a restart takes to rebuild control-plane
// state from a pure WAL tail versus a snapshot.
type RecoveryBenchReport struct {
	Experiment string                `json:"experiment"`
	N          int                   `json:"n"`
	Groups     int                   `json:"groups"`
	Trials     int                   `json:"trials"`
	Seed       int64                 `json:"seed"`
	Scenarios  []RecoveryMeasurement `json:"scenarios"`
}

// RecoveryBench measures the two recovery regimes of the durable
// control plane for a population of `groups` multicast groups on an
// n-port network:
//
//   - log-replay: the crash case — no snapshot on disk, every group is
//     reconstructed by replaying create/join records from the WAL.
//   - snapshot-restore: the graceful-restart case — state (including
//     warm plan-cache entries) loads from the snapshot with an empty
//     WAL tail.
//
// Each trial boots a fresh Manager against an on-disk store and times
// OpenFile + NewManager only; populating the directory is untimed.
func RecoveryBench(n, groups, trials int, seed int64) (*RecoveryBenchReport, error) {
	if n < 8 {
		// Each synthetic group needs a source, 2+ members, and two
		// later joins, all distinct ports.
		return nil, fmt.Errorf("harness: recovery bench needs n >= 8, got %d", n)
	}
	if groups < 1 {
		groups = 1
	}
	if trials < 1 {
		trials = 1
	}
	rep := &RecoveryBenchReport{Experiment: "recovery", N: n, Groups: groups, Trials: trials, Seed: seed}

	replay, err := benchLogReplay(n, groups, trials, seed)
	if err != nil {
		return nil, fmt.Errorf("harness: log-replay scenario: %w", err)
	}
	rep.Scenarios = append(rep.Scenarios, replay)

	snap, err := benchSnapshotRestore(n, groups, trials, seed)
	if err != nil {
		return nil, fmt.Errorf("harness: snapshot-restore scenario: %w", err)
	}
	rep.Scenarios = append(rep.Scenarios, snap)
	return rep, nil
}

// groupSpec is one synthetic group's identity across trials.
type groupSpec struct {
	id      string
	source  int
	members []int
	joins   []int
}

func synthGroups(rng *rand.Rand, n, groups int) []groupSpec {
	specs := make([]groupSpec, groups)
	for g := range specs {
		source := rng.Intn(n)
		taken := map[int]bool{source: true}
		pick := func() int {
			for {
				d := rng.Intn(n)
				if !taken[d] {
					taken[d] = true
					return d
				}
			}
		}
		members := make([]int, 2+rng.Intn(min(6, n-3)))
		for i := range members {
			members[i] = pick()
		}
		specs[g] = groupSpec{
			id:      fmt.Sprintf("bench-%d", g),
			source:  source,
			members: members,
			joins:   []int{pick(), pick()},
		}
	}
	return specs
}

// benchLogReplay times recovery from a WAL with no snapshot. The
// recovered manager's Close writes a snapshot and truncates the log, so
// every trial rebuilds the directory from the same record sequence.
func benchLogReplay(n, groups, trials int, seed int64) (RecoveryMeasurement, error) {
	specs := synthGroups(rand.New(rand.NewSource(seed)), n, groups)
	var m RecoveryMeasurement
	var total time.Duration
	for trial := 0; trial < trials; trial++ {
		dir, err := os.MkdirTemp("", "brsmn-recovery-*")
		if err != nil {
			return m, err
		}
		if err := writeWAL(filepath.Join(dir, "log"), specs); err != nil {
			os.RemoveAll(dir)
			return m, err
		}

		start := time.Now()
		st, err := store.OpenFile(filepath.Join(dir, "log"), store.FileConfig{FsyncBatch: 1024})
		if err != nil {
			os.RemoveAll(dir)
			return m, err
		}
		gm, err := groupd.NewManager(groupd.Config{N: n, Engine: rbn.Sequential, Store: st})
		if err != nil {
			st.Close()
			os.RemoveAll(dir)
			return m, err
		}
		total += time.Since(start)

		rec := gm.Recovery()
		m = RecoveryMeasurement{
			Name:           "log-replay",
			Groups:         rec.Groups,
			Records:        rec.Records,
			Plans:          rec.Plans,
			SnapshotLoaded: rec.SnapshotLoaded,
		}
		gm.Close()
		os.RemoveAll(dir)
	}
	m.NsPerOp = total.Nanoseconds() / int64(trials)
	return m, nil
}

// writeWAL synthesizes the crash-case directory: the record sequence a
// live manager would have appended, fsynced once, never snapshotted.
func writeWAL(dir string, specs []groupSpec) error {
	st, err := store.OpenFile(dir, store.FileConfig{FsyncBatch: 1 << 20})
	if err != nil {
		return err
	}
	defer st.Close()
	for _, s := range specs {
		if _, err := st.Append(store.Record{
			Op: store.OpCreate, Group: s.id, Source: s.source, Gen: 1, Members: s.members,
		}); err != nil {
			return err
		}
		for i, d := range s.joins {
			if _, err := st.Append(store.Record{
				Op: store.OpJoin, Group: s.id, Dest: d, Gen: uint64(2 + i),
			}); err != nil {
				return err
			}
		}
	}
	return st.Sync()
}

// benchSnapshotRestore times recovery from a snapshot with an empty WAL
// tail. The directory is populated once through the real manager (so
// the snapshot carries warm plan-cache entries) and reopened per trial;
// each recovered manager's Close rewrites an equivalent snapshot.
func benchSnapshotRestore(n, groups, trials int, seed int64) (RecoveryMeasurement, error) {
	specs := synthGroups(rand.New(rand.NewSource(seed)), n, groups)
	var m RecoveryMeasurement
	dir, err := os.MkdirTemp("", "brsmn-recovery-*")
	if err != nil {
		return m, err
	}
	defer os.RemoveAll(dir)

	st, err := store.OpenFile(filepath.Join(dir, "log"), store.FileConfig{FsyncBatch: 1 << 20})
	if err != nil {
		return m, err
	}
	gm, err := groupd.NewManager(groupd.Config{N: n, Engine: rbn.Sequential, Store: st})
	if err != nil {
		st.Close()
		return m, err
	}
	for _, s := range specs {
		if _, err := gm.Create(s.id, s.source, s.members); err != nil {
			gm.Close()
			return m, err
		}
		for _, d := range s.joins {
			if _, err := gm.Join(s.id, d); err != nil {
				gm.Close()
				return m, err
			}
		}
		if _, err := gm.Plan(s.id); err != nil {
			gm.Close()
			return m, err
		}
	}
	if err := gm.Close(); err != nil {
		return m, err
	}

	var total time.Duration
	for trial := 0; trial < trials; trial++ {
		start := time.Now()
		st, err := store.OpenFile(filepath.Join(dir, "log"), store.FileConfig{FsyncBatch: 1024})
		if err != nil {
			return m, err
		}
		gm, err := groupd.NewManager(groupd.Config{N: n, Engine: rbn.Sequential, Store: st})
		if err != nil {
			st.Close()
			return m, err
		}
		total += time.Since(start)

		rec := gm.Recovery()
		m = RecoveryMeasurement{
			Name:           "snapshot-restore",
			Groups:         rec.Groups,
			Records:        rec.Records,
			Plans:          rec.Plans,
			SnapshotLoaded: rec.SnapshotLoaded,
		}
		if err := gm.Close(); err != nil {
			return m, err
		}
	}
	m.NsPerOp = total.Nanoseconds() / int64(trials)
	return m, nil
}
