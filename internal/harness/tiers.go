package harness

import (
	"fmt"
	"math/rand"
	"runtime"

	"brsmn/internal/backend"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
)

// TierMeasurement is one (backend, workload) cell of the tiers
// benchmark: the warm route latency plus what the produced program
// spends — switch columns (depth), switch count, and injection passes.
type TierMeasurement struct {
	Backend     string `json:"backend"`
	Workload    string `json:"workload"`
	GroupSize   int    `json:"groupSize"`
	NsPerOp     int64  `json:"nsPerOp"`
	AllocsPerOp uint64 `json:"allocsPerOp"`
	BytesPerOp  uint64 `json:"bytesPerOp"`
	Passes      int    `json:"passes"`
	Depth       int    `json:"depth"`
	Switches    int    `json:"switches"`
}

// TiersReport is the machine-readable tiers benchmark behind
// BENCH_tiers.json: every planner backend routing every workload class
// the selector tiers between, so the crossover the auto-tiering policy
// exploits is visible in one table.
type TiersReport struct {
	Experiment string            `json:"experiment"`
	N          int               `json:"n"`
	Trials     int               `json:"trials"`
	Seed       int64             `json:"seed"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Tiers      []TierMeasurement `json:"tiers"`
}

// TiersBench routes two workload classes — a tiny fanout-2 group (the
// permnet sweet spot) and a dense random multicast (the brsmn/feedback
// regime) — through all three planner backends at size n, measuring the
// warm route path of each. Programs are recomputed every trial; "warm"
// means the backend's pools and arenas are at steady state, the serving
// layer's plan cache is deliberately out of the picture.
func TiersBench(n, trials int, seed int64) (*TiersReport, error) {
	if trials < 1 {
		trials = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// One source, fanout 2, everyone else idle — the group shape the
	// selector tiers onto permnet.
	tinyDests := make([][]int, n)
	tinyDests[0] = []int{1, 2}
	tiny, err := mcast.New(n, tinyDests)
	if err != nil {
		return nil, err
	}
	dense := workload.Random(rng, n, 0.8, 0.5)
	size := func(a mcast.Assignment) int {
		total := 0
		for _, ds := range a.Dests {
			total += len(ds)
		}
		return total
	}

	backends, err := backend.All(n, rbn.Sequential)
	if err != nil {
		return nil, err
	}
	rep := &TiersReport{
		Experiment: "tiers",
		N:          n,
		Trials:     trials,
		Seed:       seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, wl := range []struct {
		name string
		a    mcast.Assignment
	}{
		{"tiny-fanout2", tiny},
		{"dense-multicast", dense},
	} {
		for _, t := range backend.Tiers() {
			b := backends[t]
			r, err := b.Route(wl.a)
			if err != nil {
				return nil, fmt.Errorf("harness: %s on %s: %w", b.Name(), wl.name, err)
			}
			m, err := measure(b.Name(), 1, trials, func() error {
				_, err := b.Route(wl.a)
				return err
			})
			if err != nil {
				return nil, err
			}
			rep.Tiers = append(rep.Tiers, TierMeasurement{
				Backend:     b.Name(),
				Workload:    wl.name,
				GroupSize:   size(wl.a),
				NsPerOp:     m.NsPerOp,
				AllocsPerOp: m.AllocsPerOp,
				BytesPerOp:  m.BytesPerOp,
				Passes:      r.Passes,
				Depth:       len(r.Columns),
				Switches:    len(r.Columns) * n / 2,
			})
		}
	}
	return rep, nil
}
