// Package hdrstream simulates the routing-tag header of a multicast
// message at flit granularity, one tag flit per cycle, through the chain
// of BSN level boundaries it crosses — the tag-handling hardware of
// Section 7.1 (Fig. 10). Each boundary consumes the first flit it sees
// (its own level's routing tag a0) and then deals the remaining flits
// alternately, forwarding only the half belonging to the subnetwork its
// connection continues into.
//
// The paper claims this arrangement needs "only a constant number of
// buffers ... at each input of a BSN as it passes through the network".
// The simulation measures exactly that: every boundary consumes at most
// one flit per cycle and its input FIFO never holds more than one flit,
// independent of the network size — verified by the tests up to n = 4096.
package hdrstream

import (
	"fmt"

	"brsmn/internal/mcast"
	"brsmn/internal/shuffle"
	"brsmn/internal/tag"
)

// Result describes one simulated header traversal.
type Result struct {
	N int
	// LevelTags[k] is the routing tag consumed by the boundary at level
	// k+1 — the value its BSN routes the connection by.
	LevelTags []tag.Value
	// MaxBuffer is the largest FIFO occupancy observed at any boundary
	// in any cycle — the paper's "constant number of buffers".
	MaxBuffer int
	// Cycles is when the last level's tag had been consumed.
	Cycles int
}

// boundary is one BSN hand-off: it consumes its head flit, then keeps
// alternate flits according to the exit bit of the connection at its
// level (0 = upper half, keep the odd-position flits a1, a3, ...).
type boundary struct {
	exit     int
	fifo     []tag.Value
	gotHead  bool
	head     tag.Value
	pos      int // position of the next incoming flit within this level's stream
	maxDepth int
}

// push enqueues an arriving flit.
func (b *boundary) push(v tag.Value) {
	b.fifo = append(b.fifo, v)
	if len(b.fifo) > b.maxDepth {
		b.maxDepth = len(b.fifo)
	}
}

// step processes at most one buffered flit, forwarding it to the next
// boundary when it belongs to this connection's half. It returns the
// forwarded flit and whether one was forwarded.
func (b *boundary) step() (tag.Value, bool) {
	if len(b.fifo) == 0 {
		return 0, false
	}
	v := b.fifo[0]
	b.fifo = b.fifo[1:]
	p := b.pos
	b.pos++
	if p == 0 {
		b.gotHead = true
		b.head = v
		return 0, false
	}
	// Flit p (p >= 1) belongs to the upper continuation when p is odd.
	if (p%2 == 1) == (b.exit == 0) {
		return v, true
	}
	return 0, false
}

// Simulate streams the routing-tag sequence of the multicast with the
// given destination set toward one chosen destination: exits[k] is bit k
// (MSB first) of dest, the half the connection (or its copy) takes at
// level k+1. It verifies each consumed level tag against the tag tree
// and returns the buffering statistics.
func Simulate(n int, dests []int, dest int) (*Result, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("hdrstream: size %d is not a power of two >= 2", n)
	}
	found := false
	for _, d := range dests {
		if d == dest {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("hdrstream: %d is not a destination of the multicast", dest)
	}
	tree, err := mcast.BuildTagTree(n, dests)
	if err != nil {
		return nil, err
	}
	seq := tree.Sequence()
	m := shuffle.Log2(n)

	chain := make([]*boundary, m)
	for k := range chain {
		chain[k] = &boundary{exit: dest >> (m - 1 - k) & 1}
	}

	res := &Result{N: n, LevelTags: make([]tag.Value, m)}
	cycle := 0
	for {
		// Inject one source flit per cycle.
		if cycle < len(seq) {
			chain[0].push(seq[cycle])
		}
		// Boundaries process concurrently; a forwarded flit arrives at
		// the next boundary this cycle's end (it is pushed after all
		// steps, preserving one-flit-per-cycle flow).
		type fwd struct {
			to int
			v  tag.Value
		}
		var moves []fwd
		for k, b := range chain {
			if v, ok := b.step(); ok && k+1 < m {
				moves = append(moves, fwd{k + 1, v})
			}
		}
		for _, mv := range moves {
			chain[mv.to].push(mv.v)
		}
		cycle++
		done := true
		for _, b := range chain {
			if !b.gotHead || len(b.fifo) > 0 {
				done = false
			}
		}
		if done && cycle >= len(seq) {
			break
		}
		if cycle > 4*len(seq)+4*m+16 {
			return nil, fmt.Errorf("hdrstream: simulation did not converge")
		}
	}

	// Verify the consumed tags against the tag tree: the level-(k+1)
	// boundary must have consumed the tree node on dest's path.
	node := 1
	for k, b := range chain {
		want := tree.Nodes[node]
		if b.head != want {
			return nil, fmt.Errorf("hdrstream: level %d consumed %v, tree says %v", k+1, b.head, want)
		}
		res.LevelTags[k] = b.head
		if b.maxDepth > res.MaxBuffer {
			res.MaxBuffer = b.maxDepth
		}
		node = 2*node + dest>>(m-1-k)&1
	}
	res.Cycles = cycle
	return res, nil
}
