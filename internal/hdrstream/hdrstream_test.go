package hdrstream

import (
	"math/rand"
	"testing"

	"brsmn/internal/tag"
)

// TestConstantBuffering checks the Section 7.1 claim: the per-boundary
// FIFO depth stays at one flit regardless of network size — from n = 4
// up to n = 4096.
func TestConstantBuffering(t *testing.T) {
	rng := rand.New(rand.NewSource(210))
	for n := 4; n <= 4096; n *= 4 {
		for trial := 0; trial < 5; trial++ {
			k := 1 + rng.Intn(n)
			dests := rng.Perm(n)[:k]
			dest := dests[rng.Intn(k)]
			res, err := Simulate(n, dests, dest)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if res.MaxBuffer > 1 {
				t.Fatalf("n=%d dests=%d: max buffer %d flits; the paper claims O(1)", n, k, res.MaxBuffer)
			}
			if res.Cycles < n-1 {
				t.Fatalf("n=%d: finished in %d cycles, before the %d-flit header ended", n, res.Cycles, n-1)
			}
		}
	}
}

// TestLevelTagsMatchTree checks every boundary consumed exactly the tag
// tree node on the destination's path (Simulate verifies internally;
// this pins the exported view on a hand-computed case).
func TestLevelTagsMatchTree(t *testing.T) {
	// The running example: {3,4,7} in an 8-network, following copy 7.
	res, err := Simulate(8, []int{3, 4, 7}, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []tag.Value{tag.Alpha, tag.Alpha, tag.V1}
	for k, v := range want {
		if res.LevelTags[k] != v {
			t.Errorf("level %d tag %v, want %v", k+1, res.LevelTags[k], v)
		}
	}
	// Copy 3 takes the other top branch.
	res, err = Simulate(8, []int{3, 4, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want = []tag.Value{tag.Alpha, tag.V1, tag.V1}
	for k, v := range want {
		if res.LevelTags[k] != v {
			t.Errorf("copy 3: level %d tag %v, want %v", k+1, res.LevelTags[k], v)
		}
	}
}

// TestEveryDestinationOfBroadcast streams the full-broadcast header to
// every destination.
func TestEveryDestinationOfBroadcast(t *testing.T) {
	n := 64
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	for dest := 0; dest < n; dest++ {
		res, err := Simulate(n, all, dest)
		if err != nil {
			t.Fatalf("dest %d: %v", dest, err)
		}
		for k, v := range res.LevelTags {
			if v != tag.Alpha {
				t.Fatalf("broadcast: level %d tag %v, want α", k+1, v)
			}
		}
		if res.MaxBuffer > 1 {
			t.Fatalf("dest %d: buffer %d", dest, res.MaxBuffer)
		}
	}
}

// TestSimulateValidation covers the guards.
func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(6, []int{0}, 0); err == nil {
		t.Error("accepted non-power-of-two size")
	}
	if _, err := Simulate(8, []int{1, 2}, 5); err == nil {
		t.Error("accepted a non-destination")
	}
	if _, err := Simulate(8, []int{9}, 9); err == nil {
		t.Error("accepted an out-of-range destination")
	}
}
