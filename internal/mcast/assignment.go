// Package mcast defines multicast assignments — the traffic unit of the
// BRSMN — together with the per-connection routing-tag binary tree of
// Section 7.1 of Yang & Wang and its serialized routing-tag sequence
// (equations 10–12, Figs. 9–11).
package mcast

import (
	"fmt"
	"sort"

	"brsmn/internal/shuffle"
)

// Assignment is a multicast assignment for an n x n network: Dests[i] is
// the destination set I_i of input i (nil or empty for an idle input).
// A valid assignment has pairwise-disjoint destination sets whose union is
// a subset of {0, ..., n-1}.
type Assignment struct {
	N     int
	Dests [][]int
}

// New builds and validates an assignment. The destination sets are
// defensively copied and sorted.
func New(n int, dests [][]int) (Assignment, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return Assignment{}, fmt.Errorf("mcast: network size %d is not a power of two >= 2", n)
	}
	if len(dests) > n {
		return Assignment{}, fmt.Errorf("mcast: %d destination sets for %d inputs", len(dests), n)
	}
	a := Assignment{N: n, Dests: make([][]int, n)}
	for i, ds := range dests {
		if len(ds) == 0 {
			continue
		}
		cp := append([]int(nil), ds...)
		sort.Ints(cp)
		a.Dests[i] = cp
	}
	if err := a.Validate(); err != nil {
		return Assignment{}, err
	}
	return a, nil
}

// MustNew is New but panics on error; intended for tests and examples with
// literal assignments.
func MustNew(n int, dests [][]int) Assignment {
	a, err := New(n, dests)
	if err != nil {
		panic(err)
	}
	return a
}

// Validate checks the multicast assignment conditions: every destination
// is in range and no output appears in two destination sets.
func (a Assignment) Validate() error {
	return a.OwnerInto(make([]int, a.N))
}

// OwnerInto validates the assignment while filling owner (length a.N)
// with each output's connected input, -1 for unfed outputs — the fused,
// allocation-free form of Validate + OutputOwner used by the routing
// planner.
func (a Assignment) OwnerInto(owner []int) error {
	if !shuffle.IsPow2(a.N) || a.N < 2 {
		return fmt.Errorf("mcast: network size %d is not a power of two >= 2", a.N)
	}
	if len(a.Dests) != a.N {
		return fmt.Errorf("mcast: %d destination sets, want %d", len(a.Dests), a.N)
	}
	if len(owner) != a.N {
		return fmt.Errorf("mcast: owner buffer of length %d for %d outputs", len(owner), a.N)
	}
	for i := range owner {
		owner[i] = -1
	}
	for i, ds := range a.Dests {
		prev := -1
		for _, d := range ds {
			if d < 0 || d >= a.N {
				return fmt.Errorf("mcast: input %d has out-of-range destination %d", i, d)
			}
			if d == prev {
				return fmt.Errorf("mcast: input %d lists destination %d twice", i, d)
			}
			prev = d
			if j := owner[d]; j >= 0 {
				return fmt.Errorf("mcast: output %d requested by both inputs %d and %d", d, j, i)
			}
			owner[d] = i
		}
	}
	return nil
}

// Fanout returns the total number of (input, output) connection pairs.
func (a Assignment) Fanout() int {
	f := 0
	for _, ds := range a.Dests {
		f += len(ds)
	}
	return f
}

// ActiveInputs returns the number of inputs with a non-empty destination
// set.
func (a Assignment) ActiveInputs() int {
	c := 0
	for _, ds := range a.Dests {
		if len(ds) > 0 {
			c++
		}
	}
	return c
}

// IsPermutation reports whether the assignment is a (partial) permutation:
// every destination set has at most one element.
func (a Assignment) IsPermutation() bool {
	for _, ds := range a.Dests {
		if len(ds) > 1 {
			return false
		}
	}
	return true
}

// IsFull reports whether every output is the destination of some input.
func (a Assignment) IsFull() bool { return a.Fanout() == a.N }

// OutputOwner returns, for each output, the input connected to it, or -1
// if the output receives nothing.
func (a Assignment) OutputOwner() []int {
	owner := make([]int, a.N)
	for i := range owner {
		owner[i] = -1
	}
	for i, ds := range a.Dests {
		for _, d := range ds {
			owner[d] = i
		}
	}
	return owner
}

// Split partitions the assignment's destination sets around the most
// significant address bit: upper[i] holds the destinations of input i that
// lie in [0, n/2), re-expressed for an n/2-output network, and lower[i]
// those in [n/2, n) minus n/2. It is the logical effect of one binary
// splitting network level (Section 2, Cases 1–3). The association of
// connections to the inputs of the half-size networks is performed by the
// routing fabric, not here; Split is the specification-side view used by
// the oracle and tests.
func (a Assignment) Split() (upper, lower [][]int) {
	h := a.N / 2
	upper = make([][]int, a.N)
	lower = make([][]int, a.N)
	for i, ds := range a.Dests {
		for _, d := range ds {
			if d < h {
				upper[i] = append(upper[i], d)
			} else {
				lower[i] = append(lower[i], d-h)
			}
		}
	}
	return upper, lower
}

// String renders the assignment in the paper's set notation, e.g.
// {{0,1}, ∅, {3,4,7}, {2}, ∅, ∅, ∅, {5,6}}.
func (a Assignment) String() string {
	s := "{"
	for i, ds := range a.Dests {
		if i > 0 {
			s += ", "
		}
		if len(ds) == 0 {
			s += "∅"
			continue
		}
		s += "{"
		for j, d := range ds {
			if j > 0 {
				s += ","
			}
			s += fmt.Sprint(d)
		}
		s += "}"
	}
	return s + "}"
}

// Permutation builds a (partial) permutation assignment from a destination
// vector: perm[i] is the destination of input i, or a negative value for
// an idle input.
func Permutation(perm []int) (Assignment, error) {
	n := len(perm)
	dests := make([][]int, n)
	for i, d := range perm {
		if d >= 0 {
			dests[i] = []int{d}
		}
	}
	return New(n, dests)
}

// Broadcast builds the assignment in which input src multicasts to every
// output of an n x n network.
func Broadcast(n, src int) (Assignment, error) {
	if src < 0 || src >= n {
		return Assignment{}, fmt.Errorf("mcast: broadcast source %d out of range [0,%d)", src, n)
	}
	dests := make([][]int, n)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	dests[src] = all
	return New(n, dests)
}
