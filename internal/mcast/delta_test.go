package mcast

import (
	"math/rand"
	"testing"
)

// TestDeltaShapeMatchesRebuild drives random join/leave churn and checks,
// for every mutation, that (a) the mutated tree equals a from-scratch
// BuildTagTree of the new member set, and (b) the reported delta is
// exactly the set of node tags that differ between the before and after
// trees — a contiguous path suffix of m-level+1 nodes.
func TestDeltaShapeMatchesRebuild(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(42))
	tree, err := BuildTagTree(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	members := map[int]bool{}
	m := tree.Levels()
	for step := 0; step < 500; step++ {
		d := rng.Intn(n)
		before := append([]byte(nil), byteNodes(tree)...)
		var level, changed int
		if members[d] {
			level, changed, err = tree.RemoveDelta(d)
			delete(members, d)
		} else {
			level, changed, err = tree.AddDelta(d)
			members[d] = true
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if level < 1 || level > m {
			t.Fatalf("step %d: delta level %d out of [1,%d]", step, level, m)
		}
		if changed != m-level+1 {
			t.Fatalf("step %d: %d changed nodes at level %d, want the path suffix %d",
				step, changed, level, m-level+1)
		}
		diff := 0
		topmost := m + 1
		for k := 1; k < len(tree.Nodes); k++ {
			if byteNodes(tree)[k] != before[k] {
				diff++
				if lv := levelOf(k); lv < topmost {
					topmost = lv
				}
			}
		}
		if diff != changed || topmost != level {
			t.Fatalf("step %d: reported (level=%d, changed=%d), observed (level=%d, changed=%d)",
				step, level, changed, topmost, diff)
		}
		var dests []int
		for dd := range members {
			dests = append(dests, dd)
		}
		fresh, err := BuildTagTree(n, dests)
		if err != nil {
			t.Fatalf("step %d: rebuild: %v", step, err)
		}
		for k := range tree.Nodes {
			if tree.Nodes[k] != fresh.Nodes[k] {
				t.Fatalf("step %d: node %d: mutated %v rebuilt %v", step, k, tree.Nodes[k], fresh.Nodes[k])
			}
		}
	}
}

func byteNodes(t TagTree) []byte {
	out := make([]byte, len(t.Nodes))
	for i, v := range t.Nodes {
		out[i] = byte(v)
	}
	return out
}

// levelOf returns the 1-based tree level of heap node index k.
func levelOf(k int) int {
	lv := 0
	for k > 0 {
		lv++
		k >>= 1
	}
	return lv
}
