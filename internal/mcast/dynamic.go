package mcast

import (
	"fmt"

	"brsmn/internal/tag"
)

// Dynamic group membership: a multicast's tag tree supports O(log n)
// incremental updates, so a long-lived group (a conference call, a
// replica set) can admit and drop members without rebuilding its
// routing-tag sequence's source data from scratch. Only the log2(n)
// nodes on the member's root-to-leaf path change.

// Contains reports whether d is a destination of the multicast the tree
// encodes.
func (t TagTree) Contains(d int) bool {
	if d < 0 || d >= t.N {
		return false
	}
	m := t.Levels()
	node := 1
	for i := 0; i < m; i++ {
		bit := d >> (m - 1 - i) & 1
		switch t.Nodes[node] {
		case tag.Alpha:
		case tag.V0:
			if bit != 0 {
				return false
			}
		case tag.V1:
			if bit != 1 {
				return false
			}
		default:
			return false
		}
		node = 2*node + bit
	}
	return true
}

// Add inserts destination d into the multicast, updating the log2(n)
// path nodes. Adding an existing member is an error (destination sets
// are sets).
func (t *TagTree) Add(d int) error {
	_, _, err := t.AddDelta(d)
	return err
}

// AddDelta is Add reporting the shape of the change: the topmost tree
// level (1-based; the root is level 1) whose node tag changed, and the
// number of changed nodes. The changed nodes are always the contiguous
// path suffix at levels level..Levels(): above the topmost change every
// path node already covered d's direction, and below it d's subtree held
// no member, so every deeper path node was ε and flips. A replanner can
// therefore rebuild only the subnetwork rooted at the topmost changed
// node — O(log n) switch columns when the change sits deep in the tree.
func (t *TagTree) AddDelta(d int) (level, changed int, err error) {
	if d < 0 || d >= t.N {
		return 0, 0, fmt.Errorf("mcast: destination %d out of range [0,%d)", d, t.N)
	}
	if t.Contains(d) {
		return 0, 0, fmt.Errorf("mcast: destination %d already in the multicast", d)
	}
	m := t.Levels()
	node := 1
	level = m + 1
	for i := 0; i < m; i++ {
		bit := d >> (m - 1 - i) & 1
		want := tag.V0
		if bit == 1 {
			want = tag.V1
		}
		switch t.Nodes[node] {
		case tag.Eps:
			t.Nodes[node] = want
		case tag.Alpha, want:
			// Already covers this direction: unchanged.
			node = 2*node + bit
			continue
		default:
			// Covers only the other direction: now both.
			t.Nodes[node] = tag.Alpha
		}
		if i+1 < level {
			level = i + 1
		}
		changed++
		node = 2*node + bit
	}
	return level, changed, nil
}

// Remove deletes destination d from the multicast, updating the log2(n)
// path nodes bottom-up (a node covering only the removed branch reverts
// toward ε; an α node collapses to the surviving direction).
func (t *TagTree) Remove(d int) error {
	_, _, err := t.RemoveDelta(d)
	return err
}

// RemoveDelta is Remove reporting the shape of the change, with the same
// contract as AddDelta: the changed nodes are the contiguous path suffix
// at levels level..Levels(). The repair walks bottom-up and stops at the
// first node whose sibling direction survives (an α collapsing to the
// other direction); everything above still covers live members and is
// untouched.
func (t *TagTree) RemoveDelta(d int) (level, changed int, err error) {
	if !t.Contains(d) {
		return 0, 0, fmt.Errorf("mcast: destination %d not in the multicast", d)
	}
	m := t.Levels()
	// Collect the path, then repair bottom-up.
	path := make([]int, m) // node indices, root first
	node := 1
	for i := 0; i < m; i++ {
		path[i] = node
		node = 2*node + d>>(m-1-i)&1
	}
	// emptied reports whether the subtree below the path node at level
	// i+1 lost its last member.
	emptied := true
	level = m + 1
	for i := m - 1; i >= 0; i-- {
		if !emptied {
			break // deeper levels unaffected once a subtree stays alive
		}
		k := path[i]
		bit := d >> (m - 1 - i) & 1
		removedDir := tag.V0
		if bit == 1 {
			removedDir = tag.V1
		}
		switch t.Nodes[k] {
		case tag.Alpha:
			// The other direction survives.
			t.Nodes[k] = removedDir.OtherDirection()
			emptied = false
		case removedDir:
			t.Nodes[k] = tag.Eps
			emptied = true
		default:
			return 0, 0, fmt.Errorf("mcast: tree corrupt at node %d while removing %d", k, d)
		}
		level = i + 1
		changed++
	}
	return level, changed, nil
}
