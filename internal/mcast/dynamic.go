package mcast

import (
	"fmt"

	"brsmn/internal/tag"
)

// Dynamic group membership: a multicast's tag tree supports O(log n)
// incremental updates, so a long-lived group (a conference call, a
// replica set) can admit and drop members without rebuilding its
// routing-tag sequence's source data from scratch. Only the log2(n)
// nodes on the member's root-to-leaf path change.

// Contains reports whether d is a destination of the multicast the tree
// encodes.
func (t TagTree) Contains(d int) bool {
	if d < 0 || d >= t.N {
		return false
	}
	m := t.Levels()
	node := 1
	for i := 0; i < m; i++ {
		bit := d >> (m - 1 - i) & 1
		switch t.Nodes[node] {
		case tag.Alpha:
		case tag.V0:
			if bit != 0 {
				return false
			}
		case tag.V1:
			if bit != 1 {
				return false
			}
		default:
			return false
		}
		node = 2*node + bit
	}
	return true
}

// Add inserts destination d into the multicast, updating the log2(n)
// path nodes. Adding an existing member is an error (destination sets
// are sets).
func (t *TagTree) Add(d int) error {
	if d < 0 || d >= t.N {
		return fmt.Errorf("mcast: destination %d out of range [0,%d)", d, t.N)
	}
	if t.Contains(d) {
		return fmt.Errorf("mcast: destination %d already in the multicast", d)
	}
	m := t.Levels()
	node := 1
	for i := 0; i < m; i++ {
		bit := d >> (m - 1 - i) & 1
		want := tag.V0
		if bit == 1 {
			want = tag.V1
		}
		switch t.Nodes[node] {
		case tag.Eps:
			t.Nodes[node] = want
		case tag.Alpha, want:
			// Already covers this direction.
		default:
			// Covers only the other direction: now both.
			t.Nodes[node] = tag.Alpha
		}
		node = 2*node + bit
	}
	return nil
}

// Remove deletes destination d from the multicast, updating the log2(n)
// path nodes bottom-up (a node covering only the removed branch reverts
// toward ε; an α node collapses to the surviving direction).
func (t *TagTree) Remove(d int) error {
	if !t.Contains(d) {
		return fmt.Errorf("mcast: destination %d not in the multicast", d)
	}
	m := t.Levels()
	// Collect the path, then repair bottom-up.
	path := make([]int, m) // node indices, root first
	node := 1
	for i := 0; i < m; i++ {
		path[i] = node
		node = 2*node + d>>(m-1-i)&1
	}
	// emptied reports whether the subtree below the path node at level
	// i+1 lost its last member.
	emptied := true
	for i := m - 1; i >= 0; i-- {
		if !emptied {
			break // deeper levels unaffected once a subtree stays alive
		}
		k := path[i]
		bit := d >> (m - 1 - i) & 1
		removedDir := tag.V0
		if bit == 1 {
			removedDir = tag.V1
		}
		switch t.Nodes[k] {
		case tag.Alpha:
			// The other direction survives.
			t.Nodes[k] = removedDir.OtherDirection()
			emptied = false
		case removedDir:
			t.Nodes[k] = tag.Eps
			emptied = true
		default:
			return fmt.Errorf("mcast: tree corrupt at node %d while removing %d", k, d)
		}
	}
	return nil
}
